// Command livebench boots a complete cache cloud in-process (cache nodes +
// origin on loopback HTTP) and replays a generated workload through the
// wire protocol, reporting hit rates and node statistics. It is the
// quickest way to see the full live stack under load without deploying
// separate processes.
//
// Usage:
//
//	livebench [-nodes 6] [-ringsize 2] [-docs 2000] [-duration 30]
//	          [-reqs 10] [-updates 20] [-utility] [-capacity 0]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"cachecloud/internal/node"
	"cachecloud/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "livebench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("livebench", flag.ContinueOnError)
	var (
		nodes    = fs.Int("nodes", 6, "cache nodes")
		ringSize = fs.Int("ringsize", 2, "beacon points per ring")
		docs     = fs.Int("docs", 2000, "unique documents")
		duration = fs.Int64("duration", 30, "trace duration in units")
		reqs     = fs.Int("reqs", 10, "requests per node per unit")
		updates  = fs.Int("updates", 20, "updates per unit")
		utility  = fs.Bool("utility", false, "use utility-based placement")
		capacity = fs.Int64("capacity", 0, "per-node disk budget in bytes (0 = unlimited)")
		seed     = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	names := make([]string, *nodes)
	for i := range names {
		names[i] = fmt.Sprintf("node-%02d", i)
	}
	tr := trace.GenerateZipf(trace.ZipfConfig{
		Seed: *seed, NumDocs: *docs, Alpha: 0.9, CacheIDs: names,
		Duration: *duration, ReqPerCache: *reqs, UpdatesPerUnit: *updates,
	})

	cluster, err := node.StartLocalCluster(names, *ringSize, tr.Docs, node.ClusterConfig{
		UtilityPlacement: *utility,
		CapacityBytes:    *capacity,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()
	fmt.Printf("cluster: %d nodes in %d rings, origin at %s\n",
		len(cluster.Caches), len(cluster.Cfg.Rings), cluster.Cfg.OriginAddr)
	fmt.Printf("workload: %d requests, %d updates over %d units\n\n",
		tr.NumRequests(), tr.NumUpdates(), tr.Duration)

	start := time.Now()
	res, err := node.Replay(cluster.Cfg, tr, node.ReplayOptions{
		RebalanceEvery:       *duration / 4,
		ReplicateOnRebalance: true,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("replayed %d events in %v (%.0f req/s over HTTP)\n",
		len(tr.Events), elapsed.Round(time.Millisecond),
		float64(res.Requests)/elapsed.Seconds())
	fmt.Printf("hit rate: %.1f%% (local %d, peer %d, origin %d), %d errors\n",
		100*res.HitRate(), res.LocalHits, res.PeerHits, res.OriginMiss, res.Errors)
	fmt.Printf("latency ms: p50 %.2f  p95 %.2f  p99 %.2f  mean %.2f  max %.2f\n",
		res.Latency.Quantile(0.50), res.Latency.Quantile(0.95), res.Latency.Quantile(0.99),
		res.Latency.Mean(), res.Latency.Max)
	fmt.Printf("rebalance cycles: %d\n\n", res.Rebalances)

	client := &http.Client{Timeout: 5 * time.Second}
	fmt.Printf("%-10s %8s %10s %10s %10s %10s %8s\n",
		"node", "stored", "usedKB", "localHits", "peerHits", "beaconOps", "records")
	for _, n := range names {
		resp, err := client.Get(cluster.Cfg.Addrs[n] + "/stats")
		if err != nil {
			return err
		}
		var st node.CacheStats
		if err := decodeJSON(resp, &st); err != nil {
			return err
		}
		fmt.Printf("%-10s %8d %10d %10d %10d %10d %8d\n",
			n, st.StoredDocs, st.UsedBytes/1024, st.LocalHits, st.PeerHits, st.BeaconOps, st.RecordsHeld)
	}
	return nil
}

func decodeJSON(resp *http.Response, v any) error {
	defer func() { _ = resp.Body.Close() }()
	return json.NewDecoder(resp.Body).Decode(v)
}

// Command originsrv runs the live origin server of a cache cloud cluster.
// It serves group-miss fetches, publishes updates to beacon points, and
// periodically runs the sub-range determination process across the cluster.
//
// The document catalog is loaded from a trace file produced by tracegen
// (only the D records are used).
//
// Usage:
//
//	originsrv -listen 127.0.0.1:8000 -config cluster.json -catalog sydney.trace \
//	          -rebalance 60s
//
// The origin also runs the failure detector: cache nodes heartbeat their
// liveness, and a node missing -miss-k consecutive beats (swept every
// -heartbeat-interval) is declared dead — its sub-ranges merge into a
// ring neighbour, survivors promote their lazy record replicas, and the
// membership change is broadcast. A dead node that heartbeats again is
// re-admitted with a fresh sub-range.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"cachecloud/internal/node"
	"cachecloud/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "originsrv:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("originsrv", flag.ContinueOnError)
	var (
		listen    = fs.String("listen", "", "listen address, e.g. 127.0.0.1:8000")
		cfgPath   = fs.String("config", "cluster.json", "cluster configuration file")
		catalog   = fs.String("catalog", "", "trace file providing the document catalog")
		rebalance = fs.Duration("rebalance", 0, "rebalance period (0 = only on POST /rebalance)")
		repair    = fs.Duration("repair", 0, "health-check/repair period (0 = only on POST /repair)")
		replicate = fs.Duration("replicate", 0, "record-replication period (0 = only on POST /replicate)")
		hbSweep   = fs.Duration("heartbeat-interval", 2*time.Second, "failure-detector sweep period over heartbeats (0 disables)")
		missK     = fs.Int("miss-k", 3, "missed heartbeats before a node is declared dead")
		pprofOn   = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listen == "" || *catalog == "" {
		return fmt.Errorf("both -listen and -catalog are required")
	}

	raw, err := os.ReadFile(*cfgPath)
	if err != nil {
		return fmt.Errorf("read cluster config: %w", err)
	}
	var cfg node.ClusterConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return fmt.Errorf("parse cluster config: %w", err)
	}

	f, err := os.Open(*catalog)
	if err != nil {
		return err
	}
	tr, err := trace.Read(f)
	_ = f.Close()
	if err != nil {
		return fmt.Errorf("read catalog: %w", err)
	}

	o, err := node.NewOriginNode(cfg, tr.Docs)
	if err != nil {
		return err
	}

	stop := make(chan struct{})
	defer close(stop)
	runEvery := func(period time.Duration, name string, fn func() error) {
		if period <= 0 {
			return
		}
		go func() {
			ticker := time.NewTicker(period)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if err := fn(); err != nil {
						fmt.Fprintf(os.Stderr, "originsrv: %s: %v\n", name, err)
					}
				case <-stop:
					return
				}
			}
		}()
	}
	runEvery(*rebalance, "rebalance", func() error { _, err := o.Rebalance(); return err })
	runEvery(*repair, "repair", func() error { _, err := o.Repair(); return err })
	runEvery(*replicate, "replicate", func() error { _, err := o.TriggerReplication(); return err })
	if *hbSweep > 0 {
		stopFD := o.StartFailureDetector(*hbSweep, *missK)
		defer stopFD()
	}

	h := o.Handler()
	if *pprofOn {
		h = withPprof(h)
	}
	fmt.Fprintf(os.Stderr, "originsrv listening on %s with %d documents\n", *listen, len(tr.Docs))
	return http.ListenAndServe(*listen, h)
}

// withPprof mounts the net/http/pprof handlers under /debug/pprof/ in
// front of the origin's own routes. Gated behind -pprof: the profiling
// endpoints should not be exposed by default.
func withPprof(h http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", h)
	return mux
}

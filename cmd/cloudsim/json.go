package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"cachecloud/internal/core"
	"cachecloud/internal/core/seedref"
	"cachecloud/internal/document"
	"cachecloud/internal/experiments"
	"cachecloud/internal/placement"
	"cachecloud/internal/shield"
	"cachecloud/internal/sim"
	"cachecloud/internal/trace"
)

// report is the -json output shape. Figures maps experiment names to the
// result structs of internal/experiments (whose exported fields carry the
// plotted series); Benchmarks carries hot-path micro-benchmark timings.
// The report deliberately excludes run-environment knobs like the worker
// count: the same inputs must serialize byte-identically at any
// parallelism (the golden test pins this).
type report struct {
	Schema     string                 `json:"schema"`
	Scale      float64                `json:"scale"`
	Seed       int64                  `json:"seed"`
	Figures    map[string]any         `json:"figures"`
	Benchmarks map[string]benchResult `json:"benchmarks,omitempty"`
	ScaleBench *scaleBench            `json:"scalebench,omitempty"`
}

// scaleBench reports the parallel-read replay at scale (-scalebench): a
// synthetic catalog of millions of documents across thousands of caches,
// replayed as concurrent lock-free lookups. Wall-clock fields vary run to
// run; the report is for recording measured throughput (BENCH_2.json), not
// for golden comparison.
type scaleBench struct {
	NumDocs      int     `json:"num_docs"`
	NumCaches    int     `json:"num_caches"`
	NumRings     int     `json:"num_rings"`
	Workers      int     `json:"workers"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	NumCPU       int     `json:"num_cpu"`
	Ops          int64   `json:"ops"`
	HoldersSeen  int64   `json:"holders_seen"`
	Errors       int64   `json:"errors"`
	ElapsedMs    float64 `json:"elapsed_ms"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Shield-hop series: sequential fetch replay through a 64-shield tier
	// over the same seeded workload shape — the marginal cost of the extra
	// tier per lookup, reported beside the intra-cloud read path.
	ShieldShields      int     `json:"shield_shields"`
	ShieldOps          int64   `json:"shield_ops"`
	ShieldHits         int64   `json:"shield_hits"`
	ShieldElapsedMs    float64 `json:"shield_elapsed_ms"`
	ShieldEventsPerSec float64 `json:"shield_events_per_sec"`
}

// benchResult is one micro-benchmark's timings in testing.Benchmark units.
type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

const reportSchema = "cachecloud-bench/v1"

// writeJSON runs the named experiments on the runner and writes the JSON
// report to stdout.
func writeJSON(r *experiments.Runner, names []string, scale float64, seed int64, microbench, scalebench bool) error {
	return writeJSONTo(os.Stdout, r, names, scale, seed, microbench, scalebench)
}

// writeJSONTo is writeJSON with an explicit destination (tests capture
// the report in memory).
func writeJSONTo(w io.Writer, r *experiments.Runner, names []string, scale float64, seed int64, microbench, scalebench bool) error {
	rep := report{
		Schema:  reportSchema,
		Scale:   scale,
		Seed:    seed,
		Figures: make(map[string]any, len(names)),
	}
	for _, name := range names {
		res, err := r.Result(name, scale, seed)
		if err != nil {
			return err
		}
		rep.Figures[name] = res
	}
	if microbench {
		rep.Benchmarks = microBenchmarks(seed)
	}
	if scalebench {
		sb, err := runScaleBench(seed)
		if err != nil {
			return err
		}
		rep.ScaleBench = sb
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// runScaleBench replays the parallel-read event mode at cache-cloud scale:
// two million documents across a thousand caches on fifty rings, read
// concurrently from one worker per processor. It reports measured
// throughput; the deterministic counters (HoldersSeen, Errors) double as a
// correctness check on the lock-free path at this catalog size.
func runScaleBench(seed int64) (*scaleBench, error) {
	cfg := sim.ParallelReadConfig{
		NumDocs:       2_000_000,
		NumCaches:     1_000,
		NumRings:      50,
		HoldersPerDoc: 3,
		Workers:       runtime.GOMAXPROCS(0),
		Ops:           4_000_000,
		Seed:          seed,
	}
	res, err := sim.RunParallelRead(cfg)
	if err != nil {
		return nil, err
	}
	sOps, sHits, sElapsed, err := runShieldHopBench(seed)
	if err != nil {
		return nil, err
	}
	return &scaleBench{
		NumDocs:      cfg.NumDocs,
		NumCaches:    cfg.NumCaches,
		NumRings:     cfg.NumRings,
		Workers:      cfg.Workers,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Ops:          res.Ops,
		HoldersSeen:  res.HoldersSeen,
		Errors:       res.Errors,
		ElapsedMs:    float64(res.Elapsed.Microseconds()) / 1e3,
		EventsPerSec: res.EventsPerSec,

		ShieldShields:      64,
		ShieldOps:          sOps,
		ShieldHits:         sHits,
		ShieldElapsedMs:    float64(sElapsed.Microseconds()) / 1e3,
		ShieldEventsPerSec: float64(sOps) / sElapsed.Seconds(),
	}, nil
}

// runShieldHopBench replays a seeded fetch stream through a 64-shield
// tier serving 500 clouds over a 10k-document catalog: after the warm-up
// pass nearly every fetch is a shield hit, so the run times the steady
// state hop (ring route + shield copy serve) at scale.
func runShieldHopBench(seed int64) (ops, hits int64, elapsed time.Duration, err error) {
	tier, err := shield.New(shield.Config{Shields: 64, IntraGen: 1 << 16})
	if err != nil {
		return 0, 0, 0, err
	}
	const (
		numClouds = 500
		numDocs   = 10_000
		numOps    = 2_000_000
	)
	clouds := make([]string, numClouds)
	for i := range clouds {
		clouds[i] = fmt.Sprintf("cloud%03d", i)
	}
	urls := make([]string, numDocs)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://cloud/doc/%05d", i)
	}
	rng := rand.New(rand.NewSource(seed))
	start := time.Now()
	for i := 0; i < numOps; i++ {
		tier.Fetch(urls[rng.Intn(numDocs)], clouds[rng.Intn(numClouds)])
	}
	elapsed = time.Since(start)
	return int64(numOps), tier.Counters.ShieldHits, elapsed, nil
}

// microBenchmarks times the protocol hot paths with testing.Benchmark:
// URL hashing, beacon lookups through the string and the hash-keyed entry
// points, and whole-simulator event processing (reported per event).
func microBenchmarks(seed int64) map[string]benchResult {
	out := make(map[string]benchResult)
	record := func(name string, res testing.BenchmarkResult, opsPerIter int64) {
		if opsPerIter < 1 {
			opsPerIter = 1
		}
		out[name] = benchResult{
			NsPerOp:     float64(res.NsPerOp()) / float64(opsPerIter),
			AllocsPerOp: res.AllocsPerOp() / opsPerIter,
			BytesPerOp:  res.AllocedBytesPerOp() / opsPerIter,
		}
	}

	url := "http://bench.example.com/docs/dynamic/page-0042.html"
	record("hash_url", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = document.HashURL(url)
		}
	}), 1)

	cloud := benchCloud(url)
	h := document.HashURL(url)
	record("cloud_lookup_hash", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cloud.LookupHash(url, h, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	}), 1)
	record("cloud_lookup_url", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cloud.Lookup(url, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	}), 1)

	// The two-tier read path: the intra-cloud lookup plus the shield hop a
	// miss would take (ring route + warm shield serve). Comparing this
	// series against cloud_lookup_hash prices the extra tier per lookup.
	tier, err := shield.New(shield.Config{Shields: 4})
	if err != nil {
		panic(fmt.Sprintf("cloudsim: shield bench tier: %v", err))
	}
	tier.Fetch(url, "cloud0") // warm the owning shield: the hop is a hit
	record("cloud_lookup_shield_hop", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cloud.LookupHash(url, h, int64(i)); err != nil {
				b.Fatal(err)
			}
			tier.Fetch(url, "cloud0")
		}
	}), 1)

	// Contended lookups: all workers hammer a shared 4096-document catalog.
	// The same load is run against the sharded epoch-snapshot core and the
	// preserved seed single-mutex implementation, so the pair of numbers is
	// a direct read on what the sharding bought.
	pcloud, purls, phashes, err := sim.BuildParallelReadCloud(sim.ParallelReadConfig{
		NumDocs: 4096, NumCaches: 10, NumRings: 5, HoldersPerDoc: 3,
	})
	if err != nil {
		panic(fmt.Sprintf("cloudsim: parallel bench cloud: %v", err))
	}
	record("cloud_lookup_parallel", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			var i uint64
			for pb.Next() {
				j := int(i & 4095)
				i++
				if _, err := pcloud.LookupHash(purls[j], phashes[j], 1); err != nil {
					return
				}
			}
		})
	}), 1)
	scloud, err := seedref.New(seedref.Config{NumRings: 5, IntraGen: 1000},
		trace.CacheNames(10), nil)
	if err != nil {
		panic(fmt.Sprintf("cloudsim: seedref bench cloud: %v", err))
	}
	for j, u := range purls {
		for k := 0; k < 3; k++ {
			if err := scloud.RegisterHolderHash(u, phashes[j], trace.CacheNames(10)[(j+k)%10]); err != nil {
				panic(fmt.Sprintf("cloudsim: seedref bench holder: %v", err))
			}
		}
	}
	record("cloud_lookup_parallel_seedref", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			var i uint64
			for pb.Next() {
				j := int(i & 4095)
				i++
				if _, err := scloud.LookupHash(purls[j], phashes[j], 1); err != nil {
					return
				}
			}
		})
	}), 1)

	tr := trace.GenerateZipf(trace.ZipfConfig{
		Seed: seed, NumDocs: 5000, Alpha: 0.9, Caches: 10,
		Duration: 40, ReqPerCache: 40, UpdatesPerUnit: 50,
	})
	record("sim_event", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := sim.Config{
				Arch: sim.DynamicHashing, NumRings: 5, CycleLength: 10,
				Policy: placement.AdHoc{}, Seed: seed,
			}
			if _, err := sim.Run(cfg, tr); err != nil {
				b.Fatal(err)
			}
		}
	}), int64(len(tr.Events)))
	return out
}

// benchCloud builds a 10-cache cloud with three registered holders for the
// benchmarked URL, matching the repository benchmarks in bench_test.go.
func benchCloud(url string) *core.Cloud {
	cloud, err := core.New(core.Config{NumRings: 5, IntraGen: 1000, FineGrained: true},
		trace.CacheNames(10), nil)
	if err != nil {
		panic(fmt.Sprintf("cloudsim: bench cloud: %v", err))
	}
	for _, id := range trace.CacheNames(10)[:3] {
		if err := cloud.RegisterHolder(url, id); err != nil {
			panic(fmt.Sprintf("cloudsim: bench holder: %v", err))
		}
	}
	return cloud
}

package main

import (
	"os"
	"path/filepath"
	"testing"

	"cachecloud/internal/trace"
)

func writeTestTrace(t *testing.T) string {
	t.Helper()
	tr := trace.GenerateZipf(trace.ZipfConfig{
		Seed: 1, NumDocs: 300, Caches: 4, Duration: 10, ReqPerCache: 5, UpdatesPerUnit: 3,
	})
	path := filepath.Join(t.TempDir(), "t.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunNothingToDo(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no-op invocation accepted")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "fig99"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestCustomRunArchitecturesAndPolicies(t *testing.T) {
	path := writeTestTrace(t)
	for _, arch := range []string{"nocoop", "static", "dynamic"} {
		if err := run([]string{"-trace", path, "-arch", arch}); err != nil {
			t.Fatalf("arch %s: %v", arch, err)
		}
	}
	for _, pol := range []string{"adhoc", "beacon", "utility"} {
		if err := run([]string{"-trace", path, "-policy", pol}); err != nil {
			t.Fatalf("policy %s: %v", pol, err)
		}
	}
	if err := run([]string{"-trace", path, "-policy", "utility", "-disk", "0.2"}); err != nil {
		t.Fatal(err)
	}
}

func TestCustomRunRejectsBadFlags(t *testing.T) {
	path := writeTestTrace(t)
	if err := run([]string{"-trace", path, "-arch", "bogus"}); err == nil {
		t.Fatal("unknown architecture accepted")
	}
	if err := run([]string{"-trace", path, "-policy", "bogus"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := run([]string{"-trace", "/nonexistent"}); err == nil {
		t.Fatal("missing trace accepted")
	}
}

func TestFigureAtTinyScale(t *testing.T) {
	if err := run([]string{"-fig", "fig3", "-scale", "0.05"}); err != nil {
		t.Fatal(err)
	}
}

func TestCustomRunConsistencyModes(t *testing.T) {
	path := writeTestTrace(t)
	if err := run([]string{"-trace", path, "-ttl", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-trace", path, "-lease", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-trace", path, "-ttl", "5", "-lease", "5"}); err == nil {
		t.Fatal("mutually exclusive consistency flags accepted")
	}
	if err := run([]string{"-trace", path, "-series"}); err != nil {
		t.Fatal(err)
	}
}

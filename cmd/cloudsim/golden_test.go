package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"cachecloud/internal/experiments"
	"cachecloud/internal/sim"
)

// goldenScale and goldenSeed pin the workload of the committed golden
// report. Regenerate testdata/golden_all.json with `make golden` after
// an intentional result change.
const (
	goldenScale = 0.02
	goldenSeed  = 1
)

// TestGoldenAllJSON is the determinism gate for the whole figure suite:
// `cloudsim -json -all` must serialize byte-identically to the committed
// golden file at every worker count. Any drift — from parallelism, map
// iteration, or an accidental result change — fails here.
func TestGoldenAllJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure suite; skipped with -short")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden_all.json"))
	if err != nil {
		t.Fatalf("read golden file (regenerate with `make golden`): %v", err)
	}
	for _, workers := range []int{1, 4, 16} {
		var buf bytes.Buffer
		if err := writeJSONTo(&buf, experiments.NewRunner(workers), figureNames(), goldenScale, goldenSeed, false, false); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("workers=%d: report differs from testdata/golden_all.json (regenerate with `make golden` if the change is intentional)", workers)
		}
	}
}

// TestCustomRunTraceAndMetricsOut drives the -trace-out and
// -metrics-every flags end to end and sanity-checks both JSONL streams.
func TestCustomRunTraceAndMetricsOut(t *testing.T) {
	path := writeTestTrace(t)
	dir := t.TempDir()
	traceOut := filepath.Join(dir, "events.jsonl")
	metOut := filepath.Join(dir, "metrics.jsonl")
	err := run([]string{
		"-trace", path, "-cycle", "5",
		"-trace-out", traceOut,
		"-metrics-every", "1", "-metrics-out", metOut,
	})
	if err != nil {
		t.Fatal(err)
	}

	events, err := os.Open(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = events.Close() }()
	type evLine struct {
		Cycle int64  `json:"cycle"`
		T     int64  `json:"t"`
		Kind  string `json:"kind"`
	}
	var n int
	prevCycle := int64(-1)
	sc := bufio.NewScanner(events)
	for sc.Scan() {
		var l evLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		if l.Kind == "" {
			t.Fatalf("event without kind: %q", sc.Text())
		}
		if l.Cycle < prevCycle {
			t.Fatalf("cycle went backwards at %q", sc.Text())
		}
		prevCycle = l.Cycle
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("trace output is empty")
	}

	metrics, err := os.Open(metOut)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = metrics.Close() }()
	var snaps int
	sc = bufio.NewScanner(metrics)
	for sc.Scan() {
		var m sim.MetricsSnapshot
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad metrics line %q: %v", sc.Text(), err)
		}
		if m.Cycle <= 0 || m.Requests <= 0 {
			t.Fatalf("implausible snapshot: %+v", m)
		}
		snaps++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if snaps == 0 {
		t.Fatal("metrics output is empty")
	}
}

// Command cloudsim reproduces the paper's evaluation figures with the
// trace-driven simulator, or runs a single custom simulation over a trace
// file.
//
// Reproduce a figure (or every figure):
//
//	cloudsim -fig fig3 [-scale 1] [-seed 1]
//	cloudsim -all -scale 0.2
//
// Experiments fan their independent simulation runs across a worker pool;
// -workers (or the CACHECLOUD_WORKERS environment variable) sets the pool
// size, 0 meaning one worker per CPU. Output is byte-identical for every
// worker count. -json emits the figure series as machine-readable JSON
// instead of text tables, -microbench appends micro-benchmark timings of
// the protocol hot paths to the JSON report, and -scalebench appends a
// parallel-read replay over a two-million-document catalog.
//
// Run a custom simulation over a generated trace file:
//
//	cloudsim -trace sydney.trace -arch dynamic -rings 5 -policy utility
//
// Custom runs can stream observability data: -trace-out writes every
// protocol event (local hits, peer hits, beacon lookups, update fan-out,
// record migrations, node deaths) as cycle-ordered JSONL, and
// -metrics-every N emits a cumulative metrics snapshot at every Nth
// rebalance cycle (-metrics-out names the destination, default stdout).
package main

import (
	"flag"
	"fmt"
	"os"

	"cachecloud/internal/experiments"
	"cachecloud/internal/obs"
	"cachecloud/internal/placement"
	"cachecloud/internal/sim"
	"cachecloud/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cloudsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cloudsim", flag.ContinueOnError)
	var (
		fig       = fs.String("fig", "", "reproduce one figure: fig3 … fig9")
		all       = fs.Bool("all", false, "reproduce every figure")
		scale     = fs.Float64("scale", 1.0, "workload scale (1 = paper-sized)")
		seed      = fs.Int64("seed", 1, "random seed")
		traceFile = fs.String("trace", "", "run a custom simulation over this trace file")
		arch      = fs.String("arch", "dynamic", "custom run: nocoop, static or dynamic")
		rings     = fs.Int("rings", 0, "custom run: beacon rings (dynamic; 0 = caches/2)")
		policy    = fs.String("policy", "adhoc", "custom run: adhoc, beacon or utility")
		diskFrac  = fs.Float64("disk", 0, "custom run: per-cache disk as a fraction of corpus bytes (0 = unlimited)")
		cycle     = fs.Int64("cycle", 60, "custom run: rebalance cycle length in units")
		ttl       = fs.Int64("ttl", 0, "custom run: TTL consistency in units (0 = server-driven push)")
		lease     = fs.Int64("lease", 0, "custom run: cooperative-lease duration in units")
		series    = fs.Bool("series", false, "custom run: print per-unit convergence series")
		traceOut  = fs.String("trace-out", "", "custom run: write protocol events as JSONL to this file")
		metEvery  = fs.Int64("metrics-every", 0, "custom run: emit a metrics snapshot every N rebalance cycles (0 disables)")
		metOut    = fs.String("metrics-out", "", "custom run: metrics JSONL destination (default stdout)")
		workers   = fs.Int("workers", 0, "parallel runs per experiment (0 = CACHECLOUD_WORKERS or one per CPU)")
		jsonOut   = fs.Bool("json", false, "emit figure results as JSON instead of text")
		microb    = fs.Bool("microbench", false, "with -json: include hot-path micro-benchmark timings")
		scaleb    = fs.Bool("scalebench", false, "with -json: include a parallel-read replay at scale (2M docs, 1000 caches)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	runner := experiments.NewRunner(*workers)
	switch {
	case *all:
		if *jsonOut {
			return writeJSON(runner, figureNames(), *scale, *seed, *microb, *scaleb)
		}
		for _, name := range figureNames() {
			fmt.Printf("=== %s ===\n", name)
			if err := runner.Run(name, *scale, *seed, os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	case *fig != "":
		if *jsonOut {
			return writeJSON(runner, []string{*fig}, *scale, *seed, *microb, *scaleb)
		}
		return runner.Run(*fig, *scale, *seed, os.Stdout)
	case *traceFile != "":
		return customRun(customOpts{
			traceFile: *traceFile, arch: *arch, policy: *policy, rings: *rings,
			diskFrac: *diskFrac, cycle: *cycle, seed: *seed,
			ttl: *ttl, lease: *lease, series: *series,
			traceOut: *traceOut, metricsEvery: *metEvery, metricsOut: *metOut,
		})
	default:
		return fmt.Errorf("nothing to do: pass -fig, -all or -trace (experiments: %v)", experiments.Names())
	}
}

// figureNames lists the experiments -all runs: every name except fig8,
// whose sweep fig7 already covers.
func figureNames() []string {
	var names []string
	for _, name := range experiments.Names() {
		if name == "fig8" {
			continue
		}
		names = append(names, name)
	}
	return names
}

// customOpts bundles the custom-run flags.
type customOpts struct {
	traceFile, arch, policy string
	rings                   int
	diskFrac                float64
	cycle, seed, ttl, lease int64
	series                  bool
	traceOut, metricsOut    string
	metricsEvery            int64
}

func customRun(o customOpts) error {
	f, err := os.Open(o.traceFile)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	tr, err := trace.Read(f)
	if err != nil {
		return err
	}

	cfg := sim.Config{
		NumRings: o.rings, CycleLength: o.cycle, Seed: o.seed,
		CapacityFraction: o.diskFrac, TTL: o.ttl, LeaseDuration: o.lease,
		CollectSeries: o.series,
	}
	if o.traceOut != "" {
		tf, err := os.Create(o.traceOut)
		if err != nil {
			return fmt.Errorf("create trace output: %w", err)
		}
		defer func() { _ = tf.Close() }()
		tracer := obs.NewTracer(1024)
		tracer.SetSink(tf)
		cfg.Tracer = tracer
	}
	if o.metricsEvery > 0 {
		cfg.MetricsEvery = o.metricsEvery
		cfg.MetricsSink = os.Stdout
		if o.metricsOut != "" && o.metricsOut != "-" {
			mf, err := os.Create(o.metricsOut)
			if err != nil {
				return fmt.Errorf("create metrics output: %w", err)
			}
			defer func() { _ = mf.Close() }()
			cfg.MetricsSink = mf
		}
	}
	arch, policyName, diskFrac := o.arch, o.policy, o.diskFrac
	switch arch {
	case "nocoop":
		cfg.Arch = sim.NoCooperation
	case "static":
		cfg.Arch = sim.StaticHashing
	case "dynamic":
		cfg.Arch = sim.DynamicHashing
	default:
		return fmt.Errorf("unknown architecture %q", arch)
	}
	switch policyName {
	case "adhoc":
		cfg.Policy = placement.AdHoc{}
	case "beacon":
		cfg.Policy = placement.BeaconPoint{}
	case "utility":
		u, err := placement.NewUtility(placement.EqualOn(true, true, true, diskFrac > 0), 0.5)
		if err != nil {
			return err
		}
		cfg.Policy = u
	default:
		return fmt.Errorf("unknown policy %q", policyName)
	}

	res, err := sim.Run(cfg, tr)
	if err != nil {
		return err
	}
	printResult(res)
	if o.series && res.Series != nil {
		printSeries(res.Series)
	}
	return nil
}

// printSeries prints the convergence curve, thinned to at most 20 rows.
func printSeries(sr *sim.Series) {
	fmt.Println("\nconvergence (per time unit):")
	fmt.Printf("%-8s %12s %10s\n", "unit", "network MB", "hit rate")
	step := len(sr.Units)/20 + 1
	for i := 0; i < len(sr.Units); i += step {
		fmt.Printf("%-8d %12.2f %9.1f%%\n", sr.Units[i], sr.NetworkMB[i], 100*sr.HitRate[i])
	}
}

func printResult(r *sim.Result) {
	fmt.Printf("architecture: %s, policy: %s, duration: %d units\n", r.Arch, r.Policy, r.Duration)
	fmt.Printf("requests: %d (local %.1f%%, cloud %.1f%%, origin %.1f%%)\n",
		r.Requests, 100*r.LocalHitRate(),
		100*ratioOf(r.CloudHits, r.Requests), 100*ratioOf(r.GroupMisses, r.Requests))
	fmt.Printf("updates: %d (holders refreshed: %d)\n", r.Updates, r.HoldersNotified)
	fmt.Printf("network: %.2f MB/unit (intra-cloud %d B, server %d B, control %d B)\n",
		r.NetworkMBPerUnit(), r.IntraCloudBytes, r.ServerBytes, r.ControlBytes)
	fmt.Printf("stored per cache: %.1f%% of catalog (mean)\n", r.StoredPctMean())
	if r.Latency != nil {
		fmt.Printf("client latency:  mean %.1f ms, p50 %.1f, p95 %.1f, p99 %.1f\n",
			r.Latency.Mean(), r.Latency.Quantile(0.5), r.Latency.Quantile(0.95), r.Latency.Quantile(0.99))
	}
	if r.Revalidations > 0 || r.StaleServes > 0 || r.LeaseRenewals > 0 {
		fmt.Printf("consistency:     %d revalidations, %d stale serves, %d lease renewals\n",
			r.Revalidations, r.StaleServes, r.LeaseRenewals)
	}
	if len(r.BeaconLoads.Loads) > 0 {
		lp := r.LoadPerUnit()
		fmt.Printf("beacon load: CoV %.3f, max/mean %.2f\n", lp.CoV(), lp.MaxToMean())
		fmt.Printf("records migrated: %d\n", r.RecordsMigrated)
	}
}

func ratioOf(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Command simnet sweeps the deterministic cluster simulator over a range
// of seeds. Each seed generates a fault schedule (crashes, partitions,
// drop windows, rebalances) and runs the production node code on a
// virtual clock, checking the protocol invariants between events. On the
// first failing seed it prints the violations, the ddmin-minimized
// schedule that still reproduces them, and exits 1.
//
// Usage:
//
//	simnet [-seeds 200] [-seed -1] [-nodes 4] [-ringsize 2] [-docs 40]
//	       [-rounds 3] [-inject ""] [-schedule file] [-warm] [-shields 0]
//	       [-tenants 0] [-v]
//
// -seed runs a single seed (overrides -seeds). -schedule replays an
// encoded schedule file instead of generating one. -inject plants a
// deliberate bug (e.g. "heartbeat-undercount" or "supdate-stale") to
// prove the harness catches it. -warm gives every node a durable store
// and switches each round's recovery to a warm process restart
// (heal-warm) with the origin-fetch bound invariant (check-warm).
// -shields N interposes a shield tier of N caches between the cloud and
// the origin, adds a shield-tier fault phase to every round, and arms
// the cross-tier invariants (exactly-once update delivery per shield,
// scoped-purge completeness, shield freshness at quiescent points).
package main

import (
	"flag"
	"fmt"
	"os"

	"cachecloud/internal/simnet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "simnet:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("simnet", flag.ContinueOnError)
	var (
		seeds    = fs.Int64("seeds", 200, "number of seeds to sweep (0..seeds-1)")
		seed     = fs.Int64("seed", -1, "run exactly this seed (overrides -seeds)")
		nodes    = fs.Int("nodes", 4, "cluster size")
		ringSize = fs.Int("ringsize", 2, "beacon points per ring")
		docs     = fs.Int("docs", 40, "catalog size")
		rounds   = fs.Int("rounds", 3, "crash/recover rounds per seed")
		inject   = fs.String("inject", "", "deliberate bug to plant (heartbeat-undercount)")
		schedule = fs.String("schedule", "", "replay an encoded schedule file instead of generating")
		warm     = fs.Bool("warm", false, "durable stores + warm process restarts instead of plain heals")
		shields  = fs.Int("shields", 0, "shield-tier caches between the cloud and the origin (0 = single tier)")
		tenants  = fs.Int("tenants", 0, "registered tenants with weighted quotas (0 = single tenant)")
		verbose  = fs.Bool("v", false, "print the event log of every run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	base := simnet.Config{
		Nodes: *nodes, RingSize: *ringSize, Docs: *docs,
		Rounds: *rounds, Inject: *inject, Warm: *warm, Shields: *shields,
		Tenants: *tenants,
	}
	if *schedule != "" {
		text, err := os.ReadFile(*schedule)
		if err != nil {
			return err
		}
		evs, err := simnet.Decode(string(text))
		if err != nil {
			return err
		}
		base.Schedule = evs
	}

	first, last := int64(0), *seeds-1
	if *seed >= 0 {
		first, last = *seed, *seed
	}
	for sd := first; sd <= last; sd++ {
		cfg := base
		cfg.Seed = sd
		res, err := simnet.Run(cfg)
		if err != nil {
			return fmt.Errorf("seed %d: %w", sd, err)
		}
		if *verbose {
			fmt.Printf("--- seed %d ---\n%s", sd, res.Log)
		}
		if !res.Failed() {
			continue
		}
		fmt.Printf("FAIL seed %d: %d invariant violation(s)\n", sd, len(res.Failures))
		for _, f := range res.Failures {
			fmt.Println("  ", f)
		}
		min := simnet.Minimize(res.Schedule, func(cand []simnet.Event) bool {
			c := cfg
			c.Schedule = cand
			r, err := simnet.Run(c)
			return err == nil && r.Failed()
		})
		fmt.Printf("minimized schedule (%d of %d events still fail):\n%s",
			len(min), len(res.Schedule), simnet.Encode(min))
		fmt.Printf("replay: simnet -seed %d -nodes %d -ringsize %d -docs %d -rounds %d",
			sd, *nodes, *ringSize, *docs, *rounds)
		if *inject != "" {
			fmt.Printf(" -inject %s", *inject)
		}
		if *warm {
			fmt.Printf(" -warm")
		}
		if *shields > 0 {
			fmt.Printf(" -shields %d", *shields)
		}
		if *tenants > 0 {
			fmt.Printf(" -tenants %d", *tenants)
		}
		fmt.Println()
		return fmt.Errorf("seed %d failed", sd)
	}
	n := last - first + 1
	fmt.Printf("ok: %d seed(s) passed, all invariants held\n", n)
	return nil
}

// Command cachenode runs one live edge-cache node of a cache cloud. Every
// node of the cluster shares a JSON cluster configuration file describing
// the rings, the node addresses and the origin address:
//
//	{
//	  "intraGen": 1000,
//	  "rings": [["n0","n1"],["n2","n3"]],
//	  "addrs": {"n0":"http://127.0.0.1:8100", "n1":"http://127.0.0.1:8101",
//	            "n2":"http://127.0.0.1:8102", "n3":"http://127.0.0.1:8103"},
//	  "originAddr": "http://127.0.0.1:8000",
//	  "capacityBytes": 0,
//	  "utilityPlacement": true
//	}
//
// Usage:
//
//	cachenode -name n0 -listen 127.0.0.1:8100 -config cluster.json
//
// The node heartbeats its liveness to the origin every -heartbeat (0
// disables); outbound calls get per-request deadlines (-timeout) with
// -retries bounded retries and per-peer circuit breaking.
//
// Overload resilience is tuned with -max-inflight (admission gate
// capacity), -miss-queue (bounded miss-class queue) and -limit-mode
// (adaptive origin-fetch limiter: aimd, gradient or fixed); each
// overrides the matching cluster-config field when set.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"cachecloud/internal/node"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cachenode:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cachenode", flag.ContinueOnError)
	var (
		name      = fs.String("name", "", "this node's name (must appear in the cluster config)")
		listen    = fs.String("listen", "", "listen address, e.g. 127.0.0.1:8100")
		cfgPath   = fs.String("config", "cluster.json", "cluster configuration file")
		snap      = fs.String("snapshot", "", "snapshot file: loaded at start, written on POST /snapshot/save")
		heartbeat = fs.Duration("heartbeat", 2*time.Second, "heartbeat period to the origin (0 disables)")
		timeout   = fs.Duration("timeout", 5*time.Second, "per-request deadline for outbound calls")
		retries   = fs.Int("retries", 2, "outbound retries after a failed attempt (-1 disables)")
		pprofOn   = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		maxInfl   = fs.Int("max-inflight", 0, "admission gate capacity in weight units (0 = config value or 64)")
		missQueue = fs.Int("miss-queue", 0, "bounded queue for miss-class admissions (0 = config value or 32)")
		limitMode = fs.String("limit-mode", "", "origin-fetch limiter: aimd, gradient or fixed (default config value or aimd)")
		storeDir  = fs.String("store-dir", "", "durable cache tier directory root (empty = memory-only; overrides config)")
		fsyncPol  = fs.String("fsync", "", "durable store fsync policy: rotate, always or never (default config value or rotate)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" || *listen == "" {
		return fmt.Errorf("both -name and -listen are required")
	}
	cfg, err := loadConfig(*cfgPath)
	if err != nil {
		return err
	}
	// Overload knobs: flags override the shared cluster config so a single
	// node can be retuned without editing the file every node reads.
	if *maxInfl > 0 {
		cfg.MaxInflight = *maxInfl
	}
	if *missQueue > 0 {
		cfg.MissQueue = *missQueue
	}
	if *limitMode != "" {
		cfg.LimitMode = *limitMode
	}
	if *storeDir != "" {
		cfg.StoreDir = *storeDir
	}
	if *fsyncPol != "" {
		cfg.Fsync = *fsyncPol
	}
	tp := node.NewHTTPTransport(node.TransportOptions{
		RequestTimeout: *timeout,
		MaxRetries:     *retries,
		NoRetries:      *retries < 0,
	})
	n, err := node.NewCacheNodeWithTransport(*name, cfg, tp)
	if err != nil {
		return err
	}
	if *snap != "" {
		n.SetSnapshotPath(*snap)
		if err := n.LoadSnapshotFile(*snap); err != nil {
			return fmt.Errorf("load snapshot: %w", err)
		}
	}
	if *heartbeat > 0 {
		stop := n.StartHeartbeat(*heartbeat)
		defer stop()
	}
	if warm, recovered := n.WarmBootInfo(); warm {
		fmt.Fprintf(os.Stderr, "cachenode %s warm boot: %d entries recovered, revalidating\n", *name, recovered)
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			kept, dropped := n.WarmRevalidate(ctx)
			fmt.Fprintf(os.Stderr, "cachenode %s warm revalidation: %d fresh, %d stale dropped\n", *name, kept, dropped)
		}()
	}
	h := n.Handler()
	if *pprofOn {
		h = withPprof(h)
	}
	fmt.Fprintf(os.Stderr, "cachenode %s listening on %s\n", *name, *listen)
	return http.ListenAndServe(*listen, h)
}

// withPprof mounts the net/http/pprof handlers under /debug/pprof/ in
// front of the node's own routes. Gated behind -pprof: the profiling
// endpoints should not be exposed by default.
func withPprof(h http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", h)
	return mux
}

func loadConfig(path string) (node.ClusterConfig, error) {
	var cfg node.ClusterConfig
	raw, err := os.ReadFile(path)
	if err != nil {
		return cfg, fmt.Errorf("read cluster config: %w", err)
	}
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return cfg, fmt.Errorf("parse cluster config: %w", err)
	}
	return cfg, nil
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.json")
	body := `{
	  "intraGen": 1000,
	  "rings": [["n0","n1"]],
	  "addrs": {"n0":"http://127.0.0.1:8100","n1":"http://127.0.0.1:8101"},
	  "originAddr": "http://127.0.0.1:8000",
	  "utilityPlacement": true,
	  "maxInflight": 128,
	  "missQueue": 48,
	  "limitMode": "gradient"
	}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := loadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.IntraGen != 1000 || len(cfg.Rings) != 1 || !cfg.UtilityPlacement {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Addrs["n1"] != "http://127.0.0.1:8101" {
		t.Fatalf("addrs = %v", cfg.Addrs)
	}
	if cfg.MaxInflight != 128 || cfg.MissQueue != 48 || cfg.LimitMode != "gradient" {
		t.Fatalf("overload knobs = %d/%d/%q", cfg.MaxInflight, cfg.MissQueue, cfg.LimitMode)
	}
}

func TestLoadConfigErrors(t *testing.T) {
	if _, err := loadConfig("/nonexistent.json"); err == nil {
		t.Fatal("missing config accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadConfig(path); err == nil {
		t.Fatal("malformed config accepted")
	}
}

func TestRunRequiresFlags(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("missing flags accepted")
	}
}

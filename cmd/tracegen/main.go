// Command tracegen generates workload trace files for the simulator:
// the paper's synthetic Zipf dataset or the Sydney-like dataset standing in
// for the IBM 2000 Olympics trace.
//
// Usage:
//
//	tracegen -type zipf   -out zipf.trace   [-docs 50000] [-alpha 0.9] ...
//	tracegen -type sydney -out sydney.trace [-docs 51634] ...
//	tracegen -stats existing.trace          # characterise a trace file
package main

import (
	"flag"
	"fmt"
	"os"

	"cachecloud/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		kind     = fs.String("type", "zipf", "trace type: zipf or sydney")
		out      = fs.String("out", "", "output file (default stdout)")
		seed     = fs.Int64("seed", 1, "random seed")
		docs     = fs.Int("docs", 0, "unique documents (0 = dataset default)")
		caches   = fs.Int("caches", 10, "number of edge caches")
		duration = fs.Int64("duration", 0, "trace duration in time units (0 = default)")
		reqs     = fs.Int("reqs", 0, "requests per cache per unit (zipf) / peak rate (sydney)")
		updates  = fs.Int("updates", 0, "updates per unit (0 = default 195)")
		alpha    = fs.Float64("alpha", 0.9, "Zipf exponent (zipf type only)")
		stats    = fs.String("stats", "", "characterise an existing trace file and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *stats != "" {
		return printStats(*stats)
	}

	var tr *trace.Trace
	switch *kind {
	case "zipf":
		tr = trace.GenerateZipf(trace.ZipfConfig{
			Seed: *seed, NumDocs: *docs, Alpha: *alpha, Caches: *caches,
			Duration: *duration, ReqPerCache: *reqs, UpdatesPerUnit: *updates,
		})
	case "sydney":
		tr = trace.GenerateSydney(trace.SydneyConfig{
			Seed: *seed, NumDocs: *docs, Caches: *caches,
			Duration: *duration, PeakReqPerCache: *reqs, UpdatesPerUnit: *updates,
		})
	default:
		return fmt.Errorf("unknown trace type %q (want zipf or sydney)", *kind)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		w = f
	}
	if err := tr.Write(w); err != nil {
		return fmt.Errorf("write trace: %w", err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d docs, %d requests, %d updates over %d units\n",
		len(tr.Docs), tr.NumRequests(), tr.NumUpdates(), tr.Duration)
	return nil
}

func printStats(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	tr, err := trace.Read(f)
	if err != nil {
		return err
	}
	trace.Analyze(tr).Format(os.Stdout)
	return nil
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cachecloud/internal/trace"
)

func TestRunGeneratesReadableTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.trace")
	err := run([]string{"-type", "zipf", "-docs", "200", "-duration", "5",
		"-caches", "3", "-reqs", "4", "-updates", "2", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	tr, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Docs) != 200 || tr.Duration != 5 {
		t.Fatalf("trace %d docs dur %d", len(tr.Docs), tr.Duration)
	}
	if tr.NumRequests() != 5*3*4 || tr.NumUpdates() != 5*2 {
		t.Fatalf("events %d/%d", tr.NumRequests(), tr.NumUpdates())
	}
}

func TestRunSydneyType(t *testing.T) {
	out := filepath.Join(t.TempDir(), "s.trace")
	err := run([]string{"-type", "sydney", "-docs", "300", "-duration", "10",
		"-caches", "2", "-reqs", "5", "-updates", "3", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "sydney2000.example.org") {
		t.Fatal("sydney trace missing its site")
	}
}

func TestRunRejectsUnknownType(t *testing.T) {
	if err := run([]string{"-type", "bogus"}); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestRunStatsMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.trace")
	if err := run([]string{"-type", "zipf", "-docs", "100", "-duration", "3", "-out", out}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-stats", out}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-stats", "/nonexistent/file"}); err == nil {
		t.Fatal("missing stats file accepted")
	}
}

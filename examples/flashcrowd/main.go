// Flashcrowd: a Sydney-like workload whose hot set shifts every two hours
// (medal tables change as events finish). Static hashing pins each
// document's beacon point forever, so whichever cache owns the current hot
// documents is overloaded; dynamic hashing re-divides the intra-ring hash
// sub-ranges every cycle and keeps beacon loads balanced through the
// shifts. This is Figures 3-4 of the paper as a narrative.
package main

import (
	"fmt"
	"log"

	"cachecloud"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Six hours of trace with the hot set rotating every two hours.
	tr := cachecloud.GenerateSydneyTrace(cachecloud.SydneyTraceConfig{
		Seed:            7,
		NumDocs:         20_000,
		Caches:          10,
		Duration:        360,
		PeakReqPerCache: 60,
		UpdatesPerUnit:  195,
		HotDriftPeriod:  120,
	})
	fmt.Printf("workload: %d requests, %d updates over %d units (hot set shifts every 120 units)\n\n",
		tr.NumRequests(), tr.NumUpdates(), tr.Duration)

	static, err := cachecloud.Simulate(cachecloud.SimConfig{
		Arch: cachecloud.StaticHashing, CycleLength: 60, Seed: 1,
	}, tr)
	if err != nil {
		return err
	}
	dynamic, err := cachecloud.Simulate(cachecloud.SimConfig{
		Arch: cachecloud.DynamicHashing, NumRings: 5, CycleLength: 60, Seed: 1,
	}, tr)
	if err != nil {
		return err
	}

	fmt.Println("beacon loads per unit time, heaviest first:")
	fmt.Printf("%-6s %12s %12s\n", "rank", "static", "dynamic")
	ss, ds := static.LoadPerUnit().Sorted(), dynamic.LoadPerUnit().Sorted()
	for i := range ss {
		fmt.Printf("%-6d %12.1f %12.1f\n", i+1, ss[i], ds[i])
	}
	fmt.Println()

	sc, dc := static.LoadPerUnit(), dynamic.LoadPerUnit()
	fmt.Printf("static  hashing: CoV %.3f, heaviest/mean %.2f\n", sc.CoV(), sc.MaxToMean())
	fmt.Printf("dynamic hashing: CoV %.3f, heaviest/mean %.2f  (%d lookup records migrated)\n",
		dc.CoV(), dc.MaxToMean(), dynamic.RecordsMigrated)
	fmt.Printf("\ndynamic hashing improves the coefficient of variation by %.0f%%\n",
		100*(1-dc.CoV()/sc.CoV()))
	return nil
}

// Newsfeed: live-updated documents (scoreboards, tickers) stress the
// consistency-maintenance side of a cache cloud. This example compares the
// three placement schemes on the same high-update workload: ad hoc
// replication pays an update-fanout for every cached copy, beacon-point
// placement pays a peer fetch on almost every request, and the
// utility-based scheme replicates hot-and-stable documents while keeping
// update-churned documents at few caches — the paper's Figure 7/8 story.
package main

import (
	"fmt"
	"log"

	"cachecloud"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A newsfeed-like workload: heavy skew and a high update rate near the
	// top of the paper's sweep.
	tr := cachecloud.GenerateZipfTrace(cachecloud.ZipfTraceConfig{
		Seed:           11,
		NumDocs:        20_000,
		Alpha:          0.9,
		Caches:         10,
		Duration:       240,
		ReqPerCache:    40,
		UpdatesPerUnit: 500,
	})
	fmt.Printf("workload: %d requests, %d updates over %d units\n\n",
		tr.NumRequests(), tr.NumUpdates(), tr.Duration)

	utility, err := cachecloud.NewUtilityPlacement(
		cachecloud.EqualWeights(true, true, true, false), 0.5)
	if err != nil {
		return err
	}
	policies := []cachecloud.PlacementPolicy{
		cachecloud.AdHocPlacement{},
		utility,
		cachecloud.BeaconPointPlacement{},
	}

	fmt.Printf("%-10s %14s %14s %12s %12s\n",
		"policy", "stored %/cache", "network MB/u", "local hit%", "cloud hit%")
	for _, pol := range policies {
		res, err := cachecloud.Simulate(cachecloud.SimConfig{
			Arch:        cachecloud.DynamicHashing,
			NumRings:    5,
			CycleLength: 60,
			Policy:      pol,
			Seed:        1,
		}, tr)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %14.1f %14.2f %12.1f %12.1f\n",
			res.Policy, res.StoredPctMean(), res.NetworkMBPerUnit(),
			100*res.LocalHitRate(), 100*res.CloudHitRate())
	}

	fmt.Println("\nunder extreme update churn the utility scheme sheds almost all")
	fmt.Println("replicas of update-dominated documents, cutting ad hoc's network")
	fmt.Println("load in half while keeping a far better local hit rate than the")
	fmt.Println("single-copy beacon placement — the paper's Figure 7/8 trade-off.")
	return nil
}

// Edgenetwork: the paper's large-scale framing end to end. Forty edge
// caches with synthetic network coordinates are clustered into cache
// clouds with the landmark technique (the paper's companion work it
// assumes as given), a shared origin is attached, and a skewed workload
// runs across the whole network. The output shows the cooperative-
// consistency saving that motivates clouds: the origin sends one update
// message per cloud instead of one per holding cache.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cachecloud"
	"cachecloud/internal/landmark"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// An edge network: 40 caches in 5 geographic clusters.
	rng := rand.New(rand.NewSource(42))
	nodes := landmark.RandomTopology(rng, 40, 5, 15)

	network, clusters, err := cachecloud.BuildEdgeNetworkFromTopology(nodes, landmark.Config{
		Landmarks: landmark.DefaultLandmarks(),
		BinWidth:  140,
	}, cachecloud.EdgeNetworkConfig{CycleLength: 30, Seed: 7})
	if err != nil {
		return err
	}

	fmt.Printf("landmark clustering grouped %d caches into %d cache clouds:\n", len(nodes), len(clusters))
	for i, c := range clusters {
		fmt.Printf("  cloud %d: %2d caches (milestone signature %s)\n", i, len(c.Members), c.Signature)
	}
	fmt.Println()

	// A skewed workload over every cache in the network.
	tr := cachecloud.GenerateZipfTrace(cachecloud.ZipfTraceConfig{
		Seed:           3,
		NumDocs:        20_000,
		Alpha:          0.9,
		CacheIDs:       network.CacheIDs(),
		Duration:       120,
		ReqPerCache:    15,
		UpdatesPerUnit: 100,
	})
	fmt.Printf("workload: %d requests, %d updates over %d units\n\n",
		tr.NumRequests(), tr.NumUpdates(), tr.Duration)

	res, err := network.Run(tr)
	if err != nil {
		return err
	}

	fmt.Printf("in-network hit rate: %.1f%% (local %.1f%%, nearby cache %.1f%%)\n",
		100*res.HitRate(),
		100*float64(res.LocalHits)/float64(res.Requests),
		100*float64(res.CloudHits)/float64(res.Requests))
	fmt.Printf("\nper-cloud view:\n%-8s %8s %10s %10s %12s\n", "cloud", "caches", "requests", "hit rate", "beacon CoV")
	for i, pc := range res.PerCloud {
		fmt.Printf("%-8d %8d %10d %9.1f%% %12.3f\n", i, pc.Caches, pc.Requests, 100*pc.HitRate, pc.BeaconCoV)
	}

	perCloud := float64(res.UpdateMessages) / float64(res.Updates)
	perHolder := float64(res.HolderRefreshes) / float64(res.Updates)
	fmt.Printf("\ncooperative consistency: the origin sent %.0f update messages per\n", perCloud)
	fmt.Printf("update (one per cloud); pushing to every holder directly would have\n")
	fmt.Printf("taken %.1f messages per update — the clouds absorb a %.1fx fan-out.\n",
		perHolder, perHolder/perCloud)
	return nil
}

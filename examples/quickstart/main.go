// Quickstart: build a 10-cache cache cloud in-process and walk the three
// cooperative protocols by hand — document lookup, cooperative retrieval
// with holder registration, and origin-driven update propagation.
package main

import (
	"fmt"
	"log"

	"cachecloud"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The paper's default topology: 10 caches, 5 beacon rings of 2 beacon
	// points, IntraGen 1000, fine-grained load tracking.
	cloud, err := cachecloud.NewCloud(cachecloud.CloudConfig{
		NumRings:    5,
		IntraGen:    1000,
		FineGrained: true,
	}, cachecloud.CacheNames(10), nil)
	if err != nil {
		return err
	}

	// An origin server with a tiny catalog, attached to the cloud so
	// updates reach beacon points.
	docs := []cachecloud.Document{
		{URL: "http://news.example.org/scores/final", Size: 18_000},
		{URL: "http://news.example.org/medals", Size: 9_500},
		{URL: "http://news.example.org/schedule", Size: 4_200},
	}
	server := cachecloud.NewOriginServer(docs)
	server.AttachCloud(cloud)

	const url = "http://news.example.org/scores/final"
	now := int64(0)

	// --- a request arrives at cache-03 and misses locally ---
	requester := cloud.Cache("cache-03")
	if _, hit := requester.Get(url, now); hit {
		return fmt.Errorf("unexpected hit on a cold cache")
	}

	// Document lookup protocol: ask the document's beacon point.
	res, err := cloud.Lookup(url, now)
	if err != nil {
		return err
	}
	fmt.Printf("lookup: beacon point of %q is %s, holders: %v\n", url, res.Beacon, res.Holders)

	// Group miss: no holder in the cloud, fetch from the origin and store.
	doc, err := server.Fetch(url)
	if err != nil {
		return err
	}
	if _, err := requester.Put(cachecloud.Copy{Doc: doc, FetchedAt: now}, now); err != nil {
		return err
	}
	if err := cloud.RegisterHolder(url, "cache-03"); err != nil {
		return err
	}
	fmt.Printf("group miss: fetched %s from origin, stored at cache-03\n", doc)

	// --- the same document requested at cache-07: cloud hit ---
	now++
	res, err = cloud.Lookup(url, now)
	if err != nil {
		return err
	}
	fmt.Printf("second lookup: holders now %v — retrieve from a nearby cache, not the origin\n", res.Holders)
	cp, _ := cloud.Cache(res.Holders[0]).Peek(url)
	if _, err := cloud.Cache("cache-07").Put(cachecloud.Copy{Doc: cp.Doc, FetchedAt: now}, now); err != nil {
		return err
	}
	if err := cloud.RegisterHolder(url, "cache-07"); err != nil {
		return err
	}

	// --- the origin publishes an update: one message per cloud ---
	now++
	out, err := server.PublishUpdate(url, now)
	if err != nil {
		return err
	}
	fmt.Printf("update: v%d pushed through the beacon to %d holders (%d fanout bytes)\n",
		out.Doc.Version, out.HoldersNotified, out.FanoutBytes)

	for _, id := range []string{"cache-03", "cache-07"} {
		got, _ := cloud.Cache(id).Peek(url)
		fmt.Printf("  %s now serves version %d\n", id, got.Doc.Version)
	}

	// Beacon loads accumulated by the protocol traffic.
	fmt.Printf("beacon load distribution: %s\n", cloud.LoadDistribution())
	return nil
}

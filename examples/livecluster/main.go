// Livecluster: boots a real cache cloud — six edge-cache HTTP nodes in
// three beacon rings plus an origin node — on loopback, then drives it over
// the wire: client requests through GET /doc, an update through the
// origin's POST /publish, and one sub-range determination cycle through
// POST /rebalance.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"strings"
	"time"

	"cachecloud"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Catalog of 100 "scoreboard" documents.
	docs := make([]cachecloud.Document, 100)
	for i := range docs {
		docs[i] = cachecloud.Document{
			URL:  fmt.Sprintf("http://games.example.org/scores/%d", i),
			Size: int64(2_000 + 37*i),
		}
	}

	names := []string{"syd-a", "syd-b", "syd-c", "syd-d", "syd-e", "syd-f"}
	cluster, err := cachecloud.StartLocalCluster(names, 2, docs, cachecloud.ClusterConfig{
		IntraGen: 1000,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()
	fmt.Printf("cluster up: %d cache nodes in %d rings + origin at %s\n\n",
		len(cluster.Caches), len(cluster.Cfg.Rings), cluster.Cfg.OriginAddr)

	client := &http.Client{Timeout: 5 * time.Second}
	get := func(base, docURL string) (map[string]any, error) {
		resp, err := client.Get(base + "/doc?url=" + url.QueryEscape(docURL))
		if err != nil {
			return nil, err
		}
		defer func() { _ = resp.Body.Close() }()
		var out map[string]any
		return out, json.NewDecoder(resp.Body).Decode(&out)
	}

	// Drive requests: every node asks for a skewed slice of the catalog.
	fmt.Println("driving 300 client requests across the cluster…")
	for i := 0; i < 300; i++ {
		nodeName := names[i%len(names)]
		docURL := docs[(i*i)%40].URL // skewed toward low indexes
		if _, err := get(cluster.Cfg.Addrs[nodeName], docURL); err != nil {
			return fmt.Errorf("request %d: %w", i, err)
		}
	}

	// Publish an update through the origin.
	hot := docs[0].URL
	body := strings.NewReader(fmt.Sprintf(`{"url":%q}`, hot))
	resp, err := client.Post(cluster.Cfg.OriginAddr+"/publish", "application/json", body)
	if err != nil {
		return err
	}
	var pub struct {
		Version  int `json:"version"`
		Notified int `json:"notified"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pub); err != nil {
		return err
	}
	_ = resp.Body.Close()
	fmt.Printf("published update of %s → version %d, %d holders refreshed over HTTP\n\n",
		hot, pub.Version, pub.Notified)

	// Run one sub-range determination cycle.
	resp, err = client.Post(cluster.Cfg.OriginAddr+"/rebalance", "application/json", strings.NewReader("{}"))
	if err != nil {
		return err
	}
	var reb struct {
		Moves int `json:"moves"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reb); err != nil {
		return err
	}
	_ = resp.Body.Close()
	fmt.Printf("rebalance cycle complete: %d sub-range boundary moves\n\n", reb.Moves)

	// Per-node statistics.
	fmt.Printf("%-8s %10s %10s %10s %10s %8s\n", "node", "stored", "localHits", "peerHits", "origin", "hit%")
	for _, n := range names {
		resp, err := client.Get(cluster.Cfg.Addrs[n] + "/stats")
		if err != nil {
			return err
		}
		var st struct {
			StoredDocs int     `json:"storedDocs"`
			LocalHits  int64   `json:"localHits"`
			PeerHits   int64   `json:"peerHits"`
			OriginMiss int64   `json:"originMiss"`
			HitRate    float64 `json:"hitRate"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return err
		}
		_ = resp.Body.Close()
		fmt.Printf("%-8s %10d %10d %10d %10d %7.1f%%\n",
			n, st.StoredDocs, st.LocalHits, st.PeerHits, st.OriginMiss, 100*st.HitRate)
	}
	return nil
}

# cachecloud — Cache Clouds (ICDCS 2005) reproduction

GO ?= go

.PHONY: all build vet test race bench bench-json bench-json2 bench-json3 bench-smoke figures figures-fast examples golden fuzz simsweep shield-sweep storm restart-chaos tenant-sweep clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark sweep: figure reproductions, ablations, micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark report: every figure's series plus hot-path
# micro-benchmark timings (ns/op, allocs/op), written to BENCH_1.json.
bench-json:
	$(GO) run ./cmd/cloudsim -all -json -microbench -scale 0.08 > BENCH_1.json

# Sharded-core benchmark report: the bench-json suite plus the parallel
# lookup and seedref-contention micro-benchmarks and a parallel-read replay
# over a two-million-document catalog, written to BENCH_2.json. BENCH_1.json
# stays untouched as the pre-sharding baseline.
bench-json2:
	$(GO) run ./cmd/cloudsim -all -json -microbench -scalebench -scale 0.08 > BENCH_2.json

# Two-tier benchmark report: the bench-json2 suite plus the shield-hop
# series (cloud_lookup_shield_hop micro-benchmark and the scalebench
# shield fetch replay through a 64-shield tier), written to BENCH_3.json.
# BENCH_2.json stays untouched as the single-tier baseline.
bench-json3:
	$(GO) run ./cmd/cloudsim -all -json -microbench -scalebench -scale 0.08 > BENCH_3.json

# CI smoke for the lock-free read path: one iteration of the parallel
# lookup and contention benchmarks under the race detector. Catches data
# races the unit tests' interleavings miss, without benchmark runtimes.
bench-smoke:
	$(GO) test -race -run NoTestsJustBench -bench 'BenchmarkCloudLookupParallel|BenchmarkCloudContention' -benchtime 1x .

# Reproduce every paper figure at full scale (several minutes).
figures:
	$(GO) run ./cmd/cloudsim -all -scale 1

# Fast pass over every figure (reduced workload scale).
figures-fast:
	$(GO) run ./cmd/cloudsim -all -scale 0.2

# Regenerate the byte-identical determinism golden for the figure suite
# (TestGoldenAllJSON). Run after an intentional result change and commit
# the new file.
golden:
	$(GO) run ./cmd/cloudsim -all -json -scale 0.02 -seed 1 > cmd/cloudsim/testdata/golden_all.json

# Short randomized fuzzing of the trace parser and the node wire protocol
# (the committed seed corpora run on every plain `go test`).
fuzz:
	$(GO) test -fuzz=FuzzTraceParse -fuzztime=30s ./internal/trace
	$(GO) test -fuzz=FuzzProtocolDecode -fuzztime=30s ./internal/node
	$(GO) test -fuzz=FuzzScheduleDecode -fuzztime=30s ./internal/simnet

# Deterministic simulation sweep: run SEEDS generated fault schedules
# against the production node code on a virtual clock, checking every
# protocol invariant between events. Prints the first failing seed and a
# minimized reproducing schedule on failure.
SEEDS ?= 200
simsweep:
	$(GO) run ./cmd/simnet -seeds $(SEEDS)

# Two-tier gate: the shield node end-to-ends and the cross-tier model
# tests under the race detector, then a simulation sweep whose generated
# schedules add a shield-tier fault phase to every round (shield crash,
# failover, publishes and scoped/global purges past the crashed shield)
# with the cross-tier invariants armed.
shield-sweep:
	$(GO) test -race -run 'TestShield' ./internal/node ./internal/shield ./internal/experiments
	$(GO) run ./cmd/simnet -seeds $(SEEDS) -shields 2

# Overload-resilience gate: the storm chaos end-to-end and the admission
# primitives under the race detector, then a simulation sweep whose
# generated schedules include burst and hot-document miss-storm events.
storm:
	$(GO) test -race -count=2 -run 'TestChaosStorm|TestStorm' ./internal/node
	$(GO) test -race ./internal/admit/...
	$(GO) run ./cmd/simnet -seeds $(SEEDS)

# Durability gate: the restart-under-load chaos end-to-end and the durable
# store's torn-write/crash-safety suites under the race detector, then a
# simulation sweep whose generated schedules recover every crash with a
# warm process restart (heal-warm) under the origin-fetch bound invariant.
restart-chaos:
	$(GO) test -race -count=2 -run 'TestChaosRestart|TestRestartCold' ./internal/node
	$(GO) test -race ./internal/durable/...
	$(GO) test -race -run 'TestEvictionTombstonesDurable|TestRemoveAndUpdateMirrorDurable' ./internal/cache
	$(GO) run ./cmd/simnet -seeds $(SEEDS) -warm

# Tenancy gate: the cross-tenant isolation property test and the
# noisy-neighbor chaos end-to-end under the race detector, the tenant
# quota-law unit suites, the tenantsweep experiment's shape checks, then
# a simulation sweep whose generated schedules land a multi-tenant storm
# each round with the per-tenant byte-quota invariant armed between
# events and per-tenant conservation at quiescence.
tenant-sweep:
	$(GO) test -race -count=2 -run 'TestTenantIsolationProperty|TestChaosNoisyNeighborTenantStorm|TestTenantHeaderValidation' ./internal/node
	$(GO) test -race ./internal/tenant/...
	$(GO) test -race -run 'TestTenant' ./internal/cache ./internal/experiments
	$(GO) run ./cmd/simnet -seeds $(SEEDS) -tenants 3

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/flashcrowd
	$(GO) run ./examples/newsfeed
	$(GO) run ./examples/livecluster
	$(GO) run ./examples/edgenetwork

clean:
	$(GO) clean ./...

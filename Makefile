# cachecloud — Cache Clouds (ICDCS 2005) reproduction

GO ?= go

.PHONY: all build vet test race bench bench-json figures figures-fast examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark sweep: figure reproductions, ablations, micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark report: every figure's series plus hot-path
# micro-benchmark timings (ns/op, allocs/op), written to BENCH_1.json.
bench-json:
	$(GO) run ./cmd/cloudsim -all -json -microbench -scale 0.08 > BENCH_1.json

# Reproduce every paper figure at full scale (several minutes).
figures:
	$(GO) run ./cmd/cloudsim -all -scale 1

# Fast pass over every figure (reduced workload scale).
figures-fast:
	$(GO) run ./cmd/cloudsim -all -scale 0.2

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/flashcrowd
	$(GO) run ./examples/newsfeed
	$(GO) run ./examples/livecluster
	$(GO) run ./examples/edgenetwork

clean:
	$(GO) clean ./...

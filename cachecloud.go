// Package cachecloud is a Go implementation of Cache Clouds — the
// cooperative edge-caching architecture for dynamic web documents from
// Ramaswamy, Liu and Iyengar, "Cache Clouds: Cooperative Caching of Dynamic
// Documents in Edge Networks" (ICDCS 2005).
//
// A cache cloud is a group of edge caches in close network proximity that
// cooperate three ways: a cache that misses locally retrieves the document
// from a nearby cache instead of the origin server; the origin sends each
// document update to a single cache per cloud (the document's beacon
// point), which fans it out to the holders; and documents are placed across
// the cloud by a utility function that weighs the benefit of a new copy
// against its consistency-maintenance and disk-contention costs.
//
// This package is the public facade over the implementation packages:
//
//   - Cloud (internal/core): the cache cloud itself — two-step beacon
//     resolution, document lookup/update protocols, record migration and
//     failure resilience.
//   - Dynamic hashing (internal/ring): beacon rings whose intra-ring hash
//     sub-ranges rebalance every cycle in proportion to observed load.
//   - Placement policies (internal/placement): ad hoc, beacon point, and
//     the four-component utility scheme.
//   - Workloads (internal/trace): Zipf and Sydney-like trace generators
//     plus a trace file format.
//   - Simulator (internal/sim) and experiments (internal/experiments):
//     the paper's evaluation, one experiment per figure.
//   - Live nodes (internal/node): the same protocols as real HTTP
//     services.
//   - Cloud construction (internal/landmark): landmark-based clustering of
//     edge caches into clouds.
//
// # Quick start
//
//	cloud, err := cachecloud.NewCloud(cachecloud.CloudConfig{
//		NumRings: 5, IntraGen: 1000, FineGrained: true,
//	}, cachecloud.CacheNames(10), nil)
//	if err != nil { ... }
//	res, _ := cloud.Lookup("http://example.org/scores", now)
//	// fetch from res.Holders or the origin, then:
//	cloud.RegisterHolder("http://example.org/scores", "cache-03")
//
// See examples/ for runnable programs and DESIGN.md for the full system
// inventory.
package cachecloud

import (
	"io"

	"cachecloud/internal/cache"
	"cachecloud/internal/core"
	"cachecloud/internal/document"
	"cachecloud/internal/edgenet"
	"cachecloud/internal/experiments"
	"cachecloud/internal/landmark"
	"cachecloud/internal/loadstats"
	"cachecloud/internal/node"
	"cachecloud/internal/origin"
	"cachecloud/internal/placement"
	"cachecloud/internal/ring"
	"cachecloud/internal/sim"
	"cachecloud/internal/trace"
)

// Core document and cloud types.
type (
	// Document is a dynamic web document (URL, size, version).
	Document = document.Document
	// Version is a document revision number.
	Version = document.Version
	// Copy is a cached replica of a document.
	Copy = document.Copy

	// Cloud is a cache cloud: caches, beacon rings, lookup records.
	Cloud = core.Cloud
	// CloudConfig parameterises NewCloud.
	CloudConfig = core.Config
	// LookupResult is a beacon point's answer to a lookup.
	LookupResult = core.LookupResult
	// UpdateResult summarises one update propagation.
	UpdateResult = core.UpdateResult

	// EdgeCache is a byte-budgeted LRU document store with access
	// monitoring.
	EdgeCache = cache.Cache

	// OriginServer is the authoritative document store that serves group
	// misses and publishes updates, one message per cloud.
	OriginServer = origin.Server

	// Ring is one beacon ring (dynamic intra-ring hashing).
	Ring = ring.Ring
	// RingConfig parameterises a beacon ring.
	RingConfig = ring.Config
	// RingMember is a beacon point joining a ring.
	RingMember = ring.Member
	// SubRange is an inclusive IrH interval owned by a beacon point.
	SubRange = ring.SubRange
)

// Placement policies.
type (
	// PlacementPolicy decides whether a cache stores a retrieved copy.
	PlacementPolicy = placement.Policy
	// PlacementContext carries the signals a policy consults.
	PlacementContext = placement.Context
	// AdHocPlacement stores at every requesting cache.
	AdHocPlacement = placement.AdHoc
	// BeaconPointPlacement stores only at the beacon point.
	BeaconPointPlacement = placement.BeaconPoint
	// UtilityPlacement is the paper's utility-based scheme.
	UtilityPlacement = placement.Utility
	// UtilityWeights are the four component weights.
	UtilityWeights = placement.Weights
	// AdaptiveUtilityPlacement is the feedback-tuned utility scheme (the
	// paper's future-work extension).
	AdaptiveUtilityPlacement = placement.AdaptiveUtility
	// PlacementObservation is one feedback period's system measurement.
	PlacementObservation = placement.Observation

	// ReplacementKind selects an edge cache's replacement policy.
	ReplacementKind = cache.ReplacementKind
)

// Replacement policies for edge caches.
const (
	// ReplaceLRU evicts the least recently used document (the paper's
	// limited-disk setting).
	ReplaceLRU = cache.LRU
	// ReplaceLFU evicts the least frequently used document.
	ReplaceLFU = cache.LFU
	// ReplaceGreedyDualSize evicts by the GreedyDual-Size H value.
	ReplaceGreedyDualSize = cache.GreedyDualSize
)

// Workloads and simulation.
type (
	// Trace is a document catalog plus a request/update event stream.
	Trace = trace.Trace
	// TraceEvent is one trace record.
	TraceEvent = trace.Event
	// ZipfTraceConfig parameterises the synthetic Zipf dataset.
	ZipfTraceConfig = trace.ZipfConfig
	// SydneyTraceConfig parameterises the Sydney-like dataset.
	SydneyTraceConfig = trace.SydneyConfig

	// SimConfig parameterises a simulation run.
	SimConfig = sim.Config
	// SimResult carries a run's metrics.
	SimResult = sim.Result
	// Architecture selects the cooperation scheme under simulation.
	Architecture = sim.Architecture

	// LoadDistribution summarises per-beacon loads (CoV, max/mean).
	LoadDistribution = loadstats.Distribution
	// LatencyHistogram records client latencies with percentile queries.
	LatencyHistogram = loadstats.Histogram
	// LoadKind distinguishes lookup load from update-propagation load.
	LoadKind = loadstats.Kind
)

// Beacon load kinds.
const (
	// LookupLoad is a document lookup handled by a beacon point.
	LookupLoad = loadstats.Lookup
	// UpdateLoad is an update propagation handled by a beacon point.
	UpdateLoad = loadstats.Update
)

// Multi-cloud edge networks.
type (
	// EdgeNetwork is several cache clouds sharing one origin server.
	EdgeNetwork = edgenet.Network
	// EdgeNetworkConfig parameterises network construction and runs.
	EdgeNetworkConfig = edgenet.Config
	// EdgeNetworkResult carries a network run's metrics.
	EdgeNetworkResult = edgenet.Result
)

// Live cluster types.
type (
	// CacheNode is a live HTTP edge-cache node.
	CacheNode = node.CacheNode
	// OriginNode is the live HTTP origin server.
	OriginNode = node.OriginNode
	// ClusterConfig bootstraps a live cluster.
	ClusterConfig = node.ClusterConfig
	// LocalCluster is an in-process cluster for demos and tests.
	LocalCluster = node.LocalCluster
	// ClusterClient is a failover-aware client for a live cluster.
	ClusterClient = node.Client
	// ReplayResult summarises a trace replay against a live cluster.
	ReplayResult = node.ReplayResult
	// ReplayOptions tunes ReplayTrace.
	ReplayOptions = node.ReplayOptions
)

// Simulation architectures.
const (
	// NoCooperation runs independent edge caches.
	NoCooperation = sim.NoCooperation
	// StaticHashing assigns beacon points by a static random hash.
	StaticHashing = sim.StaticHashing
	// DynamicHashing is the paper's cache cloud with beacon rings.
	DynamicHashing = sim.DynamicHashing
)

// NewCloud creates a cache cloud over the given cache IDs. capabilities
// maps cache ID to its relative power (nil means all equal).
func NewCloud(cfg CloudConfig, cacheIDs []string, capabilities map[string]float64) (*Cloud, error) {
	return core.New(cfg, cacheIDs, capabilities)
}

// NewEdgeCache creates a standalone edge cache with the given byte budget
// (0 = unlimited).
func NewEdgeCache(id string, capacity int64) *EdgeCache { return cache.New(id, capacity) }

// NewOriginServer creates an origin server over a document catalog.
func NewOriginServer(docs []Document) *OriginServer { return origin.New(docs) }

// NewRing creates one beacon ring.
func NewRing(cfg RingConfig, members []RingMember) (*Ring, error) { return ring.New(cfg, members) }

// NewUtilityPlacement builds the utility-based placement policy; the
// paper's experiments use threshold 0.5 and equal weights over the enabled
// components (see EqualWeights).
func NewUtilityPlacement(w UtilityWeights, threshold float64) (*UtilityPlacement, error) {
	return placement.NewUtility(w, threshold)
}

// EqualWeights returns weights of 1/n over the enabled utility components.
func EqualWeights(cmc, afc, dac, dscc bool) UtilityWeights {
	return placement.EqualOn(cmc, afc, dac, dscc)
}

// GenerateZipfTrace produces the paper's synthetic Zipf dataset.
func GenerateZipfTrace(cfg ZipfTraceConfig) *Trace { return trace.GenerateZipf(cfg) }

// GenerateSydneyTrace produces the Sydney-like dataset that stands in for
// the IBM 2000 Olympics trace.
func GenerateSydneyTrace(cfg SydneyTraceConfig) *Trace { return trace.GenerateSydney(cfg) }

// ReadTrace parses a trace file written by Trace.Write.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// CacheNames returns canonical cache IDs cache-00 … cache-(n-1).
func CacheNames(n int) []string { return trace.CacheNames(n) }

// Simulate runs a trace through the simulator.
func Simulate(cfg SimConfig, tr *Trace) (*SimResult, error) { return sim.Run(cfg, tr) }

// RunExperiment executes one of the paper's evaluation figures by name
// ("fig3" … "fig9") at the given scale (1 = paper-sized) and writes the
// formatted series to w.
func RunExperiment(name string, scale float64, seed int64, w io.Writer) error {
	return experiments.Run(name, scale, seed, w)
}

// ExperimentNames lists the runnable experiment identifiers.
func ExperimentNames() []string { return experiments.Names() }

// StartLocalCluster boots a complete live cluster (cache nodes + origin)
// on loopback HTTP servers.
func StartLocalCluster(nodeNames []string, ringSize int, docs []Document, opts ClusterConfig) (*LocalCluster, error) {
	return node.StartLocalCluster(nodeNames, ringSize, docs, opts)
}

// NewClusterClient builds a failover-aware client for a live cluster,
// pinned to a preferred (nearest) node.
func NewClusterClient(cfg ClusterConfig, preferred string) (*ClusterClient, error) {
	return node.NewClient(cfg, preferred)
}

// ReplayTrace drives a simulator trace through a live cluster over HTTP.
func ReplayTrace(cfg ClusterConfig, tr *Trace, opts ReplayOptions) (*ReplayResult, error) {
	return node.Replay(cfg, tr, opts)
}

// ClusterCaches groups edge caches into cache clouds with the
// landmark-based technique, given synthetic network coordinates.
func ClusterCaches(nodes []landmark.Node, cfg landmark.Config) ([]landmark.Cloud, error) {
	return landmark.Cluster(nodes, cfg)
}

// NewAdaptiveUtilityPlacement builds the feedback-tuned utility policy;
// rate is the relative weight adjustment per feedback period.
func NewAdaptiveUtilityPlacement(start UtilityWeights, threshold, rate float64) (*AdaptiveUtilityPlacement, error) {
	return placement.NewAdaptiveUtility(start, threshold, rate)
}

// NewEdgeCacheWithReplacement creates an edge cache with an explicit
// replacement policy.
func NewEdgeCacheWithReplacement(id string, capacity int64, kind ReplacementKind) *EdgeCache {
	return cache.NewWithReplacement(id, capacity, kind)
}

// BuildEdgeNetwork assembles a multi-cloud edge network from explicit
// cloud memberships.
func BuildEdgeNetwork(memberships [][]string, docs []Document, cfg EdgeNetworkConfig) (*EdgeNetwork, error) {
	return edgenet.Build(memberships, docs, cfg)
}

// BuildEdgeNetworkFromTopology clusters caches into clouds with the
// landmark technique and builds the network over the result.
func BuildEdgeNetworkFromTopology(nodes []landmark.Node, lmCfg landmark.Config, cfg EdgeNetworkConfig) (*EdgeNetwork, []landmark.Cloud, error) {
	return edgenet.BuildFromTopology(nodes, lmCfg, cfg)
}

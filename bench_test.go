// Benchmarks regenerating every figure of the paper's evaluation section
// (Figures 3-9) plus ablation benches for the design choices called out in
// DESIGN.md. Each figure bench runs the corresponding experiment definition
// at a reduced scale and reports the figure's headline numbers as custom
// benchmark metrics, so `go test -bench=.` prints the reproduced series
// alongside the usual ns/op.
//
// The full-scale series (scale 1) are produced by `cloudsim -all` and
// recorded in EXPERIMENTS.md.
package cachecloud_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"cachecloud/internal/cache"
	"cachecloud/internal/core"
	"cachecloud/internal/core/seedref"
	"cachecloud/internal/document"
	"cachecloud/internal/experiments"
	"cachecloud/internal/hashing"
	"cachecloud/internal/loadstats"
	"cachecloud/internal/obs"
	"cachecloud/internal/placement"
	"cachecloud/internal/ring"
	"cachecloud/internal/sim"
	"cachecloud/internal/trace"
)

// benchScale keeps each figure bench to a few seconds; the reproduced
// shapes are scale-invariant (see internal/experiments tests).
const benchScale = 0.08

// BenchmarkFig3LoadBalanceZipf regenerates Figure 3: beacon load
// distribution under static vs dynamic hashing on the Zipf-0.9 dataset.
func BenchmarkFig3LoadBalanceZipf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure3(benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.StaticCoV, "static-CoV")
		b.ReportMetric(r.DynamicCoV, "dynamic-CoV")
		b.ReportMetric(r.StaticMaxMean, "static-max/mean")
		b.ReportMetric(r.DynamicMaxMean, "dynamic-max/mean")
	}
}

// BenchmarkFig4LoadBalanceSydney regenerates Figure 4: the same comparison
// on the Sydney dataset.
func BenchmarkFig4LoadBalanceSydney(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure4(benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.StaticCoV, "static-CoV")
		b.ReportMetric(r.DynamicCoV, "dynamic-CoV")
		b.ReportMetric(r.DynamicMaxMean, "dynamic-max/mean")
	}
}

// BenchmarkFig5RingSize regenerates Figure 5: CoV versus cloud size for
// ring sizes 2, 5 and 10.
func BenchmarkFig5RingSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure5(benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, cs := range r.CloudSizes {
			b.ReportMetric(r.StaticCoV[cs], fmt.Sprintf("static-CoV-%dc", cs))
			for _, rs := range r.RingSizes {
				b.ReportMetric(r.DynamicCoV[cs][rs], fmt.Sprintf("dyn-CoV-%dc-%dppr", cs, rs))
			}
		}
	}
}

// BenchmarkFig6ZipfSweep regenerates Figure 6: CoV versus Zipf parameter.
func BenchmarkFig6ZipfSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure6(benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		last := len(r.Alphas) - 2 // alpha 0.90
		b.ReportMetric(r.StaticCoV[0], "static-CoV-a0")
		b.ReportMetric(r.StaticCoV[last], "static-CoV-a0.9")
		b.ReportMetric(r.DynamicCoV[0], "dynamic-CoV-a0")
		b.ReportMetric(r.DynamicCoV[last], "dynamic-CoV-a0.9")
	}
}

// BenchmarkFig7StoredPct regenerates Figure 7: percentage of documents
// stored per cache versus update rate (unlimited disk, DsCC off).
func BenchmarkFig7StoredPct(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure7and8(benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		n := len(r.UpdateRates) - 1
		b.ReportMetric(r.StoredPct["adhoc"][n], "adhoc-pct@1000")
		b.ReportMetric(r.StoredPct["utility"][0], "utility-pct@10")
		b.ReportMetric(r.StoredPct["utility"][n], "utility-pct@1000")
		b.ReportMetric(r.StoredPct["beacon"][n], "beacon-pct@1000")
	}
}

// BenchmarkFig8NetworkLoad regenerates Figure 8: network load versus
// update rate under the three placement schemes (unlimited disk).
func BenchmarkFig8NetworkLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure7and8(benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		n := len(r.UpdateRates) - 1
		b.ReportMetric(r.NetworkMB["adhoc"][n], "adhoc-MB@1000")
		b.ReportMetric(r.NetworkMB["utility"][n], "utility-MB@1000")
		b.ReportMetric(r.NetworkMB["beacon"][n], "beacon-MB@1000")
		b.ReportMetric(r.NetworkMB["beacon"][0], "beacon-MB@10")
	}
}

// BenchmarkFig9NetworkLoadLimitedDisk regenerates Figure 9: network load
// with per-cache disk limited to 30% of the corpus, LRU replacement and
// the DsCC component turned on.
func BenchmarkFig9NetworkLoadLimitedDisk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure9(benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		n := len(r.UpdateRates) - 1
		b.ReportMetric(r.NetworkMB["adhoc"][0], "adhoc-MB@10")
		b.ReportMetric(r.NetworkMB["utility"][0], "utility-MB@10")
		b.ReportMetric(r.NetworkMB["adhoc"][n], "adhoc-MB@1000")
		b.ReportMetric(r.NetworkMB["utility"][n], "utility-MB@1000")
	}
}

// --- ablation benches (design choices, beyond the paper's figures) ---

func ablationTrace() *trace.Trace {
	return trace.GenerateZipf(trace.ZipfConfig{
		Seed: 3, NumDocs: 20000, Alpha: 0.9, Caches: 10,
		Duration: 120, ReqPerCache: 30, UpdatesPerUnit: 100,
	})
}

// BenchmarkAblationLoadInfoGranularity compares the exact (per-IrH CIrHLd)
// and approximate (CAvgLoad) sub-range determination modes — the paper's
// Figure 2-B vs 2-C trade-off at workload scale.
func BenchmarkAblationLoadInfoGranularity(b *testing.B) {
	tr := ablationTrace()
	for i := 0; i < b.N; i++ {
		exact, err := sim.Run(sim.Config{Arch: sim.DynamicHashing, NumRings: 5, CycleLength: 30}, tr)
		if err != nil {
			b.Fatal(err)
		}
		approx, err := sim.Run(sim.Config{
			Arch: sim.DynamicHashing, NumRings: 5, CycleLength: 30, CoarseLoadInfo: true,
		}, tr)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(exact.LoadPerUnit().CoV(), "exact-CoV")
		b.ReportMetric(approx.LoadPerUnit().CoV(), "approx-CoV")
	}
}

// BenchmarkAblationCycleLength sweeps the sub-range determination period.
func BenchmarkAblationCycleLength(b *testing.B) {
	tr := ablationTrace()
	for i := 0; i < b.N; i++ {
		for _, cycle := range []int64{15, 30, 60} {
			r, err := sim.Run(sim.Config{Arch: sim.DynamicHashing, NumRings: 5, CycleLength: cycle}, tr)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.LoadPerUnit().CoV(), fmt.Sprintf("CoV-cycle%d", cycle))
			b.ReportMetric(float64(r.RecordsMigrated), fmt.Sprintf("migrations-cycle%d", cycle))
		}
	}
}

// BenchmarkAblationConsistentHashing measures the baseline the paper
// critiques: consistent hashing's beacon-discovery cost (up to O(log N)
// probes) versus the O(1) static and two-step dynamic resolutions.
func BenchmarkAblationConsistentHashing(b *testing.B) {
	nodes := trace.CacheNames(50)
	ch := hashing.NewConsistent(nodes, 100)
	st := hashing.NewStatic(nodes)
	urls := make([]string, 4096)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://site/doc/%d", i)
	}
	b.Run("consistent", func(b *testing.B) {
		steps := 0
		for i := 0; i < b.N; i++ {
			u := urls[i%len(urls)]
			if _, err := ch.BeaconFor(u); err != nil {
				b.Fatal(err)
			}
			steps += ch.DiscoverySteps(u)
		}
		b.ReportMetric(float64(steps)/float64(b.N), "discovery-steps")
	})
	b.Run("static", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := st.BeaconFor(urls[i%len(urls)]); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(1, "discovery-steps")
	})
	rz := hashing.NewRendezvous(nodes)
	b.Run("rendezvous", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rz.BeaconFor(urls[i%len(urls)]); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(nodes)), "score-evals")
	})
}

// BenchmarkAblationRecordReplication measures failure resilience: lookup
// records lost on a beacon crash with and without lazy replication.
func BenchmarkAblationRecordReplication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, replicate := range []bool{false, true} {
			cloud, err := core.New(core.Config{
				NumRings: 5, IntraGen: 1000, FineGrained: true, ReplicateRecords: replicate,
			}, trace.CacheNames(10), nil)
			if err != nil {
				b.Fatal(err)
			}
			for d := 0; d < 2000; d++ {
				url := fmt.Sprintf("http://site/doc/%d", d)
				if _, err := cloud.Lookup(url, 0); err != nil {
					b.Fatal(err)
				}
				if err := cloud.RegisterHolder(url, "cache-01"); err != nil {
					b.Fatal(err)
				}
			}
			cloud.ReplicateRecords()
			if err := cloud.RemoveCache("cache-00", false); err != nil {
				b.Fatal(err)
			}
			st := cloud.Stats()
			label := "lost-norepl"
			if replicate {
				label = "lost-repl"
			}
			b.ReportMetric(float64(st.RecordsLost), label)
		}
	}
}

// BenchmarkParallelSweep measures the parallel experiment engine on the
// Figure 6 sweep (22 independent simulation runs) at 1, 2 and 4 workers.
// The speedup is hardware-dependent — it needs free CPU cores — but the
// results are byte-identical at every worker count (see
// internal/experiments TestParallelMatchesSequential).
func BenchmarkParallelSweep(b *testing.B) {
	const sweepScale = 0.05
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.NewRunner(workers).Figure6(sweepScale, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- micro-benchmarks on the hot paths ---

func BenchmarkHashURL(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = document.HashURL("http://sydney2000.example.org/doc/123456")
	}
}

func BenchmarkZipfSample(b *testing.B) {
	tr := trace.NewZipf(newRand(), 50000, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Sample()
	}
}

// BenchmarkCloudLookup measures beacon lookups with populated holder lists
// through both entry points: the string-URL path (hashes the URL and
// defensively copies the holders on every call) and the hash-keyed hot path
// the simulator uses (precomputed hash, alias-returned holders — the
// allocation-free fast path).
func BenchmarkCloudLookup(b *testing.B) {
	cloud, err := core.New(core.Config{NumRings: 5, IntraGen: 1000, FineGrained: true},
		trace.CacheNames(10), nil)
	if err != nil {
		b.Fatal(err)
	}
	urls := make([]string, 1024)
	hashes := make([]document.Hash, len(urls))
	for i := range urls {
		urls[i] = fmt.Sprintf("http://site.example.com/docs/dynamic/page-%04d.html", i)
		hashes[i] = document.HashURL(urls[i])
		for _, id := range trace.CacheNames(10)[:3] {
			if err := cloud.RegisterHolder(urls[i], id); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("url", func(b *testing.B) {
		b.ReportAllocs()
		b.ReportMetric(float64(len(urls)), "docs/op")
		for i := 0; i < b.N; i++ {
			if _, err := cloud.Lookup(urls[i%len(urls)], int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hash", func(b *testing.B) {
		b.ReportAllocs()
		b.ReportMetric(float64(len(urls)), "docs/op")
		for i := 0; i < b.N; i++ {
			j := i % len(urls)
			if _, err := cloud.LookupHash(urls[j], hashes[j], int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hash-traced", func(b *testing.B) {
		tracer := obs.NewTracer(256)
		cloud.SetTracer(tracer)
		defer cloud.SetTracer(nil)
		b.ReportAllocs()
		b.ReportMetric(float64(len(urls)), "docs/op")
		for i := 0; i < b.N; i++ {
			j := i % len(urls)
			if _, err := cloud.LookupHash(urls[j], hashes[j], int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCloudLookupParallel measures aggregate lookup throughput when
// many goroutines hit the sharded core at once — the scaling the epoch
// snapshot design exists for. The sweep pins GOMAXPROCS to 1, 2, 4 and 8;
// on a single-core host the higher points measure oversubscription rather
// than parallel speedup, so read the scaling claim from a multi-core run
// (BENCH_2.json records the core count alongside the numbers).
func BenchmarkCloudLookupParallel(b *testing.B) {
	cloud, urls, hashes, err := sim.BuildParallelReadCloud(sim.ParallelReadConfig{
		NumDocs: 4096, NumCaches: 10, NumRings: 5, HoldersPerDoc: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, procs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			var errs atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				var i int
				for pb.Next() {
					i++
					j := i & 4095
					if _, err := cloud.LookupHash(urls[j], hashes[j], 1); err != nil {
						errs.Add(1)
						return
					}
				}
			})
			if n := errs.Load(); n > 0 {
				b.Fatalf("%d parallel lookups failed", n)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
		})
	}
}

// BenchmarkCloudContention runs the identical parallel lookup load against
// the sharded epoch core and the preserved single-mutex seed
// (internal/core/seedref), quantifying what sharding buys under
// contention. The two implementations are sequentially equivalent (see
// internal/core TestEquivalenceRandomOps), so the delta is pure
// synchronization cost.
func BenchmarkCloudContention(b *testing.B) {
	names := trace.CacheNames(10)
	urls := make([]string, 4096)
	hashes := make([]document.Hash, len(urls))
	for i := range urls {
		urls[i] = fmt.Sprintf("http://site.example.com/docs/contend/page-%04d.html", i)
		hashes[i] = document.HashURL(urls[i])
	}
	populate := func(reg func(url string, h document.Hash, id string) error) {
		for i := range urls {
			for _, id := range names[:3] {
				if err := reg(urls[i], hashes[i], id); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	run := func(b *testing.B, lookup func(url string, h document.Hash, now int64) error) {
		var errs atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			var i int
			for pb.Next() {
				i++
				j := i & 4095
				if err := lookup(urls[j], hashes[j], 1); err != nil {
					errs.Add(1)
					return
				}
			}
		})
		if n := errs.Load(); n > 0 {
			b.Fatalf("%d parallel lookups failed", n)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
	}
	b.Run("sharded", func(b *testing.B) {
		cloud, err := core.New(core.Config{NumRings: 5, IntraGen: 1000}, names, nil)
		if err != nil {
			b.Fatal(err)
		}
		populate(cloud.RegisterHolderHash)
		run(b, func(url string, h document.Hash, now int64) error {
			_, err := cloud.LookupHash(url, h, now)
			return err
		})
	})
	b.Run("seed-mutex", func(b *testing.B) {
		cloud, err := seedref.New(seedref.Config{NumRings: 5, IntraGen: 1000}, names, nil)
		if err != nil {
			b.Fatal(err)
		}
		populate(cloud.RegisterHolderHash)
		run(b, func(url string, h document.Hash, now int64) error {
			_, err := cloud.LookupHash(url, h, now)
			return err
		})
	})
}

// TestCloudLookupHashZeroAlloc pins the hot-path guarantee the tracer
// hook must not erode: with no tracer attached, LookupHash performs zero
// heap allocations per call. The tracer integration is a nil check on
// this path; if instrumenting it ever starts allocating (event structs,
// interface boxing), this fails before the benchmarks get slower.
func TestCloudLookupHashZeroAlloc(t *testing.T) {
	cloud, err := core.New(core.Config{NumRings: 5, IntraGen: 1000, FineGrained: true},
		trace.CacheNames(10), nil)
	if err != nil {
		t.Fatal(err)
	}
	url := "http://site.example.com/docs/dynamic/page-0000.html"
	for _, id := range trace.CacheNames(10)[:3] {
		if err := cloud.RegisterHolder(url, id); err != nil {
			t.Fatal(err)
		}
	}
	h := document.HashURL(url)
	var now int64
	allocs := testing.AllocsPerRun(1000, func() {
		now++
		if _, err := cloud.LookupHash(url, h, now); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("LookupHash allocates %.1f per op with tracing disabled, want 0", allocs)
	}
}

// TestCloudLookupServePathZeroAlloc extends the zero-alloc guarantee to
// the whole lookup→serve path the simulator's peer-hit branch walks:
// beacon record resolution (epoch load + ring view search), holder
// selection from the returned list, cache-handle resolution, and the
// holder cache's Get. One cooperative read end to end, zero heap
// allocations.
func TestCloudLookupServePathZeroAlloc(t *testing.T) {
	cloud, err := core.New(core.Config{NumRings: 5, IntraGen: 1000, FineGrained: true},
		trace.CacheNames(10), nil)
	if err != nil {
		t.Fatal(err)
	}
	url := "http://site.example.com/docs/dynamic/page-0000.html"
	h := document.HashURL(url)
	doc := document.Document{URL: url, Size: 4096, Version: 1}
	for _, id := range trace.CacheNames(10)[:3] {
		if err := cloud.RegisterHolderHash(url, h, id); err != nil {
			t.Fatal(err)
		}
		if _, err := cloud.Cache(id).Put(document.Copy{Doc: doc}, 0); err != nil {
			t.Fatal(err)
		}
	}
	var now int64
	allocs := testing.AllocsPerRun(1000, func() {
		now++
		res, err := cloud.LookupHash(url, h, now)
		if err != nil {
			t.Fatal(err)
		}
		holder := res.Holders[int(now)%len(res.Holders)]
		hc := cloud.Cache(holder)
		if hc == nil {
			t.Fatalf("no cache for holder %q", holder)
		}
		cp, ok := hc.Get(url, now)
		if !ok || cp.Doc.URL != url {
			t.Fatalf("holder %q did not serve %q", holder, url)
		}
	})
	if allocs != 0 {
		t.Fatalf("lookup→serve path allocates %.1f per op, want 0", allocs)
	}

	// The fused rates variant is the simulator's actual miss path; it must
	// stay allocation-free too.
	allocs = testing.AllocsPerRun(1000, func() {
		now++
		if _, err := cloud.LookupHashWithRates(url, h, now); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("LookupHashWithRates allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkCacheGetPut(b *testing.B) {
	c := cache.New("bench", 1<<26)
	docs := make([]document.Document, 512)
	for i := range docs {
		docs[i] = document.Document{URL: fmt.Sprintf("d%d", i), Size: 4096, Version: 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := docs[i%len(docs)]
		if _, ok := c.Get(d.URL, int64(i)); !ok {
			if _, err := c.Put(document.Copy{Doc: d}, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkRingRebalance(b *testing.B) {
	members := make([]ring.Member, 10)
	for i := range members {
		members[i] = ring.Member{ID: trace.CacheNames(10)[i], Capability: 1}
	}
	r, err := ring.New(ring.Config{IntraGen: 1000, FineGrained: true}, members)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := 0; v < 1000; v++ {
			load := int64(1)
			if v < 50 {
				load = 40
			}
			if err := r.Record(v, loadstats.Lookup, load); err != nil {
				b.Fatal(err)
			}
		}
		r.Rebalance()
	}
}

// BenchmarkSimulatorThroughput measures end-to-end simulator speed in
// trace events per second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	tr := trace.GenerateZipf(trace.ZipfConfig{
		Seed: 5, NumDocs: 10000, Alpha: 0.9, Caches: 10,
		Duration: 60, ReqPerCache: 30, UpdatesPerUnit: 60,
	})
	events := float64(len(tr.Events))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Config{Arch: sim.DynamicHashing, NumRings: 5}, tr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(events*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(len(tr.Docs)), "docs/op")
}

// BenchmarkUtilityEvaluate measures one placement decision.
func BenchmarkUtilityEvaluate(b *testing.B) {
	u, err := placement.NewUtility(placement.EqualOn(true, true, true, true), 0.5)
	if err != nil {
		b.Fatal(err)
	}
	ctx := placement.Context{
		CloudLookupRate: 12, CloudUpdateRate: 3,
		LocalAccessRate: 2, MeanLocalRate: 1.5,
		ReplicaCount: 2, Residence: 120, HolderResidence: 90,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = u.ShouldStore(ctx)
	}
}

// newRand returns a deterministic source for benchmark inputs.
func newRand() *rand.Rand { return rand.New(rand.NewSource(1)) }

// BenchmarkAblationReplacementPolicies compares LRU (the paper's
// limited-disk setting), LFU and GreedyDual-Size under tight disk.
func BenchmarkAblationReplacementPolicies(b *testing.B) {
	tr := ablationTrace()
	for i := 0; i < b.N; i++ {
		for _, kind := range []cache.ReplacementKind{cache.LRU, cache.LFU, cache.GreedyDualSize} {
			r, err := sim.Run(sim.Config{
				Arch: sim.DynamicHashing, NumRings: 5,
				Replacement: kind, CapacityFraction: 0.05, Seed: 1,
			}, tr)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*r.LocalHitRate(), kind.String()+"-localhit%")
			b.ReportMetric(r.NetworkMBPerUnit(), kind.String()+"-MB/unit")
		}
	}
}

// BenchmarkAblationTTLConsistency compares the paper's server-driven push
// consistency against the classical TTL baseline of cooperative proxy
// caches: TTL trades staleness for the absence of push traffic.
func BenchmarkAblationTTLConsistency(b *testing.B) {
	tr := ablationTrace()
	for i := 0; i < b.N; i++ {
		push, err := sim.Run(sim.Config{Arch: sim.DynamicHashing, NumRings: 5, Seed: 1}, tr)
		if err != nil {
			b.Fatal(err)
		}
		ttl, err := sim.Run(sim.Config{Arch: sim.DynamicHashing, NumRings: 5, TTL: 30, Seed: 1}, tr)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(push.StaleServes), "push-stale")
		b.ReportMetric(push.NetworkMBPerUnit(), "push-MB/unit")
		b.ReportMetric(float64(ttl.StaleServes), "ttl-stale")
		b.ReportMetric(ttl.NetworkMBPerUnit(), "ttl-MB/unit")
	}
}

// BenchmarkEdgeNetworkScaleOut regenerates the scale-out extension
// experiment (one origin update message per cloud).
func BenchmarkEdgeNetworkScaleOut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ScaleOutExperiment(benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		last := len(r.CloudCounts) - 1
		b.ReportMetric(r.UpdateMessages[last], "msgs/update@8clouds")
		b.ReportMetric(r.HolderRefreshes[last], "refreshes/update@8clouds")
	}
}

// BenchmarkAblationLeaseConsistency compares the three consistency modes:
// the paper's always-push, cooperative leases (related work [8]) and the
// TTL baseline — push volume, traffic, staleness, and client latency.
func BenchmarkAblationLeaseConsistency(b *testing.B) {
	tr := ablationTrace()
	for i := 0; i < b.N; i++ {
		push, err := sim.Run(sim.Config{Arch: sim.DynamicHashing, NumRings: 5, Seed: 1}, tr)
		if err != nil {
			b.Fatal(err)
		}
		lease, err := sim.Run(sim.Config{Arch: sim.DynamicHashing, NumRings: 5, LeaseDuration: 30, Seed: 1}, tr)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(push.HoldersNotified), "push-refreshes")
		b.ReportMetric(float64(lease.HoldersNotified), "lease-refreshes")
		b.ReportMetric(float64(lease.LeaseRenewals), "lease-renewals")
		b.ReportMetric(lease.Latency.Mean(), "lease-mean-ms")
		b.ReportMetric(push.Latency.Mean(), "push-mean-ms")
	}
}

// BenchmarkLatencyByArchitecture reports client latency (the paper's
// bottom-line motivation) for each cooperation architecture on the same
// workload.
func BenchmarkLatencyByArchitecture(b *testing.B) {
	tr := ablationTrace()
	for i := 0; i < b.N; i++ {
		for _, arch := range []sim.Architecture{sim.NoCooperation, sim.StaticHashing, sim.DynamicHashing} {
			r, err := sim.Run(sim.Config{Arch: arch, NumRings: 5, Seed: 1}, tr)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.Latency.Mean(), arch.String()+"-mean-ms")
			b.ReportMetric(r.Latency.Quantile(0.95), arch.String()+"-p95-ms")
		}
	}
}

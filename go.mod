module cachecloud

go 1.22

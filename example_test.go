package cachecloud_test

import (
	"fmt"

	"cachecloud"
)

// ExampleNewCloud demonstrates the document lookup and update protocols on
// an in-process cache cloud with the paper's default topology.
func ExampleNewCloud() {
	cloud, err := cachecloud.NewCloud(cachecloud.CloudConfig{
		NumRings: 5, IntraGen: 1000, FineGrained: true,
	}, cachecloud.CacheNames(10), nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	server := cachecloud.NewOriginServer([]cachecloud.Document{
		{URL: "http://example.org/scores", Size: 12_000},
	})
	server.AttachCloud(cloud)

	// A cache misses, fetches from the origin, stores, and registers.
	doc, _ := server.Fetch("http://example.org/scores")
	_, _ = cloud.Cache("cache-02").Put(cachecloud.Copy{Doc: doc}, 0)
	_ = cloud.RegisterHolder(doc.URL, "cache-02")

	// The next lookup anywhere in the cloud finds the holder.
	res, _ := cloud.Lookup(doc.URL, 1)
	fmt.Println("holders:", res.Holders)

	// The origin publishes an update: one message per cloud, fanned out by
	// the beacon point to every holder.
	out, _ := server.PublishUpdate(doc.URL, 2)
	fmt.Println("refreshed copies:", out.HoldersNotified)
	// Output:
	// holders: [cache-02]
	// refreshed copies: 1
}

// ExampleNewUtilityPlacement shows a placement decision under the paper's
// utility function: an update-churned, already-replicated document is not
// worth another copy.
func ExampleNewUtilityPlacement() {
	policy, err := cachecloud.NewUtilityPlacement(
		cachecloud.EqualWeights(true, true, true, false), 0.5)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	hot := cachecloud.PlacementContext{
		CloudLookupRate: 20, CloudUpdateRate: 0.1, // read-mostly
		LocalAccessRate: 2, MeanLocalRate: 1,
		ReplicaCount: 1,
	}
	churned := cachecloud.PlacementContext{
		CloudLookupRate: 2, CloudUpdateRate: 40, // write-dominated
		LocalAccessRate: 1, MeanLocalRate: 1,
		ReplicaCount: 3,
	}
	fmt.Println("store read-mostly doc:", policy.ShouldStore(hot).Store)
	fmt.Println("store churned doc:", policy.ShouldStore(churned).Store)
	// Output:
	// store read-mostly doc: true
	// store churned doc: false
}

// ExampleSimulate runs a small trace through the simulator under the
// paper's dynamic-hashing architecture.
func ExampleSimulate() {
	tr := cachecloud.GenerateZipfTrace(cachecloud.ZipfTraceConfig{
		Seed: 1, NumDocs: 1000, Caches: 10, Duration: 30,
		ReqPerCache: 20, UpdatesPerUnit: 10,
	})
	res, err := cachecloud.Simulate(cachecloud.SimConfig{
		Arch: cachecloud.DynamicHashing, NumRings: 5,
	}, tr)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("all requests accounted:",
		res.LocalHits+res.CloudHits+res.GroupMisses == res.Requests)
	fmt.Println("in-network hit rate above half:", res.CloudHitRate() > 0.5)
	// Output:
	// all requests accounted: true
	// in-network hit rate above half: true
}

// ExampleNewRing reproduces the paper's Figure 2 worked example: the
// sub-range determination process shifts two IrH values when per-value
// load information is available.
func ExampleNewRing() {
	ring, err := cachecloud.NewRing(cachecloud.RingConfig{IntraGen: 10, FineGrained: true},
		[]cachecloud.RingMember{{ID: "Pc00", Capability: 1}, {ID: "Pc10", Capability: 1}})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	loads := []int64{175, 100, 135, 30, 60, 50, 25, 75, 50, 100}
	for v, load := range loads {
		_ = ring.Record(v, cachecloud.LookupLoad, load)
	}
	ring.Rebalance()
	for _, a := range ring.Assignments() {
		fmt.Printf("%s owns %s\n", a.ID, a.Sub)
	}
	// Output:
	// Pc00 owns (0,2)
	// Pc10 owns (3,9)
}

package edgenet

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"cachecloud/internal/landmark"
	"cachecloud/internal/trace"
)

func networkTrace(cacheIDs []string, updates int) *trace.Trace {
	return trace.GenerateZipf(trace.ZipfConfig{
		Seed: 4, NumDocs: 3000, Alpha: 0.9, CacheIDs: cacheIDs,
		Duration: 60, ReqPerCache: 15, UpdatesPerUnit: updates,
	})
}

func explicitMemberships(clouds, size int) [][]string {
	out := make([][]string, clouds)
	for c := range out {
		for i := 0; i < size; i++ {
			out[c] = append(out[c], fmt.Sprintf("edge-%d-%d", c, i))
		}
	}
	return out
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, nil, Config{}); !errors.Is(err, ErrBadNetwork) {
		t.Fatalf("err = %v, want ErrBadNetwork", err)
	}
	if _, err := Build([][]string{{"a"}}, nil, Config{RingSize: 2}); !errors.Is(err, ErrBadNetwork) {
		t.Fatalf("undersized cloud err = %v", err)
	}
	if _, err := Build([][]string{{"a", "b"}, {"b", "c"}}, nil, Config{}); !errors.Is(err, ErrBadNetwork) {
		t.Fatalf("duplicate member err = %v", err)
	}
}

func TestBuildTopologyAndRouting(t *testing.T) {
	n, err := Build(explicitMemberships(3, 4), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if n.NumClouds() != 3 {
		t.Fatalf("clouds = %d", n.NumClouds())
	}
	if got := len(n.CacheIDs()); got != 12 {
		t.Fatalf("caches = %d", got)
	}
	if n.CloudOf("edge-2-3") != 2 {
		t.Fatalf("CloudOf = %d", n.CloudOf("edge-2-3"))
	}
	if n.CloudOf("ghost") != -1 {
		t.Fatal("unknown cache resolved")
	}
	if n.Origin() == nil || n.Cloud(0) == nil {
		t.Fatal("accessors broken")
	}
}

func TestRunEndToEnd(t *testing.T) {
	members := explicitMemberships(3, 4)
	n, err := Build(members, nil, Config{CycleLength: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, m := range members {
		ids = append(ids, m...)
	}
	tr := networkTrace(ids, 30)
	res, err := n.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != int64(tr.NumRequests()) {
		t.Fatalf("requests = %d, want %d", res.Requests, tr.NumRequests())
	}
	if res.LocalHits+res.CloudHits+res.GroupMisses != res.Requests {
		t.Fatalf("accounting broken: %+v", res)
	}
	if res.HitRate() <= 0 {
		t.Fatal("no in-network hits")
	}
	if len(res.PerCloud) != 3 {
		t.Fatalf("per-cloud summaries = %d", len(res.PerCloud))
	}
	for i, pc := range res.PerCloud {
		if pc.Caches != 4 || pc.Requests == 0 {
			t.Fatalf("cloud %d summary %+v", i, pc)
		}
	}
}

// The paper's cooperative-consistency benefit: the origin sends exactly one
// update message per cloud, independent of how many caches hold the
// document.
func TestUpdateMessagesPerCloud(t *testing.T) {
	members := explicitMemberships(4, 3)
	n, err := Build(members, nil, Config{RingSize: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, m := range members {
		ids = append(ids, m...)
	}
	tr := networkTrace(ids, 20)
	res, err := n.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.UpdateMessages != res.Updates*4 {
		t.Fatalf("update messages = %d, want updates×clouds = %d",
			res.UpdateMessages, res.Updates*4)
	}
	// With ad hoc placement and hot documents replicated at many caches,
	// a per-holder push would cost far more messages than per-cloud push.
	if res.HolderRefreshes <= res.UpdateMessages {
		t.Fatalf("holder refreshes %d not above per-cloud messages %d — workload too cold",
			res.HolderRefreshes, res.UpdateMessages)
	}
}

func TestRunRejectsUnknownCache(t *testing.T) {
	n, err := Build(explicitMemberships(1, 4), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr := networkTrace([]string{"nobody"}, 5)
	if _, err := n.Run(tr); !errors.Is(err, ErrBadNetwork) {
		t.Fatalf("err = %v, want ErrBadNetwork", err)
	}
}

func TestRunEmptyTrace(t *testing.T) {
	n, err := Build(explicitMemberships(1, 4), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(&trace.Trace{}); !errors.Is(err, ErrBadNetwork) {
		t.Fatalf("err = %v, want ErrBadNetwork", err)
	}
}

func TestBuildFromTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	nodes := landmark.RandomTopology(rng, 30, 3, 12)
	n, clusters, err := BuildFromTopology(nodes, landmark.Config{
		Landmarks: landmark.DefaultLandmarks(),
		BinWidth:  150,
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if n.NumClouds() != len(clusters) {
		t.Fatalf("clouds %d != clusters %d", n.NumClouds(), len(clusters))
	}
	if n.NumClouds() < 2 {
		t.Fatalf("topology collapsed to %d clouds", n.NumClouds())
	}
	// Every topology node must be routable.
	for _, node := range nodes {
		if n.CloudOf(node.ID) == -1 {
			t.Fatalf("node %s not in any cloud", node.ID)
		}
	}
	// And the built network must actually run a workload.
	tr := networkTrace(n.CacheIDs(), 10)
	res, err := n.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRate() <= 0 {
		t.Fatal("no hits in topology-built network")
	}
}

// Package edgenet assembles multiple cache clouds into the large-scale
// edge cache network the paper targets ("a large scale cooperative edge
// cache network", Section 1): caches are grouped into clouds of nearby
// nodes — by explicit membership or by the landmark clustering of
// internal/landmark — and a single origin server serves group misses and
// publishes each update once per cloud.
//
// The network-level benefit the paper motivates is directly measurable
// here: with C clouds the origin sends C update messages per update
// instead of one per holding cache.
package edgenet

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"cachecloud/internal/core"
	"cachecloud/internal/document"
	"cachecloud/internal/landmark"
	"cachecloud/internal/origin"
	"cachecloud/internal/placement"
	"cachecloud/internal/trace"
)

// ErrBadNetwork is returned for invalid network configurations.
var ErrBadNetwork = errors.New("edgenet: invalid network")

// Config parameterises network construction and runs.
type Config struct {
	// RingSize is the beacon points per ring inside each cloud
	// (default 2, the paper's recommendation).
	RingSize int
	// IntraGen is the intra-ring hash generator (default 1000).
	IntraGen int
	// CycleLength is the per-cloud rebalance period (default 60).
	CycleLength int64
	// CacheCapacity is each cache's byte budget (0 = unlimited).
	CacheCapacity int64
	// Policy is the placement policy shared by all caches (ad hoc when
	// nil).
	Policy placement.Policy
	// Seed drives holder selection during runs.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.RingSize < 1 {
		c.RingSize = 2
	}
	if c.IntraGen == 0 {
		c.IntraGen = 1000
	}
	if c.CycleLength == 0 {
		c.CycleLength = 60
	}
	if c.Policy == nil {
		c.Policy = placement.AdHoc{}
	}
	return c
}

// Network is an edge cache network: several cache clouds and one origin.
type Network struct {
	cfg     Config
	clouds  []*core.Cloud
	origin  *origin.Server
	cloudOf map[string]int
}

// Build constructs a network from explicit cloud memberships.
func Build(memberships [][]string, docs []document.Document, cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if len(memberships) == 0 {
		return nil, fmt.Errorf("%w: no clouds", ErrBadNetwork)
	}
	n := &Network{
		cfg:     cfg,
		origin:  origin.New(docs),
		cloudOf: make(map[string]int),
	}
	for i, members := range memberships {
		if len(members) < cfg.RingSize {
			return nil, fmt.Errorf("%w: cloud %d has %d caches for rings of %d",
				ErrBadNetwork, i, len(members), cfg.RingSize)
		}
		numRings := len(members) / cfg.RingSize
		cloud, err := core.New(core.Config{
			NumRings:        numRings,
			IntraGen:        cfg.IntraGen,
			FineGrained:     true,
			DefaultCapacity: cfg.CacheCapacity,
		}, members, nil)
		if err != nil {
			return nil, fmt.Errorf("edgenet: build cloud %d: %w", i, err)
		}
		for _, m := range members {
			if _, dup := n.cloudOf[m]; dup {
				return nil, fmt.Errorf("%w: cache %q in two clouds", ErrBadNetwork, m)
			}
			n.cloudOf[m] = i
		}
		n.clouds = append(n.clouds, cloud)
		n.origin.AttachCloud(cloud)
	}
	return n, nil
}

// BuildFromTopology clusters the caches of an edge network into clouds
// with the landmark technique and builds the network over the result.
func BuildFromTopology(nodes []landmark.Node, lmCfg landmark.Config, cfg Config) (*Network, []landmark.Cloud, error) {
	cfg = cfg.withDefaults()
	if lmCfg.MinCloudSize < cfg.RingSize {
		lmCfg.MinCloudSize = cfg.RingSize
	}
	clusters, err := landmark.Cluster(nodes, lmCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("edgenet: cluster topology: %w", err)
	}
	memberships := make([][]string, len(clusters))
	for i, c := range clusters {
		memberships[i] = c.Members
	}
	n, err := Build(memberships, nil, cfg)
	if err != nil {
		return nil, nil, err
	}
	return n, clusters, nil
}

// NumClouds returns the cloud count.
func (n *Network) NumClouds() int { return len(n.clouds) }

// Cloud returns the i-th cloud.
func (n *Network) Cloud(i int) *core.Cloud { return n.clouds[i] }

// Origin returns the shared origin server.
func (n *Network) Origin() *origin.Server { return n.origin }

// CacheIDs returns every cache in the network, sorted.
func (n *Network) CacheIDs() []string {
	out := make([]string, 0, len(n.cloudOf))
	for id := range n.cloudOf {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// CloudOf returns the cloud index for a cache, or -1 when unknown.
func (n *Network) CloudOf(cacheID string) int {
	if i, ok := n.cloudOf[cacheID]; ok {
		return i
	}
	return -1
}

// SetCatalog replaces the origin catalog (used when the network was built
// from a topology before the workload existed).
func (n *Network) SetCatalog(docs []document.Document) {
	srv := origin.New(docs)
	for _, c := range n.clouds {
		srv.AttachCloud(c)
	}
	n.origin = srv
}

// Result carries the metrics of one network run.
type Result struct {
	Requests    int64
	LocalHits   int64
	CloudHits   int64
	GroupMisses int64
	Updates     int64
	// UpdateMessages is origin→cloud update messages (updates × clouds) —
	// the cooperative-consistency cost the paper's design bounds.
	UpdateMessages int64
	// HolderRefreshes counts copies refreshed across all clouds; under a
	// per-holder push design the origin would send this many messages.
	HolderRefreshes int64
	ServerBytes     int64
	IntraCloudBytes int64
	// PerCloud summarises each cloud.
	PerCloud []CloudSummary
}

// CloudSummary is one cloud's view of a run.
type CloudSummary struct {
	Caches    int
	Requests  int64
	HitRate   float64 // (local + cloud hits) / requests
	BeaconCoV float64
}

// HitRate returns the network-wide in-network hit rate.
func (r *Result) HitRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.LocalHits+r.CloudHits) / float64(r.Requests)
}

// Run drives a trace through the network. Request events must name caches
// that belong to some cloud.
func (n *Network) Run(tr *trace.Trace) (*Result, error) {
	if tr == nil || len(tr.Docs) == 0 {
		return nil, fmt.Errorf("%w: empty trace", ErrBadNetwork)
	}
	n.SetCatalog(tr.Docs)
	rng := rand.New(rand.NewSource(n.cfg.Seed))
	res := &Result{}
	cloudReq := make([]int64, len(n.clouds))
	cloudHit := make([]int64, len(n.clouds))
	nextCycle := n.cfg.CycleLength

	for _, ev := range tr.Events {
		for ev.Time >= nextCycle {
			for _, c := range n.clouds {
				c.Rebalance()
			}
			nextCycle += n.cfg.CycleLength
		}
		switch ev.Kind {
		case trace.Request:
			ci, ok := n.cloudOf[ev.Cache]
			if !ok {
				return nil, fmt.Errorf("%w: request for unknown cache %q", ErrBadNetwork, ev.Cache)
			}
			res.Requests++
			cloudReq[ci]++
			hit, err := n.handleRequest(n.clouds[ci], ev, rng, res)
			if err != nil {
				return nil, err
			}
			if hit {
				cloudHit[ci]++
			}
		case trace.Update:
			res.Updates++
			out, err := n.origin.PublishUpdateHash(ev.URL, evHash(ev), ev.Time)
			if err != nil {
				return nil, fmt.Errorf("edgenet: publish: %w", err)
			}
			res.UpdateMessages += int64(len(n.clouds))
			res.HolderRefreshes += int64(out.HoldersNotified)
			res.ServerBytes += out.ServerBytes
			res.IntraCloudBytes += out.FanoutBytes
		}
	}

	for i, c := range n.clouds {
		hr := 0.0
		if cloudReq[i] > 0 {
			hr = float64(cloudHit[i]) / float64(cloudReq[i])
		}
		res.PerCloud = append(res.PerCloud, CloudSummary{
			Caches:    len(c.CacheIDs()),
			Requests:  cloudReq[i],
			HitRate:   hr,
			BeaconCoV: c.LoadDistribution().CoV(),
		})
	}
	return res, nil
}

// evHash returns the event's interned document hash, computing it on the
// fly for hand-built traces that never went through EnsureHashes.
func evHash(ev trace.Event) document.Hash {
	if ev.Hash != 0 {
		return ev.Hash
	}
	return document.HashURL(ev.URL)
}

// handleRequest serves one request inside a cloud; reports whether it was
// served in-network (locally or from a peer).
func (n *Network) handleRequest(c *core.Cloud, ev trace.Event, rng *rand.Rand, res *Result) (bool, error) {
	ch := c.Cache(ev.Cache)
	if _, hit := ch.Get(ev.URL, ev.Time); hit {
		res.LocalHits++
		return true, nil
	}
	h := evHash(ev)
	lr, err := c.LookupHash(ev.URL, h, ev.Time)
	if err != nil {
		return false, err
	}
	holders := make([]string, 0, len(lr.Holders))
	for _, hd := range lr.Holders {
		if hd != ev.Cache {
			holders = append(holders, hd)
		}
	}
	var doc document.Document
	served := false
	if len(holders) > 0 {
		src := holders[rng.Intn(len(holders))]
		if cp, ok := c.Cache(src).Peek(ev.URL); ok {
			doc = cp.Doc
			res.CloudHits++
			res.IntraCloudBytes += doc.Size
			served = true
		}
	}
	if !served {
		doc, err = n.origin.Fetch(ev.URL)
		if err != nil {
			return false, fmt.Errorf("edgenet: fetch: %w", err)
		}
		res.GroupMisses++
		res.ServerBytes += doc.Size
	}

	lookupRate, updateRate := c.DocumentRatesHash(ev.URL, h, ev.Time)
	ctx := placement.Context{
		Now: ev.Time, CacheID: ev.Cache, DocURL: ev.URL, DocSize: doc.Size,
		IsBeacon:        lr.Beacon == ev.Cache,
		LocalAccessRate: ch.AccessRate(ev.URL, ev.Time),
		MeanLocalRate:   ch.MeanAccessRate(ev.Time),
		CloudLookupRate: lookupRate,
		CloudUpdateRate: updateRate,
		ReplicaCount:    len(holders),
		Residence:       placement.ExpectedResidence(ch.Capacity(), ch.EvictionByteRate(ev.Time)),
	}
	if n.cfg.Policy.ShouldStore(ctx).Store {
		if evicted, err := ch.Put(document.Copy{Doc: doc, FetchedAt: ev.Time}, ev.Time); err == nil {
			if err := c.RegisterHolderHash(ev.URL, h, ev.Cache); err != nil {
				return served, err
			}
			for _, dead := range evicted {
				if err := c.DeregisterHolder(dead.URL, ev.Cache); err != nil {
					return served, err
				}
			}
		}
	}
	return served, nil
}

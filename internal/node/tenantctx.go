package node

import "context"

// tenantCtxKey keys the tenant ID inside a request context.
type tenantCtxKey struct{}

// WithTenant returns a context carrying the tenant ID. Every transport
// stamps it onto outbound requests as the TenantHeader, so a client call
// made under this context is served entirely inside that tenant's key
// space. The empty ID is the default tenant and adds nothing.
func WithTenant(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantCtxKey{}, id)
}

// TenantFromContext extracts the tenant ID set by WithTenant ("" when
// unset — the default tenant).
func TenantFromContext(ctx context.Context) string {
	id, _ := ctx.Value(tenantCtxKey{}).(string)
	return id
}

// withoutTenant clears any tenant carried by the context. Handlers call
// it after folding the tenant into the document key: every downstream
// peer call then travels on the already-scoped key alone, so an
// in-process transport that passes contexts through verbatim (the
// simulation harness) cannot re-stamp the header and double-fold.
func withoutTenant(ctx context.Context) context.Context {
	if TenantFromContext(ctx) == "" {
		return ctx
	}
	return context.WithValue(ctx, tenantCtxKey{}, "")
}

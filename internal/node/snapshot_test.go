package node

import (
	"bytes"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestSnapshotRoundTrip(t *testing.T) {
	lc := startCluster(t, 2, 2, ClusterConfig{})
	client := &http.Client{Timeout: 5 * time.Second}

	// Warm live-00 with some documents and beacon records.
	for i := 0; i < 10; i++ {
		getDoc(t, client, lc.Cfg.Addrs["live-00"], testCatalog(20)[i].URL)
	}
	src := lc.Caches["live-00"]

	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh node with the same name restores the state.
	restored, err := NewCacheNode("live-00", lc.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.store.Len() != src.store.Len() {
		t.Fatalf("restored %d docs, want %d", restored.store.Len(), src.store.Len())
	}
	srcRecs, dstRecs := len(src.records), len(restored.records)
	if dstRecs != srcRecs {
		t.Fatalf("restored %d records, want %d", dstRecs, srcRecs)
	}
}

func TestSnapshotRejectsWrongNode(t *testing.T) {
	lc := startCluster(t, 2, 2, ClusterConfig{})
	var buf bytes.Buffer
	if err := lc.Caches["live-00"].SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	other := lc.Caches["live-01"]
	err := other.LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "belongs to") {
		t.Fatalf("err = %v, want node mismatch", err)
	}
}

func TestSnapshotFileLifecycle(t *testing.T) {
	lc := startCluster(t, 2, 2, ClusterConfig{})
	client := &http.Client{Timeout: 5 * time.Second}
	getDoc(t, client, lc.Cfg.Addrs["live-00"], "http://live/doc/2")

	path := filepath.Join(t.TempDir(), "node.snap")
	n := lc.Caches["live-00"]

	// Missing file is a clean cold start.
	if err := n.LoadSnapshotFile(path); err != nil {
		t.Fatalf("missing snapshot file: %v", err)
	}
	if err := n.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewCacheNode("live-00", lc.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	if !fresh.store.Has("http://live/doc/2") {
		t.Fatal("restored node lost the stored document")
	}
}

func TestSnapshotSaveEndpoint(t *testing.T) {
	lc := startCluster(t, 2, 2, ClusterConfig{})
	client := &http.Client{Timeout: 5 * time.Second}

	// Without a configured path the endpoint refuses.
	err := postJSON(client, lc.Cfg.Addrs["live-00"]+"/snapshot/save", struct{}{}, nil)
	if err == nil {
		t.Fatal("save without configured path accepted")
	}

	path := filepath.Join(t.TempDir(), "ep.snap")
	lc.Caches["live-00"].SetSnapshotPath(path)
	getDoc(t, client, lc.Cfg.Addrs["live-00"], "http://live/doc/5")
	var out map[string]string
	if err := postJSON(client, lc.Cfg.Addrs["live-00"]+"/snapshot/save", struct{}{}, &out); err != nil {
		t.Fatal(err)
	}
	if out["saved"] != path {
		t.Fatalf("saved = %q", out["saved"])
	}
	fresh, err := NewCacheNode("live-00", lc.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	if !fresh.store.Has("http://live/doc/5") {
		t.Fatal("endpoint-saved snapshot not restorable")
	}
}

func TestSnapshotLoadGarbage(t *testing.T) {
	lc := startCluster(t, 2, 2, ClusterConfig{})
	n := lc.Caches["live-00"]
	if err := n.LoadSnapshot(strings.NewReader("{broken")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

package node

import (
	"context"
	"net/http"
	"testing"

	"cachecloud/internal/document"
)

// findHeldDoc loads documents through a node until one is stored on it,
// returning that URL. Ad hoc placement stores every miss, so the first
// request suffices; the loop guards against capacity evictions.
func findHeldDoc(t *testing.T, client *http.Client, lc *LocalCluster, nodeName string) string {
	t.Helper()
	base := lc.Cfg.Addrs[nodeName]
	for _, d := range testCatalog(40) {
		dr := getDoc(t, client, base, d.URL)
		if dr.Stored && lc.Caches[nodeName].store.Has(d.URL) {
			return d.URL
		}
	}
	t.Fatal("no document stored on node")
	return ""
}

// TestReconcileReRegistersLostRecord checks the healing direction of the
// anti-entropy pass: when a beacon loses the lookup record for a held
// copy (crash, migration glitch), the holder's next reconcile pass
// re-registers it so lookups find the copy again.
func TestReconcileReRegistersLostRecord(t *testing.T) {
	lc := startCluster(t, 4, 2, ClusterConfig{IntraGen: 64})
	client := &http.Client{}
	holder := "live-00"
	url := findHeldDoc(t, client, lc, holder)

	// Erase the record wherever the beacon keeps it.
	beacon, _, err := lc.Caches[holder].beaconURL(url)
	if err != nil {
		t.Fatal(err)
	}
	bn := lc.Caches[beacon]
	bn.mu.Lock()
	delete(bn.records, url)
	bn.mu.Unlock()

	reported, dropped := lc.Caches[holder].Reconcile(context.Background())
	if reported == 0 {
		t.Fatalf("reconcile reported %d copies, want > 0", reported)
	}
	if dropped != 0 {
		t.Fatalf("reconcile dropped %d fresh copies, want 0", dropped)
	}
	found := false
	for _, wr := range bn.Records() {
		if wr.URL != url {
			continue
		}
		for _, h := range wr.Holders {
			if h == holder {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("beacon %s did not re-register %s as holder of %s", beacon, holder, url)
	}
}

// TestReconcileDropsStaleCopy checks the staleness-bounding direction:
// a holder whose copy predates the beacon's fanned-out version must drop
// it on reconcile (Keep=false) instead of serving it indefinitely.
func TestReconcileDropsStaleCopy(t *testing.T) {
	lc := startCluster(t, 4, 2, ClusterConfig{IntraGen: 64})
	client := &http.Client{}
	holder := "live-00"
	url := findHeldDoc(t, client, lc, holder)

	// Advance the beacon's record version past the stored copy's, as if an
	// update fan-out never reached this holder.
	beacon, _, err := lc.Caches[holder].beaconURL(url)
	if err != nil {
		t.Fatal(err)
	}
	bn := lc.Caches[beacon]
	bn.mu.Lock()
	rec := bn.records[url]
	if rec == nil {
		bn.mu.Unlock()
		t.Fatalf("beacon %s has no record for %s", beacon, url)
	}
	rec.version += 5
	bn.mu.Unlock()

	_, dropped := lc.Caches[holder].Reconcile(context.Background())
	if dropped != 1 {
		t.Fatalf("reconcile dropped %d copies, want 1", dropped)
	}
	if lc.Caches[holder].store.Has(url) {
		t.Fatalf("stale copy of %s still stored after reconcile", url)
	}
	for _, wr := range bn.Records() {
		if wr.URL != url {
			continue
		}
		for _, h := range wr.Holders {
			if h == holder {
				t.Fatalf("beacon still lists %s as holder of stale %s", holder, url)
			}
		}
	}
}

// TestReconcileVersionAdvances checks that the beacon adopts a newer
// version seen on a holder (e.g. a degraded-path store made while the
// beacon was partitioned away) so later lookups report it.
func TestReconcileVersionAdvances(t *testing.T) {
	lc := startCluster(t, 4, 2, ClusterConfig{IntraGen: 64})
	client := &http.Client{}
	holder := "live-00"
	url := findHeldDoc(t, client, lc, holder)
	hn := lc.Caches[holder]
	cp, _ := hn.store.Peek(url)
	newer := document.Document{URL: url, Size: cp.Doc.Size, Version: cp.Doc.Version + 3}
	if !hn.store.ApplyUpdate(newer, hn.now()) {
		t.Fatal("ApplyUpdate failed")
	}

	hn.Reconcile(context.Background())

	beacon, _, err := hn.beaconURL(url)
	if err != nil {
		t.Fatal(err)
	}
	for _, wr := range lc.Caches[beacon].Records() {
		if wr.URL == url && wr.Version != newer.Version {
			t.Fatalf("beacon version %d, want %d", wr.Version, newer.Version)
		}
	}
}

// TestUpdateFanoutPrunesUnreachableHolder checks that a holder whose
// /apply push fails is dropped from the lookup record: the beacon must
// not keep steering requesters at a copy it could not refresh.
func TestUpdateFanoutPrunesUnreachableHolder(t *testing.T) {
	lc := startCluster(t, 4, 2, ClusterConfig{IntraGen: 64})
	client := &http.Client{}
	holder := "live-00"
	base := lc.Cfg.Addrs[holder]
	var url, beacon, beaconBase string
	for _, d := range testCatalog(40) {
		b, bb, err := lc.Caches[holder].beaconURL(d.URL)
		if err != nil || b == holder {
			continue
		}
		dr := getDoc(t, client, base, d.URL)
		if dr.Stored && lc.Caches[holder].store.Has(d.URL) {
			url, beacon, beaconBase = d.URL, b, bb
			break
		}
	}
	if url == "" {
		t.Fatal("no stored document with a remote beacon")
	}

	// Crash the holder, then push an update through the beacon. The /apply
	// push fails, so the beacon must prune the holder from the record.
	if !lc.StopNode(holder) {
		t.Fatal("StopNode failed")
	}
	doc := document.Document{URL: url, Size: 100, Version: 99}
	var ur UpdateResponse
	if err := postJSON(client, beaconBase+"/update", UpdateRequest{Doc: doc}, &ur); err != nil {
		t.Fatal(err)
	}
	for _, wr := range lc.Caches[beacon].Records() {
		if wr.URL != url {
			continue
		}
		for _, h := range wr.Holders {
			if h == holder {
				t.Fatalf("beacon still lists crashed holder %s for %s after failed push", holder, url)
			}
		}
	}
}

// TestReplicaResetDropsStaleEntries checks the Reset semantics of replica
// pushes: a full-snapshot push replaces the receiver's replicas from that
// sender, so records the sender no longer holds cannot be promoted later.
func TestReplicaResetDropsStaleEntries(t *testing.T) {
	lc := startCluster(t, 2, 2, ClusterConfig{IntraGen: 64})
	client := &http.Client{}
	a, b := lc.Caches["live-00"], lc.Caches["live-01"]

	// Seed b with a replica from a that a does not actually hold.
	stale := RecordsImport{
		Records: []WireRecord{{URL: "http://live/ghost", Holders: []string{"live-00"}, Version: 7}},
		From:    a.Name(),
	}
	if err := postJSON(client, lc.Cfg.Addrs["live-01"]+"/records/replica", stale, nil); err != nil {
		t.Fatal(err)
	}
	if len(b.ReplicaSnapshot()) != 1 {
		t.Fatal("stale replica not stored")
	}

	// Give a at least one real record, then run its replication pass.
	findHeldDoc(t, client, lc, "live-00")
	if err := postJSON(client, lc.Cfg.Addrs["live-00"]+"/replicate", struct{}{}, nil); err != nil {
		t.Fatal(err)
	}
	for _, wr := range b.ReplicaSnapshot() {
		if wr.URL == "http://live/ghost" {
			t.Fatal("stale replica survived a Reset snapshot push")
		}
	}
}

package node

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
)

// fuzzTransport fails every outbound call, so fuzzed handlers exercise
// their error paths without touching the network.
type fuzzTransport struct{}

func (fuzzTransport) GetJSON(ctx context.Context, url string, out any) error {
	return errors.New("fuzz: no network")
}

func (fuzzTransport) PostJSON(ctx context.Context, url string, in, out any) error {
	return errors.New("fuzz: no network")
}

// fuzzEndpoints lists every wire-protocol route of both node kinds.
var fuzzEndpoints = []struct {
	method, path string
	origin       bool
}{
	{"GET", "/doc", false},
	{"GET", "/lookup", false},
	{"POST", "/register", false},
	{"POST", "/deregister", false},
	{"GET", "/fetch", false},
	{"POST", "/update", false},
	{"POST", "/apply", false},
	{"POST", "/subranges", false},
	{"GET", "/subranges", false},
	{"POST", "/records/import", false},
	{"POST", "/records/replica", false},
	{"POST", "/replicate", false},
	{"POST", "/reconcile", false},
	{"POST", "/loads/collect", false},
	{"POST", "/membership", false},
	{"GET", "/stats", false},
	{"GET", "/metrics", false},
	{"GET", "/fetch", true},
	{"POST", "/publish", true},
	{"POST", "/rebalance", true},
	{"POST", "/replicate", true},
	{"POST", "/repair", true},
	{"POST", "/heartbeat", true},
	{"GET", "/stats", true},
	{"GET", "/metrics", true},
}

// FuzzProtocolDecode sends arbitrary bodies and query strings at every
// HTTP endpoint of a cache node and the origin. The handlers must reject
// garbage with an error status, never a panic — a panic here is a
// remotely-triggerable crash of a live node.
func FuzzProtocolDecode(f *testing.F) {
	f.Add(uint8(0), "url=http://live/doc/1", []byte(""))
	f.Add(uint8(2), "", []byte(`{"url":"http://live/doc/1","node":"n0"}`))
	f.Add(uint8(5), "", []byte(`{"doc":{"url":"http://live/doc/1","size":100,"version":2}}`))
	f.Add(uint8(7), "", []byte(`{"rings":[[{"node":"n0","lo":0,"hi":99}]]}`))
	f.Add(uint8(9), "", []byte(`{"records":[{"url":"u","holders":["n0"],"version":1}]}`))
	f.Add(uint8(13), "", []byte(`{"down":["n1"]}`))
	f.Add(uint8(17), "", []byte(`{"url":"http://live/doc/1"}`))
	f.Add(uint8(21), "", []byte(`{"node":"n1","seq":1,"recordsHeld":3}`))
	f.Add(uint8(7), "", []byte(`{"rings":[[]]}`))
	f.Add(uint8(5), "", []byte(`{"doc":`))
	f.Add(uint8(255), "%zz=&&;", []byte{0xff, 0x00, 0x7b})
	f.Fuzz(func(t *testing.T, endpoint uint8, query string, body []byte) {
		cfg := ClusterConfig{
			IntraGen: 100,
			Rings:    [][]string{{"n0", "n1"}},
			Addrs: map[string]string{
				"n0": "http://127.0.0.1:1", "n1": "http://127.0.0.1:2",
			},
			OriginAddr: "http://127.0.0.1:3",
		}
		cache, err := NewCacheNodeWithTransport("n0", cfg, fuzzTransport{})
		if err != nil {
			t.Fatal(err)
		}
		origin, err := NewOriginNodeWithTransport(cfg, testCatalog(3), fuzzTransport{})
		if err != nil {
			t.Fatal(err)
		}

		ep := fuzzEndpoints[int(endpoint)%len(fuzzEndpoints)]
		handler := cache.Handler()
		if ep.origin {
			handler = origin.Handler()
		}
		req := &http.Request{
			Method:     ep.method,
			URL:        &url.URL{Path: ep.path, RawQuery: query},
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     http.Header{"Content-Type": []string{"application/json"}},
			Body:       io.NopCloser(bytes.NewReader(body)),
			Host:       "fuzz.local",
			RemoteAddr: "127.0.0.1:9",
		}
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req) // must not panic
		if rec.Code == 0 {
			t.Fatalf("%s %s: no status written", ep.method, ep.path)
		}
	})
}

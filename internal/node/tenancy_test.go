package node

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cachecloud/internal/admit"
	"cachecloud/internal/document"
	"cachecloud/internal/tenant"
)

// tenantGet issues GET /doc to one node on behalf of a tenant (the
// empty ID is the default tenant: no header on the wire). It never
// fails the test itself so storm goroutines can call it; the caller
// inspects the status code.
func tenantGet(c *http.Client, base, tid, url string) (DocResponse, int, []byte, error) {
	req, err := http.NewRequest(http.MethodGet, base+"/doc?url="+queryEscape(url), nil)
	if err != nil {
		return DocResponse{}, 0, nil, err
	}
	if tid != "" {
		req.Header.Set(TenantHeader, tid)
	}
	resp, err := c.Do(req)
	if err != nil {
		return DocResponse{}, 0, nil, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var dr DocResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &dr); err != nil {
			return DocResponse{}, resp.StatusCode, body, err
		}
	}
	return dr, resp.StatusCode, body, nil
}

// TestTenantIsolationProperty is the cross-tenant isolation property
// test: a random (seeded) schedule of per-tenant document requests,
// origin publishes, global purges, and one crash/warm-restart cycle
// runs against a live multi-tenant cluster, with a per-tenant model map
// of the version each tenant must observe. The isolation law under
// test:
//
//   - a scoped tenant's copy is version-sticky: origin publishes fan
//     out only to default-tenant (plain-key) holders, and global purges
//     target only the plain key, so once a tenant has fetched a
//     document it keeps observing exactly that version — across other
//     tenants' traffic, publishes, purges, and a durable-log replay;
//   - the default tenant always tracks the origin's current version;
//   - no request is ever answered with another tenant's document (the
//     served key's tenant label must match the requester on every
//     single response);
//   - the durable log replays only keys whose tenant label and version
//     match what that tenant actually fetched;
//   - per-tenant conservation holds on every node at quiescence.
func TestTenantIsolationProperty(t *testing.T) {
	const (
		nodes    = 4
		ringSize = 2
		catalog  = 12
		steps    = 240
	)
	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
	}
	docs := testCatalog(catalog)
	lc, err := StartLocalCluster(names, ringSize, docs, ClusterConfig{
		IntraGen: 200, MaxInflight: 64, MissQueue: 64, StoreDir: t.TempDir(),
		Tenants: map[string]tenant.Quota{
			"acme":    {Weight: 1},
			"globex":  {Weight: 1},
			"initech": {Weight: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)

	httpc := &http.Client{Timeout: 30 * time.Second}
	tenants := []string{"", "acme", "globex", "initech"}
	scoped := tenants[1:]

	// model[tid][url] is the version tenant tid observed on its first
	// fetch of url — sticky forever after. originVersion[url] is the
	// origin's current version, which the default tenant must track.
	model := make(map[string]map[string]document.Version, len(scoped))
	for _, tid := range scoped {
		model[tid] = make(map[string]document.Version)
	}
	originVersion := make(map[string]document.Version, catalog)

	checkGet := func(entry, tid, u string) {
		t.Helper()
		dr, code, body, err := tenantGet(httpc, lc.Cfg.Addrs[entry], tid, u)
		if err != nil || code != http.StatusOK {
			t.Fatalf("GET %s as %q via %s: code %d err %v body %s", u, tid, entry, code, err, body)
		}
		gotTid, gotURL := document.SplitTenantKey(dr.Doc.URL)
		if gotTid != tid || gotURL != u {
			t.Fatalf("tenant %q asked for %s, served key (%q,%s): cross-tenant leak", tid, u, gotTid, gotURL)
		}
		if tid == "" {
			if v, known := originVersion[u]; known {
				if dr.Doc.Version != v {
					t.Fatalf("default tenant saw %s v%d, origin is at v%d", u, dr.Doc.Version, v)
				}
			} else {
				originVersion[u] = dr.Doc.Version
			}
			return
		}
		if v, known := model[tid][u]; known {
			if dr.Doc.Version != v {
				t.Fatalf("tenant %q saw %s v%d, first fetched v%d: cross-tenant invalidation leak",
					tid, u, dr.Doc.Version, v)
			}
		} else {
			model[tid][u] = dr.Doc.Version
		}
	}

	rng := rand.New(rand.NewSource(1849))
	restartAt := steps / 2
	for step := 0; step < steps; step++ {
		if step == restartAt {
			// Make sure the victim holds scoped copies, then crash it and
			// restart it over its durable log.
			for _, tid := range scoped {
				for i := 0; i < 3; i++ {
					checkGet("s1", tid, docs[i].URL)
				}
			}
			held := lc.Caches["s1"].StoredVersions()
			if len(held) == 0 {
				t.Fatal("victim held nothing before the crash; restart leg is vacuous")
			}
			if !lc.StopNode("s1") {
				t.Fatal("StopNode refused")
			}
			cn, err := lc.RestartNode("s1", nil)
			if err != nil {
				t.Fatalf("restart s1: %v", err)
			}
			warm, recovered := cn.WarmBootInfo()
			if !warm || recovered != len(held) {
				t.Fatalf("warm boot recovered %d (warm=%v), held %d at kill", recovered, warm, len(held))
			}
			// Durable-log replay isolation: every recovered scoped key must
			// belong to a tenant that actually fetched it, at exactly the
			// version that tenant observed.
			for key, v := range cn.StoredVersions() {
				tid, plain := document.SplitTenantKey(key)
				if tid == "" {
					continue
				}
				want, known := model[tid][plain]
				if !known {
					t.Fatalf("replay resurrected %s for tenant %q, which never fetched it", plain, tid)
				}
				if v != want {
					t.Fatalf("replay gave tenant %q %s v%d, it fetched v%d", tid, plain, v, want)
				}
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			kept, dropped := cn.WarmRevalidate(ctx)
			if kept+dropped != recovered {
				t.Fatalf("revalidation books: kept %d + dropped %d != recovered %d", kept, dropped, recovered)
			}
			// Anti-entropy on the survivors re-registers their copies with
			// the restarted node's rebuilt beacon records.
			for _, name := range names {
				lc.Caches[name].Reconcile(ctx)
			}
			cancel()
		}
		u := docs[rng.Intn(catalog)].URL
		switch op := rng.Intn(100); {
		case op < 70:
			checkGet(names[rng.Intn(nodes)], tenants[rng.Intn(len(tenants))], u)
		case op < 85:
			var pr PublishResponse
			if err := postJSON(httpc, lc.Cfg.OriginAddr+"/publish", PublishRequest{URL: u}, &pr); err != nil {
				t.Fatalf("publish %s: %v", u, err)
			}
			originVersion[u] = pr.Version
		default:
			var gpr PurgeResponse
			if err := postJSON(httpc, lc.Cfg.OriginAddr+"/purge", PurgeRequest{URL: u, Scope: PurgeScopeGlobal}, &gpr); err != nil {
				t.Fatalf("purge %s: %v", u, err)
			}
		}
	}

	// Final sweep: every recorded (tenant, url) observation must still
	// hold from fresh entry points after all the churn.
	for _, tid := range scoped {
		for u := range model[tid] {
			checkGet(names[rng.Intn(nodes)], tid, u)
			checkGet(names[rng.Intn(nodes)], tid, u)
		}
	}
	for u := range originVersion {
		checkGet(names[rng.Intn(nodes)], "", u)
	}

	// Per-tenant conservation on every node at quiescence.
	for name, n := range lc.Caches {
		for tid, ts := range n.TenantAdmission() {
			if ts.Served+ts.Shed+ts.Failed != ts.Requests {
				t.Fatalf("%s tenant %q conservation violated: served %d + shed %d + failed %d != requests %d",
					name, tid, ts.Served, ts.Shed, ts.Failed, ts.Requests)
			}
		}
	}

	// Tenant visibility on the observability surfaces: /stats carries the
	// per-tenant block, /metrics the tenant-labelled series.
	resp, err := httpc.Get(lc.Cfg.Addrs["s0"] + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	statsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st CacheStats
	if err := json.Unmarshal(statsBody, &st); err != nil {
		t.Fatalf("decode /stats: %v", err)
	}
	if _, ok := st.Tenants["acme"]; !ok {
		t.Fatalf("/stats has no tenant block for acme: %s", statsBody)
	}
	resp, err = httpc.Get(lc.Cfg.Addrs["s0"] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := `cachecloud_node_tenant_requests_total{node="s0",tenant="acme"}`
	if !strings.Contains(string(metricsBody), want) {
		t.Fatalf("/metrics missing tenant-labelled series %s", want)
	}
}

// TestTenantHeaderValidation pins the wire contract: an invalid tenant
// ID is a 400 before any admission or counter work, on /doc and on the
// cooperation endpoints that fold the tenant into the key.
func TestTenantHeaderValidation(t *testing.T) {
	lc := startCluster(t, 2, 2, ClusterConfig{
		Tenants: map[string]tenant.Quota{"acme": {Weight: 1}},
	})
	httpc := &http.Client{Timeout: 10 * time.Second}
	badID := strings.Repeat("a", 65) // over the 64-byte ID bound
	for _, path := range []string{"/doc?url=", "/lookup?url=", "/fetch?url="} {
		req, err := http.NewRequest(http.MethodGet, lc.Cfg.Addrs["live-00"]+path+queryEscape("http://live/doc/0"), nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(TenantHeader, badID)
		resp, err := httpc.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s with invalid tenant: status %d, want 400", path, resp.StatusCode)
		}
	}
	for _, n := range lc.Caches {
		for tid, ts := range n.TenantAdmission() {
			if ts.Requests != 0 {
				t.Fatalf("invalid-tenant request was counted against %q: %+v", tid, ts)
			}
		}
	}
}

// TestChaosNoisyNeighborTenantStorm is the noisy-neighbor end-to-end
// under -race: an aggressor tenant throws a hot-document flash crowd at
// a cluster whose origin is slowed, while a victim tenant keeps serving
// its warm working set. The multi-tenant contract under chaos:
//
//   - the victim's hit ratio under the storm stays within epsilon of its
//     solo baseline (the aggressor cannot evict the victim's copies or
//     starve it out of admission);
//   - the aggressor's resident bytes never exceed its byte quota on any
//     node;
//   - the aggressor is shed at its fair share with a typed 429 whose
//     body names the tenant and the tenant-share reason;
//   - per-tenant conservation (Requests == Served + Shed + Failed) is
//     exact on every node at quiescence, for every tenant.
func TestChaosNoisyNeighborTenantStorm(t *testing.T) {
	const (
		nodes       = 4
		ringSize    = 2
		catalog     = 32
		workingSet  = 16
		aggrClients = 64
		aggrRounds  = 6
		aggrQuota   = 4000 // ~3 of the ~1KB catalog documents per node
		epsilon     = 0.1
	)
	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
	}
	docs := testCatalog(catalog)
	victimDocs := docs[:workingSet]
	aggrDocs := docs[workingSet:]
	lc, _ := startStormCluster(t, names, ringSize, docs, ClusterConfig{
		IntraGen: 200, MaxInflight: 32, MissQueue: 32,
		Tenants: map[string]tenant.Quota{
			"victim": {Weight: 7},
			"aggr":   {Weight: 1, Bytes: aggrQuota},
		},
	}, 5*time.Millisecond)
	httpc := &http.Client{Timeout: 30 * time.Second}

	// Prime the victim's working set through its edge node, then measure
	// the solo baseline hit ratio with no competing traffic.
	for _, d := range victimDocs {
		if _, code, body, err := tenantGet(httpc, lc.Cfg.Addrs["s0"], "victim", d.URL); err != nil || code != http.StatusOK {
			t.Fatalf("prime %s: code %d err %v body %s", d.URL, code, err, body)
		}
	}
	baselineHits := 0
	for _, d := range victimDocs {
		dr, code, _, err := tenantGet(httpc, lc.Cfg.Addrs["s0"], "victim", d.URL)
		if err != nil || code != http.StatusOK {
			t.Fatalf("baseline GET %s: code %d err %v", d.URL, code, err)
		}
		if dr.Source != "origin" {
			baselineHits++
		}
	}
	baseline := float64(baselineHits) / float64(workingSet)
	if baseline < 0.9 {
		t.Fatalf("solo baseline hit ratio %.2f; working set did not prime", baseline)
	}

	// The storm: aggressor flash crowd across every entry node against a
	// slowed origin, victim measured traffic through its own edge node,
	// concurrently.
	var wg sync.WaitGroup
	var shedBody atomic.Value // first 429 body carrying the tenant-share reason
	for g := 0; g < aggrClients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)*7919 + 11))
			for i := 0; i < aggrRounds; i++ {
				entry := names[rng.Intn(nodes)]
				u := aggrDocs[rng.Intn(len(aggrDocs))].URL
				_, code, body, err := tenantGet(httpc, lc.Cfg.Addrs[entry], "aggr", u)
				if err != nil {
					continue
				}
				if code == http.StatusTooManyRequests &&
					strings.Contains(string(body), admit.ReasonTenantShare) &&
					shedBody.Load() == nil {
					shedBody.Store(body)
				}
			}
		}(g)
	}
	stormHits, stormTotal := 0, 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for pass := 0; pass < 3; pass++ {
			for _, d := range victimDocs {
				dr, code, _, err := tenantGet(httpc, lc.Cfg.Addrs["s0"], "victim", d.URL)
				stormTotal++
				if err == nil && code == http.StatusOK && dr.Source != "origin" {
					stormHits++
				}
			}
		}
	}()
	wg.Wait()

	// Victim isolation: hit ratio under the storm within epsilon of solo.
	stormRatio := float64(stormHits) / float64(stormTotal)
	if stormRatio < baseline-epsilon {
		t.Fatalf("victim hit ratio degraded %.3f -> %.3f under the aggressor storm (epsilon %.2f)",
			baseline, stormRatio, epsilon)
	}

	// The aggressor was shed at its share, with a typed body naming it.
	body, _ := shedBody.Load().([]byte)
	if body == nil {
		t.Fatal("aggressor storm produced no tenant-share 429; fair share never engaged")
	}
	if !strings.Contains(string(body), `"tenant":"aggr"`) {
		t.Fatalf("tenant-share 429 body does not name the tenant: %s", body)
	}

	var aggrShed int64
	for name, n := range lc.Caches {
		stats := n.TenantAdmission()
		for tid, ts := range stats {
			if ts.Served+ts.Shed+ts.Failed != ts.Requests {
				t.Fatalf("%s tenant %q conservation violated: served %d + shed %d + failed %d != requests %d",
					name, tid, ts.Served, ts.Shed, ts.Failed, ts.Requests)
			}
		}
		// Quota isolation: the aggressor's residency is capped per node;
		// the victim was never shed (its share dwarfs its concurrency).
		if rb := stats["aggr"].ResidentBytes; rb > aggrQuota {
			t.Fatalf("%s aggr resident bytes %d exceed quota %d", name, rb, aggrQuota)
		}
		if vs := stats["victim"].Shed; vs != 0 {
			t.Fatalf("%s shed %d victim requests during the aggressor's storm", name, vs)
		}
		aggrShed += stats["aggr"].Shed
	}
	if aggrShed == 0 {
		t.Fatal("no node shed the aggressor; the storm never hit the fair share")
	}

	// Cluster quiescence after the storm.
	if sum := sumAdmission(lc); sum.GateInFlight != 0 || sum.GateQueued != 0 ||
		sum.LimiterInFlight != 0 || sum.LimiterQueued != 0 || sum.FlightsActive != 0 {
		t.Fatalf("cluster not quiescent after the storm: %+v", sum)
	}
}

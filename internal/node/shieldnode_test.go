package node

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// shieldCluster boots a two-shield cluster and returns it plus the shield
// names in failover order for this cloud (owner first).
func shieldCluster(t *testing.T, opts ClusterConfig) (*LocalCluster, []string) {
	t.Helper()
	opts.Shields = []string{"s0", "s1"}
	lc := startCluster(t, 4, 2, opts)
	router, err := NewShieldRouter(lc.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	order := []string{router.Owner()}
	for _, name := range lc.Cfg.Shields {
		if name != router.Owner() {
			order = append(order, name)
		}
	}
	return lc, order
}

// TestShieldTierEndToEnd drives the full two-tier protocol over live HTTP:
// a cloud miss resolves cloud → shield → origin and subscribes the cloud,
// a publish sends exactly one versioned update per shield which fans out
// to the subscribed cloud, a global purge empties both tiers, and a
// cloud-scoped purge drops only the edge copies — the next miss is a
// shield hit.
func TestShieldTierEndToEnd(t *testing.T) {
	lc, order := shieldCluster(t, ClusterConfig{})
	client := &http.Client{Timeout: 5 * time.Second}
	url := "http://live/doc/7"
	entry := lc.Cfg.Addrs["live-00"]
	owner := lc.Shields[order[0]]

	// Miss path: cloud → shield → origin.
	dr := getDoc(t, client, entry, url)
	if dr.Source != "origin" || !dr.Stored {
		t.Fatalf("first request: %+v", dr)
	}
	st := cacheStats(t, client, entry)
	if st.ShieldFetches != 1 || st.ShieldHits != 0 || st.ShieldDegraded != 0 {
		t.Fatalf("first-miss shield stats: %+v", st)
	}
	if v, held := owner.HeldVersions()[url]; !held || v != 1 {
		t.Fatalf("owner shield copy: held=%v v=%d", held, v)
	}
	if subs := owner.Subscribers(url); len(subs) != 1 || subs[0] != "cloud0" {
		t.Fatalf("owner shield subscribers = %v", subs)
	}
	if held := lc.Shields[order[1]].HeldVersions(); len(held) != 0 {
		t.Fatalf("non-owner shield holds %v", held)
	}

	// Publish: exactly one update per shield, fanned to the cloud.
	var pr PublishResponse
	if err := postJSON(client, lc.Cfg.OriginAddr+"/publish", PublishRequest{URL: url}, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Version != 2 || pr.ShieldsNotified != 2 || pr.Notified != 1 {
		t.Fatalf("publish: %+v", pr)
	}
	for _, name := range order {
		if got := lc.Shields[name].UpdatesIn(); got != 1 {
			t.Fatalf("shield %s saw %d updates, want exactly 1", name, got)
		}
	}
	if v := lc.Caches["live-00"].StoredVersions()[url]; v != 2 {
		t.Fatalf("cloud copy not refreshed through the tier: v=%d", v)
	}
	if v := owner.HeldVersions()[url]; v != 2 {
		t.Fatalf("shield copy not refreshed: v=%d", v)
	}

	// Global purge: both tiers drop the document and the generation bumps.
	var gpr PurgeResponse
	if err := postJSON(client, lc.Cfg.OriginAddr+"/purge", PurgeRequest{URL: url, Scope: PurgeScopeGlobal}, &gpr); err != nil {
		t.Fatal(err)
	}
	if gpr.ShieldsNotified != 2 || gpr.Dropped < 1 {
		t.Fatalf("global purge: %+v", gpr)
	}
	if _, held := owner.HeldVersions()[url]; held {
		t.Fatal("shield kept copy past a global purge")
	}
	for name, cn := range lc.Caches {
		if _, stored := cn.StoredVersions()[url]; stored {
			t.Fatalf("cache %s kept copy past a global purge", name)
		}
		for _, wr := range cn.Records() {
			if wr.URL == url {
				t.Fatalf("cache %s kept lookup record past a global purge", name)
			}
		}
		for _, wr := range cn.ReplicaSnapshot() {
			if wr.URL == url {
				t.Fatalf("cache %s kept replica past a global purge", name)
			}
		}
	}
	if gen := lc.Origin.PurgeGens()[url]; gen != 1 {
		t.Fatalf("purge generation = %d, want 1", gen)
	}

	// Re-fetch: the shield re-fetches from the origin and records the
	// current purge generation.
	dr = getDoc(t, client, entry, url)
	if dr.Doc.Version != 2 {
		t.Fatalf("post-purge fetch: %+v", dr)
	}
	if gen := owner.PurgeSeen(url); gen != 1 {
		t.Fatalf("shield purgeSeen = %d, want 1", gen)
	}

	// Cloud-scoped purge: edge copies drop, the shield keeps its copy, so
	// the next miss is absorbed by the shield tier.
	var cpr PurgeResponse
	req := PurgeRequest{URL: url, Scope: PurgeScopeCloud, Cloud: "cloud0"}
	if err := postJSON(client, lc.Cfg.OriginAddr+"/purge", req, &cpr); err != nil {
		t.Fatal(err)
	}
	if _, held := owner.HeldVersions()[url]; !held {
		t.Fatal("cloud-scoped purge dropped the shield copy")
	}
	for name, cn := range lc.Caches {
		if _, stored := cn.StoredVersions()[url]; stored {
			t.Fatalf("cache %s kept copy past a cloud-scoped purge", name)
		}
	}
	dr = getDoc(t, client, entry, url)
	if dr.Doc.Version != 2 {
		t.Fatalf("post-scoped-purge fetch: %+v", dr)
	}
	st = cacheStats(t, client, entry)
	if st.ShieldHits == 0 {
		t.Fatalf("re-fetch after scoped purge was not a shield hit: %+v", st)
	}
	if fetches := lc.Origin.Stats().Fetches; fetches != 2 {
		t.Fatalf("origin served %d fetches, want 2 (initial + post-global-purge)", fetches)
	}
}

// TestShieldFailoverAndDegraded kills shields out from under the clouds:
// with the owner down the fetch walks the ring to the sibling; with the
// whole tier down it degrades to a direct origin fetch, and the next
// reconcile pass re-subscribes the orphaned copy so publishes reach it
// again.
func TestShieldFailoverAndDegraded(t *testing.T) {
	lc, order := shieldCluster(t, ClusterConfig{StoreDir: t.TempDir()})
	client := &http.Client{Timeout: 5 * time.Second}
	url := "http://live/doc/11"
	entry := lc.Cfg.Addrs["live-01"]

	// Owner down: ring-order failover to the sibling shield.
	if !lc.StopNode(order[0]) {
		t.Fatalf("stop shield %s", order[0])
	}
	dr := getDoc(t, client, entry, url)
	if dr.Source != "origin" || dr.Doc.Version != 1 {
		t.Fatalf("failover fetch: %+v", dr)
	}
	st := cacheStats(t, client, entry)
	if st.ShieldFailover != 1 || st.ShieldDegraded != 0 {
		t.Fatalf("failover stats: %+v", st)
	}
	if _, held := lc.Shields[order[1]].HeldVersions()[url]; !held {
		t.Fatal("sibling shield did not absorb the failover fetch")
	}

	// Whole tier down: degraded direct-origin fetch, no subscription.
	if !lc.StopNode(order[1]) {
		t.Fatalf("stop shield %s", order[1])
	}
	url2 := "http://live/doc/12"
	dr = getDoc(t, client, entry, url2)
	if dr.Doc.Version != 1 {
		t.Fatalf("degraded fetch: %+v", dr)
	}
	st = cacheStats(t, client, entry)
	if st.ShieldDegraded != 1 {
		t.Fatalf("degraded stats: %+v", st)
	}

	// Heal the tier (warm restart from the durable log) and reconcile: the
	// degraded copy re-subscribes, so the next publish refreshes it.
	sn0, err := lc.RestartShield(order[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	// The owner never held a document before its crash, so its log is
	// empty and the boot is cold; only the recovered count matters.
	if _, recovered := sn0.WarmBootInfo(); recovered != 0 {
		t.Fatalf("owner recovered %d docs from an empty log", recovered)
	}
	sn1, err := lc.RestartShield(order[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm, recovered := sn1.WarmBootInfo(); !warm || recovered != 1 {
		t.Fatalf("sibling warm boot: warm=%v recovered=%d", warm, recovered)
	}
	holder := lc.Caches["live-01"]
	holder.Reconcile(context.Background())
	// The subscription may land on either shield: the holder's circuit
	// breaker for the crashed owner can still be open, in which case the
	// re-subscribing fetch fails over to the sibling — any live shield
	// carrying the subscription restores update delivery.
	subs := append(sn0.Subscribers(url2), sn1.Subscribers(url2)...)
	if len(subs) != 1 || subs[0] != "cloud0" {
		t.Fatalf("degraded copy not re-subscribed: sn0=%v sn1=%v",
			sn0.Subscribers(url2), sn1.Subscribers(url2))
	}
	var pr PublishResponse
	if err := postJSON(client, lc.Cfg.OriginAddr+"/publish", PublishRequest{URL: url2}, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.ShieldsNotified != 2 {
		t.Fatalf("post-heal publish: %+v", pr)
	}
	if v := holder.StoredVersions()[url2]; v != 2 {
		t.Fatalf("degraded copy not refreshed after re-subscription: v=%d", v)
	}
}

// TestShieldResyncAfterMissedTraffic crashes a shield, publishes and
// globally purges past it, then checks Reconcile catches the survivor up:
// stale held copies refresh from the origin and fan to subscribed clouds,
// missed purge generations drop copies.
func TestShieldResyncAfterMissedTraffic(t *testing.T) {
	lc, order := shieldCluster(t, ClusterConfig{})
	client := &http.Client{Timeout: 5 * time.Second}
	urlA, urlB := "http://live/doc/20", "http://live/doc/21"
	entry := lc.Cfg.Addrs["live-02"]

	getDoc(t, client, entry, urlA)
	getDoc(t, client, entry, urlB)
	owner := lc.Shields[order[0]]
	if len(owner.HeldVersions()) != 2 {
		t.Fatalf("owner held = %v", owner.HeldVersions())
	}

	// Partition the owner by swapping its handler for a 503; publishes and
	// purges land only on the sibling.
	srv := lc.byName[order[0]]
	old := srv.Config.Handler
	srv.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "partitioned", http.StatusServiceUnavailable)
	})
	var pr PublishResponse
	if err := postJSON(client, lc.Cfg.OriginAddr+"/publish", PublishRequest{URL: urlA}, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.ShieldsNotified != 1 {
		t.Fatalf("partitioned publish: %+v", pr)
	}
	var gpr PurgeResponse
	if err := postJSON(client, lc.Cfg.OriginAddr+"/purge", PurgeRequest{URL: urlB, Scope: PurgeScopeGlobal}, &gpr); err != nil {
		t.Fatal(err)
	}
	if gpr.ShieldsNotified != 1 {
		t.Fatalf("partitioned purge: %+v", gpr)
	}
	srv.Config.Handler = old

	// The healed shield is stale: urlA at version 1 (origin at 2), urlB
	// still held past its purge. Resync fixes both and re-fans urlA.
	refreshed, purged := owner.Reconcile(context.Background())
	if refreshed != 1 || purged != 1 {
		t.Fatalf("resync: refreshed=%d purged=%d", refreshed, purged)
	}
	held := owner.HeldVersions()
	if held[urlA] != 2 {
		t.Fatalf("resync did not refresh urlA: %v", held)
	}
	if _, ok := held[urlB]; ok {
		t.Fatal("resync kept urlB past its purge generation")
	}
	if gen := owner.PurgeSeen(urlB); gen != 1 {
		t.Fatalf("resync purgeSeen = %d", gen)
	}
	if v := lc.Caches["live-02"].StoredVersions()[urlA]; v != 2 {
		t.Fatalf("resync fan-out did not refresh the cloud copy: v=%d", v)
	}
	if _, stored := lc.Caches["live-02"].StoredVersions()[urlB]; stored {
		t.Fatal("resync did not purge the cloud copy of urlB")
	}
}

// TestShieldObservability scrapes the shield's operational surface over
// live HTTP: /healthz identity, /stats accounting after a miss, Prometheus
// exposition on /metrics, and the /subranges assignment push.
func TestShieldObservability(t *testing.T) {
	lc, order := shieldCluster(t, ClusterConfig{})
	client := &http.Client{Timeout: 5 * time.Second}
	url := "http://live/doc/30"
	getDoc(t, client, lc.Cfg.Addrs["live-00"], url)

	owner := lc.Shields[order[0]]
	if owner.Name() != order[0] {
		t.Fatalf("Name() = %q, want %q", owner.Name(), order[0])
	}

	getJSON := func(addr string, out any) {
		resp, err := client.Get(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", addr, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}

	for _, name := range order {
		base := lc.Cfg.ShieldAddrs[name]
		var hz map[string]string
		getJSON(base+"/healthz", &hz)
		if hz["status"] != "ok" || hz["shield"] != name {
			t.Fatalf("healthz for %s = %v", name, hz)
		}
		var st ShieldStats
		getJSON(base+"/stats", &st)
		if st.Shield != name {
			t.Fatalf("stats shield = %q, want %q", st.Shield, name)
		}
		if name == order[0] {
			if st.HeldDocs != 1 || st.Subscriptions != 1 || st.Fetches != 1 || st.OriginFetches != 1 {
				t.Fatalf("owner stats after one miss: %+v", st)
			}
		} else if st.HeldDocs != 0 || st.Fetches != 0 {
			t.Fatalf("idle sibling stats: %+v", st)
		}
	}

	resp, err := client.Get(lc.Cfg.ShieldAddrs[order[0]] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	text := string(raw)
	for _, want := range []string{
		"cachecloud_shield_fetches_total{shield=\"" + order[0] + "\"} 1",
		"cachecloud_shield_held_documents{shield=\"" + order[0] + "\"} 1",
		"cachecloud_shield_subscriptions{shield=\"" + order[0] + "\"} 1",
		"cachecloud_shield_origin_fetch_total",
		"# TYPE",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("shield metrics missing %q:\n%s", want, text)
		}
	}
	if owner.Metrics() == nil {
		t.Fatal("Metrics() registry is nil")
	}

	// The origin re-pushes beacon assignments to shields the same way it
	// does to cache nodes; a layout push must be accepted and a malformed
	// one rejected.
	var sr SubrangesResponse
	if err := postJSON(client, lc.Cfg.ShieldAddrs[order[0]]+"/subranges", Assignments{}, &sr); err != nil {
		t.Fatal(err)
	}
	bad, err := client.Post(lc.Cfg.ShieldAddrs[order[0]]+"/subranges", "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	_ = bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed subranges push: %d", bad.StatusCode)
	}
}

package node

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"cachecloud/internal/document"
	"cachecloud/internal/durable"
	"cachecloud/internal/obs"
	"cachecloud/internal/ring"
)

// ShieldRouter resolves which shield serves a cloud — the recursive reuse
// of the beacon-ring machinery: the shields form a ring (internal/ring)
// and the cloud ID hashes into its intra-ring range exactly as a URL
// hashes into a beacon ring. Failover walks the ring order from the
// owner, the same sibling discipline beacon rings use.
type ShieldRouter struct {
	order []string // sorted shield names
	start int      // ring position of this cloud's owning shield
	addrs map[string]string
}

// NewShieldRouter builds the cloud-side router from the cluster config.
// Returns (nil, nil) when no shield tier is configured.
func NewShieldRouter(cfg ClusterConfig) (*ShieldRouter, error) {
	if len(cfg.Shields) == 0 {
		return nil, nil
	}
	order := append([]string(nil), cfg.Shields...)
	sort.Strings(order)
	members := make([]ring.Member, len(order))
	for i, id := range order {
		members[i] = ring.Member{ID: id, Capability: 1}
	}
	rg, err := ring.New(ring.Config{IntraGen: cfg.IntraGen}, members)
	if err != nil {
		return nil, fmt.Errorf("node: shield ring: %w", err)
	}
	cloudID := cfg.CloudID
	if cloudID == "" {
		cloudID = "cloud0"
	}
	owner, err := rg.BeaconFor(document.HashURL(cloudID).IrH(cfg.IntraGen))
	if err != nil {
		return nil, fmt.Errorf("node: shield ring: %w", err)
	}
	r := &ShieldRouter{order: order, addrs: cfg.ShieldAddrs}
	for i, id := range order {
		if id == owner {
			r.start = i
		}
	}
	return r, nil
}

// Owner returns this cloud's owning shield.
func (r *ShieldRouter) Owner() string { return r.order[r.start] }

// Walk returns the shields' base URLs in failover order: the cloud's
// owner first, then the rest of the ring in order.
func (r *ShieldRouter) Walk() []string {
	out := make([]string, 0, len(r.order))
	for i := 0; i < len(r.order); i++ {
		name := r.order[(r.start+i)%len(r.order)]
		if base, ok := r.addrs[name]; ok {
			out = append(out, base)
		}
	}
	return out
}

// shieldFetch retrieves a document through the shield ring, walking it in
// failover order from this cloud's owner. The cloud's current version (the
// staleness hint) rides along so a stale shield refreshes from the origin
// before answering — cloud versions never regress across shield failover.
// The fetch also (re-)subscribes this cloud to the serving shield's
// fan-out. Fails only when every shield is unreachable.
func (n *CacheNode) shieldFetch(ctx context.Context, url string, version document.Version) (FetchResponse, error) {
	cloudID := n.cfg.CloudID
	if cloudID == "" {
		cloudID = "cloud0"
	}
	q := "/sfetch?url=" + queryEscape(url) + "&cloud=" + queryEscape(cloudID) +
		"&v=" + strconv.FormatUint(uint64(version), 10)
	var lastErr error
	for i, base := range n.shieldRouter.Walk() {
		var sr ShieldFetchResponse
		if err := n.tp.GetJSON(ctx, base+q, &sr); err != nil {
			lastErr = err
			continue
		}
		n.shieldFetches.Inc()
		if i > 0 {
			n.shieldFailover.Inc()
		}
		if sr.ShieldHit {
			n.shieldHits.Inc()
		}
		return FetchResponse{Doc: sr.Doc}, nil
	}
	if lastErr == nil {
		lastErr = errors.New("node: no shield addresses configured")
	}
	return FetchResponse{}, lastErr
}

// fetchUpstream retrieves a document from the next tier up: the shield
// ring in two-tier mode, the origin directly otherwise. When every shield
// is unreachable the fetch degrades to a direct origin hit and the URL is
// marked degraded — the copy has no shield subscription, so the next
// reconcile pass re-attaches it (see resubscribeDegraded).
func (n *CacheNode) fetchUpstream(ctx context.Context, url string, version document.Version) (FetchResponse, error) {
	if n.shieldRouter == nil {
		return originFetchJSON(ctx, n.tp, n.cfg.OriginAddr, url)
	}
	fr, err := n.shieldFetch(ctx, url, version)
	if err == nil {
		return fr, nil
	}
	fr, err = originFetchJSON(ctx, n.tp, n.cfg.OriginAddr, url)
	if err != nil {
		return FetchResponse{}, err
	}
	n.shieldDegraded.Inc()
	n.mu.Lock()
	n.degradedURLs[url] = true
	n.mu.Unlock()
	return fr, nil
}

// resubscribeDegraded re-attaches copies fetched while the whole shield
// tier was unreachable. A degraded fetch bypassed the shields, so no
// shield carries a subscription for the copy and no publish can refresh
// it. Re-fetching through the ring with the stored version as the hint
// re-subscribes the cloud and refreshes the copy if it went stale; shields
// still unreachable leave the mark in place for the next pass.
func (n *CacheNode) resubscribeDegraded(ctx context.Context) {
	if n.shieldRouter == nil {
		return
	}
	n.mu.Lock()
	urls := make([]string, 0, len(n.degradedURLs))
	for u := range n.degradedURLs {
		urls = append(urls, u)
	}
	n.mu.Unlock()
	sort.Strings(urls)
	for _, url := range urls {
		cp, ok := n.store.Peek(url)
		if !ok {
			n.mu.Lock()
			delete(n.degradedURLs, url)
			n.mu.Unlock()
			continue
		}
		fr, err := n.shieldFetch(ctx, url, cp.Doc.Version)
		if err != nil {
			continue
		}
		if fr.Doc.Version > cp.Doc.Version {
			n.store.ApplyUpdate(fr.Doc, n.now())
		}
		n.mu.Lock()
		delete(n.degradedURLs, url)
		n.mu.Unlock()
	}
}

// ShieldNode is one live shield-tier cache: a cache interposed between the
// edge clouds and the origin. Cloud misses resolve cloud → shield → origin
// (GET /sfetch), the origin pushes exactly one versioned update per shield
// per publish (POST /supdate) which the shield fans out once per subscribed
// cloud through the cloud's beacon machinery, and purges arrive scoped
// (POST /spurge): global-edge purges evict the shield copy and every
// subscribed cloud, per-cloud purges evict one cloud and cancel its
// subscription while the shield keeps serving everyone else.
//
// The shield tier reuses the beacon-ring machinery recursively: shields
// form their own ring (internal/ring) whose intra-ring range is keyed by
// cloud IDs — see ShieldRouter on the cache-node side. Shield-side
// anti-entropy (Reconcile against the origin's GET /versions) plays the
// role /reconcile plays inside a cloud, and the same internal/durable hook
// cache nodes use persists the shield's copies across restarts.
type ShieldNode struct {
	name  string
	cfg   ClusterConfig
	tp    Transport
	clock Clock
	start time.Time

	mu   sync.Mutex
	docs map[string]document.Copy
	// subs maps URL → the set of cloud IDs subscribed for update pushes;
	// a subscription is created by the fetch that served the cloud and
	// cancelled by purges or a fan-out that finds no holders left.
	subs map[string]map[string]bool
	// purgeSeen maps URL → the origin purge generation this shield has
	// applied; Reconcile drops held copies whose generation is stale (a
	// global purge that landed while this shield was unreachable).
	purgeSeen map[string]int64
	// assign is the cloud's beacon sub-range layout, installed by the
	// origin's POST /subranges exactly as on cache nodes: the shield
	// routes its fan-out through the document's current beacon point.
	assign Assignments

	durable       *durable.Store
	warmBoot      bool
	warmRecovered int

	reg           *obs.Registry
	fetches       *obs.Counter
	shieldHits    *obs.Counter
	originFetches *obs.Counter
	updatesIn     *obs.Counter
	updatesFanned *obs.Counter
	purgesCtr     *obs.Counter
	resyncDrops   *obs.Counter
}

// NewShieldNode constructs a live shield node. Its name must appear in the
// cluster config's ShieldAddrs.
func NewShieldNode(name string, cfg ClusterConfig) (*ShieldNode, error) {
	if _, ok := cfg.ShieldAddrs[name]; !ok {
		return nil, fmt.Errorf("node: shield %q missing from shield addresses", name)
	}
	if cfg.IntraGen <= 0 {
		return nil, fmt.Errorf("node: IntraGen must be positive")
	}
	clock := clockOrReal(cfg.Clock)
	sn := &ShieldNode{
		name:      name,
		cfg:       cfg,
		clock:     clock,
		start:     clock.Now(),
		docs:      make(map[string]document.Copy),
		subs:      make(map[string]map[string]bool),
		purgeSeen: make(map[string]int64),
		assign:    equalSplit(cfg),
	}
	sn.initMetrics()
	if err := sn.initDurable(); err != nil {
		return nil, err
	}
	sn.tp = NewHTTPTransport(TransportOptions{Clock: clock})
	return sn, nil
}

// NewShieldNodeWithTransport constructs a shield node whose outbound calls
// go through the given transport (the simulation harness injects the chaos
// transport here).
func NewShieldNodeWithTransport(name string, cfg ClusterConfig, tp Transport) (*ShieldNode, error) {
	sn, err := NewShieldNode(name, cfg)
	if err != nil {
		return nil, err
	}
	if tp != nil {
		sn.tp = tp
	}
	return sn, nil
}

// Name returns the shield's name.
func (sn *ShieldNode) Name() string { return sn.name }

func (sn *ShieldNode) initMetrics() {
	reg := obs.NewRegistry("cachecloud_shield", map[string]string{"shield": sn.name})
	sn.reg = reg
	sn.fetches = reg.Counter("fetches_total")
	sn.shieldHits = reg.Counter("shield_hits_total")
	sn.originFetches = reg.Counter("origin_fetch_total")
	sn.updatesIn = reg.Counter("updates_in_total")
	sn.updatesFanned = reg.Counter("updates_fanned_total")
	sn.purgesCtr = reg.Counter("purges_total")
	sn.resyncDrops = reg.Counter("resync_drops_total")
	reg.GaugeFunc("held_documents", func() float64 {
		sn.mu.Lock()
		defer sn.mu.Unlock()
		return float64(len(sn.docs))
	})
	reg.GaugeFunc("subscriptions", func() float64 {
		sn.mu.Lock()
		defer sn.mu.Unlock()
		n := 0
		for _, m := range sn.subs {
			n += len(m)
		}
		return float64(n)
	})
	reg.GaugeFunc("uptime_seconds", func() float64 {
		return float64(sn.clock.Since(sn.start) / time.Second)
	})
}

// initDurable opens the shield's durable tier under the same store-root
// convention cache nodes use (StoreDir/<name>) and replays the recovered
// index so a restarted shield resumes holding its copies — possibly stale,
// which Reconcile and fetch staleness hints repair — instead of funnelling
// a cold-miss storm at the origin.
func (sn *ShieldNode) initDurable() error {
	if sn.cfg.StoreDir == "" {
		return nil
	}
	st, err := durable.Open(filepath.Join(sn.cfg.StoreDir, sn.name), durable.Options{
		Fsync:  durable.ParseFsync(sn.cfg.Fsync),
		Tracer: sn.cfg.Tracer,
	})
	if err != nil {
		return err
	}
	sn.durable = st
	for _, e := range st.Entries() {
		sn.docs[e.Doc.URL] = document.Copy{Doc: e.Doc, FetchedAt: e.FetchedAt}
	}
	sn.warmRecovered = len(sn.docs)
	sn.warmBoot = sn.warmRecovered > 0
	return nil
}

// Close seals the durable tier (no-op for memory-only shields).
func (sn *ShieldNode) Close() error {
	if sn.durable == nil {
		return nil
	}
	return sn.durable.Close()
}

// persist writes one copy through the durable hook (best-effort: the
// shield keeps serving if the disk tier degrades).
func (sn *ShieldNode) persist(cp document.Copy) {
	if sn.durable != nil {
		_ = sn.durable.Put(cp)
	}
}

// unpersist tombstones one URL in the durable log.
func (sn *ShieldNode) unpersist(url string) {
	if sn.durable != nil {
		_ = sn.durable.Delete(url)
	}
}

// Handler returns the shield's HTTP handler.
func (sn *ShieldNode) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /sfetch", sn.handleFetch)
	mux.HandleFunc("POST /supdate", sn.handleUpdate)
	mux.HandleFunc("POST /spurge", sn.handlePurge)
	mux.HandleFunc("POST /subranges", sn.handleSubranges)
	mux.HandleFunc("GET /healthz", sn.handleHealthz)
	mux.HandleFunc("GET /stats", sn.handleStats)
	mux.HandleFunc("GET /metrics", sn.handleMetrics)
	return mux
}

func (sn *ShieldNode) now() int64 { return int64(sn.clock.Since(sn.start) / time.Second) }

// handleFetch resolves one cloud miss: serve the held copy when it is at
// least as fresh as the cloud's staleness hint (v=), otherwise refresh
// from the origin first — so a shield that healed after missing a publish
// never moves a cloud's served version backwards. The serving fetch
// subscribes the cloud for this URL's update pushes.
func (sn *ShieldNode) handleFetch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	url := q.Get("url")
	cloudID := q.Get("cloud")
	if url == "" || cloudID == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing url or cloud"))
		return
	}
	var hint document.Version
	if v := q.Get("v"); v != "" {
		if hv, err := strconv.ParseUint(v, 10, 64); err == nil {
			hint = document.Version(hv)
		}
	}
	ctx, cancel := requestContext(r)
	defer cancel()
	sn.fetches.Inc()

	sn.mu.Lock()
	cp, held := sn.docs[url]
	sn.mu.Unlock()
	hit := held && cp.Doc.Version >= hint
	if !hit {
		fr, err := originFetchJSON(ctx, sn.tp, sn.cfg.OriginAddr, url)
		if err != nil {
			writeErr(w, http.StatusBadGateway, err)
			return
		}
		sn.originFetches.Inc()
		cp = document.Copy{Doc: fr.Doc, FetchedAt: sn.now()}
		sn.mu.Lock()
		// Keep the newer copy if an update overtook this fetch.
		if old, ok := sn.docs[url]; !ok || cp.Doc.Version >= old.Doc.Version {
			sn.docs[url] = cp
			sn.persist(cp)
		} else {
			cp = old
		}
		sn.purgeSeen[url] = fr.PurgeGen
	} else {
		sn.shieldHits.Inc()
		sn.mu.Lock()
	}
	m, ok := sn.subs[url]
	if !ok {
		m = make(map[string]bool)
		sn.subs[url] = m
	}
	m[cloudID] = true
	sn.mu.Unlock()
	writeJSON(w, http.StatusOK, ShieldFetchResponse{Doc: cp.Doc, ShieldHit: hit})
}

// cloudBeacon resolves the beacon base URL a fan-out for url goes to
// inside the named cloud. The live layer runs one cloud (cfg.CloudID) per
// cluster config; subscriptions from other cloud IDs have no route and
// are pruned.
func (sn *ShieldNode) cloudBeacon(url, cloudID string) (string, bool) {
	if cloudID != sn.cloudID() {
		return "", false
	}
	sn.mu.Lock()
	owner, err := sn.assign.ownerOf(url, sn.cfg.IntraGen)
	sn.mu.Unlock()
	if err != nil {
		return "", false
	}
	base, ok := sn.cfg.Addrs[owner]
	return base, ok
}

func (sn *ShieldNode) cloudID() string {
	if sn.cfg.CloudID != "" {
		return sn.cfg.CloudID
	}
	return "cloud0"
}

// handleUpdate receives the origin's versioned update push. A held copy is
// refreshed and fanned out exactly once per subscribed cloud, through the
// document's beacon point (the beacon then pushes /apply to its holders,
// the intra-cloud half of the protocol). A fan-out that reaches a beacon
// listing no holders prunes the subscription — deliveries refresh, they
// never store. A shield that does not hold the document acknowledges
// without fanning (nothing downstream can be subscribed).
func (sn *ShieldNode) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sn.updatesIn.Inc()
	url := req.Doc.URL

	sn.mu.Lock()
	old, held := sn.docs[url]
	if held && req.Doc.Version > old.Doc.Version {
		cp := document.Copy{Doc: req.Doc, FetchedAt: sn.now()}
		sn.docs[url] = cp
		sn.persist(cp)
	}
	clouds := sn.sortedSubs(url)
	sn.mu.Unlock()

	if !held {
		writeJSON(w, http.StatusOK, ShieldUpdateResponse{Held: false})
		return
	}
	notified := 0
	for _, cid := range clouds {
		base, ok := sn.cloudBeacon(url, cid)
		if !ok {
			sn.dropSub(url, cid)
			continue
		}
		sn.updatesFanned.Inc()
		var ur UpdateResponse
		if err := sn.tp.PostJSON(r.Context(), base+"/update", UpdateRequest{Doc: req.Doc}, &ur); err != nil {
			// Unreachable beacon: keep the subscription; Reconcile re-fans
			// once the cloud is reachable again.
			continue
		}
		notified += ur.Notified
		if ur.Notified == 0 {
			// The cloud holds no copies anymore: cancel its subscription so
			// the next publish skips it (it re-subscribes on its next miss).
			sn.dropSub(url, cid)
		}
	}
	writeJSON(w, http.StatusOK, ShieldUpdateResponse{Held: true, CloudsNotified: notified})
}

// sortedSubs returns the subscribed cloud IDs for a URL in sorted order —
// the deterministic fan-out order. Caller holds sn.mu.
func (sn *ShieldNode) sortedSubs(url string) []string {
	m := sn.subs[url]
	out := make([]string, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func (sn *ShieldNode) dropSub(url, cloudID string) {
	sn.mu.Lock()
	if m, ok := sn.subs[url]; ok {
		delete(m, cloudID)
		if len(m) == 0 {
			delete(sn.subs, url)
		}
	}
	sn.mu.Unlock()
}

// handlePurge applies a scoped purge. Global: drop the shield's copy,
// record the purge generation, and forward the purge into every
// subscribed cloud. Cloud-scoped: forward to that one cloud and cancel
// its subscription; the shield keeps its copy and keeps serving everyone
// else.
func (sn *ShieldNode) handlePurge(w http.ResponseWriter, r *http.Request) {
	var req PurgeRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sn.purgesCtr.Inc()
	dropped := 0
	forward := func(cid string) {
		base, ok := sn.cloudBeacon(req.URL, cid)
		if !ok {
			return
		}
		var pr PurgeResponse
		if err := sn.tp.PostJSON(r.Context(), base+"/purge", PurgeRequest{URL: req.URL, Scope: PurgeScopeCloud, Cloud: cid}, &pr); err == nil {
			dropped += pr.Dropped
		}
	}
	switch req.Scope {
	case PurgeScopeGlobal:
		sn.mu.Lock()
		_, held := sn.docs[req.URL]
		delete(sn.docs, req.URL)
		sn.purgeSeen[req.URL] = req.Gen
		clouds := sn.sortedSubs(req.URL)
		delete(sn.subs, req.URL)
		sn.mu.Unlock()
		if held {
			sn.unpersist(req.URL)
		}
		for _, cid := range clouds {
			forward(cid)
		}
	case PurgeScopeCloud:
		sn.mu.Lock()
		subscribed := sn.subs[req.URL][req.Cloud]
		sn.mu.Unlock()
		if subscribed {
			forward(req.Cloud)
			sn.dropSub(req.URL, req.Cloud)
		}
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown purge scope %q", req.Scope))
		return
	}
	writeJSON(w, http.StatusOK, PurgeResponse{Dropped: dropped})
}

// handleSubranges installs the cloud's beacon assignment, exactly as cache
// nodes receive it — the shield needs the current layout to route its
// fan-out through the right beacon point.
func (sn *ShieldNode) handleSubranges(w http.ResponseWriter, r *http.Request) {
	var req Assignments
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sn.mu.Lock()
	sn.assign = req
	sn.mu.Unlock()
	writeJSON(w, http.StatusOK, SubrangesResponse{})
}

func (sn *ShieldNode) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "shield": sn.name})
}

func (sn *ShieldNode) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, sn.Stats())
}

func (sn *ShieldNode) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write([]byte(sn.reg.Render()))
}

// Stats returns the shield's accounting snapshot.
func (sn *ShieldNode) Stats() ShieldStats {
	sn.mu.Lock()
	held := len(sn.docs)
	subCount := 0
	for _, m := range sn.subs {
		subCount += len(m)
	}
	sn.mu.Unlock()
	return ShieldStats{
		Shield:        sn.name,
		HeldDocs:      held,
		Subscriptions: subCount,
		Fetches:       sn.fetches.Value(),
		ShieldHits:    sn.shieldHits.Value(),
		OriginFetches: sn.originFetches.Value(),
		UpdatesIn:     sn.updatesIn.Value(),
		UpdatesFanned: sn.updatesFanned.Value(),
		Purges:        sn.purgesCtr.Value(),
		ResyncDrops:   sn.resyncDrops.Value(),
		WarmBoot:      sn.warmBoot,
		WarmRecovered: sn.warmRecovered,
	}
}

// Reconcile runs the shield-side anti-entropy pass against the origin's
// GET /versions — the tier-level analogue of the holder /reconcile pass
// inside a cloud. Held copies whose global purge generation is stale (the
// purge landed while this shield was unreachable) are dropped and the
// purge is forwarded to the clouds this shield delivered to; held copies
// older than the origin's version are refreshed and the delta re-fanned to
// subscribers. Returns (refreshed, purged) counts.
func (sn *ShieldNode) Reconcile(ctx context.Context) (refreshed, purged int) {
	var vr VersionsResponse
	if err := sn.tp.GetJSON(ctx, sn.cfg.OriginAddr+"/versions", &vr); err != nil {
		return 0, 0
	}
	sn.mu.Lock()
	urls := make([]string, 0, len(sn.docs))
	for url := range sn.docs {
		urls = append(urls, url)
	}
	sort.Strings(urls)
	sn.mu.Unlock()

	for _, url := range urls {
		sn.mu.Lock()
		cp, held := sn.docs[url]
		seen := sn.purgeSeen[url]
		sn.mu.Unlock()
		if !held {
			continue
		}
		// Held keys may be tenant-scoped; the origin's version and purge
		// tables are keyed by the plain URL.
		_, plain := document.SplitTenantKey(url)
		if gen := vr.PurgeGen[plain]; gen > seen {
			sn.mu.Lock()
			delete(sn.docs, url)
			sn.purgeSeen[url] = gen
			clouds := sn.sortedSubs(url)
			delete(sn.subs, url)
			sn.mu.Unlock()
			sn.unpersist(url)
			sn.resyncDrops.Inc()
			purged++
			for _, cid := range clouds {
				base, ok := sn.cloudBeacon(url, cid)
				if !ok {
					continue
				}
				var pr PurgeResponse
				_ = sn.tp.PostJSON(ctx, base+"/purge", PurgeRequest{URL: url, Scope: PurgeScopeCloud, Cloud: cid}, &pr)
			}
			continue
		}
		ov, known := vr.Versions[plain]
		if !known || cp.Doc.Version >= ov {
			continue
		}
		fr, err := originFetchJSON(ctx, sn.tp, sn.cfg.OriginAddr, url)
		if err != nil {
			continue
		}
		sn.originFetches.Inc()
		fresh := document.Copy{Doc: fr.Doc, FetchedAt: sn.now()}
		sn.mu.Lock()
		sn.docs[url] = fresh
		sn.persist(fresh)
		sn.purgeSeen[url] = fr.PurgeGen
		clouds := sn.sortedSubs(url)
		sn.mu.Unlock()
		refreshed++
		for _, cid := range clouds {
			base, ok := sn.cloudBeacon(url, cid)
			if !ok {
				sn.dropSub(url, cid)
				continue
			}
			sn.updatesFanned.Inc()
			var ur UpdateResponse
			if err := sn.tp.PostJSON(ctx, base+"/update", UpdateRequest{Doc: fr.Doc}, &ur); err == nil && ur.Notified == 0 {
				sn.dropSub(url, cid)
			}
		}
	}
	return refreshed, purged
}

// --- white-box inspection accessors (deterministic simulation harness) ---

// HeldVersions returns the URL → version map of this shield's copies.
func (sn *ShieldNode) HeldVersions() map[string]document.Version {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	out := make(map[string]document.Version, len(sn.docs))
	for url, cp := range sn.docs {
		out[url] = cp.Doc.Version
	}
	return out
}

// PurgeSeen returns this shield's applied purge generation for a URL.
func (sn *ShieldNode) PurgeSeen(url string) int64 {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.purgeSeen[url]
}

// Subscribers returns the sorted cloud IDs subscribed for a URL.
func (sn *ShieldNode) Subscribers(url string) []string {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.sortedSubs(url)
}

// UpdatesIn returns the count of origin update pushes this shield has
// received — the exactly-once-per-publish delivery counter the simulation
// harness checks.
func (sn *ShieldNode) UpdatesIn() int64 { return sn.updatesIn.Value() }

// WarmBootInfo reports whether this shield booted warm and how many
// entries its durable tier recovered.
func (sn *ShieldNode) WarmBootInfo() (warm bool, recovered int) {
	return sn.warmBoot, sn.warmRecovered
}

// Metrics exposes the shield's metrics registry.
func (sn *ShieldNode) Metrics() *obs.Registry { return sn.reg }

package node

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// shedServer replies 429 with Retry-After hints and a JSON body.
func shedServer(calls *atomic.Int64, retryAfterMs string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "1")
		if retryAfterMs != "" {
			w.Header().Set(RetryAfterMsHeader, retryAfterMs)
		}
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"shedding","class":"miss"}`))
	}
}

// TestTransportShedNotRetried: a 429 is a deliberate refusal — exactly
// one attempt, no backoff retries against the same peer.
func TestTransportShedNotRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(shedServer(&calls, "500"))
	defer srv.Close()

	tp := fastTransport(TransportOptions{MaxRetries: 3})
	err := tp.GetJSON(context.Background(), srv.URL+"/x", nil)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("calls = %d, want 1 (shed is terminal)", got)
	}
	if ra, ok := ShedRetryAfter(err); !ok || ra != 500*time.Millisecond {
		t.Fatalf("ShedRetryAfter = (%v, %v), want (500ms, true)", ra, ok)
	}
}

// TestTransportShedDoesNotTripBreaker: sheds count as the peer being
// alive — they reset the consecutive-failure streak instead of feeding
// it, so a shedding peer is never declared down.
func TestTransportShedDoesNotTripBreaker(t *testing.T) {
	var mode atomic.Int32 // 0 = 500, 1 = 429
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if mode.Load() == 1 {
			w.Header().Set(RetryAfterMsHeader, "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	mc := newManualClock()
	tp := fastTransport(TransportOptions{NoRetries: true, BreakerThreshold: 3, Clock: mc})

	// Two real failures: one short of the threshold.
	for i := 0; i < 2; i++ {
		_ = tp.GetJSON(context.Background(), srv.URL+"/x", nil)
	}
	// A shed resets the streak (the peer answered).
	mode.Store(1)
	if err := tp.GetJSON(context.Background(), srv.URL+"/x", nil); !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	mc.advance(2 * time.Millisecond) // past the 1ms shed window
	// Two more failures would have opened the circuit had the shed
	// counted against it (2+1+2 >= 3); after the reset they do not.
	mode.Store(0)
	for i := 0; i < 2; i++ {
		_ = tp.GetJSON(context.Background(), srv.URL+"/x", nil)
	}
	if tp.PeerDown(srv.URL) {
		t.Fatal("circuit opened: the shed was counted as a breaker failure")
	}
}

// TestTransportShedHonorsRetryAfter: within the Retry-After window,
// calls to the shedding peer fail fast with ErrShed and never touch the
// network; after it elapses, traffic resumes.
func TestTransportShedHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(shedServer(&calls, "500"))
	defer srv.Close()

	mc := newManualClock()
	tp := fastTransport(TransportOptions{NoRetries: true, Clock: mc})

	if err := tp.GetJSON(context.Background(), srv.URL+"/x", nil); !errors.Is(err, ErrShed) {
		t.Fatalf("first call err = %v, want ErrShed", err)
	}
	if !tp.PeerShedding(srv.URL) {
		t.Fatal("PeerShedding = false inside the Retry-After window")
	}
	// Inside the window: fail fast, zero network calls.
	if err := tp.GetJSON(context.Background(), srv.URL+"/x", nil); !errors.Is(err, ErrShed) {
		t.Fatalf("in-window err = %v, want ErrShed", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("calls = %d, want 1 (in-window call must not hit the peer)", got)
	}
	mc.advance(501 * time.Millisecond)
	if tp.PeerShedding(srv.URL) {
		t.Fatal("PeerShedding = true after the window elapsed")
	}
	_ = tp.GetJSON(context.Background(), srv.URL+"/x", nil)
	if got := calls.Load(); got != 2 {
		t.Fatalf("calls = %d, want 2 (traffic resumes after the window)", got)
	}
}

// TestTransportShedRetryAfterSecondsAndCap: the whole-second Retry-After
// header is honored when the millisecond one is absent, and absurd
// hints are capped so a bogus peer cannot poison itself for long.
func TestTransportShedRetryAfterSecondsAndCap(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "3600")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	mc := newManualClock()
	tp := fastTransport(TransportOptions{NoRetries: true, Clock: mc})
	err := tp.GetJSON(context.Background(), srv.URL+"/x", nil)
	if ra, ok := ShedRetryAfter(err); !ok || ra != time.Hour {
		t.Fatalf("ShedRetryAfter = (%v, %v), want (1h, true): seconds header not parsed", ra, ok)
	}
	// The fail-fast window is capped at maxShedRetryAfter, not 1h.
	mc.advance(maxShedRetryAfter + time.Millisecond)
	if tp.PeerShedding(srv.URL) {
		t.Fatal("shed window not capped: peer still poisoned past the cap")
	}
}

// TestTransportNoConnectionLeakOnErrorPaths is the body-drain audit:
// every early-return path (shed, 4xx, 5xx, 404) must drain and close
// the response body so the keep-alive connection is reused. One
// connection must serve the whole error sequence.
func TestTransportNoConnectionLeakOnErrorPaths(t *testing.T) {
	big := strings.Repeat("x", 8<<10) // force a body worth draining
	var step atomic.Int64
	var conns atomic.Int64
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch step.Add(1) {
		case 1:
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte(big))
		case 2:
			http.Error(w, big, http.StatusNotFound)
		case 3:
			w.WriteHeader(http.StatusBadRequest)
			w.Write([]byte(big))
		case 4:
			w.Header().Set(RetryAfterMsHeader, "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(big))
		default:
			w.Write([]byte(`{"ok":true}`))
		}
	}))
	srv.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			conns.Add(1)
		}
	}
	srv.Start()
	defer srv.Close()

	mc := newManualClock()
	tp := fastTransport(TransportOptions{NoRetries: true, BreakerThreshold: -1, Clock: mc})
	wantErrs := []func(error) bool{
		func(err error) bool { return err != nil && !errors.Is(err, ErrShed) }, // 500
		func(err error) bool { return errors.Is(err, ErrNotFound) },            // 404
		func(err error) bool { return err != nil },                             // 400
		func(err error) bool { return errors.Is(err, ErrShed) },                // 429
		func(err error) bool { return err == nil },                             // 200
	}
	for i, want := range wantErrs {
		if i == 4 {
			mc.advance(2 * time.Millisecond) // leave the shed window
		}
		err := tp.GetJSON(context.Background(), srv.URL+"/x", nil)
		if !want(err) {
			t.Fatalf("call %d: unexpected err %v", i+1, err)
		}
	}
	if got := conns.Load(); got != 1 {
		t.Fatalf("connections opened = %d, want 1 (error-path bodies not drained?)", got)
	}
}

package node

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"time"

	"cachecloud/internal/admit"
	"cachecloud/internal/document"
	"cachecloud/internal/obs"
)

// Admission-control defaults (overridable via ClusterConfig).
const (
	// DefaultMaxInflight is the node-wide weighted admission capacity.
	DefaultMaxInflight = 64
	// DefaultMissQueue bounds queued miss-class waiters.
	DefaultMissQueue = 32
)

// admitClock adapts the node Clock to the admit package's interface.
type admitClock struct{ c Clock }

func (a admitClock) Now() time.Time { return a.c.Now() }

func (a admitClock) AfterFunc(d time.Duration, f func()) admit.Timer {
	return a.c.AfterFunc(d, f)
}

// flightKey identifies one coalescable origin fetch: all concurrent
// misses for the same document hash at the same known version share one
// wire fetch.
type flightKey struct {
	hash    document.Hash
	version document.Version
}

// initAdmission builds the node's overload-resilience layer from its
// cluster config: the weighted class-priority gate, the adaptive
// origin-fetch limiter, and the miss coalescer.
func (n *CacheNode) initAdmission() {
	maxInflight := n.cfg.MaxInflight
	if maxInflight <= 0 {
		maxInflight = DefaultMaxInflight
	}
	missQueue := n.cfg.MissQueue
	if missQueue <= 0 {
		missQueue = DefaultMissQueue
	}
	limMax := maxInflight / 4
	if limMax < 1 {
		limMax = 1
	}
	clock := admitClock{n.clock}
	n.gate = admit.NewGate(admit.GateOptions{
		Capacity: maxInflight,
		QueueCap: [3]int{admit.Hit: 0, admit.Lookup: 0, admit.Miss: missQueue},
		Clock:    clock,
	})
	n.limiter = admit.NewLimiter(admit.LimiterOptions{
		Mode:     admit.ParseLimitMode(n.cfg.LimitMode),
		Max:      limMax,
		QueueCap: missQueue,
		Clock:    clock,
	})
	n.flights = admit.NewCoalescer[flightKey, document.Document]()
}

// initAdmissionMetrics registers the overload layer's counters and
// gauges (called from initMetrics, after initAdmission).
func (n *CacheNode) initAdmissionMetrics(reg *obs.Registry) {
	n.docRequests = reg.Counter("requests_total")
	n.docServed = reg.Counter("served_total")
	n.docShed = reg.Counter("doc_shed_total")
	n.docFailed = reg.Counter("failed_total")
	n.shedByClass[admit.Hit] = reg.Counter("shed_hit_total")
	n.shedByClass[admit.Lookup] = reg.Counter("shed_lookup_total")
	n.shedByClass[admit.Miss] = reg.Counter("shed_miss_total")
	n.originFetches = reg.Counter("origin_fetch_total")
	n.coalescedMiss = reg.Counter("coalesced_fetch_total")
	reg.GaugeFunc("origin_fetch_limit", func() float64 { return float64(n.limiter.Limit()) })
	reg.GaugeFunc("origin_fetch_inflight", func() float64 { return float64(n.limiter.InFlight()) })
	reg.GaugeFunc("admit_inflight_weight", func() float64 { return float64(n.gate.InFlight()) })
	reg.GaugeFunc("admit_queued", func() float64 { return float64(n.gate.QueuedTotal()) })
}

// requestContext derives a handler context from the propagated deadline
// header, when present: the remaining budget the caller stamped becomes
// this hop's deadline, so queue waiters whose caller gave up are
// cancelled instead of consuming slots.
func requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if v := r.Header.Get(DeadlineHeader); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			return context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
		}
	}
	return r.Context(), func() {}
}

// writeShed renders a typed 429 shed reply with Retry-After hints (the
// standard whole-second header plus the millisecond one peers parse).
func writeShed(w http.ResponseWriter, se *admit.ShedError) {
	ra := se.RetryAfter
	if ra <= 0 {
		ra = 50 * time.Millisecond
	}
	secs := int64((ra + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	w.Header().Set(RetryAfterMsHeader, strconv.FormatInt(int64(ra/time.Millisecond), 10))
	body := map[string]string{
		"error":  se.Error(),
		"class":  se.Class.String(),
		"reason": se.Reason,
	}
	if se.Tenant != "" {
		body["tenant"] = se.Tenant
	}
	writeJSON(w, http.StatusTooManyRequests, body)
}

// noteShed counts one shed decision of class c and traces it.
func (n *CacheNode) noteShed(c admit.Class, url string) {
	n.shedByClass[c].Inc()
	if tr := n.Tracer(); tr != nil {
		tr.Emit(obs.Event{Time: n.now(), Kind: obs.EvShed, Node: n.name, URL: url})
	}
}

// shedOf converts any admission refusal into the *ShedError to send on
// the wire: local sheds pass through; a shed propagated from a peer
// (ErrShed from the transport) is re-issued with the peer's Retry-After
// hint; everything else is not a shed (ok = false).
func shedOf(err error, class admit.Class) (*admit.ShedError, bool) {
	var se *admit.ShedError
	if errors.As(err, &se) {
		return se, true
	}
	if ra, ok := ShedRetryAfter(err); ok {
		return &admit.ShedError{Class: class, Reason: admit.ReasonLimit, RetryAfter: ra}, true
	}
	return nil, false
}

// refuseDoc terminates a /doc request on an admission or retrieval
// error, keeping the conservation counters exact — node-wide and for the
// requesting tenant: a shed answers 429 (counted as Shed), a
// caller-deadline expiry answers 504 and anything else 502 (both counted
// as Failed).
func (n *CacheNode) refuseDoc(w http.ResponseWriter, tid, url string, class admit.Class, err error) {
	if se, ok := shedOf(err, class); ok {
		n.docShed.Inc()
		n.tenantCounts.shed(tid)
		n.noteShed(class, url)
		writeShed(w, se)
		return
	}
	n.docFailed.Inc()
	n.tenantCounts.failed(tid)
	status := http.StatusBadGateway
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		status = http.StatusGatewayTimeout
	}
	writeErr(w, status, err)
}

// refuseServe terminates a beacon-duty or peer-serve request (/lookup,
// /fetch) on an admission error. These are not client /doc requests, so
// only the class shed counters move.
func (n *CacheNode) refuseServe(w http.ResponseWriter, url string, class admit.Class, err error) {
	if se, ok := shedOf(err, class); ok {
		n.noteShed(class, url)
		writeShed(w, se)
		return
	}
	status := http.StatusBadGateway
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		status = http.StatusGatewayTimeout
	}
	writeErr(w, status, err)
}

// originFetch retrieves url from the origin under the full miss-class
// overload controls: concurrent misses for the same (hash, version)
// coalesce onto one wire fetch; the leader holds a miss-class gate slot
// and an adaptive-limiter token for the duration, and reports the
// observed origin latency back to the limiter.
func (n *CacheNode) originFetch(ctx context.Context, url string, version document.Version) (document.Document, error) {
	key := flightKey{hash: document.HashURL(url), version: version}
	doc, shared, err := n.flights.Do(ctx, key, func() (document.Document, error) {
		gateRelease, err := n.gate.Acquire(ctx, admit.Miss)
		if err != nil {
			return document.Document{}, err
		}
		defer gateRelease()
		limRelease, err := n.limiter.Acquire(ctx)
		if err != nil {
			return document.Document{}, err
		}
		t0 := n.clock.Now()
		fr, ferr := n.fetchUpstream(ctx, url, version)
		limRelease(n.clock.Since(t0), ferr == nil)
		if ferr != nil {
			return document.Document{}, ferr
		}
		n.originFetches.Inc()
		return fr.Doc, nil
	})
	if shared && err == nil {
		n.coalescedMiss.Inc()
		if tr := n.Tracer(); tr != nil {
			tr.Emit(obs.Event{Time: n.now(), Kind: obs.EvCoalesced, Node: n.name, URL: url})
		}
	}
	if err != nil {
		return document.Document{}, err
	}
	return doc, nil
}

// AdmissionStats is a white-box snapshot of the overload layer, used by
// the deterministic harness's conservation invariant and the chaos
// storm test.
type AdmissionStats struct {
	Requests, Served, Shed, Failed int64
	OriginFetches, Coalesced       int64
	ShedByClass                    [3]int64
	Limit, LimiterInFlight         int
	GateInFlight, GateQueued       int
	LimiterQueued                  int
	FlightsActive                  int
}

// Admission returns the current overload-layer snapshot.
func (n *CacheNode) Admission() AdmissionStats {
	st := AdmissionStats{
		Requests:        n.docRequests.Value(),
		Served:          n.docServed.Value(),
		Shed:            n.docShed.Value(),
		Failed:          n.docFailed.Value(),
		OriginFetches:   n.originFetches.Value(),
		Coalesced:       n.coalescedMiss.Value(),
		Limit:           n.limiter.Limit(),
		LimiterInFlight: n.limiter.InFlight(),
		GateInFlight:    n.gate.InFlight(),
		GateQueued:      n.gate.QueuedTotal(),
		LimiterQueued:   n.limiter.Queued(),
		FlightsActive:   n.flights.Active(),
	}
	for _, c := range admit.Classes() {
		st.ShedByClass[c] = n.shedByClass[c].Value()
	}
	return st
}

package node

import (
	"fmt"
	"net/http"
	"time"

	"cachecloud/internal/obs"
	"cachecloud/internal/trace"
)

// ReplayResult summarises one trace replay against a live cluster.
type ReplayResult struct {
	Requests   int64
	LocalHits  int64
	PeerHits   int64
	OriginMiss int64
	Updates    int64
	Rebalances int64
	Errors     int64
	// Latency holds the client-side round-trip time of every document
	// request, in milliseconds.
	Latency obs.HistSnapshot
}

// HitRate returns the in-network hit rate of the replay.
func (r *ReplayResult) HitRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.LocalHits+r.PeerHits) / float64(r.Requests)
}

// ReplayOptions tunes Replay.
type ReplayOptions struct {
	// RebalanceEvery triggers a sub-range determination cycle via the
	// origin every N trace time units (0 = never).
	RebalanceEvery int64
	// ReplicateOnRebalance runs the lazy replication pass after each
	// rebalance.
	ReplicateOnRebalance bool
}

// Replay drives a simulator trace through a live cluster over HTTP: each
// request event becomes a GET /doc at the named node, each update event a
// POST /publish at the origin. Trace cache IDs must match the cluster's
// node names. The replay runs as fast as the wire allows (trace time only
// schedules rebalances).
//
// This is the bridge between the two halves of the repository: workloads
// defined for the simulator can exercise the real protocol stack.
func Replay(cfg ClusterConfig, tr *trace.Trace, opts ReplayOptions) (*ReplayResult, error) {
	if tr == nil || len(tr.Events) == 0 {
		return nil, fmt.Errorf("node: empty trace")
	}
	client := &http.Client{Timeout: 10 * time.Second}
	res := &ReplayResult{}
	lat := obs.NewHistogram(obs.DefaultLatencyBounds())
	var nextCycle int64
	if opts.RebalanceEvery > 0 {
		nextCycle = opts.RebalanceEvery
	}

	for _, ev := range tr.Events {
		if opts.RebalanceEvery > 0 && ev.Time >= nextCycle {
			if err := postJSON(client, cfg.OriginAddr+"/rebalance", struct{}{}, nil); err != nil {
				return res, fmt.Errorf("node: replay rebalance: %w", err)
			}
			if opts.ReplicateOnRebalance {
				if err := postJSON(client, cfg.OriginAddr+"/replicate", struct{}{}, nil); err != nil {
					return res, fmt.Errorf("node: replay replicate: %w", err)
				}
			}
			res.Rebalances++
			nextCycle += opts.RebalanceEvery
		}
		switch ev.Kind {
		case trace.Request:
			base, ok := cfg.Addrs[ev.Cache]
			if !ok {
				return res, fmt.Errorf("node: trace names unknown cache %q", ev.Cache)
			}
			res.Requests++
			var dr DocResponse
			t0 := time.Now()
			err := getJSON(client, base+"/doc?url="+queryEscape(ev.URL), &dr)
			lat.Observe(msSince(t0))
			if err != nil {
				res.Errors++
				continue
			}
			switch dr.Source {
			case "local":
				res.LocalHits++
			case "peer":
				res.PeerHits++
			case "origin":
				res.OriginMiss++
			}
		case trace.Update:
			res.Updates++
			if err := postJSON(client, cfg.OriginAddr+"/publish", PublishRequest{URL: ev.URL}, nil); err != nil {
				res.Errors++
			}
		}
	}
	res.Latency = lat.Snapshot()
	return res, nil
}

package node

import (
	"context"
	"path/filepath"

	"cachecloud/internal/document"
	"cachecloud/internal/durable"
	"cachecloud/internal/obs"
)

// initDurable opens the node's durable tier when the cluster config names
// a store directory, replays the recovered index into the in-memory
// cache, compacts the log to the set that actually survived admission
// (capacity may have shrunk since the last run), and only then attaches
// the persist-on-admit hook — so recovery itself is never re-appended.
//
// A node that recovers at least one entry boots warm; the caller is
// expected to follow up with WarmRevalidate once the cluster is reachable
// so stale recovered copies are dropped via the beacons' /reconcile
// verdicts instead of being served.
func (n *CacheNode) initDurable() error {
	if n.cfg.StoreDir == "" {
		return nil
	}
	dir := filepath.Join(n.cfg.StoreDir, n.name)
	st, err := durable.Open(dir, durable.Options{
		Fsync:  durable.ParseFsync(n.cfg.Fsync),
		Tracer: n.cfg.Tracer,
	})
	if err != nil {
		return err
	}
	n.durable = st
	now := n.now()
	for _, e := range st.Entries() {
		// Oversized-for-this-budget entries are skipped; capacity
		// evictions during the load are fine — the log is compacted to
		// the survivors below.
		_, _ = n.store.Put(document.Copy{Doc: e.Doc, FetchedAt: e.FetchedAt}, now)
	}
	var kept []durable.Entry
	for _, url := range n.store.Documents() {
		if cp, ok := n.store.Peek(url); ok {
			kept = append(kept, durable.Entry{Doc: cp.Doc, FetchedAt: cp.FetchedAt})
		}
	}
	if err := st.Reset(kept); err != nil {
		_ = st.Close()
		return err
	}
	n.store.SetDurable(st)
	n.warmRecovered = len(kept)
	n.warmBoot = len(kept) > 0
	if n.warmBoot && n.cfg.Tracer != nil {
		n.cfg.Tracer.Emit(obs.Event{Time: now, Kind: obs.EvWarmBoot, Node: n.name, Count: int64(len(kept))})
	}
	n.initDurableMetrics()
	return nil
}

// initDurableMetrics registers durable-tier gauges onto the node's
// registry (called after initMetrics).
func (n *CacheNode) initDurableMetrics() {
	if n.reg == nil || n.durable == nil {
		return
	}
	n.reg.GaugeFunc("store_segments", func() float64 { return float64(n.durable.Stats().Segments) })
	n.reg.GaugeFunc("store_bytes", func() float64 { return float64(n.durable.Stats().TotalBytes) })
	n.reg.GaugeFunc("store_dead_bytes", func() float64 { return float64(n.durable.Stats().DeadBytes) })
	n.reg.GaugeFunc("store_truncations_total", func() float64 { return float64(n.durable.Stats().Truncations) })
	n.reg.GaugeFunc("store_compactions_total", func() float64 { return float64(n.durable.Stats().Compactions) })
	n.reg.GaugeFunc("warm_boot", func() float64 {
		if n.warmBoot {
			return 1
		}
		return 0
	})
	n.reg.GaugeFunc("warm_recovered", func() float64 { return float64(n.warmRecovered) })
	n.reg.GaugeFunc("warm_revalidated_total", func() float64 { return float64(n.warmRevalidated.Load()) })
	n.reg.GaugeFunc("warm_dropped_total", func() float64 { return float64(n.warmDropped.Load()) })
	n.reg.GaugeFunc("durable_errors_total", func() float64 { return float64(n.store.DurableErrors()) })
}

// WarmRevalidate runs the warm-restart revalidation pass: every recovered
// copy is reported to its beacon through the existing /reconcile
// anti-entropy path. Copies the beacon rules stale are dropped from the
// cache — and tombstoned in the log through the durable hook — while
// fresh copies are re-registered as held, all without a single origin
// fetch. Returns how many copies were confirmed fresh and how many were
// dropped as stale. Safe (and a no-op) on a cold or memory-only node.
func (n *CacheNode) WarmRevalidate(ctx context.Context) (kept, dropped int) {
	if !n.warmBoot {
		return 0, 0
	}
	reported, dropped := n.Reconcile(ctx)
	kept = reported - dropped
	n.warmRevalidated.Add(int64(kept))
	n.warmDropped.Add(int64(dropped))
	return kept, dropped
}

// WarmBootInfo reports whether this node booted warm and how many entries
// the durable tier recovered into the cache.
func (n *CacheNode) WarmBootInfo() (warm bool, recovered int) {
	return n.warmBoot, n.warmRecovered
}

// DurableStats returns the durable tier's accounting snapshot; ok is
// false for memory-only nodes.
func (n *CacheNode) DurableStats() (durable.Stats, bool) {
	if n.durable == nil {
		return durable.Stats{}, false
	}
	return n.durable.Stats(), true
}

// Close detaches and seals the durable tier (no-op for memory-only
// nodes). Call it on shutdown — and before reopening the same store
// directory in a replacement node.
func (n *CacheNode) Close() error {
	if n.durable == nil {
		return nil
	}
	n.store.SetDurable(nil)
	return n.durable.Close()
}

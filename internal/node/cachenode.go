package node

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cachecloud/internal/admit"
	"cachecloud/internal/cache"
	"cachecloud/internal/document"
	"cachecloud/internal/durable"
	"cachecloud/internal/loadstats"
	"cachecloud/internal/obs"
	"cachecloud/internal/placement"
	"cachecloud/internal/tenant"
)

var errNotFound = errors.New("node: not found")

// nodeRecord is a beacon-side lookup record held by a live node.
type nodeRecord struct {
	holders map[string]struct{}
	version document.Version
	lookups *loadstats.EWRate
	updates *loadstats.EWRate
}

func newNodeRecord() *nodeRecord {
	return &nodeRecord{
		holders: make(map[string]struct{}),
		lookups: loadstats.NewEWRate(60),
		updates: loadstats.NewEWRate(60),
	}
}

// CacheNode is one live edge cache plus its beacon-point duties.
type CacheNode struct {
	name         string
	cfg          ClusterConfig
	store        *cache.Cache
	policy       placement.Policy
	tp           Transport
	clock        Clock
	start        time.Time
	snapshotPath string

	mu       sync.Mutex
	assign   Assignments
	records  map[string]*nodeRecord
	replicas map[string]WireRecord // sibling's records, lazily replicated

	// assignView is the lock-free snapshot of assign, republished on every
	// install (the node-layer mirror of the core's epoch pointer). Paths
	// that only resolve beacon ownership — request routing, placement
	// re-evaluation, metrics gauges — read it without touching n.mu, so an
	// install or a long record hand-off never stalls them. An Assignments
	// value is immutable once published: installs replace the whole value.
	assignView  atomic.Pointer[Assignments]
	replicaFrom map[string]string // url → sibling that pushed the replica
	down        map[string]bool   // peers the origin declared dead
	// loads[ring] is a dense per-IrH-value load counter for ranges this
	// node owns in that ring (it only ever has entries for its own ring,
	// but indexing by ring keeps the wire format uniform).
	loads  map[int][]int64
	hbSeq  int64
	tracer *obs.Tracer

	// Operational metrics live in the obs registry: counters are atomic
	// (no n.mu needed to bump them) and /metrics renders the registry
	// without holding n.mu across the response write.
	reg         *obs.Registry
	localHits   *obs.Counter
	peerHits    *obs.Counter
	originMZ    *obs.Counter
	beaconOps   *obs.Counter
	failedOver  *obs.Counter // lookups answered by the ring sibling after a beacon failure
	degraded    *obs.Counter // requests that fell through to the origin with no beacon
	circuitOpen *obs.Counter
	reqMs       *obs.Histogram // client /doc handling latency
	lookupMs    *obs.Histogram // beacon lookup round trip
	fetchMs     *obs.Histogram // peer/origin document retrieval

	// Overload-resilience layer (see admission.go): the weighted
	// class-priority admission gate, the adaptive origin-fetch limiter,
	// and the miss-storm coalescer, plus the conservation counters
	// (Requests == Served + Shed + Failed at quiescent points).
	gate          *admit.Gate
	limiter       *admit.Limiter
	flights       *admit.Coalescer[flightKey, document.Document]
	docRequests   *obs.Counter
	docServed     *obs.Counter
	docShed       *obs.Counter
	docFailed     *obs.Counter
	originFetches *obs.Counter // actual origin wire fetches, post-coalescing
	coalescedMiss *obs.Counter // misses that joined an in-flight fetch
	shedByClass   [admit.NumClasses]*obs.Counter

	// Multi-tenant layer (see tenancy.go): all nil when cfg.Tenants is
	// empty — the single-tenant request path is untouched.
	tenants      *tenant.Registry
	fair         *tenant.FairShare
	tenantCounts *tenantCounters

	// Shield tier (two-tier mode; see shieldnode.go). A nil router means
	// single-tier: upstream fetches go straight to the origin. degradedURLs
	// tracks copies fetched directly from the origin while every shield was
	// unreachable — such copies carry no shield subscription, so no publish
	// can refresh them until the next reconcile pass re-attaches them.
	shieldRouter   *ShieldRouter
	degradedURLs   map[string]bool // guarded by mu
	shieldFetches  *obs.Counter
	shieldHits     *obs.Counter
	shieldFailover *obs.Counter
	shieldDegraded *obs.Counter

	// Durable tier (see durable.go): nil for memory-only nodes. warmBoot
	// and warmRecovered are set once at construction; the revalidation
	// counters advance when WarmRevalidate runs.
	durable         *durable.Store
	warmBoot        bool
	warmRecovered   int
	warmRevalidated atomic.Int64
	warmDropped     atomic.Int64
}

// NewCacheNode constructs a live cache node. The node starts with the equal
// initial sub-range split; the origin installs rebalanced assignments
// later.
func NewCacheNode(name string, cfg ClusterConfig) (*CacheNode, error) {
	if _, ok := cfg.Addrs[name]; !ok {
		return nil, fmt.Errorf("node: %q missing from cluster addresses", name)
	}
	if cfg.IntraGen <= 0 {
		return nil, fmt.Errorf("node: IntraGen must be positive")
	}
	var pol placement.Policy = placement.AdHoc{}
	if cfg.UtilityPlacement {
		u, err := placement.NewUtility(placement.EqualOn(true, true, true, cfg.CapacityBytes > 0), 0.5)
		if err != nil {
			return nil, err
		}
		pol = u
	}
	clock := clockOrReal(cfg.Clock)
	n := &CacheNode{
		name:         name,
		cfg:          cfg,
		store:        cache.New(name, cfg.CapacityBytes),
		policy:       pol,
		clock:        clock,
		start:        clock.Now(),
		assign:       equalSplit(cfg),
		records:      make(map[string]*nodeRecord),
		replicas:     make(map[string]WireRecord),
		replicaFrom:  make(map[string]string),
		down:         make(map[string]bool),
		loads:        make(map[int][]int64),
		degradedURLs: make(map[string]bool),
	}
	router, err := NewShieldRouter(cfg)
	if err != nil {
		return nil, err
	}
	n.shieldRouter = router
	n.tracer = cfg.Tracer
	n.publishAssign()
	n.initAdmission()
	// Tenancy precedes the durable warm boot so replayed entries land
	// under their tenants' byte quotas.
	if err := n.initTenancy(); err != nil {
		return nil, err
	}
	n.initMetrics()
	if err := n.initDurable(); err != nil {
		return nil, err
	}
	n.tp = NewHTTPTransport(TransportOptions{OnBreakerOpen: n.noteCircuitOpen, Clock: clock})
	return n, nil
}

// initMetrics builds the node's metrics registry: counters for the
// protocol outcomes, gauge callbacks over live state, and latency
// histograms with quantile-ready buckets.
func (n *CacheNode) initMetrics() {
	reg := obs.NewRegistry("cachecloud_node", map[string]string{"node": n.name})
	n.reg = reg
	n.localHits = reg.Counter("local_hits_total")
	n.peerHits = reg.Counter("peer_hits_total")
	n.originMZ = reg.Counter("origin_miss_total")
	n.beaconOps = reg.Counter("beacon_ops_total")
	n.failedOver = reg.Counter("failed_over_total")
	n.degraded = reg.Counter("degraded_total")
	n.circuitOpen = reg.Counter("circuit_open_total")
	n.shieldFetches = reg.Counter("shield_fetch_total")
	n.shieldHits = reg.Counter("shield_hit_total")
	n.shieldFailover = reg.Counter("shield_failover_total")
	n.shieldDegraded = reg.Counter("shield_degraded_total")
	bounds := obs.DefaultLatencyBounds()
	n.reqMs = reg.Histogram("request_ms", bounds)
	n.lookupMs = reg.Histogram("lookup_ms", bounds)
	n.fetchMs = reg.Histogram("fetch_ms", bounds)
	reg.GaugeFunc("stored_documents", func() float64 { return float64(n.store.Len()) })
	reg.GaugeFunc("stored_bytes", func() float64 { return float64(n.store.Used()) })
	reg.GaugeFunc("capacity_bytes", func() float64 { return float64(n.store.Capacity()) })
	reg.GaugeFunc("uptime_seconds", func() float64 { return float64(n.now()) })
	reg.GaugeFunc("lookup_records", func() float64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		return float64(len(n.records))
	})
	reg.GaugeFunc("replica_records", func() float64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		return float64(len(n.replicas))
	})
	reg.GaugeFunc("ring_count", func() float64 {
		return float64(len(n.assignSnapshot().Rings))
	})
	reg.GaugeFunc("owned_subrange_len", func() float64 {
		return float64(ownedSubrangeLen(n.assignSnapshot(), n.name))
	})
	reg.GaugeFunc("down_peers", func() float64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		return float64(len(n.down))
	})
	reg.GaugeFunc("heartbeats_sent", func() float64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		return float64(n.hbSeq)
	})
	n.initAdmissionMetrics(reg)
}

// Metrics exposes the node's metrics registry.
func (n *CacheNode) Metrics() *obs.Registry { return n.reg }

// SetTracer attaches a protocol-event tracer; the node emits
// EvFailedOver and EvCircuitOpen.
func (n *CacheNode) SetTracer(t *obs.Tracer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tracer = t
}

// Tracer returns the attached tracer (nil when tracing is off).
func (n *CacheNode) Tracer() *obs.Tracer {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.tracer
}

// noteCircuitOpen is the transport's breaker-open callback.
func (n *CacheNode) noteCircuitOpen(host string) {
	n.circuitOpen.Inc()
	if tr := n.Tracer(); tr != nil {
		tr.Emit(obs.Event{Time: n.now(), Kind: obs.EvCircuitOpen, Node: host})
	}
}

// NewCacheNodeWithTransport constructs a cache node whose outbound calls
// go through the given transport (tests inject the chaos transport here).
func NewCacheNodeWithTransport(name string, cfg ClusterConfig, tp Transport) (*CacheNode, error) {
	n, err := NewCacheNode(name, cfg)
	if err != nil {
		return nil, err
	}
	if tp != nil {
		n.tp = tp
	}
	return n, nil
}

// Name returns the node name.
func (n *CacheNode) Name() string { return n.name }

// now returns elapsed seconds since node start — the live clock for rate
// monitors (1 live time unit = 1 second).
func (n *CacheNode) now() int64 { return int64(n.clock.Since(n.start) / time.Second) }

// msSince returns the elapsed time since t0 on the node's clock in
// milliseconds (histogram observations).
func (n *CacheNode) msSince(t0 time.Time) float64 {
	return float64(n.clock.Since(t0)) / float64(time.Millisecond)
}

// Handler returns the node's HTTP handler.
func (n *CacheNode) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /doc", n.handleDoc)
	mux.HandleFunc("GET /lookup", n.handleLookup)
	mux.HandleFunc("POST /register", n.handleRegister)
	mux.HandleFunc("POST /deregister", n.handleDeregister)
	mux.HandleFunc("GET /fetch", n.handleFetch)
	mux.HandleFunc("POST /update", n.handleUpdate)
	mux.HandleFunc("POST /apply", n.handleApply)
	mux.HandleFunc("POST /purge", n.handlePurge)
	mux.HandleFunc("POST /drop", n.handleDrop)
	mux.HandleFunc("POST /subranges", n.handleSubranges)
	mux.HandleFunc("POST /records/import", n.handleRecordsImport)
	mux.HandleFunc("POST /records/replica", n.handleRecordsReplica)
	mux.HandleFunc("POST /replicate", n.handleReplicate)
	mux.HandleFunc("POST /reconcile", n.handleReconcile)
	mux.HandleFunc("GET /healthz", n.handleHealthz)
	mux.HandleFunc("GET /subranges", n.handleGetSubranges)
	mux.HandleFunc("POST /loads/collect", n.handleLoadsCollect)
	mux.HandleFunc("POST /membership", n.handleMembership)
	mux.HandleFunc("GET /stats", n.handleStats)
	mux.HandleFunc("GET /metrics", n.handleMetrics)
	mux.HandleFunc("POST /snapshot/save", n.handleSnapshotSave)
	return mux
}

// publishAssign republishes the lock-free assignment snapshot. The caller
// holds n.mu (or, in the constructor, has exclusive access).
func (n *CacheNode) publishAssign() {
	a := n.assign
	n.assignView.Store(&a)
}

// assignSnapshot returns the current assignment view without taking n.mu.
func (n *CacheNode) assignSnapshot() *Assignments {
	return n.assignView.Load()
}

// beaconURL resolves the beacon node's base URL for a document.
func (n *CacheNode) beaconURL(url string) (name, base string, err error) {
	owner, err := n.assignSnapshot().ownerOf(url, n.cfg.IntraGen)
	if err != nil {
		return "", "", err
	}
	base, ok := n.cfg.Addrs[owner]
	if !ok {
		return "", "", fmt.Errorf("node: no address for beacon %q", owner)
	}
	return owner, base, nil
}

// siblingOf returns another live member of the beacon's ring — the node
// that holds the lazy replica of the beacon's lookup records and can
// answer lookups while the beacon is unreachable.
func (n *CacheNode) siblingOf(beaconName string) (name, base string, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ringIdx := n.assign.ringOf(beaconName)
	if ringIdx < 0 {
		// The beacon may already have been removed from the assignment;
		// fall back to its configured ring.
		for r, members := range n.cfg.Rings {
			for _, m := range members {
				if m == beaconName {
					ringIdx = r
				}
			}
		}
	}
	if ringIdx < 0 || ringIdx >= len(n.assign.Rings) {
		return "", "", false
	}
	for _, sub := range n.assign.Rings[ringIdx] {
		if sub.Node == beaconName || n.down[sub.Node] {
			continue
		}
		if base, have := n.cfg.Addrs[sub.Node]; have {
			return sub.Node, base, true
		}
	}
	return "", "", false
}

// isDown reports whether the origin has declared the peer dead.
func (n *CacheNode) isDown(peer string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down[peer]
}

// chargeBeaconLoad records one beacon operation on the IrH value.
func (n *CacheNode) chargeBeaconLoad(url string) {
	h := document.HashURL(url)
	ringIdx := h.RingIndex(len(n.assign.Rings))
	irh := h.IrH(n.cfg.IntraGen)
	n.beaconOps.Inc()
	dense := n.loads[ringIdx]
	if dense == nil {
		dense = make([]int64, n.cfg.IntraGen)
		n.loads[ringIdx] = dense
	}
	if irh >= 0 && irh < len(dense) {
		dense[irh]++
	}
}

// handleDoc is the client entry point: local hit, else cooperate. Every
// request passes the admission gate under its work class — hits under
// the cheap hit class, cooperation under the lookup class, origin
// fetches under the miss class — so a miss storm can never starve hit
// serving. Each request increments docRequests and then exactly one of
// docServed, docShed, or docFailed (the conservation invariant).
func (n *CacheNode) handleDoc(w http.ResponseWriter, r *http.Request) {
	url := r.URL.Query().Get("url")
	if url == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing url"))
		return
	}
	tid, terr := tenantFromRequest(r)
	if terr != nil {
		writeErr(w, http.StatusBadRequest, terr)
		return
	}
	n.docRequests.Inc()
	n.tenantCounts.request(tid)
	// The weighted fair share is charged for the whole request: one unit
	// per in-flight /doc per tenant, shed immediately at the share so an
	// aggressor tenant saturates only its own slice of MaxInflight.
	fairRelease, ok := n.tenantAcquire(tid)
	if !ok {
		n.refuseTenantShed(w, tid, url)
		return
	}
	defer fairRelease()
	// All storage, routing, and cooperation below run on the
	// tenant-folded key: each tenant's copies and lookup records live in
	// a disjoint key space.
	url = document.TenantKey(tid, url)
	t0 := n.clock.Now()
	defer func() { n.reqMs.Observe(n.msSince(t0)) }()
	ctx, cancel := requestContext(r)
	defer cancel()
	ctx = withoutTenant(ctx)
	now := n.now()
	if cp, ok := n.store.Get(url, now); ok {
		release, err := n.gate.Acquire(ctx, admit.Hit)
		if err != nil {
			n.refuseDoc(w, tid, url, admit.Hit, err)
			return
		}
		defer release()
		n.localHits.Inc()
		n.docServed.Inc()
		n.tenantCounts.served(tid)
		writeJSON(w, http.StatusOK, DocResponse{Doc: cp.Doc, Source: "local", Stored: true})
		return
	}

	// Miss: the beacon lookup and peer retrieval run under one
	// lookup-class admission; it is released before any origin fetch so
	// slow origin work is charged to the miss class alone.
	lookupRelease, err := n.gate.Acquire(ctx, admit.Lookup)
	if err != nil {
		n.refuseDoc(w, tid, url, admit.Lookup, err)
		return
	}
	defer lookupRelease()

	// Ask the document's beacon point for holders.
	beaconName, beaconBase, err := n.beaconURL(url)
	if err != nil {
		n.docFailed.Inc()
		n.tenantCounts.failed(tid)
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	var lr LookupResponse
	lookupOK := false
	tLookup := n.clock.Now()
	if beaconName == n.name {
		lr = n.localLookup(url)
		lookupOK = true
	} else if !n.isDown(beaconName) {
		if err := n.tp.GetJSON(ctx, beaconBase+"/lookup?url="+queryEscape(url), &lr); err == nil {
			lookupOK = true
		}
	}

	// Beacon unreachable: its ring sibling holds the lazy replica of the
	// lookup records, so retry there before giving up on cooperation.
	failedOver := false
	deadBeacon := beaconName
	if !lookupOK {
		if sibName, sibBase, ok := n.siblingOf(beaconName); ok {
			if sibName == n.name {
				lr = n.localLookup(url)
				lookupOK = true
			} else if err := n.tp.GetJSON(ctx, sibBase+"/lookup?url="+queryEscape(url), &lr); err == nil {
				lookupOK = true
			}
			if lookupOK {
				failedOver = true
				beaconName, beaconBase = sibName, sibBase
			}
		}
	}
	if lookupOK {
		n.lookupMs.Observe(n.msSince(tLookup))
	}

	// No beacon at all: degrade to a direct origin fetch so the client
	// request still completes. The fetch runs under full miss-class
	// controls (coalescing, gate, adaptive limiter).
	if !lookupOK {
		lookupRelease()
		doc, err := n.originFetch(ctx, url, 0)
		if err != nil {
			n.refuseDoc(w, tid, url, admit.Miss, err)
			return
		}
		n.originMZ.Inc()
		n.degraded.Inc()
		stored := n.place(ctx, doc, "", "", LookupResponse{}, now)
		n.docServed.Inc()
		n.tenantCounts.served(tid)
		writeJSON(w, http.StatusOK, DocResponse{Doc: doc, Source: "origin", Stored: stored, Degraded: true})
		return
	}
	if failedOver {
		n.failedOver.Inc()
		if tr := n.Tracer(); tr != nil {
			tr.Emit(obs.Event{Time: now, Kind: obs.EvFailedOver, Node: deadBeacon, URL: url})
		}
	}

	tFetch := n.clock.Now()
	doc, source, ok := n.peerRetrieve(ctx, url, lr)
	lookupRelease()
	if !ok {
		doc, err = n.originFetch(ctx, url, lr.Version)
		if err != nil {
			n.refuseDoc(w, tid, url, admit.Miss, err)
			return
		}
		n.originMZ.Inc()
		source = "origin"
	}
	n.fetchMs.Observe(n.msSince(tFetch))
	stored := n.place(ctx, doc, beaconName, beaconBase, lr, now)
	n.docServed.Inc()
	n.tenantCounts.served(tid)
	writeJSON(w, http.StatusOK, DocResponse{Doc: doc, Source: source, Stored: stored, FailedOver: failedOver})
}

// msSince returns the elapsed wall time since t0 in milliseconds.
func msSince(t0 time.Time) float64 { return float64(time.Since(t0)) / float64(time.Millisecond) }

// peerRetrieve tries to fetch the document from a sibling holder.
// Holders the origin has declared dead are skipped without a network
// call; a holder that sheds (429), is unreachable, or lacks the copy is
// skipped for the next one. ok=false means the caller must fall back to
// the origin (via originFetch, under the miss-class controls).
func (n *CacheNode) peerRetrieve(ctx context.Context, url string, lr LookupResponse) (doc document.Document, source string, ok bool) {
	for _, h := range lr.Holders {
		if h == n.name || n.isDown(h) {
			continue
		}
		base, have := n.cfg.Addrs[h]
		if !have {
			continue
		}
		var fr FetchResponse
		if err := n.tp.GetJSON(ctx, base+"/fetch?url="+queryEscape(url), &fr); err == nil {
			n.peerHits.Inc()
			return fr.Doc, "peer", true
		}
		// Shed, not-found, or unreachable: try the next holder.
	}
	return document.Document{}, "", false
}

// place runs the placement decision and registers the copy when stored.
// An empty beaconBase skips registration (fully degraded path: no beacon
// is reachable, so the copy stays unregistered until the next lookup).
func (n *CacheNode) place(ctx context.Context, doc document.Document, beaconName, beaconBase string, lr LookupResponse, now int64) bool {
	pctx := placement.Context{
		Now: now, CacheID: n.name, DocURL: doc.URL, DocSize: doc.Size,
		IsBeacon:        beaconName == n.name,
		LocalAccessRate: n.store.AccessRate(doc.URL, now),
		MeanLocalRate:   n.store.MeanAccessRate(now),
		CloudLookupRate: lr.LookupRate,
		CloudUpdateRate: lr.UpdateRate,
		ReplicaCount:    len(lr.Holders),
		Residence:       placement.ExpectedResidence(n.store.Capacity(), n.store.EvictionByteRate(now)),
	}
	if !n.policy.ShouldStore(pctx).Store {
		return false
	}
	evicted, err := n.store.Put(document.Copy{Doc: doc, FetchedAt: now}, now)
	if err != nil {
		return false
	}
	n.register(ctx, doc.URL, beaconName, beaconBase)
	for _, dead := range evicted {
		n.deregister(ctx, dead.URL)
	}
	return true
}

func (n *CacheNode) register(ctx context.Context, url, beaconName, beaconBase string) {
	if beaconName == n.name {
		n.localRegister(url, n.name)
		return
	}
	if beaconBase == "" {
		return
	}
	_ = n.tp.PostJSON(ctx, beaconBase+"/register", RegisterRequest{URL: url, Node: n.name}, nil)
}

func (n *CacheNode) deregister(ctx context.Context, url string) {
	beaconName, beaconBase, err := n.beaconURL(url)
	if err != nil {
		return
	}
	if beaconName == n.name {
		n.localDeregister(url, n.name)
		return
	}
	if n.isDown(beaconName) {
		return
	}
	_ = n.tp.PostJSON(ctx, beaconBase+"/deregister", RegisterRequest{URL: url, Node: n.name}, nil)
}

// --- beacon duties ---

func (n *CacheNode) localLookup(url string) LookupResponse {
	n.mu.Lock()
	defer n.mu.Unlock()
	rec, ok := n.records[url]
	if !ok {
		// No owned record. When a sibling fails over a lookup to this node
		// for a range it does not own, answer from the lazy replica without
		// taking ownership — promotion happens on /subranges installs.
		owner, err := n.assign.ownerOf(url, n.cfg.IntraGen)
		if err != nil || owner != n.name {
			if wr, have := n.replicas[url]; have {
				out := LookupResponse{Version: wr.Version}
				for _, h := range wr.Holders {
					if !n.down[h] {
						out.Holders = append(out.Holders, h)
					}
				}
				sort.Strings(out.Holders)
				return out
			}
			return LookupResponse{}
		}
		rec = newNodeRecord()
		n.records[url] = rec
	}
	n.chargeBeaconLoad(url)
	now := n.now()
	rec.lookups.Observe(now, 1)
	out := LookupResponse{
		Version:    rec.version,
		LookupRate: rec.lookups.Rate(now),
		UpdateRate: rec.updates.Rate(now),
	}
	for h := range rec.holders {
		out.Holders = append(out.Holders, h)
	}
	sort.Strings(out.Holders)
	return out
}

func (n *CacheNode) handleLookup(w http.ResponseWriter, r *http.Request) {
	url := r.URL.Query().Get("url")
	if url == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing url"))
		return
	}
	// Peer calls pass already-scoped keys with no header; a direct client
	// lookup carries the tenant header and gets its URL folded here.
	url, terr := foldTenantParam(r, url)
	if terr != nil {
		writeErr(w, http.StatusBadRequest, terr)
		return
	}
	ctx, cancel := requestContext(r)
	defer cancel()
	release, err := n.gate.Acquire(ctx, admit.Lookup)
	if err != nil {
		n.refuseServe(w, url, admit.Lookup, err)
		return
	}
	defer release()
	writeJSON(w, http.StatusOK, n.localLookup(url))
}

func (n *CacheNode) localRegister(url, holder string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if owner, err := n.assign.ownerOf(url, n.cfg.IntraGen); err == nil && owner != n.name {
		// Beacon duty fell here via failover: track the holder on the lazy
		// replica instead of minting an owned record for a range this node
		// does not cover. A spurious owned record would be replicated back
		// to the true owner and later mis-counted as a crash recovery when
		// an install promotes it. The replica is attributed to the real
		// owner so its next full snapshot push supersedes this entry.
		wr := n.replicas[url]
		wr.URL = url
		for _, h := range wr.Holders {
			if h == holder {
				n.replicas[url] = wr
				return
			}
		}
		wr.Holders = append(wr.Holders, holder)
		n.replicas[url] = wr
		n.replicaFrom[url] = owner
		return
	}
	rec, ok := n.records[url]
	if !ok {
		rec = newNodeRecord()
		n.records[url] = rec
	}
	rec.holders[holder] = struct{}{}
}

func (n *CacheNode) localDeregister(url, holder string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if owner, err := n.assign.ownerOf(url, n.cfg.IntraGen); err == nil && owner != n.name {
		if wr, ok := n.replicas[url]; ok {
			kept := wr.Holders[:0]
			for _, h := range wr.Holders {
				if h != holder {
					kept = append(kept, h)
				}
			}
			wr.Holders = kept
			n.replicas[url] = wr
		}
		return
	}
	if rec, ok := n.records[url]; ok {
		delete(rec.holders, holder)
	}
}

func (n *CacheNode) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	n.localRegister(req.URL, req.Node)
	writeJSON(w, http.StatusOK, struct{}{})
}

func (n *CacheNode) handleDeregister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	n.localDeregister(req.URL, req.Node)
	writeJSON(w, http.StatusOK, struct{}{})
}

// handleFetch serves a held copy to a sibling. Serving an existing copy
// is hit-class work: cheap, and prioritised over miss-class admissions
// so an overloaded holder still relieves its peers.
func (n *CacheNode) handleFetch(w http.ResponseWriter, r *http.Request) {
	url := r.URL.Query().Get("url")
	url, terr := foldTenantParam(r, url)
	if terr != nil {
		writeErr(w, http.StatusBadRequest, terr)
		return
	}
	ctx, cancel := requestContext(r)
	defer cancel()
	release, err := n.gate.Acquire(ctx, admit.Hit)
	if err != nil {
		n.refuseServe(w, url, admit.Hit, err)
		return
	}
	defer release()
	cp, ok := n.store.Peek(url)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no copy of %q", url))
		return
	}
	writeJSON(w, http.StatusOK, FetchResponse{Doc: cp.Doc})
}

// handleUpdate is the beacon receiving an origin update: record load,
// refresh the record, push to holders.
func (n *CacheNode) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	now := n.now()

	n.mu.Lock()
	n.chargeBeaconLoad(req.Doc.URL)
	rec, ok := n.records[req.Doc.URL]
	if !ok {
		rec = newNodeRecord()
		n.records[req.Doc.URL] = rec
	}
	rec.updates.Observe(now, 1)
	if req.Doc.Version > rec.version {
		rec.version = req.Doc.Version
	}
	holders := make([]string, 0, len(rec.holders))
	for h := range rec.holders {
		holders = append(holders, h)
	}
	sort.Strings(holders) // deterministic fan-out order
	n.mu.Unlock()

	push := UpdateRequest{
		Doc:        req.Doc,
		LookupRate: rec.lookups.Rate(now),
		UpdateRate: rec.updates.Rate(now),
		Replicas:   len(holders),
	}
	notified := 0
	var stale []string
	for _, h := range holders {
		if h == n.name {
			if n.applyLocal(push) {
				notified++
			} else {
				stale = append(stale, h)
			}
			continue
		}
		if n.isDown(h) {
			// A dead holder cannot refresh its copy; drop it from the
			// record so it re-registers after rejoining.
			stale = append(stale, h)
			continue
		}
		base, ok := n.cfg.Addrs[h]
		if !ok {
			continue
		}
		var ar applyResponse
		if err := n.tp.PostJSON(r.Context(), base+"/apply", push, &ar); err == nil {
			notified++
			if !ar.Held {
				stale = append(stale, h)
			}
		} else {
			// The push never reached the holder: its copy is now stale.
			// Drop it from the record so lookups stop steering requesters
			// at an outdated copy; the holder re-registers on its next
			// reconcile pass (or re-fetch) once reachable again.
			stale = append(stale, h)
		}
	}
	n.mu.Lock()
	for _, h := range stale {
		delete(rec.holders, h)
	}
	n.mu.Unlock()
	writeJSON(w, http.StatusOK, UpdateResponse{Notified: notified})
}

// applyResponse is the body of a /apply reply.
type applyResponse struct {
	Held bool `json:"held"`
}

// applyLocal refreshes a held copy with the pushed version, then
// re-evaluates the placement decision using the beacon's piggybacked
// monitoring: a copy whose consistency-maintenance cost has overtaken its
// benefit is dropped rather than refreshed again next time.
func (n *CacheNode) applyLocal(req UpdateRequest) bool {
	now := n.now()
	if !n.store.ApplyUpdate(req.Doc, now) {
		return false
	}
	others := req.Replicas - 1
	if others < 0 {
		others = 0
	}
	owner, ownerErr := n.assignSnapshot().ownerOf(req.Doc.URL, n.cfg.IntraGen)
	ctx := placement.Context{
		Now: now, CacheID: n.name, DocURL: req.Doc.URL, DocSize: req.Doc.Size,
		IsBeacon:        ownerErr == nil && owner == n.name,
		LocalAccessRate: n.store.AccessRate(req.Doc.URL, now),
		MeanLocalRate:   n.store.MeanAccessRate(now),
		CloudLookupRate: req.LookupRate,
		CloudUpdateRate: req.UpdateRate,
		ReplicaCount:    others,
		Residence:       placement.ExpectedResidence(n.store.Capacity(), n.store.EvictionByteRate(now)),
	}
	if _, isAdHoc := n.policy.(placement.AdHoc); !isAdHoc && !n.policy.ShouldStore(ctx).Store {
		n.store.Remove(req.Doc.URL)
		return false
	}
	return true
}

func (n *CacheNode) handleApply(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, applyResponse{Held: n.applyLocal(req)})
}

// dropResponse is the body of a /drop reply.
type dropResponse struct {
	Dropped bool `json:"dropped"`
}

// dropLocal removes every trace of a document from this node: the stored
// copy, the owned lookup record, the sibling replica, and the degraded
// mark. Replicas must go too — otherwise a later /subranges install could
// promote a replica of the purged record and resurrect stale holder lists.
func (n *CacheNode) dropLocal(url string) bool {
	dropped := n.store.Remove(url)
	n.mu.Lock()
	delete(n.records, url)
	delete(n.replicas, url)
	delete(n.replicaFrom, url)
	delete(n.degradedURLs, url)
	n.mu.Unlock()
	return dropped
}

// handlePurge is the beacon receiving a scoped invalidation (from a shield
// in two-tier mode, from the origin directly in single-tier mode). The
// purge is broadcast as /drop to every live peer — not just the recorded
// holders — so unregistered copies and sibling replicas of the record
// cannot resurrect the document after the purge.
func (n *CacheNode) handlePurge(w http.ResponseWriter, r *http.Request) {
	var req PurgeRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.URL == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing url"))
		return
	}
	n.chargeBeaconLoadLocked(req.URL)
	n.mu.Lock()
	peers := make([]string, 0, len(n.cfg.Addrs))
	for name := range n.cfg.Addrs {
		if name != n.name && !n.down[name] {
			peers = append(peers, name)
		}
	}
	n.mu.Unlock()
	sort.Strings(peers) // deterministic broadcast order
	dropped := 0
	if n.dropLocal(req.URL) {
		dropped++
	}
	for _, p := range peers {
		base, ok := n.cfg.Addrs[p]
		if !ok {
			continue
		}
		var dr dropResponse
		if err := n.tp.PostJSON(r.Context(), base+"/drop", req, &dr); err == nil && dr.Dropped {
			dropped++
		}
	}
	writeJSON(w, http.StatusOK, PurgeResponse{Dropped: dropped})
}

// handleDrop removes this node's copy (and any record or replica traces)
// of a purged document.
func (n *CacheNode) handleDrop(w http.ResponseWriter, r *http.Request) {
	var req PurgeRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, dropResponse{Dropped: n.dropLocal(req.URL)})
}

// chargeBeaconLoadLocked wraps chargeBeaconLoad in n.mu for callers that
// do not already hold it.
func (n *CacheNode) chargeBeaconLoadLocked(url string) {
	n.mu.Lock()
	n.chargeBeaconLoad(url)
	n.mu.Unlock()
}

// handleSubranges installs a new assignment and hands off the lookup
// records this node no longer owns. Records for newly owned sub-ranges
// that are missing locally are promoted from the sibling replicas — this
// is how lookups survive a beacon crash (Section 2.3's lazy replication).
func (n *CacheNode) handleSubranges(w http.ResponseWriter, r *http.Request) {
	var req Assignments
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	n.mu.Lock()
	n.assign = req
	n.publishAssign()
	promoted := 0
	for url, wr := range n.replicas {
		owner, err := req.ownerOf(url, n.cfg.IntraGen)
		if err != nil || owner != n.name {
			continue
		}
		rec, have := n.records[url]
		if !have {
			rec = newNodeRecord()
			n.records[url] = rec
		}
		// Fold the replica into the (possibly fresh) record: failover
		// traffic during the detection window may already have recreated
		// it, but the replica can still carry holders it lacks. The
		// replica is consumed either way so a later install does not
		// count it as recovered again.
		if wr.Version > rec.version {
			rec.version = wr.Version
		}
		for _, h := range wr.Holders {
			if !n.down[h] {
				rec.holders[h] = struct{}{}
			}
		}
		delete(n.replicas, url)
		delete(n.replicaFrom, url)
		promoted++
	}
	// Find records whose owner is no longer this node.
	outbound := make(map[string][]WireRecord)
	for url, rec := range n.records {
		owner, err := req.ownerOf(url, n.cfg.IntraGen)
		if err != nil || owner == n.name {
			continue
		}
		wr := WireRecord{URL: url, Version: rec.version}
		for h := range rec.holders {
			wr.Holders = append(wr.Holders, h)
		}
		sort.Strings(wr.Holders)
		outbound[owner] = append(outbound[owner], wr)
		delete(n.records, url)
	}
	n.mu.Unlock()

	owners := make([]string, 0, len(outbound))
	for owner := range outbound {
		owners = append(owners, owner)
	}
	sort.Strings(owners) // deterministic hand-off order
	for _, owner := range owners {
		recs := outbound[owner]
		sort.Slice(recs, func(i, j int) bool { return recs[i].URL < recs[j].URL })
		base, ok := n.cfg.Addrs[owner]
		if !ok {
			continue
		}
		_ = n.tp.PostJSON(r.Context(), base+"/records/import", RecordsImport{Records: recs}, nil)
	}
	writeJSON(w, http.StatusOK, SubrangesResponse{MigratedOut: len(outbound), Promoted: promoted})
}

// handleRecordsReplica stores a sibling's record copies without taking
// ownership; they are promoted only if this node later owns their range.
func (n *CacheNode) handleRecordsReplica(w http.ResponseWriter, r *http.Request) {
	var req RecordsImport
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	n.mu.Lock()
	if req.Reset {
		// The push is a full snapshot of the sender's records: drop stale
		// replicas previously pushed by the same sender so they cannot be
		// promoted later. Replicas from other ring siblings are kept.
		for url, from := range n.replicaFrom {
			if req.From == "" || from == req.From {
				delete(n.replicas, url)
				delete(n.replicaFrom, url)
			}
		}
	}
	for _, wr := range req.Records {
		n.replicas[wr.URL] = wr
		n.replicaFrom[wr.URL] = req.From
	}
	n.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]int{"replicated": len(req.Records)})
}

// handleReplicate pushes this node's lookup records to its ring sibling
// (the lazy replication pass, typically triggered by the origin once per
// cycle).
func (n *CacheNode) handleReplicate(w http.ResponseWriter, r *http.Request) {
	n.mu.Lock()
	ringIdx := n.assign.ringOf(n.name)
	sibling := ""
	if ringIdx >= 0 {
		for _, sub := range n.assign.Rings[ringIdx] {
			if sub.Node != n.name && !n.down[sub.Node] {
				sibling = sub.Node
				break
			}
		}
	}
	recs := make([]WireRecord, 0, len(n.records))
	for url, rec := range n.records {
		wr := WireRecord{URL: url, Version: rec.version}
		for h := range rec.holders {
			wr.Holders = append(wr.Holders, h)
		}
		sort.Strings(wr.Holders)
		recs = append(recs, wr)
	}
	n.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].URL < recs[j].URL })

	if sibling == "" || len(recs) == 0 {
		writeJSON(w, http.StatusOK, map[string]int{"sent": 0})
		return
	}
	base, ok := n.cfg.Addrs[sibling]
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("no address for sibling %q", sibling))
		return
	}
	// Reset: this payload is a full snapshot of the node's records, so the
	// sibling must not keep (and later promote) replicas of records this
	// node no longer holds.
	if err := n.tp.PostJSON(r.Context(), base+"/records/replica", RecordsImport{Records: recs, Reset: true, From: n.name}, nil); err != nil {
		writeErr(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"sent": len(recs)})
}

// handleGetSubranges exposes this node's current view of the sub-range
// layout (observability).
func (n *CacheNode) handleGetSubranges(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, *n.assignSnapshot())
}

// handleHealthz answers origin liveness probes.
func (n *CacheNode) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "node": n.name})
}

func (n *CacheNode) handleRecordsImport(w http.ResponseWriter, r *http.Request) {
	var req RecordsImport
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	n.mu.Lock()
	for _, wr := range req.Records {
		rec, ok := n.records[wr.URL]
		if !ok {
			rec = newNodeRecord()
			n.records[wr.URL] = rec
		}
		if wr.Version > rec.version {
			rec.version = wr.Version
		}
		for _, h := range wr.Holders {
			rec.holders[h] = struct{}{}
		}
	}
	n.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]int{"imported": len(req.Records)})
}

// handleLoadsCollect reports this node's per-IrH cycle loads and resets
// them (called by the origin at the end of each cycle).
func (n *CacheNode) handleLoadsCollect(w http.ResponseWriter, r *http.Request) {
	n.mu.Lock()
	rep := LoadReport{Node: n.name, PerIrH: make(map[int][]int64, len(n.loads))}
	for ringIdx, dense := range n.loads {
		cp := make([]int64, len(dense))
		copy(cp, dense)
		rep.PerIrH[ringIdx] = cp
		for _, v := range dense {
			rep.Total += v
		}
		for i := range dense {
			dense[i] = 0
		}
	}
	n.mu.Unlock()
	writeJSON(w, http.StatusOK, rep)
}

func (n *CacheNode) handleStats(w http.ResponseWriter, r *http.Request) {
	local, peer, origin := n.localHits.Value(), n.peerHits.Value(), n.originMZ.Value()
	total := local + peer + origin
	hitRate := 0.0
	if total > 0 {
		hitRate = float64(local+peer) / float64(total)
	}
	n.mu.Lock()
	records, downPeers := len(n.records), len(n.down)
	n.mu.Unlock()
	ad := n.Admission()
	st := CacheStats{
		Node:          n.name,
		StoredDocs:    n.store.Len(),
		UsedBytes:     n.store.Used(),
		LocalHits:     local,
		PeerHits:      peer,
		OriginMiss:    origin,
		BeaconOps:     n.beaconOps.Value(),
		HitRate:       hitRate,
		RecordsHeld:   records,
		FailedOver:    n.failedOver.Value(),
		Degraded:      n.degraded.Value(),
		DownPeers:     downPeers,
		Requests:      ad.Requests,
		Served:        ad.Served,
		Shed:          ad.Shed,
		Failed:        ad.Failed,
		OriginFetches: ad.OriginFetches,
		Coalesced:     ad.Coalesced,
		LimitNow:      ad.Limit,
	}
	if n.shieldRouter != nil {
		st.ShieldFetches = n.shieldFetches.Value()
		st.ShieldHits = n.shieldHits.Value()
		st.ShieldFailover = n.shieldFailover.Value()
		st.ShieldDegraded = n.shieldDegraded.Value()
	}
	if n.durable != nil {
		ds := n.durable.Stats()
		st.WarmBoot = n.warmBoot
		st.WarmRecovered = n.warmRecovered
		st.WarmRevalidated = n.warmRevalidated.Load()
		st.WarmDropped = n.warmDropped.Load()
		st.StoreTruncations = ds.Truncations
		st.StoreCompactions = ds.Compactions
		st.StoreSegments = ds.Segments
		st.StoreBytes = ds.TotalBytes
		st.DurableErrors = n.store.DurableErrors()
	}
	st.Tenants = n.TenantAdmission()
	writeJSON(w, http.StatusOK, st)
}

// handleMembership receives the origin's broadcast of dead peers. Dead
// nodes are dropped from all holder lists so lookups stop steering
// requesters at them; they re-register as holders after rejoining.
func (n *CacheNode) handleMembership(w http.ResponseWriter, r *http.Request) {
	var req MembershipUpdate
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	n.mu.Lock()
	n.down = make(map[string]bool, len(req.Down))
	for _, d := range req.Down {
		n.down[d] = true
	}
	if len(n.down) > 0 {
		for _, rec := range n.records {
			for d := range n.down {
				delete(rec.holders, d)
			}
		}
		for url, wr := range n.replicas {
			kept := wr.Holders[:0]
			for _, h := range wr.Holders {
				if !n.down[h] {
					kept = append(kept, h)
				}
			}
			wr.Holders = kept
			n.replicas[url] = wr
		}
	}
	n.mu.Unlock()
	writeJSON(w, http.StatusOK, struct{}{})
}

// handleReconcile is the beacon side of the anti-entropy pass: a holder
// reports the copies it stores whose beacon duty falls on this node. The
// beacon re-registers each current copy — healing lookup records lost to
// crashes, capacity churn, or stores made while the beacon was
// unreachable — and advances its record version to the newest copy seen.
// A copy staler than the version the beacon already fanned out gets
// Keep=false: the holder drops it, bounding staleness to one reconcile
// interval.
func (n *CacheNode) handleReconcile(w http.ResponseWriter, r *http.Request) {
	var req ReconcileRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, ReconcileResponse{Results: n.reconcileEntries(req.Node, req.Entries)})
}

// reconcileEntries folds one holder's reconcile report into this beacon's
// records and produces the per-copy verdicts.
func (n *CacheNode) reconcileEntries(holder string, entries []ReconcileEntry) []ReconcileResult {
	out := make([]ReconcileResult, 0, len(entries))
	n.mu.Lock()
	for _, e := range entries {
		owner, err := n.assign.ownerOf(e.URL, n.cfg.IntraGen)
		owned := err == nil && owner == n.name
		res := ReconcileResult{URL: e.URL, Version: e.Version, Owned: owned, Keep: true}
		if owned {
			rec, ok := n.records[e.URL]
			if !ok {
				rec = newNodeRecord()
				n.records[e.URL] = rec
			}
			if e.Version < rec.version {
				delete(rec.holders, holder)
				res.Keep = false
			} else {
				rec.holders[holder] = struct{}{}
				rec.version = e.Version
			}
			res.Version = rec.version
		}
		out = append(out, res)
	}
	n.mu.Unlock()
	return out
}

// Reconcile runs one holder-side anti-entropy pass: every stored copy is
// reported to its current beacon point, grouped into one /reconcile call
// per beacon. Copies the beacon rules stale (Keep=false) are dropped from
// the store. Beacons that are down or unreachable are skipped — their
// copies are retried on the next pass. Returns how many copies were
// reported and how many were dropped as stale.
func (n *CacheNode) Reconcile(ctx context.Context) (reported, dropped int) {
	n.resubscribeDegraded(ctx)
	urls := n.store.Documents()
	sort.Strings(urls) // deterministic report order
	type group struct {
		base    string
		entries []ReconcileEntry
	}
	groups := make(map[string]*group)
	var beacons []string
	var local []ReconcileEntry
	for _, url := range urls {
		cp, ok := n.store.Peek(url)
		if !ok {
			continue
		}
		e := ReconcileEntry{URL: url, Version: cp.Doc.Version}
		beaconName, beaconBase, err := n.beaconURL(url)
		if err != nil {
			continue
		}
		if beaconName == n.name {
			local = append(local, e)
			continue
		}
		if n.isDown(beaconName) {
			continue
		}
		g := groups[beaconName]
		if g == nil {
			g = &group{base: beaconBase}
			groups[beaconName] = g
			beacons = append(beacons, beaconName)
		}
		g.entries = append(g.entries, e)
	}

	apply := func(results []ReconcileResult) {
		for _, res := range results {
			reported++
			if res.Owned && !res.Keep {
				if n.store.Remove(res.URL) {
					dropped++
				}
			}
		}
	}
	if len(local) > 0 {
		apply(n.reconcileEntries(n.name, local))
	}
	for _, name := range beacons {
		g := groups[name]
		var resp ReconcileResponse
		req := ReconcileRequest{Node: n.name, Entries: g.entries}
		if err := n.tp.PostJSON(ctx, g.base+"/reconcile", req, &resp); err != nil {
			continue
		}
		apply(resp.Results)
	}
	return reported, dropped
}

// StartReconcile begins the periodic holder-side anti-entropy pass. The
// returned stop function is idempotent and safe to call concurrently.
func (n *CacheNode) StartReconcile(interval time.Duration) (stop func()) {
	return every(n.clock, interval, false, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		n.Reconcile(ctx)
	})
}

// --- white-box inspection accessors (deterministic simulation harness) ---

// Records returns a sorted snapshot of the lookup records this node owns
// as beacon, with holder lists sorted.
func (n *CacheNode) Records() []WireRecord {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]WireRecord, 0, len(n.records))
	for url, rec := range n.records {
		wr := WireRecord{URL: url, Version: rec.version}
		for h := range rec.holders {
			wr.Holders = append(wr.Holders, h)
		}
		sort.Strings(wr.Holders)
		out = append(out, wr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// ReplicaSnapshot returns a sorted snapshot of the sibling replicas this
// node holds (not owned; promotion candidates after a crash).
func (n *CacheNode) ReplicaSnapshot() []WireRecord {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]WireRecord, 0, len(n.replicas))
	for _, wr := range n.replicas {
		cp := WireRecord{URL: wr.URL, Version: wr.Version, Holders: append([]string(nil), wr.Holders...)}
		sort.Strings(cp.Holders)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// StoredVersions returns the URL → version map of the documents in this
// node's store.
func (n *CacheNode) StoredVersions() map[string]document.Version {
	out := make(map[string]document.Version)
	for _, url := range n.store.Documents() {
		if cp, ok := n.store.Peek(url); ok {
			out[url] = cp.Doc.Version
		}
	}
	return out
}

// ShieldDegraded returns how many upstream fetches bypassed an
// unreachable shield tier and went straight to the origin (white-box
// accessor for the deterministic harness: such copies carry no shield
// subscription until the next reconcile re-attaches them).
func (n *CacheNode) ShieldDegraded() int64 {
	if n.shieldDegraded == nil {
		return 0
	}
	return n.shieldDegraded.Value()
}

// AssignmentsView returns this node's current view of the sub-range
// layout.
func (n *CacheNode) AssignmentsView() Assignments {
	return *n.assignSnapshot()
}

// DownView returns the sorted list of peers this node currently considers
// dead (per the origin's last membership broadcast).
func (n *CacheNode) DownView() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.down))
	for d := range n.down {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// StartHeartbeat begins reporting liveness to the origin every interval.
// The first beat is sent immediately so detection starts fresh. The
// returned stop function is idempotent and safe to call concurrently.
func (n *CacheNode) StartHeartbeat(interval time.Duration) (stop func()) {
	return every(n.clock, interval, true, n.sendHeartbeat)
}

// sendHeartbeat posts one beat. RecordsHeld rides along so the origin
// knows how many lookup records are at stake if this node crashes.
func (n *CacheNode) sendHeartbeat() {
	n.mu.Lock()
	n.hbSeq++
	req := HeartbeatRequest{
		Node:        n.name,
		Seq:         n.hbSeq,
		RecordsHeld: len(n.records),
		StoredDocs:  n.store.Len(),
	}
	n.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var hr HeartbeatResponse
	_ = n.tp.PostJSON(ctx, n.cfg.OriginAddr+"/heartbeat", req, &hr)
}

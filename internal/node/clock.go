package node

import (
	"sync"
	"time"
)

// Clock is the time source the live node layer runs on. Production nodes
// use the wall clock (RealClock); the deterministic simulation harness in
// internal/simnet substitutes a virtual clock whose timers fire from a
// single-goroutine event queue, so heartbeats, failure-detection sweeps,
// reconcile passes, breaker cooldowns, and retry backoffs all advance in
// simulated time with no real sleeps.
//
// The interface is deliberately minimal: periodic work is expressed as
// self-rescheduling AfterFunc chains rather than tickers, because a
// callback-style timer is the only primitive a virtual clock can run
// synchronously inside its scheduler (a ticker channel would hand control
// to a second goroutine and destroy determinism).
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Since returns the elapsed time between t and Now.
	Since(t time.Time) time.Duration
	// AfterFunc schedules f to run once after d. With the real clock f
	// runs in its own goroutine (time.AfterFunc semantics); a virtual
	// clock runs it synchronously when simulated time reaches the
	// deadline.
	AfterFunc(d time.Duration, f func()) Timer
}

// Timer is a handle to a pending AfterFunc callback.
type Timer interface {
	// Stop cancels the pending callback. It reports whether the call
	// was still pending; a callback already started is not interrupted.
	Stop() bool
}

// realClock implements Clock over the time package.
type realClock struct{}

func (realClock) Now() time.Time                  { return time.Now() }
func (realClock) Since(t time.Time) time.Duration { return time.Since(t) }
func (realClock) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool { return rt.t.Stop() }

// RealClock returns the wall-clock Clock every node uses by default.
func RealClock() Clock { return realClock{} }

// clockOrReal resolves a possibly-nil configured clock to a usable one.
func clockOrReal(c Clock) Clock {
	if c == nil {
		return realClock{}
	}
	return c
}

// every runs f every interval — once immediately first when immediate is
// set — until the returned stop function is called. It is the
// AfterFunc-chain equivalent of the ticker loops the node layer used to
// run; under a virtual clock each firing happens synchronously in the
// simulation scheduler. The stop function is idempotent and safe to call
// concurrently.
func every(clock Clock, interval time.Duration, immediate bool, f func()) (stop func()) {
	var mu sync.Mutex
	stopped := false
	var timer Timer
	var fire func()
	schedule := func() {
		mu.Lock()
		if !stopped {
			timer = clock.AfterFunc(interval, fire)
		}
		mu.Unlock()
	}
	fire = func() {
		f()
		schedule()
	}
	if immediate {
		f()
	}
	schedule()
	return func() {
		mu.Lock()
		stopped = true
		if timer != nil {
			timer.Stop()
		}
		mu.Unlock()
	}
}

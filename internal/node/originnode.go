package node

import (
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"cachecloud/internal/document"
	"cachecloud/internal/loadstats"
	"cachecloud/internal/ring"
)

// queryEscape escapes a URL for use as a query parameter.
func queryEscape(s string) string { return url.QueryEscape(s) }

// OriginNode is the live origin server. Besides serving fetches and
// publishing updates, it executes the periodic sub-range determination
// process: it collects load reports from the beacon points of each ring,
// runs the same algorithm as internal/ring, and installs the new
// assignments on every node (the paper notes the process may run at any
// beacon point and that the origin server is informed of the results; a
// single deterministic coordinator keeps the live protocol simple).
type OriginNode struct {
	cfg    ClusterConfig
	client *http.Client

	mu         sync.Mutex
	docs       map[string]document.Document
	assign     Assignments
	down       map[string]bool // nodes removed after failed health checks
	fetches    int64
	updates    int64
	bytesOut   int64
	rebalances int64
	repairs    int64
}

// NewOriginNode constructs the origin with its document catalog.
func NewOriginNode(cfg ClusterConfig, docs []document.Document) (*OriginNode, error) {
	if cfg.IntraGen <= 0 {
		return nil, errors.New("node: IntraGen must be positive")
	}
	if len(cfg.Rings) == 0 {
		return nil, errors.New("node: cluster has no rings")
	}
	o := &OriginNode{
		cfg:    cfg,
		client: &http.Client{Timeout: 10 * time.Second},
		docs:   make(map[string]document.Document, len(docs)),
		assign: equalSplit(cfg),
		down:   make(map[string]bool),
	}
	for _, d := range docs {
		if d.Version == 0 {
			d.Version = 1
		}
		o.docs[d.URL] = d
	}
	return o, nil
}

// Handler returns the origin's HTTP handler.
func (o *OriginNode) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /fetch", o.handleFetch)
	mux.HandleFunc("POST /publish", o.handlePublish)
	mux.HandleFunc("POST /rebalance", o.handleRebalance)
	mux.HandleFunc("POST /replicate", o.handleReplicate)
	mux.HandleFunc("POST /repair", o.handleRepair)
	mux.HandleFunc("GET /stats", o.handleStats)
	mux.HandleFunc("GET /metrics", o.handleMetrics)
	return mux
}

func (o *OriginNode) handleFetch(w http.ResponseWriter, r *http.Request) {
	u := r.URL.Query().Get("url")
	o.mu.Lock()
	d, ok := o.docs[u]
	if ok {
		o.fetches++
		o.bytesOut += d.Size
	}
	o.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown document %q", u))
		return
	}
	writeJSON(w, http.StatusOK, FetchResponse{Doc: d})
}

func (o *OriginNode) handlePublish(w http.ResponseWriter, r *http.Request) {
	var req PublishRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	o.mu.Lock()
	d, ok := o.docs[req.URL]
	if !ok {
		o.mu.Unlock()
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown document %q", req.URL))
		return
	}
	d.Version++
	o.docs[req.URL] = d
	beacon, err := o.assign.ownerOf(req.URL, o.cfg.IntraGen)
	o.updates++
	o.bytesOut += d.Size
	o.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	base, okAddr := o.cfg.Addrs[beacon]
	if !okAddr {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("no address for beacon %q", beacon))
		return
	}
	var ur UpdateResponse
	if err := postJSON(o.client, base+"/update", UpdateRequest{Doc: d}, &ur); err != nil {
		writeErr(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusOK, PublishResponse{Version: d.Version, Notified: ur.Notified})
}

// handleRebalance runs one sub-range determination cycle across all rings.
func (o *OriginNode) handleRebalance(w http.ResponseWriter, r *http.Request) {
	resp, err := o.Rebalance()
	if err != nil {
		writeErr(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// Rebalance collects cycle loads from every beacon point, recomputes the
// sub-ranges with the intra-ring algorithm, and installs the new layout on
// all nodes (triggering record handoffs between them).
func (o *OriginNode) Rebalance() (RebalanceResponse, error) {
	o.mu.Lock()
	current := o.assign
	o.mu.Unlock()

	// Collect per-IrH loads from every live node.
	reports := make(map[string]LoadReport)
	for name, base := range o.liveAddrs() {
		var rep LoadReport
		if err := postJSON(o.client, base+"/loads/collect", struct{}{}, &rep); err != nil {
			return RebalanceResponse{}, fmt.Errorf("collect loads from %s: %w", name, err)
		}
		reports[name] = rep
	}

	// Re-run the intra-ring algorithm per ring by reconstructing a ring
	// with the current boundaries and replaying the reported loads.
	next := Assignments{Rings: make([][]Subrange, len(current.Rings))}
	totalMoves := 0
	for ringIdx, subs := range current.Rings {
		members := make([]ring.Member, len(subs))
		for i, s := range subs {
			members[i] = ring.Member{ID: s.Node, Capability: 1}
		}
		rg, err := ring.New(ring.Config{IntraGen: o.cfg.IntraGen, FineGrained: true}, members)
		if err != nil {
			return RebalanceResponse{}, fmt.Errorf("rebuild ring %d: %w", ringIdx, err)
		}
		// Resume the algorithm from the live layout rather than the
		// constructor's equal split.
		bounds := make([]ring.SubRange, len(subs))
		for i, s := range subs {
			bounds[i] = ring.SubRange{Lo: s.Lo, Hi: s.Hi}
		}
		if err := rg.SetSubRanges(bounds); err != nil {
			return RebalanceResponse{}, fmt.Errorf("ring %d layout: %w", ringIdx, err)
		}
		for _, s := range subs {
			rep, ok := reports[s.Node]
			if !ok {
				continue
			}
			dense := rep.PerIrH[ringIdx]
			for irh, load := range dense {
				if load == 0 || irh < s.Lo || irh > s.Hi {
					continue
				}
				if err := rg.Record(irh, loadstats.Lookup, load); err != nil {
					return RebalanceResponse{}, err
				}
			}
		}
		moves := rg.Rebalance()
		totalMoves += len(moves)
		for _, a := range rg.Assignments() {
			next.Rings[ringIdx] = append(next.Rings[ringIdx], Subrange{Node: a.ID, Lo: a.Sub.Lo, Hi: a.Sub.Hi})
		}
	}

	o.mu.Lock()
	o.assign = next
	o.rebalances++
	o.mu.Unlock()

	// Install everywhere; nodes hand off records among themselves.
	for name, base := range o.liveAddrs() {
		if err := postJSON(o.client, base+"/subranges", next, nil); err != nil {
			return RebalanceResponse{}, fmt.Errorf("install assignment on %s: %w", name, err)
		}
	}
	return RebalanceResponse{Moves: totalMoves, RecordsSent: totalMoves}, nil
}

// liveAddrs returns the addresses of nodes not marked down.
func (o *OriginNode) liveAddrs() map[string]string {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[string]string, len(o.cfg.Addrs))
	for name, base := range o.cfg.Addrs {
		if !o.down[name] {
			out[name] = base
		}
	}
	return out
}

// TriggerReplication asks every live beacon point to push its lookup
// records to its ring sibling (the lazy replication pass). Returns the
// number of nodes that replicated.
func (o *OriginNode) TriggerReplication() (int, error) {
	done := 0
	for name, base := range o.liveAddrs() {
		if err := postJSON(o.client, base+"/replicate", struct{}{}, nil); err != nil {
			return done, fmt.Errorf("replicate on %s: %w", name, err)
		}
		done++
	}
	return done, nil
}

// CheckNodes probes every live node's /healthz and returns the ones that
// did not answer.
func (o *OriginNode) CheckNodes() []string {
	probe := &http.Client{Timeout: 2 * time.Second}
	var dead []string
	for name, base := range o.liveAddrs() {
		var reply map[string]string
		if err := getJSON(probe, base+"/healthz", &reply); err != nil {
			dead = append(dead, name)
		}
	}
	sort.Strings(dead)
	return dead
}

// RepairResponse answers POST /repair.
type RepairResponse struct {
	Removed []string `json:"removed"`
}

// Repair runs one failure-handling pass: probe all nodes, remove the dead
// ones from the sub-range layout (each dead beacon's ranges merge into its
// ring neighbour), and install the repaired assignment on the survivors —
// which promote their replicas for the ranges they now own.
func (o *OriginNode) Repair() (RepairResponse, error) {
	dead := o.CheckNodes()
	if len(dead) == 0 {
		return RepairResponse{}, nil
	}
	for _, name := range dead {
		if err := o.removeNode(name); err != nil {
			return RepairResponse{}, err
		}
	}
	o.mu.Lock()
	next := o.assign
	o.repairs++
	o.mu.Unlock()
	for name, base := range o.liveAddrs() {
		if err := postJSON(o.client, base+"/subranges", next, nil); err != nil {
			return RepairResponse{}, fmt.Errorf("install repaired assignment on %s: %w", name, err)
		}
	}
	return RepairResponse{Removed: dead}, nil
}

// removeNode merges the dead node's sub-ranges into a ring neighbour and
// marks it down.
func (o *OriginNode) removeNode(name string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.down[name] {
		return nil
	}
	next := Assignments{Rings: make([][]Subrange, len(o.assign.Rings))}
	for r, subs := range o.assign.Rings {
		kept := make([]Subrange, 0, len(subs))
		deadIdx := -1
		for i, sub := range subs {
			if sub.Node == name {
				deadIdx = i
				continue
			}
			kept = append(kept, sub)
		}
		if deadIdx == -1 {
			next.Rings[r] = append(next.Rings[r], subs...)
			continue
		}
		if len(kept) == 0 {
			return fmt.Errorf("node: cannot repair ring %d: %q was its only beacon point", r, name)
		}
		deadSub := subs[deadIdx]
		if deadIdx > 0 {
			kept[deadIdx-1].Hi = deadSub.Hi
		} else {
			kept[0].Lo = deadSub.Lo
		}
		next.Rings[r] = kept
	}
	o.assign = next
	o.down[name] = true
	return nil
}

func (o *OriginNode) handleReplicate(w http.ResponseWriter, r *http.Request) {
	n, err := o.TriggerReplication()
	if err != nil {
		writeErr(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"nodes": n})
}

func (o *OriginNode) handleRepair(w http.ResponseWriter, r *http.Request) {
	resp, err := o.Repair()
	if err != nil {
		writeErr(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (o *OriginNode) handleStats(w http.ResponseWriter, r *http.Request) {
	o.mu.Lock()
	defer o.mu.Unlock()
	writeJSON(w, http.StatusOK, OriginStats{
		Documents:   len(o.docs),
		Fetches:     o.fetches,
		Updates:     o.updates,
		BytesServed: o.bytesOut,
		Rebalances:  o.rebalances,
	})
}

// Assignments returns the origin's current view of the sub-range layout.
func (o *OriginNode) Assignments() Assignments {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.assign
}

package node

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cachecloud/internal/document"
	"cachecloud/internal/loadstats"
	"cachecloud/internal/obs"
	"cachecloud/internal/ring"
)

// queryEscape escapes a URL for use as a query parameter.
func queryEscape(s string) string { return url.QueryEscape(s) }

// OriginNode is the live origin server. Besides serving fetches and
// publishing updates, it executes the periodic sub-range determination
// process: it collects load reports from the beacon points of each ring,
// runs the same algorithm as internal/ring, and installs the new
// assignments on every node (the paper notes the process may run at any
// beacon point and that the origin server is informed of the results; a
// single deterministic coordinator keeps the live protocol simple).
type OriginNode struct {
	cfg   ClusterConfig
	tp    Transport
	clock Clock

	mu          sync.Mutex
	docs        map[string]document.Document
	purgeGen    map[string]int64 // per-URL global purge generation (monotonic)
	assign      Assignments
	down        map[string]bool      // nodes declared dead (probe or heartbeat)
	lastSeen    map[string]time.Time // last heartbeat arrival per node
	recordsHeld map[string]int       // records reported in each node's last beat
	tracer      *obs.Tracer
	started     time.Time

	// fetchInFlight / fetchHighWater track concurrent /fetch serving;
	// the chaos storm harness asserts the high water stays within the
	// cache nodes' summed adaptive limits.
	fetchInFlight  atomic.Int64
	fetchHighWater atomic.Int64

	reg         *obs.Registry
	heartbeats  *obs.Counter
	recordsLost *obs.Counter
	recordsRec  *obs.Counter
	rejoins     *obs.Counter
	fetches     *obs.Counter
	updates     *obs.Counter
	bytesOut    *obs.Counter
	rebalances  *obs.Counter
	repairs     *obs.Counter
	rebalanceMs *obs.Histogram
	publishMs   *obs.Histogram
}

// NewOriginNode constructs the origin with its document catalog.
func NewOriginNode(cfg ClusterConfig, docs []document.Document) (*OriginNode, error) {
	if cfg.IntraGen <= 0 {
		return nil, errors.New("node: IntraGen must be positive")
	}
	if len(cfg.Rings) == 0 {
		return nil, errors.New("node: cluster has no rings")
	}
	clock := clockOrReal(cfg.Clock)
	o := &OriginNode{
		cfg:         cfg,
		tp:          NewHTTPTransport(TransportOptions{}),
		clock:       clock,
		docs:        make(map[string]document.Document, len(docs)),
		purgeGen:    make(map[string]int64),
		assign:      equalSplit(cfg),
		down:        make(map[string]bool),
		lastSeen:    make(map[string]time.Time),
		recordsHeld: make(map[string]int),
		started:     clock.Now(),
	}
	o.initMetrics()
	for _, d := range docs {
		if d.Version == 0 {
			d.Version = 1
		}
		o.docs[d.URL] = d
	}
	return o, nil
}

// initMetrics builds the origin's metrics registry: counters for served
// traffic and recovery actions, gauge callbacks over the membership view,
// and latency histograms for the coordination paths.
func (o *OriginNode) initMetrics() {
	reg := obs.NewRegistry("cachecloud_origin", nil)
	o.reg = reg
	o.fetches = reg.Counter("fetches_total")
	o.updates = reg.Counter("updates_total")
	o.bytesOut = reg.Counter("bytes_sent_total")
	o.rebalances = reg.Counter("rebalances_total")
	o.repairs = reg.Counter("repairs_total")
	o.heartbeats = reg.Counter("heartbeats_total")
	o.recordsLost = reg.Counter("records_lost_total")
	o.recordsRec = reg.Counter("records_recovered_total")
	o.rejoins = reg.Counter("rejoins_total")
	bounds := obs.DefaultLatencyBounds()
	o.rebalanceMs = reg.Histogram("rebalance_ms", bounds)
	o.publishMs = reg.Histogram("publish_ms", bounds)
	reg.GaugeFunc("documents", func() float64 {
		o.mu.Lock()
		defer o.mu.Unlock()
		return float64(len(o.docs))
	})
	reg.GaugeFunc("nodes_down", func() float64 {
		o.mu.Lock()
		defer o.mu.Unlock()
		down := 0
		for _, d := range o.down {
			if d {
				down++
			}
		}
		return float64(down)
	})
	reg.GaugeFunc("nodes_configured", func() float64 { return float64(len(o.cfg.Addrs)) })
	reg.GaugeFunc("ring_count", func() float64 {
		o.mu.Lock()
		defer o.mu.Unlock()
		return float64(len(o.assign.Rings))
	})
	reg.GaugeFunc("intra_ring_hash_n", func() float64 { return float64(o.cfg.IntraGen) })
	reg.GaugeFunc("uptime_seconds", func() float64 { return o.clock.Since(o.started).Seconds() })
	reg.GaugeFunc("fetch_inflight", func() float64 { return float64(o.fetchInFlight.Load()) })
	reg.GaugeFunc("fetch_inflight_highwater", func() float64 { return float64(o.fetchHighWater.Load()) })
}

// FetchHighWater returns the maximum number of /fetch requests ever
// served concurrently (white-box accessor for the storm harness).
func (o *OriginNode) FetchHighWater() int64 { return o.fetchHighWater.Load() }

// Metrics exposes the origin's metrics registry.
func (o *OriginNode) Metrics() *obs.Registry { return o.reg }

// SetTracer attaches a protocol-event tracer; the origin emits
// EvNodeDead when a node is declared dead and EvNodeRejoin on
// re-admission.
func (o *OriginNode) SetTracer(t *obs.Tracer) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.tracer = t
}

// Tracer returns the attached tracer (nil when tracing is off).
func (o *OriginNode) Tracer() *obs.Tracer {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.tracer
}

// NewOriginNodeWithTransport constructs an origin whose outbound calls go
// through the given transport (tests inject the chaos transport here).
func NewOriginNodeWithTransport(cfg ClusterConfig, docs []document.Document, tp Transport) (*OriginNode, error) {
	o, err := NewOriginNode(cfg, docs)
	if err != nil {
		return nil, err
	}
	if tp != nil {
		o.tp = tp
	}
	return o, nil
}

// Handler returns the origin's HTTP handler.
func (o *OriginNode) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /fetch", o.handleFetch)
	mux.HandleFunc("GET /versions", o.handleVersions)
	mux.HandleFunc("POST /publish", o.handlePublish)
	mux.HandleFunc("POST /purge", o.handlePurge)
	mux.HandleFunc("POST /rebalance", o.handleRebalance)
	mux.HandleFunc("POST /replicate", o.handleReplicate)
	mux.HandleFunc("POST /repair", o.handleRepair)
	mux.HandleFunc("POST /heartbeat", o.handleHeartbeat)
	mux.HandleFunc("GET /stats", o.handleStats)
	mux.HandleFunc("GET /metrics", o.handleMetrics)
	return mux
}

func (o *OriginNode) handleFetch(w http.ResponseWriter, r *http.Request) {
	cur := o.fetchInFlight.Add(1)
	defer o.fetchInFlight.Add(-1)
	for {
		hw := o.fetchHighWater.Load()
		if cur <= hw || o.fetchHighWater.CompareAndSwap(hw, cur) {
			break
		}
	}
	// Honor a propagated deadline: a caller that already gave up gets a
	// timeout instead of a payload nobody reads.
	ctx, cancel := requestContext(r)
	defer cancel()
	if err := ctx.Err(); err != nil {
		writeErr(w, http.StatusGatewayTimeout, err)
		return
	}
	u := r.URL.Query().Get("url")
	o.mu.Lock()
	d, ok := o.docs[u]
	gen := o.purgeGen[u]
	o.mu.Unlock()
	if ok {
		o.fetches.Inc()
		o.bytesOut.Add(d.Size)
	}
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown document %q", u))
		return
	}
	writeJSON(w, http.StatusOK, FetchResponse{Doc: d, PurgeGen: gen})
}

// handleVersions serves the full catalog's version and purge-generation
// maps — the anti-entropy feed shields reconcile against.
func (o *OriginNode) handleVersions(w http.ResponseWriter, r *http.Request) {
	o.mu.Lock()
	vr := VersionsResponse{
		Versions: make(map[string]document.Version, len(o.docs)),
		PurgeGen: make(map[string]int64, len(o.purgeGen)),
	}
	for url, d := range o.docs {
		vr.Versions[url] = d.Version
	}
	for url, g := range o.purgeGen {
		vr.PurgeGen[url] = g
	}
	o.mu.Unlock()
	writeJSON(w, http.StatusOK, vr)
}

func (o *OriginNode) handlePublish(w http.ResponseWriter, r *http.Request) {
	t0 := o.clock.Now()
	defer func() { o.publishMs.Observe(float64(o.clock.Since(t0)) / float64(time.Millisecond)) }()
	var req PublishRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	o.mu.Lock()
	d, ok := o.docs[req.URL]
	if !ok {
		o.mu.Unlock()
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown document %q", req.URL))
		return
	}
	d.Version++
	o.docs[req.URL] = d
	beacon, err := o.assign.ownerOf(req.URL, o.cfg.IntraGen)
	o.mu.Unlock()
	o.updates.Inc()
	o.bytesOut.Add(d.Size)
	if len(o.cfg.Shields) > 0 {
		// Two-tier mode: the origin sends exactly one versioned update per
		// shield, regardless of how many clouds subscribe — the O(clouds) →
		// O(shields) collapse. Each shield fans the update to its clouds.
		notified, shields := 0, 0
		for _, name := range sortedShieldNames(o.cfg) {
			base, ok := o.cfg.ShieldAddrs[name]
			if !ok {
				continue
			}
			var sur ShieldUpdateResponse
			if e := o.tp.PostJSON(r.Context(), base+"/supdate", UpdateRequest{Doc: d}, &sur); e != nil {
				continue // crashed shield catches up at its next resync
			}
			shields++
			notified += sur.CloudsNotified
		}
		writeJSON(w, http.StatusOK, PublishResponse{Version: d.Version, Notified: notified, ShieldsNotified: shields})
		return
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	base, okAddr := o.cfg.Addrs[beacon]
	if !okAddr {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("no address for beacon %q", beacon))
		return
	}
	var ur UpdateResponse
	pushErr := o.tp.PostJSON(r.Context(), base+"/update", UpdateRequest{Doc: d}, &ur)
	if pushErr != nil {
		// Beacon unreachable: push through its ring sibling, which holds
		// the lazy replica of the record, so the update is not lost.
		if sibBase, ok := o.siblingAddr(beacon); ok {
			pushErr = o.tp.PostJSON(r.Context(), sibBase+"/update", UpdateRequest{Doc: d}, &ur)
		}
	}
	if pushErr != nil {
		writeErr(w, http.StatusBadGateway, pushErr)
		return
	}
	writeJSON(w, http.StatusOK, PublishResponse{Version: d.Version, Notified: ur.Notified})
}

// sortedShieldNames returns the configured shield names in fixed order so
// every multi-shield pass (publish fan-out, purge forwarding, installs) is
// deterministic.
func sortedShieldNames(cfg ClusterConfig) []string {
	out := append([]string(nil), cfg.Shields...)
	sort.Strings(out)
	return out
}

// handlePurge invalidates a document across the hierarchy. Scope "global"
// bumps the URL's purge generation and tells every shield to drop its copy
// and purge every subscribed cloud; scope "cloud" forwards a purge of one
// cloud's copies without touching shield state. In single-tier mode the
// purge goes straight to the document's beacon point.
func (o *OriginNode) handlePurge(w http.ResponseWriter, r *http.Request) {
	var req PurgeRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Scope != PurgeScopeGlobal && req.Scope != PurgeScopeCloud {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown purge scope %q", req.Scope))
		return
	}
	o.mu.Lock()
	if _, ok := o.docs[req.URL]; !ok {
		o.mu.Unlock()
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown document %q", req.URL))
		return
	}
	if req.Scope == PurgeScopeGlobal {
		o.purgeGen[req.URL]++
		req.Gen = o.purgeGen[req.URL]
	}
	beacon, ownErr := o.assign.ownerOf(req.URL, o.cfg.IntraGen)
	o.mu.Unlock()

	var resp PurgeResponse
	if len(o.cfg.Shields) > 0 {
		for _, name := range sortedShieldNames(o.cfg) {
			base, ok := o.cfg.ShieldAddrs[name]
			if !ok {
				continue
			}
			var pr PurgeResponse
			if e := o.tp.PostJSON(r.Context(), base+"/spurge", req, &pr); e != nil {
				continue // crashed shield applies the generation at resync
			}
			resp.ShieldsNotified++
			resp.Dropped += pr.Dropped
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	if ownErr != nil {
		writeErr(w, http.StatusInternalServerError, ownErr)
		return
	}
	base, okAddr := o.cfg.Addrs[beacon]
	if !okAddr {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("no address for beacon %q", beacon))
		return
	}
	var pr PurgeResponse
	pushErr := o.tp.PostJSON(r.Context(), base+"/purge", req, &pr)
	if pushErr != nil {
		if sibBase, ok := o.siblingAddr(beacon); ok {
			pushErr = o.tp.PostJSON(r.Context(), sibBase+"/purge", req, &pr)
		}
	}
	if pushErr != nil {
		writeErr(w, http.StatusBadGateway, pushErr)
		return
	}
	resp.Dropped = pr.Dropped
	writeJSON(w, http.StatusOK, resp)
}

// PurgeGens returns the current global purge generation of every URL that
// has ever been globally purged (white-box accessor for the simulation
// harness's scoped-purge completeness checks).
func (o *OriginNode) PurgeGens() map[string]int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[string]int64, len(o.purgeGen))
	for url, g := range o.purgeGen {
		out[url] = g
	}
	return out
}

// siblingAddr returns the address of another live member of the beacon's
// ring, preferring the current assignment and falling back to the
// configured ring layout.
func (o *OriginNode) siblingAddr(beacon string) (string, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	ringIdx := o.assign.ringOf(beacon)
	if ringIdx < 0 {
		for r, members := range o.cfg.Rings {
			for _, m := range members {
				if m == beacon {
					ringIdx = r
				}
			}
		}
	}
	if ringIdx < 0 || ringIdx >= len(o.assign.Rings) {
		return "", false
	}
	for _, sub := range o.assign.Rings[ringIdx] {
		if sub.Node == beacon || o.down[sub.Node] {
			continue
		}
		if base, ok := o.cfg.Addrs[sub.Node]; ok {
			return base, true
		}
	}
	return "", false
}

// handleRebalance runs one sub-range determination cycle across all rings.
func (o *OriginNode) handleRebalance(w http.ResponseWriter, r *http.Request) {
	resp, err := o.Rebalance()
	if err != nil {
		writeErr(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// Rebalance collects cycle loads from every beacon point, recomputes the
// sub-ranges with the intra-ring algorithm, and installs the new layout on
// all nodes (triggering record handoffs between them).
func (o *OriginNode) Rebalance() (RebalanceResponse, error) {
	t0 := o.clock.Now()
	defer func() { o.rebalanceMs.Observe(float64(o.clock.Since(t0)) / float64(time.Millisecond)) }()
	o.mu.Lock()
	current := o.assign
	o.mu.Unlock()

	// Collect per-IrH loads from every live node.
	ctx := context.Background()
	reports := make(map[string]LoadReport)
	for _, p := range o.liveAddrs() {
		var rep LoadReport
		if err := o.tp.PostJSON(ctx, p.base+"/loads/collect", struct{}{}, &rep); err != nil {
			return RebalanceResponse{}, fmt.Errorf("collect loads from %s: %w", p.name, err)
		}
		reports[p.name] = rep
	}

	// Re-run the intra-ring algorithm per ring by reconstructing a ring
	// with the current boundaries and replaying the reported loads.
	next := Assignments{Rings: make([][]Subrange, len(current.Rings))}
	totalMoves := 0
	for ringIdx, subs := range current.Rings {
		members := make([]ring.Member, len(subs))
		for i, s := range subs {
			members[i] = ring.Member{ID: s.Node, Capability: 1}
		}
		rg, err := ring.New(ring.Config{IntraGen: o.cfg.IntraGen, FineGrained: true}, members)
		if err != nil {
			return RebalanceResponse{}, fmt.Errorf("rebuild ring %d: %w", ringIdx, err)
		}
		// Resume the algorithm from the live layout rather than the
		// constructor's equal split.
		bounds := make([]ring.SubRange, len(subs))
		for i, s := range subs {
			bounds[i] = ring.SubRange{Lo: s.Lo, Hi: s.Hi}
		}
		if err := rg.SetSubRanges(bounds); err != nil {
			return RebalanceResponse{}, fmt.Errorf("ring %d layout: %w", ringIdx, err)
		}
		for _, s := range subs {
			rep, ok := reports[s.Node]
			if !ok {
				continue
			}
			dense := rep.PerIrH[ringIdx]
			for irh, load := range dense {
				if load == 0 || irh < s.Lo || irh > s.Hi {
					continue
				}
				if err := rg.Record(irh, loadstats.Lookup, load); err != nil {
					return RebalanceResponse{}, err
				}
			}
		}
		moves := rg.Rebalance()
		totalMoves += len(moves)
		for _, a := range rg.Assignments() {
			next.Rings[ringIdx] = append(next.Rings[ringIdx], Subrange{Node: a.ID, Lo: a.Sub.Lo, Hi: a.Sub.Hi})
		}
	}

	o.mu.Lock()
	o.assign = next
	o.mu.Unlock()
	o.rebalances.Inc()

	// Install everywhere; nodes hand off records among themselves.
	if _, err := o.installAssignments(ctx, next); err != nil {
		return RebalanceResponse{}, err
	}
	return RebalanceResponse{Moves: totalMoves, RecordsSent: totalMoves}, nil
}

// installAssignments posts the layout to every live node and sums the
// replica promotions they report. Unreachable nodes do not abort the
// install (they may be mid-crash); the first error is returned after all
// nodes were attempted.
func (o *OriginNode) installAssignments(ctx context.Context, next Assignments) (promoted int, err error) {
	for _, p := range o.liveAddrs() {
		var sr SubrangesResponse
		if e := o.tp.PostJSON(ctx, p.base+"/subranges", next, &sr); e != nil {
			if err == nil {
				err = fmt.Errorf("install assignment on %s: %w", p.name, e)
			}
			continue
		}
		promoted += sr.Promoted
	}
	// Shields route their fan-out through the same beacon layout, so the
	// install reaches them too (an unreachable shield re-learns the layout
	// implicitly: its stale view still names live nodes after merges).
	for _, name := range sortedShieldNames(o.cfg) {
		base, ok := o.cfg.ShieldAddrs[name]
		if !ok {
			continue
		}
		_ = o.tp.PostJSON(ctx, base+"/subranges", next, nil)
	}
	return promoted, err
}

// broadcastMembership tells every live node which peers are down.
func (o *OriginNode) broadcastMembership(ctx context.Context) {
	o.mu.Lock()
	downList := make([]string, 0, len(o.down))
	for name, d := range o.down {
		if d {
			downList = append(downList, name)
		}
	}
	o.mu.Unlock()
	sort.Strings(downList)
	for _, p := range o.liveAddrs() {
		_ = o.tp.PostJSON(ctx, p.base+"/membership", MembershipUpdate{Down: downList}, nil)
	}
}

// peerAddr is one live node the origin can reach.
type peerAddr struct{ name, base string }

// liveAddrs returns the nodes not marked down, sorted by name. The fixed
// order keeps every multi-node pass (installs, broadcasts, probes)
// deterministic, which the simulation harness relies on for
// byte-identical replays.
func (o *OriginNode) liveAddrs() []peerAddr {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]peerAddr, 0, len(o.cfg.Addrs))
	for name, base := range o.cfg.Addrs {
		if !o.down[name] {
			out = append(out, peerAddr{name: name, base: base})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// TriggerReplication asks every live beacon point to push its lookup
// records to its ring sibling (the lazy replication pass). Returns the
// number of nodes that replicated.
func (o *OriginNode) TriggerReplication() (int, error) {
	ctx := context.Background()
	done := 0
	for _, p := range o.liveAddrs() {
		if err := o.tp.PostJSON(ctx, p.base+"/replicate", struct{}{}, nil); err != nil {
			return done, fmt.Errorf("replicate on %s: %w", p.name, err)
		}
		done++
	}
	return done, nil
}

// CheckNodes probes every live node's /healthz and returns the ones that
// did not answer.
func (o *OriginNode) CheckNodes() []string {
	var dead []string
	for _, p := range o.liveAddrs() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		var reply map[string]string
		if err := o.tp.GetJSON(ctx, p.base+"/healthz", &reply); err != nil {
			dead = append(dead, p.name)
		}
		cancel()
	}
	sort.Strings(dead)
	return dead
}

// RepairResponse answers POST /repair.
type RepairResponse struct {
	Removed []string `json:"removed"`
}

// Repair runs one failure-handling pass: probe all nodes, remove the dead
// ones from the sub-range layout (each dead beacon's ranges merge into its
// ring neighbour), and install the repaired assignment on the survivors —
// which promote their replicas for the ranges they now own.
func (o *OriginNode) Repair() (RepairResponse, error) {
	return o.declareDead(context.Background(), o.CheckNodes())
}

// declareDead runs the recovery path for a set of crashed nodes: merge
// their sub-ranges into ring neighbours, account the lookup records they
// took down (RecordsLost, from their last heartbeat), install the repaired
// layout on the survivors — whose replica promotions are summed into
// RecordsRecovered — and broadcast the membership change.
func (o *OriginNode) declareDead(ctx context.Context, dead []string) (RepairResponse, error) {
	if len(dead) == 0 {
		return RepairResponse{}, nil
	}
	var lost int64
	var removed []string
	for _, name := range dead {
		o.mu.Lock()
		already := o.down[name]
		held := int64(o.recordsHeld[name])
		o.mu.Unlock()
		if already {
			continue
		}
		if err := o.removeNode(name); err != nil {
			return RepairResponse{}, err
		}
		lost += held
		removed = append(removed, name)
	}
	if len(removed) == 0 {
		return RepairResponse{}, nil
	}
	o.mu.Lock()
	next := o.assign
	o.mu.Unlock()
	o.repairs.Inc()
	o.recordsLost.Add(lost)
	if tr := o.Tracer(); tr != nil {
		now := o.uptime()
		for _, name := range removed {
			tr.Emit(obs.Event{Time: now, Kind: obs.EvNodeDead, Node: name})
		}
	}
	promoted, err := o.installAssignments(ctx, next)
	o.recordsRec.Add(int64(promoted))
	if err != nil {
		return RepairResponse{Removed: removed}, err
	}
	o.broadcastMembership(ctx)
	return RepairResponse{Removed: removed}, nil
}

// handleHeartbeat receives a cache node's liveness beat. A beat from a
// node previously declared dead triggers re-admission: it gets a sub-range
// back and the membership change is re-broadcast.
func (o *OriginNode) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if _, known := o.cfg.Addrs[req.Node]; !known {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown node %q", req.Node))
		return
	}
	o.heartbeats.Inc()
	o.mu.Lock()
	o.lastSeen[req.Node] = o.clock.Now()
	o.recordsHeld[req.Node] = req.RecordsHeld
	wasDown := o.down[req.Node]
	o.mu.Unlock()
	rejoined := false
	if wasDown {
		if err := o.Readmit(r.Context(), req.Node); err == nil {
			rejoined = true
		}
	}
	writeJSON(w, http.StatusOK, HeartbeatResponse{Rejoined: rejoined})
}

// Readmit re-admits a previously dead node: the widest sub-range in its
// configured ring is split and the upper half handed to the rejoiner, the
// new layout is installed everywhere (migrating the records it now owns
// back to it), and membership is re-broadcast.
func (o *OriginNode) Readmit(ctx context.Context, name string) error {
	o.mu.Lock()
	if !o.down[name] {
		o.mu.Unlock()
		return nil
	}
	ringIdx := -1
	for r, members := range o.cfg.Rings {
		for _, m := range members {
			if m == name {
				ringIdx = r
			}
		}
	}
	if ringIdx < 0 || ringIdx >= len(o.assign.Rings) {
		o.mu.Unlock()
		return fmt.Errorf("node: %q is not in any configured ring", name)
	}
	subs := o.assign.Rings[ringIdx]
	wi := -1
	for i, s := range subs {
		if s.Hi-s.Lo < 1 {
			continue // a single-value range cannot be split
		}
		if wi == -1 || s.Hi-s.Lo > subs[wi].Hi-subs[wi].Lo {
			wi = i
		}
	}
	if wi == -1 {
		o.mu.Unlock()
		return fmt.Errorf("node: ring %d has no splittable sub-range for %q", ringIdx, name)
	}
	donor := subs[wi]
	mid := (donor.Lo + donor.Hi) / 2
	newSubs := make([]Subrange, 0, len(subs)+1)
	newSubs = append(newSubs, subs[:wi]...)
	newSubs = append(newSubs, Subrange{Node: donor.Node, Lo: donor.Lo, Hi: mid})
	newSubs = append(newSubs, Subrange{Node: name, Lo: mid + 1, Hi: donor.Hi})
	newSubs = append(newSubs, subs[wi+1:]...)
	next := Assignments{Rings: make([][]Subrange, len(o.assign.Rings))}
	copy(next.Rings, o.assign.Rings)
	next.Rings[ringIdx] = newSubs
	o.assign = next
	delete(o.down, name)
	o.mu.Unlock()
	o.rejoins.Inc()
	if tr := o.Tracer(); tr != nil {
		tr.Emit(obs.Event{Time: o.uptime(), Kind: obs.EvNodeRejoin, Node: name})
	}
	if _, err := o.installAssignments(ctx, next); err != nil {
		return err
	}
	o.broadcastMembership(ctx)
	return nil
}

// SweepFailures declares dead every node whose last heartbeat is older
// than maxAge and runs the recovery path on them. Nodes that have never
// heartbeated are left alone (heartbeats may be disabled or still
// starting), as are nodes already down.
func (o *OriginNode) SweepFailures(maxAge time.Duration) (RepairResponse, error) {
	now := o.clock.Now()
	o.mu.Lock()
	var dead []string
	for name := range o.cfg.Addrs {
		if o.down[name] {
			continue
		}
		if seen, ok := o.lastSeen[name]; ok && now.Sub(seen) > maxAge {
			dead = append(dead, name)
		}
	}
	o.mu.Unlock()
	sort.Strings(dead)
	return o.declareDead(context.Background(), dead)
}

// StartFailureDetector sweeps heartbeat freshness every interval; a node
// whose last beat is older than k intervals (K missed beats) is declared
// dead and the recovery path runs. The returned stop function is
// idempotent and safe to call concurrently.
func (o *OriginNode) StartFailureDetector(interval time.Duration, k int) (stop func()) {
	if k < 1 {
		k = 1
	}
	maxAge := time.Duration(k) * interval
	return every(o.clock, interval, false, func() { _, _ = o.SweepFailures(maxAge) })
}

// removeNode merges the dead node's sub-ranges into a ring neighbour and
// marks it down.
func (o *OriginNode) removeNode(name string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.down[name] {
		return nil
	}
	next := Assignments{Rings: make([][]Subrange, len(o.assign.Rings))}
	for r, subs := range o.assign.Rings {
		kept := make([]Subrange, 0, len(subs))
		deadIdx := -1
		for i, sub := range subs {
			if sub.Node == name {
				deadIdx = i
				continue
			}
			kept = append(kept, sub)
		}
		if deadIdx == -1 {
			next.Rings[r] = append(next.Rings[r], subs...)
			continue
		}
		if len(kept) == 0 {
			return fmt.Errorf("node: cannot repair ring %d: %q was its only beacon point", r, name)
		}
		deadSub := subs[deadIdx]
		if deadIdx > 0 {
			kept[deadIdx-1].Hi = deadSub.Hi
		} else {
			kept[0].Lo = deadSub.Lo
		}
		next.Rings[r] = kept
	}
	o.assign = next
	o.down[name] = true
	return nil
}

func (o *OriginNode) handleReplicate(w http.ResponseWriter, r *http.Request) {
	n, err := o.TriggerReplication()
	if err != nil {
		writeErr(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"nodes": n})
}

func (o *OriginNode) handleRepair(w http.ResponseWriter, r *http.Request) {
	resp, err := o.Repair()
	if err != nil {
		writeErr(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (o *OriginNode) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, o.Stats())
}

// Stats returns a snapshot of the origin's counters (test and tooling
// convenience mirroring GET /stats).
func (o *OriginNode) Stats() OriginStats {
	o.mu.Lock()
	docs := len(o.docs)
	nodesDown := 0
	for _, d := range o.down {
		if d {
			nodesDown++
		}
	}
	o.mu.Unlock()
	return OriginStats{
		Documents:        docs,
		Fetches:          o.fetches.Value(),
		Updates:          o.updates.Value(),
		BytesServed:      o.bytesOut.Value(),
		Rebalances:       o.rebalances.Value(),
		Repairs:          o.repairs.Value(),
		Heartbeats:       o.heartbeats.Value(),
		NodesDown:        nodesDown,
		FetchInFlight:    o.fetchInFlight.Load(),
		FetchHighWater:   o.fetchHighWater.Load(),
		RecordsLost:      o.recordsLost.Value(),
		RecordsRecovered: o.recordsRec.Value(),
		Rejoins:          o.rejoins.Value(),
	}
}

// uptime is the origin's logical clock for trace events: whole seconds
// since construction.
func (o *OriginNode) uptime() int64 {
	return int64(o.clock.Since(o.started).Seconds())
}

// Assignments returns the origin's current view of the sub-range layout.
func (o *OriginNode) Assignments() Assignments {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.assign
}

// DocVersions returns the current version of every catalog document —
// the ground truth the simulation harness checks staleness against.
func (o *OriginNode) DocVersions() map[string]document.Version {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[string]document.Version, len(o.docs))
	for url, d := range o.docs {
		out[url] = d.Version
	}
	return out
}

// DownNodes returns the sorted names of nodes currently declared dead.
func (o *OriginNode) DownNodes() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]string, 0, len(o.down))
	for name, d := range o.down {
		if d {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

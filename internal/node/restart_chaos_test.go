package node

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestChaosRestartUnderLoadWarmBoot is the durability end-to-end: a node
// whose cache is warm is killed in the middle of a hot-document storm,
// documents are refreshed while it is down, and it is then restarted over
// its durable store. The warm-restart contract must hold under real
// sockets and -race:
//
//   - the replacement boots warm with exactly the entries that were
//     resident at the kill (evicted entries must not resurrect);
//   - revalidation against the beacons drops the copies refreshed while
//     the node was down and issues ZERO origin fetches;
//   - a full catalog sweep through the restarted node stays within the
//     origin-fetch bound: fetches ≤ catalog − revalidated-fresh (only
//     genuinely-stale and never-cached documents may reach the origin) —
//     a warm restart must not degenerate into a cold-miss storm;
//   - conservation (Requests == Served + Shed + Failed) and quiescence
//     hold on every node afterwards, the restarted one included.
func TestChaosRestartUnderLoadWarmBoot(t *testing.T) {
	const (
		nodes    = 4
		ringSize = 2
		catalog  = 24
		clients  = 48
	)
	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
	}
	docs := testCatalog(catalog)
	lc, _ := startStormCluster(t, names, ringSize, docs,
		ClusterConfig{IntraGen: 200, MaxInflight: 64, MissQueue: 64, StoreDir: t.TempDir()},
		2*time.Millisecond)
	victim := "s1"

	client := &http.Client{Timeout: 30 * time.Second}
	get := func(entry, url string) error {
		resp, err := client.Get(lc.Cfg.Addrs[entry] + "/doc?url=" + queryEscape(url))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil
	}

	// Warm the victim: every catalog document requested through it.
	for _, d := range docs {
		if err := get(victim, d.URL); err != nil {
			t.Fatalf("warmup GET %s: %v", d.URL, err)
		}
	}
	heldAtCrash := lc.Caches[victim].StoredVersions()
	if len(heldAtCrash) == 0 {
		t.Fatal("victim cached nothing during warmup; test is vacuous")
	}

	// Storm the cluster and kill the victim mid-storm. Requests that race
	// the kill may fail at the socket — that is the point.
	var wg sync.WaitGroup
	var killOnce sync.Once
	for g := 0; g < clients; g++ {
		wg.Add(1)
		entry := names[g%nodes]
		url := docs[g%catalog].URL
		go func(i int) {
			defer wg.Done()
			if i == clients/2 {
				killOnce.Do(func() { lc.StopNode(victim) })
			}
			_ = get(entry, url)
		}(g)
	}
	wg.Wait()
	killOnce.Do(func() { lc.StopNode(victim) })

	// Refresh documents while the victim is down so some of its recovered
	// copies are genuinely stale. Only documents whose beacon is alive can
	// be published; skip the ones the dead victim owns.
	published := 0
	for _, d := range docs {
		if published == 3 {
			break
		}
		owner, err := lc.Origin.Assignments().Owner(d.URL, lc.Cfg.IntraGen)
		if err != nil || owner == victim {
			continue
		}
		if _, held := heldAtCrash[d.URL]; !held {
			continue
		}
		body, _ := json.Marshal(PublishRequest{URL: d.URL})
		resp, err := client.Post(lc.Cfg.OriginAddr+"/publish", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("publish %s: %v", d.URL, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("publish %s: status %d", d.URL, resp.StatusCode)
		}
		published++
	}
	if published == 0 {
		t.Fatal("no document could be refreshed while the victim was down")
	}

	// Restart over the same store directory: must boot warm with exactly
	// the resident set at the kill.
	cn, err := lc.RestartNode(victim, nil)
	if err != nil {
		t.Fatalf("restart %s: %v", victim, err)
	}
	warm, recovered := cn.WarmBootInfo()
	if !warm || recovered != len(heldAtCrash) {
		t.Fatalf("warm boot recovered %d entries (warm=%v), victim held %d at kill",
			recovered, warm, len(heldAtCrash))
	}

	// Revalidate: stale copies dropped through the beacons, zero origin
	// fetches.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	kept, dropped := cn.WarmRevalidate(ctx)
	if kept+dropped != recovered {
		t.Fatalf("revalidation books: kept %d + dropped %d != recovered %d", kept, dropped, recovered)
	}
	if dropped < published {
		t.Fatalf("revalidation dropped %d copies, but %d were refreshed while down", dropped, published)
	}
	if kept == 0 {
		t.Fatal("revalidation kept nothing; warm restart bought no state")
	}
	if f := cn.Admission().OriginFetches; f != 0 {
		t.Fatalf("revalidation issued %d origin fetches, want 0", f)
	}

	// Full catalog sweep through the restarted node: only genuinely-stale
	// and never-cached documents may reach the origin.
	for _, d := range docs {
		if err := get(victim, d.URL); err != nil {
			t.Fatalf("post-restart GET %s: %v", d.URL, err)
		}
	}
	fetches := cn.Admission().OriginFetches
	bound := int64(catalog - kept)
	if fetches > bound {
		t.Fatalf("restarted node fetched %d from origin, bound %d (catalog %d − revalidated %d)",
			fetches, bound, catalog, kept)
	}

	// Conservation and quiescence on every node, restarted one included.
	for name, n := range lc.Caches {
		st := n.Admission()
		if st.Served+st.Shed+st.Failed != st.Requests {
			t.Fatalf("%s conservation violated: served %d + shed %d + failed %d != requests %d",
				name, st.Served, st.Shed, st.Failed, st.Requests)
		}
		if st.GateInFlight != 0 || st.GateQueued != 0 || st.LimiterInFlight != 0 ||
			st.LimiterQueued != 0 || st.FlightsActive != 0 {
			t.Fatalf("%s not quiescent after the sweep: %+v", name, st)
		}
	}
}

// TestRestartColdWithoutStore pins the memory-only baseline: restarting a
// node with no durable tier boots cold (no recovery, revalidation no-op),
// so the warm path's gains are attributable to the store.
func TestRestartColdWithoutStore(t *testing.T) {
	docs := testCatalog(8)
	lc, _ := startStormCluster(t, []string{"a0", "a1"}, 2, docs,
		ClusterConfig{IntraGen: 50}, 0)

	client := &http.Client{Timeout: 30 * time.Second}
	for _, d := range docs {
		resp, err := client.Get(lc.Cfg.Addrs["a0"] + "/doc?url=" + queryEscape(d.URL))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if !lc.StopNode("a0") {
		t.Fatal("StopNode refused")
	}
	cn, err := lc.RestartNode("a0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm, recovered := cn.WarmBootInfo(); warm || recovered != 0 {
		t.Fatalf("memory-only restart booted warm (recovered=%d)", recovered)
	}
	if kept, dropped := cn.WarmRevalidate(context.Background()); kept != 0 || dropped != 0 {
		t.Fatalf("cold revalidation did work: kept=%d dropped=%d", kept, dropped)
	}
	if len(cn.StoredVersions()) != 0 {
		t.Fatal("cold restart resurrected cache entries from nowhere")
	}
}

package node

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Client is a Go client for a live cache cloud: it issues document
// requests to a preferred ("nearest") cache node and fails over to the
// other nodes when that node is unreachable, mirroring how an edge
// network's request router pins users to their closest cache.
type Client struct {
	cfg     ClusterConfig
	tp      Transport
	timeout time.Duration // overall per-request budget across failovers

	mu        sync.Mutex
	preferred string
	order     []string // failover order, preferred first
	requests  int64
	failovers int64
}

// ErrNoNodesReachable is returned when every cache node failed.
var ErrNoNodesReachable = errors.New("node: no cache nodes reachable")

// NewClient builds a client for a cluster. preferred is the node that
// receives this client's traffic first; it must exist in the cluster
// configuration.
func NewClient(cfg ClusterConfig, preferred string) (*Client, error) {
	return NewClientWithTransport(cfg, preferred, nil)
}

// NewClientWithTransport builds a client whose calls go through the given
// transport (tests inject the chaos transport here). A nil transport
// selects the production default.
func NewClientWithTransport(cfg ClusterConfig, preferred string, tp Transport) (*Client, error) {
	if _, ok := cfg.Addrs[preferred]; !ok {
		return nil, fmt.Errorf("node: preferred node %q not in cluster", preferred)
	}
	order := make([]string, 0, len(cfg.Addrs))
	for name := range cfg.Addrs {
		if name != preferred {
			order = append(order, name)
		}
	}
	sort.Strings(order)
	order = append([]string{preferred}, order...)
	if tp == nil {
		tp = NewHTTPTransport(TransportOptions{RequestTimeout: 5 * time.Second})
	}
	return &Client{
		cfg:       cfg,
		tp:        tp,
		timeout:   15 * time.Second,
		preferred: preferred,
		order:     order,
	}, nil
}

// Get requests a document through the cluster under the client's default
// overall deadline. See GetContext.
func (c *Client) Get(url string) (DocResponse, string, error) {
	return c.GetContext(context.Background(), url)
}

// GetTenant is GetContext on behalf of a tenant: the transport stamps
// the tenant header on every hop, so the request is admitted against
// the tenant's fair share and served from its scoped key space.
func (c *Client) GetTenant(ctx context.Context, tenantID, url string) (DocResponse, string, error) {
	return c.GetContext(WithTenant(ctx, tenantID), url)
}

// GetContext requests a document through the cluster: the preferred node
// first, then the remaining nodes in stable order. The context bounds the
// whole request including failovers; when it carries no deadline the
// client's default budget applies. It returns the node that served the
// request alongside the response.
func (c *Client) GetContext(ctx context.Context, url string) (DocResponse, string, error) {
	if _, has := ctx.Deadline(); !has && c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	c.mu.Lock()
	order := make([]string, len(c.order))
	copy(order, c.order)
	c.requests++
	c.mu.Unlock()

	var lastErr error
	for i, name := range order {
		base := c.cfg.Addrs[name]
		var dr DocResponse
		err := c.tp.GetJSON(ctx, base+"/doc?url="+queryEscape(url), &dr)
		if err == nil {
			if i > 0 {
				c.mu.Lock()
				c.failovers++
				c.mu.Unlock()
			}
			return dr, name, nil
		}
		if errors.Is(err, errNotFound) {
			// The node answered: the document does not exist. No failover.
			return DocResponse{}, name, err
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	if lastErr == nil {
		lastErr = ErrNoNodesReachable
	}
	return DocResponse{}, "", fmt.Errorf("%w: %v", ErrNoNodesReachable, lastErr)
}

// Stats returns the client's request and failover counts.
func (c *Client) Stats() (requests, failovers int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.requests, c.failovers
}

// Preferred returns the client's preferred node.
func (c *Client) Preferred() string { return c.preferred }

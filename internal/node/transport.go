package node

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"
)

// Transport is the pluggable wire layer every node-to-node call goes
// through. The production implementation is HTTPTransport (per-request
// deadlines, bounded retries with backoff, per-peer circuit breaking);
// tests inject the deterministic fault-injecting transport from
// internal/node/chaos. A 404 reply surfaces as ErrNotFound so callers can
// distinguish absence from failure.
type Transport interface {
	GetJSON(ctx context.Context, url string, out any) error
	PostJSON(ctx context.Context, url string, in, out any) error
}

// ErrNotFound is returned by a Transport when the remote answered 404:
// the peer is healthy but the resource does not exist. It is never
// retried and never trips the circuit breaker.
var ErrNotFound = errNotFound

// ErrPeerDown is returned by HTTPTransport when a peer's circuit breaker
// is open: recent calls to it failed consecutively and the cooldown has
// not elapsed, so the call is refused without touching the network.
var ErrPeerDown = errors.New("node: peer circuit open")

// ErrShed is returned by a Transport when the remote answered 429: the
// peer is alive but deliberately shedding load. A shed is never retried
// against the same peer (the caller falls through the beacon → sibling
// → origin degradation chain instead), never trips the circuit breaker
// (the peer responded), and its Retry-After hint is honored: further
// calls to that peer fail fast with ErrShed until the hint elapses.
var ErrShed = errors.New("node: peer shedding load")

// peerShedError is a 429 reply (or a fail-fast repeat of one within its
// Retry-After window).
type peerShedError struct {
	url        string
	retryAfter time.Duration
}

func (e *peerShedError) Error() string {
	return fmt.Sprintf("node: %s: peer shedding load (retry after %v)", e.url, e.retryAfter)
}

// Is makes errors.Is(err, ErrShed) true for every *peerShedError.
func (e *peerShedError) Is(target error) bool { return target == ErrShed }

// ShedRetryAfter extracts the Retry-After hint from a transport shed
// error (ok is false for any other error).
func ShedRetryAfter(err error) (time.Duration, bool) {
	var se *peerShedError
	if errors.As(err, &se) {
		return se.retryAfter, true
	}
	return 0, false
}

// maxShedRetryAfter caps how long a peer's Retry-After hint can keep the
// fail-fast window open, so a bogus hint cannot poison a peer for long.
const maxShedRetryAfter = 2 * time.Second

// TransportOptions tunes HTTPTransport. The zero value selects the
// defaults noted on each field.
type TransportOptions struct {
	// RequestTimeout bounds each attempt (default 5s). Callers can impose
	// a tighter overall budget through the context.
	RequestTimeout time.Duration
	// MaxRetries is the number of re-attempts after the first failure
	// (default 2; 0 keeps the default, use NoRetries to disable).
	MaxRetries int
	// NoRetries disables retries entirely (single attempt per call).
	NoRetries bool
	// BackoffBase is the first retry delay (default 25ms); each further
	// retry doubles it up to BackoffMax (default 500ms), with ±50% jitter.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold is the number of consecutive failures to one peer
	// that opens its circuit (default 4; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit refuses calls before
	// letting a probe through (default 1s).
	BreakerCooldown time.Duration
	// JitterSeed seeds the backoff jitter source; 0 derives a seed from
	// the wall clock. Fix it for reproducible retry schedules in tests.
	JitterSeed int64
	// OnBreakerOpen, when non-nil, is called each time a peer's circuit
	// transitions from closed to open (observability hook). It is invoked
	// outside the transport's lock and must be safe for concurrent use.
	OnBreakerOpen func(host string)
	// Client overrides the underlying *http.Client. It should have no
	// global Timeout: deadlines are per-request via context.
	Client *http.Client
	// Clock is the time source for breaker cooldowns and retry backoffs
	// (nil selects the wall clock). Tests inject a manual clock to step
	// through cooldown windows without sleeping.
	Clock Clock
}

// breaker is the per-peer circuit state.
type breaker struct {
	fails    int       // consecutive failures
	openedAt time.Time // when the circuit opened (zero = closed)
	probing  bool      // a half-open probe is in flight
	// shedUntil is the end of the peer's Retry-After window: calls
	// before it fail fast with ErrShed instead of hitting a peer that
	// just said it is overloaded.
	shedUntil time.Time
}

// HTTPTransport is the production Transport: JSON over HTTP with
// per-request context deadlines, bounded retries with exponential backoff
// and jitter, and a per-peer circuit breaker keyed by URL host.
type HTTPTransport struct {
	opts   TransportOptions
	client *http.Client
	clock  Clock

	mu       sync.Mutex
	rng      *rand.Rand
	breakers map[string]*breaker
}

// NewHTTPTransport builds the production transport.
func NewHTTPTransport(opts TransportOptions) *HTTPTransport {
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 5 * time.Second
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 2
	}
	if opts.NoRetries {
		opts.MaxRetries = 0
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 25 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 500 * time.Millisecond
	}
	if opts.BreakerThreshold == 0 {
		opts.BreakerThreshold = 4
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = time.Second
	}
	seed := opts.JitterSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	return &HTTPTransport{
		opts:     opts,
		client:   client,
		clock:    clockOrReal(opts.Clock),
		rng:      rand.New(rand.NewSource(seed)),
		breakers: make(map[string]*breaker),
	}
}

// GetJSON implements Transport.
func (t *HTTPTransport) GetJSON(ctx context.Context, url string, out any) error {
	return t.do(ctx, http.MethodGet, url, nil, out)
}

// PostJSON implements Transport.
func (t *HTTPTransport) PostJSON(ctx context.Context, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("node: marshal %s: %w", url, err)
	}
	return t.do(ctx, http.MethodPost, url, body, out)
}

// do runs the retry loop around one logical call.
func (t *HTTPTransport) do(ctx context.Context, method, rawurl string, body []byte, out any) error {
	host := hostOf(rawurl)
	var lastErr error
	for attempt := 0; ; attempt++ {
		switch err := t.admit(host); {
		case errors.Is(err, ErrShed):
			// The peer shed a recent call and its Retry-After window is
			// still open: fail fast without touching the network so the
			// caller can fall through the degradation chain.
			return err
		case err != nil:
			// An open circuit fails fast; it still counts as this
			// attempt's outcome so callers see a stable error.
			lastErr = fmt.Errorf("%w: %s", ErrPeerDown, host)
		default:
			err := doJSON(ctx, t.client, method, rawurl, body, out, t.opts.RequestTimeout)
			if errors.Is(err, ErrShed) {
				// A shed is a deliberate, non-retryable refusal from a
				// live peer: remember its Retry-After window and count
				// the reply as the peer being up (never a breaker
				// failure — shedding must not amplify into retries or a
				// tripped circuit).
				if ra, ok := ShedRetryAfter(err); ok {
					t.noteShed(host, ra)
				}
				t.observe(host, true)
				return err
			}
			if err == nil || !retryable(err) {
				t.observe(host, err == nil || errors.Is(err, errNotFound))
				return err
			}
			t.observe(host, false)
			lastErr = err
		}
		if attempt >= t.opts.MaxRetries || ctx.Err() != nil {
			return lastErr
		}
		if err := t.sleep(ctx, attempt); err != nil {
			return lastErr
		}
	}
}

// noteShed records a peer's Retry-After window (capped) so subsequent
// calls fail fast until it elapses.
func (t *HTTPTransport) noteShed(host string, retryAfter time.Duration) {
	if retryAfter <= 0 {
		return
	}
	if retryAfter > maxShedRetryAfter {
		retryAfter = maxShedRetryAfter
	}
	t.mu.Lock()
	b := t.breakers[host]
	if b == nil {
		b = &breaker{}
		t.breakers[host] = b
	}
	until := t.clock.Now().Add(retryAfter)
	if until.After(b.shedUntil) {
		b.shedUntil = until
	}
	t.mu.Unlock()
}

// PeerShedding reports whether the peer's Retry-After window is open.
func (t *HTTPTransport) PeerShedding(baseURL string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.breakers[hostOf(baseURL)]
	return b != nil && b.shedUntil.After(t.clock.Now())
}

// admit consults the peer's shed window and circuit breaker; nil means
// the call may proceed.
func (t *HTTPTransport) admit(host string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.breakers[host]
	if b == nil {
		return nil
	}
	if remain := b.shedUntil.Sub(t.clock.Now()); remain > 0 {
		return &peerShedError{url: host, retryAfter: remain}
	}
	if t.opts.BreakerThreshold < 0 || b.openedAt.IsZero() {
		return nil
	}
	if t.clock.Since(b.openedAt) >= t.opts.BreakerCooldown && !b.probing {
		b.probing = true // half-open: let exactly one probe through
		return nil
	}
	return ErrPeerDown
}

// observe records a call outcome against the peer's breaker.
func (t *HTTPTransport) observe(host string, ok bool) {
	if t.opts.BreakerThreshold < 0 {
		return
	}
	t.mu.Lock()
	b := t.breakers[host]
	if b == nil {
		b = &breaker{}
		t.breakers[host] = b
	}
	opened := false
	if ok {
		b.fails = 0
		b.openedAt = time.Time{}
		b.probing = false
	} else {
		b.fails++
		b.probing = false
		if b.fails >= t.opts.BreakerThreshold {
			opened = b.openedAt.IsZero()
			b.openedAt = t.clock.Now()
		}
	}
	t.mu.Unlock()
	if opened && t.opts.OnBreakerOpen != nil {
		t.opts.OnBreakerOpen(host)
	}
}

// PeerDown reports whether the peer's circuit is currently open.
func (t *HTTPTransport) PeerDown(baseURL string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.breakers[hostOf(baseURL)]
	return b != nil && !b.openedAt.IsZero() && t.clock.Since(b.openedAt) < t.opts.BreakerCooldown
}

// sleep waits for the attempt's backoff (exponential with ±50% jitter),
// aborting early when the context is cancelled.
func (t *HTTPTransport) sleep(ctx context.Context, attempt int) error {
	d := t.opts.BackoffBase << uint(attempt)
	if d > t.opts.BackoffMax {
		d = t.opts.BackoffMax
	}
	t.mu.Lock()
	jitter := 0.5 + t.rng.Float64() // [0.5, 1.5)
	t.mu.Unlock()
	d = time.Duration(float64(d) * jitter)
	done := make(chan struct{})
	timer := t.clock.AfterFunc(d, func() { close(done) })
	defer timer.Stop()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryable reports whether an error is worth another attempt: transport
// failures and 5xx replies are; 404 (absence) and other 4xx (the peer
// answered and rejected the request) are not.
func retryable(err error) bool {
	if err == nil || errors.Is(err, errNotFound) || errors.Is(err, ErrShed) {
		return false
	}
	var se *statusError
	if errors.As(err, &se) {
		return se.status >= 500
	}
	return true // connection refused, timeout, reset, ...
}

// statusError is a non-2xx reply.
type statusError struct {
	method, url string
	status      int
	body        string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("node: %s %s: status %d: %s", e.method, e.url, e.status, e.body)
}

// hostOf extracts the host:port a URL targets (breaker key).
func hostOf(rawurl string) string {
	u, err := url.Parse(rawurl)
	if err != nil || u.Host == "" {
		return rawurl
	}
	return u.Host
}

// doJSON performs one HTTP attempt with a per-request deadline, decoding
// the JSON reply into out (out may be nil). The response body is always
// drained and closed so the underlying connection returns to the pool.
func doJSON(ctx context.Context, client *http.Client, method, rawurl string, body []byte, out any, timeout time.Duration) error {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, rawurl, rd)
	if err != nil {
		return fmt.Errorf("node: %s %s: %w", method, rawurl, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate the caller's remaining budget so downstream queue waiters
	// whose caller gave up stop consuming slots.
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl) / time.Millisecond; ms > 0 {
			req.Header.Set(DeadlineHeader, strconv.FormatInt(int64(ms), 10))
		}
	}
	if tid := TenantFromContext(ctx); tid != "" {
		req.Header.Set(TenantHeader, tid)
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("node: %s %s: %w", method, rawurl, err)
	}
	// Every early return below rides on this drain+close, so error
	// replies (shed, 4xx, 5xx) never leak the keep-alive connection.
	defer drainClose(resp.Body)
	if resp.StatusCode == http.StatusNotFound {
		return errNotFound
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		return &peerShedError{url: rawurl, retryAfter: parseRetryAfter(resp.Header)}
	}
	if resp.StatusCode/100 != 2 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return &statusError{method: method, url: rawurl, status: resp.StatusCode, body: string(b)}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// parseRetryAfter reads a 429 reply's retry hint: the millisecond
// header when present, else the standard whole-second Retry-After, else
// a 100ms default (a hint of some kind keeps the fail-fast window
// meaningful).
func parseRetryAfter(h http.Header) time.Duration {
	if v := h.Get(RetryAfterMsHeader); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			return time.Duration(ms) * time.Millisecond
		}
	}
	if v := h.Get("Retry-After"); v != "" {
		if s, err := strconv.ParseInt(v, 10, 64); err == nil && s > 0 {
			return time.Duration(s) * time.Second
		}
	}
	return 100 * time.Millisecond
}

// drainClose consumes any unread bytes before closing, so keep-alive
// connections are reusable. The drain is capped: a huge unread body is
// cheaper to close than to read.
func drainClose(rc io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(rc, 1<<20))
	_ = rc.Close()
}

package node

import (
	"errors"
	"net/http"
	"testing"
	"time"

	"cachecloud/internal/trace"
)

func TestClientFailover(t *testing.T) {
	lc := startCluster(t, 3, 3, ClusterConfig{})
	cl, err := NewClient(lc.Cfg, "live-01")
	if err != nil {
		t.Fatal(err)
	}
	if cl.Preferred() != "live-01" {
		t.Fatal("wrong preferred node")
	}

	dr, served, err := cl.Get("http://live/doc/5")
	if err != nil {
		t.Fatal(err)
	}
	if served != "live-01" || dr.Doc.URL != "http://live/doc/5" {
		t.Fatalf("served by %s: %+v", served, dr)
	}

	// Kill the preferred node: the client must fail over transparently.
	lc.StopNode("live-01")
	dr, served, err = cl.Get("http://live/doc/6")
	if err != nil {
		t.Fatal(err)
	}
	if served == "live-01" {
		t.Fatal("served by dead node")
	}
	if dr.Doc.URL != "http://live/doc/6" {
		t.Fatalf("wrong doc after failover: %+v", dr)
	}
	reqs, fails := cl.Stats()
	if reqs != 2 || fails != 1 {
		t.Fatalf("stats = %d req, %d failovers", reqs, fails)
	}
}

func TestClientAllNodesDown(t *testing.T) {
	lc := startCluster(t, 2, 2, ClusterConfig{})
	cl, err := NewClient(lc.Cfg, "live-00")
	if err != nil {
		t.Fatal(err)
	}
	lc.StopNode("live-00")
	lc.StopNode("live-01")
	if _, _, err := cl.Get("http://live/doc/1"); !errors.Is(err, ErrNoNodesReachable) {
		t.Fatalf("err = %v, want ErrNoNodesReachable", err)
	}
}

func TestClientUnknownPreferred(t *testing.T) {
	lc := startCluster(t, 2, 2, ClusterConfig{})
	if _, err := NewClient(lc.Cfg, "ghost"); err == nil {
		t.Fatal("unknown preferred node accepted")
	}
}

func TestReplayTraceThroughLiveCluster(t *testing.T) {
	names := []string{"live-00", "live-01", "live-02", "live-03"}
	// The catalog must cover the trace's documents: build the trace first,
	// then start the cluster with its docs.
	tr := trace.GenerateZipf(trace.ZipfConfig{
		Seed: 6, NumDocs: 150, Alpha: 0.9, CacheIDs: names,
		Duration: 12, ReqPerCache: 6, UpdatesPerUnit: 3,
	})
	lc, err := StartLocalCluster(names, 2, tr.Docs, ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)

	res, err := Replay(lc.Cfg, tr, ReplayOptions{RebalanceEvery: 4, ReplicateOnRebalance: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("replay had %d errors", res.Errors)
	}
	if res.Requests != int64(tr.NumRequests()) || res.Updates != int64(tr.NumUpdates()) {
		t.Fatalf("replay counts %+v vs trace %d/%d", res, tr.NumRequests(), tr.NumUpdates())
	}
	if res.LocalHits+res.PeerHits+res.OriginMiss != res.Requests {
		t.Fatalf("outcome accounting broken: %+v", res)
	}
	if res.HitRate() <= 0.3 {
		t.Fatalf("hit rate %.2f implausibly low for a Zipf-0.9 replay", res.HitRate())
	}
	if res.Rebalances < 2 {
		t.Fatalf("rebalances = %d, want >= 2", res.Rebalances)
	}
}

func TestReplayValidation(t *testing.T) {
	lc := startCluster(t, 2, 2, ClusterConfig{})
	if _, err := Replay(lc.Cfg, &trace.Trace{}, ReplayOptions{}); err == nil {
		t.Fatal("empty trace accepted")
	}
	bad := &trace.Trace{Events: []trace.Event{{Kind: trace.Request, Cache: "ghost", URL: "u"}}}
	bad.Docs = testCatalog(1)
	if _, err := Replay(lc.Cfg, bad, ReplayOptions{}); err == nil {
		t.Fatal("unknown cache accepted")
	}
}

// The live stack and the simulator should agree qualitatively on the same
// workload: both serve a majority of requests in-network.
func TestReplayAgreesWithSimulatorShape(t *testing.T) {
	names := []string{"live-00", "live-01", "live-02", "live-03"}
	tr := trace.GenerateZipf(trace.ZipfConfig{
		Seed: 8, NumDocs: 200, Alpha: 0.9, CacheIDs: names,
		Duration: 15, ReqPerCache: 8, UpdatesPerUnit: 4,
	})
	lc, err := StartLocalCluster(names, 2, tr.Docs, ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)
	res, err := Replay(lc.Cfg, tr, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRate() < 0.5 {
		t.Fatalf("live hit rate %.2f below the simulator's qualitative range", res.HitRate())
	}
	// Origin stats must agree with the replay's accounting.
	var os OriginStats
	if err := getJSON(&http.Client{Timeout: 5 * time.Second}, lc.Cfg.OriginAddr+"/stats", &os); err != nil {
		t.Fatal(err)
	}
	if os.Fetches != res.OriginMiss {
		t.Fatalf("origin fetches %d != replay misses %d", os.Fetches, res.OriginMiss)
	}
	if os.Updates != res.Updates {
		t.Fatalf("origin updates %d != replay updates %d", os.Updates, res.Updates)
	}
}

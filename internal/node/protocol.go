// Package node implements the cache cloud protocols as real networked
// services over net/http: edge-cache nodes that serve client requests,
// perform beacon-point duties for their intra-ring hash sub-ranges, and an
// origin node that publishes updates and periodically runs the sub-range
// determination process ("any beacon point within the beacon ring may
// execute this process" — here the origin does, and informs all caches and
// itself of the new assignments, exactly as Section 2.3 describes).
//
// The wire protocol is JSON over HTTP:
//
//	cache node
//	  GET  /doc?url=U          client entry point: serve, cooperate, place
//	  GET  /lookup?url=U       beacon duty: holder list + version
//	  POST /register           beacon duty: add a holder
//	  POST /deregister         beacon duty: drop a holder
//	  GET  /fetch?url=U        peer-to-peer copy transfer
//	  POST /update             beacon duty: receive origin update, fan out
//	  POST /apply              holder: apply a pushed update
//	  POST /subranges          install a new sub-range assignment
//	  POST /records/import     receive migrated lookup records
//	  POST /loads/collect      report and reset cycle load counters
//	  GET  /stats              node statistics
//
//	origin node
//	  GET  /fetch?url=U        group-miss fetch
//	  POST /publish            apply an update and push it to beacons
//	  POST /rebalance          run one sub-range determination cycle
//	  GET  /stats              origin statistics
package node

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"cachecloud/internal/document"
	"cachecloud/internal/obs"
	"cachecloud/internal/tenant"
)

// DeadlineHeader carries a request's remaining deadline budget in
// milliseconds. The transport stamps it from the caller's context on
// every outbound call and handlers derive their context from it, so a
// client deadline propagates hop by hop and queue waiters whose caller
// already gave up stop consuming slots.
const DeadlineHeader = "X-Cachecloud-Deadline-Ms"

// RetryAfterMsHeader carries a sub-second Retry-After hint on 429 shed
// replies, alongside the standard whole-second Retry-After header.
const RetryAfterMsHeader = "X-Cachecloud-Retry-After-Ms"

// TenantHeader carries the requesting tenant's ID on client-facing
// endpoints. The transport stamps it from the caller's context (see
// WithTenant) and handlers fold it into the document key, so every
// tenant's copies, lookup records, and update fan-outs live in a
// disjoint key space. Absent or empty means the default tenant.
const TenantHeader = "X-Cachecloud-Tenant"

// Subrange is one beacon point's inclusive IrH interval on the wire.
type Subrange struct {
	Node string `json:"node"`
	Lo   int    `json:"lo"`
	Hi   int    `json:"hi"`
}

// ClusterConfig is the static bootstrap configuration every node receives.
type ClusterConfig struct {
	// IntraGen is the intra-ring hash generator.
	IntraGen int `json:"intraGen"`
	// Rings lists the beacon-point node names of each ring in position
	// order; initial sub-ranges divide the range equally.
	Rings [][]string `json:"rings"`
	// Addrs maps node name to base URL (http://host:port).
	Addrs map[string]string `json:"addrs"`
	// OriginAddr is the origin node's base URL.
	OriginAddr string `json:"originAddr"`
	// CapacityBytes is each cache's byte budget (0 = unlimited).
	CapacityBytes int64 `json:"capacityBytes"`
	// UtilityPlacement selects the utility-based placement policy for the
	// cache nodes (ad hoc placement otherwise).
	UtilityPlacement bool `json:"utilityPlacement"`
	// MaxInflight caps the total weighted work units a node admits
	// concurrently across the three work classes (0 selects the default,
	// 64). It also bounds the adaptive origin-fetch limiter's ceiling at
	// MaxInflight/4.
	MaxInflight int `json:"maxInflight,omitempty"`
	// MissQueue caps queued miss-class (origin fetch) waiters; arrivals
	// past the cap are shed immediately (0 selects the default, 32).
	MissQueue int `json:"missQueue,omitempty"`
	// LimitMode selects the adaptive origin-fetch concurrency law:
	// "aimd" (default), "gradient", or "fixed".
	LimitMode string `json:"limitMode,omitempty"`
	// StoreDir, when non-empty, is the directory root for the durable
	// cache tier: each node persists its admitted documents into
	// StoreDir/<node-name> and boots warm from it after a restart
	// (replay + beacon revalidation instead of origin refetch). Empty
	// keeps nodes memory-only.
	StoreDir string `json:"storeDir,omitempty"`
	// Fsync selects the durable tier's flush policy: "rotate" (default),
	// "always", or "never". Ignored when StoreDir is empty.
	Fsync string `json:"fsync,omitempty"`
	// Shields lists the shield-tier cache names, in no particular order
	// (routing sorts them). Empty runs the classic single-tier layout:
	// cache misses and origin updates go straight between the cloud and
	// the origin. Non-empty interposes the shield tier: cloud misses
	// resolve cloud → shield → origin and the origin fans one update per
	// shield instead of one per cloud.
	Shields []string `json:"shields,omitempty"`
	// ShieldAddrs maps shield name to base URL.
	ShieldAddrs map[string]string `json:"shieldAddrs,omitempty"`
	// CloudID names this cache cloud inside the shield tier. Shield-ring
	// placement hashes it exactly as a URL hashes into a beacon ring
	// (default "cloud0"). Ignored when Shields is empty.
	CloudID string `json:"cloudID,omitempty"`
	// Tenants, when non-empty, turns on multi-tenant admission and
	// residency quotas: each entry maps a tenant ID to its weighted fair
	// share of MaxInflight and its resident-byte cap. Tenants absent from
	// the map are admitted within leftover capacity and store without a
	// byte cap; the default (empty-ID) tenant is always uncapped.
	Tenants map[string]tenant.Quota `json:"tenants,omitempty"`
	// Clock is the time source nodes built from this config run on. Nil
	// selects the wall clock; the deterministic simulation harness
	// injects a virtual clock here. Never serialised.
	Clock Clock `json:"-"`
	// Tracer, when non-nil, receives protocol events from nodes built
	// from this config — including durable-store recovery events that
	// fire during construction, before SetTracer could run. Never
	// serialised.
	Tracer *obs.Tracer `json:"-"`
}

// Assignments carries the complete sub-range layout of all rings.
type Assignments struct {
	Rings [][]Subrange `json:"rings"`
}

// equalSplit builds the initial assignment: each ring's range divided
// equally among its beacon points.
func equalSplit(cfg ClusterConfig) Assignments {
	a := Assignments{Rings: make([][]Subrange, len(cfg.Rings))}
	for r, members := range cfg.Rings {
		n := len(members)
		lo := 0
		for i, m := range members {
			hi := (i + 1) * cfg.IntraGen / n
			if i == n-1 {
				hi = cfg.IntraGen
			}
			a.Rings[r] = append(a.Rings[r], Subrange{Node: m, Lo: lo, Hi: hi - 1})
			lo = hi
		}
	}
	return a
}

// ownerOf resolves the beacon node for a URL under an assignment.
func (a Assignments) ownerOf(url string, intraGen int) (string, error) {
	if len(a.Rings) == 0 {
		return "", fmt.Errorf("node: empty assignment")
	}
	h := document.HashURL(url)
	ringIdx := h.RingIndex(len(a.Rings))
	irh := h.IrH(intraGen)
	for _, s := range a.Rings[ringIdx] {
		if irh >= s.Lo && irh <= s.Hi {
			return s.Node, nil
		}
	}
	return "", fmt.Errorf("node: no beacon covers IrH %d in ring %d", irh, ringIdx)
}

// Owner resolves the beacon node responsible for a URL under this
// assignment (exported for the simulation harness's invariant checks).
func (a Assignments) Owner(url string, intraGen int) (string, error) {
	return a.ownerOf(url, intraGen)
}

// ringOf returns the index of the ring containing the node, or -1.
func (a Assignments) ringOf(nodeName string) int {
	for r, subs := range a.Rings {
		for _, s := range subs {
			if s.Node == nodeName {
				return r
			}
		}
	}
	return -1
}

// LookupResponse answers GET /lookup. The beacon piggybacks its monitored
// cloud-wide lookup and update rates so the requester can evaluate the
// utility function without extra round trips.
type LookupResponse struct {
	Holders    []string         `json:"holders"`
	Version    document.Version `json:"version"`
	LookupRate float64          `json:"lookupRate"`
	UpdateRate float64          `json:"updateRate"`
}

// RegisterRequest is the body of POST /register and /deregister.
type RegisterRequest struct {
	URL  string `json:"url"`
	Node string `json:"node"`
}

// FetchResponse answers GET /fetch.
type FetchResponse struct {
	Doc document.Document `json:"doc"`
	// PurgeGen is the origin's purge generation for the URL at serve
	// time. Shields record it so a later /versions comparison can tell a
	// legitimately re-fetched copy from one that missed a global purge.
	PurgeGen int64 `json:"purgeGen,omitempty"`
}

// UpdateRequest is the body of POST /update and /apply. On /apply the
// beacon piggybacks its monitored rates so the holder can re-evaluate
// whether the copy is still worth its consistency-maintenance cost.
type UpdateRequest struct {
	Doc        document.Document `json:"doc"`
	LookupRate float64           `json:"lookupRate,omitempty"`
	UpdateRate float64           `json:"updateRate,omitempty"`
	Replicas   int               `json:"replicas,omitempty"`
}

// UpdateResponse answers POST /update.
type UpdateResponse struct {
	Notified int `json:"notified"`
}

// DocResponse answers the client-facing GET /doc.
type DocResponse struct {
	Doc document.Document `json:"doc"`
	// Source reports where the copy came from: "local", "peer", "origin".
	Source string `json:"source"`
	// Stored reports whether the node kept a copy.
	Stored bool `json:"stored"`
	// FailedOver reports that the document's beacon was unreachable and
	// the lookup was answered by its ring sibling's lazy replica.
	FailedOver bool `json:"failedOver,omitempty"`
	// Degraded reports that no beacon was reachable and the request fell
	// through to a direct origin fetch.
	Degraded bool `json:"degraded,omitempty"`
}

// WireRecord is one lookup record in transit during migration.
type WireRecord struct {
	URL     string           `json:"url"`
	Holders []string         `json:"holders"`
	Version document.Version `json:"version"`
}

// RecordsImport is the body of POST /records/import and /records/replica.
// Reset (replica pushes only) tells the receiver to drop its existing
// replica set first: the payload is a full snapshot of the sender's
// records, so anything not in it is stale and must not be promoted later.
type RecordsImport struct {
	Records []WireRecord `json:"records"`
	Reset   bool         `json:"reset,omitempty"`
	// From names the sending node (replica pushes only); Reset drops the
	// receiver's existing replicas from that sender before importing.
	From string `json:"from,omitempty"`
}

// ReconcileEntry is one held copy a holder reports during the
// anti-entropy reconcile pass.
type ReconcileEntry struct {
	URL     string           `json:"url"`
	Version document.Version `json:"version"`
}

// ReconcileRequest is the body of the beacon POST /reconcile: a holder
// reporting every copy it stores whose beacon duty falls on the target.
type ReconcileRequest struct {
	Node    string           `json:"node"`
	Entries []ReconcileEntry `json:"entries"`
}

// ReconcileResult is the beacon's verdict on one reported copy. Keep is
// false when the copy is staler than the version the beacon has already
// fanned out — the holder must drop it. Version is the beacon's record
// version after folding the report in. Owned is false when the beacon no
// longer covers the URL's sub-range (the holder should retry after the
// next assignment install reaches it).
type ReconcileResult struct {
	URL     string           `json:"url"`
	Version document.Version `json:"version"`
	Owned   bool             `json:"owned"`
	Keep    bool             `json:"keep"`
}

// ReconcileResponse answers POST /reconcile.
type ReconcileResponse struct {
	Results []ReconcileResult `json:"results"`
}

// LoadReport answers POST /loads/collect: per-IrH-value loads for the
// node's owned sub-ranges in every ring, reset after reporting.
type LoadReport struct {
	Node   string          `json:"node"`
	Total  int64           `json:"total"`
	PerIrH map[int][]int64 `json:"perIrH"` // ring → dense [intraGen]int64
}

// PublishRequest is the body of the origin's POST /publish.
type PublishRequest struct {
	URL string `json:"url"`
}

// PublishResponse answers POST /publish.
type PublishResponse struct {
	Version  document.Version `json:"version"`
	Notified int              `json:"notified"`
	// ShieldsNotified counts shields the update reached — exactly one
	// versioned update per reachable shield per publish (0 in the
	// single-tier layout).
	ShieldsNotified int `json:"shieldsNotified,omitempty"`
}

// Shield-tier wire protocol. The shield tier reuses the beacon-ring
// machinery recursively: shields form their own ring whose intra-ring
// hash range is keyed by cloud IDs, so each cloud has an owning shield
// and failover walks the ring order.

// Purge scopes accepted by POST /purge and /spurge.
const (
	// PurgeScopeGlobal evicts the document from every shield and every
	// cloud (a global-edge purge).
	PurgeScopeGlobal = "global"
	// PurgeScopeCloud evicts one cloud's copies and cancels its
	// subscriptions; the shield tier keeps serving everyone else.
	PurgeScopeCloud = "cloud"
)

// ShieldFetchResponse answers a shield's GET /sfetch.
type ShieldFetchResponse struct {
	Doc document.Document `json:"doc"`
	// ShieldHit reports whether the shield served from its own copy
	// without an origin round trip.
	ShieldHit bool `json:"shieldHit,omitempty"`
}

// ShieldUpdateResponse answers a shield's POST /supdate.
type ShieldUpdateResponse struct {
	// Held reports whether the shield held (and refreshed) a copy.
	Held bool `json:"held"`
	// CloudsNotified sums the holder notifications of every cloud beacon
	// this shield fanned the update to.
	CloudsNotified int `json:"cloudsNotified"`
}

// PurgeRequest is the body of the origin's POST /purge, a shield's POST
// /spurge, and a cache node's POST /purge and /drop.
type PurgeRequest struct {
	URL string `json:"url"`
	// Scope is PurgeScopeGlobal or PurgeScopeCloud.
	Scope string `json:"scope"`
	// Cloud names the target cloud for PurgeScopeCloud.
	Cloud string `json:"cloud,omitempty"`
	// Gen is the origin's purge generation for the URL (global purges);
	// shields record it so a missed purge is reconciled after heal.
	Gen int64 `json:"gen,omitempty"`
}

// PurgeResponse answers the purge endpoints.
type PurgeResponse struct {
	// ShieldsNotified counts shields the origin forwarded the purge to.
	ShieldsNotified int `json:"shieldsNotified,omitempty"`
	// Dropped counts edge copies actually evicted downstream.
	Dropped int `json:"dropped"`
}

// VersionsResponse answers the origin's GET /versions: the ground-truth
// document versions and per-URL global purge generations shields resync
// against (the tier-level analogue of /reconcile).
type VersionsResponse struct {
	Versions map[string]document.Version `json:"versions"`
	PurgeGen map[string]int64            `json:"purgeGen,omitempty"`
}

// ShieldStats answers a shield's GET /stats.
type ShieldStats struct {
	Shield        string `json:"shield"`
	HeldDocs      int    `json:"heldDocs"`
	Subscriptions int    `json:"subscriptions"`
	Fetches       int64  `json:"fetches"`
	ShieldHits    int64  `json:"shieldHits"`
	OriginFetches int64  `json:"originFetches"`
	UpdatesIn     int64  `json:"updatesIn"`
	UpdatesFanned int64  `json:"updatesFanned"`
	Purges        int64  `json:"purges"`
	ResyncDrops   int64  `json:"resyncDrops"`
	WarmBoot      bool   `json:"warmBoot,omitempty"`
	WarmRecovered int    `json:"warmRecovered,omitempty"`
}

// RebalanceResponse answers the origin's POST /rebalance.
type RebalanceResponse struct {
	Moves       int `json:"moves"`
	RecordsSent int `json:"recordsSent"`
}

// CacheStats answers a cache node's GET /stats.
type CacheStats struct {
	Node        string  `json:"node"`
	StoredDocs  int     `json:"storedDocs"`
	UsedBytes   int64   `json:"usedBytes"`
	LocalHits   int64   `json:"localHits"`
	PeerHits    int64   `json:"peerHits"`
	OriginMiss  int64   `json:"originMiss"`
	BeaconOps   int64   `json:"beaconOps"`
	HitRate     float64 `json:"hitRate"`
	RecordsHeld int     `json:"recordsHeld"`
	// FailedOver counts lookups answered by a ring sibling's lazy replica
	// after the owning beacon was unreachable.
	FailedOver int64 `json:"failedOver"`
	// Degraded counts requests that fell through to a direct origin fetch
	// because no beacon was reachable.
	Degraded int64 `json:"degraded"`
	// DownPeers is the number of peers currently marked dead by the origin.
	DownPeers int `json:"downPeers"`
	// Requests counts client /doc requests accepted for processing.
	// Conservation: Requests == Served + Shed + Failed once the node is
	// quiescent (nothing queued or in flight).
	Requests int64 `json:"requests"`
	// Served counts /doc requests answered with a document.
	Served int64 `json:"served"`
	// Shed counts /doc requests deliberately refused by the overload
	// layer (HTTP 429 + Retry-After) — counted separately from failures.
	Shed int64 `json:"shed"`
	// Failed counts /doc requests that errored (bad gateway, timeout).
	Failed int64 `json:"failed"`
	// OriginFetches counts actual origin wire fetches after coalescing.
	OriginFetches int64 `json:"originFetches"`
	// Coalesced counts misses that joined an in-flight origin fetch
	// instead of issuing their own (singleflight waiters).
	Coalesced int64 `json:"coalesced"`
	// LimitNow is the adaptive origin-fetch concurrency limit right now.
	LimitNow int `json:"limitNow"`
	// WarmBoot reports that this node recovered entries from its durable
	// tier at construction (false = cold boot or memory-only).
	WarmBoot bool `json:"warmBoot,omitempty"`
	// WarmRecovered is how many entries the durable tier replayed into
	// the cache at boot.
	WarmRecovered int `json:"warmRecovered,omitempty"`
	// WarmRevalidated counts recovered copies confirmed fresh by the
	// beacons (kept and re-registered); WarmDropped counts recovered
	// copies the beacons ruled stale (dropped + tombstoned). Revalidation
	// issues zero origin fetches.
	WarmRevalidated int64 `json:"warmRevalidated,omitempty"`
	WarmDropped     int64 `json:"warmDropped,omitempty"`
	// StoreTruncations / StoreCompactions / StoreSegments / StoreBytes
	// summarise the durable tier's log health (all zero when
	// memory-only).
	StoreTruncations int64 `json:"storeTruncations,omitempty"`
	StoreCompactions int64 `json:"storeCompactions,omitempty"`
	StoreSegments    int   `json:"storeSegments,omitempty"`
	StoreBytes       int64 `json:"storeBytes,omitempty"`
	// DurableErrors counts disk-tier mutations that failed (the cache
	// keeps serving; durability degrades).
	DurableErrors int64 `json:"durableErrors,omitempty"`
	// ShieldFetches counts upstream misses resolved through the shield
	// tier; ShieldHits the subset the shield answered from its own copy.
	// ShieldFailover counts fetches served by a non-owner shield after
	// ring-order failover, ShieldDegraded direct-origin fetches taken
	// while every shield was unreachable. All zero in single-tier runs.
	ShieldFetches  int64 `json:"shieldFetches,omitempty"`
	ShieldHits     int64 `json:"shieldHits,omitempty"`
	ShieldFailover int64 `json:"shieldFailover,omitempty"`
	ShieldDegraded int64 `json:"shieldDegraded,omitempty"`
	// Tenants breaks the conservation counters down per tenant when
	// multi-tenant admission is configured. Conservation holds per tenant:
	// Requests == Served + Shed + Failed at quiescence for every entry.
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
}

// TenantStats is one tenant's slice of a cache node's /stats.
type TenantStats struct {
	// Requests/Served/Shed/Failed are the per-tenant conservation
	// counters over client /doc requests.
	Requests int64 `json:"requests"`
	Served   int64 `json:"served"`
	Shed     int64 `json:"shed"`
	Failed   int64 `json:"failed"`
	// Share is the tenant's current weighted fair share of MaxInflight.
	Share int `json:"share"`
	// ResidentBytes is the tenant's resident bytes in this node's cache.
	ResidentBytes int64 `json:"residentBytes"`
}

// OriginStats answers the origin node's GET /stats.
type OriginStats struct {
	Documents   int   `json:"documents"`
	Fetches     int64 `json:"fetches"`
	Updates     int64 `json:"updates"`
	BytesServed int64 `json:"bytesServed"`
	Rebalances  int64 `json:"rebalances"`
	// Repairs counts failure-recovery passes that removed at least one node.
	Repairs int64 `json:"repairs"`
	// Heartbeats counts beats received from cache nodes.
	Heartbeats int64 `json:"heartbeats"`
	// NodesDown is the number of nodes currently declared dead.
	NodesDown int `json:"nodesDown"`
	// RecordsLost sums the lookup records reported held by nodes at their
	// last heartbeat before being declared dead.
	RecordsLost int64 `json:"recordsLost"`
	// RecordsRecovered sums the sibling-replica promotions survivors
	// reported while installing repaired assignments.
	RecordsRecovered int64 `json:"recordsRecovered"`
	// Rejoins counts nodes re-admitted after being declared dead.
	Rejoins int64 `json:"rejoins"`
	// FetchInFlight is the number of /fetch requests being served right
	// now; FetchHighWater is the maximum observed concurrently. Under the
	// cache nodes' adaptive origin-fetch limiters the high water stays
	// bounded by the sum of their current limits even during a miss storm.
	FetchInFlight  int64 `json:"fetchInFlight"`
	FetchHighWater int64 `json:"fetchHighWater"`
}

// HeartbeatRequest is the body of the origin's POST /heartbeat: a cache
// node reporting it is alive, together with the cluster-view summary the
// origin uses for failure accounting (RecordsHeld is what would be lost
// if this node crashed right now).
type HeartbeatRequest struct {
	Node        string `json:"node"`
	Seq         int64  `json:"seq"`
	RecordsHeld int    `json:"recordsHeld"`
	StoredDocs  int    `json:"storedDocs"`
}

// HeartbeatResponse answers POST /heartbeat. Rejoined is set when the
// heartbeat came from a node previously declared dead and the origin has
// re-admitted it (new sub-range assignments follow on /subranges).
type HeartbeatResponse struct {
	Rejoined bool `json:"rejoined"`
}

// MembershipUpdate is the body of the cache-node POST /membership: the
// origin broadcasting which peers are currently considered dead, so nodes
// stop routing lookups and fetches at them during the detection window.
type MembershipUpdate struct {
	Down []string `json:"down"`
}

// SubrangesResponse answers POST /subranges: how many records the node
// handed off to new owners and how many it promoted from sibling replicas
// for ranges it now owns (the crash-recovery count).
type SubrangesResponse struct {
	MigratedOut int `json:"migratedOut"`
	Promoted    int `json:"promoted"`
}

// --- small HTTP helpers shared by both node kinds ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func readJSON(r *http.Request, v any) error {
	defer func() {
		_, _ = io.Copy(io.Discard, r.Body)
		_ = r.Body.Close()
	}()
	return json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(v)
}

// postJSON sends a JSON request and decodes the JSON reply into out (out
// may be nil). The client's Timeout, if any, doubles as the per-request
// deadline; the body is always drained and closed so connections are
// reused. New code should use a Transport instead.
func postJSON(client *http.Client, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("node: marshal %s: %w", url, err)
	}
	return doJSON(context.Background(), client, http.MethodPost, url, body, out, client.Timeout)
}

// getJSON performs a GET and decodes the JSON reply. A 404 returns
// errNotFound so callers can distinguish absence from failure. The body
// is always drained and closed so connections are reused.
func getJSON(client *http.Client, url string, out any) error {
	return doJSON(context.Background(), client, http.MethodGet, url, nil, out, client.Timeout)
}

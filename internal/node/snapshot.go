package node

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"

	"cachecloud/internal/document"
)

// Snapshot is the serialised state of a cache node: its stored copies, the
// lookup records it owns as a beacon point, and its view of the sub-range
// layout. A node restarted from a snapshot rejoins the cloud warm instead
// of refetching its working set from peers and the origin.
type Snapshot struct {
	Node    string          `json:"node"`
	Assign  Assignments     `json:"assign"`
	Copies  []document.Copy `json:"copies"`
	Records []WireRecord    `json:"records"`
}

// SaveSnapshot writes the node's current state as JSON.
func (n *CacheNode) SaveSnapshot(w io.Writer) error {
	snap := Snapshot{Node: n.name}

	n.mu.Lock()
	snap.Assign = n.assign
	snap.Records = make([]WireRecord, 0, len(n.records))
	for url, rec := range n.records {
		wr := WireRecord{URL: url, Version: rec.version}
		for h := range rec.holders {
			wr.Holders = append(wr.Holders, h)
		}
		snap.Records = append(snap.Records, wr)
	}
	n.mu.Unlock()

	for _, url := range n.store.Documents() {
		if cp, ok := n.store.Peek(url); ok {
			snap.Copies = append(snap.Copies, cp)
		}
	}

	enc := json.NewEncoder(w)
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("node: encode snapshot: %w", err)
	}
	return nil
}

// LoadSnapshot restores state saved by SaveSnapshot. It rejects snapshots
// taken by a different node. Stored copies re-enter the cache (subject to
// the capacity budget); owned lookup records and the sub-range layout are
// restored as-is.
func (n *CacheNode) LoadSnapshot(r io.Reader) error {
	var snap Snapshot
	if err := json.NewDecoder(io.LimitReader(r, 256<<20)).Decode(&snap); err != nil {
		return fmt.Errorf("node: decode snapshot: %w", err)
	}
	if snap.Node != n.name {
		return fmt.Errorf("node: snapshot belongs to %q, not %q", snap.Node, n.name)
	}
	now := n.now()
	for _, cp := range snap.Copies {
		if _, err := n.store.Put(cp, now); err != nil {
			continue // oversized for this budget: skip
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(snap.Assign.Rings) > 0 {
		n.assign = snap.Assign
		n.publishAssign()
	}
	for _, wr := range snap.Records {
		rec, ok := n.records[wr.URL]
		if !ok {
			rec = newNodeRecord()
			n.records[wr.URL] = rec
		}
		if wr.Version > rec.version {
			rec.version = wr.Version
		}
		for _, h := range wr.Holders {
			rec.holders[h] = struct{}{}
		}
	}
	return nil
}

// SaveSnapshotFile writes the snapshot atomically (tmp file + rename).
func (n *CacheNode) SaveSnapshotFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := n.SaveSnapshot(f); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadSnapshotFile restores from a snapshot file; a missing file is not an
// error (cold start).
func (n *CacheNode) LoadSnapshotFile(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	return n.LoadSnapshot(f)
}

// handleSnapshotSave persists the node's state to its configured snapshot
// file (POST /snapshot/save; 404 when no snapshot path is configured).
func (n *CacheNode) handleSnapshotSave(w http.ResponseWriter, r *http.Request) {
	if n.snapshotPath == "" {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no snapshot path configured"))
		return
	}
	if err := n.SaveSnapshotFile(n.snapshotPath); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"saved": n.snapshotPath})
}

// SetSnapshotPath configures the file used by POST /snapshot/save.
func (n *CacheNode) SetSnapshotPath(path string) { n.snapshotPath = path }

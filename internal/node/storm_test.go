package node

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cachecloud/internal/document"
)

// countingOrigin wraps the origin handler with a /fetch delay (the
// "slowed origin") and precise in-flight accounting measured across the
// whole delayed window — the number the adaptive limiters must bound.
type countingOrigin struct {
	inner   http.Handler
	delay   time.Duration
	current atomic.Int64
	high    atomic.Int64
}

func (co *countingOrigin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/fetch" {
		cur := co.current.Add(1)
		defer co.current.Add(-1)
		for {
			hw := co.high.Load()
			if cur <= hw || co.high.CompareAndSwap(hw, cur) {
				break
			}
		}
		if co.delay > 0 {
			time.Sleep(co.delay)
		}
	}
	co.inner.ServeHTTP(w, r)
}

// startStormCluster boots a cluster by hand (instead of through
// StartLocalCluster) so the origin sits behind a countingOrigin wrapper.
func startStormCluster(t *testing.T, names []string, ringSize int, docs []document.Document, cfg ClusterConfig, originDelay time.Duration) (*LocalCluster, *countingOrigin) {
	t.Helper()
	if cfg.IntraGen == 0 {
		cfg.IntraGen = 200
	}
	numRings := len(names) / ringSize
	if numRings < 1 {
		numRings = 1
	}
	cfg.Rings = make([][]string, numRings)
	for i, name := range names {
		cfg.Rings[i%numRings] = append(cfg.Rings[i%numRings], name)
	}
	cfg.Addrs = make(map[string]string, len(names))

	lc := &LocalCluster{
		Caches: make(map[string]*CacheNode, len(names)),
		byName: make(map[string]*httptest.Server, len(names)),
	}
	t.Cleanup(lc.Close)
	var srvs []*httptest.Server
	for _, name := range names {
		srv := httptest.NewUnstartedServer(nil)
		cfg.Addrs[name] = "http://" + srv.Listener.Addr().String()
		lc.servers = append(lc.servers, srv)
		lc.byName[name] = srv
		srvs = append(srvs, srv)
	}
	originSrv := httptest.NewUnstartedServer(nil)
	cfg.OriginAddr = "http://" + originSrv.Listener.Addr().String()
	lc.servers = append(lc.servers, originSrv)

	for i, name := range names {
		cn, err := NewCacheNode(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		lc.Caches[name] = cn
		srvs[i].Config.Handler = cn.Handler()
		srvs[i].Start()
	}
	on, err := NewOriginNode(cfg, docs)
	if err != nil {
		t.Fatal(err)
	}
	lc.Origin = on
	co := &countingOrigin{inner: on.Handler(), delay: originDelay}
	originSrv.Config.Handler = co
	originSrv.Start()
	lc.Cfg = cfg
	return lc, co
}

// sumAdmission folds every node's overload-layer snapshot into one.
func sumAdmission(lc *LocalCluster) AdmissionStats {
	var out AdmissionStats
	for _, n := range lc.Caches {
		st := n.Admission()
		out.Requests += st.Requests
		out.Served += st.Served
		out.Shed += st.Shed
		out.Failed += st.Failed
		out.OriginFetches += st.OriginFetches
		out.Coalesced += st.Coalesced
		out.GateInFlight += st.GateInFlight
		out.GateQueued += st.GateQueued
		out.LimiterInFlight += st.LimiterInFlight
		out.LimiterQueued += st.LimiterQueued
		out.FlightsActive += st.FlightsActive
	}
	return out
}

// TestChaosStormHotDocVsSlowOrigin is the overload end-to-end: repeated
// hot-document miss storms (every burst concentrates many concurrent
// clients on a few cold documents) hit a cluster whose origin is slowed
// by an injected delay. The overload layer must keep the storm civil:
//
//   - the origin's in-flight fetches never exceed the summed adaptive
//     limiter ceilings (miss-storm protection);
//   - concurrent misses for the same document coalesce onto shared
//     fetches (singleflight);
//   - goodput stays positive in every burst — shedding is partial,
//     never a full outage;
//   - conservation holds: every offered request is exactly one of
//     served, shed, or failed, with zero failures (sheds are deliberate
//     429s, not errors), and the gates drain to quiescence.
//
// Run under -race this doubles as the no-deadlock check for the
// gate/limiter/coalescer composition.
func TestChaosStormHotDocVsSlowOrigin(t *testing.T) {
	const (
		nodes       = 4
		ringSize    = 2
		maxInflight = 16 // per-node gate weight; limiter ceiling = 16/4 = 4
		bursts      = 3
		hotPerBurst = 3
		clients     = 80
		originDelay = 10 * time.Millisecond
	)
	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
	}
	docs := testCatalog(bursts * hotPerBurst)
	lc, co := startStormCluster(t, names, ringSize, docs,
		ClusterConfig{IntraGen: 200, MaxInflight: maxInflight, MissQueue: 16}, originDelay)

	limitCapSum := 0
	for _, n := range lc.Caches {
		limitCapSum += n.limiter.Max()
	}

	client := &http.Client{Timeout: 30 * time.Second}
	get := func(entry, url string) {
		resp, err := client.Get(lc.Cfg.Addrs[entry] + "/doc?url=" + queryEscape(url))
		if err != nil {
			t.Errorf("GET %s via %s: %v", url, entry, err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	offered := 0
	for b := 0; b < bursts; b++ {
		before := sumAdmission(lc)
		var wg sync.WaitGroup
		for g := 0; g < clients; g++ {
			wg.Add(1)
			url := docs[b*hotPerBurst+g%hotPerBurst].URL
			entry := names[g%nodes]
			go func() {
				defer wg.Done()
				get(entry, url)
			}()
		}
		wg.Wait()
		offered += clients

		after := sumAdmission(lc)
		if served := after.Served - before.Served; served == 0 {
			t.Fatalf("burst %d: goodput collapsed to zero (shed=%d failed=%d)",
				b, after.Shed-before.Shed, after.Failed-before.Failed)
		}
		if co.delay > 0 {
			if coal := after.Coalesced - before.Coalesced; coal < hotPerBurst {
				t.Fatalf("burst %d: only %d coalesced fetches, want >= %d (one per hot doc)",
					b, coal, hotPerBurst)
			}
		}
	}

	// Quiescence: all client goroutines have returned, so the gates and
	// limiters must have drained and the books must balance exactly.
	final := sumAdmission(lc)
	if final.Requests != int64(offered) {
		t.Fatalf("requests = %d, want %d offered", final.Requests, offered)
	}
	if got := final.Served + final.Shed + final.Failed; got != final.Requests {
		t.Fatalf("conservation violated: served %d + shed %d + failed %d = %d != requests %d",
			final.Served, final.Shed, final.Failed, got, final.Requests)
	}
	if final.Failed != 0 {
		t.Fatalf("failed = %d, want 0 (overload must shed, not error)", final.Failed)
	}
	if final.GateInFlight != 0 || final.GateQueued != 0 || final.LimiterInFlight != 0 ||
		final.LimiterQueued != 0 || final.FlightsActive != 0 {
		t.Fatalf("not quiescent: %+v", final)
	}

	// Miss-storm protection: across the whole run the slowed origin never
	// saw more concurrent fetches than the summed limiter ceilings.
	if hw := co.high.Load(); hw > int64(limitCapSum) {
		t.Fatalf("origin in-flight high water %d exceeds summed limiter cap %d", hw, limitCapSum)
	}
	if co.high.Load() == 0 || final.OriginFetches == 0 {
		t.Fatal("storm never reached the origin; test is vacuous")
	}
	// The origin's own accounting agrees with the middleware's.
	if ohw := lc.Origin.FetchHighWater(); ohw > int64(limitCapSum) {
		t.Fatalf("origin-side high water %d exceeds summed limiter cap %d", ohw, limitCapSum)
	}
}

// TestStormShedIsTypedOnTheWire drives a node past its miss-queue cap
// and checks the wire contract of a shed: HTTP 429 with both Retry-After
// headers, while hit-class traffic keeps being served.
func TestStormShedIsTypedOnTheWire(t *testing.T) {
	// One node, tiny gate: capacity 4 admits a single miss (weight 4);
	// MissQueue 1 queues one more; the rest shed immediately.
	docs := testCatalog(40)
	lc, _ := startStormCluster(t, []string{"solo"}, 1, docs,
		ClusterConfig{IntraGen: 50, MaxInflight: 4, MissQueue: 1}, 50*time.Millisecond)

	client := &http.Client{Timeout: 30 * time.Second}
	base := lc.Cfg.Addrs["solo"]

	// Prime one document so the hit path has something to serve.
	resp, err := client.Get(base + "/doc?url=" + queryEscape(docs[0].URL))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	var saw429 atomic.Int64
	var sawRetryAfter atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 24; g++ {
		wg.Add(1)
		url := docs[1+g%36].URL // cold documents: all miss-class
		go func() {
			defer wg.Done()
			resp, err := client.Get(base + "/doc?url=" + queryEscape(url))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode == http.StatusTooManyRequests {
				saw429.Add(1)
				if resp.Header.Get("Retry-After") != "" && resp.Header.Get(RetryAfterMsHeader) != "" {
					sawRetryAfter.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	if saw429.Load() == 0 {
		t.Fatal("no request was shed; storm too small for the configured gate")
	}
	if sawRetryAfter.Load() != saw429.Load() {
		t.Fatalf("%d of %d shed replies missing Retry-After headers",
			saw429.Load()-sawRetryAfter.Load(), saw429.Load())
	}
	// The hit path must still be served while misses are shed.
	resp, err = client.Get(base + "/doc?url=" + queryEscape(docs[0].URL))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hit-class request got %d during a miss storm", resp.StatusCode)
	}
	st := lc.Caches["solo"].Admission()
	if st.Shed == 0 || st.ShedByClass[2] == 0 {
		t.Fatalf("shed accounting empty: %+v", st)
	}
	if st.Served+st.Shed+st.Failed != st.Requests {
		t.Fatalf("conservation violated: %+v", st)
	}
}

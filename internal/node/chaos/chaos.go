// Package chaos provides a deterministic fault-injecting Transport for
// the live cache-cloud node layer. A single seeded Network is shared by
// every node of a cluster (and by test clients); each participant wraps
// its real transport with Network.Transport(owner, inner). The network
// then injects faults on the calls flowing through it:
//
//   - partitions: Kill(name) isolates a node — every call from it and
//     every call to it fails with ErrInjected until Heal(name);
//   - drops: a seeded coin makes a call fail outright (DropProb);
//   - delays: a seeded uniform delay in [0, MaxDelay] before each call;
//   - errors: ErrorEvery(n) fails every n-th call deterministically.
//
// All decisions come from one seeded PRNG guarded by a mutex, so a
// sequential test replays the exact same fault schedule on every run.
// The package deliberately does not import internal/node: the Inner
// interface is structural, so *node.HTTPTransport satisfies it and a
// *chaos.Transport satisfies node.Transport.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the root of every fault the network injects; test
// assertions can errors.Is against it.
var ErrInjected = errors.New("chaos: injected fault")

// Inner is the transport being wrapped. *node.HTTPTransport implements
// it structurally.
type Inner interface {
	GetJSON(ctx context.Context, url string, out any) error
	PostJSON(ctx context.Context, url string, in, out any) error
}

// Config tunes a Network's background noise (partitions are managed
// separately via Kill/Heal).
type Config struct {
	// Seed drives every probabilistic decision (0 means 1).
	Seed int64
	// DropProb is the probability a call fails outright.
	DropProb float64
	// MaxDelay is the upper bound of the uniform per-call delay (0 = no
	// delay). Delays respect context cancellation.
	MaxDelay time.Duration
	// ErrorEvery fails every n-th call through the network (0 = never).
	ErrorEvery int
}

// Network is the shared fault plane of one simulated cluster.
type Network struct {
	cfg Config

	mu     sync.Mutex
	rng    *rand.Rand
	hosts  map[string]string // host:port -> node name
	dead   map[string]bool   // isolated nodes
	calls  int64             // total calls observed
	faults int64             // faults injected
}

// NewNetwork builds a fault plane with the given configuration.
func NewNetwork(cfg Config) *Network {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Network{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(seed)),
		hosts: make(map[string]string),
		dead:  make(map[string]bool),
	}
}

// Bind registers a node name for a base URL, so partitions expressed by
// node name can be matched against call targets.
func (n *Network) Bind(name, baseURL string) {
	u, err := url.Parse(baseURL)
	host := baseURL
	if err == nil && u.Host != "" {
		host = u.Host
	}
	n.mu.Lock()
	n.hosts[host] = name
	n.mu.Unlock()
}

// Kill isolates a node: every call it originates and every call that
// targets it fails until Heal. Idempotent.
func (n *Network) Kill(name string) {
	n.mu.Lock()
	n.dead[name] = true
	n.mu.Unlock()
}

// Heal reconnects a previously killed node. Idempotent.
func (n *Network) Heal(name string) {
	n.mu.Lock()
	delete(n.dead, name)
	n.mu.Unlock()
}

// SetDropProb changes the drop probability at runtime — the simulation
// harness opens and closes degradation windows with it. Safe for
// concurrent use.
func (n *Network) SetDropProb(p float64) {
	n.mu.Lock()
	n.cfg.DropProb = p
	n.mu.Unlock()
}

// Stats reports the calls observed and faults injected so far.
func (n *Network) Stats() (calls, faults int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.calls, n.faults
}

// Transport wraps an inner transport for one participant.
func (n *Network) Transport(owner string, inner Inner) *Transport {
	return &Transport{net: n, owner: owner, inner: inner}
}

// Transport is one participant's view of the faulty network. It
// implements the same method set as the inner transport, so it satisfies
// node.Transport.
type Transport struct {
	net   *Network
	owner string
	inner Inner
}

// GetJSON implements the transport interface with fault injection.
func (t *Transport) GetJSON(ctx context.Context, url string, out any) error {
	if err := t.net.inject(ctx, t.owner, url); err != nil {
		return err
	}
	return t.inner.GetJSON(ctx, url, out)
}

// PostJSON implements the transport interface with fault injection.
func (t *Transport) PostJSON(ctx context.Context, url string, in, out any) error {
	if err := t.net.inject(ctx, t.owner, url); err != nil {
		return err
	}
	return t.inner.PostJSON(ctx, url, in, out)
}

// inject decides the fate of one call. It returns nil to let the call
// through (possibly after a delay) or the injected fault.
func (n *Network) inject(ctx context.Context, owner, rawurl string) error {
	target := ""
	if u, err := url.Parse(rawurl); err == nil {
		target = u.Host
	}

	n.mu.Lock()
	n.calls++
	targetName := n.hosts[target]
	if n.dead[owner] {
		n.faults++
		n.mu.Unlock()
		return fmt.Errorf("%w: %q is partitioned", ErrInjected, owner)
	}
	if targetName != "" && n.dead[targetName] {
		n.faults++
		n.mu.Unlock()
		return fmt.Errorf("%w: connection to %q refused", ErrInjected, targetName)
	}
	if n.cfg.ErrorEvery > 0 && n.calls%int64(n.cfg.ErrorEvery) == 0 {
		n.faults++
		n.mu.Unlock()
		return fmt.Errorf("%w: scheduled error", ErrInjected)
	}
	if n.cfg.DropProb > 0 && n.rng.Float64() < n.cfg.DropProb {
		n.faults++
		n.mu.Unlock()
		return fmt.Errorf("%w: dropped", ErrInjected)
	}
	var delay time.Duration
	if n.cfg.MaxDelay > 0 {
		delay = time.Duration(n.rng.Int63n(int64(n.cfg.MaxDelay) + 1))
	}
	n.mu.Unlock()

	if delay > 0 {
		timer := time.NewTimer(delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// DeadNodes returns the currently partitioned node names, sorted, for
// test diagnostics and deterministic logs.
func (n *Network) DeadNodes() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.dead))
	for name := range n.dead {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// String summarises the network state.
func (n *Network) String() string {
	calls, faults := n.Stats()
	dead := n.DeadNodes()
	return fmt.Sprintf("chaos.Network{calls=%d faults=%d dead=[%s]}", calls, faults, strings.Join(dead, ","))
}

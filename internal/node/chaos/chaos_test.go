package chaos

import (
	"context"
	"errors"
	"testing"
	"time"
)

// okInner is an Inner that always succeeds and counts calls.
type okInner struct{ calls int }

func (i *okInner) GetJSON(ctx context.Context, url string, out any) error {
	i.calls++
	return nil
}

func (i *okInner) PostJSON(ctx context.Context, url string, in, out any) error {
	i.calls++
	return nil
}

func TestPartitionBlocksBothDirections(t *testing.T) {
	net := NewNetwork(Config{Seed: 7})
	net.Bind("a", "http://127.0.0.1:1001")
	net.Bind("b", "http://127.0.0.1:1002")
	inner := &okInner{}
	fromA := net.Transport("a", inner)
	fromB := net.Transport("b", inner)

	net.Kill("b")
	if err := fromA.GetJSON(context.Background(), "http://127.0.0.1:1002/x", nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("call into partitioned node: err = %v, want ErrInjected", err)
	}
	if err := fromB.GetJSON(context.Background(), "http://127.0.0.1:1001/x", nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("call out of partitioned node: err = %v, want ErrInjected", err)
	}
	if err := fromA.PostJSON(context.Background(), "http://127.0.0.1:1001/x", nil, nil); err != nil {
		t.Fatalf("a->a unaffected by partition of b: %v", err)
	}

	net.Heal("b")
	if err := fromA.GetJSON(context.Background(), "http://127.0.0.1:1002/x", nil); err != nil {
		t.Fatalf("call after heal: %v", err)
	}
	if inner.calls != 2 {
		t.Fatalf("inner calls = %d, want 2 (faults short-circuit)", inner.calls)
	}
}

func TestDropScheduleIsDeterministic(t *testing.T) {
	run := func() []bool {
		net := NewNetwork(Config{Seed: 99, DropProb: 0.5})
		tp := net.Transport("a", &okInner{})
		outcomes := make([]bool, 40)
		for i := range outcomes {
			outcomes[i] = tp.GetJSON(context.Background(), "http://127.0.0.1:1/x", nil) == nil
		}
		return outcomes
	}
	first, second := run(), run()
	drops := 0
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("outcome %d differs between identical seeded runs", i)
		}
		if !first[i] {
			drops++
		}
	}
	if drops == 0 || drops == len(first) {
		t.Fatalf("drops = %d of %d, want a mix at p=0.5", drops, len(first))
	}
}

func TestErrorEvery(t *testing.T) {
	net := NewNetwork(Config{Seed: 1, ErrorEvery: 3})
	tp := net.Transport("a", &okInner{})
	var failed []int
	for i := 1; i <= 9; i++ {
		if err := tp.GetJSON(context.Background(), "http://127.0.0.1:1/x", nil); err != nil {
			failed = append(failed, i)
		}
	}
	want := []int{3, 6, 9}
	if len(failed) != len(want) {
		t.Fatalf("failed calls = %v, want %v", failed, want)
	}
	for i := range want {
		if failed[i] != want[i] {
			t.Fatalf("failed calls = %v, want %v", failed, want)
		}
	}
	calls, faults := net.Stats()
	if calls != 9 || faults != 3 {
		t.Fatalf("stats = (%d, %d), want (9, 3)", calls, faults)
	}
}

func TestDelayRespectsContext(t *testing.T) {
	net := NewNetwork(Config{Seed: 5, MaxDelay: time.Hour})
	tp := net.Transport("a", &okInner{})
	// Delays are uniform in [0, MaxDelay]; within a few draws one will
	// exceed the context budget and must be cut short by it.
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		start := time.Now()
		err := tp.GetJSON(ctx, "http://127.0.0.1:1/x", nil)
		elapsed := time.Since(start)
		cancel()
		if elapsed > 2*time.Second {
			t.Fatal("delay did not honor context cancellation")
		}
		if err != nil {
			return // a long delay was correctly aborted by the context
		}
	}
	t.Fatal("no delay ever exceeded the 10ms context budget at MaxDelay=1h")
}

package node

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// manualClock is a hand-advanced Clock for deterministic breaker tests:
// time only moves when the test calls advance, so cooldown expiry needs no
// real sleeping. AfterFunc callbacks fire synchronously inside advance.
type manualClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*manualTimer
}

type manualTimer struct {
	when    time.Time
	f       func()
	stopped bool
}

func (mt *manualTimer) Stop() bool {
	was := mt.stopped
	mt.stopped = true
	return !was
}

func newManualClock() *manualClock {
	return &manualClock{now: time.Unix(1_000_000, 0)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

func (c *manualClock) AfterFunc(d time.Duration, f func()) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	mt := &manualTimer{when: c.now.Add(d), f: f}
	c.timers = append(c.timers, mt)
	return mt
}

func (c *manualClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	due := c.timers[:0:0]
	rest := c.timers[:0]
	for _, mt := range c.timers {
		if !mt.stopped && !mt.when.After(c.now) {
			due = append(due, mt)
		} else if !mt.stopped {
			rest = append(rest, mt)
		}
	}
	c.timers = rest
	c.mu.Unlock()
	for _, mt := range due {
		mt.f()
	}
}

// fastTransport returns a transport with short timings for tests.
func fastTransport(opts TransportOptions) *HTTPTransport {
	if opts.RequestTimeout == 0 {
		opts.RequestTimeout = 2 * time.Second
	}
	if opts.BackoffBase == 0 {
		opts.BackoffBase = time.Millisecond
	}
	if opts.BackoffMax == 0 {
		opts.BackoffMax = 5 * time.Millisecond
	}
	if opts.JitterSeed == 0 {
		opts.JitterSeed = 42
	}
	return NewHTTPTransport(opts)
}

func TestTransportRetriesServerErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()

	tp := fastTransport(TransportOptions{MaxRetries: 2})
	var out map[string]bool
	if err := tp.GetJSON(context.Background(), srv.URL+"/x", &out); err != nil {
		t.Fatalf("GetJSON after retries: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("calls = %d, want 3 (two retries)", got)
	}
	if !out["ok"] {
		t.Fatalf("decoded %v", out)
	}
}

func TestTransportDoesNotRetry404(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.NotFound(w, r)
	}))
	defer srv.Close()

	tp := fastTransport(TransportOptions{MaxRetries: 3})
	err := tp.GetJSON(context.Background(), srv.URL+"/x", nil)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("calls = %d, want 1 (404 is terminal)", got)
	}
}

func TestTransportDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer srv.Close()

	tp := fastTransport(TransportOptions{MaxRetries: 3})
	err := tp.PostJSON(context.Background(), srv.URL+"/x", map[string]int{"a": 1}, nil)
	if err == nil {
		t.Fatal("400 accepted")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("calls = %d, want 1 (4xx is terminal)", got)
	}
}

func TestTransportRetriesExhaust(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadGateway)
	}))
	defer srv.Close()

	tp := fastTransport(TransportOptions{MaxRetries: 2, BreakerThreshold: -1})
	if err := tp.GetJSON(context.Background(), srv.URL+"/x", nil); err == nil {
		t.Fatal("persistent 502 accepted")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("calls = %d, want 3 (1 try + 2 retries)", got)
	}
}

func TestTransportContextCancelStopsRetries(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	tp := fastTransport(TransportOptions{MaxRetries: 10, BackoffBase: 50 * time.Millisecond, BackoffMax: 50 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := tp.GetJSON(ctx, srv.URL+"/x", nil); err == nil {
		t.Fatal("cancelled call succeeded")
	}
	if got := calls.Load(); got > 2 {
		t.Fatalf("calls = %d, want <= 2 (context expired during backoff)", got)
	}
}

func TestTransportPerRequestDeadline(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer srv.Close()
	defer close(release)

	tp := fastTransport(TransportOptions{RequestTimeout: 30 * time.Millisecond, NoRetries: true})
	start := time.Now()
	err := tp.GetJSON(context.Background(), srv.URL+"/slow", nil)
	if err == nil {
		t.Fatal("hung call succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline not enforced: call took %v", elapsed)
	}
}

func TestTransportCircuitBreaker(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))
	base := srv.URL
	srv.Close() // all calls now fail with connection refused

	tp := fastTransport(TransportOptions{
		NoRetries:        true,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour,
	})
	for i := 0; i < 3; i++ {
		if err := tp.GetJSON(context.Background(), base+"/x", nil); err == nil {
			t.Fatal("call to closed server succeeded")
		}
	}
	if !tp.PeerDown(base) {
		t.Fatal("circuit not open after threshold failures")
	}
	err := tp.GetJSON(context.Background(), base+"/x", nil)
	if !errors.Is(err, ErrPeerDown) {
		t.Fatalf("err = %v, want ErrPeerDown (fail fast)", err)
	}
}

func TestTransportBreakerHalfOpenRecovery(t *testing.T) {
	var healthy atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	// The breaker runs on an injected manual clock, so cooldown expiry is a
	// deterministic advance instead of a real sleep-and-poll loop.
	mc := newManualClock()
	tp := fastTransport(TransportOptions{
		NoRetries:        true,
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Millisecond,
		Clock:            mc,
	})
	for i := 0; i < 2; i++ {
		_ = tp.GetJSON(context.Background(), srv.URL+"/x", nil)
	}
	if !tp.PeerDown(srv.URL) {
		t.Fatal("circuit should be open")
	}
	if err := tp.GetJSON(context.Background(), srv.URL+"/x", nil); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("err = %v, want ErrPeerDown before cooldown", err)
	}
	healthy.Store(true)
	mc.advance(11 * time.Millisecond) // past cooldown: next call is the probe
	if err := tp.GetJSON(context.Background(), srv.URL+"/x", nil); err != nil {
		t.Fatalf("half-open probe after cooldown failed: %v", err)
	}
	if tp.PeerDown(srv.URL) {
		t.Fatal("circuit still open after successful probe")
	}
}

func TestTransportDrainsBodyForConnectionReuse(t *testing.T) {
	var conns atomic.Int64
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Extra bytes after the JSON value: they must be drained before
		// the connection can go back to the keep-alive pool.
		w.Write([]byte(`{"ok":true}` + "   \n"))
	}))
	srv.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			conns.Add(1)
		}
	}
	srv.Start()
	defer srv.Close()

	tp := fastTransport(TransportOptions{NoRetries: true})
	for i := 0; i < 5; i++ {
		var out map[string]bool
		if err := tp.GetJSON(context.Background(), srv.URL+"/x", &out); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := conns.Load(); got != 1 {
		t.Fatalf("connections opened = %d, want 1 (bodies not drained?)", got)
	}
}

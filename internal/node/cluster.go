package node

import (
	"fmt"
	"net/http/httptest"

	"cachecloud/internal/document"
)

// LocalCluster boots a complete live cluster in-process using
// httptest servers — used by the integration tests, the livecluster
// example, and anyone who wants a self-contained demo without separate
// processes.
type LocalCluster struct {
	Cfg     ClusterConfig
	Origin  *OriginNode
	Caches  map[string]*CacheNode
	servers []*httptest.Server
	byName  map[string]*httptest.Server
}

// TransportFactory builds the outbound transport for a named cluster
// participant; the origin node asks for "origin". Returning nil selects
// the production default for that participant.
type TransportFactory func(name string) Transport

// StartLocalCluster creates nodeNames cache nodes arranged into rings of
// ringSize beacon points plus one origin node, all listening on loopback.
func StartLocalCluster(nodeNames []string, ringSize int, docs []document.Document, opts ClusterConfig) (*LocalCluster, error) {
	return StartLocalClusterWith(nodeNames, ringSize, docs, opts, nil)
}

// StartLocalClusterWith is StartLocalCluster with per-node transport
// injection (the chaos tests wire every node through one seeded fault
// plane this way).
func StartLocalClusterWith(nodeNames []string, ringSize int, docs []document.Document, opts ClusterConfig, mk TransportFactory) (*LocalCluster, error) {
	if ringSize < 1 {
		ringSize = 2
	}
	if len(nodeNames) < ringSize {
		return nil, fmt.Errorf("node: %d nodes cannot form rings of %d", len(nodeNames), ringSize)
	}
	cfg := ClusterConfig{
		IntraGen:         opts.IntraGen,
		CapacityBytes:    opts.CapacityBytes,
		UtilityPlacement: opts.UtilityPlacement,
		MaxInflight:      opts.MaxInflight,
		MissQueue:        opts.MissQueue,
		LimitMode:        opts.LimitMode,
		Clock:            opts.Clock,
		Addrs:            make(map[string]string, len(nodeNames)),
	}
	if cfg.IntraGen == 0 {
		cfg.IntraGen = 1000
	}
	numRings := len(nodeNames) / ringSize
	if numRings < 1 {
		numRings = 1
	}
	cfg.Rings = make([][]string, numRings)
	for i, name := range nodeNames {
		r := i % numRings
		cfg.Rings[r] = append(cfg.Rings[r], name)
	}

	lc := &LocalCluster{
		Cfg:    cfg,
		Caches: make(map[string]*CacheNode, len(nodeNames)),
		byName: make(map[string]*httptest.Server, len(nodeNames)),
	}

	// Reserve listeners first so every node knows every address.
	type pending struct {
		name string
		srv  *httptest.Server
	}
	var pendings []pending
	for _, name := range nodeNames {
		srv := httptest.NewUnstartedServer(nil)
		cfg.Addrs[name] = "http://" + srv.Listener.Addr().String()
		pendings = append(pendings, pending{name: name, srv: srv})
		lc.servers = append(lc.servers, srv)
		lc.byName[name] = srv
	}
	originSrv := httptest.NewUnstartedServer(nil)
	cfg.OriginAddr = "http://" + originSrv.Listener.Addr().String()
	lc.servers = append(lc.servers, originSrv)

	for _, p := range pendings {
		var tp Transport
		if mk != nil {
			tp = mk(p.name)
		}
		cn, err := NewCacheNodeWithTransport(p.name, cfg, tp)
		if err != nil {
			lc.Close()
			return nil, err
		}
		lc.Caches[p.name] = cn
		p.srv.Config.Handler = cn.Handler()
		p.srv.Start()
	}
	var originTP Transport
	if mk != nil {
		originTP = mk("origin")
	}
	on, err := NewOriginNodeWithTransport(cfg, docs, originTP)
	if err != nil {
		lc.Close()
		return nil, err
	}
	lc.Origin = on
	originSrv.Config.Handler = on.Handler()
	originSrv.Start()
	lc.Cfg = cfg
	return lc, nil
}

// StopNode kills one cache node's server, simulating a crash. Returns
// false if the node is unknown or already stopped.
func (lc *LocalCluster) StopNode(name string) bool {
	srv, ok := lc.byName[name]
	if !ok {
		return false
	}
	srv.Close()
	delete(lc.byName, name)
	return true
}

// Close shuts down every server in the cluster.
func (lc *LocalCluster) Close() {
	for _, s := range lc.servers {
		s.Close()
	}
}

package node

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"cachecloud/internal/document"
)

// LocalCluster boots a complete live cluster in-process using
// httptest servers — used by the integration tests, the livecluster
// example, and anyone who wants a self-contained demo without separate
// processes.
type LocalCluster struct {
	Cfg     ClusterConfig
	Origin  *OriginNode
	Caches  map[string]*CacheNode
	Shields map[string]*ShieldNode
	servers []*httptest.Server
	byName  map[string]*httptest.Server
}

// TransportFactory builds the outbound transport for a named cluster
// participant; the origin node asks for "origin". Returning nil selects
// the production default for that participant.
type TransportFactory func(name string) Transport

// StartLocalCluster creates nodeNames cache nodes arranged into rings of
// ringSize beacon points plus one origin node, all listening on loopback.
func StartLocalCluster(nodeNames []string, ringSize int, docs []document.Document, opts ClusterConfig) (*LocalCluster, error) {
	return StartLocalClusterWith(nodeNames, ringSize, docs, opts, nil)
}

// StartLocalClusterWith is StartLocalCluster with per-node transport
// injection (the chaos tests wire every node through one seeded fault
// plane this way).
func StartLocalClusterWith(nodeNames []string, ringSize int, docs []document.Document, opts ClusterConfig, mk TransportFactory) (*LocalCluster, error) {
	if ringSize < 1 {
		ringSize = 2
	}
	if len(nodeNames) < ringSize {
		return nil, fmt.Errorf("node: %d nodes cannot form rings of %d", len(nodeNames), ringSize)
	}
	cfg := ClusterConfig{
		IntraGen:         opts.IntraGen,
		CapacityBytes:    opts.CapacityBytes,
		UtilityPlacement: opts.UtilityPlacement,
		MaxInflight:      opts.MaxInflight,
		MissQueue:        opts.MissQueue,
		LimitMode:        opts.LimitMode,
		StoreDir:         opts.StoreDir,
		Fsync:            opts.Fsync,
		Clock:            opts.Clock,
		Tracer:           opts.Tracer,
		Shields:          opts.Shields,
		CloudID:          opts.CloudID,
		Tenants:          opts.Tenants,
		Addrs:            make(map[string]string, len(nodeNames)),
	}
	if len(cfg.Shields) > 0 {
		cfg.ShieldAddrs = make(map[string]string, len(cfg.Shields))
	}
	if cfg.IntraGen == 0 {
		cfg.IntraGen = 1000
	}
	numRings := len(nodeNames) / ringSize
	if numRings < 1 {
		numRings = 1
	}
	cfg.Rings = make([][]string, numRings)
	for i, name := range nodeNames {
		r := i % numRings
		cfg.Rings[r] = append(cfg.Rings[r], name)
	}

	lc := &LocalCluster{
		Cfg:    cfg,
		Caches: make(map[string]*CacheNode, len(nodeNames)),
		byName: make(map[string]*httptest.Server, len(nodeNames)),
	}

	// Reserve listeners first so every node knows every address.
	type pending struct {
		name string
		srv  *httptest.Server
	}
	var pendings []pending
	for _, name := range nodeNames {
		srv := httptest.NewUnstartedServer(nil)
		cfg.Addrs[name] = "http://" + srv.Listener.Addr().String()
		pendings = append(pendings, pending{name: name, srv: srv})
		lc.servers = append(lc.servers, srv)
		lc.byName[name] = srv
	}
	originSrv := httptest.NewUnstartedServer(nil)
	cfg.OriginAddr = "http://" + originSrv.Listener.Addr().String()
	lc.servers = append(lc.servers, originSrv)

	// Shield-tier listeners are reserved before any node is constructed so
	// the cache nodes' shield routers see the full address map.
	var shieldPendings []pending
	for _, name := range cfg.Shields {
		srv := httptest.NewUnstartedServer(nil)
		cfg.ShieldAddrs[name] = "http://" + srv.Listener.Addr().String()
		shieldPendings = append(shieldPendings, pending{name: name, srv: srv})
		lc.servers = append(lc.servers, srv)
		lc.byName[name] = srv
	}
	if len(cfg.Shields) > 0 {
		lc.Shields = make(map[string]*ShieldNode, len(cfg.Shields))
	}
	for _, p := range shieldPendings {
		var tp Transport
		if mk != nil {
			tp = mk(p.name)
		}
		sn, err := NewShieldNodeWithTransport(p.name, cfg, tp)
		if err != nil {
			lc.Close()
			return nil, err
		}
		lc.Shields[p.name] = sn
		p.srv.Config.Handler = sn.Handler()
		p.srv.Start()
	}

	for _, p := range pendings {
		var tp Transport
		if mk != nil {
			tp = mk(p.name)
		}
		cn, err := NewCacheNodeWithTransport(p.name, cfg, tp)
		if err != nil {
			lc.Close()
			return nil, err
		}
		lc.Caches[p.name] = cn
		p.srv.Config.Handler = cn.Handler()
		p.srv.Start()
	}
	var originTP Transport
	if mk != nil {
		originTP = mk("origin")
	}
	on, err := NewOriginNodeWithTransport(cfg, docs, originTP)
	if err != nil {
		lc.Close()
		return nil, err
	}
	lc.Origin = on
	originSrv.Config.Handler = on.Handler()
	originSrv.Start()
	lc.Cfg = cfg
	return lc, nil
}

// StopNode kills one cache node's server, simulating a crash. Returns
// false if the node is unknown or already stopped.
func (lc *LocalCluster) StopNode(name string) bool {
	srv, ok := lc.byName[name]
	if !ok {
		return false
	}
	srv.Close()
	delete(lc.byName, name)
	return true
}

// RestartNode brings a stopped node back on its original address with a
// freshly constructed CacheNode — when the cluster config names a
// StoreDir the replacement boots warm from the crashed node's log. The
// old node object's durable tier is sealed first so the replacement can
// reopen the same directory. Rebinding the just-released port can race
// the kernel, so the listen is retried briefly.
func (lc *LocalCluster) RestartNode(name string, mk TransportFactory) (*CacheNode, error) {
	if _, running := lc.byName[name]; running {
		return nil, fmt.Errorf("node: %q is still running", name)
	}
	old, ok := lc.Caches[name]
	if !ok {
		return nil, fmt.Errorf("node: unknown node %q", name)
	}
	_ = old.Close()
	addr := strings.TrimPrefix(lc.Cfg.Addrs[name], "http://")
	var (
		ln  net.Listener
		err error
	)
	for i := 0; i < 40; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		return nil, fmt.Errorf("node: rebind %s: %w", addr, err)
	}
	var tp Transport
	if mk != nil {
		tp = mk(name)
	}
	cn, err := NewCacheNodeWithTransport(name, lc.Cfg, tp)
	if err != nil {
		_ = ln.Close()
		return nil, err
	}
	srv := &httptest.Server{
		Listener: ln,
		Config:   &http.Server{Handler: cn.Handler()},
	}
	srv.Start()
	lc.Caches[name] = cn
	lc.byName[name] = srv
	lc.servers = append(lc.servers, srv)
	return cn, nil
}

// Close shuts down every server in the cluster and seals each node's
// durable tier (a no-op for memory-only nodes).
func (lc *LocalCluster) Close() {
	for _, s := range lc.servers {
		s.Close()
	}
	for _, cn := range lc.Caches {
		_ = cn.Close()
	}
	for _, sn := range lc.Shields {
		_ = sn.Close()
	}
}

// RestartShield brings a stopped shield back on its original address with
// a freshly constructed ShieldNode — with a StoreDir configured it boots
// warm from the crashed shield's durable log.
func (lc *LocalCluster) RestartShield(name string, mk TransportFactory) (*ShieldNode, error) {
	if _, running := lc.byName[name]; running {
		return nil, fmt.Errorf("node: shield %q is still running", name)
	}
	old, ok := lc.Shields[name]
	if !ok {
		return nil, fmt.Errorf("node: unknown shield %q", name)
	}
	_ = old.Close()
	addr := strings.TrimPrefix(lc.Cfg.ShieldAddrs[name], "http://")
	var (
		ln  net.Listener
		err error
	)
	for i := 0; i < 40; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		return nil, fmt.Errorf("node: rebind shield %s: %w", addr, err)
	}
	var tp Transport
	if mk != nil {
		tp = mk(name)
	}
	sn, err := NewShieldNodeWithTransport(name, lc.Cfg, tp)
	if err != nil {
		_ = ln.Close()
		return nil, err
	}
	srv := &httptest.Server{
		Listener: ln,
		Config:   &http.Server{Handler: sn.Handler()},
	}
	srv.Start()
	lc.Shields[name] = sn
	lc.byName[name] = srv
	lc.servers = append(lc.servers, srv)
	return sn, nil
}

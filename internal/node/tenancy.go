package node

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"cachecloud/internal/admit"
	"cachecloud/internal/document"
	"cachecloud/internal/obs"
	"cachecloud/internal/tenant"
)

// tenantCounters holds the per-tenant conservation counters. A nil
// receiver (tenancy disabled) turns every method into a no-op so the
// single-tenant request path pays nothing.
type tenantCounters struct {
	mu sync.Mutex
	m  map[string]*tenantCount
}

type tenantCount struct {
	requests, served, shed, failed int64
}

func (tc *tenantCounters) bump(id string, f func(*tenantCount)) {
	if tc == nil {
		return
	}
	tc.mu.Lock()
	c := tc.m[id]
	if c == nil {
		c = &tenantCount{}
		tc.m[id] = c
	}
	f(c)
	tc.mu.Unlock()
}

func (tc *tenantCounters) request(id string) { tc.bump(id, func(c *tenantCount) { c.requests++ }) }
func (tc *tenantCounters) served(id string)  { tc.bump(id, func(c *tenantCount) { c.served++ }) }
func (tc *tenantCounters) shed(id string)    { tc.bump(id, func(c *tenantCount) { c.shed++ }) }
func (tc *tenantCounters) failed(id string)  { tc.bump(id, func(c *tenantCount) { c.failed++ }) }

// initTenancy turns on multi-tenant admission when the cluster config
// carries tenant quotas: a weighted fair share of the admission capacity
// per tenant, per-tenant resident-byte caps on the store, and per-tenant
// conservation counters. With no tenants configured the node runs the
// classic single-tenant path untouched.
func (n *CacheNode) initTenancy() error {
	if len(n.cfg.Tenants) == 0 {
		return nil
	}
	reg, err := tenant.NewRegistry(n.cfg.Tenants)
	if err != nil {
		return fmt.Errorf("node %s: %w", n.name, err)
	}
	maxInflight := n.cfg.MaxInflight
	if maxInflight <= 0 {
		maxInflight = DefaultMaxInflight
	}
	n.tenants = reg
	n.fair = tenant.NewFairShare(reg, maxInflight)
	n.store.SetTenantQuotas(reg)
	n.tenantCounts = &tenantCounters{m: make(map[string]*tenantCount)}
	return nil
}

// TenantRegistry returns the live quota registry (nil when tenancy is
// off). Quota changes through it take effect on the next admission or
// Put; shrinking a byte quota below residency needs an
// EnforceTenantQuotas sweep on the store to reclaim.
func (n *CacheNode) TenantRegistry() *tenant.Registry { return n.tenants }

// tenantFromRequest extracts and validates the tenant ID a client
// stamped on the request ("" = default tenant).
func tenantFromRequest(r *http.Request) (string, error) {
	id := r.Header.Get(TenantHeader)
	if id == "" {
		return "", nil
	}
	if !tenant.ValidID(id) {
		return "", fmt.Errorf("node: invalid tenant id %q", id)
	}
	return id, nil
}

// foldTenantParam returns the tenant-scoped document key for a handler's
// url parameter: peer calls pass already-scoped keys with no header, a
// client call carries the header and gets its URL folded here.
func foldTenantParam(r *http.Request, url string) (string, error) {
	id, err := tenantFromRequest(r)
	if err != nil {
		return "", err
	}
	return document.TenantKey(id, url), nil
}

// originFetchJSON fetches a (possibly tenant-scoped) document key from
// the origin. The origin serves a single tenant-agnostic catalog of
// plain URLs, so the key is unscoped on the wire and the returned
// document is re-keyed to the scoped key — the caller stores it inside
// the tenant's key space without the origin ever learning about tenants.
func originFetchJSON(ctx context.Context, tp Transport, originAddr, key string) (FetchResponse, error) {
	_, plain := document.SplitTenantKey(key)
	var fr FetchResponse
	if err := tp.GetJSON(ctx, originAddr+"/fetch?url="+queryEscape(plain), &fr); err != nil {
		return FetchResponse{}, err
	}
	fr.Doc.URL = key
	return fr, nil
}

// tenantAcquire charges one admission unit to the tenant's weighted fair
// share. The returned release is a no-op when tenancy is off.
func (n *CacheNode) tenantAcquire(id string) (func(), bool) {
	if n.fair == nil {
		return func() {}, true
	}
	return n.fair.TryAcquire(id)
}

// refuseTenantShed terminates a /doc request refused by the weighted
// fair admission: a typed 429 carrying the tenant, counted against the
// tenant's (and the node's) shed counters. The class is nominal — the
// refusal happens at the front door, before the work is classified.
func (n *CacheNode) refuseTenantShed(w http.ResponseWriter, tid, url string) {
	n.docShed.Inc()
	n.tenantCounts.shed(tid)
	if tr := n.Tracer(); tr != nil {
		tr.Emit(obs.Event{Time: n.now(), Kind: obs.EvTenantShed, Node: n.name, URL: url, Tenant: tid})
	}
	writeShed(w, &admit.ShedError{Class: admit.Hit, Reason: admit.ReasonTenantShare, Tenant: tid})
}

// TenantAdmission snapshots the per-tenant stats: conservation counters,
// the tenant's current fair share, and its resident bytes in the store.
// Registered tenants appear even before their first request; nil when
// tenancy is off.
func (n *CacheNode) TenantAdmission() map[string]TenantStats {
	if n.tenantCounts == nil {
		return nil
	}
	out := make(map[string]TenantStats)
	n.tenantCounts.mu.Lock()
	for id, c := range n.tenantCounts.m {
		out[id] = TenantStats{Requests: c.requests, Served: c.served, Shed: c.shed, Failed: c.failed}
	}
	n.tenantCounts.mu.Unlock()
	for _, id := range n.tenants.IDs() {
		if _, ok := out[id]; !ok {
			out[id] = TenantStats{}
		}
	}
	for id, b := range n.store.TenantUsage() {
		ts := out[id]
		ts.ResidentBytes = b
		out[id] = ts
	}
	for id := range out {
		ts := out[id]
		ts.Share = n.fair.Share(id)
		out[id] = ts
	}
	return out
}

// renderTenantMetrics appends the per-tenant counters to the Prometheus
// text body with a proper tenant label (the registry's fixed-label model
// cannot vary labels per series, so these lines are rendered by hand).
func (n *CacheNode) renderTenantMetrics(b *strings.Builder) {
	stats := n.TenantAdmission()
	if stats == nil {
		return
	}
	ids := make([]string, 0, len(stats))
	for id := range stats {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ts := stats[id]
		labels := fmt.Sprintf("{node=%q,tenant=%q}", n.name, id)
		fmt.Fprintf(b, "cachecloud_node_tenant_requests_total%s %d\n", labels, ts.Requests)
		fmt.Fprintf(b, "cachecloud_node_tenant_served_total%s %d\n", labels, ts.Served)
		fmt.Fprintf(b, "cachecloud_node_tenant_shed_total%s %d\n", labels, ts.Shed)
		fmt.Fprintf(b, "cachecloud_node_tenant_failed_total%s %d\n", labels, ts.Failed)
		fmt.Fprintf(b, "cachecloud_node_tenant_share%s %d\n", labels, ts.Share)
		fmt.Fprintf(b, "cachecloud_node_tenant_resident_bytes%s %d\n", labels, ts.ResidentBytes)
	}
}

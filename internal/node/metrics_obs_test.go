package node

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMetricsHistogramExposition checks /metrics renders the latency
// histograms in full Prometheus form: typed series, cumulative buckets
// ending at le="+Inf", and matching _sum/_count lines.
func TestMetricsHistogramExposition(t *testing.T) {
	lc := startCluster(t, 2, 2, ClusterConfig{})
	client := &http.Client{Timeout: 5 * time.Second}
	for i := 0; i < 5; i++ {
		getDoc(t, client, lc.Cfg.Addrs["live-00"], fmt.Sprintf("http://live/doc/%d", i))
	}

	resp, err := client.Get(lc.Cfg.Addrs["live-00"] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		"# TYPE cachecloud_node_request_ms histogram",
		`cachecloud_node_request_ms_bucket{node="live-00",le="+Inf"} 5`,
		`cachecloud_node_request_ms_count{node="live-00"} 5`,
		`cachecloud_node_request_ms_sum{node="live-00"}`,
		"# TYPE cachecloud_node_lookup_ms histogram",
		"# TYPE cachecloud_node_fetch_ms histogram",
		"# TYPE cachecloud_node_local_hits_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", body)
	}

	// Bucket counts must be cumulative: each le line >= the previous.
	prev := int64(-1)
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "cachecloud_node_request_ms_bucket") {
			continue
		}
		var n int64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &n); err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		prev = n
	}
	if prev != 5 {
		t.Fatalf("+Inf bucket = %d, want 5", prev)
	}
}

// TestMetricsScrapeUnderLoad hammers /metrics from several goroutines
// while other goroutines drive document requests and publishes through
// the same nodes. Run under -race (CI does) this is the regression test
// for the scrape path racing the request path; in any mode it checks
// every scrape returns a complete, parseable exposition.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	lc := startCluster(t, 3, 3, ClusterConfig{})
	client := &http.Client{Timeout: 5 * time.Second}

	// Fixed request counts instead of a wall-clock window: the workers all
	// start together so scrapes and loads overlap for the whole run, and
	// the test finishes as soon as the work does — no time.Sleep.
	const (
		loadReqs   = 200
		scrapeReqs = 150
	)
	var wg sync.WaitGroup
	var scrapeErrs, loadErrs atomic.Int64

	// Load: requests spread over the catalog plus publishes.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := lc.Cfg.Addrs[fmt.Sprintf("live-%02d", w)]
			for i := 0; i < loadReqs; i++ {
				url := fmt.Sprintf("http://live/doc/%d", i%50)
				var dr DocResponse
				if err := getJSON(client, base+"/doc?url="+queryEscape(url), &dr); err != nil {
					loadErrs.Add(1)
				}
				if i%7 == 0 {
					if err := postJSON(client, lc.Cfg.OriginAddr+"/publish", PublishRequest{URL: url}, nil); err != nil {
						loadErrs.Add(1)
					}
				}
			}
		}(w)
	}

	// Scrapers: every node's /metrics plus the origin's, continuously.
	targets := []string{lc.Cfg.OriginAddr}
	for _, base := range lc.Cfg.Addrs {
		targets = append(targets, base)
	}
	for _, base := range targets {
		wg.Add(1)
		go func(base string) {
			defer wg.Done()
			for i := 0; i < scrapeReqs; i++ {
				resp, err := client.Get(base + "/metrics")
				if err != nil {
					scrapeErrs.Add(1)
					continue
				}
				raw, err := io.ReadAll(resp.Body)
				_ = resp.Body.Close()
				if err != nil || !strings.Contains(string(raw), "# TYPE") {
					scrapeErrs.Add(1)
				}
			}
		}(base)
	}

	wg.Wait()
	if n := scrapeErrs.Load(); n != 0 {
		t.Fatalf("%d scrapes failed", n)
	}
	if n := loadErrs.Load(); n != 0 {
		t.Fatalf("%d load requests failed", n)
	}
}

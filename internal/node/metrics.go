package node

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// metricsText renders a metric set in the Prometheus text exposition
// format (hand-rolled; the repository is stdlib-only). Gauges only — every
// value is a point-in-time read of node state.
func metricsText(prefix string, values map[string]float64, labels map[string]string) string {
	var label string
	if len(labels) > 0 {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%q", k, labels[k]))
		}
		label = "{" + strings.Join(parts, ",") + "}"
	}
	names := make([]string, 0, len(values))
	for name := range values {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "# TYPE %s_%s gauge\n", prefix, name)
		fmt.Fprintf(&b, "%s_%s%s %g\n", prefix, name, label, values[name])
	}
	return b.String()
}

// handleMetrics exposes cache-node operational metrics at GET /metrics in
// the Prometheus text format.
func (n *CacheNode) handleMetrics(w http.ResponseWriter, r *http.Request) {
	n.mu.Lock()
	vals := map[string]float64{
		"local_hits_total":   float64(n.localHits),
		"peer_hits_total":    float64(n.peerHits),
		"origin_miss_total":  float64(n.originMZ),
		"beacon_ops_total":   float64(n.beaconOps),
		"lookup_records":     float64(len(n.records)),
		"replica_records":    float64(len(n.replicas)),
		"stored_documents":   float64(n.store.Len()),
		"stored_bytes":       float64(n.store.Used()),
		"capacity_bytes":     float64(n.store.Capacity()),
		"uptime_seconds":     float64(n.now()),
		"ring_count":         float64(len(n.assign.Rings)),
		"owned_subrange_len": float64(n.ownedSubrangeLenLocked()),
		"failed_over_total":  float64(n.failedOver),
		"degraded_total":     float64(n.degraded),
		"down_peers":         float64(len(n.down)),
		"heartbeats_sent":    float64(n.hbSeq),
	}
	name := n.name
	n.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write([]byte(metricsText("cachecloud_node", vals, map[string]string{"node": name})))
}

// ownedSubrangeLenLocked sums the IrH values this node currently owns.
// Caller holds the lock.
func (n *CacheNode) ownedSubrangeLenLocked() int {
	total := 0
	for _, subs := range n.assign.Rings {
		for _, s := range subs {
			if s.Node == n.name && s.Hi >= s.Lo {
				total += s.Hi - s.Lo + 1
			}
		}
	}
	return total
}

// handleMetrics exposes origin metrics at GET /metrics.
func (o *OriginNode) handleMetrics(w http.ResponseWriter, r *http.Request) {
	o.mu.Lock()
	down := 0
	for _, d := range o.down {
		if d {
			down++
		}
	}
	vals := map[string]float64{
		"documents":               float64(len(o.docs)),
		"fetches_total":           float64(o.fetches),
		"updates_total":           float64(o.updates),
		"bytes_sent_total":        float64(o.bytesOut),
		"rebalances_total":        float64(o.rebalances),
		"repairs_total":           float64(o.repairs),
		"nodes_down":              float64(down),
		"nodes_configured":        float64(len(o.cfg.Addrs)),
		"ring_count":              float64(len(o.assign.Rings)),
		"intra_ring_hash_n":       float64(o.cfg.IntraGen),
		"heartbeats_total":        float64(o.heartbeats),
		"records_lost_total":      float64(o.recordsLost),
		"records_recovered_total": float64(o.recordsRec),
		"rejoins_total":           float64(o.rejoins),
	}
	o.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write([]byte(metricsText("cachecloud_origin", vals, nil)))
}

package node

import (
	"net/http"
	"strings"
)

// handleMetrics exposes cache-node operational metrics at GET /metrics in
// the Prometheus text format. The registry snapshots every series under
// its own lock and renders outside it, so a slow client never stalls the
// request path. Per-tenant series (tenant-labelled) are appended after
// the registry body when multi-tenant admission is on.
func (n *CacheNode) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	b.WriteString(n.reg.Render())
	n.renderTenantMetrics(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write([]byte(b.String()))
}

// ownedSubrangeLen sums the IrH values the named node owns under an
// assignment snapshot.
func ownedSubrangeLen(a *Assignments, name string) int {
	total := 0
	for _, subs := range a.Rings {
		for _, s := range subs {
			if s.Node == name && s.Hi >= s.Lo {
				total += s.Hi - s.Lo + 1
			}
		}
	}
	return total
}

// handleMetrics exposes origin metrics at GET /metrics.
func (o *OriginNode) handleMetrics(w http.ResponseWriter, r *http.Request) {
	body := o.reg.Render()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write([]byte(body))
}

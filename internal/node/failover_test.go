package node

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cachecloud/internal/node/chaos"
)

// chaosCluster boots a cluster whose every participant — nodes, origin,
// clients — routes through one seeded chaos network.
func chaosCluster(t *testing.T, net *chaos.Network, names []string, ringSize int) *LocalCluster {
	t.Helper()
	inner := func() *HTTPTransport {
		return NewHTTPTransport(TransportOptions{
			RequestTimeout:   2 * time.Second,
			MaxRetries:       1,
			BackoffBase:      2 * time.Millisecond,
			BackoffMax:       10 * time.Millisecond,
			BreakerThreshold: -1, // keep routing deterministic under chaos
			JitterSeed:       7,
		})
	}
	lc, err := StartLocalClusterWith(names, ringSize, testCatalog(60), ClusterConfig{IntraGen: 200},
		func(name string) Transport { return net.Transport(name, inner()) })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)
	for name, addr := range lc.Cfg.Addrs {
		net.Bind(name, addr)
	}
	net.Bind("origin", lc.Cfg.OriginAddr)
	return lc
}

// recordCount reads a node's owned lookup-record count.
func recordCount(n *CacheNode) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.records)
}

// originHeldFor reads the origin's last-heartbeat record count for a node.
func originHeldFor(o *OriginNode, name string) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.recordsHeld[name]
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosBeaconFailoverEndToEnd is the end-to-end fault-tolerance test:
// a seeded chaos network partitions one beacon node mid-run while client
// load keeps flowing. Every client request must complete (sibling
// failover or origin fallback), the cluster must converge on the reduced
// membership within K heartbeat intervals, recovery accounting must
// balance (RecordsRecovered == RecordsLost under replication), and the
// healed node must be re-admitted.
func TestChaosBeaconFailoverEndToEnd(t *testing.T) {
	const (
		hbInterval = 100 * time.Millisecond
		missK      = 4
	)
	net := chaos.NewNetwork(chaos.Config{Seed: 1234, MaxDelay: 2 * time.Millisecond})
	names := []string{"n0", "n1", "n2", "n3"}
	lc := chaosCluster(t, net, names, 2)
	victim := "n0"

	client := func(preferred string) *Client {
		c, err := NewClientWithTransport(lc.Cfg, preferred,
			net.Transport("client-"+preferred, NewHTTPTransport(TransportOptions{
				RequestTimeout: 2 * time.Second,
				MaxRetries:     1,
				BackoffBase:    2 * time.Millisecond,
				BackoffMax:     10 * time.Millisecond,
				JitterSeed:     11,
			})))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c0, c1 := client(victim), client("n1")

	// Populate through the victim's client so the victim holds copies and
	// beacon records exist for every document.
	urls := make([]string, 60)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://live/doc/%d", i)
	}
	for _, u := range urls {
		if _, _, err := c0.Get(u); err != nil {
			t.Fatalf("populate %s: %v", u, err)
		}
	}
	if recordCount(lc.Caches[victim]) == 0 {
		t.Fatal("victim owns no records; test cannot exercise recovery")
	}

	// Lazily replicate every beacon's records to its ring sibling, then
	// start the failure-detection plane.
	if _, err := lc.Origin.TriggerReplication(); err != nil {
		t.Fatalf("replicate: %v", err)
	}
	for _, n := range lc.Caches {
		stop := n.StartHeartbeat(hbInterval)
		defer stop()
	}
	stopFD := lc.Origin.StartFailureDetector(hbInterval, missK)
	defer stopFD()

	// Wait until the origin's view of the victim's record count is
	// current, so RecordsLost is accounted from a fresh heartbeat.
	waitFor(t, 5*time.Second, "victim heartbeat", func() bool {
		return originHeldFor(lc.Origin, victim) == recordCount(lc.Caches[victim])
	})

	// Partition the victim and keep client load flowing through the
	// detection window. Every request must complete.
	var loadErrs atomic.Int64
	var loadReqs atomic.Int64
	stopLoad := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stopLoad:
				return
			default:
			}
			if _, _, err := c1.Get(urls[i%len(urls)]); err != nil {
				loadErrs.Add(1)
			}
			loadReqs.Add(1)
		}
	}()
	net.Kill(victim)

	// Convergence: within K heartbeat intervals (plus sweep scheduling
	// slack) the survivors must have been told the victim is dead.
	convergeBudget := time.Duration(missK+3) * hbInterval * 4
	waitFor(t, convergeBudget, "membership convergence", func() bool {
		return lc.Origin.Stats().NodesDown == 1 && lc.Caches["n1"].isDown(victim)
	})

	// Recovery accounting: the records the victim took down must all have
	// been recovered from its ring sibling's lazy replica.
	waitFor(t, 5*time.Second, "recovery accounting", func() bool {
		st := lc.Origin.Stats()
		return st.RecordsLost > 0 && st.RecordsRecovered == st.RecordsLost
	})

	// Let failed-over traffic through: wait until at least one request has
	// actually taken the failover or degraded path (the condition asserted
	// below), then stop the load — no fixed sleep.
	waitFor(t, 5*time.Second, "failover traffic", func() bool {
		var fo, dg int64
		for _, n := range lc.Caches {
			fo += n.failedOver.Value()
			dg += n.degraded.Value()
		}
		return fo+dg > 0
	})
	close(stopLoad)
	wg.Wait()
	if n := loadErrs.Load(); n != 0 {
		t.Fatalf("%d of %d client requests failed during the partition window", n, loadReqs.Load())
	}
	if loadReqs.Load() == 0 {
		t.Fatal("load generator issued no requests")
	}

	// Requests for victim-owned documents either failed over to the ring
	// sibling or degraded to the origin while the partition lasted.
	totalFailedOver, totalDegraded := int64(0), int64(0)
	for _, n := range lc.Caches {
		totalFailedOver += n.failedOver.Value()
		totalDegraded += n.degraded.Value()
	}
	if totalFailedOver+totalDegraded == 0 {
		t.Fatal("no request used the failover or degraded path during the partition")
	}

	// Heal the partition: the victim's next heartbeat re-admits it with a
	// fresh sub-range and membership clears.
	net.Heal(victim)
	waitFor(t, 5*time.Second, "victim rejoin", func() bool {
		st := lc.Origin.Stats()
		return st.Rejoins >= 1 && st.NodesDown == 0
	})
	waitFor(t, 5*time.Second, "membership heal broadcast", func() bool {
		return !lc.Caches["n1"].isDown(victim)
	})

	// The rejoined node serves again and the cloud still answers for
	// every document.
	for _, u := range urls {
		if _, _, err := c0.Get(u); err != nil {
			t.Fatalf("post-rejoin request %s: %v", u, err)
		}
	}
}

// TestChaosDropsAreAbsorbedByClientFailover drives load through a lossy
// chaos network (no partitions) and checks the client failover chain
// absorbs injected drops.
func TestChaosDropsAreAbsorbedByClientFailover(t *testing.T) {
	net := chaos.NewNetwork(chaos.Config{Seed: 77, DropProb: 0.10})
	lc := chaosCluster(t, net, []string{"d0", "d1", "d2", "d3"}, 2)
	c, err := NewClientWithTransport(lc.Cfg, "d0",
		net.Transport("client", NewHTTPTransport(TransportOptions{
			RequestTimeout: 2 * time.Second,
			MaxRetries:     1,
			BackoffBase:    2 * time.Millisecond,
			BackoffMax:     10 * time.Millisecond,
			JitterSeed:     3,
		})))
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	for i := 0; i < 120; i++ {
		if _, _, err := c.Get(fmt.Sprintf("http://live/doc/%d", i%60)); err == nil {
			ok++
		}
	}
	// With four-node failover a request only fails when every node's
	// chain fails; at p=0.1 drops that should be rare.
	if ok < 110 {
		t.Fatalf("only %d/120 requests completed under 10%% drop chaos", ok)
	}
	if _, faults := net.Stats(); faults == 0 {
		t.Fatal("chaos network injected no faults; test is vacuous")
	}
	requests, failovers := c.Stats()
	if requests != 120 {
		t.Fatalf("requests = %d", requests)
	}
	_ = failovers // failovers depend on the seed; presence of faults is asserted above
}

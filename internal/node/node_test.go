package node

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"cachecloud/internal/document"
)

func testCatalog(n int) []document.Document {
	docs := make([]document.Document, n)
	for i := range docs {
		docs[i] = document.Document{URL: fmt.Sprintf("http://live/doc/%d", i), Size: int64(1000 + i)}
	}
	return docs
}

func startCluster(t *testing.T, nodes, ringSize int, opts ClusterConfig) *LocalCluster {
	t.Helper()
	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("live-%02d", i)
	}
	lc, err := StartLocalCluster(names, ringSize, testCatalog(200), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)
	return lc
}

func getDoc(t *testing.T, client *http.Client, base, url string) DocResponse {
	t.Helper()
	var dr DocResponse
	if err := getJSON(client, base+"/doc?url="+queryEscape(url), &dr); err != nil {
		t.Fatalf("GET /doc: %v", err)
	}
	return dr
}

func cacheStats(t *testing.T, client *http.Client, base string) CacheStats {
	t.Helper()
	var st CacheStats
	if err := getJSON(client, base+"/stats", &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestEqualSplitLayout(t *testing.T) {
	cfg := ClusterConfig{IntraGen: 10, Rings: [][]string{{"a", "b"}, {"c"}}}
	a := equalSplit(cfg)
	if a.Rings[0][0] != (Subrange{Node: "a", Lo: 0, Hi: 4}) {
		t.Fatalf("ring0[0] = %+v", a.Rings[0][0])
	}
	if a.Rings[0][1] != (Subrange{Node: "b", Lo: 5, Hi: 9}) {
		t.Fatalf("ring0[1] = %+v", a.Rings[0][1])
	}
	if a.Rings[1][0] != (Subrange{Node: "c", Lo: 0, Hi: 9}) {
		t.Fatalf("ring1[0] = %+v", a.Rings[1][0])
	}
	if got := a.ringOf("b"); got != 0 {
		t.Fatalf("ringOf(b) = %d", got)
	}
	if got := a.ringOf("zz"); got != -1 {
		t.Fatalf("ringOf(zz) = %d", got)
	}
}

func TestOwnerOfCoversAllDocs(t *testing.T) {
	cfg := ClusterConfig{IntraGen: 100, Rings: [][]string{{"a", "b"}, {"c", "d"}}}
	a := equalSplit(cfg)
	owners := map[string]int{}
	for i := 0; i < 500; i++ {
		o, err := a.ownerOf(fmt.Sprintf("u%d", i), cfg.IntraGen)
		if err != nil {
			t.Fatal(err)
		}
		owners[o]++
	}
	if len(owners) != 4 {
		t.Fatalf("only %d owners used: %v", len(owners), owners)
	}
}

func TestLiveClusterEndToEnd(t *testing.T) {
	lc := startCluster(t, 4, 2, ClusterConfig{})
	client := &http.Client{Timeout: 5 * time.Second}
	url := "http://live/doc/7"
	entry := lc.Cfg.Addrs["live-00"]

	// First request: origin miss, stored locally (ad hoc placement).
	dr := getDoc(t, client, entry, url)
	if dr.Source != "origin" || !dr.Stored {
		t.Fatalf("first request: %+v", dr)
	}
	if dr.Doc.Version != 1 || dr.Doc.Size != 1007 {
		t.Fatalf("wrong doc: %+v", dr.Doc)
	}

	// Second request at the same node: local hit.
	dr = getDoc(t, client, entry, url)
	if dr.Source != "local" {
		t.Fatalf("second request source = %s, want local", dr.Source)
	}

	// Request at a different node: served by the peer holder.
	other := lc.Cfg.Addrs["live-01"]
	dr = getDoc(t, client, other, url)
	if dr.Source != "peer" {
		t.Fatalf("cross-node request source = %s, want peer", dr.Source)
	}
}

func TestLiveUpdatePropagation(t *testing.T) {
	lc := startCluster(t, 4, 2, ClusterConfig{})
	client := &http.Client{Timeout: 5 * time.Second}
	url := "http://live/doc/3"

	// Two nodes hold the doc.
	getDoc(t, client, lc.Cfg.Addrs["live-00"], url)
	getDoc(t, client, lc.Cfg.Addrs["live-01"], url)

	var pr PublishResponse
	if err := postJSON(client, lc.Cfg.OriginAddr+"/publish", PublishRequest{URL: url}, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Version != 2 {
		t.Fatalf("published version = %d, want 2", pr.Version)
	}
	if pr.Notified != 2 {
		t.Fatalf("notified = %d, want 2 holders", pr.Notified)
	}

	// Both nodes must now serve version 2 locally.
	for _, name := range []string{"live-00", "live-01"} {
		dr := getDoc(t, client, lc.Cfg.Addrs[name], url)
		if dr.Source != "local" || dr.Doc.Version != 2 {
			t.Fatalf("%s after update: %+v", name, dr)
		}
	}
}

func TestLivePublishUnknownDoc(t *testing.T) {
	lc := startCluster(t, 2, 2, ClusterConfig{})
	client := &http.Client{Timeout: 5 * time.Second}
	err := postJSON(client, lc.Cfg.OriginAddr+"/publish", PublishRequest{URL: "nope"}, nil)
	if err == nil {
		t.Fatal("publish of unknown document succeeded")
	}
}

func TestLiveRebalanceMovesLoadAndRecords(t *testing.T) {
	lc := startCluster(t, 4, 2, ClusterConfig{})
	client := &http.Client{Timeout: 5 * time.Second}

	// Generate skewed beacon load: hammer a handful of documents.
	for i := 0; i < 12; i++ {
		url := fmt.Sprintf("http://live/doc/%d", i)
		for k := 0; k < 8; k++ {
			getDoc(t, client, lc.Cfg.Addrs["live-02"], url)
		}
	}
	before := lc.Origin.Assignments()

	var rr RebalanceResponse
	if err := postJSON(client, lc.Cfg.OriginAddr+"/rebalance", struct{}{}, &rr); err != nil {
		t.Fatal(err)
	}
	after := lc.Origin.Assignments()

	// The layout must remain a valid partition on every ring.
	for ringIdx, subs := range after.Rings {
		next := 0
		for _, s := range subs {
			if s.Lo != next || s.Hi < s.Lo {
				t.Fatalf("ring %d broken partition: %+v", ringIdx, subs)
			}
			next = s.Hi + 1
		}
		if next != lc.Cfg.IntraGen {
			t.Fatalf("ring %d partition ends at %d", ringIdx, next)
		}
	}
	_ = before

	// Every document must still be resolvable and serve correctly after
	// the rebalance (records moved with their sub-ranges).
	for i := 0; i < 12; i++ {
		url := fmt.Sprintf("http://live/doc/%d", i)
		dr := getDoc(t, client, lc.Cfg.Addrs["live-03"], url)
		if dr.Doc.URL != url {
			t.Fatalf("doc %s broken after rebalance: %+v", url, dr)
		}
		if dr.Source == "origin" {
			t.Fatalf("doc %s lost its holders after rebalance", url)
		}
	}

	// A second rebalance with no new load must leave the layout stable.
	if err := postJSON(client, lc.Cfg.OriginAddr+"/rebalance", struct{}{}, &rr); err != nil {
		t.Fatal(err)
	}
}

func TestLiveStatsEndpoints(t *testing.T) {
	lc := startCluster(t, 2, 2, ClusterConfig{})
	client := &http.Client{Timeout: 5 * time.Second}
	getDoc(t, client, lc.Cfg.Addrs["live-00"], "http://live/doc/1")
	getDoc(t, client, lc.Cfg.Addrs["live-00"], "http://live/doc/1")

	st := cacheStats(t, client, lc.Cfg.Addrs["live-00"])
	if st.Node != "live-00" || st.StoredDocs != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.LocalHits != 1 || st.OriginMiss != 1 {
		t.Fatalf("hit accounting = %+v", st)
	}
	if st.HitRate != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", st.HitRate)
	}

	var os OriginStats
	if err := getJSON(client, lc.Cfg.OriginAddr+"/stats", &os); err != nil {
		t.Fatal(err)
	}
	if os.Documents != 200 || os.Fetches != 1 {
		t.Fatalf("origin stats = %+v", os)
	}
}

func TestLiveUtilityPlacement(t *testing.T) {
	lc := startCluster(t, 4, 2, ClusterConfig{UtilityPlacement: true})
	client := &http.Client{Timeout: 5 * time.Second}
	url := "http://live/doc/9"

	// First retrieval: first copy in the cloud, DAC=1 → stored.
	dr := getDoc(t, client, lc.Cfg.Addrs["live-00"], url)
	if !dr.Stored {
		t.Fatalf("first copy not stored under utility placement: %+v", dr)
	}
}

func TestLiveClusterBadConfig(t *testing.T) {
	if _, err := StartLocalCluster([]string{"a"}, 2, nil, ClusterConfig{}); err == nil {
		t.Fatal("undersized cluster accepted")
	}
	if _, err := NewCacheNode("ghost", ClusterConfig{IntraGen: 10, Addrs: map[string]string{}}); err == nil {
		t.Fatal("cache node without address accepted")
	}
	if _, err := NewCacheNode("a", ClusterConfig{IntraGen: 0, Addrs: map[string]string{"a": "x"}}); err == nil {
		t.Fatal("cache node with zero IntraGen accepted")
	}
	if _, err := NewOriginNode(ClusterConfig{IntraGen: 0}, nil); err == nil {
		t.Fatal("origin with zero IntraGen accepted")
	}
	if _, err := NewOriginNode(ClusterConfig{IntraGen: 5}, nil); err == nil {
		t.Fatal("origin without rings accepted")
	}
}

func TestLiveFetchMissingDoc(t *testing.T) {
	lc := startCluster(t, 2, 2, ClusterConfig{})
	client := &http.Client{Timeout: 5 * time.Second}
	var fr FetchResponse
	err := getJSON(client, lc.Cfg.Addrs["live-00"]+"/fetch?url=absent", &fr)
	if err != errNotFound {
		t.Fatalf("err = %v, want errNotFound", err)
	}
}

// A full failure-handling cycle: records are lazily replicated to ring
// siblings, a node crashes, the origin detects it, repairs the sub-range
// layout, and lookups for the dead beacon's documents keep working with
// their holder lists intact.
func TestLiveFailureRepairWithReplication(t *testing.T) {
	lc := startCluster(t, 4, 2, ClusterConfig{})
	client := &http.Client{Timeout: 5 * time.Second}

	// Populate: every node requests a slice of the catalog so each beacon
	// owns some records and some docs have holders.
	urls := make([]string, 24)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://live/doc/%d", i)
		nodeName := fmt.Sprintf("live-%02d", i%4)
		getDoc(t, client, lc.Cfg.Addrs[nodeName], urls[i])
	}

	// Lazy replication pass.
	if err := postJSON(client, lc.Cfg.OriginAddr+"/replicate", struct{}{}, nil); err != nil {
		t.Fatal(err)
	}

	// No dead nodes yet: repair is a no-op.
	var rr RepairResponse
	if err := postJSON(client, lc.Cfg.OriginAddr+"/repair", struct{}{}, &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Removed) != 0 {
		t.Fatalf("healthy cluster repaired: %+v", rr)
	}

	// Crash one node.
	if !lc.StopNode("live-01") {
		t.Fatal("StopNode failed")
	}
	if lc.StopNode("live-01") {
		t.Fatal("double StopNode succeeded")
	}

	if err := postJSON(client, lc.Cfg.OriginAddr+"/repair", struct{}{}, &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Removed) != 1 || rr.Removed[0] != "live-01" {
		t.Fatalf("repair removed %v, want [live-01]", rr.Removed)
	}

	// The layout must no longer mention the dead node and must still be a
	// valid partition per ring.
	after := lc.Origin.Assignments()
	for ringIdx, subs := range after.Rings {
		next := 0
		for _, s := range subs {
			if s.Node == "live-01" {
				t.Fatal("dead node still in assignment")
			}
			if s.Lo != next {
				t.Fatalf("ring %d broken partition after repair: %+v", ringIdx, subs)
			}
			next = s.Hi + 1
		}
		if next != lc.Cfg.IntraGen {
			t.Fatalf("ring %d partition ends at %d after repair", ringIdx, next)
		}
	}

	// Every document must still be servable from a surviving node, and
	// documents whose copies live on surviving holders must not fall back
	// to the origin (their records were recovered from replicas).
	recoveredWithHolders := 0
	for i, u := range urls {
		if i%4 == 1 {
			continue // stored only on the dead node
		}
		dr := getDoc(t, client, lc.Cfg.Addrs["live-00"], u)
		if dr.Doc.URL != u {
			t.Fatalf("doc %s unservable after repair", u)
		}
		if dr.Source != "origin" {
			recoveredWithHolders++
		}
	}
	if recoveredWithHolders == 0 {
		t.Fatal("no lookups survived the crash — replica promotion failed")
	}

	// Updates still propagate through the repaired layout.
	var pr PublishResponse
	if err := postJSON(client, lc.Cfg.OriginAddr+"/publish", PublishRequest{URL: urls[0]}, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Version != 2 {
		t.Fatalf("publish after repair version = %d", pr.Version)
	}
}

// Without the replication pass, a crash loses the dead beacon's records:
// lookups for its documents return empty holder lists and requests fall
// back to the origin.
func TestLiveFailureWithoutReplicationLosesRecords(t *testing.T) {
	lc := startCluster(t, 4, 2, ClusterConfig{})
	client := &http.Client{Timeout: 5 * time.Second}
	urls := make([]string, 24)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://live/doc/%d", i)
		getDoc(t, client, lc.Cfg.Addrs["live-02"], urls[i])
	}
	lc.StopNode("live-01")
	var rr RepairResponse
	if err := postJSON(client, lc.Cfg.OriginAddr+"/repair", struct{}{}, &rr); err != nil {
		t.Fatal(err)
	}
	// Documents beaconed at the dead node lost their records; a request at
	// a node that does NOT store them must go back to the origin for at
	// least one of them.
	originFalls := 0
	for _, u := range urls {
		dr := getDoc(t, client, lc.Cfg.Addrs["live-00"], u)
		if dr.Source == "origin" {
			originFalls++
		}
	}
	if originFalls == 0 {
		t.Fatal("expected some origin fallbacks after unreplicated crash")
	}
}

// Concurrent wire traffic against a live cluster must stay consistent
// (run with -race).
func TestLiveConcurrentTraffic(t *testing.T) {
	lc := startCluster(t, 4, 2, ClusterConfig{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			nodeName := fmt.Sprintf("live-%02d", worker%4)
			for i := 0; i < 40; i++ {
				url := fmt.Sprintf("http://live/doc/%d", (worker*7+i)%50)
				var dr DocResponse
				if err := getJSON(client, lc.Cfg.Addrs[nodeName]+"/doc?url="+queryEscape(url), &dr); err != nil {
					t.Error(err)
					return
				}
				if i%10 == 5 {
					_ = postJSON(client, lc.Cfg.OriginAddr+"/publish", PublishRequest{URL: url}, nil)
				}
			}
		}(w)
	}
	// Rebalances and replication race with the traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := &http.Client{Timeout: 10 * time.Second}
		for i := 0; i < 5; i++ {
			if err := postJSON(client, lc.Cfg.OriginAddr+"/rebalance", struct{}{}, nil); err != nil {
				t.Error(err)
				return
			}
			if err := postJSON(client, lc.Cfg.OriginAddr+"/replicate", struct{}{}, nil); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	// Every document must still serve.
	client := &http.Client{Timeout: 5 * time.Second}
	for i := 0; i < 50; i++ {
		url := fmt.Sprintf("http://live/doc/%d", i)
		dr := getDoc(t, client, lc.Cfg.Addrs["live-00"], url)
		if dr.Doc.URL != url {
			t.Fatalf("doc %s broken after concurrent stress", url)
		}
	}
}

func TestLiveSubrangesObservability(t *testing.T) {
	lc := startCluster(t, 4, 2, ClusterConfig{})
	client := &http.Client{Timeout: 5 * time.Second}
	var a Assignments
	if err := getJSON(client, lc.Cfg.Addrs["live-00"]+"/subranges", &a); err != nil {
		t.Fatal(err)
	}
	if len(a.Rings) != 2 {
		t.Fatalf("rings = %d", len(a.Rings))
	}
	for ringIdx, subs := range a.Rings {
		next := 0
		for _, s := range subs {
			if s.Lo != next {
				t.Fatalf("ring %d gap at %d", ringIdx, next)
			}
			next = s.Hi + 1
		}
		if next != lc.Cfg.IntraGen {
			t.Fatalf("ring %d ends at %d", ringIdx, next)
		}
	}
}

func TestMetricsEndpoints(t *testing.T) {
	lc := startCluster(t, 2, 2, ClusterConfig{})
	client := &http.Client{Timeout: 5 * time.Second}
	getDoc(t, client, lc.Cfg.Addrs["live-00"], "http://live/doc/1")

	fetchText := func(url string) string {
		resp, err := client.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("content type %q", ct)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}

	nodeMetrics := fetchText(lc.Cfg.Addrs["live-00"] + "/metrics")
	for _, want := range []string{
		"cachecloud_node_local_hits_total", "cachecloud_node_stored_documents",
		`node="live-00"`, "# TYPE",
	} {
		if !strings.Contains(nodeMetrics, want) {
			t.Fatalf("node metrics missing %q:\n%s", want, nodeMetrics)
		}
	}
	if !strings.Contains(nodeMetrics, "cachecloud_node_stored_documents{node=\"live-00\"} 1") {
		t.Fatalf("stored_documents gauge wrong:\n%s", nodeMetrics)
	}

	originMetrics := fetchText(lc.Cfg.OriginAddr + "/metrics")
	for _, want := range []string{
		"cachecloud_origin_documents 200", "cachecloud_origin_fetches_total 1",
		"cachecloud_origin_nodes_down 0",
	} {
		if !strings.Contains(originMetrics, want) {
			t.Fatalf("origin metrics missing %q:\n%s", want, originMetrics)
		}
	}
}

// A store-backed node must expose the durable-tier gauges; their closures
// only run at render time, so an actual scrape is the test.
func TestDurableMetricsExposition(t *testing.T) {
	lc := startCluster(t, 2, 2, ClusterConfig{StoreDir: t.TempDir()})
	client := &http.Client{Timeout: 5 * time.Second}
	getDoc(t, client, lc.Cfg.Addrs["live-00"], "http://live/doc/1")

	resp, err := client.Get(lc.Cfg.Addrs["live-00"] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"cachecloud_node_store_segments{node=\"live-00\"} 1",
		"cachecloud_node_store_bytes",
		"cachecloud_node_store_dead_bytes",
		"cachecloud_node_store_truncations_total",
		"cachecloud_node_store_compactions_total",
		"cachecloud_node_warm_boot{node=\"live-00\"} 0",
		"cachecloud_node_warm_recovered",
		"cachecloud_node_warm_revalidated_total",
		"cachecloud_node_warm_dropped_total",
		"cachecloud_node_durable_errors_total{node=\"live-00\"} 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("durable metrics missing %q:\n%s", want, text)
		}
	}
}

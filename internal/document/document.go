// Package document defines the dynamic-document model shared by every other
// package in the repository, together with the hash functions the paper uses
// to map documents onto beacon rings and intra-ring hash (IrH) values.
//
// The paper (Section 2.2) hashes a document's URL with MD5 and reduces the
// digest modulo the intra-ring hash generator (IntraGen) to obtain the IrH
// value, and modulo the number of beacon rings to pick the ring. Both
// reductions are implemented here so that every component — simulator, live
// node, and tests — agrees byte-for-byte on where a document lives.
package document

import (
	"crypto/md5"
	"encoding/binary"
	"fmt"
)

// Version identifies a revision of a document. The origin server increments
// it on every update; caches use it to decide whether a copy is stale.
type Version uint64

// Document is a dynamic web document as modelled by the paper: a URL
// (its identity), a payload size in bytes, and a monotonically increasing
// version stamped by the origin server.
type Document struct {
	// URL uniquely identifies the document. All hashing is over this string.
	URL string `json:"url"`
	// Size is the payload size in bytes. It drives the network-cost model
	// and the disk-space accounting in edge caches.
	Size int64 `json:"size"`
	// Version is the revision written by the origin server.
	Version Version `json:"version"`
}

// Copy is a cached replica of a document held by one edge cache.
type Copy struct {
	Doc Document
	// FetchedAt is the simulation time unit (or wall-clock second for live
	// nodes) at which the copy was stored.
	FetchedAt int64
}

// Stale reports whether the copy is older than the given version.
func (c Copy) Stale(v Version) bool { return c.Doc.Version < v }

// Hash is the 64-bit document hash derived from the leading bytes of the
// MD5 digest of the URL. Both the ring hash and the IrH value are reductions
// of this single value, mirroring the paper's use of one MD5 invocation.
type Hash uint64

// HashURL computes the document hash for a URL.
func HashURL(url string) Hash {
	sum := md5.Sum([]byte(url))
	return Hash(binary.BigEndian.Uint64(sum[:8]))
}

// TenantSep separates the tenant ID from the URL inside a tenant-scoped
// key. The unit separator cannot appear in a valid tenant ID (see
// internal/tenant's ValidID) and never appears in well-formed URLs, which
// makes TenantKey injective: no (tenant, url) pair collides with another.
const TenantSep = "\x1f"

// TenantKey folds a tenant ID into a document URL, producing the scoped
// key all per-tenant cache, record, and hash operations use. The empty
// tenant (the default tenant) maps to the URL unchanged, so single-tenant
// deployments hash, store, and serialize exactly as before.
func TenantKey(tenant, url string) string {
	if tenant == "" {
		return url
	}
	return tenant + TenantSep + url
}

// SplitTenantKey inverts TenantKey: a key carrying a tenant prefix splits
// into (tenant, url); any other key belongs to the default tenant.
func SplitTenantKey(key string) (tenant, url string) {
	for i := 0; i < len(key); i++ {
		if key[i] == TenantSep[0] {
			return key[:i], key[i+1:]
		}
	}
	return "", key
}

// HashURLTenant computes the document hash of the tenant-scoped key —
// the tenant ID is folded into the MD5 input, so two tenants can never
// collide on a record even for the same URL. The empty tenant hashes
// identically to HashURL(url).
func HashURLTenant(tenant, url string) Hash {
	return HashURL(TenantKey(tenant, url))
}

// RingIndex maps the hash onto one of numRings beacon rings using the
// static random hash of the paper's two-step beacon discovery process.
func (h Hash) RingIndex(numRings int) int {
	if numRings <= 0 {
		return 0
	}
	return int(h % Hash(numRings))
}

// IrH reduces the hash modulo the intra-ring hash generator, yielding the
// document's intra-ring hash value in [0, intraGen).
func (h Hash) IrH(intraGen int) int {
	if intraGen <= 0 {
		return 0
	}
	// Mix the hash before reducing so that RingIndex and IrH are not
	// correlated for small moduli with a common factor.
	x := uint64(h)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(intraGen))
}

// String implements fmt.Stringer for diagnostics.
func (d Document) String() string {
	return fmt.Sprintf("%s v%d (%dB)", d.URL, d.Version, d.Size)
}

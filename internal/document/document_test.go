package document

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestHashURLDeterministic(t *testing.T) {
	a := HashURL("http://example.com/scores/1")
	b := HashURL("http://example.com/scores/1")
	if a != b {
		t.Fatalf("hash not deterministic: %d != %d", a, b)
	}
	c := HashURL("http://example.com/scores/2")
	if a == c {
		t.Fatalf("distinct URLs collided: %d", a)
	}
}

func TestRingIndexRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		h := HashURL(fmt.Sprintf("u%d", i))
		for _, rings := range []int{1, 2, 5, 7, 10} {
			r := h.RingIndex(rings)
			if r < 0 || r >= rings {
				t.Fatalf("ring index %d out of [0,%d)", r, rings)
			}
		}
	}
}

func TestRingIndexDegenerate(t *testing.T) {
	h := HashURL("x")
	if got := h.RingIndex(0); got != 0 {
		t.Fatalf("RingIndex(0) = %d, want 0", got)
	}
	if got := h.IrH(0); got != 0 {
		t.Fatalf("IrH(0) = %d, want 0", got)
	}
	if got := h.IrH(-3); got != 0 {
		t.Fatalf("IrH(-3) = %d, want 0", got)
	}
}

func TestIrHRangeProperty(t *testing.T) {
	f := func(url string, gen uint16) bool {
		g := int(gen%5000) + 1
		v := HashURL(url).IrH(g)
		return v >= 0 && v < g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The intra-ring hash should spread documents roughly uniformly over the
// generator range; the paper relies on this to make contiguous sub-ranges
// meaningful units of load.
func TestIrHUniformity(t *testing.T) {
	const gen = 100
	const docs = 100000
	counts := make([]int, gen)
	for i := 0; i < docs; i++ {
		counts[HashURL(fmt.Sprintf("http://site/doc/%d", i)).IrH(gen)]++
	}
	mean := float64(docs) / gen
	for v, c := range counts {
		if float64(c) < mean*0.7 || float64(c) > mean*1.3 {
			t.Fatalf("IrH value %d has count %d, outside 30%% of mean %.0f", v, c, mean)
		}
	}
}

// Ring index and IrH value must not be correlated: documents in one ring
// should still cover the whole IrH range.
func TestRingAndIrHIndependent(t *testing.T) {
	const rings, gen = 5, 10
	seen := make(map[[2]int]bool)
	for i := 0; i < 20000; i++ {
		h := HashURL(fmt.Sprintf("d%d", i))
		seen[[2]int{h.RingIndex(rings), h.IrH(gen)}] = true
	}
	if len(seen) != rings*gen {
		t.Fatalf("only %d of %d (ring,IrH) combinations observed", len(seen), rings*gen)
	}
}

func TestCopyStale(t *testing.T) {
	c := Copy{Doc: Document{URL: "u", Version: 3}}
	if c.Stale(3) {
		t.Fatal("copy at same version must not be stale")
	}
	if c.Stale(2) {
		t.Fatal("copy newer than version must not be stale")
	}
	if !c.Stale(4) {
		t.Fatal("copy older than version must be stale")
	}
}

func TestDocumentString(t *testing.T) {
	d := Document{URL: "http://a/b", Size: 42, Version: 7}
	if got, want := d.String(), "http://a/b v7 (42B)"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

package landmark

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestClusterValidation(t *testing.T) {
	if _, err := Cluster(nil, Config{BinWidth: 10}); !errors.Is(err, ErrNoLandmarks) {
		t.Fatalf("err = %v, want ErrNoLandmarks", err)
	}
	if _, err := Cluster(nil, Config{Landmarks: DefaultLandmarks(), BinWidth: 0}); err == nil {
		t.Fatal("zero bin width accepted")
	}
}

func TestPointDistance(t *testing.T) {
	if d := (Point{0, 0}).Distance(Point{3, 4}); math.Abs(d-5) > 1e-12 {
		t.Fatalf("distance = %v, want 5", d)
	}
}

func TestClusterGroupsNearbyNodes(t *testing.T) {
	// Two tight clusters far apart must end up in two separate clouds.
	nodes := []Node{
		{ID: "a1", Pos: Point{50, 50}},
		{ID: "a2", Pos: Point{52, 51}},
		{ID: "a3", Pos: Point{51, 53}},
		{ID: "b1", Pos: Point{900, 900}},
		{ID: "b2", Pos: Point{903, 899}},
	}
	clouds, err := Cluster(nodes, Config{Landmarks: DefaultLandmarks(), BinWidth: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(clouds) != 2 {
		t.Fatalf("got %d clouds, want 2: %+v", len(clouds), clouds)
	}
	byMember := map[string]int{}
	for i, c := range clouds {
		for _, m := range c.Members {
			byMember[m] = i
		}
	}
	if byMember["a1"] != byMember["a2"] || byMember["a1"] != byMember["a3"] {
		t.Fatal("a-nodes split across clouds")
	}
	if byMember["b1"] != byMember["b2"] {
		t.Fatal("b-nodes split across clouds")
	}
	if byMember["a1"] == byMember["b1"] {
		t.Fatal("distant nodes merged")
	}
}

func TestClusterDeterministicOrder(t *testing.T) {
	nodes := []Node{
		{ID: "z", Pos: Point{100, 100}},
		{ID: "a", Pos: Point{101, 101}},
	}
	c1, err := Cluster(nodes, Config{Landmarks: DefaultLandmarks(), BinWidth: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(c1) != 1 || c1[0].Members[0] != "a" || c1[0].Members[1] != "z" {
		t.Fatalf("members not sorted: %+v", c1)
	}
}

func TestMergeSmallClouds(t *testing.T) {
	// One big cluster and one singleton: with MinCloudSize 2 the singleton
	// must be absorbed.
	nodes := []Node{
		{ID: "a1", Pos: Point{10, 10}},
		{ID: "a2", Pos: Point{12, 11}},
		{ID: "lone", Pos: Point{500, 100}},
	}
	clouds, err := Cluster(nodes, Config{Landmarks: DefaultLandmarks(), BinWidth: 40, MinCloudSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(clouds) != 1 {
		t.Fatalf("got %d clouds, want 1 after merging: %+v", len(clouds), clouds)
	}
	if len(clouds[0].Members) != 3 {
		t.Fatalf("merged cloud has %d members: %+v", len(clouds[0].Members), clouds[0])
	}
}

func TestMergeAllSmall(t *testing.T) {
	// Every bin is a singleton: with MinCloudSize 2 they all merge into one.
	nodes := []Node{
		{ID: "x", Pos: Point{10, 10}},
		{ID: "y", Pos: Point{500, 500}},
		{ID: "z", Pos: Point{900, 100}},
	}
	clouds, err := Cluster(nodes, Config{Landmarks: DefaultLandmarks(), BinWidth: 5, MinCloudSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(clouds) != 1 || len(clouds[0].Members) != 3 {
		t.Fatalf("clouds = %+v", clouds)
	}
}

func TestRandomTopologyRecoverable(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	nodes := RandomTopology(rng, 40, 4, 15)
	if len(nodes) != 40 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	clouds, err := Cluster(nodes, Config{Landmarks: DefaultLandmarks(), BinWidth: 120, MinCloudSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(clouds) < 2 {
		t.Fatalf("clustering found %d clouds from a 4-cluster topology", len(clouds))
	}
	total := 0
	for _, c := range clouds {
		total += len(c.Members)
		if len(c.Members) < 2 {
			t.Fatalf("cloud below minimum size: %+v", c)
		}
	}
	if total != 40 {
		t.Fatalf("nodes lost or duplicated: %d", total)
	}
}

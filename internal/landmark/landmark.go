// Package landmark implements the Internet-landmarks-based construction of
// cache clouds the paper assumes as given (its reference [12], "Constructing
// Cooperative Edge Cache Groups Using Selective Landmarks and Node
// Clustering"). Edge caches measure their round-trip distance to a set of
// landmark hosts; caches whose distance vectors fall into the same
// milestone bins are considered to be in close network proximity and are
// grouped into the same cache cloud.
//
// Real RTT measurements are replaced by distances in a synthetic 2-D
// network coordinate space (see DESIGN.md §2); the binning and clustering
// logic is the real mechanism.
package landmark

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// ErrNoLandmarks is returned when clustering is attempted without
// landmarks.
var ErrNoLandmarks = errors.New("landmark: at least one landmark required")

// Point is a position in the synthetic network coordinate space.
type Point struct {
	X, Y float64
}

// Distance returns the Euclidean distance — the stand-in for RTT.
func (p Point) Distance(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Node is an edge cache with a network position.
type Node struct {
	ID  string
	Pos Point
}

// Config parameterises clustering.
type Config struct {
	// Landmarks are the landmark host positions caches measure against.
	Landmarks []Point
	// BinWidth is the milestone bin width: two caches are "equally far"
	// from a landmark when floor(d/BinWidth) matches. Must be > 0.
	BinWidth float64
	// MinCloudSize merges bins smaller than this into the nearest larger
	// cloud (a cloud needs at least 2 caches for a beacon ring of 2;
	// 0 disables merging).
	MinCloudSize int
}

// Cloud is one resulting cache cloud.
type Cloud struct {
	// Signature is the milestone-bin vector shared by the members.
	Signature string
	// Members are the node IDs, sorted.
	Members []string
	// Centroid is the mean position of the members.
	Centroid Point
}

// Cluster groups nodes into cache clouds by landmark milestone binning.
func Cluster(nodes []Node, cfg Config) ([]Cloud, error) {
	if len(cfg.Landmarks) == 0 {
		return nil, ErrNoLandmarks
	}
	if cfg.BinWidth <= 0 {
		return nil, fmt.Errorf("landmark: bin width %v must be > 0", cfg.BinWidth)
	}
	bySig := make(map[string][]Node)
	for _, n := range nodes {
		bySig[signature(n.Pos, cfg)] = append(bySig[signature(n.Pos, cfg)], n)
	}
	clouds := make([]Cloud, 0, len(bySig))
	for sig, members := range bySig {
		clouds = append(clouds, makeCloud(sig, members))
	}
	sort.Slice(clouds, func(i, j int) bool { return clouds[i].Signature < clouds[j].Signature })

	if cfg.MinCloudSize > 1 {
		clouds = mergeSmall(clouds, cfg.MinCloudSize)
	}
	return clouds, nil
}

// signature computes the milestone-bin vector of a position.
func signature(p Point, cfg Config) string {
	var b strings.Builder
	for i, lm := range cfg.Landmarks {
		if i > 0 {
			b.WriteByte(',')
		}
		bin := int(p.Distance(lm) / cfg.BinWidth)
		fmt.Fprintf(&b, "%d", bin)
	}
	return b.String()
}

func makeCloud(sig string, members []Node) Cloud {
	c := Cloud{Signature: sig}
	for _, m := range members {
		c.Members = append(c.Members, m.ID)
		c.Centroid.X += m.Pos.X
		c.Centroid.Y += m.Pos.Y
	}
	n := float64(len(members))
	c.Centroid.X /= n
	c.Centroid.Y /= n
	sort.Strings(c.Members)
	return c
}

// mergeSmall folds clouds below the minimum size into the nearest (by
// centroid) cloud that meets it; if none does, everything merges into the
// largest cloud.
func mergeSmall(clouds []Cloud, minSize int) []Cloud {
	var big, small []Cloud
	for _, c := range clouds {
		if len(c.Members) >= minSize {
			big = append(big, c)
		} else {
			small = append(small, c)
		}
	}
	if len(big) == 0 {
		// Degenerate: merge everything into one cloud.
		all := Cloud{Signature: "merged"}
		var sx, sy float64
		var n int
		for _, c := range clouds {
			all.Members = append(all.Members, c.Members...)
			k := len(c.Members)
			sx += c.Centroid.X * float64(k)
			sy += c.Centroid.Y * float64(k)
			n += k
		}
		sort.Strings(all.Members)
		all.Centroid = Point{X: sx / float64(n), Y: sy / float64(n)}
		return []Cloud{all}
	}
	for _, s := range small {
		bestIdx, bestDist := 0, math.Inf(1)
		for i, b := range big {
			if d := s.Centroid.Distance(b.Centroid); d < bestDist {
				bestIdx, bestDist = i, d
			}
		}
		big[bestIdx].Members = append(big[bestIdx].Members, s.Members...)
		sort.Strings(big[bestIdx].Members)
	}
	return big
}

// RandomTopology synthesises nClusters groups of nodes around random
// cluster centres — an edge network whose caches have natural proximity
// structure for Cluster to discover. Node IDs are "edge-<i>".
func RandomTopology(rng *rand.Rand, nNodes, nClusters int, spread float64) []Node {
	if nClusters < 1 {
		nClusters = 1
	}
	centres := make([]Point, nClusters)
	for i := range centres {
		centres[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	nodes := make([]Node, nNodes)
	for i := range nodes {
		c := centres[i%nClusters]
		nodes[i] = Node{
			ID: fmt.Sprintf("edge-%02d", i),
			Pos: Point{
				X: c.X + rng.NormFloat64()*spread,
				Y: c.Y + rng.NormFloat64()*spread,
			},
		}
	}
	return nodes
}

// DefaultLandmarks returns a deterministic landmark set spanning the
// synthetic coordinate space.
func DefaultLandmarks() []Point {
	return []Point{
		{X: 0, Y: 0}, {X: 1000, Y: 0}, {X: 0, Y: 1000},
		{X: 1000, Y: 1000}, {X: 500, Y: 500},
	}
}

package simnet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"

	"cachecloud/internal/node"
)

// memNet dispatches node-to-node calls directly into the target's
// production http.Handler via httptest recorders: the full handler stack
// runs (routing, JSON decoding, status mapping) with no sockets and no
// goroutine handoff, so a call completes synchronously inside the
// caller's frame. Semantics mirror node.HTTPTransport: 404 surfaces as
// node.ErrNotFound, other non-2xx replies as an error carrying the
// status, and 2xx bodies decode into out.
type memNet struct {
	mu       sync.Mutex
	handlers map[string]http.Handler // URL host → handler
	// corrupt, when non-nil, may rewrite a request body in flight
	// (deliberate bug injection for harness self-tests). Returning nil
	// keeps the original body.
	corrupt func(method, path string, body []byte) []byte
}

func newMemNet() *memNet {
	return &memNet{handlers: make(map[string]http.Handler)}
}

// bindHandler registers the handler serving a base URL's host.
func (m *memNet) bindHandler(baseURL string, h http.Handler) {
	u, err := url.Parse(baseURL)
	host := baseURL
	if err == nil && u.Host != "" {
		host = u.Host
	}
	m.mu.Lock()
	m.handlers[host] = h
	m.mu.Unlock()
}

// setCorrupt installs the body-rewriting hook.
func (m *memNet) setCorrupt(f func(method, path string, body []byte) []byte) {
	m.mu.Lock()
	m.corrupt = f
	m.mu.Unlock()
}

// memTransport is one participant's handle on the in-memory network. It
// implements the same method set as node.HTTPTransport, so it satisfies
// both node.Transport and chaos.Inner.
type memTransport struct {
	net *memNet
}

func (m *memNet) transport() *memTransport { return &memTransport{net: m} }

// GetJSON implements the transport interface.
func (t *memTransport) GetJSON(ctx context.Context, url string, out any) error {
	return t.net.call(ctx, http.MethodGet, url, nil, out)
}

// PostJSON implements the transport interface.
func (t *memTransport) PostJSON(ctx context.Context, rawurl string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("simnet: marshal %s: %w", rawurl, err)
	}
	return t.net.call(ctx, http.MethodPost, rawurl, body, out)
}

// call performs one synchronous dispatch.
func (m *memNet) call(ctx context.Context, method, rawurl string, body []byte, out any) error {
	u, err := url.Parse(rawurl)
	if err != nil {
		return fmt.Errorf("simnet: %s %s: %w", method, rawurl, err)
	}
	m.mu.Lock()
	h := m.handlers[u.Host]
	corrupt := m.corrupt
	m.mu.Unlock()
	if h == nil {
		return fmt.Errorf("simnet: %s %s: no handler bound for host %q", method, rawurl, u.Host)
	}
	if corrupt != nil && body != nil {
		if mutated := corrupt(method, u.Path, body); mutated != nil {
			body = mutated
		}
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, rawurl, rd)
	req = req.WithContext(ctx)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tid := node.TenantFromContext(ctx); tid != "" {
		req.Header.Set(node.TenantHeader, tid)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	resp := rec.Result()
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return node.ErrNotFound
	}
	if resp.StatusCode/100 != 2 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("simnet: %s %s: status %d: %s", method, rawurl, resp.StatusCode, string(b))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

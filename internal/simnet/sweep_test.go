package simnet

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestSweep runs the generated-schedule sweep over many seeds and requires
// every invariant to hold on each. Short mode trims the seed count; CI runs
// the full 200-seed sweep (see .github/workflows and `make simsweep`).
func TestSweep(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 25
	}
	for seed := 0; seed < seeds; seed++ {
		res, err := Run(Config{Seed: int64(seed)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Failed() {
			t.Fatalf("seed %d failed:\n%s\n--- schedule ---\n%s\n--- log ---\n%s",
				seed, strings.Join(res.Failures, "\n"), Encode(res.Schedule), res.Log)
		}
	}
}

// TestInjectedBugIsCaught verifies the harness detects a deliberately
// planted protocol bug: the injection shaves one record off every
// heartbeat's RecordsHeld, so the origin under-counts RecordsLost at the
// crash and the accounting invariant must trip with a failing seed.
func TestInjectedBugIsCaught(t *testing.T) {
	caught := false
	for seed := int64(0); seed < 5; seed++ {
		res, err := Run(Config{Seed: seed, Inject: "heartbeat-undercount"})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Failed() {
			continue
		}
		caught = true
		found := false
		for _, f := range res.Failures {
			if strings.Contains(f, "accounting") {
				found = true
			}
		}
		if !found {
			t.Fatalf("seed %d: injection tripped only non-accounting failures:\n%s",
				seed, strings.Join(res.Failures, "\n"))
		}
		break
	}
	if !caught {
		t.Fatal("heartbeat-undercount injection was not caught by any of seeds 0..4")
	}
}

// partitionSchedule builds the PR-2 chaos end-to-end scenario as an explicit
// schedule: warm load, publishes, replication, a partition mid-traffic, the
// detection window with failover load against the surviving ring sibling,
// then heal, readmission, reconcile, and a full quiescent check.
func partitionSchedule(victim string) []Event {
	hb := 500 * time.Millisecond
	return []Event{
		{At: 50 * time.Millisecond, Kind: EvLoad, N: 40},
		{At: 150 * time.Millisecond, Kind: EvPublish, N: 3},
		{At: 900 * time.Millisecond, Kind: EvReplicate},
		{At: 950 * time.Millisecond, Kind: EvCrash, Node: victim},
		{At: 950*time.Millisecond + 5*hb, Kind: EvCheckAccounting, Node: victim},
		{At: 1000*time.Millisecond + 5*hb, Kind: EvLoad, N: 20},
		{At: 1100*time.Millisecond + 5*hb, Kind: EvHeal, Node: victim},
		{At: 1100*time.Millisecond + 7*hb + hb/2, Kind: EvReconcile},
		{At: 1200*time.Millisecond + 7*hb + hb/2, Kind: EvCheck},
	}
}

// TestPartitionConvergence ports the real-socket chaos end-to-end test
// (partition mid-load, then convergence after heal) into the simulator and
// runs it for ten seeds, rotating the victim. The original httptest-based
// variant remains in internal/node as the real-transport smoke test.
func TestPartitionConvergence(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		victim := fmt.Sprintf("n%d", seed%4)
		res, err := Run(Config{Seed: seed, Schedule: partitionSchedule(victim)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Failed() {
			t.Fatalf("seed %d (victim %s) failed:\n%s\n--- log ---\n%s",
				seed, victim, strings.Join(res.Failures, "\n"), res.Log)
		}
		if !strings.Contains(res.Log, "crash node="+victim) {
			t.Fatalf("seed %d: log lacks crash of %s:\n%s", seed, victim, res.Log)
		}
	}
}

// TestWarmSweep runs the warm-restart sweep: generated schedules where
// every recovery is a full process restart over the durable store
// (heal-warm) followed by the origin-fetch bound check (check-warm). Short
// mode trims the seed count; CI runs the full 200 seeds.
func TestWarmSweep(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 25
	}
	for seed := 0; seed < seeds; seed++ {
		res, err := Run(Config{Seed: int64(seed), Warm: true, StoreDir: t.TempDir()})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Failed() {
			t.Fatalf("seed %d failed:\n%s\n--- schedule ---\n%s\n--- log ---\n%s",
				seed, strings.Join(res.Failures, "\n"), Encode(res.Schedule), res.Log)
		}
		if !strings.Contains(res.Log, "heal-warm node=") {
			t.Fatalf("seed %d: warm run executed no heal-warm:\n%s", seed, res.Log)
		}
		if !strings.Contains(res.Log, "check-warm node=") {
			t.Fatalf("seed %d: warm run checked no warm invariant:\n%s", seed, res.Log)
		}
	}
}

// TestWarmRestartRecoversState pins the warm-restart payoff on an explicit
// schedule: the victim caches documents, crashes, heals warm, and the
// harness's inline invariants require boot recovery to match the stored
// set at crash and revalidation to issue zero origin fetches. The log
// must show a non-trivial recovery (the warm boot did real work).
func TestWarmRestartRecoversState(t *testing.T) {
	hb := 500 * time.Millisecond
	victim := "n1"
	schedule := []Event{
		{At: 50 * time.Millisecond, Kind: EvLoad, N: 60},
		{At: 150 * time.Millisecond, Kind: EvPublish, N: 3},
		{At: 900 * time.Millisecond, Kind: EvReplicate},
		{At: 950 * time.Millisecond, Kind: EvCrash, Node: victim},
		{At: 950*time.Millisecond + 5*hb, Kind: EvCheckAccounting, Node: victim},
		{At: 1000*time.Millisecond + 5*hb, Kind: EvHealWarm, Node: victim},
		{At: 1000*time.Millisecond + 7*hb + hb/2, Kind: EvLoad, N: 30},
		{At: 1100*time.Millisecond + 7*hb + hb/2, Kind: EvCheckWarm, Node: victim},
		{At: 1150*time.Millisecond + 7*hb + hb/2, Kind: EvReconcile},
		{At: 1250*time.Millisecond + 7*hb + hb/2, Kind: EvCheck},
	}
	for seed := int64(0); seed < 10; seed++ {
		res, err := Run(Config{Seed: seed, Schedule: schedule, StoreDir: t.TempDir()})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Failed() {
			t.Fatalf("seed %d failed:\n%s\n--- log ---\n%s",
				seed, strings.Join(res.Failures, "\n"), res.Log)
		}
		if strings.Contains(res.Log, "heal-warm node="+victim+" recovered=0") {
			t.Fatalf("seed %d: warm heal recovered nothing:\n%s", seed, res.Log)
		}
	}
}

// TestWarmScheduleRoundTrips checks that warm schedules survive the text
// encoding (replay files must be able to carry heal-warm/check-warm).
func TestWarmScheduleRoundTrips(t *testing.T) {
	evs := Generate(7, GenConfig{Warm: true})
	decoded, err := Decode(Encode(evs))
	if err != nil {
		t.Fatalf("decode warm schedule: %v", err)
	}
	if len(decoded) != len(evs) {
		t.Fatalf("round trip lost events: %d != %d", len(decoded), len(evs))
	}
	sawWarm := false
	for i, ev := range decoded {
		if ev != evs[i] {
			t.Fatalf("event %d changed: %+v != %+v", i, ev, evs[i])
		}
		if ev.Kind == EvHealWarm {
			sawWarm = true
		}
	}
	if !sawWarm {
		t.Fatal("warm generation produced no heal-warm events")
	}
}

// TestWarmGenerationBackCompat pins that Warm=false generation is
// byte-identical to the pre-warm generator: existing replay files and the
// cold sweep results stay valid.
func TestWarmGenerationBackCompat(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		cold := Generate(seed, GenConfig{})
		for _, ev := range cold {
			if ev.Kind == EvHealWarm || ev.Kind == EvCheckWarm {
				t.Fatalf("seed %d: cold generation emitted %s", seed, ev.Kind)
			}
		}
	}
}

// TestMinimize checks the ddmin-style shrinker against a synthetic
// predicate, then against a real failing simulation.
func TestMinimize(t *testing.T) {
	// Synthetic: failure requires the crash and the check, nothing else.
	evs := Generate(3, GenConfig{Nodes: 4, Rounds: 1})
	needs := func(cand []Event) bool {
		hasCrash, hasCheck := false, false
		for _, ev := range cand {
			if ev.Kind == EvCrash {
				hasCrash = true
			}
			if ev.Kind == EvCheckAccounting {
				hasCheck = true
			}
		}
		return hasCrash && hasCheck
	}
	min := Minimize(evs, needs)
	if len(min) != 2 {
		t.Fatalf("synthetic minimize kept %d events, want 2: %v", len(min), min)
	}
	if !needs(min) {
		t.Fatal("minimized schedule no longer satisfies the predicate")
	}

	// Real: minimize an injected-bug failure; the result must still fail
	// and be no larger than the original schedule.
	cfg := Config{Seed: 1, Inject: "heartbeat-undercount"}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Skip("seed 1 does not trip the injection; covered by TestInjectedBugIsCaught")
	}
	fails := func(cand []Event) bool {
		c := cfg
		c.Schedule = cand
		r, err := Run(c)
		return err == nil && r.Failed()
	}
	min = Minimize(res.Schedule, fails)
	if len(min) > len(res.Schedule) {
		t.Fatalf("minimize grew the schedule: %d > %d", len(min), len(res.Schedule))
	}
	if !fails(min) {
		t.Fatal("minimized real schedule no longer fails")
	}
	t.Logf("minimized %d events to %d", len(res.Schedule), len(min))
}

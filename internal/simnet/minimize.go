package simnet

// Minimize shrinks a failing schedule to a smaller one that still fails,
// ddmin-style: repeatedly try removing contiguous chunks (halving the
// chunk size down to single events) and keep any removal under which the
// run still reports at least one invariant violation. fails must be a
// deterministic predicate — typically a closure over the failing Config
// that substitutes its Schedule and calls Run. The result preserves event
// order and is guaranteed to still satisfy fails.
func Minimize(schedule []Event, fails func([]Event) bool) []Event {
	cur := append([]Event(nil), schedule...)
	if !fails(cur) {
		return cur // not reproducible; nothing to minimize
	}
	for chunk := len(cur) / 2; chunk >= 1; {
		removed := false
		for start := 0; start+chunk <= len(cur); {
			cand := make([]Event, 0, len(cur)-chunk)
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[start+chunk:]...)
			if len(cand) > 0 && fails(cand) {
				cur = cand
				removed = true
				// Do not advance start: the next chunk slid into place.
			} else {
				start += chunk
			}
		}
		if !removed || chunk == 1 {
			if chunk == 1 {
				break
			}
		}
		chunk /= 2
		if chunk < 1 {
			chunk = 1
		}
	}
	return cur
}

package simnet

import (
	"strings"
	"testing"
	"time"
)

// TestSingleSeedRunsClean runs one full generated scenario and requires
// every invariant to hold.
func TestSingleSeedRunsClean(t *testing.T) {
	res, err := Run(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("seed 1 failed:\n%s\n--- log ---\n%s", strings.Join(res.Failures, "\n"), res.Log)
	}
	for _, want := range []string{"load", "publish", "crash", "heal", "check-accounting", "check "} {
		if !strings.Contains(res.Log, want) {
			t.Fatalf("log lacks %q:\n%s", want, res.Log)
		}
	}
}

// TestDeterministicReplay requires byte-identical logs for the same seed.
func TestDeterministicReplay(t *testing.T) {
	a, err := Run(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Log != b.Log {
		t.Fatalf("same seed produced different logs:\n--- first ---\n%s\n--- second ---\n%s", a.Log, b.Log)
	}
	if Encode(a.Schedule) != Encode(b.Schedule) {
		t.Fatal("same seed produced different schedules")
	}
}

// TestScheduleRoundTrip checks Encode/Decode are inverse on generated
// schedules.
func TestScheduleRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		evs := Generate(seed, GenConfig{Nodes: 4})
		enc := Encode(evs)
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if Encode(dec) != enc {
			t.Fatalf("seed %d: round trip changed schedule:\n%s\nvs\n%s", seed, enc, Encode(dec))
		}
	}
}

// TestVirtualClockOrdering checks timer firing order and Stop semantics.
func TestVirtualClockOrdering(t *testing.T) {
	c := NewVirtualClock()
	var fired []int
	c.AfterFunc(30*time.Millisecond, func() { fired = append(fired, 3) })
	c.AfterFunc(10*time.Millisecond, func() { fired = append(fired, 1) })
	tm := c.AfterFunc(20*time.Millisecond, func() { fired = append(fired, 2) })
	// Same-deadline timers fire in registration order.
	c.AfterFunc(10*time.Millisecond, func() { fired = append(fired, 11) })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	// A callback scheduling a new due timer must fire it in the same pass.
	c.AfterFunc(15*time.Millisecond, func() {
		c.AfterFunc(5*time.Millisecond, func() { fired = append(fired, 20) })
	})
	c.Advance(40 * time.Millisecond)
	want := []int{1, 11, 20, 3}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

package simnet

import (
	"strings"
	"testing"
)

// TestTenantSweep runs the multi-tenant sweep: generated schedules with
// a tenant-storm phase per round, under the per-tenant byte-quota
// invariant (checked before and after every event), per-tenant
// conservation, and the zero-weight-tenant shed law. Short mode trims
// the seed count; CI runs the full 200 seeds (`make tenant-sweep`).
func TestTenantSweep(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 25
	}
	for seed := 0; seed < seeds; seed++ {
		res, err := Run(Config{Seed: int64(seed), Tenants: 3})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Failed() {
			t.Fatalf("seed %d failed:\n%s\n--- schedule ---\n%s\n--- log ---\n%s",
				seed, strings.Join(res.Failures, "\n"), Encode(res.Schedule), res.Log)
		}
		if !strings.Contains(res.Log, "tenant-storm n=") {
			t.Fatalf("seed %d: tenant run executed no tenant-storm:\n%s", seed, res.Log)
		}
	}
}

// TestTenantRunDeterminism pins that multi-tenant runs stay
// reproducible: the same seed yields a byte-identical event log.
func TestTenantRunDeterminism(t *testing.T) {
	first, err := Run(Config{Seed: 11, Tenants: 3})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(Config{Seed: 11, Tenants: 3})
	if err != nil {
		t.Fatal(err)
	}
	if first.Log != second.Log {
		t.Fatalf("tenant run not deterministic:\n--- first ---\n%s\n--- second ---\n%s", first.Log, second.Log)
	}
}

// TestTenantGenerationBackCompat pins that Tenants==0 generation is
// byte-identical to the pre-tenancy generator: every tenant rng draw
// lives inside the Tenants>0 branch, so existing replay files, sweep
// results, and golden logs stay valid.
func TestTenantGenerationBackCompat(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		for _, ev := range Generate(seed, GenConfig{}) {
			if ev.Kind == EvTenantStorm {
				t.Fatalf("seed %d: single-tenant generation emitted %s", seed, ev.Kind)
			}
		}
		// Tenants==0 must be the identity, not merely storm-free: the field
		// must not perturb the rng stream of a schedule that never reads it.
		single := Encode(Generate(seed, GenConfig{}))
		explicitZero := Encode(Generate(seed, GenConfig{Tenants: 0}))
		if single != explicitZero {
			t.Fatalf("seed %d: Tenants:0 diverged from the zero value:\n%s\n---\n%s",
				seed, explicitZero, single)
		}
	}
}

// TestTenantScheduleRoundTrips checks that tenant schedules survive the
// text encoding (replay files must be able to carry tenant-storm).
func TestTenantScheduleRoundTrips(t *testing.T) {
	evs := Generate(7, GenConfig{Tenants: 3})
	decoded, err := Decode(Encode(evs))
	if err != nil {
		t.Fatalf("decode tenant schedule: %v", err)
	}
	if len(decoded) != len(evs) {
		t.Fatalf("round trip lost events: %d != %d", len(decoded), len(evs))
	}
	sawStorm := false
	for i, ev := range decoded {
		if ev != evs[i] {
			t.Fatalf("event %d changed: %+v != %+v", i, ev, evs[i])
		}
		if ev.Kind == EvTenantStorm {
			sawStorm = true
		}
	}
	if !sawStorm {
		t.Fatal("tenant generation produced no tenant-storm events")
	}
}

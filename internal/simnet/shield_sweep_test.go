package simnet

import (
	"strings"
	"testing"
	"time"
)

// TestShieldSweep runs the two-tier sweep: generated schedules with a
// shield-tier fault phase per round (shield crash, failover traffic,
// publishes and scoped/global purges past the crashed shield, heal) and
// the cross-tier invariants armed — exactly-once update delivery per
// shield on a healthy tier, scoped-purge completeness, and shield-tier
// freshness plus purge-generation catch-up at quiescent points. Short
// mode trims the seed count; CI runs the full 200-seed sweep under -race.
func TestShieldSweep(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 25
	}
	for seed := 0; seed < seeds; seed++ {
		res, err := Run(Config{Seed: int64(seed), Shields: 2})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Failed() {
			t.Fatalf("seed %d failed:\n%s\n--- schedule ---\n%s\n--- log ---\n%s",
				seed, strings.Join(res.Failures, "\n"), Encode(res.Schedule), res.Log)
		}
		if !strings.Contains(res.Log, "shield-crash node=") {
			t.Fatalf("seed %d: two-tier run crashed no shield:\n%s", seed, res.Log)
		}
		if !strings.Contains(res.Log, "purge url=") {
			t.Fatalf("seed %d: two-tier run executed no purge:\n%s", seed, res.Log)
		}
	}
}

// TestShieldWarmSweep combines both robustness layers: every cache
// recovery is a warm process restart over the durable store while the
// shield tier takes its own fault phase per round.
func TestShieldWarmSweep(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 10
	}
	for seed := 0; seed < seeds; seed++ {
		res, err := Run(Config{Seed: int64(seed), Shields: 2, Warm: true, StoreDir: t.TempDir()})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Failed() {
			t.Fatalf("seed %d failed:\n%s\n--- schedule ---\n%s\n--- log ---\n%s",
				seed, strings.Join(res.Failures, "\n"), Encode(res.Schedule), res.Log)
		}
	}
}

// shieldSchedule is the explicit two-tier scenario: warm the cloud
// through the shields, publish on a healthy tier (strict exactly-once
// checks), crash a shield, fail traffic over, land a publish and a
// global purge past the crashed shield, heal, reconcile (the shield
// resyncs versions and purge generations from the origin), then run the
// strict purges and the full quiescent check.
func shieldSchedule(victim string) []Event {
	return []Event{
		{At: 50 * time.Millisecond, Kind: EvLoad, N: 60},
		{At: 150 * time.Millisecond, Kind: EvPublish, N: 3},
		{At: 250 * time.Millisecond, Kind: EvShieldCrash, Node: victim},
		{At: 300 * time.Millisecond, Kind: EvLoad, N: 20},
		{At: 350 * time.Millisecond, Kind: EvPublish, N: 2},
		{At: 400 * time.Millisecond, Kind: EvPurgeGlobal},
		{At: 450 * time.Millisecond, Kind: EvShieldHeal, Node: victim},
		{At: 500 * time.Millisecond, Kind: EvReconcile},
		{At: 550 * time.Millisecond, Kind: EvPurgeScoped},
		{At: 580 * time.Millisecond, Kind: EvPurgeGlobal},
		{At: 650 * time.Millisecond, Kind: EvPublish, N: 2},
		{At: 750 * time.Millisecond, Kind: EvCheck},
	}
}

// TestShieldTierConvergence replays the explicit two-tier scenario for
// ten seeds, rotating the crashed shield, and requires the log to show
// the shield actually resynced at the reconcile (the crash window landed
// real repair work on it).
func TestShieldTierConvergence(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		victim := "s0"
		if seed%2 == 1 {
			victim = "s1"
		}
		res, err := Run(Config{Seed: seed, Shields: 2, Schedule: shieldSchedule(victim)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Failed() {
			t.Fatalf("seed %d (victim %s) failed:\n%s\n--- log ---\n%s",
				seed, victim, strings.Join(res.Failures, "\n"), res.Log)
		}
		if !strings.Contains(res.Log, "shield-crash node="+victim) {
			t.Fatalf("seed %d: log lacks shield crash of %s:\n%s", seed, victim, res.Log)
		}
	}
}

// TestShieldScheduleRoundTrips checks that every shield event kind
// survives the text encoding (replay files must be able to carry the
// two-tier fault phase), kind by kind.
func TestShieldScheduleRoundTrips(t *testing.T) {
	perKind := []Event{
		{At: 10 * time.Millisecond, Kind: EvShieldCrash, Node: "s1"},
		{At: 20 * time.Millisecond, Kind: EvShieldHeal, Node: "s1"},
		{At: 30 * time.Millisecond, Kind: EvPurgeScoped},
		{At: 40 * time.Millisecond, Kind: EvPurgeGlobal},
	}
	for _, want := range perKind {
		decoded, err := Decode(Encode([]Event{want}))
		if err != nil {
			t.Fatalf("decode %s: %v", want.Kind, err)
		}
		if len(decoded) != 1 || decoded[0] != want {
			t.Fatalf("%s round trip changed the event: %+v != %+v", want.Kind, decoded, want)
		}
	}

	evs := Generate(7, GenConfig{Shields: 2})
	decoded, err := Decode(Encode(evs))
	if err != nil {
		t.Fatalf("decode shield schedule: %v", err)
	}
	if len(decoded) != len(evs) {
		t.Fatalf("round trip lost events: %d != %d", len(decoded), len(evs))
	}
	saw := map[EventKind]bool{}
	for i, ev := range decoded {
		if ev != evs[i] {
			t.Fatalf("event %d changed: %+v != %+v", i, ev, evs[i])
		}
		saw[ev.Kind] = true
	}
	for _, kind := range []EventKind{EvShieldCrash, EvShieldHeal, EvPurgeScoped} {
		if !saw[kind] {
			t.Fatalf("shield generation produced no %s events", kind)
		}
	}
}

// TestShieldGenerationBackCompat pins that Shields=0 generation is
// byte-identical to the single-tier generator: existing replay files and
// the single-tier sweep results stay valid.
func TestShieldGenerationBackCompat(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		single := Generate(seed, GenConfig{})
		for _, ev := range single {
			switch ev.Kind {
			case EvShieldCrash, EvShieldHeal, EvPurgeScoped, EvPurgeGlobal:
				t.Fatalf("seed %d: single-tier generation emitted %s", seed, ev.Kind)
			}
		}
	}
}

// TestShieldInjectedBugIsCaught verifies the cross-tier invariants
// detect a deliberately planted protocol bug — origin→shield update
// pushes carry a decremented version, so the shield tier silently serves
// stale documents — and that ddmin shrinks a failing schedule to one
// that still trips it.
func TestShieldInjectedBugIsCaught(t *testing.T) {
	var failing Config
	caught := false
	for seed := int64(0); seed < 5; seed++ {
		cfg := Config{Seed: seed, Shields: 2, Inject: "supdate-stale"}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Failed() {
			continue
		}
		caught = true
		found := false
		for _, f := range res.Failures {
			if strings.Contains(f, "shield") {
				found = true
			}
		}
		if !found {
			t.Fatalf("seed %d: injection tripped only non-shield failures:\n%s",
				seed, strings.Join(res.Failures, "\n"))
		}
		failing = cfg
		failing.Schedule = res.Schedule
		break
	}
	if !caught {
		t.Fatal("supdate-stale injection was not caught by any of seeds 0..4")
	}

	fails := func(cand []Event) bool {
		c := failing
		c.Schedule = cand
		r, err := Run(c)
		return err == nil && r.Failed()
	}
	min := Minimize(failing.Schedule, fails)
	if len(min) > len(failing.Schedule) {
		t.Fatalf("minimize grew the schedule: %d > %d", len(min), len(failing.Schedule))
	}
	if !fails(min) {
		t.Fatal("minimized shield schedule no longer fails")
	}
	t.Logf("minimized %d events to %d", len(failing.Schedule), len(min))
}

package simnet

import (
	"strings"
	"testing"
)

// FuzzScheduleDecode fuzzes the schedule text format. For any input that
// Decode accepts, the decoded schedule must be sorted by offset and the
// Encode/Decode pair must be a fixpoint (encoding the decoded events and
// decoding again reproduces the same encoding) — the property replay files
// and minimized failure reports rely on. Inputs Decode rejects must fail
// with an error, never a panic.
func FuzzScheduleDecode(f *testing.F) {
	for seed := int64(0); seed < 5; seed++ {
		f.Add(Encode(Generate(seed, GenConfig{Nodes: 4})))
	}
	f.Add("# comment only\n\n")
	f.Add("at=1s kind=load n=5")
	f.Add("at=0s kind=crash node=n0\nat=2s kind=check")
	f.Add("at=1s kind=burst n=12\nat=2s kind=hotdoc n=8\nat=3s kind=check")
	f.Add(Encode(Generate(1, GenConfig{Nodes: 4, Shields: 2})))
	f.Add("at=1s kind=shield-crash node=s0\nat=2s kind=shield-heal node=s0")
	f.Add("at=1s kind=purge-scoped\nat=2s kind=purge-global\nat=3s kind=check")
	f.Add(Encode(Generate(2, GenConfig{Nodes: 4, Tenants: 3})))
	f.Add("at=1s kind=tenant-storm n=9\nat=2s kind=check")
	f.Add("at=1s kind=bogus")
	f.Add("at=1s at=2s kind=load")
	f.Add("at=-1s kind=load")
	f.Add("kind=load")
	f.Add("at=1s kind=load extra=1")
	f.Fuzz(func(t *testing.T, text string) {
		evs, err := Decode(text)
		if err != nil {
			return // rejected input: only the absence of a panic matters
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].At < evs[i-1].At {
				t.Fatalf("decoded schedule not sorted at %d: %v > %v", i, evs[i-1].At, evs[i].At)
			}
		}
		enc := Encode(evs)
		again, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of encoded schedule failed: %v\n%s", err, enc)
		}
		if got := Encode(again); got != enc {
			t.Fatalf("encode/decode not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", enc, got)
		}
		if strings.Count(enc, "\n") != len(evs)+1 {
			t.Fatalf("encoding has %d lines for %d events:\n%s", strings.Count(enc, "\n"), len(evs), enc)
		}
	})
}

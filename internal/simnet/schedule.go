package simnet

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Event is one entry of a fault schedule. At is the virtual-time offset
// from simulation start; events execute in At order (ties in list order).
type Event struct {
	At   time.Duration
	Kind EventKind
	Node string // crash/heal target (empty otherwise)
	N    int    // kind-specific count (loads, publishes, drop permille)
}

// EventKind enumerates the schedule actions the harness can execute.
type EventKind string

const (
	// EvLoad performs N client document requests spread over the live
	// nodes (seeded choice of entry node and document).
	EvLoad EventKind = "load"
	// EvPublish publishes updates for N seeded catalog documents through
	// the origin and checks the fan-out invariant on each.
	EvPublish EventKind = "publish"
	// EvReplicate triggers the origin's lazy-replication pass (every live
	// beacon pushes its records to its ring sibling).
	EvReplicate EventKind = "replicate"
	// EvRebalance runs one origin sub-range determination cycle (load
	// collection, intra-ring algorithm, install everywhere).
	EvRebalance EventKind = "rebalance"
	// EvCrash partitions Node away from everyone and snapshots its record
	// count for the accounting invariant.
	EvCrash EventKind = "crash"
	// EvHeal reconnects Node.
	EvHeal EventKind = "heal"
	// EvHealWarm restarts a crashed Node the way a real process restart
	// would: the old node object is discarded (memory state gone), a
	// fresh one is built over the same durable store directory, boots
	// warm from the log, rejoins via heartbeat, and revalidates its
	// recovered copies against the beacons — with the invariant that
	// revalidation issues zero origin fetches. Requires Config.Warm (or
	// an explicit StoreDir).
	EvHealWarm EventKind = "heal-warm"
	// EvDrop sets the network drop probability to N permille (N=0 closes
	// the degradation window).
	EvDrop EventKind = "drop"
	// EvReconcile runs one holder-side anti-entropy pass on every live
	// node in name order.
	EvReconcile EventKind = "reconcile"
	// EvBurst concentrates N client requests on one seeded entry node
	// (seeded document choice per request) and checks the overload
	// conservation invariant on the delta: every offered request is
	// exactly one of served, shed, or failed, with positive goodput on a
	// clean network.
	EvBurst EventKind = "burst"
	// EvHotDoc issues N client requests for one seeded hot document
	// across seeded entry nodes (a miss-storm shape: many requesters, one
	// document) under the same conservation invariant as EvBurst.
	EvHotDoc EventKind = "hotdoc"
	// EvCheckAccounting verifies RecordsLost/RecordsRecovered deltas
	// against the white-box ledger taken at the preceding crash.
	EvCheckAccounting EventKind = "check-accounting"
	// EvCheckWarm verifies the warm-restart invariant against the ledger
	// taken at the preceding heal-warm: the restarted node's origin
	// fetches since the heal must not exceed the documents that were
	// genuinely stale or never cached there (catalog − revalidated-fresh,
	// plus any publishes inside the window) — i.e. a warm restart never
	// degenerates into a cold-miss storm.
	EvCheckWarm EventKind = "check-warm"
	// EvCheck runs the quiescent invariants: view agreement, reachability,
	// freshness (the exact-partition invariant runs after every event).
	EvCheck EventKind = "check"
	// EvShieldCrash partitions shield Node away from everyone (two-tier
	// runs only). Cloud fetches fail over along the shield ring; publishes
	// and purges while the shield is down are caught up at its next
	// reconcile.
	EvShieldCrash EventKind = "shield-crash"
	// EvShieldHeal reconnects shield Node.
	EvShieldHeal EventKind = "shield-heal"
	// EvPurgeScoped purges one seeded document's edge copies in cloud
	// scope: caches drop the copy, shields keep theirs, so the next miss is
	// absorbed by the shield tier. Completeness is checked immediately when
	// the whole hierarchy is reachable.
	EvPurgeScoped EventKind = "purge-scoped"
	// EvPurgeGlobal purges one seeded document everywhere: the origin bumps
	// the URL's purge generation and both tiers drop their copies; a shield
	// that missed the purge applies the generation at its next reconcile.
	EvPurgeGlobal EventKind = "purge-global"
	// EvTenantStorm issues N client requests spread over seeded tenants,
	// entry nodes, and documents (multi-tenant runs only). Per-tenant
	// conservation is checked on the counter deltas, a zero-weight tenant
	// must be shed entirely, and the per-tenant byte-quota invariant runs
	// after the event like after every other.
	EvTenantStorm EventKind = "tenant-storm"
)

// GenConfig tunes the schedule generator.
type GenConfig struct {
	Nodes     int           // cluster size
	Rounds    int           // crash/recover rounds
	Heartbeat time.Duration // node heartbeat interval
	MissK     int           // missed beats before a node is declared dead
	// Warm switches every round's recovery to the warm-restart shape:
	// heal-warm instead of heal, post-heal load traffic, and a
	// check-warm of the origin-fetch bound. Warm=false generation is
	// byte-identical to pre-warm schedules (the rng stream is untouched).
	Warm bool
	// Shields, when positive, appends a shield-tier fault phase to every
	// round: one shield crashes, traffic fails over along the shield ring,
	// publishes and purges land past it, and it heals before the round's
	// closing reconcile. Shields==0 generation is byte-identical to
	// single-tier schedules (the rng stream is untouched).
	Shields int
	// Tenants, when positive, adds a tenant-storm phase to every round:
	// seeded multi-tenant traffic under the per-tenant quota and
	// conservation invariants. Tenants==0 generation is byte-identical to
	// single-tenant schedules (the rng stream is untouched).
	Tenants int
}

// Generate builds a seeded fault schedule of Rounds crash/recover rounds.
// Each round follows the discipline that makes the accounting invariant
// exact: load traffic (optionally under a short drop window), publishes
// while the cluster is healthy, a quiet gap of at least one heartbeat so
// the victim's last beat reports its final record count, a replication
// pass so the sibling replica matches, then the crash, the detection
// window, the accounting check, the heal, and a reconcile+settle before
// the full quiescent check. Drop windows are kept shorter than MissK-1
// heartbeats so degradation alone can never trip the failure detector.
func Generate(seed int64, cfg GenConfig) []Event {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 3
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 500 * time.Millisecond
	}
	if cfg.MissK <= 0 {
		cfg.MissK = 3
	}
	rng := rand.New(rand.NewSource(seed))
	hb := cfg.Heartbeat
	var evs []Event
	t := 50 * time.Millisecond
	add := func(kind EventKind, nodeName string, n int) {
		evs = append(evs, Event{At: t, Kind: kind, Node: nodeName, N: n})
	}

	// Warm-up: populate caches and beacon records while fully healthy.
	add(EvLoad, "", 30+rng.Intn(20))
	t += 100 * time.Millisecond

	for round := 0; round < cfg.Rounds; round++ {
		// Load phase, sometimes under a degradation window.
		if rng.Intn(2) == 0 {
			add(EvDrop, "", 100+rng.Intn(150)) // 10–25% drops
			t += 20 * time.Millisecond
			add(EvLoad, "", 10+rng.Intn(15))
			t += hb // shorter than (MissK-1) heartbeats
			add(EvDrop, "", 0)
			t += 20 * time.Millisecond
		}
		add(EvLoad, "", 15+rng.Intn(15))
		t += 50 * time.Millisecond
		// Overload shapes: a concentrated burst at one entry node and a
		// hot-document storm, each in roughly half the rounds.
		if rng.Intn(2) == 0 {
			add(EvBurst, "", 15+rng.Intn(20))
			t += 30 * time.Millisecond
		}
		if rng.Intn(2) == 0 {
			add(EvHotDoc, "", 10+rng.Intn(20))
			t += 30 * time.Millisecond
		}
		// Multi-tenant storm phase (tenant-aware runs only — the extra rng
		// draws live entirely inside this branch, so Tenants==0 schedules
		// are byte-identical to single-tenant generation).
		if cfg.Tenants > 0 {
			add(EvTenantStorm, "", 12+rng.Intn(16))
			t += 30 * time.Millisecond
		}
		add(EvPublish, "", 2+rng.Intn(3))
		if rng.Intn(3) == 0 {
			t += 50 * time.Millisecond
			add(EvRebalance, "", 0)
		}

		// Quiet gap ≥ one heartbeat, then replicate: the victim's last
		// beat and its sibling's replica both reflect the final records.
		t += hb + hb/2
		add(EvReplicate, "", 0)

		// Crash a seeded victim and wait out the detection window.
		victim := fmt.Sprintf("n%d", rng.Intn(cfg.Nodes))
		t += 50 * time.Millisecond
		add(EvCrash, victim, 0)
		t += time.Duration(cfg.MissK+2) * hb
		add(EvCheckAccounting, victim, 0)

		// Recover: heal, let it heartbeat back in, reconcile, settle. In
		// warm mode the heal is a full process restart over the durable
		// store, followed by post-heal traffic and the origin-fetch bound
		// check while the network is clean.
		t += 50 * time.Millisecond
		if cfg.Warm {
			add(EvHealWarm, victim, 0)
			t += 2*hb + hb/2
			add(EvLoad, "", 15+rng.Intn(15))
			t += 50 * time.Millisecond
			add(EvCheckWarm, victim, 0)
			t += 50 * time.Millisecond
		} else {
			add(EvHeal, victim, 0)
			t += 2*hb + hb/2
		}
		// Shield-tier fault phase (two-tier runs only — the extra rng draws
		// live entirely inside this branch, so Shields==0 schedules are
		// untouched). One shield crashes while the cache tier is healthy,
		// loads fail over along the shield ring, publishes and purges land
		// past the crashed shield, then it heals — the round's closing
		// reconcile catches it up before the quiescent check.
		if cfg.Shields > 0 {
			shieldVictim := fmt.Sprintf("s%d", rng.Intn(cfg.Shields))
			add(EvShieldCrash, shieldVictim, 0)
			t += 50 * time.Millisecond
			add(EvLoad, "", 10+rng.Intn(10))
			t += 50 * time.Millisecond
			add(EvPublish, "", 1+rng.Intn(2))
			t += 50 * time.Millisecond
			if rng.Intn(2) == 0 {
				add(EvPurgeScoped, "", 0)
				t += 30 * time.Millisecond
			}
			if rng.Intn(3) == 0 {
				add(EvPurgeGlobal, "", 0)
				t += 30 * time.Millisecond
			}
			add(EvShieldHeal, shieldVictim, 0)
			t += 50 * time.Millisecond
			// Post-heal traffic and purges with the full tier live: these
			// run under the strict cross-tier checks (exactly-once delivery
			// per shield, scoped-purge completeness).
			add(EvPurgeScoped, "", 0)
			t += 30 * time.Millisecond
			if rng.Intn(2) == 0 {
				add(EvPurgeGlobal, "", 0)
				t += 30 * time.Millisecond
			}
		}
		add(EvReconcile, "", 0)
		t += 100 * time.Millisecond
		add(EvCheck, "", 0)
		t += 100 * time.Millisecond
	}
	return evs
}

// Encode renders a schedule in the line-based text format, one event per
// line, suitable for replay files and failure reports.
func Encode(evs []Event) string {
	var b strings.Builder
	b.WriteString("# simnet schedule v1\n")
	for _, ev := range evs {
		fmt.Fprintf(&b, "at=%s kind=%s", ev.At, ev.Kind)
		if ev.Node != "" {
			fmt.Fprintf(&b, " node=%s", ev.Node)
		}
		if ev.N != 0 {
			fmt.Fprintf(&b, " n=%d", ev.N)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// validKinds guards Decode against arbitrary input.
var validKinds = map[EventKind]bool{
	EvLoad: true, EvPublish: true, EvReplicate: true, EvRebalance: true,
	EvCrash: true, EvHeal: true, EvHealWarm: true, EvDrop: true, EvReconcile: true,
	EvBurst: true, EvHotDoc: true,
	EvCheckAccounting: true, EvCheckWarm: true, EvCheck: true,
	EvShieldCrash: true, EvShieldHeal: true,
	EvPurgeScoped: true, EvPurgeGlobal: true,
	EvTenantStorm: true,
}

// Decode parses the text format produced by Encode. Blank lines and
// #-comments are ignored. Events are returned sorted by At (stable), so
// a hand-edited file need not be pre-sorted.
func Decode(text string) ([]Event, error) {
	var evs []Event
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var ev Event
		seen := map[string]bool{}
		for _, field := range strings.Fields(line) {
			key, val, ok := strings.Cut(field, "=")
			if !ok || val == "" {
				return nil, fmt.Errorf("simnet: line %d: malformed field %q", lineNo+1, field)
			}
			if seen[key] {
				return nil, fmt.Errorf("simnet: line %d: duplicate field %q", lineNo+1, key)
			}
			seen[key] = true
			switch key {
			case "at":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("simnet: line %d: bad at=%q", lineNo+1, val)
				}
				ev.At = d
			case "kind":
				k := EventKind(val)
				if !validKinds[k] {
					return nil, fmt.Errorf("simnet: line %d: unknown kind %q", lineNo+1, val)
				}
				ev.Kind = k
			case "node":
				ev.Node = val
			case "n":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("simnet: line %d: bad n=%q", lineNo+1, val)
				}
				ev.N = n
			default:
				return nil, fmt.Errorf("simnet: line %d: unknown field %q", lineNo+1, key)
			}
		}
		if !seen["at"] || !seen["kind"] {
			return nil, fmt.Errorf("simnet: line %d: missing at= or kind=", lineNo+1)
		}
		evs = append(evs, ev)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs, nil
}

package simnet

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"cachecloud/internal/document"
	"cachecloud/internal/node"
	"cachecloud/internal/node/chaos"
	"cachecloud/internal/obs"
	"cachecloud/internal/tenant"
)

// Config parameterises one simulation run. The zero value of every field
// selects the default noted on it.
type Config struct {
	// Seed drives the schedule generator, the load/publish choices, and
	// the chaos network's coin flips. Same seed → byte-identical run.
	Seed int64
	// Nodes is the cluster size (default 4; must be a multiple of
	// RingSize for even rings).
	Nodes int
	// RingSize is the number of beacon points per ring (default 2).
	RingSize int
	// Docs is the catalog size (default 40).
	Docs int
	// IntraGen is the intra-ring hash generator (default 64).
	IntraGen int
	// Heartbeat is the node heartbeat interval in virtual time (default
	// 500ms).
	Heartbeat time.Duration
	// MissK is how many missed beats declare a node dead (default 3).
	MissK int
	// Rounds is the number of crash/recover rounds the generator emits
	// (default 3).
	Rounds int
	// Schedule overrides the generated schedule when non-nil (replay and
	// minimization).
	Schedule []Event
	// Inject enables a deliberate bug for harness self-tests. Supported:
	// "heartbeat-undercount" (heartbeats under-report RecordsHeld by one,
	// which the accounting invariant must catch).
	Inject string
	// Warm gives every node a durable store and switches the generated
	// schedule's recovery phase to warm restarts (heal-warm + check-warm
	// with the origin-fetch bound invariant).
	Warm bool
	// Shields interposes a shield tier of that many caches between the
	// cloud and the origin: cloud misses resolve cloud → shield → origin,
	// publishes fan origin → shield → subscribed clouds, and purges carry a
	// global/cloud scope. The generated schedule gains a shield-tier fault
	// phase per round and the cross-tier invariants (exactly-once update
	// delivery per shield, scoped-purge completeness, shield freshness at
	// quiescent points) are armed. 0 (the default) is single-tier.
	Shields int
	// Tenants, when positive, registers that many tenants (t0, t1, …)
	// with deterministic weighted quotas, adds a tenant-storm phase to
	// every generated round, and arms the multi-tenant invariants: every
	// tenant's resident bytes stay within its byte quota on every node
	// after every event, per-tenant conservation is exact, and a
	// zero-weight tenant is shed entirely. 0 (the default) is
	// single-tenant and byte-identical to previous runs.
	Tenants int
	// StoreDir is the durable-tier directory root for the run. Empty with
	// Warm set (or a schedule containing heal-warm events) creates a
	// temporary directory that is removed when the run ends.
	StoreDir string
	// Tracer, when non-nil, receives EvSimFault for every injected fault
	// and EvInvariant for every invariant evaluation (Count = violations),
	// stamped with virtual-time milliseconds so traces stay deterministic.
	Tracer *obs.Tracer
}

func (c *Config) defaults() {
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.RingSize <= 0 {
		c.RingSize = 2
	}
	if c.Docs <= 0 {
		c.Docs = 40
	}
	if c.IntraGen <= 0 {
		c.IntraGen = 64
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 500 * time.Millisecond
	}
	if c.MissK <= 0 {
		c.MissK = 3
	}
	if c.Rounds <= 0 {
		c.Rounds = 3
	}
}

// Result is the outcome of one simulation run.
type Result struct {
	Seed     int64
	Schedule []Event
	// Log is the deterministic event log: one line per executed event and
	// invariant outcome. Identical across runs of the same Config.
	Log string
	// Failures lists every invariant violation, in order.
	Failures []string
}

// Failed reports whether any invariant was violated.
func (r Result) Failed() bool { return len(r.Failures) > 0 }

// sim is the mutable state of one run.
type sim struct {
	cfg    Config
	clock  *VirtualClock
	base   time.Time
	mem    *memNet
	net    *chaos.Network
	rng    *rand.Rand // load/publish choices (separate from chaos coin)
	origin *node.OriginNode
	caches map[string]*node.CacheNode
	names  []string
	docs   []document.Document
	// tenantNames are the registered tenant IDs (multi-tenant runs only);
	// tenantQuotas is the quota table nodes were configured with, retained
	// for the per-event byte-quota invariant.
	tenantNames  []string
	tenantQuotas map[string]tenant.Quota
	// Shield-tier state (two-tier runs only). shieldDown tracks crashed
	// shields; shieldsStale is armed when a publish or purge lands while
	// the tier is impaired (or a cloud fetched around it, detected via the
	// degraded-counter delta) and cleared by a reconcile with the whole
	// hierarchy healthy — the strict cross-tier checks only run between a
	// clearing reconcile and the next impairment.
	shields      map[string]*node.ShieldNode
	shieldNames  []string
	shieldDown   map[string]bool
	shieldsStale bool
	degraded0    int64
	client       interface {
		GetJSON(ctx context.Context, url string, out any) error
		PostJSON(ctx context.Context, url string, in, out any) error
	}
	stops []func()
	// clcfg is the cluster config nodes were built from, retained so a
	// warm heal can construct a replacement node over the same store
	// directory. hbStops tracks each node's heartbeat loop so the
	// replacement can take over the name cleanly.
	clcfg   node.ClusterConfig
	hbStops map[string]func()

	tracer *obs.Tracer

	partitioned  map[string]bool
	dropPermille int
	pendingCrash *crashLedger
	pendingWarm  *warmLedger

	lines    []string
	failures []string
}

// crashLedger is the white-box accounting snapshot taken at a crash.
type crashLedger struct {
	victim  string
	expect  int   // records the victim held when partitioned
	lost0   int64 // origin RecordsLost before the crash
	rec0    int64 // origin RecordsRecovered before the crash
	stored0 int   // documents the victim stored (log context)
}

// warmLedger is the white-box snapshot taken at a warm heal, consumed by
// the check-warm invariant.
type warmLedger struct {
	victim    string
	recovered int // entries the replacement node booted from the log
	kept      int // recovered copies the beacons confirmed fresh
	dropped   int // recovered copies ruled stale and tombstoned
	published int // publishes inside the warm window (slack for the bound)
}

// Run executes one simulation: build the cluster on a virtual clock and
// an in-memory transport, execute the (generated or supplied) fault
// schedule, and check invariants between events.
func Run(cfg Config) (Result, error) {
	cfg.defaults()

	schedule := cfg.Schedule
	if schedule == nil {
		schedule = Generate(cfg.Seed, GenConfig{
			Nodes: cfg.Nodes, Rounds: cfg.Rounds,
			Heartbeat: cfg.Heartbeat, MissK: cfg.MissK,
			Warm: cfg.Warm, Shields: cfg.Shields, Tenants: cfg.Tenants,
		})
	}
	// A warm run (or a replayed schedule with heal-warm events) needs a
	// durable store directory; create a throwaway one when none was given.
	if cfg.StoreDir == "" && (cfg.Warm || hasWarmEvents(schedule)) {
		dir, err := os.MkdirTemp("", "simnet-warm-")
		if err != nil {
			return Result{}, fmt.Errorf("simnet: temp store dir: %w", err)
		}
		defer func() { _ = os.RemoveAll(dir) }()
		cfg.StoreDir = dir
	}

	s := &sim{
		cfg:         cfg,
		clock:       NewVirtualClock(),
		mem:         newMemNet(),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		caches:      make(map[string]*node.CacheNode),
		shields:     make(map[string]*node.ShieldNode),
		shieldDown:  make(map[string]bool),
		hbStops:     make(map[string]func()),
		partitioned: make(map[string]bool),
		tracer:      cfg.Tracer,
	}
	s.base = s.clock.Now()
	if err := s.build(); err != nil {
		return Result{}, err
	}
	defer s.stop()
	for _, ev := range schedule {
		s.clock.RunUntil(s.base.Add(ev.At))
		s.checkPartitionInvariant("pre:" + string(ev.Kind))
		s.checkTenantQuotaInvariant("pre:" + string(ev.Kind))
		s.exec(ev)
		s.checkPartitionInvariant("post:" + string(ev.Kind))
		s.checkTenantQuotaInvariant("post:" + string(ev.Kind))
	}
	return Result{
		Seed:     cfg.Seed,
		Schedule: schedule,
		Log:      strings.Join(s.lines, "\n") + "\n",
		Failures: s.failures,
	}, nil
}

// build wires the cluster: every node's production handler bound on the
// in-memory network, outbound calls through the shared chaos fault plane,
// heartbeats and the origin failure detector running on the virtual
// clock.
func (s *sim) build() error {
	cfg := s.cfg
	s.net = chaos.NewNetwork(chaos.Config{Seed: cfg.Seed})
	if cfg.Inject != "" {
		hook, err := injectHook(cfg.Inject)
		if err != nil {
			return err
		}
		s.mem.setCorrupt(hook)
	}

	clcfg := node.ClusterConfig{
		IntraGen: cfg.IntraGen,
		Addrs:    make(map[string]string, cfg.Nodes),
		Clock:    s.clock,
		// Warm runs give every node a durable tier. Fsync is off: the
		// harness models crash-by-partition (the process survives), so the
		// log is always flushed by Close before a replacement reopens it.
		StoreDir: cfg.StoreDir,
		Fsync:    "never",
		Tracer:   cfg.Tracer,
	}
	for i := 0; i < cfg.Nodes; i++ {
		name := fmt.Sprintf("n%d", i)
		s.names = append(s.names, name)
		clcfg.Addrs[name] = fmt.Sprintf("http://%s.sim", name)
	}
	// The shield config is part of clcfg before any cache node is built:
	// the nodes' shield routers derive the failover ring from it.
	if cfg.Shields > 0 {
		clcfg.CloudID = "cloud0"
		clcfg.Shields = make([]string, cfg.Shields)
		clcfg.ShieldAddrs = make(map[string]string, cfg.Shields)
		for i := 0; i < cfg.Shields; i++ {
			name := fmt.Sprintf("s%d", i)
			clcfg.Shields[i] = name
			s.shieldNames = append(s.shieldNames, name)
			clcfg.ShieldAddrs[name] = fmt.Sprintf("http://%s.sim", name)
		}
	}
	// Tenant registration happens in clcfg before any node is built so
	// every node boots with the same quota table. Weights alternate, the
	// byte quotas step up per tenant (all smaller than the catalog so
	// tenant-fair eviction actually engages), and runs with at least three
	// tenants get one zero-weight tenant whose every request must shed.
	if cfg.Tenants > 0 {
		clcfg.Tenants = make(map[string]tenant.Quota, cfg.Tenants)
		for i := 0; i < cfg.Tenants; i++ {
			name := fmt.Sprintf("t%d", i)
			w := 1 + i%2
			if cfg.Tenants >= 3 && i == cfg.Tenants-1 {
				w = 0
			}
			clcfg.Tenants[name] = tenant.Quota{Weight: w, Bytes: int64(2500 + 1500*i)}
			s.tenantNames = append(s.tenantNames, name)
		}
		s.tenantQuotas = clcfg.Tenants
	}
	numRings := cfg.Nodes / cfg.RingSize
	if numRings < 1 {
		numRings = 1
	}
	clcfg.Rings = make([][]string, numRings)
	for i, name := range s.names {
		r := i % numRings
		clcfg.Rings[r] = append(clcfg.Rings[r], name)
	}
	clcfg.OriginAddr = "http://origin.sim"

	s.docs = make([]document.Document, cfg.Docs)
	for i := range s.docs {
		s.docs[i] = document.Document{URL: fmt.Sprintf("http://cloud/doc/%03d", i), Size: int64(1000 + i)}
	}

	for _, name := range s.shieldNames {
		sn, err := node.NewShieldNodeWithTransport(name, clcfg, s.net.Transport(name, s.mem.transport()))
		if err != nil {
			return err
		}
		s.shields[name] = sn
		s.mem.bindHandler(clcfg.ShieldAddrs[name], sn.Handler())
		s.net.Bind(name, clcfg.ShieldAddrs[name])
	}
	for _, name := range s.names {
		cn, err := node.NewCacheNodeWithTransport(name, clcfg, s.net.Transport(name, s.mem.transport()))
		if err != nil {
			return err
		}
		if cfg.Tracer != nil {
			cn.SetTracer(cfg.Tracer)
		}
		s.caches[name] = cn
		s.mem.bindHandler(clcfg.Addrs[name], cn.Handler())
		s.net.Bind(name, clcfg.Addrs[name])
	}
	on, err := node.NewOriginNodeWithTransport(clcfg, s.docs, s.net.Transport("origin", s.mem.transport()))
	if err != nil {
		return err
	}
	s.origin = on
	if cfg.Tracer != nil {
		on.SetTracer(cfg.Tracer)
	}
	s.mem.bindHandler(clcfg.OriginAddr, on.Handler())
	s.net.Bind("origin", clcfg.OriginAddr)
	s.client = s.net.Transport("client", s.mem.transport())

	s.clcfg = clcfg

	// Periodic machinery on the virtual clock, started in fixed order so
	// the timer queue is identical across runs. Heartbeat stops are keyed
	// by name so a warm heal can stop the old node's loop and install the
	// replacement's.
	for _, name := range s.names {
		s.hbStops[name] = s.caches[name].StartHeartbeat(s.cfg.Heartbeat)
	}
	s.stops = append(s.stops, s.origin.StartFailureDetector(s.cfg.Heartbeat, s.cfg.MissK))
	return nil
}

func (s *sim) stop() {
	for _, stop := range s.hbStops {
		stop()
	}
	for _, stop := range s.stops {
		stop()
	}
	for _, name := range s.names {
		_ = s.caches[name].Close()
	}
	for _, name := range s.shieldNames {
		_ = s.shields[name].Close()
	}
}

// hasWarmEvents reports whether a schedule contains warm-restart events
// (which require a store directory).
func hasWarmEvents(evs []Event) bool {
	for _, ev := range evs {
		if ev.Kind == EvHealWarm || ev.Kind == EvCheckWarm {
			return true
		}
	}
	return false
}

// injectHook resolves a named deliberate bug to its wire-corruption hook.
func injectHook(name string) (func(method, path string, body []byte) []byte, error) {
	switch name {
	case "heartbeat-undercount":
		return func(method, path string, body []byte) []byte {
			if method != "POST" || path != "/heartbeat" {
				return nil
			}
			var hb node.HeartbeatRequest
			if err := json.Unmarshal(body, &hb); err != nil || hb.RecordsHeld == 0 {
				return nil
			}
			hb.RecordsHeld--
			mutated, err := json.Marshal(hb)
			if err != nil {
				return nil
			}
			return mutated
		}, nil
	case "supdate-stale":
		// Origin→shield update pushes carry a decremented version, so the
		// shield tier silently serves stale documents — the cross-tier
		// fan-out invariant must catch it.
		return func(method, path string, body []byte) []byte {
			if method != "POST" || path != "/supdate" {
				return nil
			}
			var ur node.UpdateRequest
			if err := json.Unmarshal(body, &ur); err != nil || ur.Doc.Version == 0 {
				return nil
			}
			ur.Doc.Version--
			mutated, err := json.Marshal(ur)
			if err != nil {
				return nil
			}
			return mutated
		}, nil
	default:
		return nil, fmt.Errorf("simnet: unknown injection %q", name)
	}
}

// vt renders the current virtual offset for log lines.
func (s *sim) vt() string { return s.clock.Now().Sub(s.base).String() }

func (s *sim) logf(format string, args ...any) {
	s.lines = append(s.lines, fmt.Sprintf("t=%s ", s.vt())+fmt.Sprintf(format, args...))
}

func (s *sim) failf(format string, args ...any) {
	msg := fmt.Sprintf("t=%s ", s.vt()) + fmt.Sprintf(format, args...)
	s.failures = append(s.failures, msg)
	s.lines = append(s.lines, "FAIL "+msg)
}

// traceFault emits an EvSimFault protocol event when tracing is on.
func (s *sim) traceFault(nodeName string, n int64) {
	if s.tracer == nil {
		return
	}
	s.tracer.Emit(obs.Event{
		Time: int64(s.clock.Now().Sub(s.base) / time.Millisecond),
		Kind: obs.EvSimFault, Node: nodeName, Count: n,
	})
}

// traceInvariant emits an EvInvariant event carrying the number of new
// violations this evaluation produced. Designed for defer:
// `defer s.traceInvariant("accounting", len(s.failures))`.
func (s *sim) traceInvariant(name string, before int) {
	if s.tracer == nil {
		return
	}
	s.tracer.Emit(obs.Event{
		Time: int64(s.clock.Now().Sub(s.base) / time.Millisecond),
		Kind: obs.EvInvariant, Node: name, Count: int64(len(s.failures) - before),
	})
}

// clean reports whether the network is currently fault-free (no
// partitions, no drop window) — the condition under which the strict
// per-publish fan-out check is valid.
func (s *sim) clean() bool { return len(s.partitioned) == 0 && s.dropPermille == 0 }

// livePeers returns the cache names not currently partitioned, sorted.
func (s *sim) livePeers() []string {
	out := make([]string, 0, len(s.names))
	for _, name := range s.names {
		if !s.partitioned[name] {
			out = append(out, name)
		}
	}
	return out
}

// liveShields returns the shield names not currently crashed, sorted.
func (s *sim) liveShields() []string {
	out := make([]string, 0, len(s.shieldNames))
	for _, name := range s.shieldNames {
		if !s.shieldDown[name] {
			out = append(out, name)
		}
	}
	return out
}

// degradedTotal sums the clouds' shield-bypass counters: a non-zero delta
// since the last healthy reconcile means some copy was fetched straight
// from the origin and carries no shield subscription.
func (s *sim) degradedTotal() int64 {
	var total int64
	for _, name := range s.names {
		total += s.caches[name].ShieldDegraded()
	}
	return total
}

// shieldsOK reports whether the strict cross-tier checks are valid right
// now: shields configured, clean network, full shield tier live, and no
// unrepaired staleness. A fresh degraded-fetch delta is folded in here —
// it arms shieldsStale exactly like an impaired-tier publish would.
func (s *sim) shieldsOK() bool {
	if len(s.shieldNames) == 0 {
		return false
	}
	if d := s.degradedTotal(); d != s.degraded0 {
		s.degraded0 = d
		s.shieldsStale = true
	}
	return s.clean() && len(s.shieldDown) == 0 && !s.shieldsStale
}

// exec runs one schedule event.
func (s *sim) exec(ev Event) {
	switch ev.Kind {
	case EvLoad:
		s.execLoad(ev.N)
	case EvPublish:
		s.execPublish(ev.N)
	case EvReplicate:
		nodes, err := s.origin.TriggerReplication()
		s.logf("replicate nodes=%d err=%v", nodes, err != nil)
	case EvRebalance:
		resp, err := s.origin.Rebalance()
		s.logf("rebalance moves=%d err=%v", resp.Moves, err != nil)
	case EvCrash:
		s.execCrash(ev.Node)
	case EvHeal:
		delete(s.partitioned, ev.Node)
		s.net.Heal(ev.Node)
		s.traceFault(ev.Node, 0)
		s.logf("heal node=%s", ev.Node)
	case EvHealWarm:
		s.execHealWarm(ev.Node)
	case EvCheckWarm:
		s.execCheckWarm(ev.Node)
	case EvDrop:
		s.dropPermille = ev.N
		s.net.SetDropProb(float64(ev.N) / 1000)
		s.traceFault("", int64(ev.N))
		s.logf("drop permille=%d", ev.N)
	case EvReconcile:
		s.execReconcile()
	case EvBurst:
		entry := s.names[s.rng.Intn(len(s.names))]
		s.execStorm("burst", entry, ev.N, func() document.Document {
			return s.docs[s.rng.Intn(len(s.docs))]
		})
	case EvHotDoc:
		hot := s.docs[s.rng.Intn(len(s.docs))]
		s.execStorm("hotdoc", "", ev.N, func() document.Document { return hot })
	case EvCheckAccounting:
		s.checkAccounting(ev.Node)
	case EvCheck:
		s.checkQuiescent()
	case EvShieldCrash:
		s.execShieldCrash(ev.Node)
	case EvShieldHeal:
		delete(s.shieldDown, ev.Node)
		s.net.Heal(ev.Node)
		s.traceFault(ev.Node, 0)
		s.logf("shield-heal node=%s", ev.Node)
	case EvPurgeScoped:
		s.execPurge(node.PurgeScopeCloud)
	case EvPurgeGlobal:
		s.execPurge(node.PurgeScopeGlobal)
	case EvTenantStorm:
		s.execTenantStorm(ev.N)
	default:
		s.failf("unknown event kind %q", ev.Kind)
	}
}

// execLoad performs n client requests against seeded entry nodes.
func (s *sim) execLoad(n int) {
	ok, failed, degraded, failedOver := 0, 0, 0, 0
	for i := 0; i < n; i++ {
		entry := s.names[s.rng.Intn(len(s.names))]
		doc := s.docs[s.rng.Intn(len(s.docs))]
		target := fmt.Sprintf("http://%s.sim/doc?url=%s", entry, url.QueryEscape(doc.URL))
		var dr node.DocResponse
		if err := s.client.GetJSON(context.Background(), target, &dr); err != nil {
			failed++
			continue
		}
		ok++
		if dr.Degraded {
			degraded++
		}
		if dr.FailedOver {
			failedOver++
		}
	}
	s.logf("load n=%d ok=%d failed=%d degraded=%d failedover=%d", n, ok, failed, degraded, failedOver)
}

// execPublish publishes n seeded updates through the origin. In a clean
// network the fan-out invariant is checked per publish: every holder the
// beacon still lists must store exactly the published version. With a
// shield tier the publish resolves origin → shields → subscribed clouds,
// and the healthy-tier checks add exactly-once delivery per shield (one
// /supdate each, regardless of how many clouds subscribe) on top of the
// cross-tier fan-out.
func (s *sim) execPublish(n int) {
	for i := 0; i < n; i++ {
		doc := s.docs[s.rng.Intn(len(s.docs))]
		shieldMode := len(s.shieldNames) > 0
		strict := false
		var updates0 map[string]int64
		if shieldMode {
			strict = s.shieldsOK()
			if strict {
				updates0 = make(map[string]int64, len(s.shieldNames))
				for _, name := range s.shieldNames {
					updates0[name] = s.shields[name].UpdatesIn()
				}
			}
		}
		var pr node.PublishResponse
		err := s.client.PostJSON(context.Background(), "http://origin.sim/publish", node.PublishRequest{URL: doc.URL}, &pr)
		if shieldMode && !strict {
			// The update may have missed a crashed shield (or raced a fault
			// window); its subscribers stay stale until the next reconcile.
			s.shieldsStale = true
		}
		if err != nil {
			s.logf("publish url=%s err=true", doc.URL)
			if shieldMode {
				s.shieldsStale = true
			}
			continue
		}
		if shieldMode {
			s.logf("publish url=%s version=%d notified=%d shields=%d", doc.URL, pr.Version, pr.Notified, pr.ShieldsNotified)
		} else {
			s.logf("publish url=%s version=%d notified=%d", doc.URL, pr.Version, pr.Notified)
		}
		if s.pendingWarm != nil {
			// Publishes inside the warm window are legitimate slack for the
			// origin-fetch bound (a refreshed document may miss everywhere).
			s.pendingWarm.published++
		}
		switch {
		case strict:
			if pr.ShieldsNotified != len(s.shieldNames) {
				s.failf("publish %s: %d of %d shields notified on a healthy tier",
					doc.URL, pr.ShieldsNotified, len(s.shieldNames))
			}
			for _, name := range s.shieldNames {
				if d := s.shields[name].UpdatesIn() - updates0[name]; d != 1 {
					s.failf("publish %s: shield %s received %d updates, want exactly one", doc.URL, name, d)
				}
			}
			s.checkShieldFanout(doc.URL, pr.Version)
		case !shieldMode && s.clean():
			s.checkFanout(doc.URL, pr.Version)
		}
	}
}

// checkShieldFanout verifies one healthy-tier publish end to end: every
// shield still holding the URL serves exactly the published version, and
// the cloud-side fan-out (beacon record + holders) matches it too. A
// missing beacon record is vacuous (the document was never fetched or was
// purged); an empty holder list skips the version comparison because the
// shield prunes a cloud's subscription when a fan-out finds no holders
// left.
func (s *sim) checkShieldFanout(docURL string, version document.Version) {
	for _, name := range s.shieldNames {
		if v, held := s.shields[name].HeldVersions()[docURL]; held && v != version {
			s.failf("shieldfanout %s: shield %s serves version %d, published %d", docURL, name, v, version)
		}
	}
	owner, err := s.origin.Assignments().Owner(docURL, s.cfg.IntraGen)
	if err != nil {
		s.failf("shieldfanout %s: no owner: %v", docURL, err)
		return
	}
	rec, ok := findRecord(s.caches[owner].Records(), docURL)
	if !ok {
		return // never fetched, or purged: no cloud fan-out expected
	}
	if len(rec.Holders) == 0 {
		return // subscription pruned with the last holder
	}
	if rec.Version != version {
		s.failf("shieldfanout %s: beacon %s at version %d, published %d", docURL, owner, rec.Version, version)
	}
	for _, h := range rec.Holders {
		cn, ok := s.caches[h]
		if !ok {
			s.failf("shieldfanout %s: beacon %s lists unknown holder %s", docURL, owner, h)
			continue
		}
		if v, stored := cn.StoredVersions()[docURL]; !stored || v != version {
			s.failf("shieldfanout %s: holder %s stores version %d (stored=%v), published %d",
				docURL, h, v, stored, version)
		}
	}
}

// execShieldCrash partitions one shield away from everyone. Cloud fetches
// fail over along the shield ring; the strict cross-tier checks stand
// down until the shield heals and a reconcile repairs what it missed.
func (s *sim) execShieldCrash(victim string) {
	sn, ok := s.shields[victim]
	if !ok {
		s.failf("shield-crash: unknown shield %q", victim)
		return
	}
	held := len(sn.HeldVersions())
	s.shieldDown[victim] = true
	s.net.Kill(victim)
	s.traceFault(victim, int64(held))
	s.logf("shield-crash node=%s held=%d", victim, held)
}

// execPurge invalidates one seeded document through the origin. Global
// scope must empty both tiers (the origin bumps the URL's purge
// generation so a crashed shield catches up at reconcile); cloud scope
// drops the edge copies while shields keep theirs. Completeness is
// checked immediately when the whole hierarchy is reachable; copies are
// the unit of completeness — a beacon lookup record minted by a shed
// fetch may legitimately survive with no holders and no subscription.
func (s *sim) execPurge(scope string) {
	doc := s.docs[s.rng.Intn(len(s.docs))]
	shieldMode := len(s.shieldNames) > 0
	strict := false
	if shieldMode {
		strict = s.shieldsOK()
	} else {
		strict = s.clean()
	}
	req := node.PurgeRequest{URL: doc.URL, Scope: scope}
	if scope == node.PurgeScopeCloud {
		req.Cloud = "cloud0"
	}
	var pr node.PurgeResponse
	err := s.client.PostJSON(context.Background(), "http://origin.sim/purge", req, &pr)
	if err != nil {
		s.logf("purge url=%s scope=%s err=true", doc.URL, scope)
		if shieldMode {
			s.shieldsStale = true
		}
		return
	}
	s.logf("purge url=%s scope=%s shields=%d dropped=%d", doc.URL, scope, pr.ShieldsNotified, pr.Dropped)
	if !strict {
		if shieldMode {
			// A crashed shield may still hold the copy (and its subscribers'
			// edge copies survive a cloud-scoped purge); repaired at the next
			// reconcile via the purge generation.
			s.shieldsStale = true
		}
		return
	}
	defer s.traceInvariant("purge", len(s.failures))
	for _, name := range s.names {
		if _, stored := s.caches[name].StoredVersions()[doc.URL]; stored {
			s.failf("purge[%s] %s: cache %s still stores a copy", scope, doc.URL, name)
		}
	}
	if scope == node.PurgeScopeGlobal {
		for _, name := range s.shieldNames {
			if _, held := s.shields[name].HeldVersions()[doc.URL]; held {
				s.failf("purge[global] %s: shield %s still holds a copy", doc.URL, name)
			}
		}
	}
}

// execCrash partitions the victim and snapshots the accounting ledger.
func (s *sim) execCrash(victim string) {
	cn, ok := s.caches[victim]
	if !ok {
		s.failf("crash: unknown node %q", victim)
		return
	}
	stats := s.origin.Stats()
	s.pendingCrash = &crashLedger{
		victim:  victim,
		expect:  len(cn.Records()),
		lost0:   stats.RecordsLost,
		rec0:    stats.RecordsRecovered,
		stored0: len(cn.StoredVersions()),
	}
	s.partitioned[victim] = true
	s.net.Kill(victim)
	s.traceFault(victim, int64(s.pendingCrash.expect))
	s.logf("crash node=%s records=%d stored=%d", victim, s.pendingCrash.expect, s.pendingCrash.stored0)
}

// admissionTotals folds every node's overload-layer snapshot into one
// (partitioned nodes included: they are still in-process and their
// counters must stay consistent).
func (s *sim) admissionTotals() node.AdmissionStats {
	var out node.AdmissionStats
	for _, name := range s.names {
		st := s.caches[name].Admission()
		out.Requests += st.Requests
		out.Served += st.Served
		out.Shed += st.Shed
		out.Failed += st.Failed
		out.OriginFetches += st.OriginFetches
		out.Coalesced += st.Coalesced
	}
	return out
}

// execStorm drives one overload event (burst: seeded docs at a fixed
// entry; hotdoc: one doc across seeded entries) and checks the overload
// conservation invariant on the counter deltas: every request that
// reached a node is exactly one of served, shed, or failed. On a clean
// network it additionally requires all n offered requests to arrive,
// zero failures (sheds are deliberate, failures are not), and positive
// goodput — shedding may be partial but never a full outage.
func (s *sim) execStorm(kind, entry string, n int, pick func() document.Document) {
	defer s.traceInvariant(kind, len(s.failures))
	before := s.admissionTotals()
	ok, failed := 0, 0
	for i := 0; i < n; i++ {
		e := entry
		if e == "" {
			e = s.names[s.rng.Intn(len(s.names))]
		}
		doc := pick()
		target := fmt.Sprintf("http://%s.sim/doc?url=%s", e, url.QueryEscape(doc.URL))
		var dr node.DocResponse
		if err := s.client.GetJSON(context.Background(), target, &dr); err != nil {
			failed++
			continue
		}
		ok++
	}
	after := s.admissionTotals()
	dReq := after.Requests - before.Requests
	dServed := after.Served - before.Served
	dShed := after.Shed - before.Shed
	dFailed := after.Failed - before.Failed
	s.logf("%s entry=%s n=%d ok=%d failed=%d req=%d served=%d shed=%d nodefailed=%d coalesced=%d",
		kind, entry, n, ok, failed, dReq, dServed, dShed, dFailed,
		after.Coalesced-before.Coalesced)
	if dServed+dShed+dFailed != dReq {
		s.failf("%s conservation: served %d + shed %d + failed %d != requests %d",
			kind, dServed, dShed, dFailed, dReq)
	}
	if s.clean() {
		if dReq != int64(n) {
			s.failf("%s: %d of %d offered requests reached a node on a clean network", kind, dReq, n)
		}
		if dFailed != 0 {
			s.failf("%s: %d node-side failures on a clean network (must shed, not error)", kind, dFailed)
		}
		if n > 0 && dServed == 0 {
			s.failf("%s: goodput collapsed to zero (shed=%d of %d)", kind, dShed, n)
		}
	}
}

// tenantTotals folds every node's per-tenant snapshot into one table
// (partitioned nodes included: they are still in-process and their
// counters must stay consistent).
func (s *sim) tenantTotals() map[string]node.TenantStats {
	out := make(map[string]node.TenantStats, len(s.tenantNames))
	for _, name := range s.names {
		for tid, ts := range s.caches[name].TenantAdmission() {
			agg := out[tid]
			agg.Requests += ts.Requests
			agg.Served += ts.Served
			agg.Shed += ts.Shed
			agg.Failed += ts.Failed
			out[tid] = agg
		}
	}
	return out
}

// execTenantStorm drives n client requests spread over seeded tenants,
// entry nodes, and documents, and checks the multi-tenant conservation
// laws on the counter deltas: per tenant, every request that reached a
// node is exactly one of served, shed, or failed; on a clean network all
// n offered requests arrive and a zero-weight tenant is shed entirely
// (its weighted fair share is zero, so its requests never displace
// anyone else's).
func (s *sim) execTenantStorm(n int) {
	if len(s.tenantNames) == 0 {
		s.failf("tenant-storm: no tenants configured (run without Tenants?)")
		return
	}
	defer s.traceInvariant("tenant-storm", len(s.failures))
	before := s.tenantTotals()
	ok, failed := 0, 0
	for i := 0; i < n; i++ {
		tid := s.tenantNames[s.rng.Intn(len(s.tenantNames))]
		entry := s.names[s.rng.Intn(len(s.names))]
		doc := s.docs[s.rng.Intn(len(s.docs))]
		target := fmt.Sprintf("http://%s.sim/doc?url=%s", entry, url.QueryEscape(doc.URL))
		var dr node.DocResponse
		if err := s.client.GetJSON(node.WithTenant(context.Background(), tid), target, &dr); err != nil {
			failed++
			continue
		}
		ok++
	}
	after := s.tenantTotals()
	var dReq, dServed, dShed, dFailed int64
	var perTenant []string
	for _, tid := range s.tenantNames {
		b, a := before[tid], after[tid]
		req := a.Requests - b.Requests
		served := a.Served - b.Served
		shed := a.Shed - b.Shed
		nodeFailed := a.Failed - b.Failed
		dReq += req
		dServed += served
		dShed += shed
		dFailed += nodeFailed
		perTenant = append(perTenant, fmt.Sprintf("%s:%d/%d/%d/%d", tid, req, served, shed, nodeFailed))
		if served+shed+nodeFailed != req {
			s.failf("tenant-storm: tenant %s served %d + shed %d + failed %d != requests %d",
				tid, served, shed, nodeFailed, req)
		}
		if s.tenantQuotas[tid].Weight == 0 && served != 0 {
			s.failf("tenant-storm: zero-weight tenant %s was served %d requests", tid, served)
		}
	}
	s.logf("tenant-storm n=%d ok=%d failed=%d req=%d served=%d shed=%d nodefailed=%d tenants=[%s]",
		n, ok, failed, dReq, dServed, dShed, dFailed, strings.Join(perTenant, " "))
	if s.clean() {
		if dReq != int64(n) {
			s.failf("tenant-storm: %d of %d offered requests reached a node on a clean network", dReq, n)
		}
		if dFailed != 0 {
			s.failf("tenant-storm: %d node-side failures on a clean network (must shed, not error)", dFailed)
		}
	}
}

// checkTenantQuotaInvariant verifies the always-true multi-tenant law
// before and after every event: on every node (partitioned ones
// included), every registered tenant's resident cache bytes stay within
// its byte quota — an aggressor's flash crowd, a publish fan-out grow,
// or a durable replay must never push a tenant past its envelope.
func (s *sim) checkTenantQuotaInvariant(where string) {
	if len(s.tenantNames) == 0 {
		return
	}
	defer s.traceInvariant("tenant-quota", len(s.failures))
	for _, name := range s.names {
		stats := s.caches[name].TenantAdmission()
		for _, tid := range s.tenantNames {
			q := s.tenantQuotas[tid]
			if q.Bytes <= 0 {
				continue
			}
			if rb := stats[tid].ResidentBytes; rb > q.Bytes {
				s.failf("tenant-quota[%s]: %s holds %d resident bytes for %s, quota %d",
					where, name, rb, tid, q.Bytes)
			}
		}
	}
}

// execHealWarm restarts a crashed victim the way a real process restart
// would: the old node object (all memory state) is discarded, a fresh one
// is built over the same durable store directory, boots warm from the
// log, rejoins via its first heartbeat, and revalidates every recovered
// copy against the beacons. Two invariants are checked inline: warm boot
// must recover exactly what the victim had stored at the crash, and
// revalidation must issue zero origin fetches.
func (s *sim) execHealWarm(victim string) {
	defer s.traceInvariant("warm-heal", len(s.failures))
	old, ok := s.caches[victim]
	if !ok {
		s.failf("heal-warm: unknown node %q", victim)
		return
	}
	if s.clcfg.StoreDir == "" {
		s.failf("heal-warm: no store directory (run without Warm?)")
		return
	}
	if !s.partitioned[victim] {
		s.failf("heal-warm: %s is not crashed", victim)
		return
	}
	storedAtCrash := old.StoredVersions()

	// Tear the old process down: stop its heartbeat loop and seal its log
	// so the replacement can reopen the directory.
	s.hbStops[victim]()
	if err := old.Close(); err != nil {
		s.failf("heal-warm: close %s: %v", victim, err)
		return
	}
	cn, err := node.NewCacheNodeWithTransport(victim, s.clcfg, s.net.Transport(victim, s.mem.transport()))
	if err != nil {
		s.failf("heal-warm: rebuild %s: %v", victim, err)
		return
	}
	if s.tracer != nil {
		cn.SetTracer(s.tracer)
	}
	s.caches[victim] = cn
	s.mem.bindHandler(s.clcfg.Addrs[victim], cn.Handler())

	warm, recovered := cn.WarmBootInfo()
	if len(storedAtCrash) > 0 && (!warm || recovered != len(storedAtCrash)) {
		s.failf("heal-warm: %s recovered %d entries (warm=%v), stored %d at crash",
			victim, recovered, warm, len(storedAtCrash))
	}

	// Rejoin and revalidate. The first heartbeat is immediate and, on the
	// in-memory transport, synchronous — the origin sees the node back
	// before revalidation reports to the beacons.
	delete(s.partitioned, victim)
	s.net.Heal(victim)
	s.hbStops[victim] = cn.StartHeartbeat(s.cfg.Heartbeat)
	kept, dropped := cn.WarmRevalidate(context.Background())
	if f := cn.Admission().OriginFetches; f != 0 {
		s.failf("heal-warm: revalidation of %s issued %d origin fetches, want 0", victim, f)
	}
	s.pendingWarm = &warmLedger{victim: victim, recovered: recovered, kept: kept, dropped: dropped}
	s.traceFault(victim, int64(recovered))
	s.logf("heal-warm node=%s recovered=%d kept=%d dropped=%d", victim, recovered, kept, dropped)
}

// execCheckWarm verifies the warm-restart payoff against the ledger taken
// at the heal: the restarted node's origin fetches since the restart must
// not exceed the documents that could legitimately miss there — the
// catalog minus the copies revalidation confirmed fresh, plus any
// publishes inside the window (a refresh invalidates the copy
// everywhere). A violation means the warm restart degenerated toward a
// cold-miss storm.
func (s *sim) execCheckWarm(victim string) {
	defer s.traceInvariant("warm", len(s.failures))
	led := s.pendingWarm
	if led == nil || led.victim != victim {
		s.logf("check-warm node=%s skipped (no pending warm heal)", victim)
		return
	}
	s.pendingWarm = nil
	fetches := s.caches[victim].Admission().OriginFetches
	bound := int64(len(s.docs) - led.kept + led.published)
	s.logf("check-warm node=%s fetches=%d bound=%d kept=%d published=%d",
		victim, fetches, bound, led.kept, led.published)
	if fetches > bound {
		s.failf("warm: %s fetched %d from origin since restart, bound %d (catalog %d - revalidated %d + published %d)",
			victim, fetches, bound, len(s.docs), led.kept, led.published)
	}
}

// execReconcile runs one anti-entropy pass on every live node, in name
// order. With a shield tier the shields reconcile first (each resyncs
// held versions and purge generations against the origin and re-fans
// repairs into the cloud), then the caches (beacon pass plus degraded
// re-subscription) — so one pass repairs cross-tier staleness top-down.
// A pass with the whole hierarchy healthy stands the strict checks back
// up.
func (s *sim) execReconcile() {
	sRefreshed, sPurged := 0, 0
	for _, name := range s.liveShields() {
		r, p := s.shields[name].Reconcile(context.Background())
		sRefreshed += r
		sPurged += p
	}
	reported, dropped := 0, 0
	for _, name := range s.livePeers() {
		r, d := s.caches[name].Reconcile(context.Background())
		reported += r
		dropped += d
	}
	if len(s.shieldNames) > 0 {
		if s.clean() && len(s.shieldDown) == 0 {
			s.shieldsStale = false
			s.degraded0 = s.degradedTotal()
		}
		s.logf("reconcile reported=%d dropped=%d srefreshed=%d spurged=%d", reported, dropped, sRefreshed, sPurged)
		return
	}
	s.logf("reconcile reported=%d dropped=%d", reported, dropped)
}

// --- invariants ---

// checkPartitionInvariant verifies the always-true structural invariant:
// every ring of the origin's assignment is an exact partition of
// [0, IntraGen) — contiguous, non-overlapping, fully covering — and no
// assigned beacon point is a node the origin has declared dead.
func (s *sim) checkPartitionInvariant(where string) {
	defer s.traceInvariant("partition", len(s.failures))
	a := s.origin.Assignments()
	down := make(map[string]bool)
	for _, d := range s.origin.DownNodes() {
		down[d] = true
	}
	for r, subs := range a.Rings {
		if len(subs) == 0 {
			s.failf("partition[%s]: ring %d has no beacon points", where, r)
			continue
		}
		sorted := append([]node.Subrange(nil), subs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })
		if sorted[0].Lo != 0 {
			s.failf("partition[%s]: ring %d starts at %d, want 0", where, r, sorted[0].Lo)
		}
		for i := 1; i < len(sorted); i++ {
			if sorted[i].Lo != sorted[i-1].Hi+1 {
				s.failf("partition[%s]: ring %d gap/overlap between [%d,%d] and [%d,%d]",
					where, r, sorted[i-1].Lo, sorted[i-1].Hi, sorted[i].Lo, sorted[i].Hi)
			}
		}
		if last := sorted[len(sorted)-1]; last.Hi != s.cfg.IntraGen-1 {
			s.failf("partition[%s]: ring %d ends at %d, want %d", where, r, last.Hi, s.cfg.IntraGen-1)
		}
		for _, sub := range subs {
			if down[sub.Node] {
				s.failf("partition[%s]: ring %d assigns [%d,%d] to dead node %s",
					where, r, sub.Lo, sub.Hi, sub.Node)
			}
		}
	}
}

// checkFanout verifies one clean-network publish: every holder the beacon
// still lists for the URL must store exactly the published version (a
// holder that failed the push must have been pruned, one that dropped the
// copy must be deregistered).
func (s *sim) checkFanout(docURL string, version document.Version) {
	owner, err := s.origin.Assignments().Owner(docURL, s.cfg.IntraGen)
	if err != nil {
		s.failf("fanout %s: no owner: %v", docURL, err)
		return
	}
	rec, ok := findRecord(s.caches[owner].Records(), docURL)
	if !ok {
		s.failf("fanout %s: beacon %s has no record after publish", docURL, owner)
		return
	}
	if rec.Version != version {
		s.failf("fanout %s: beacon %s at version %d, published %d", docURL, owner, rec.Version, version)
	}
	for _, h := range rec.Holders {
		cn, ok := s.caches[h]
		if !ok {
			s.failf("fanout %s: beacon %s lists unknown holder %s", docURL, owner, h)
			continue
		}
		if v, stored := cn.StoredVersions()[docURL]; !stored || v != version {
			s.failf("fanout %s: holder %s stores version %d (stored=%v), published %d",
				docURL, h, v, stored, version)
		}
	}
}

// checkAccounting verifies the crash bookkeeping: the victim must have
// been declared dead, the origin's RecordsLost delta must equal the
// records the victim actually held at its last heartbeat, and the
// survivors' replica promotions (RecordsRecovered delta) must match —
// i.e. every lost lookup record was recovered from the lazy replica.
func (s *sim) checkAccounting(victim string) {
	defer s.traceInvariant("accounting", len(s.failures))
	led := s.pendingCrash
	if led == nil || led.victim != victim {
		s.logf("check-accounting node=%s skipped (no pending crash)", victim)
		return
	}
	s.pendingCrash = nil
	downNow := make(map[string]bool)
	for _, d := range s.origin.DownNodes() {
		downNow[d] = true
	}
	if !downNow[victim] {
		s.failf("accounting: victim %s not declared dead within the detection window", victim)
		return
	}
	stats := s.origin.Stats()
	lost := stats.RecordsLost - led.lost0
	rec := stats.RecordsRecovered - led.rec0
	s.logf("check-accounting node=%s expect=%d lost=%d recovered=%d", victim, led.expect, lost, rec)
	if lost != int64(led.expect) {
		s.failf("accounting: RecordsLost delta %d != %d records held by %s at crash", lost, led.expect, victim)
	}
	if rec != lost {
		s.failf("accounting: RecordsRecovered delta %d != RecordsLost delta %d", rec, lost)
	}
}

// checkQuiescent runs the settle-time invariants over the live nodes:
// view agreement, reachability of every cached document through its
// beacon record, and freshness of every stored copy against the origin's
// ground-truth versions.
func (s *sim) checkQuiescent() {
	defer s.traceInvariant("quiescent", len(s.failures))
	live := s.livePeers()
	originAssign := s.origin.Assignments()
	originEnc, _ := json.Marshal(originAssign)

	// View agreement: every live node's installed assignment matches the
	// origin's.
	for _, name := range live {
		enc, _ := json.Marshal(s.caches[name].AssignmentsView())
		if string(enc) != string(originEnc) {
			s.failf("views: %s disagrees with origin: %s != %s", name, enc, originEnc)
		}
	}

	// Reachability: every stored copy on a live node is listed as a
	// holder in its beacon's lookup record.
	recordsOf := make(map[string]map[string]node.WireRecord, len(live))
	for _, name := range live {
		m := make(map[string]node.WireRecord)
		for _, wr := range s.caches[name].Records() {
			m[wr.URL] = wr
		}
		recordsOf[name] = m
	}
	versions := s.origin.DocVersions()
	// In shield mode the freshness comparison is only exact while the tier
	// is healthy and fully reconciled — a copy subscribed on a crashed
	// shield is legitimately stale until that shield resyncs.
	freshOK := len(s.shieldNames) == 0 || s.shieldsOK()
	checked, stale := 0, 0
	for _, name := range live {
		for docURL, v := range s.caches[name].StoredVersions() {
			checked++
			owner, err := originAssign.Owner(docURL, s.cfg.IntraGen)
			if err != nil {
				s.failf("reachability: no owner for %s: %v", docURL, err)
				continue
			}
			if s.partitioned[owner] {
				continue // owner partitioned: cooperation degraded, skip
			}
			wr, ok := recordsOf[owner][docURL]
			if !ok {
				s.failf("reachability: %s stores %s but beacon %s has no record", name, docURL, owner)
				continue
			}
			holderListed := false
			for _, h := range wr.Holders {
				if h == name {
					holderListed = true
				}
			}
			if !holderListed {
				s.failf("reachability: %s stores %s but beacon %s does not list it (holders=%v)",
					name, docURL, owner, wr.Holders)
			}

			// Freshness: no stored copy staler than the origin's version
			// survives a settle (reconcile drops stale copies).
			if want, known := versions[docURL]; freshOK && known && v != want {
				stale++
				s.failf("freshness: %s stores %s at version %d, origin at %d", name, docURL, v, want)
			}
		}
	}
	// Shield-tier freshness at quiescent points: while the tier is healthy
	// every live shield's held copies match the origin's ground truth, and
	// no shield is behind a URL's purge generation (a behind shield would
	// resurrect a globally purged document to every cloud it serves).
	if freshOK && len(s.shieldNames) > 0 {
		gens := s.origin.PurgeGens()
		for _, name := range s.shieldNames {
			sn := s.shields[name]
			for docURL, v := range sn.HeldVersions() {
				if want, known := versions[docURL]; known && v != want {
					s.failf("shield-freshness: %s holds %s at version %d, origin at %d", name, docURL, v, want)
				}
				if g := gens[docURL]; g > sn.PurgeSeen(docURL) {
					s.failf("shield-purge: %s holds %s behind purge generation %d (seen %d)",
						name, docURL, g, sn.PurgeSeen(docURL))
				}
			}
		}
	}
	// Overload-layer books at quiescence: on every node (partitioned ones
	// included — they are still in-process) the conservation identity
	// holds exactly and all admission state has drained: nothing queued,
	// nothing in flight, no open coalesced flights.
	for _, name := range s.names {
		st := s.caches[name].Admission()
		if st.Served+st.Shed+st.Failed != st.Requests {
			s.failf("admission: %s served %d + shed %d + failed %d != requests %d",
				name, st.Served, st.Shed, st.Failed, st.Requests)
		}
		if st.GateInFlight != 0 || st.GateQueued != 0 || st.LimiterInFlight != 0 ||
			st.LimiterQueued != 0 || st.FlightsActive != 0 {
			s.failf("admission: %s not drained at quiescence: inflight=%d queued=%d limiter=%d/%d flights=%d",
				name, st.GateInFlight, st.GateQueued, st.LimiterInFlight, st.LimiterQueued, st.FlightsActive)
		}
		// Per-tenant conservation (multi-tenant runs only): the same
		// identity, sliced by tenant, on the same nodes.
		tstats := s.caches[name].TenantAdmission()
		for _, tid := range s.tenantNames {
			ts := tstats[tid]
			if ts.Served+ts.Shed+ts.Failed != ts.Requests {
				s.failf("admission: %s tenant %s served %d + shed %d + failed %d != requests %d",
					name, tid, ts.Served, ts.Shed, ts.Failed, ts.Requests)
			}
		}
	}
	s.logf("check live=%d copies=%d stale=%d failures=%d", len(live), checked, stale, len(s.failures))
}

// findRecord looks a URL up in a sorted Records() snapshot.
func findRecord(recs []node.WireRecord, docURL string) (node.WireRecord, bool) {
	for _, wr := range recs {
		if wr.URL == docURL {
			return wr, true
		}
	}
	return node.WireRecord{}, false
}

// Package simnet is a deterministic simulation harness for the live
// cache-cloud cluster: the production internal/node code — origin, cache
// nodes, beacon duties, heartbeats, failure detection, reconcile passes —
// runs unmodified over a virtual clock and an in-memory transport, so a
// complete multi-node fault scenario executes in milliseconds of real
// time with zero sockets and zero real sleeps. Fault schedules are
// generated from a seed and replayed byte-identically; invariant checkers
// run between events and a failing seed's schedule can be minimized to a
// short reproducer.
package simnet

import (
	"container/heap"
	"sync"
	"time"

	"cachecloud/internal/node"
)

// VirtualClock implements node.Clock over simulated time. Timers are kept
// in a deterministic priority queue ordered by (deadline, registration
// sequence); Advance and RunUntil pop due timers one at a time and run
// their callbacks synchronously on the calling goroutine, so the entire
// cluster's periodic machinery executes single-threaded in a reproducible
// order.
type VirtualClock struct {
	mu    sync.Mutex
	now   time.Time
	seq   int64
	queue timerQueue
}

// NewVirtualClock starts a virtual clock at a fixed base instant (the
// concrete value is arbitrary; only durations matter).
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{now: time.Unix(1_000_000_000, 0)}
}

// Now implements node.Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Since implements node.Clock.
func (c *VirtualClock) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// AfterFunc implements node.Clock: f runs synchronously inside a later
// Advance/RunUntil call once simulated time reaches the deadline.
func (c *VirtualClock) AfterFunc(d time.Duration, f func()) node.Timer {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	vt := &vtimer{when: c.now.Add(d), seq: c.seq, f: f}
	heap.Push(&c.queue, vt)
	return &vtimerHandle{clock: c, t: vt}
}

// Advance moves simulated time forward by d, firing due timers in order.
func (c *VirtualClock) Advance(d time.Duration) {
	c.RunUntil(c.Now().Add(d))
}

// RunUntil fires every timer with a deadline at or before t (in deadline
// order, callbacks run synchronously and may schedule further timers,
// which also fire if due), then sets the clock to t. A target in the past
// is a no-op.
func (c *VirtualClock) RunUntil(t time.Time) {
	for {
		c.mu.Lock()
		if len(c.queue) == 0 || c.queue[0].when.After(t) {
			if t.After(c.now) {
				c.now = t
			}
			c.mu.Unlock()
			return
		}
		vt := heap.Pop(&c.queue).(*vtimer)
		if vt.stopped {
			c.mu.Unlock()
			continue
		}
		if vt.when.After(c.now) {
			c.now = vt.when
		}
		c.mu.Unlock()
		vt.f()
	}
}

// PendingTimers reports how many timers are scheduled (stopped timers may
// still be counted until they pop).
func (c *VirtualClock) PendingTimers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// vtimer is one scheduled callback.
type vtimer struct {
	when    time.Time
	seq     int64
	f       func()
	stopped bool
	index   int
}

// vtimerHandle implements node.Timer.
type vtimerHandle struct {
	clock *VirtualClock
	t     *vtimer
}

func (h *vtimerHandle) Stop() bool {
	h.clock.mu.Lock()
	defer h.clock.mu.Unlock()
	was := !h.t.stopped
	h.t.stopped = true
	return was
}

// timerQueue is a heap ordered by (deadline, registration sequence) so
// same-instant timers fire in the order they were created.
type timerQueue []*vtimer

func (q timerQueue) Len() int { return len(q) }
func (q timerQueue) Less(i, j int) bool {
	if !q[i].when.Equal(q[j].when) {
		return q[i].when.Before(q[j].when)
	}
	return q[i].seq < q[j].seq
}
func (q timerQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *timerQueue) Push(x any) {
	vt := x.(*vtimer)
	vt.index = len(*q)
	*q = append(*q, vt)
}
func (q *timerQueue) Pop() any {
	old := *q
	n := len(old)
	vt := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return vt
}

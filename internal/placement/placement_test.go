package placement

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestAdHocAlwaysStores(t *testing.T) {
	var p AdHoc
	if !p.ShouldStore(Context{}).Store {
		t.Fatal("ad hoc refused to store")
	}
	if p.Name() != "adhoc" {
		t.Fatal("wrong name")
	}
}

func TestBeaconPointStoresOnlyAtBeacon(t *testing.T) {
	p := BeaconPoint{}
	if p.ShouldStore(Context{IsBeacon: false}).Store {
		t.Fatal("stored at non-beacon")
	}
	if !p.ShouldStore(Context{IsBeacon: true}).Store {
		t.Fatal("refused to store at beacon")
	}
	if p.Name() != "beacon" {
		t.Fatal("wrong name")
	}
}

func TestNewUtilityValidation(t *testing.T) {
	if _, err := NewUtility(Weights{CMC: -1, AFC: 1}, 0.5); !errors.Is(err, ErrBadWeights) {
		t.Fatalf("err = %v, want ErrBadWeights", err)
	}
	if _, err := NewUtility(Weights{}, 0.5); !errors.Is(err, ErrBadWeights) {
		t.Fatalf("err = %v, want ErrBadWeights", err)
	}
}

func TestNewUtilityNormalisesWeights(t *testing.T) {
	u, err := NewUtility(Weights{CMC: 2, AFC: 2, DAC: 2, DsCC: 2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	w := u.Weights()
	if w.CMC != 0.25 || w.AFC != 0.25 || w.DAC != 0.25 || w.DsCC != 0.25 {
		t.Fatalf("weights = %+v, want all 0.25", w)
	}
	if u.Threshold() != 0.5 {
		t.Fatalf("threshold = %v", u.Threshold())
	}
	if u.Name() != "utility" {
		t.Fatal("wrong name")
	}
}

func TestEqualOn(t *testing.T) {
	w := EqualOn(true, true, true, false)
	if math.Abs(w.CMC-1.0/3) > 1e-12 || w.DsCC != 0 {
		t.Fatalf("weights = %+v", w)
	}
	if w4 := EqualOn(true, true, true, true); w4.DsCC != 0.25 {
		t.Fatalf("weights = %+v", w4)
	}
	if w0 := EqualOn(false, false, false, false); w0 != (Weights{}) {
		t.Fatalf("weights = %+v, want zero", w0)
	}
}

func TestCMCSemantics(t *testing.T) {
	// Never updated → 1; parity → 0.5; update-dominated → small.
	if got := Evaluate(Context{CloudLookupRate: 5, CloudUpdateRate: 0}).CMC; got != 1 {
		t.Fatalf("CMC = %v, want 1", got)
	}
	if got := Evaluate(Context{CloudLookupRate: 5, CloudUpdateRate: 5}).CMC; got != 0.5 {
		t.Fatalf("CMC = %v, want 0.5", got)
	}
	if got := Evaluate(Context{CloudLookupRate: 1, CloudUpdateRate: 9}).CMC; got != 0.1 {
		t.Fatalf("CMC = %v, want 0.1", got)
	}
	if got := Evaluate(Context{}).CMC; got != 0.5 {
		t.Fatalf("no-signal CMC = %v, want 0.5", got)
	}
}

func TestAFCSemantics(t *testing.T) {
	if got := Evaluate(Context{LocalAccessRate: 3, MeanLocalRate: 3}).AFC; got != 0.5 {
		t.Fatalf("average doc AFC = %v, want 0.5", got)
	}
	hot := Evaluate(Context{LocalAccessRate: 30, MeanLocalRate: 3}).AFC
	cold := Evaluate(Context{LocalAccessRate: 0.1, MeanLocalRate: 3}).AFC
	if hot <= 0.5 || cold >= 0.5 {
		t.Fatalf("hot = %v cold = %v", hot, cold)
	}
	if got := Evaluate(Context{}).AFC; got != 0.5 {
		t.Fatalf("no-signal AFC = %v, want 0.5", got)
	}
}

func TestDACSemantics(t *testing.T) {
	if got := Evaluate(Context{ReplicaCount: 0}).DAC; got != 1 {
		t.Fatalf("first copy DAC = %v, want 1", got)
	}
	if got := Evaluate(Context{ReplicaCount: 1}).DAC; got != 0.5 {
		t.Fatalf("second copy DAC = %v, want 0.5", got)
	}
	if got := Evaluate(Context{ReplicaCount: 9}).DAC; got != 0.1 {
		t.Fatalf("tenth copy DAC = %v, want 0.1", got)
	}
	if got := Evaluate(Context{ReplicaCount: -3}).DAC; got != 1 {
		t.Fatalf("negative replicas DAC = %v, want 1", got)
	}
}

func TestDsCCSemantics(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name string
		ctx  Context
		want float64
	}{
		{"no existing copies", Context{ReplicaCount: 0, Residence: 5, HolderResidence: 0}, 1},
		{"both unpressured", Context{ReplicaCount: 2, Residence: inf, HolderResidence: inf}, 0.5},
		{"only we are unpressured", Context{ReplicaCount: 2, Residence: inf, HolderResidence: 10}, 1},
		{"only they are unpressured", Context{ReplicaCount: 2, Residence: 10, HolderResidence: inf}, 0},
		{"we live twice as long", Context{ReplicaCount: 2, Residence: 20, HolderResidence: 10}, 2.0 / 3},
		{"we are thrashing", Context{ReplicaCount: 2, Residence: 0, HolderResidence: 10}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Evaluate(tc.ctx).DsCC; math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("DsCC = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestExpectedResidence(t *testing.T) {
	if !math.IsInf(ExpectedResidence(0, 100), 1) {
		t.Fatal("unlimited cache should have infinite residence")
	}
	if !math.IsInf(ExpectedResidence(1000, 0), 1) {
		t.Fatal("unpressured cache should have infinite residence")
	}
	if got := ExpectedResidence(1000, 50); got != 20 {
		t.Fatalf("residence = %v, want 20", got)
	}
}

// The headline behaviours of Figure 7: with DsCC off and equal weights, a
// rarely-updated average document is stored, and the same document under
// heavy updates with existing replicas is not.
func TestUtilityFigure7Behaviour(t *testing.T) {
	u, err := NewUtility(EqualOn(true, true, true, false), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	lowUpd := Context{
		CloudLookupRate: 10, CloudUpdateRate: 0.1,
		LocalAccessRate: 1, MeanLocalRate: 1,
		ReplicaCount: 2,
	}
	if d := u.ShouldStore(lowUpd); !d.Store {
		t.Fatalf("low-update doc rejected: %+v", d)
	}
	highUpd := lowUpd
	highUpd.CloudUpdateRate = 50
	if d := u.ShouldStore(highUpd); d.Store {
		t.Fatalf("update-dominated replicated doc stored: %+v", d)
	}
	// The first copy of even a heavily-updated document is still stored
	// (DAC=1 rescues it), so the cloud always keeps at least some copy.
	first := highUpd
	first.ReplicaCount = 0
	if d := u.ShouldStore(first); !d.Store {
		t.Fatalf("first copy rejected: %+v", d)
	}
}

// Utility decreases monotonically in update rate and in replica count.
func TestUtilityMonotonicity(t *testing.T) {
	u, err := NewUtility(EqualOn(true, true, true, true), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	base := Context{
		CloudLookupRate: 10, LocalAccessRate: 2, MeanLocalRate: 2,
		ReplicaCount: 1, Residence: 100, HolderResidence: 100,
	}
	prev := math.Inf(1)
	for upd := 0.0; upd <= 100; upd += 10 {
		ctx := base
		ctx.CloudUpdateRate = upd
		v := u.ShouldStore(ctx).Utility
		if v > prev {
			t.Fatalf("utility not monotone in update rate at %v: %v > %v", upd, v, prev)
		}
		prev = v
	}
	prev = math.Inf(1)
	for reps := 0; reps < 10; reps++ {
		ctx := base
		ctx.ReplicaCount = reps
		v := u.ShouldStore(ctx).Utility
		if v > prev {
			t.Fatalf("utility not monotone in replicas at %d: %v > %v", reps, v, prev)
		}
		prev = v
	}
}

// Property: utility is always within [0,1] for non-negative inputs, and
// components are each within [0,1].
func TestUtilityBoundsProperty(t *testing.T) {
	u, err := NewUtility(Weights{CMC: 1, AFC: 2, DAC: 3, DsCC: 4}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	f := func(lr, ur, la, ml, res, hres float64, reps uint8) bool {
		abs := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Abs(v)
		}
		ctx := Context{
			CloudLookupRate: abs(lr), CloudUpdateRate: abs(ur),
			LocalAccessRate: abs(la), MeanLocalRate: abs(ml),
			Residence: abs(res), HolderResidence: abs(hres),
			ReplicaCount: int(reps % 32),
		}
		d := u.ShouldStore(ctx)
		inUnit := func(v float64) bool { return v >= 0 && v <= 1 && !math.IsNaN(v) }
		return inUnit(d.Utility) && inUnit(d.Components.CMC) &&
			inUnit(d.Components.AFC) && inUnit(d.Components.DAC) &&
			inUnit(d.Components.DsCC)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

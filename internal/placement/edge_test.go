package placement

import (
	"math"
	"testing"
)

// neutralContext has every utility component at exactly 0.5: lookup and
// update traffic at parity, a precisely average local access rate, one
// existing replica, and both sides of the residence comparison unpressured.
func neutralContext() Context {
	return Context{
		CloudLookupRate: 2, CloudUpdateRate: 2,
		LocalAccessRate: 3, MeanLocalRate: 3,
		ReplicaCount: 1,
		Residence:    math.Inf(1), HolderResidence: math.Inf(1),
	}
}

// TestUtilityThresholdTies pins the tie-breaking rule: the paper's decision
// is "store when the utility exceeds the threshold", so a utility exactly
// at the threshold must NOT store, and the smallest perturbation on either
// side must flip the decision accordingly.
func TestUtilityThresholdTies(t *testing.T) {
	u, err := NewUtility(EqualOn(true, true, true, true), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	hotter := neutralContext()
	hotter.LocalAccessRate = 3.1 // AFC just above 0.5
	colder := neutralContext()
	colder.LocalAccessRate = 2.9 // AFC just below 0.5

	cases := []struct {
		name      string
		ctx       Context
		wantStore bool
		wantUtil  float64 // exact only for the tie case (NaN = skip)
	}{
		{"exactly-at-threshold", neutralContext(), false, 0.5},
		{"just-above-threshold", hotter, true, math.NaN()},
		{"just-below-threshold", colder, false, math.NaN()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := u.ShouldStore(tc.ctx)
			if d.Store != tc.wantStore {
				t.Fatalf("Store = %v (utility %v), want %v", d.Store, d.Utility, tc.wantStore)
			}
			if !math.IsNaN(tc.wantUtil) && d.Utility != tc.wantUtil {
				t.Fatalf("Utility = %v, want exactly %v", d.Utility, tc.wantUtil)
			}
		})
	}
}

// TestZeroCapabilityCache covers the degenerate residence inputs: a cache
// with no effective capability (zero expected residence under eviction
// pressure) must see the disk-space contention component collapse to 0 and
// lose the placement decision it would otherwise win, while a zero-capacity
// configuration (the repo's "unlimited" convention) maps to +Inf residence.
func TestZeroCapabilityCache(t *testing.T) {
	cases := []struct {
		name     string
		ctx      Context
		wantDsCC float64
	}{
		{
			// New copy would be evicted immediately; holders are healthy.
			name: "zero-residence-vs-finite-holders",
			ctx: Context{ReplicaCount: 2, Residence: 0,
				HolderResidence: 50},
			wantDsCC: 0,
		},
		{
			// Both the new copy and the holders are at zero capability:
			// holders <= 0 means no surviving competition, so storing
			// still strictly improves cloud residence.
			name:     "zero-residence-vs-zero-holders",
			ctx:      Context{ReplicaCount: 2, Residence: 0, HolderResidence: 0},
			wantDsCC: 1,
		},
		{
			// Pressured newcomer against unpressured holders.
			name: "finite-vs-infinite-holders",
			ctx: Context{ReplicaCount: 1, Residence: 10,
				HolderResidence: math.Inf(1)},
			wantDsCC: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Evaluate(tc.ctx).DsCC; got != tc.wantDsCC {
				t.Fatalf("DsCC = %v, want %v", got, tc.wantDsCC)
			}
		})
	}

	// Capacity 0 is the "unlimited" convention throughout the repo: it must
	// yield infinite expected residence, not zero capability.
	if r := ExpectedResidence(0, 100); !math.IsInf(r, 1) {
		t.Fatalf("ExpectedResidence(0, 100) = %v, want +Inf", r)
	}
	// A genuinely pressured cache: budget / eviction rate.
	if r := ExpectedResidence(1000, 100); r != 10 {
		t.Fatalf("ExpectedResidence(1000, 100) = %v, want 10", r)
	}

	// End to end: the zero-capability cache refuses a document an
	// unpressured cache would accept, all else equal.
	u, err := NewUtility(EqualOn(true, true, true, true), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	base := neutralContext()
	base.LocalAccessRate = 6 // hot document: would store on a healthy cache
	if d := u.ShouldStore(base); !d.Store {
		t.Fatalf("healthy cache refused a hot document (utility %v)", d.Utility)
	}
	pressured := base
	pressured.Residence = 0
	pressured.HolderResidence = 50
	if d := u.ShouldStore(pressured); d.Store {
		t.Fatalf("zero-capability cache stored anyway (utility %v)", d.Utility)
	}
}

// TestAdaptiveAllSiblingsHold covers adaptive placement when every ring
// sibling already holds the document: the availability component is at its
// floor (1/(1+r) for r siblings), so even sustained hit-rate pressure —
// which boosts the DAC weight toward its clamp ceiling — must not push an
// otherwise-average document over the threshold; dropping the replica
// count back to zero must.
func TestAdaptiveAllSiblingsHold(t *testing.T) {
	cases := []struct {
		name      string
		siblings  int // ring siblings already holding the copy
		wantStore bool
	}{
		{"no-copies-anywhere", 0, true},
		{"one-sibling-holds", 1, false},
		{"all-three-siblings-hold", 3, false},
		{"all-seven-siblings-hold", 7, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := NewAdaptiveUtility(EqualOn(true, true, true, true), 0.5, 0.2)
			if err != nil {
				t.Fatal(err)
			}
			// Sustained falling hit rate: the controller shifts weight onto
			// DAC/AFC as far as the clamp allows.
			a.Feedback(Observation{HitRate: 0.9})
			for i := 0; i < 20; i++ {
				a.Feedback(Observation{HitRate: 0.9 - float64(i+1)*0.02})
			}
			ctx := neutralContext()
			ctx.ReplicaCount = tc.siblings
			if tc.siblings == 0 {
				// First copy in the cloud: no holders to compete with.
				ctx.HolderResidence = 0
			}
			d := a.ShouldStore(ctx)
			if d.Store != tc.wantStore {
				t.Fatalf("siblings=%d: Store = %v (utility %v, weights %+v), want %v",
					tc.siblings, d.Store, d.Utility, a.Weights(), tc.wantStore)
			}
		})
	}
}

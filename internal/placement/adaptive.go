package placement

import (
	"fmt"
	"sync"
)

// AdaptiveUtility implements the weight-tuning approach the paper leaves as
// future work (Section 4.2): "continuously monitor various system
// parameters and use a feedback mechanism to adjust the weight parameters
// as needed". It wraps the utility policy with a multiplicative-weights
// controller fed by periodic system observations:
//
//   - rising network load per unit shifts weight toward the consistency
//     maintenance component (replicate update-churned documents less);
//   - a falling cloud hit rate shifts weight toward the availability and
//     access-frequency components (replicate more);
//   - rising eviction pressure shifts weight toward the disk-space
//     contention component.
//
// Weights stay non-negative, are re-normalised to sum to 1 after every
// adjustment, and each component is clamped to [MinWeight, MaxWeight] so
// no signal can be silenced permanently.
type AdaptiveUtility struct {
	mu        sync.Mutex
	weights   Weights
	threshold float64
	rate      float64 // adjustment step per feedback call

	prev     Observation
	hasPrev  bool
	feedback int64
}

// Bounds for individual adaptive weights.
const (
	// MinWeight is the floor any enabled component is clamped to.
	MinWeight = 0.05
	// MaxWeight is the ceiling any component is clamped to.
	MaxWeight = 0.70
)

var _ Policy = (*AdaptiveUtility)(nil)

// Observation is one period's system measurement fed to the controller.
type Observation struct {
	// NetworkMBPerUnit is the cloud's network load over the period.
	NetworkMBPerUnit float64
	// HitRate is the cloud-wide hit rate (local + cloud hits / requests).
	HitRate float64
	// EvictionMBPerUnit is the aggregate eviction pressure.
	EvictionMBPerUnit float64
}

// NewAdaptiveUtility starts from the given weights (normalised) and
// threshold; rate is the relative adjustment applied per feedback call
// (0 < rate ≤ 0.5; e.g. 0.1 moves a weight by 10% per period).
func NewAdaptiveUtility(start Weights, threshold, rate float64) (*AdaptiveUtility, error) {
	base, err := NewUtility(start, threshold)
	if err != nil {
		return nil, err
	}
	if rate <= 0 || rate > 0.5 {
		return nil, fmt.Errorf("%w: adaptation rate %v outside (0, 0.5]", ErrBadWeights, rate)
	}
	return &AdaptiveUtility{
		weights:   base.Weights(),
		threshold: threshold,
		rate:      rate,
	}, nil
}

// Name implements Policy.
func (a *AdaptiveUtility) Name() string { return "adaptive-utility" }

// Weights returns the current (normalised) weights.
func (a *AdaptiveUtility) Weights() Weights {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.weights
}

// FeedbackCount returns how many observations have been applied.
func (a *AdaptiveUtility) FeedbackCount() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.feedback
}

// ShouldStore implements Policy with the current weights.
func (a *AdaptiveUtility) ShouldStore(ctx Context) Decision {
	a.mu.Lock()
	w := a.weights
	th := a.threshold
	a.mu.Unlock()
	comp := Evaluate(ctx)
	util := w.CMC*comp.CMC + w.AFC*comp.AFC + w.DAC*comp.DAC + w.DsCC*comp.DsCC
	return Decision{Store: util > th, Utility: util, Components: comp}
}

// Feedback applies one period's observation. The first call only seeds the
// baseline; subsequent calls adjust weights from period-over-period trends.
func (a *AdaptiveUtility) Feedback(obs Observation) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.feedback++
	if !a.hasPrev {
		a.prev, a.hasPrev = obs, true
		return
	}
	w := a.weights

	// Network load trending up → emphasise consistency maintenance.
	if obs.NetworkMBPerUnit > a.prev.NetworkMBPerUnit*1.02 {
		w.CMC *= 1 + a.rate
	} else if obs.NetworkMBPerUnit < a.prev.NetworkMBPerUnit*0.98 {
		w.CMC *= 1 - a.rate/2
	}
	// Hit rate trending down → emphasise availability and access
	// frequency.
	if obs.HitRate < a.prev.HitRate-0.005 {
		w.DAC *= 1 + a.rate
		w.AFC *= 1 + a.rate/2
	} else if obs.HitRate > a.prev.HitRate+0.005 {
		w.DAC *= 1 - a.rate/2
	}
	// Eviction pressure trending up → emphasise disk-space contention
	// (only if the component is enabled at all).
	if w.DsCC > 0 && obs.EvictionMBPerUnit > a.prev.EvictionMBPerUnit*1.02 {
		w.DsCC *= 1 + a.rate
	}

	a.weights = clampNormalise(w)
	a.prev = obs
}

// clampNormalise projects the raw weights onto the constraint set
// {sum = 1, each enabled weight in [MinWeight, MaxWeight]} by
// water-filling: weights that would cross a bound are pinned there and the
// remaining budget is distributed proportionally over the rest.
func clampNormalise(w Weights) Weights {
	raw := []float64{w.CMC, w.AFC, w.DAC, w.DsCC}
	out := make([]float64, 4)
	pinned := make([]bool, 4)
	enabled := 0
	for _, v := range raw {
		if v > 0 {
			enabled++
		}
	}
	if enabled == 0 {
		return Weights{CMC: 0.25, AFC: 0.25, DAC: 0.25, DsCC: 0.25}
	}
	for iter := 0; iter < 5; iter++ {
		budget := 1.0
		freeSum := 0.0
		for i, v := range raw {
			if v <= 0 {
				continue
			}
			if pinned[i] {
				budget -= out[i]
			} else {
				freeSum += v
			}
		}
		if freeSum <= 0 || budget <= 0 {
			break
		}
		scale := budget / freeSum
		crossed := false
		for i, v := range raw {
			if v <= 0 || pinned[i] {
				continue
			}
			x := v * scale
			switch {
			case x < MinWeight:
				out[i], pinned[i], crossed = MinWeight, true, true
			case x > MaxWeight:
				out[i], pinned[i], crossed = MaxWeight, true, true
			default:
				out[i] = x
			}
		}
		if !crossed {
			return Weights{CMC: out[0], AFC: out[1], DAC: out[2], DsCC: out[3]}
		}
	}
	// Fallback (everything pinned): renormalise the pinned values.
	var sum float64
	for _, v := range out {
		sum += v
	}
	if sum > 0 {
		for i := range out {
			out[i] /= sum
		}
	}
	return Weights{CMC: out[0], AFC: out[1], DAC: out[2], DsCC: out[3]}
}

package placement

import (
	"math"
	"testing"
)

func newAdaptive(t *testing.T) *AdaptiveUtility {
	t.Helper()
	a, err := NewAdaptiveUtility(EqualOn(true, true, true, true), 0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func weightSum(w Weights) float64 { return w.CMC + w.AFC + w.DAC + w.DsCC }

func TestNewAdaptiveValidation(t *testing.T) {
	if _, err := NewAdaptiveUtility(Weights{}, 0.5, 0.1); err == nil {
		t.Fatal("zero weights accepted")
	}
	if _, err := NewAdaptiveUtility(EqualOn(true, true, true, true), 0.5, 0); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewAdaptiveUtility(EqualOn(true, true, true, true), 0.5, 0.9); err == nil {
		t.Fatal("huge rate accepted")
	}
}

func TestAdaptiveFirstFeedbackOnlySeeds(t *testing.T) {
	a := newAdaptive(t)
	before := a.Weights()
	a.Feedback(Observation{NetworkMBPerUnit: 100, HitRate: 0.5})
	if a.Weights() != before {
		t.Fatal("first feedback call changed weights")
	}
	if a.FeedbackCount() != 1 {
		t.Fatalf("feedback count = %d", a.FeedbackCount())
	}
}

func TestAdaptiveRisingNetworkLoadBoostsCMC(t *testing.T) {
	a := newAdaptive(t)
	a.Feedback(Observation{NetworkMBPerUnit: 100, HitRate: 0.5})
	before := a.Weights()
	a.Feedback(Observation{NetworkMBPerUnit: 150, HitRate: 0.5})
	after := a.Weights()
	if after.CMC <= before.CMC {
		t.Fatalf("CMC weight %v did not rise from %v under rising network load", after.CMC, before.CMC)
	}
	if math.Abs(weightSum(after)-1) > 1e-9 {
		t.Fatalf("weights not normalised: %+v", after)
	}
}

func TestAdaptiveFallingHitRateBoostsAvailability(t *testing.T) {
	a := newAdaptive(t)
	a.Feedback(Observation{NetworkMBPerUnit: 100, HitRate: 0.8})
	before := a.Weights()
	a.Feedback(Observation{NetworkMBPerUnit: 100, HitRate: 0.6})
	after := a.Weights()
	if after.DAC <= before.DAC {
		t.Fatalf("DAC weight %v did not rise from %v under falling hit rate", after.DAC, before.DAC)
	}
}

func TestAdaptiveEvictionPressureBoostsDsCC(t *testing.T) {
	a := newAdaptive(t)
	a.Feedback(Observation{EvictionMBPerUnit: 10, HitRate: 0.5})
	before := a.Weights()
	a.Feedback(Observation{EvictionMBPerUnit: 30, HitRate: 0.5})
	after := a.Weights()
	if after.DsCC <= before.DsCC {
		t.Fatalf("DsCC weight %v did not rise from %v under eviction pressure", after.DsCC, before.DsCC)
	}
}

func TestAdaptiveDisabledComponentStaysDisabled(t *testing.T) {
	a, err := NewAdaptiveUtility(EqualOn(true, true, true, false), 0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	a.Feedback(Observation{EvictionMBPerUnit: 10, HitRate: 0.5})
	a.Feedback(Observation{EvictionMBPerUnit: 99, HitRate: 0.5})
	if got := a.Weights().DsCC; got != 0 {
		t.Fatalf("disabled DsCC became %v", got)
	}
}

// Property: weights remain a valid distribution within clamps under any
// observation sequence.
func TestAdaptiveWeightInvariants(t *testing.T) {
	a := newAdaptive(t)
	obs := []Observation{
		{NetworkMBPerUnit: 10, HitRate: 0.9, EvictionMBPerUnit: 0},
		{NetworkMBPerUnit: 500, HitRate: 0.1, EvictionMBPerUnit: 100},
		{NetworkMBPerUnit: 1, HitRate: 0.99, EvictionMBPerUnit: 0},
		{NetworkMBPerUnit: 1000, HitRate: 0.01, EvictionMBPerUnit: 500},
	}
	for round := 0; round < 200; round++ {
		a.Feedback(obs[round%len(obs)])
		w := a.Weights()
		if math.Abs(weightSum(w)-1) > 1e-6 {
			t.Fatalf("round %d: weights sum %v: %+v", round, weightSum(w), w)
		}
		for _, v := range []float64{w.CMC, w.AFC, w.DAC, w.DsCC} {
			if v != 0 && (v < MinWeight-1e-9 || v > MaxWeight+1e-9) {
				t.Fatalf("round %d: weight %v outside clamps: %+v", round, v, w)
			}
		}
	}
}

// The adapted policy must actually change decisions: after sustained
// network-load growth, an update-heavy document that was marginally stored
// becomes rejected.
func TestAdaptiveChangesDecisions(t *testing.T) {
	a := newAdaptive(t)
	ctx := Context{
		CloudLookupRate: 4, CloudUpdateRate: 12, // CMC = 0.25
		LocalAccessRate: 9, MeanLocalRate: 1, // AFC = 0.9
		ReplicaCount: 0, // DAC = 1
		Residence:    100, HolderResidence: 0,
	}
	before := a.ShouldStore(ctx)
	if !before.Store {
		t.Fatalf("baseline decision should store: %+v", before)
	}
	a.Feedback(Observation{NetworkMBPerUnit: 100, HitRate: 0.5})
	for i := 0; i < 60; i++ {
		a.Feedback(Observation{NetworkMBPerUnit: 100 * float64(i+2), HitRate: 0.5})
	}
	after := a.ShouldStore(ctx)
	if after.Utility >= before.Utility {
		t.Fatalf("utility did not fall after CMC emphasis: %v -> %v", before.Utility, after.Utility)
	}
	if a.Name() != "adaptive-utility" {
		t.Fatal("wrong name")
	}
}

// Package placement implements the paper's three document placement
// schemes (Section 3): ad hoc placement, beacon point placement, and the
// utility-based scheme whose four components weigh the benefits and costs
// of storing a retrieved copy at a particular edge cache.
//
// The mathematical formulations of the utility components appear only in
// the (unavailable) technical-report version of the paper, so this package
// uses the simplest monotone formulations consistent with the semantics the
// ICDCS text gives for each component; every formulation is documented on
// its function. All components are normalised to [0, 1], matching the
// paper's use of a weighted linear sum compared against a threshold of 0.5
// with weights summing to 1.
package placement

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadWeights is returned for invalid utility weights.
var ErrBadWeights = errors.New("placement: weights must be non-negative and sum to > 0")

// Context carries everything a placement policy may consult when a cache
// decides whether to store a document copy it just retrieved.
type Context struct {
	// Now is the current time unit.
	Now int64
	// CacheID is the deciding cache; DocURL and DocSize describe the copy.
	CacheID string
	DocURL  string
	DocSize int64
	// IsBeacon reports whether the deciding cache is the document's beacon
	// point in this cloud.
	IsBeacon bool

	// LocalAccessRate is the document's access rate at this cache
	// (accesses per unit, from the cache's continued monitoring).
	LocalAccessRate float64
	// MeanLocalRate is the mean per-document access rate over the
	// documents this cache currently stores.
	MeanLocalRate float64

	// CloudLookupRate and CloudUpdateRate are the beacon-side monitored
	// cloud-wide rates for the document.
	CloudLookupRate float64
	CloudUpdateRate float64

	// ReplicaCount is the number of copies already present in the cloud
	// (not counting the one being decided on).
	ReplicaCount int

	// Residence is this cache's expected copy residence time in units
	// (+Inf when the cache has unlimited space or no eviction pressure).
	Residence float64
	// HolderResidence is the mean expected residence of the existing
	// copies' caches (+Inf when those caches are unpressured; 0 when there
	// are no existing copies).
	HolderResidence float64
}

// Decision is a policy's verdict.
type Decision struct {
	Store bool
	// Utility and Components are populated by the utility policy
	// (zero-valued for ad hoc and beacon point placement).
	Utility    float64
	Components Components
}

// Components are the four utility terms.
type Components struct {
	// CMC is the consistency maintenance component: high when the document
	// is accessed more often than it is updated.
	CMC float64
	// AFC is the access frequency component: high when the document is hot
	// relative to the other documents stored at this cache.
	AFC float64
	// DAC is the document availability improvement component: high when
	// few copies exist in the cloud.
	DAC float64
	// DsCC is the disk-space contention component: high when the new copy
	// is likely to outlive the existing copies.
	DsCC float64
}

// Policy decides whether a cache that just retrieved a document should
// store it.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// ShouldStore returns the placement decision for the context.
	ShouldStore(ctx Context) Decision
}

// AdHoc is the paper's ad hoc placement scheme: every cache that receives a
// request for a document stores it. Simple, but it replicates without
// control, inflating consistency-maintenance costs and disk contention.
type AdHoc struct{}

var _ Policy = AdHoc{}

// Name implements Policy.
func (AdHoc) Name() string { return "adhoc" }

// ShouldStore implements Policy.
func (AdHoc) ShouldStore(Context) Decision { return Decision{Store: true} }

// BeaconPoint is the paper's beacon point caching scheme: a document is
// stored only at its beacon point, giving exactly one copy per cloud. It
// minimises update cost but concentrates load and forces every other cache
// to fetch remotely on every request.
type BeaconPoint struct{}

var _ Policy = BeaconPoint{}

// Name implements Policy.
func (BeaconPoint) Name() string { return "beacon" }

// ShouldStore implements Policy.
func (BeaconPoint) ShouldStore(ctx Context) Decision {
	return Decision{Store: ctx.IsBeacon}
}

// Weights are the utility component weights (the paper's β constants).
// They must be non-negative with a positive sum; Utility normalises them
// to sum to 1.
type Weights struct {
	CMC, AFC, DAC, DsCC float64
}

// EqualOn returns weights of 1/n over the components enabled by the flags,
// the paper's convention of giving each turned-on component weight 1/n.
func EqualOn(cmc, afc, dac, dscc bool) Weights {
	var w Weights
	n := 0.0
	for _, on := range []bool{cmc, afc, dac, dscc} {
		if on {
			n++
		}
	}
	if n == 0 {
		return w
	}
	v := 1 / n
	if cmc {
		w.CMC = v
	}
	if afc {
		w.AFC = v
	}
	if dac {
		w.DAC = v
	}
	if dscc {
		w.DsCC = v
	}
	return w
}

// Utility is the utility-based placement scheme: the weighted linear sum of
// the four components is compared against a threshold (0.5 in the paper's
// experiments).
type Utility struct {
	weights   Weights
	threshold float64
}

var _ Policy = (*Utility)(nil)

// NewUtility constructs the utility policy. Weights are normalised to sum
// to 1; the paper's experiments use threshold 0.5.
func NewUtility(w Weights, threshold float64) (*Utility, error) {
	if w.CMC < 0 || w.AFC < 0 || w.DAC < 0 || w.DsCC < 0 {
		return nil, fmt.Errorf("%w: %+v", ErrBadWeights, w)
	}
	sum := w.CMC + w.AFC + w.DAC + w.DsCC
	if sum <= 0 {
		return nil, fmt.Errorf("%w: %+v", ErrBadWeights, w)
	}
	return &Utility{
		weights: Weights{
			CMC: w.CMC / sum, AFC: w.AFC / sum, DAC: w.DAC / sum, DsCC: w.DsCC / sum,
		},
		threshold: threshold,
	}, nil
}

// Name implements Policy.
func (u *Utility) Name() string { return "utility" }

// Weights returns the normalised weights.
func (u *Utility) Weights() Weights { return u.weights }

// Threshold returns the storage threshold.
func (u *Utility) Threshold() float64 { return u.threshold }

// ShouldStore implements Policy.
func (u *Utility) ShouldStore(ctx Context) Decision {
	comp := Evaluate(ctx)
	util := u.weights.CMC*comp.CMC + u.weights.AFC*comp.AFC +
		u.weights.DAC*comp.DAC + u.weights.DsCC*comp.DsCC
	return Decision{Store: util > u.threshold, Utility: util, Components: comp}
}

// Evaluate computes the four utility components for a context.
func Evaluate(ctx Context) Components {
	return Components{
		CMC:  cmc(ctx),
		AFC:  afc(ctx),
		DAC:  dac(ctx),
		DsCC: dscc(ctx),
	}
}

// cmc — consistency maintenance component. The paper: "a high value
// indicates that the document is accessed more frequently than it is
// updated, and vice-versa". Formulation: the access fraction of the
// document's combined access+update traffic, lookups/(lookups+updates),
// which is 1 for never-updated documents, 0.5 at parity, and → 0 for
// update-dominated documents. With no observed traffic we return the
// neutral 0.5.
func cmc(ctx Context) float64 {
	a, u := ctx.CloudLookupRate, ctx.CloudUpdateRate
	if a <= 0 && u <= 0 {
		return 0.5
	}
	return a / (a + u)
}

// afc — access frequency component. The paper: high when the document's
// access frequency at this cache is high "in comparison to other documents
// stored in the cache". Formulation: the document's share against the mean
// per-document rate, local/(local+mean): 0.5 for an exactly average
// document, → 1 for hot ones, → 0 for cold ones.
func afc(ctx Context) float64 {
	l, m := ctx.LocalAccessRate, ctx.MeanLocalRate
	if l <= 0 && m <= 0 {
		return 0.5
	}
	return l / (l + m)
}

// dac — document availability improvement component. The marginal
// availability gain of one more replica shrinks with each existing copy;
// formulation: 1/(1+replicas), i.e. 1 for the first copy in the cloud, 1/2
// for the second, and so on.
func dac(ctx Context) float64 {
	r := ctx.ReplicaCount
	if r < 0 {
		r = 0
	}
	return 1 / (1 + float64(r))
}

// dscc — disk-space contention component. The paper: high when "the new
// document copy ... is likely to remain longer in the cache cloud than the
// existing copies". Formulation: the new copy's expected residence against
// the mean residence of the existing copies, mine/(mine+theirs), with 1
// when there are no existing copies and 0.5 when both sides are equally
// (un)pressured — including the both-infinite case. (An absolute
// contention-survival variant was evaluated during development and
// reproduced the paper's Figure 9 less faithfully; see EXPERIMENTS.md.)
func dscc(ctx Context) float64 {
	mine, theirs := ctx.Residence, ctx.HolderResidence
	if ctx.ReplicaCount <= 0 || theirs <= 0 {
		// No competing copies: storing strictly improves cloud residence.
		return 1
	}
	mineInf, theirsInf := math.IsInf(mine, 1), math.IsInf(theirs, 1)
	switch {
	case mineInf && theirsInf:
		return 0.5
	case mineInf:
		return 1
	case theirsInf:
		return 0
	case mine <= 0:
		return 0
	default:
		return mine / (mine + theirs)
	}
}

// ExpectedResidence estimates how long a newly stored copy survives at a
// cache: the byte capacity divided by the byte eviction rate (a cache that
// turns over its whole budget every T units keeps a new copy for ≈T units).
// Unlimited caches and caches with no eviction pressure return +Inf.
func ExpectedResidence(capacity int64, evictionByteRate float64) float64 {
	if capacity <= 0 || evictionByteRate <= 1e-12 {
		return math.Inf(1)
	}
	return float64(capacity) / evictionByteRate
}

package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"cachecloud/internal/admit"
)

// Restart-model constants: one cache node refilling after a process
// restart, its misses funneled through the admission primitives to a
// fixed-capacity origin (same shape as the storm model, smaller catalog
// so a restart can plausibly recover most of it).
const (
	restartDocs       = 400 // catalog size
	restartCacheCap   = 200 // cached documents (FIFO replacement)
	restartOriginRate = 3   // origin fetch completions per tick
	restartGateCap    = 64  // admission gate capacity (weight units)
	restartLimitMax   = 12  // limiter ceiling on in-flight origin fetches
	restartAlpha      = 0.9 // Zipf skew of document popularity
)

// RestartSweep is the result of the durability extension's restart sweep:
// a deterministic discrete-time model of the post-restart window, run
// once booting cold (memory-only: the cache restarts empty) and once
// booting warm (durable tier: the resident set survives, minus the
// fraction revalidation drops as stale). Both variants face identical
// arrival streams through the live admission primitives — internal/
// admit's Gate, Limiter and the coalescing discipline — so the delta in
// origin fetches is attributable to the durable tier alone.
type RestartSweep struct {
	// WarmupTicks fills the cache before the restart; RecoveryTicks is the
	// measured post-restart window (each drains to quiescence).
	WarmupTicks   int
	RecoveryTicks int
	Rows          []RestartRow
}

// RestartRow is one grid cell's post-restart outcome.
type RestartRow struct {
	Mode     string // cold (memory-only) or warm (durable tier)
	Rate     int    // arrivals per tick
	StalePct int    // % of the resident set revalidation drops as stale
	// Resident is the cache population at the restart; Recovered is what
	// survives the boot (0 for cold, Resident minus the stale drops for
	// warm).
	Resident  int
	Recovered int
	Offered   int64
	Served    int64
	Shed      int64
	// Hits are requests served straight from the recovered (or refilled)
	// cache — the number the durable tier exists to protect.
	Hits          int64
	Coalesced     int64
	OriginFetches int64
	GoodputPct    float64
	HitPct        float64
	// PeakInFlight is the most fetches ever simultaneously queued at the
	// origin during recovery; the restart storm the warm boot avoids.
	PeakInFlight int
}

// Format writes the sweep table.
func (s *RestartSweep) Format(w io.Writer) {
	fmt.Fprintf(w, "Restart sweep (extension): cold vs warm boot over a %d-tick recovery window on the live admission primitives\n", s.RecoveryTicks)
	fmt.Fprintf(w, "catalog %d, cache cap %d, origin serves %d fetches/tick; warm boots keep the resident set minus the stale%%\n",
		restartDocs, restartCacheCap, restartOriginRate)
	fmt.Fprintf(w, "%-5s %5s %6s %9s %10s %8s %8s %6s %8s %10s %8s %8s %5s\n",
		"mode", "rate", "stale", "resident", "recovered", "offered", "served",
		"shed", "hit", "coalesced", "fetches", "goodput", "peak")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%-5s %5d %5d%% %9d %10d %8d %8d %6d %7.1f%% %10d %8d %7.1f%% %5d\n",
			r.Mode, r.Rate, r.StalePct, r.Resident, r.Recovered, r.Offered, r.Served,
			r.Shed, r.HitPct, r.Coalesced, r.OriginFetches, r.GoodputPct, r.PeakInFlight)
	}
}

// restartCell runs one grid cell: a warmup phase fills the cache, the
// process "restarts" (cold: everything lost; warm: the resident set minus
// a stale fraction survives), and the recovery window is measured. The
// cell self-checks conservation over the recovery window before
// reporting.
func restartCell(seed int64, warm bool, stalePct, rate, warmupTicks, recoveryTicks int) (RestartRow, error) {
	rng := rand.New(rand.NewSource(seed))
	cum := zipfCDF(restartDocs, restartAlpha)
	gate := admit.NewGate(admit.GateOptions{Capacity: restartGateCap})
	lim := admit.NewLimiter(admit.LimiterOptions{Mode: admit.LimitAIMD, Max: restartLimitMax})

	type flight struct {
		doc     int
		waiters int64
		release func()
	}
	var (
		pending = make(map[int]*flight)
		origin  []*flight
		cached  = make(map[int]bool)
		fifo    []int
		row     = RestartRow{Rate: rate, StalePct: stalePct, Mode: "cold"}
		peak    int
	)
	if warm {
		row.Mode = "warm"
	}
	insert := func(doc int) {
		if cached[doc] {
			return
		}
		cached[doc] = true
		fifo = append(fifo, doc)
		if len(fifo) > restartCacheCap {
			delete(cached, fifo[0])
			fifo = fifo[1:]
		}
	}

	// phase runs `ticks` of arrivals then drains the origin to quiescence.
	// Counting is enabled only for the recovery phase.
	phase := func(ticks int, count bool) {
		for now := 0; ; now++ {
			for done := 0; len(origin) > 0 && done < restartOriginRate; done++ {
				f := origin[0]
				origin = origin[1:]
				lim.Release(0, true)
				f.release()
				delete(pending, f.doc)
				insert(f.doc)
				if count {
					row.Served += f.waiters
					row.Coalesced += f.waiters - 1
					row.OriginFetches++
				}
			}
			if now < ticks {
				for i := 0; i < rate; i++ {
					if count {
						row.Offered++
					}
					doc := sampleZipf(rng, cum)
					if cached[doc] {
						if rel, ok := gate.TryAcquire(admit.Hit); ok {
							rel()
							if count {
								row.Served++
								row.Hits++
							}
						} else if count {
							row.Shed++
						}
						continue
					}
					if f, ok := pending[doc]; ok {
						f.waiters++
						continue
					}
					grel, ok := gate.TryAcquire(admit.Miss)
					if !ok {
						if count {
							row.Shed++
						}
						continue
					}
					if !lim.TryAcquire() {
						grel()
						if count {
							row.Shed++
						}
						continue
					}
					f := &flight{doc: doc, waiters: 1, release: grel}
					pending[doc] = f
					origin = append(origin, f)
				}
			}
			if count && len(origin) > peak {
				peak = len(origin)
			}
			if now >= ticks && len(origin) == 0 {
				break
			}
		}
	}

	phase(warmupTicks, false)

	// The restart: memory state is gone. A cold boot starts empty; a warm
	// boot recovers the resident set from the durable tier, minus the
	// stale fraction revalidation drops.
	row.Resident = len(cached)
	survivors := fifo
	cached = make(map[int]bool)
	fifo = nil
	if warm {
		for _, doc := range survivors {
			if rng.Intn(100) < stalePct {
				continue // refreshed while down: revalidation drops it
			}
			insert(doc)
		}
	}
	row.Recovered = len(cached)

	phase(recoveryTicks, true)

	if row.Served+row.Shed != row.Offered {
		return row, fmt.Errorf("experiments: restartsweep %s rate=%d stale=%d: served %d + shed %d != offered %d",
			row.Mode, rate, stalePct, row.Served, row.Shed, row.Offered)
	}
	if gate.InFlight() != 0 || lim.InFlight() != 0 || len(pending) != 0 {
		return row, fmt.Errorf("experiments: restartsweep %s rate=%d stale=%d: not quiescent (gate %d, limiter %d, pending %d)",
			row.Mode, rate, stalePct, gate.InFlight(), lim.InFlight(), len(pending))
	}
	if row.Offered > 0 {
		row.GoodputPct = 100 * float64(row.Served) / float64(row.Offered)
	}
	if row.Served > 0 {
		row.HitPct = 100 * float64(row.Hits) / float64(row.Served)
	}
	row.PeakInFlight = peak
	return row, nil
}

// RestartSweepExperiment runs the restart grid on this Runner's pool:
// every (mode, rate, stale) cell is an independent deterministic run
// collected by index, so the sweep is byte-identical at any worker count.
// Paired cold/warm cells share one seed, so both face the same arrival
// stream.
func (r *Runner) RestartSweepExperiment(scale float64, seed int64) (*RestartSweep, error) {
	warmup := int(scaleDuration(160, scale))
	recovery := int(scaleDuration(160, scale))
	rates := []int{16, 64}
	stales := []int{0, 10, 30}
	type cell struct {
		warm     bool
		rate     int
		stalePct int
	}
	var cells []cell
	for _, warm := range []bool{false, true} {
		for _, rate := range rates {
			for _, st := range stales {
				cells = append(cells, cell{warm, rate, st})
			}
		}
	}
	out := &RestartSweep{WarmupTicks: warmup, RecoveryTicks: recovery, Rows: make([]RestartRow, len(cells))}
	err := r.Map(len(cells), func(i int) error {
		c := cells[i]
		// Pair cold and warm on the same seed: i%(len(rates)*len(stales))
		// identifies the (rate, stale) point independent of mode.
		cellSeed := seed + int64(i%(len(rates)*len(stales)))*7919
		row, err := restartCell(cellSeed, c.warm, c.stalePct, c.rate, warmup, recovery)
		if err != nil {
			return err
		}
		out.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RestartSweepExperiment runs the restart sweep on a default-sized Runner.
func RestartSweepExperiment(scale float64, seed int64) (*RestartSweep, error) {
	return NewRunner(0).RestartSweepExperiment(scale, seed)
}

package experiments

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
)

func TestMapRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 37
		var counts [n]int32
		err := NewRunner(workers).Map(n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, workers := range []int{1, 4} {
		err := NewRunner(workers).Map(10, func(i int) error {
			switch i {
			case 3:
				return errLow
			case 7:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: got %v, want %v", workers, err, errLow)
		}
	}
}

func TestMapZeroTasks(t *testing.T) {
	if err := NewRunner(4).Map(0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultWorkersEnvOverride(t *testing.T) {
	t.Setenv(WorkersEnv, "7")
	if got := DefaultWorkers(); got != 7 {
		t.Fatalf("DefaultWorkers() = %d, want 7", got)
	}
	if got := NewRunner(0).Workers(); got != 7 {
		t.Fatalf("NewRunner(0).Workers() = %d, want 7", got)
	}
	t.Setenv(WorkersEnv, "bogus")
	if got := DefaultWorkers(); got < 1 {
		t.Fatalf("DefaultWorkers() = %d with bad env, want >= 1", got)
	}
	if got := NewRunner(3).Workers(); got != 3 {
		t.Fatalf("NewRunner(3).Workers() = %d, want 3", got)
	}
}

// TestParallelMatchesSequential is the determinism regression test for the
// parallel engine: a reduced-scale Figure 6 sweep must produce
// byte-identical formatted output with 1 worker and with 4.
func TestParallelMatchesSequential(t *testing.T) {
	const scale, seed = 0.05, 1
	format := func(workers int) []byte {
		t.Helper()
		res, err := NewRunner(workers).Figure6(scale, seed)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		res.Format(&buf)
		return buf.Bytes()
	}
	seq := format(1)
	par := format(4)
	if !bytes.Equal(seq, par) {
		t.Fatalf("parallel output differs from sequential:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", seq, par)
	}
}

// TestRunnerResultDispatch covers the name dispatcher used by the CLI.
func TestRunnerResultDispatch(t *testing.T) {
	r := NewRunner(2)
	res, err := r.Result("capability", 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.(*Capability); !ok {
		t.Fatalf("Result(capability) = %T, want *Capability", res)
	}
	if _, err := r.Result("nope", 0.05, 1); err == nil {
		t.Fatal("Result(nope) succeeded, want error")
	}
}

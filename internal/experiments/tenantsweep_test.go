package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestTenantSweepShape checks the noisy-neighbor sweep's structure and
// the isolation claims it exists to demonstrate: every cell conserves
// its per-tenant books and holds the byte-quota invariant at every tick
// (the cell self-checks and errors otherwise), the victim's hit ratio
// under storm stays within the epsilon of its solo baseline, a weighted
// aggressor is genuinely shed at its share while a weight-0 aggressor is
// served nothing, and the result is byte-identical across worker counts.
func TestTenantSweepShape(t *testing.T) {
	r, err := TenantSweepExperiment(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.VictimOffered == 0 || row.AggrOffered == 0 {
			t.Fatalf("vacuous cell: %+v", row)
		}
		if row.DeltaPct > tenantEpsilonPct {
			t.Fatalf("victim degraded past epsilon: %+v", row)
		}
		if row.SoloHitPct < 50 || row.StormHitPct < 50 {
			t.Fatalf("victim hit ratio collapsed (warm working set should dominate): %+v", row)
		}
		if row.AggrPeakBytes > tenantAggrBytes {
			t.Fatalf("aggressor residency exceeded quota: %+v", row)
		}
		switch row.Law {
		case "1:0":
			if row.AggrServed != 0 || row.AggrShed != row.AggrOffered {
				t.Fatalf("weight-0 aggressor served: %+v", row)
			}
			if row.AggrPeakBytes != 0 {
				t.Fatalf("weight-0 aggressor held bytes: %+v", row)
			}
		default:
			if row.AggrShed == 0 {
				t.Fatalf("aggressor never shed — the storm never pressed the share: %+v", row)
			}
			if row.AggrServed == 0 {
				t.Fatalf("weighted aggressor starved outright: %+v", row)
			}
		}
		if row.VictimServed+row.VictimShed != row.VictimOffered {
			t.Fatalf("victim books do not balance: %+v", row)
		}
		if row.AggrServed+row.AggrShed != row.AggrOffered {
			t.Fatalf("aggressor books do not balance: %+v", row)
		}
	}

	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "noisy-neighbor sweep") {
		t.Fatal("format output unexpected")
	}

	// Byte-identical at any worker count.
	for _, workers := range []int{1, 7} {
		r2, err := NewRunner(workers).TenantSweepExperiment(testScale, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r, r2) {
			t.Fatalf("workers=%d: result differs from default run", workers)
		}
	}
}

// TestTenantCellSoloStormSameStream pins the baseline methodology: the
// victim's request stream is drawn from rng streams independent of the
// aggressor's, so the solo and storm runs of a cell offer the victim the
// byte-identical sequence — the neighbor is the only variable.
func TestTenantCellSoloStormSameStream(t *testing.T) {
	law := TenantLaw{Name: "7:1", VictimWeight: 7, AggrWeight: 1}
	solo, err := tenantCellRun(99, law, 0.9, 40, false)
	if err != nil {
		t.Fatal(err)
	}
	storm, err := tenantCellRun(99, law, 0.9, 40, true)
	if err != nil {
		t.Fatal(err)
	}
	if solo.offered["victim"] != storm.offered["victim"] {
		t.Fatalf("victim offered diverged: solo %d, storm %d", solo.offered["victim"], storm.offered["victim"])
	}
	if solo.offered["aggr"] != 0 || solo.served["aggr"] != 0 {
		t.Fatalf("solo run carried aggressor traffic: %+v", solo.offered)
	}
	if storm.offered["aggr"] == 0 {
		t.Fatal("storm run carried no aggressor traffic")
	}
}

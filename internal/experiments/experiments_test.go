package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// testScale keeps experiment tests fast while exercising the full pipeline.
const testScale = 0.15

func TestFigure3Shape(t *testing.T) {
	r, err := Figure3(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.StaticLoads) != 10 || len(r.DynamicLoads) != 10 {
		t.Fatalf("beacon counts: %d/%d", len(r.StaticLoads), len(r.DynamicLoads))
	}
	if r.DynamicCoV >= r.StaticCoV {
		t.Fatalf("dynamic CoV %.3f not better than static %.3f", r.DynamicCoV, r.StaticCoV)
	}
	if r.DynamicMaxMean >= r.StaticMaxMean {
		t.Fatalf("dynamic max/mean %.2f not better than static %.2f", r.DynamicMaxMean, r.StaticMaxMean)
	}
	if r.CoVImprovement() <= 0.2 {
		t.Fatalf("CoV improvement %.2f too small for Zipf-0.9", r.CoVImprovement())
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "Zipf-0.9") {
		t.Fatal("format lacks dataset name")
	}
}

func TestFigure4Shape(t *testing.T) {
	r, err := Figure4(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.DynamicCoV >= r.StaticCoV {
		t.Fatalf("dynamic CoV %.3f not better than static %.3f", r.DynamicCoV, r.StaticCoV)
	}
	// The paper reports max/mean ≈ 1.06 for dynamic hashing on Sydney;
	// allow slack for the synthetic stand-in but demand good balance.
	if r.DynamicMaxMean > 1.5 {
		t.Fatalf("dynamic max/mean %.2f too high", r.DynamicMaxMean)
	}
}

func TestFigure5Shape(t *testing.T) {
	r, err := Figure5(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range r.CloudSizes {
		// Dynamic hashing with 2-point rings already beats static hashing.
		if r.DynamicCoV[cs][2] >= r.StaticCoV[cs] {
			t.Fatalf("cloud %d: dynamic(2) CoV %.3f not better than static %.3f",
				cs, r.DynamicCoV[cs][2], r.StaticCoV[cs])
		}
		// Bigger rings must not be drastically worse than 2-point rings
		// (the paper finds incremental improvement).
		if r.DynamicCoV[cs][10] > r.StaticCoV[cs] {
			t.Fatalf("cloud %d: dynamic(10) CoV %.3f worse than static %.3f",
				cs, r.DynamicCoV[cs][10], r.StaticCoV[cs])
		}
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "dynamic 2/ring") {
		t.Fatalf("format output unexpected:\n%s", buf.String())
	}
}

func TestFigure6Shape(t *testing.T) {
	r, err := Figure6(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := len(r.Alphas)
	if len(r.StaticCoV) != n || len(r.DynamicCoV) != n {
		t.Fatalf("series lengths: %d/%d, want %d", len(r.StaticCoV), len(r.DynamicCoV), n)
	}
	// Static CoV grows with skew; at 0.9 the gap must be substantial.
	if r.StaticCoV[n-2] <= r.StaticCoV[0] {
		t.Fatalf("static CoV did not grow with skew: %.3f -> %.3f", r.StaticCoV[0], r.StaticCoV[n-2])
	}
	i09 := -1
	for i, a := range r.Alphas {
		if a == 0.90 {
			i09 = i
		}
	}
	if i09 == -1 {
		t.Fatal("alpha 0.9 missing from sweep")
	}
	if r.StaticCoV[i09] < r.DynamicCoV[i09]*1.3 {
		t.Fatalf("at alpha 0.9 static %.3f not clearly worse than dynamic %.3f",
			r.StaticCoV[i09], r.DynamicCoV[i09])
	}
}

func TestFigure7and8Shape(t *testing.T) {
	r, err := Figure7and8(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.LimitedDisk {
		t.Fatal("figure 7/8 must be the unlimited-disk sweep")
	}
	n := len(r.UpdateRates)
	for _, pol := range []string{"adhoc", "beacon", "utility"} {
		if len(r.StoredPct[pol]) != n || len(r.NetworkMB[pol]) != n {
			t.Fatalf("policy %s series incomplete", pol)
		}
	}
	// Figure 7 shapes: ad hoc flat and high, beacon flat and low, utility
	// decreasing with update rate.
	u := r.StoredPct["utility"]
	if u[0] <= u[n-1] {
		t.Fatalf("utility stored%% did not fall with update rate: %v", u)
	}
	for i := range r.UpdateRates {
		if r.StoredPct["beacon"][i] >= r.StoredPct["adhoc"][i] {
			t.Fatalf("beacon stored%% above adhoc at rate %d", r.UpdateRates[i])
		}
	}
	// Figure 8 shapes: utility lowest traffic at the highest update rate;
	// adhoc traffic grows with update rate.
	if r.NetworkMB["utility"][n-1] >= r.NetworkMB["adhoc"][n-1] {
		t.Fatalf("utility traffic %.2f not below adhoc %.2f at rate %d",
			r.NetworkMB["utility"][n-1], r.NetworkMB["adhoc"][n-1], r.UpdateRates[n-1])
	}
	if r.NetworkMB["adhoc"][n-1] <= r.NetworkMB["adhoc"][0] {
		t.Fatalf("adhoc traffic did not grow with update rate: %v", r.NetworkMB["adhoc"])
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "unlimited disk") {
		t.Fatal("format lacks disk mode")
	}
}

func TestFigure9Shape(t *testing.T) {
	r, err := Figure9(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.LimitedDisk {
		t.Fatal("figure 9 must be the limited-disk sweep")
	}
	n := len(r.UpdateRates)
	// Utility places the least load on the network across the sweep's
	// high-update half (the paper: lowest at all rates; allow the noisy
	// low-rate cells some slack at reduced scale).
	for i := n / 2; i < n; i++ {
		if r.NetworkMB["utility"][i] >= r.NetworkMB["adhoc"][i] {
			t.Fatalf("utility %.2f not below adhoc %.2f at rate %d",
				r.NetworkMB["utility"][i], r.NetworkMB["adhoc"][i], r.UpdateRates[i])
		}
	}
}

func TestRunByName(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig3", testScale, 1, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
	if err := Run("nope", testScale, 1, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 16 {
		t.Fatalf("names = %v", names)
	}
}

func TestLatencyExperimentShape(t *testing.T) {
	r, err := LatencyExperiment(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byArch := map[string]LatencyRow{}
	for _, row := range r.Rows {
		byArch[row.Arch] = row
		if !(row.P50Ms <= row.P95Ms && row.P95Ms <= row.P99Ms) {
			t.Fatalf("quantiles not ordered: %+v", row)
		}
	}
	// Cooperation must reduce mean latency versus independent caches.
	if byArch["dynamic-hashing"].MeanMs >= byArch["no-cooperation"].MeanMs {
		t.Fatalf("dynamic %.1fms not below no-coop %.1fms",
			byArch["dynamic-hashing"].MeanMs, byArch["no-cooperation"].MeanMs)
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "Client latency") {
		t.Fatal("format output unexpected")
	}
}

func TestCapabilityExperimentShape(t *testing.T) {
	r, err := CapabilityExperiment(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Static hashing is capability-blind: ratio near 1. Dynamic hashing
	// must push the realised ratio well toward the target of 3.
	if r.StaticRatio < 0.6 || r.StaticRatio > 1.6 {
		t.Fatalf("static ratio %.2f, want ≈1", r.StaticRatio)
	}
	if r.DynamicRatio < 2.0 {
		t.Fatalf("dynamic ratio %.2f, want ≳2 (target 3)", r.DynamicRatio)
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "capabilities") {
		t.Fatal("format output unexpected")
	}
}

func TestScaleOutShape(t *testing.T) {
	r, err := ScaleOutExperiment(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, clouds := range r.CloudCounts {
		if r.UpdateMessages[i] != float64(clouds) {
			t.Fatalf("msgs/update at %d clouds = %v, want %d", clouds, r.UpdateMessages[i], clouds)
		}
		if r.HitRate[i] <= 0 {
			t.Fatalf("no hits at %d clouds", clouds)
		}
	}
	// Per-holder push would cost more messages than per-cloud push for
	// replicated content at every network size.
	for i := range r.CloudCounts {
		if r.HolderRefreshes[i] <= r.UpdateMessages[i] {
			t.Fatalf("holder refreshes %v not above per-cloud messages %v",
				r.HolderRefreshes[i], r.UpdateMessages[i])
		}
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "scale-out") {
		t.Fatal("format output unexpected")
	}
}

func TestResilienceExperimentShape(t *testing.T) {
	r, err := ResilienceExperiment(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.RecordsLostBare == 0 {
		t.Fatal("no records lost without replication")
	}
	if r.RecordsLostRepl >= r.RecordsLostBare {
		t.Fatalf("replication did not reduce loss: %d vs %d", r.RecordsLostRepl, r.RecordsLostBare)
	}
	if r.RecordsRecovered == 0 {
		t.Fatal("nothing recovered")
	}
	if r.HitRateRepl < r.HitRateBare {
		t.Fatalf("replication hurt hit rate: %.3f vs %.3f", r.HitRateRepl, r.HitRateBare)
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "resilience") {
		t.Fatal("format output unexpected")
	}
}

func TestCrashSweepExperimentShape(t *testing.T) {
	r, err := CrashSweepExperiment(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	prevCrashes := 0
	for _, row := range r.Rows {
		if row.Crashes <= prevCrashes {
			t.Fatalf("crash counts not increasing: %+v", r.Rows)
		}
		prevCrashes = row.Crashes
		if row.RecordsLostBare == 0 {
			t.Fatalf("no records lost without replication at %d crashes", row.Crashes)
		}
		if row.RecordsLostRepl >= row.RecordsLostBare {
			t.Fatalf("replication did not reduce loss at %d crashes: %d vs %d",
				row.Crashes, row.RecordsLostRepl, row.RecordsLostBare)
		}
		if row.RecordsRecovered == 0 {
			t.Fatalf("nothing recovered at %d crashes", row.Crashes)
		}
		if row.RecoveredFrac <= 0 || row.RecoveredFrac > 1 {
			t.Fatalf("recovered fraction %.3f out of range at %d crashes",
				row.RecoveredFrac, row.Crashes)
		}
	}
	// More crashes must not lose fewer records (bare mode is monotone).
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].RecordsLostBare < r.Rows[i-1].RecordsLostBare {
			t.Fatalf("bare loss not monotone in crashes: %+v", r.Rows)
		}
	}
	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "Crash-schedule sweep") {
		t.Fatal("format output unexpected")
	}
}

func TestScaleHelpers(t *testing.T) {
	if scaleDuration(240, 0) != 240 {
		t.Fatal("zero scale must default to 1")
	}
	if scaleDuration(240, 0.01) != 20 {
		t.Fatal("duration floor not applied")
	}
	if cycleFor(1440) != 60 {
		t.Fatal("full-length cycle should be 60")
	}
	if cycleFor(40) != 10 {
		t.Fatalf("short-run cycle = %d, want 10", cycleFor(40))
	}
	if cycleFor(2) != 1 {
		t.Fatal("cycle floor not applied")
	}
}

// Every registered experiment name must run end to end through the
// dispatcher (tiny scale keeps this fast).
func TestEveryExperimentDispatches(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(name, 0.05, 1, &buf); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Fatal("no output")
			}
		})
	}
}

// TestStormSweepShape checks the overload sweep's structure and its core
// claims: conservation holds in every cell (the cell function self-checks
// and errors otherwise), the limiter ceiling bounds peak origin
// in-flight, the adaptive limiter keeps mean fetch latency below the
// full-throttle limiter under the heaviest storm, and the result is
// byte-identical across worker counts.
func TestStormSweepShape(t *testing.T) {
	r, err := StormSweepExperiment(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(r.Rows))
	}
	cellAt := func(mode string, rate int, alpha float64) StormRow {
		for _, row := range r.Rows {
			if row.Mode == mode && row.Rate == rate && row.Alpha == alpha {
				return row
			}
		}
		t.Fatalf("missing cell %s/%d/%.2f", mode, rate, alpha)
		return StormRow{}
	}
	for _, row := range r.Rows {
		if row.Offered == 0 || row.Served == 0 {
			t.Fatalf("vacuous cell: %+v", row)
		}
		if row.PeakInFlight > stormLimitMax {
			t.Fatalf("peak in-flight %d exceeds limiter max %d: %+v", row.PeakInFlight, stormLimitMax, row)
		}
		if row.Rate >= 16 && row.Coalesced == 0 {
			t.Fatalf("no coalescing under a heavy storm: %+v", row)
		}
	}
	// Under the heaviest storm the adaptive limiter must keep origin
	// fetch latency below full throttle — that is the protection claim.
	adaptive, fixed := cellAt("aimd", 64, 0.9), cellAt("fixed", 64, 0.9)
	if adaptive.MeanFetchMs >= fixed.MeanFetchMs {
		t.Fatalf("aimd mean %.1fms not below fixed %.1fms", adaptive.MeanFetchMs, fixed.MeanFetchMs)
	}

	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "storm sweep") {
		t.Fatal("format output unexpected")
	}

	// Byte-identical at any worker count.
	for _, workers := range []int{1, 7} {
		r2, err := NewRunner(workers).StormSweepExperiment(testScale, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r, r2) {
			t.Fatalf("workers=%d: result differs from default run", workers)
		}
	}
}

// TestRestartSweepShape checks the restart sweep's structure and the
// durability claim it exists to demonstrate: every cell conserves its
// books (the cell self-checks and errors otherwise), cold boots recover
// nothing while warm boots recover the resident set minus the stale
// fraction, a warm boot serves strictly more of the identical arrival
// stream than its paired cold boot, and the result is byte-identical
// across worker counts.
func TestRestartSweepShape(t *testing.T) {
	r, err := RestartSweepExperiment(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(r.Rows))
	}
	cellAt := func(mode string, rate, stale int) RestartRow {
		for _, row := range r.Rows {
			if row.Mode == mode && row.Rate == rate && row.StalePct == stale {
				return row
			}
		}
		t.Fatalf("missing cell %s/%d/%d", mode, rate, stale)
		return RestartRow{}
	}
	for _, row := range r.Rows {
		if row.Offered == 0 || row.Served == 0 || row.Resident == 0 {
			t.Fatalf("vacuous cell: %+v", row)
		}
		switch row.Mode {
		case "cold":
			if row.Recovered != 0 {
				t.Fatalf("cold boot recovered %d entries: %+v", row.Recovered, row)
			}
		case "warm":
			if row.Recovered == 0 || row.Recovered > row.Resident {
				t.Fatalf("warm recovery out of range: %+v", row)
			}
			if row.StalePct == 0 && row.Recovered != row.Resident {
				t.Fatalf("warm boot with nothing stale lost entries: %+v", row)
			}
		default:
			t.Fatalf("unknown mode: %+v", row)
		}
	}
	// The durability payoff: on the identical arrival stream, the warm
	// boot serves more and at a higher hit ratio than its cold pair.
	for _, rate := range []int{16, 64} {
		for _, stale := range []int{0, 10, 30} {
			cold, warm := cellAt("cold", rate, stale), cellAt("warm", rate, stale)
			if warm.Served <= cold.Served {
				t.Fatalf("rate=%d stale=%d: warm served %d not above cold %d",
					rate, stale, warm.Served, cold.Served)
			}
			if warm.HitPct <= cold.HitPct {
				t.Fatalf("rate=%d stale=%d: warm hit%% %.1f not above cold %.1f",
					rate, stale, warm.HitPct, cold.HitPct)
			}
		}
	}

	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "Restart sweep") {
		t.Fatal("format output unexpected")
	}

	// Byte-identical at any worker count.
	for _, workers := range []int{1, 7} {
		r2, err := NewRunner(workers).RestartSweepExperiment(testScale, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r, r2) {
			t.Fatalf("workers=%d: result differs from default run", workers)
		}
	}
}

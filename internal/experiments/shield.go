package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"cachecloud/internal/shield"
)

// Shield-sweep constants: the workload each grid cell drives through the
// two-tier fabric model.
const (
	shieldDocs        = 40  // catalog size
	shieldAlpha       = 0.9 // Zipf skew of document popularity
	shieldReqPerCloud = 2   // fetch attempts per cloud per tick
	shieldPubPerTick  = 3   // origin publishes per tick
	// shieldEvictP re-fetches an already-held document occasionally,
	// modelling edge-cache evictions without a full replacement policy.
	shieldEvictP = 0.05
)

// ShieldSweep is the result of the two-tier hierarchy sweep (extension):
// the deterministic shield-tier fabric (internal/shield) driven over a
// cloud-count × shield-count grid, with shield count 0 as the single-tier
// baseline. The headline series is origin update messages per publish:
// O(clouds) in the baseline, collapsed to O(shields) behind the tier.
type ShieldSweep struct {
	// Ticks is the workload length of every cell.
	Ticks int
	// CloudCounts and ShieldCounts span the grid (shield count 0 is the
	// single-tier baseline row).
	CloudCounts  []int
	ShieldCounts []int
	Rows         []ShieldRow
}

// ShieldRow is one grid cell's outcome.
type ShieldRow struct {
	Clouds  int
	Shields int // 0 = single-tier baseline
	// Publishes is the number of origin writes driven through the cell.
	Publishes int64
	// OriginUpdates is origin-sent update messages (per shield behind the
	// tier, per holding cloud in the baseline); UpdatesPerPublish is the
	// same normalised per publish — the O(clouds) → O(shields) series.
	OriginUpdates    int64
	UpdatesPerPublish float64
	// ShieldUpdates is shield → cloud fan-out messages (0 in the baseline).
	ShieldUpdates int64
	// OriginFetches counts fetches answered by the origin (shield misses
	// plus, in the baseline, every cloud miss); ShieldHits counts cloud
	// misses absorbed by the shield tier.
	OriginFetches int64
	ShieldHits    int64
	// OriginBytes is total payload bytes the origin served (fetches and
	// updates) — the origin-bandwidth series.
	OriginBytes int64
	// PurgeMessages counts scoped and global purge control messages.
	PurgeMessages int64
}

// Format writes the sweep table plus the per-cloud-count reduction of
// origin update traffic at each shield count.
func (s *ShieldSweep) Format(w io.Writer) {
	fmt.Fprintf(w, "Two-tier shield sweep (extension): %d-tick publish/fetch/purge workloads on the shield-tier fabric\n", s.Ticks)
	fmt.Fprintf(w, "shield count 0 is the single-tier baseline (origin updates every holding cloud directly)\n")
	fmt.Fprintf(w, "%-7s %8s %9s %9s %11s %9s %9s %9s %11s %7s\n",
		"clouds", "shields", "publishes", "orig-upd", "upd/publish", "shld-upd",
		"orig-fet", "shld-hit", "orig-bytes", "purges")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%-7d %8d %9d %9d %11.2f %9d %9d %9d %11d %7d\n",
			r.Clouds, r.Shields, r.Publishes, r.OriginUpdates, r.UpdatesPerPublish,
			r.ShieldUpdates, r.OriginFetches, r.ShieldHits, r.OriginBytes, r.PurgeMessages)
	}
	base := make(map[int]float64)
	for _, r := range s.Rows {
		if r.Shields == 0 {
			base[r.Clouds] = r.UpdatesPerPublish
		}
	}
	fmt.Fprintln(w, "Origin update-message reduction vs single tier:")
	for _, r := range s.Rows {
		if r.Shields == 0 || base[r.Clouds] == 0 {
			continue
		}
		fmt.Fprintf(w, "  %3d clouds / %d shields: %5.1f%% fewer origin update messages (%.2f -> %.2f per publish)\n",
			r.Clouds, r.Shields, 100*(1-r.UpdatesPerPublish/base[r.Clouds]),
			base[r.Clouds], r.UpdatesPerPublish)
	}
}

// shieldCell drives one deterministic workload through a fabric with the
// given shield count: every tick each cloud attempts its fetches against
// a Zipf-popular catalog, the origin publishes updates, and scoped and
// global purges land periodically. The cell self-checks the cross-tier
// books — exactly-once delivery per shield per publish, fan-out
// conservation, the staleness bound, and quiescent freshness after a
// final resync — before reporting.
func shieldCell(seed int64, clouds, shields, ticks int) (ShieldRow, error) {
	tier, err := shield.New(shield.Config{Shields: shields})
	if err != nil {
		return ShieldRow{}, fmt.Errorf("experiments: shieldsweep %d/%d: %w", clouds, shields, err)
	}
	rng := rand.New(rand.NewSource(seed))
	cum := zipfCDF(shieldDocs, shieldAlpha)
	row := ShieldRow{Clouds: clouds, Shields: shields}
	url := func(d int) string { return fmt.Sprintf("http://cloud/doc/%03d", d) }
	cloudID := func(c int) string { return fmt.Sprintf("c%02d", c) }

	for tick := 0; tick < ticks; tick++ {
		for c := 0; c < clouds; c++ {
			for i := 0; i < shieldReqPerCloud; i++ {
				u := url(sampleZipf(rng, cum))
				if _, held := tier.CloudVersion(u, cloudID(c)); held && rng.Float64() >= shieldEvictP {
					continue // edge-cache hit: never enters the fabric
				}
				tier.Fetch(u, cloudID(c))
			}
		}
		for i := 0; i < shieldPubPerTick; i++ {
			rep := tier.Publish(url(sampleZipf(rng, cum)))
			row.Publishes++
			for sid, n := range rep.PerShield {
				if n != 1 {
					return row, fmt.Errorf("experiments: shieldsweep %d/%d: shield %s got %d updates for one publish",
						clouds, shields, sid, n)
				}
			}
			// Conservation: behind the tier every shield fan-out message
			// either refreshed a copy or pruned a dead subscription; in
			// the baseline every origin message refreshed a holding cloud.
			delivered, sent := rep.CloudsRefreshed+rep.SubsPruned, rep.ShieldMessages
			if shields == 0 {
				sent = rep.OriginMessages
			}
			if sent != delivered {
				return row, fmt.Errorf("experiments: shieldsweep %d/%d: fan-out books don't balance: %+v",
					clouds, shields, rep)
			}
		}
		if tick%40 == 20 {
			tier.PurgeGlobal(url(sampleZipf(rng, cum)))
		}
		if tick%25 == 5 {
			tier.PurgeCloud(url(sampleZipf(rng, cum)), cloudID(rng.Intn(clouds)))
		}
	}

	if err := tier.CheckStalenessBound(); err != nil {
		return row, fmt.Errorf("experiments: shieldsweep %d/%d: %w", clouds, shields, err)
	}
	for _, sid := range tier.ShieldIDs() {
		if _, err := tier.Resync(sid); err != nil {
			return row, fmt.Errorf("experiments: shieldsweep %d/%d: %w", clouds, shields, err)
		}
	}
	if err := tier.CheckQuiescent(); err != nil {
		return row, fmt.Errorf("experiments: shieldsweep %d/%d: %w", clouds, shields, err)
	}

	ctr := tier.Counters
	row.OriginUpdates = ctr.OriginUpdates
	row.ShieldUpdates = ctr.ShieldUpdates
	row.OriginFetches = ctr.OriginFetches + ctr.DirectFetches
	row.ShieldHits = ctr.ShieldHits
	row.OriginBytes = ctr.OriginBytes
	row.PurgeMessages = ctr.PurgeMessages
	if row.Publishes > 0 {
		row.UpdatesPerPublish = float64(row.OriginUpdates) / float64(row.Publishes)
	}
	return row, nil
}

// ShieldSweepExperiment runs the two-tier grid on this Runner's pool:
// every (clouds, shields) cell is an independent deterministic run
// collected by index, so the sweep is byte-identical at any worker count.
func (r *Runner) ShieldSweepExperiment(scale float64, seed int64) (*ShieldSweep, error) {
	ticks := int(scaleDuration(120, scale))
	out := &ShieldSweep{
		Ticks:        ticks,
		CloudCounts:  []int{4, 16, 64},
		ShieldCounts: []int{0, 4, 8},
	}
	type cell struct{ clouds, shields int }
	var cells []cell
	for _, cc := range out.CloudCounts {
		for _, sc := range out.ShieldCounts {
			cells = append(cells, cell{cc, sc})
		}
	}
	out.Rows = make([]ShieldRow, len(cells))
	err := r.Map(len(cells), func(i int) error {
		c := cells[i]
		row, err := shieldCell(seed+int64(i)*7919, c.clouds, c.shields, ticks)
		if err != nil {
			return err
		}
		out.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ShieldSweepExperiment runs the two-tier shield sweep on a default-sized
// Runner.
func ShieldSweepExperiment(scale float64, seed int64) (*ShieldSweep, error) {
	return NewRunner(0).ShieldSweepExperiment(scale, seed)
}

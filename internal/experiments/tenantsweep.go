package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"cachecloud/internal/cache"
	"cachecloud/internal/document"
	"cachecloud/internal/tenant"
)

// Tenant-model constants: one cache node shared by a warm victim tenant
// and an aggressor tenant, in front of a fixed-capacity FIFO origin. The
// victim's working set fits the node and is kept warm; an origin purge
// stream forces periodic refetches, so the victim is exposed to origin
// queueing — exactly the channel a noisy neighbor would use to hurt it.
// The weighted fair share bounds how much of the origin queue the
// aggressor can occupy, and the byte quota bounds its residency, so the
// victim's hit ratio under storm must stay within tenantEpsilonPct of
// its solo baseline.
const (
	tenantVictimDocs = 40      // victim catalog (fits the node, kept warm)
	tenantAggrDocs   = 400     // aggressor catalog (can never fit its quota)
	tenantDocBytes   = 1000    // uniform document size
	tenantCacheBytes = 1 << 20 // node capacity; only the quotas ever bind
	tenantShareCap   = 64      // admission budget the tenant weights divide
	tenantOriginRate = 8       // origin fetch completions per tick
	tenantVictimRate = 8       // victim arrivals per tick
	tenantAggrRate   = 48      // aggressor arrivals per tick (the storm)
	tenantAggrBytes  = 8000    // aggressor resident-byte quota (8 documents)
	tenantAggrAlpha  = 0.6     // aggressor popularity skew (fixed)
	// tenantEpsilonPct is the isolation law: the victim's hit ratio under
	// storm may trail its solo baseline by at most this many points. The
	// bound reflects the fair-share guarantee: the aggressor can occupy
	// at most its share of the origin queue, so a victim refetch is
	// delayed by at most aggrShare/originRate ticks — a few points of
	// coalesced misses on the hottest documents, never a collapse.
	tenantEpsilonPct = 7.5
)

// TenantLaw is one quota configuration of the sweep grid: the victim and
// aggressor admission weights (the byte quota is fixed).
type TenantLaw struct {
	Name         string
	VictimWeight int
	AggrWeight   int
}

// tenantLaws is the quota-law axis: a strongly protected victim, a
// moderately protected one, and the weight-0 degenerate law (the
// aggressor is admitted nothing at all).
func tenantLaws() []TenantLaw {
	return []TenantLaw{
		{Name: "7:1", VictimWeight: 7, AggrWeight: 1},
		{Name: "3:1", VictimWeight: 3, AggrWeight: 1},
		{Name: "1:0", VictimWeight: 1, AggrWeight: 0},
	}
}

// TenantSweep is the result of the multi-tenant noisy-neighbor sweep
// (extension): a deterministic discrete-time model driven over a
// quota-law × Zipf-skew grid, once with the victim alone (solo baseline)
// and once under an aggressor flash crowd. Every cell runs the live
// tenancy primitives — tenant.Registry, the weighted-fair admission
// share, and the cache's tenant-fair byte-quota eviction — and
// self-checks the isolation laws before reporting, so the sweep doubles
// as an invariant gate.
type TenantSweep struct {
	// Ticks is the arrival phase length; each run then drains to
	// quiescence before its books are balanced.
	Ticks int
	Rows  []TenantRow
}

// TenantRow is one grid cell's outcome.
type TenantRow struct {
	Law   string  // victim:aggressor admission weights
	Alpha float64 // Zipf skew of victim document popularity

	// SoloHitPct is the victim's hit ratio with the node to itself;
	// StormHitPct is the same victim request stream under the aggressor
	// flash crowd. DeltaPct = solo − storm, bounded by tenantEpsilonPct.
	SoloHitPct  float64
	StormHitPct float64
	DeltaPct    float64

	// Per-tenant books of the storm run (conservation-checked).
	VictimOffered int64
	VictimServed  int64
	VictimShed    int64
	AggrOffered   int64
	AggrServed    int64
	AggrShed      int64

	// AggrPeakBytes is the most resident bytes the aggressor ever held;
	// its byte quota bounds it at every tick.
	AggrPeakBytes int64
	// OriginFetches counts origin round-trips in the storm run.
	OriginFetches int64
}

// Format writes the sweep table.
func (s *TenantSweep) Format(w io.Writer) {
	fmt.Fprintf(w, "Multi-tenant noisy-neighbor sweep (extension): %d-tick storms on the live tenancy primitives\n", s.Ticks)
	fmt.Fprintf(w, "weighted fair share over %d admission units; aggressor byte quota %dB; isolation epsilon %.1f points\n",
		tenantShareCap, tenantAggrBytes, tenantEpsilonPct)
	fmt.Fprintf(w, "%-5s %5s %6s %6s %6s %7s %7s %6s %7s %7s %7s %7s %7s\n",
		"law", "alpha", "solo", "storm", "delta", "v-off", "v-srv", "v-shed",
		"a-off", "a-srv", "a-shed", "a-peakB", "fetches")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%-5s %5.2f %5.1f%% %5.1f%% %6.2f %7d %7d %6d %7d %7d %7d %7d %7d\n",
			r.Law, r.Alpha, r.SoloHitPct, r.StormHitPct, r.DeltaPct,
			r.VictimOffered, r.VictimServed, r.VictimShed,
			r.AggrOffered, r.AggrServed, r.AggrShed, r.AggrPeakBytes, r.OriginFetches)
	}
}

// tenantRun is one run's per-tenant books.
type tenantRun struct {
	offered, served, shed, hits map[string]int64
	originFetches               int64
	aggrPeak                    int64
}

func (t *tenantRun) hitPct(id string) float64 {
	if t.offered[id] == 0 {
		return 0
	}
	return 100 * float64(t.hits[id]) / float64(t.offered[id])
}

// tenantCellRun drives one run of a grid cell: the victim's warm working
// set under a deterministic purge/refetch stream, plus — when storm is
// set — the aggressor flash crowd, all against the registry-backed fair
// share and a tenant-quota-enforcing cache. The victim's rng streams are
// independent of the aggressor's, so solo and storm runs see the
// byte-identical victim request sequence; the only variable is the
// neighbor. The run self-checks per-tenant conservation, the byte-quota
// invariant at every tick, and quiescence.
func tenantCellRun(seed int64, law TenantLaw, alpha float64, ticks int, storm bool) (*tenantRun, error) {
	const victim, aggr = "victim", "aggr"
	vrng := rand.New(rand.NewSource(seed*3 + 1))
	arng := rand.New(rand.NewSource(seed*5 + 2))
	prng := rand.New(rand.NewSource(seed*7 + 3))
	vcum := zipfCDF(tenantVictimDocs, alpha)
	acum := zipfCDF(tenantAggrDocs, tenantAggrAlpha)

	// Both runs register both tenants: the victim's share must not depend
	// on whether the neighbor happens to be sending traffic.
	reg, err := tenant.NewRegistry(map[string]tenant.Quota{
		victim: {Weight: law.VictimWeight},
		aggr:   {Weight: law.AggrWeight, Bytes: tenantAggrBytes},
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: tenantsweep registry: %w", err)
	}
	fs := tenant.NewFairShare(reg, tenantShareCap)
	c := cache.New("tenant-cell", tenantCacheBytes)
	c.SetTenantQuotas(reg)

	key := func(tid string, rank int) string {
		// Victim and aggressor deliberately share the raw URL space; only
		// the tenant fold keeps their documents apart.
		return tenant.Key(tid, fmt.Sprintf("http://cell/doc/%03d", rank))
	}
	doc := func(tid string, rank int) docFlight {
		return docFlight{tenant: tid, key: key(tid, rank)}
	}
	put := func(k string, now int64) error {
		cp := document.Copy{
			Doc:       document.Document{URL: k, Size: tenantDocBytes, Version: 1},
			FetchedAt: now,
		}
		_, err := c.Put(cp, now)
		return err
	}

	// Warm the victim: the sweep measures isolation of an established
	// working set, not cold-start convergence.
	for rank := 0; rank < tenantVictimDocs; rank++ {
		if err := put(key(victim, rank), 0); err != nil {
			return nil, fmt.Errorf("experiments: tenantsweep warmup: %w", err)
		}
	}

	run := &tenantRun{
		offered: map[string]int64{}, served: map[string]int64{},
		shed: map[string]int64{}, hits: map[string]int64{},
	}
	type flight struct {
		doc     docFlight
		waiters int64
		release func()
	}
	pending := make(map[string]*flight)
	var origin []*flight

	arrive := func(tid string, d docFlight) {
		run.offered[tid]++
		rel, ok := fs.TryAcquire(tid)
		if !ok {
			run.shed[tid]++
			return
		}
		if _, hit := c.Get(d.key, 0); hit {
			rel()
			run.served[tid]++
			run.hits[tid]++
			return
		}
		if f, inflight := pending[d.key]; inflight {
			rel()
			f.waiters++ // coalesce onto the in-flight fetch
			return
		}
		f := &flight{doc: d, waiters: 1, release: rel}
		pending[d.key] = f
		origin = append(origin, f)
	}

	for now := 0; ; now++ {
		// The origin completes up to its per-tick capacity in FIFO order;
		// a completed fetch serves its whole coalesced group. The Put runs
		// the cache's tenant-fair eviction, so an over-quota aggressor
		// reclaims only its own residency.
		for done := 0; len(origin) > 0 && done < tenantOriginRate; done++ {
			f := origin[0]
			origin = origin[1:]
			f.release()
			delete(pending, f.doc.key)
			if err := put(f.doc.key, int64(now)); err != nil {
				return nil, fmt.Errorf("experiments: tenantsweep %s alpha=%.2f: put %s: %w", law.Name, alpha, f.doc.key, err)
			}
			run.served[f.doc.tenant] += f.waiters
			run.originFetches++
		}

		if now < ticks {
			// The origin purges one victim document per tick (an update
			// invalidating the copy); its next request refetches through
			// the shared origin — the victim's exposure to the neighbor.
			c.Remove(key(victim, sampleZipf(prng, vcum)))
			for i := 0; i < tenantVictimRate; i++ {
				arrive(victim, doc(victim, sampleZipf(vrng, vcum)))
			}
			if storm {
				for i := 0; i < tenantAggrRate; i++ {
					arrive(aggr, doc(aggr, sampleZipf(arng, acum)))
				}
			}
		}

		// The byte-quota invariant holds at every tick, not just at rest.
		if used := c.TenantUsed(aggr); used > tenantAggrBytes {
			return nil, fmt.Errorf("experiments: tenantsweep %s alpha=%.2f: aggressor resident %dB exceeds quota %dB at tick %d",
				law.Name, alpha, used, tenantAggrBytes, now)
		} else if used > run.aggrPeak {
			run.aggrPeak = used
		}
		if now >= ticks && len(origin) == 0 {
			break
		}
	}

	for _, tid := range []string{victim, aggr} {
		if run.served[tid]+run.shed[tid] != run.offered[tid] {
			return nil, fmt.Errorf("experiments: tenantsweep %s alpha=%.2f: tenant %s served %d + shed %d != offered %d",
				law.Name, alpha, tid, run.served[tid], run.shed[tid], run.offered[tid])
		}
		if fs.InFlight(tid) != 0 {
			return nil, fmt.Errorf("experiments: tenantsweep %s alpha=%.2f: tenant %s not quiescent (%d in flight)",
				law.Name, alpha, tid, fs.InFlight(tid))
		}
	}
	if len(pending) != 0 {
		return nil, fmt.Errorf("experiments: tenantsweep %s alpha=%.2f: %d fetches still pending", law.Name, alpha, len(pending))
	}
	return run, nil
}

// docFlight identifies one requested document.
type docFlight struct {
	tenant string
	key    string
}

// tenantCell runs a grid cell's solo baseline and storm run and checks
// the cross-run isolation laws: the victim's hit ratio may trail its
// solo baseline by at most tenantEpsilonPct; a weighted aggressor must
// actually have been shed at its share (otherwise the cell never tested
// the law); a weight-0 aggressor must be served nothing.
func tenantCell(seed int64, law TenantLaw, alpha float64, ticks int) (TenantRow, error) {
	row := TenantRow{Law: law.Name, Alpha: alpha}
	solo, err := tenantCellRun(seed, law, alpha, ticks, false)
	if err != nil {
		return row, err
	}
	storm, err := tenantCellRun(seed, law, alpha, ticks, true)
	if err != nil {
		return row, err
	}
	row.SoloHitPct = solo.hitPct("victim")
	row.StormHitPct = storm.hitPct("victim")
	row.DeltaPct = row.SoloHitPct - row.StormHitPct
	row.VictimOffered = storm.offered["victim"]
	row.VictimServed = storm.served["victim"]
	row.VictimShed = storm.shed["victim"]
	row.AggrOffered = storm.offered["aggr"]
	row.AggrServed = storm.served["aggr"]
	row.AggrShed = storm.shed["aggr"]
	row.AggrPeakBytes = storm.aggrPeak
	row.OriginFetches = storm.originFetches

	if row.DeltaPct > tenantEpsilonPct {
		return row, fmt.Errorf("experiments: tenantsweep %s alpha=%.2f: victim hit ratio fell %.2f points under storm (epsilon %.1f): solo %.2f%%, storm %.2f%%",
			law.Name, alpha, row.DeltaPct, tenantEpsilonPct, row.SoloHitPct, row.StormHitPct)
	}
	if law.AggrWeight == 0 {
		if row.AggrServed != 0 || row.AggrShed != row.AggrOffered {
			return row, fmt.Errorf("experiments: tenantsweep %s alpha=%.2f: weight-0 aggressor was served %d of %d",
				law.Name, alpha, row.AggrServed, row.AggrOffered)
		}
	} else if row.AggrShed == 0 {
		return row, fmt.Errorf("experiments: tenantsweep %s alpha=%.2f: aggressor was never shed at its share — the storm never tested the law",
			law.Name, alpha)
	}
	return row, nil
}

// TenantSweepExperiment runs the noisy-neighbor grid on this Runner's
// pool: every (law, alpha) cell is an independent deterministic
// solo+storm pair collected by index, so the sweep is byte-identical at
// any worker count.
func (r *Runner) TenantSweepExperiment(scale float64, seed int64) (*TenantSweep, error) {
	ticks := int(scaleDuration(240, scale))
	laws := tenantLaws()
	alphas := []float64{0.5, 0.9}
	type cell struct {
		law   TenantLaw
		alpha float64
	}
	var cells []cell
	for _, law := range laws {
		for _, a := range alphas {
			cells = append(cells, cell{law, a})
		}
	}
	out := &TenantSweep{Ticks: ticks, Rows: make([]TenantRow, len(cells))}
	err := r.Map(len(cells), func(i int) error {
		c := cells[i]
		row, err := tenantCell(seed+int64(i)*7919, c.law, c.alpha, ticks)
		if err != nil {
			return err
		}
		out.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TenantSweepExperiment runs the multi-tenant noisy-neighbor sweep on a
// default-sized Runner.
func TenantSweepExperiment(scale float64, seed int64) (*TenantSweep, error) {
	return NewRunner(0).TenantSweepExperiment(scale, seed)
}

package experiments

import (
	"fmt"
	"io"
)

// ScaleOut is an extension experiment beyond the paper's figures: it grows
// the edge cache network from 1 to 8 clouds (10 caches each) and measures
// the cooperative-consistency benefit the paper motivates in Section 1 —
// the origin sends one update message per cloud instead of one per holding
// cache — together with the in-network hit rate.
type ScaleOut struct {
	CloudCounts []int
	// UpdateMessages[i] is origin→cloud messages per update event at
	// CloudCounts[i] clouds; HolderRefreshes[i] is what a per-holder push
	// would have cost.
	UpdateMessages  []float64
	HolderRefreshes []float64
	HitRate         []float64
}

// Format writes the experiment's series as text.
func (s *ScaleOut) Format(w io.Writer) {
	fmt.Fprintln(w, "Edge-network scale-out (extension): per-update origin cost vs clouds")
	fmt.Fprintf(w, "%-8s %18s %18s %10s\n", "clouds", "msgs/update", "holder-refreshes", "hit rate")
	for i, c := range s.CloudCounts {
		fmt.Fprintf(w, "%-8d %18.1f %18.1f %9.1f%%\n",
			c, s.UpdateMessages[i], s.HolderRefreshes[i], 100*s.HitRate[i])
	}
}

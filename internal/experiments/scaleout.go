package experiments

import (
	"fmt"
	"io"

	"cachecloud/internal/edgenet"
	"cachecloud/internal/trace"
)

// ScaleOut is an extension experiment beyond the paper's figures: it grows
// the edge cache network from 1 to 8 clouds (10 caches each) and measures
// the cooperative-consistency benefit the paper motivates in Section 1 —
// the origin sends one update message per cloud instead of one per holding
// cache — together with the in-network hit rate.
type ScaleOut struct {
	CloudCounts []int
	// UpdateMessages[i] is origin→cloud messages per update event at
	// CloudCounts[i] clouds; HolderRefreshes[i] is what a per-holder push
	// would have cost.
	UpdateMessages  []float64
	HolderRefreshes []float64
	HitRate         []float64
}

// Format writes the experiment's series as text.
func (s *ScaleOut) Format(w io.Writer) {
	fmt.Fprintln(w, "Edge-network scale-out (extension): per-update origin cost vs clouds")
	fmt.Fprintf(w, "%-8s %18s %18s %10s\n", "clouds", "msgs/update", "holder-refreshes", "hit rate")
	for i, c := range s.CloudCounts {
		fmt.Fprintf(w, "%-8d %18.1f %18.1f %9.1f%%\n",
			c, s.UpdateMessages[i], s.HolderRefreshes[i], 100*s.HitRate[i])
	}
}

// ScaleOutExperiment runs the scale-out sweep.
func ScaleOutExperiment(scale float64, seed int64) (*ScaleOut, error) {
	res := &ScaleOut{CloudCounts: []int{1, 2, 4, 8}}
	for _, clouds := range res.CloudCounts {
		memberships := make([][]string, clouds)
		var allIDs []string
		for c := 0; c < clouds; c++ {
			for i := 0; i < 10; i++ {
				id := fmt.Sprintf("edge-%02d-%02d", c, i)
				memberships[c] = append(memberships[c], id)
				allIDs = append(allIDs, id)
			}
		}
		n, err := edgenet.Build(memberships, nil, edgenet.Config{Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("experiments: scaleout build %d: %w", clouds, err)
		}
		tr := trace.GenerateZipf(trace.ZipfConfig{
			Seed: seed, NumDocs: 20000, Alpha: 0.9, CacheIDs: allIDs,
			Duration: scaleDuration(120, scale), ReqPerCache: 20, UpdatesPerUnit: 100,
		})
		r, err := n.Run(tr)
		if err != nil {
			return nil, fmt.Errorf("experiments: scaleout run %d: %w", clouds, err)
		}
		res.UpdateMessages = append(res.UpdateMessages, float64(r.UpdateMessages)/float64(r.Updates))
		res.HolderRefreshes = append(res.HolderRefreshes, float64(r.HolderRefreshes)/float64(r.Updates))
		res.HitRate = append(res.HitRate, r.HitRate())
	}
	return res, nil
}

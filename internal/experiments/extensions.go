package experiments

import (
	"fmt"
	"io"
	"sort"

	"cachecloud/internal/core"
	"cachecloud/internal/document"
	"cachecloud/internal/loadstats"
	"cachecloud/internal/sim"
	"cachecloud/internal/trace"
)

// Latency is the result of the latency extension experiment: client
// latency by cooperation architecture, quantifying the paper's motivating
// claim that retrieving a document from a nearby cache "can significantly
// reduce the latency of a local miss".
type Latency struct {
	Rows []LatencyRow
}

// LatencyRow is one architecture's latency profile.
type LatencyRow struct {
	Arch    string
	MeanMs  float64
	P50Ms   float64
	P95Ms   float64
	P99Ms   float64
	HitRate float64 // in-network (local + cloud)
}

// Format writes the latency table.
func (l *Latency) Format(w io.Writer) {
	fmt.Fprintln(w, "Client latency by architecture (extension; 5ms local, 30ms peer, 150ms origin)")
	fmt.Fprintf(w, "%-18s %10s %10s %10s %10s %10s\n", "architecture", "mean ms", "p50 ms", "p95 ms", "p99 ms", "hit rate")
	for _, r := range l.Rows {
		fmt.Fprintf(w, "%-18s %10.1f %10.1f %10.1f %10.1f %9.1f%%\n",
			r.Arch, r.MeanMs, r.P50Ms, r.P95Ms, r.P99Ms, 100*r.HitRate)
	}
}

// LatencyExperiment measures client latency under each architecture on the
// Sydney workload — one independent run per architecture on the pool.
func (r *Runner) LatencyExperiment(scale float64, seed int64) (*Latency, error) {
	tr := r.sydneyTrace(seed, 10, 195, scale)
	cycle := cycleFor(tr.Duration)
	archs := []sim.Architecture{sim.NoCooperation, sim.StaticHashing, sim.DynamicHashing}
	out := &Latency{Rows: make([]LatencyRow, len(archs))}
	err := r.Map(len(archs), func(i int) error {
		arch := archs[i]
		run, err := sim.Run(sim.Config{Arch: arch, NumRings: 5, CycleLength: cycle, Seed: seed}, tr)
		if err != nil {
			return fmt.Errorf("experiments: latency %s: %w", arch, err)
		}
		out.Rows[i] = LatencyRow{
			Arch:    arch.String(),
			MeanMs:  run.Latency.Mean(),
			P50Ms:   run.Latency.Quantile(0.50),
			P95Ms:   run.Latency.Quantile(0.95),
			P99Ms:   run.Latency.Quantile(0.99),
			HitRate: run.CloudHitRate(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Capability is the result of the heterogeneous-capability extension
// experiment. The paper's sub-range determination makes each beacon
// point's load proportional to its capability (Cp); this experiment gives
// half the caches capability 3 and half capability 1 and measures how
// close the realised load ratio comes to 3 under dynamic hashing versus
// static hashing (which cannot honour capabilities at all).
type Capability struct {
	StaticRatio  float64 // mean(strong loads) / mean(weak loads)
	DynamicRatio float64
	TargetRatio  float64
}

// Format writes the result.
func (c *Capability) Format(w io.Writer) {
	fmt.Fprintln(w, "Heterogeneous capabilities (extension): strong/weak load ratio, target 3.0")
	fmt.Fprintf(w, "static hashing:  %.2f (capability-blind)\n", c.StaticRatio)
	fmt.Fprintf(w, "dynamic hashing: %.2f\n", c.DynamicRatio)
}

// CapabilityExperiment runs the heterogeneous-capability measurement.
// It uses the cloud directly (the simulator assumes uniform capabilities);
// the static and dynamic runs execute independently on the pool, driving
// the cloud through the hash-keyed protocol calls with the trace's interned
// document hashes.
func (r *Runner) CapabilityExperiment(scale float64, seed int64) (*Capability, error) {
	tr := r.zipfTrace(seed, 10, 0.9, 195, scale)
	caps := make(map[string]float64)
	strong := make(map[string]bool)
	for i, id := range trace.CacheNames(10) {
		if i%2 == 0 {
			caps[id] = 3
			strong[id] = true
		} else {
			caps[id] = 1
		}
	}

	run := func(numRings int) (loadstats.Distribution, map[string]int64, error) {
		cloud, err := core.New(core.Config{NumRings: numRings, IntraGen: 1000, FineGrained: true},
			trace.CacheNames(10), caps)
		if err != nil {
			return loadstats.Distribution{}, nil, err
		}
		cycle := cycleFor(tr.Duration)
		next := cycle
		for _, ev := range tr.Events {
			for ev.Time >= next {
				cloud.Rebalance()
				next += cycle
			}
			h := ev.Hash
			if h == 0 {
				h = document.HashURL(ev.URL)
			}
			switch ev.Kind {
			case trace.Request:
				if _, err := cloud.LookupHash(ev.URL, h, ev.Time); err != nil {
					return loadstats.Distribution{}, nil, err
				}
			case trace.Update:
				if _, err := cloud.UpdateHash(docStub(ev.URL), h, ev.Time); err != nil {
					return loadstats.Distribution{}, nil, err
				}
			}
		}
		return cloud.LoadDistribution(), cloud.BeaconLoads(), nil
	}

	// ratio folds loads in sorted cache-ID order so the float sums are
	// bit-identical across runs.
	ratio := func(loads map[string]int64) float64 {
		ids := make([]string, 0, len(loads))
		for id := range loads {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		var sSum, wSum float64
		var sN, wN int
		for _, id := range ids {
			if strong[id] {
				sSum += float64(loads[id])
				sN++
			} else {
				wSum += float64(loads[id])
				wN++
			}
		}
		if wSum == 0 || sN == 0 || wN == 0 {
			return 0
		}
		return (sSum / float64(sN)) / (wSum / float64(wN))
	}

	rings := []int{10, 5} // rings of 1 = static hashing; rings of 2 = dynamic
	loads := make([]map[string]int64, len(rings))
	labels := []string{"static", "dynamic"}
	err := r.Map(len(rings), func(i int) error {
		_, l, err := run(rings[i])
		if err != nil {
			return fmt.Errorf("experiments: capability %s: %w", labels[i], err)
		}
		loads[i] = l
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Capability{
		StaticRatio:  ratio(loads[0]),
		DynamicRatio: ratio(loads[1]),
		TargetRatio:  3,
	}, nil
}

// CrashSweep is the result of the crash-schedule sweep (robustness
// extension): for each crash count, the same trace runs with and without
// lazy lookup-record replication, and the sweep reports how record loss
// and hit rate respond as more of the cloud fails mid-run.
type CrashSweep struct {
	Rows []CrashSweepRow
}

// CrashSweepRow is one crash count's outcome under both modes.
type CrashSweepRow struct {
	Crashes          int
	RecordsLostBare  int64
	HitRateBare      float64
	RecordsLostRepl  int64
	RecordsRecovered int64
	HitRateRepl      float64
	// RecoveredFrac is RecordsRecovered over the records the crashed
	// beacons held (replication mode), 1.0 meaning full recovery.
	RecoveredFrac float64
}

// Format writes the crash sweep table.
func (c *CrashSweep) Format(w io.Writer) {
	fmt.Fprintln(w, "Crash-schedule sweep (extension): staggered mid-run crashes, replication off vs on")
	fmt.Fprintf(w, "%8s %14s %12s %14s %12s %12s %10s\n",
		"crashes", "lost (bare)", "hit (bare)", "lost (repl)", "recovered", "hit (repl)", "recov %")
	for _, r := range c.Rows {
		fmt.Fprintf(w, "%8d %14d %11.1f%% %14d %12d %11.1f%% %9.1f%%\n",
			r.Crashes, r.RecordsLostBare, 100*r.HitRateBare,
			r.RecordsLostRepl, r.RecordsRecovered, 100*r.HitRateRepl,
			100*r.RecoveredFrac)
	}
}

// CrashSweepExperiment sweeps the crash schedule over replication on/off:
// for n = 1..4 crashed caches, n caches crash at staggered times after
// the run's midpoint. All 2n runs execute independently on the pool.
func (r *Runner) CrashSweepExperiment(scale float64, seed int64) (*CrashSweep, error) {
	tr := r.zipfTrace(seed, 10, 0.9, 195, scale)
	mid := tr.Duration / 2
	cycle := cycleFor(tr.Duration)
	crashCounts := []int{1, 2, 3, 4}
	names := trace.CacheNames(10)

	// Stagger crashes so each exercises the recovery path separately, yet
	// the last still lands well inside the run even at tiny scales; crash
	// every third cache so ring siblings survive to serve their replicas.
	stagger := tr.Duration / 16
	if stagger < 1 {
		stagger = 1
	}
	failures := func(n int) map[int64][]string {
		out := make(map[int64][]string, n)
		for i := 0; i < n; i++ {
			out[mid+int64(i)*stagger] = []string{names[(3*i)%len(names)]}
		}
		return out
	}

	type mode struct {
		crashes int
		repl    bool
	}
	modes := make([]mode, 0, 2*len(crashCounts))
	for _, n := range crashCounts {
		modes = append(modes, mode{crashes: n}, mode{crashes: n, repl: true})
	}
	runs := make([]*sim.Result, len(modes))
	err := r.Map(len(modes), func(i int) error {
		m := modes[i]
		cfg := sim.Config{
			Arch: sim.DynamicHashing, NumRings: 5, CycleLength: cycle,
			FailAt: failures(m.crashes), ReplicateRecords: m.repl, Seed: seed,
		}
		var err error
		runs[i], err = sim.Run(cfg, tr)
		if err != nil {
			return fmt.Errorf("experiments: crashsweep n=%d repl=%v: %w", m.crashes, m.repl, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &CrashSweep{Rows: make([]CrashSweepRow, len(crashCounts))}
	for i, n := range crashCounts {
		bare, repl := runs[2*i], runs[2*i+1]
		row := CrashSweepRow{
			Crashes:          n,
			RecordsLostBare:  bare.RecordsLost,
			HitRateBare:      bare.CloudHitRate(),
			RecordsLostRepl:  repl.RecordsLost,
			RecordsRecovered: repl.RecordsRecovered,
			HitRateRepl:      repl.CloudHitRate(),
		}
		if atStake := repl.RecordsLost + repl.RecordsRecovered; atStake > 0 {
			row.RecoveredFrac = float64(repl.RecordsRecovered) / float64(atStake)
		}
		out.Rows[i] = row
	}
	return out, nil
}

// docStub builds a minimal document for protocol-level updates.
func docStub(url string) document.Document {
	return document.Document{URL: url, Size: 1, Version: 1}
}

// Resilience is the result of the failure-resilience extension experiment:
// half the cloud's caches crash mid-run, with and without the paper's lazy
// lookup-record replication (Section 2.3's extension, omitted there for
// space).
type Resilience struct {
	RecordsLostBare  int64
	RecordsLostRepl  int64
	RecordsRecovered int64
	HitRateBare      float64
	HitRateRepl      float64
}

// Format writes the result.
func (r *Resilience) Format(w io.Writer) {
	fmt.Fprintln(w, "Failure resilience (extension): 3 of 10 caches crash mid-run")
	fmt.Fprintf(w, "%-28s %16s %16s\n", "", "no replication", "lazy replication")
	fmt.Fprintf(w, "%-28s %16d %16d\n", "lookup records lost", r.RecordsLostBare, r.RecordsLostRepl)
	fmt.Fprintf(w, "%-28s %16s %16d\n", "records recovered", "-", r.RecordsRecovered)
	fmt.Fprintf(w, "%-28s %15.1f%% %15.1f%%\n", "in-network hit rate", 100*r.HitRateBare, 100*r.HitRateRepl)
}

// ResilienceExperiment crashes three caches mid-run and compares record
// loss and hit rate with and without lazy replication; the two runs
// execute independently on the pool.
func (r *Runner) ResilienceExperiment(scale float64, seed int64) (*Resilience, error) {
	tr := r.zipfTrace(seed, 10, 0.9, 195, scale)
	mid := tr.Duration / 2
	failures := func() map[int64][]string {
		return map[int64][]string{
			mid:     {"cache-02"},
			mid + 5: {"cache-05"},
			mid + 9: {"cache-08"},
		}
	}
	cycle := cycleFor(tr.Duration)
	runs := make([]*sim.Result, 2)
	err := r.Map(2, func(i int) error {
		cfg := sim.Config{
			Arch: sim.DynamicHashing, NumRings: 5, CycleLength: cycle,
			FailAt: failures(), Seed: seed,
		}
		label := "bare"
		if i == 1 {
			cfg.ReplicateRecords = true
			label = "repl"
		}
		var err error
		runs[i], err = sim.Run(cfg, tr)
		if err != nil {
			return fmt.Errorf("experiments: resilience %s: %w", label, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	bare, repl := runs[0], runs[1]
	return &Resilience{
		RecordsLostBare:  bare.RecordsLost,
		RecordsLostRepl:  repl.RecordsLost,
		RecordsRecovered: repl.RecordsRecovered,
		HitRateBare:      bare.CloudHitRate(),
		HitRateRepl:      repl.CloudHitRate(),
	}, nil
}

// Package experiments defines one reproducible experiment per figure of the
// paper's evaluation (Section 4, Figures 3-9). Each experiment builds its
// workload with internal/trace, runs internal/sim under the paper's
// configuration, and returns the series the figure plots. The cloudsim CLI
// and the repository benchmarks are thin wrappers over this package.
//
// A scale parameter shrinks trace duration so tests and benchmarks can run
// the same experiment definitions quickly; scale 1 is the paper-sized run.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"cachecloud/internal/placement"
	"cachecloud/internal/sim"
	"cachecloud/internal/trace"
)

// UpdateRates is the x-axis of Figures 7-9: document update rates in
// updates per unit time. 195 is the paper's "observed update rate".
var UpdateRates = []int{10, 50, 100, 195, 500, 1000}

// ObservedUpdateRate is the update rate marked with a dashed vertical line
// in Figures 7-9.
const ObservedUpdateRate = 195

// scaleDuration scales a base duration, keeping at least 4 rebalance
// cycles' worth of trace.
func scaleDuration(base int64, scale float64) int64 {
	if scale <= 0 {
		scale = 1
	}
	d := int64(float64(base) * scale)
	if d < 20 {
		d = 20
	}
	return d
}

// cycleFor picks the rebalance cycle: the paper's 60-unit cycle, shortened
// for scaled-down runs so rebalancing still happens several times.
func cycleFor(duration int64) int64 {
	c := int64(60)
	if duration/4 < c {
		c = duration / 4
	}
	if c < 1 {
		c = 1
	}
	return c
}

// zipfTrace builds the paper's Zipf synthetic dataset for a cloud size.
func zipfTrace(seed int64, caches int, alpha float64, updatesPerUnit int, scale float64) *trace.Trace {
	return trace.GenerateZipf(trace.ZipfConfig{
		Seed:           seed,
		NumDocs:        50000,
		Alpha:          alpha,
		Caches:         caches,
		Duration:       scaleDuration(240, scale),
		ReqPerCache:    60,
		UpdatesPerUnit: updatesPerUnit,
	})
}

// sydneyTrace builds the SydneyLike dataset standing in for the IBM 2000
// Olympics trace.
func sydneyTrace(seed int64, caches, updatesPerUnit int, scale float64) *trace.Trace {
	return trace.GenerateSydney(trace.SydneyConfig{
		Seed:            seed,
		NumDocs:         51634,
		Caches:          caches,
		Duration:        scaleDuration(1440, scale),
		PeakReqPerCache: 80,
		UpdatesPerUnit:  updatesPerUnit,
	})
}

// LoadBalance is the result of Figures 3 and 4: the per-beacon-point load
// distribution under static and dynamic hashing.
type LoadBalance struct {
	Dataset string
	// StaticLoads and DynamicLoads are per-unit beacon loads in decreasing
	// order (the figures' x-axis ordering).
	StaticLoads  []float64
	DynamicLoads []float64

	StaticCoV      float64
	DynamicCoV     float64
	StaticMaxMean  float64
	DynamicMaxMean float64
}

// CoVImprovement returns the relative CoV improvement of dynamic over
// static hashing (the paper reports ≈63% on both datasets).
func (l *LoadBalance) CoVImprovement() float64 {
	if l.StaticCoV == 0 {
		return 0
	}
	return 1 - l.DynamicCoV/l.StaticCoV
}

// Format writes the figure's series as text.
func (l *LoadBalance) Format(w io.Writer) {
	fmt.Fprintf(w, "Load distribution (%s dataset), beacon points in decreasing load order\n", l.Dataset)
	fmt.Fprintf(w, "%-8s %12s %12s\n", "rank", "static", "dynamic")
	for i := range l.StaticLoads {
		dyn := 0.0
		if i < len(l.DynamicLoads) {
			dyn = l.DynamicLoads[i]
		}
		fmt.Fprintf(w, "%-8d %12.1f %12.1f\n", i+1, l.StaticLoads[i], dyn)
	}
	fmt.Fprintf(w, "CoV:      static %.3f  dynamic %.3f  (improvement %.0f%%)\n",
		l.StaticCoV, l.DynamicCoV, 100*l.CoVImprovement())
	fmt.Fprintf(w, "max/mean: static %.2f  dynamic %.2f\n", l.StaticMaxMean, l.DynamicMaxMean)
}

// loadBalanceCfg is the simulator configuration shared by the
// load-balancing figures (3-6): beacon-point placement keeps the lookup
// stream flowing at steady state (under ad hoc placement hot documents
// stop generating beacon lookups once replicated everywhere, muting the
// very skew the figures measure), and the first quarter of the trace is
// treated as warmup so the dynamic scheme is measured after the sub-range
// determination process has converged.
func loadBalanceCfg(arch sim.Architecture, numRings int, tr *trace.Trace, seed int64) sim.Config {
	return sim.Config{
		Arch:        arch,
		NumRings:    numRings,
		CycleLength: cycleFor(tr.Duration),
		Policy:      placement.BeaconPoint{},
		WarmupUnits: tr.Duration / 4,
		Seed:        seed,
	}
}

// loadBalance runs one static and one dynamic simulation over a trace.
func loadBalance(dataset string, tr *trace.Trace, numRings int, seed int64) (*LoadBalance, error) {
	static, err := sim.Run(loadBalanceCfg(sim.StaticHashing, 0, tr, seed), tr)
	if err != nil {
		return nil, fmt.Errorf("experiments: static run: %w", err)
	}
	dynamic, err := sim.Run(loadBalanceCfg(sim.DynamicHashing, numRings, tr, seed), tr)
	if err != nil {
		return nil, fmt.Errorf("experiments: dynamic run: %w", err)
	}
	sd, dd := static.LoadPerUnit(), dynamic.LoadPerUnit()
	return &LoadBalance{
		Dataset:        dataset,
		StaticLoads:    sd.Sorted(),
		DynamicLoads:   dd.Sorted(),
		StaticCoV:      sd.CoV(),
		DynamicCoV:     dd.CoV(),
		StaticMaxMean:  sd.MaxToMean(),
		DynamicMaxMean: dd.MaxToMean(),
	}, nil
}

// Figure3 reproduces Figure 3: load distribution for the Zipf-0.9 dataset
// on a 10-cache cloud (dynamic: 5 rings × 2 beacon points).
func Figure3(scale float64, seed int64) (*LoadBalance, error) {
	tr := zipfTrace(seed, 10, 0.9, 195, scale)
	return loadBalance("Zipf-0.9", tr, 5, seed)
}

// Figure4 reproduces Figure 4: load distribution for the Sydney dataset.
func Figure4(scale float64, seed int64) (*LoadBalance, error) {
	tr := sydneyTrace(seed, 10, 195, scale)
	return loadBalance("Sydney", tr, 5, seed)
}

// RingSize is the result of Figure 5: load-balancing CoV versus cache-cloud
// size for static hashing and dynamic hashing with several ring sizes.
type RingSize struct {
	CloudSizes []int
	RingSizes  []int
	// StaticCoV[size] and DynamicCoV[size][ringSize] hold the series.
	StaticCoV  map[int]float64
	DynamicCoV map[int]map[int]float64
}

// Format writes the figure's series as text.
func (r *RingSize) Format(w io.Writer) {
	fmt.Fprintln(w, "Effect of beacon ring size on load balancing (Sydney dataset, CoV)")
	fmt.Fprintf(w, "%-18s", "scheme")
	for _, cs := range r.CloudSizes {
		fmt.Fprintf(w, " %9s", fmt.Sprintf("%d caches", cs))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-18s", "static")
	for _, cs := range r.CloudSizes {
		fmt.Fprintf(w, " %9.3f", r.StaticCoV[cs])
	}
	fmt.Fprintln(w)
	for _, rs := range r.RingSizes {
		fmt.Fprintf(w, "%-18s", fmt.Sprintf("dynamic %d/ring", rs))
		for _, cs := range r.CloudSizes {
			fmt.Fprintf(w, " %9.3f", r.DynamicCoV[cs][rs])
		}
		fmt.Fprintln(w)
	}
}

// Figure5 reproduces Figure 5: clouds of 10, 20 and 50 caches; dynamic
// hashing with 2, 5 and 10 beacon points per ring versus static hashing.
func Figure5(scale float64, seed int64) (*RingSize, error) {
	res := &RingSize{
		CloudSizes: []int{10, 20, 50},
		RingSizes:  []int{2, 5, 10},
		StaticCoV:  make(map[int]float64),
		DynamicCoV: make(map[int]map[int]float64),
	}
	for _, cs := range res.CloudSizes {
		tr := sydneyTrace(seed, cs, 195, scale)
		static, err := sim.Run(loadBalanceCfg(sim.StaticHashing, 0, tr, seed), tr)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig5 static %d: %w", cs, err)
		}
		res.StaticCoV[cs] = static.LoadPerUnit().CoV()
		res.DynamicCoV[cs] = make(map[int]float64)
		for _, rs := range res.RingSizes {
			dynamic, err := sim.Run(loadBalanceCfg(sim.DynamicHashing, cs/rs, tr, seed), tr)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig5 dynamic %d/%d: %w", cs, rs, err)
			}
			res.DynamicCoV[cs][rs] = dynamic.LoadPerUnit().CoV()
		}
	}
	return res, nil
}

// ZipfSweep is the result of Figure 6: CoV versus Zipf parameter for static
// and dynamic hashing.
type ZipfSweep struct {
	Alphas     []float64
	StaticCoV  []float64
	DynamicCoV []float64
}

// Format writes the figure's series as text.
func (z *ZipfSweep) Format(w io.Writer) {
	fmt.Fprintln(w, "Effect of dataset skew on load balancing (CoV)")
	fmt.Fprintf(w, "%-8s %10s %10s\n", "alpha", "static", "dynamic")
	for i, a := range z.Alphas {
		fmt.Fprintf(w, "%-8.2f %10.3f %10.3f\n", a, z.StaticCoV[i], z.DynamicCoV[i])
	}
}

// Figure6 reproduces Figure 6: Zipf parameters 0.0 … 0.99 on a 10-cache
// cloud.
func Figure6(scale float64, seed int64) (*ZipfSweep, error) {
	res := &ZipfSweep{Alphas: []float64{0.001, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.99}}
	for _, a := range res.Alphas {
		tr := zipfTrace(seed, 10, a, 195, scale)
		static, err := sim.Run(loadBalanceCfg(sim.StaticHashing, 0, tr, seed), tr)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig6 static %.2f: %w", a, err)
		}
		dynamic, err := sim.Run(loadBalanceCfg(sim.DynamicHashing, 5, tr, seed), tr)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig6 dynamic %.2f: %w", a, err)
		}
		res.StaticCoV = append(res.StaticCoV, static.LoadPerUnit().CoV())
		res.DynamicCoV = append(res.DynamicCoV, dynamic.LoadPerUnit().CoV())
	}
	return res, nil
}

// PlacementSweep is the result of Figures 7, 8 and 9: stored percentage and
// network load versus document update rate for the three placement
// policies.
type PlacementSweep struct {
	LimitedDisk bool
	UpdateRates []int
	// StoredPct[policy][i] is the mean percent of catalog documents stored
	// per cache at update rate UpdateRates[i] (Figure 7).
	StoredPct map[string][]float64
	// NetworkMB[policy][i] is network load in MB per unit time
	// (Figures 8 and 9).
	NetworkMB map[string][]float64
}

// Policies enumerated in the sweeps, in the paper's legend order.
var sweepPolicies = []string{"adhoc", "utility", "beacon"}

// Format writes both the stored-percentage table (Figure 7) and the network
// load table (Figures 8/9).
func (p *PlacementSweep) Format(w io.Writer) {
	disk := "unlimited disk, DsCC off"
	if p.LimitedDisk {
		disk = "disk = 30% of corpus, LRU, DsCC on"
	}
	fmt.Fprintf(w, "Placement sweep (%s); observed update rate = %d\n", disk, ObservedUpdateRate)
	fmt.Fprintln(w, "Percent of documents stored per cache:")
	p.table(w, p.StoredPct, "%9.1f")
	fmt.Fprintln(w, "Network load (MB transferred per unit time):")
	p.table(w, p.NetworkMB, "%9.2f")
}

func (p *PlacementSweep) table(w io.Writer, series map[string][]float64, cellFmt string) {
	fmt.Fprintf(w, "%-10s", "policy")
	for _, r := range p.UpdateRates {
		fmt.Fprintf(w, " %9d", r)
	}
	fmt.Fprintln(w)
	for _, pol := range sweepPolicies {
		vals, ok := series[pol]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%-10s", pol)
		for _, v := range vals {
			fmt.Fprintf(w, " "+cellFmt, v)
		}
		fmt.Fprintln(w)
	}
}

// placementSweep runs the three policies across the update-rate axis.
func placementSweep(scale float64, seed int64, limitedDisk bool, rates []int) (*PlacementSweep, error) {
	res := &PlacementSweep{
		LimitedDisk: limitedDisk,
		UpdateRates: rates,
		StoredPct:   make(map[string][]float64),
		NetworkMB:   make(map[string][]float64),
	}
	util, err := placement.NewUtility(placement.EqualOn(true, true, true, limitedDisk), 0.5)
	if err != nil {
		return nil, err
	}
	policies := []placement.Policy{placement.AdHoc{}, util, placement.BeaconPoint{}}
	for _, rate := range rates {
		tr := sydneyTrace(seed, 10, rate, scale)
		cycle := cycleFor(tr.Duration)
		for _, pol := range policies {
			cfg := sim.Config{
				Arch: sim.DynamicHashing, NumRings: 5, CycleLength: cycle,
				Policy: pol, Seed: seed,
			}
			if limitedDisk {
				cfg.CapacityFraction = 0.30
			}
			r, err := sim.Run(cfg, tr)
			if err != nil {
				return nil, fmt.Errorf("experiments: sweep %s rate %d: %w", pol.Name(), rate, err)
			}
			res.StoredPct[pol.Name()] = append(res.StoredPct[pol.Name()], r.StoredPctMean())
			res.NetworkMB[pol.Name()] = append(res.NetworkMB[pol.Name()], r.NetworkMBPerUnit())
		}
	}
	return res, nil
}

// Figure7and8 reproduces Figures 7 and 8 in one sweep: unlimited disk
// space, DsCC turned off, weights 1/3 each, threshold 0.5.
func Figure7and8(scale float64, seed int64) (*PlacementSweep, error) {
	return placementSweep(scale, seed, false, UpdateRates)
}

// Figure9 reproduces Figure 9: disk space limited to 30% of the corpus,
// LRU replacement, DsCC turned on with weights 1/4 each.
func Figure9(scale float64, seed int64) (*PlacementSweep, error) {
	return placementSweep(scale, seed, true, UpdateRates)
}

// Names lists the runnable experiment identifiers for CLI help
// ("scaleout" is an extension experiment beyond the paper's figures).
func Names() []string {
	names := []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "scaleout", "latency", "capability", "resilience"}
	sort.Strings(names)
	return names
}

// Run executes an experiment by figure name ("fig3" … "fig9") and writes
// its formatted output to w. Figures 7 and 8 share a sweep.
func Run(name string, scale float64, seed int64, w io.Writer) error {
	switch name {
	case "fig3":
		r, err := Figure3(scale, seed)
		if err != nil {
			return err
		}
		r.Format(w)
	case "fig4":
		r, err := Figure4(scale, seed)
		if err != nil {
			return err
		}
		r.Format(w)
	case "fig5":
		r, err := Figure5(scale, seed)
		if err != nil {
			return err
		}
		r.Format(w)
	case "fig6":
		r, err := Figure6(scale, seed)
		if err != nil {
			return err
		}
		r.Format(w)
	case "fig7", "fig8":
		r, err := Figure7and8(scale, seed)
		if err != nil {
			return err
		}
		r.Format(w)
	case "fig9":
		r, err := Figure9(scale, seed)
		if err != nil {
			return err
		}
		r.Format(w)
	case "scaleout":
		r, err := ScaleOutExperiment(scale, seed)
		if err != nil {
			return err
		}
		r.Format(w)
	case "latency":
		r, err := LatencyExperiment(scale, seed)
		if err != nil {
			return err
		}
		r.Format(w)
	case "capability":
		r, err := CapabilityExperiment(scale, seed)
		if err != nil {
			return err
		}
		r.Format(w)
	case "resilience":
		r, err := ResilienceExperiment(scale, seed)
		if err != nil {
			return err
		}
		r.Format(w)
	default:
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return nil
}

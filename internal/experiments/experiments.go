// Package experiments defines one reproducible experiment per figure of the
// paper's evaluation (Section 4, Figures 3-9). Each experiment builds its
// workload with internal/trace, runs internal/sim under the paper's
// configuration, and returns the series the figure plots. The cloudsim CLI
// and the repository benchmarks are thin wrappers over this package.
//
// A scale parameter shrinks trace duration so tests and benchmarks can run
// the same experiment definitions quickly; scale 1 is the paper-sized run.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"cachecloud/internal/placement"
	"cachecloud/internal/sim"
	"cachecloud/internal/trace"
)

// UpdateRates is the x-axis of Figures 7-9: document update rates in
// updates per unit time. 195 is the paper's "observed update rate".
var UpdateRates = []int{10, 50, 100, 195, 500, 1000}

// ObservedUpdateRate is the update rate marked with a dashed vertical line
// in Figures 7-9.
const ObservedUpdateRate = 195

// scaleDuration scales a base duration, keeping at least 4 rebalance
// cycles' worth of trace.
func scaleDuration(base int64, scale float64) int64 {
	if scale <= 0 {
		scale = 1
	}
	d := int64(float64(base) * scale)
	if d < 20 {
		d = 20
	}
	return d
}

// cycleFor picks the rebalance cycle: the paper's 60-unit cycle, shortened
// for scaled-down runs so rebalancing still happens several times.
func cycleFor(duration int64) int64 {
	c := int64(60)
	if duration/4 < c {
		c = duration / 4
	}
	if c < 1 {
		c = 1
	}
	return c
}

// zipfTrace builds the paper's Zipf synthetic dataset for a cloud size.
func zipfTrace(seed int64, caches int, alpha float64, updatesPerUnit int, scale float64) *trace.Trace {
	return trace.GenerateZipf(trace.ZipfConfig{
		Seed:           seed,
		NumDocs:        50000,
		Alpha:          alpha,
		Caches:         caches,
		Duration:       scaleDuration(240, scale),
		ReqPerCache:    60,
		UpdatesPerUnit: updatesPerUnit,
	})
}

// sydneyTrace builds the SydneyLike dataset standing in for the IBM 2000
// Olympics trace.
func sydneyTrace(seed int64, caches, updatesPerUnit int, scale float64) *trace.Trace {
	return trace.GenerateSydney(trace.SydneyConfig{
		Seed:            seed,
		NumDocs:         51634,
		Caches:          caches,
		Duration:        scaleDuration(1440, scale),
		PeakReqPerCache: 80,
		UpdatesPerUnit:  updatesPerUnit,
	})
}

// LoadBalance is the result of Figures 3 and 4: the per-beacon-point load
// distribution under static and dynamic hashing.
type LoadBalance struct {
	Dataset string
	// StaticLoads and DynamicLoads are per-unit beacon loads in decreasing
	// order (the figures' x-axis ordering).
	StaticLoads  []float64
	DynamicLoads []float64

	StaticCoV      float64
	DynamicCoV     float64
	StaticMaxMean  float64
	DynamicMaxMean float64
}

// CoVImprovement returns the relative CoV improvement of dynamic over
// static hashing (the paper reports ≈63% on both datasets).
func (l *LoadBalance) CoVImprovement() float64 {
	if l.StaticCoV == 0 {
		return 0
	}
	return 1 - l.DynamicCoV/l.StaticCoV
}

// Format writes the figure's series as text.
func (l *LoadBalance) Format(w io.Writer) {
	fmt.Fprintf(w, "Load distribution (%s dataset), beacon points in decreasing load order\n", l.Dataset)
	fmt.Fprintf(w, "%-8s %12s %12s\n", "rank", "static", "dynamic")
	for i := range l.StaticLoads {
		dyn := 0.0
		if i < len(l.DynamicLoads) {
			dyn = l.DynamicLoads[i]
		}
		fmt.Fprintf(w, "%-8d %12.1f %12.1f\n", i+1, l.StaticLoads[i], dyn)
	}
	fmt.Fprintf(w, "CoV:      static %.3f  dynamic %.3f  (improvement %.0f%%)\n",
		l.StaticCoV, l.DynamicCoV, 100*l.CoVImprovement())
	fmt.Fprintf(w, "max/mean: static %.2f  dynamic %.2f\n", l.StaticMaxMean, l.DynamicMaxMean)
}

// loadBalanceCfg is the simulator configuration shared by the
// load-balancing figures (3-6): beacon-point placement keeps the lookup
// stream flowing at steady state (under ad hoc placement hot documents
// stop generating beacon lookups once replicated everywhere, muting the
// very skew the figures measure), and the first quarter of the trace is
// treated as warmup so the dynamic scheme is measured after the sub-range
// determination process has converged.
func loadBalanceCfg(arch sim.Architecture, numRings int, tr *trace.Trace, seed int64) sim.Config {
	return sim.Config{
		Arch:        arch,
		NumRings:    numRings,
		CycleLength: cycleFor(tr.Duration),
		Policy:      placement.BeaconPoint{},
		WarmupUnits: tr.Duration / 4,
		Seed:        seed,
	}
}

// RingSize is the result of Figure 5: load-balancing CoV versus cache-cloud
// size for static hashing and dynamic hashing with several ring sizes.
type RingSize struct {
	CloudSizes []int
	RingSizes  []int
	// StaticCoV[size] and DynamicCoV[size][ringSize] hold the series.
	StaticCoV  map[int]float64
	DynamicCoV map[int]map[int]float64
}

// Format writes the figure's series as text.
func (r *RingSize) Format(w io.Writer) {
	fmt.Fprintln(w, "Effect of beacon ring size on load balancing (Sydney dataset, CoV)")
	fmt.Fprintf(w, "%-18s", "scheme")
	for _, cs := range r.CloudSizes {
		fmt.Fprintf(w, " %9s", fmt.Sprintf("%d caches", cs))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-18s", "static")
	for _, cs := range r.CloudSizes {
		fmt.Fprintf(w, " %9.3f", r.StaticCoV[cs])
	}
	fmt.Fprintln(w)
	for _, rs := range r.RingSizes {
		fmt.Fprintf(w, "%-18s", fmt.Sprintf("dynamic %d/ring", rs))
		for _, cs := range r.CloudSizes {
			fmt.Fprintf(w, " %9.3f", r.DynamicCoV[cs][rs])
		}
		fmt.Fprintln(w)
	}
}

// ZipfSweep is the result of Figure 6: CoV versus Zipf parameter for static
// and dynamic hashing.
type ZipfSweep struct {
	Alphas     []float64
	StaticCoV  []float64
	DynamicCoV []float64
}

// Format writes the figure's series as text.
func (z *ZipfSweep) Format(w io.Writer) {
	fmt.Fprintln(w, "Effect of dataset skew on load balancing (CoV)")
	fmt.Fprintf(w, "%-8s %10s %10s\n", "alpha", "static", "dynamic")
	for i, a := range z.Alphas {
		fmt.Fprintf(w, "%-8.2f %10.3f %10.3f\n", a, z.StaticCoV[i], z.DynamicCoV[i])
	}
}

// PlacementSweep is the result of Figures 7, 8 and 9: stored percentage and
// network load versus document update rate for the three placement
// policies.
type PlacementSweep struct {
	LimitedDisk bool
	UpdateRates []int
	// StoredPct[policy][i] is the mean percent of catalog documents stored
	// per cache at update rate UpdateRates[i] (Figure 7).
	StoredPct map[string][]float64
	// NetworkMB[policy][i] is network load in MB per unit time
	// (Figures 8 and 9).
	NetworkMB map[string][]float64
}

// Policies enumerated in the sweeps, in the paper's legend order.
var sweepPolicies = []string{"adhoc", "utility", "beacon"}

// Format writes both the stored-percentage table (Figure 7) and the network
// load table (Figures 8/9).
func (p *PlacementSweep) Format(w io.Writer) {
	disk := "unlimited disk, DsCC off"
	if p.LimitedDisk {
		disk = "disk = 30% of corpus, LRU, DsCC on"
	}
	fmt.Fprintf(w, "Placement sweep (%s); observed update rate = %d\n", disk, ObservedUpdateRate)
	fmt.Fprintln(w, "Percent of documents stored per cache:")
	p.table(w, p.StoredPct, "%9.1f")
	fmt.Fprintln(w, "Network load (MB transferred per unit time):")
	p.table(w, p.NetworkMB, "%9.2f")
}

func (p *PlacementSweep) table(w io.Writer, series map[string][]float64, cellFmt string) {
	fmt.Fprintf(w, "%-10s", "policy")
	for _, r := range p.UpdateRates {
		fmt.Fprintf(w, " %9d", r)
	}
	fmt.Fprintln(w)
	for _, pol := range sweepPolicies {
		vals, ok := series[pol]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%-10s", pol)
		for _, v := range vals {
			fmt.Fprintf(w, " "+cellFmt, v)
		}
		fmt.Fprintln(w)
	}
}

// Names lists the runnable experiment identifiers for CLI help
// ("scaleout" is an extension experiment beyond the paper's figures).
func Names() []string {
	names := []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "scaleout", "latency", "capability", "resilience", "crashsweep", "stormsweep", "restartsweep", "shieldsweep", "tenantsweep"}
	sort.Strings(names)
	return names
}

package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestShieldSweepShape checks the two-tier sweep's structure and the
// hierarchy claim it exists to demonstrate: every cell balances its
// cross-tier books (the cell self-checks and errors otherwise), the
// single-tier baseline's origin update cost grows with the cloud count
// while the shielded rows stay bounded by the shield count — the
// O(clouds) → O(shields) collapse — and the result is byte-identical
// across worker counts.
func TestShieldSweepShape(t *testing.T) {
	r, err := ShieldSweepExperiment(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(r.CloudCounts)*len(r.ShieldCounts) {
		t.Fatalf("rows = %d, want %d", len(r.Rows), len(r.CloudCounts)*len(r.ShieldCounts))
	}
	cellAt := func(clouds, shields int) ShieldRow {
		for _, row := range r.Rows {
			if row.Clouds == clouds && row.Shields == shields {
				return row
			}
		}
		t.Fatalf("missing cell %d/%d", clouds, shields)
		return ShieldRow{}
	}
	for _, row := range r.Rows {
		if row.Publishes == 0 || row.OriginUpdates == 0 {
			t.Fatalf("vacuous cell: %+v", row)
		}
		if row.Shields == 0 {
			if row.ShieldUpdates != 0 || row.ShieldHits != 0 {
				t.Fatalf("single-tier cell crossed the shield tier: %+v", row)
			}
			continue
		}
		// Behind the tier the origin never sends more than one update per
		// shield per publish.
		if row.UpdatesPerPublish > float64(row.Shields) {
			t.Fatalf("origin sent %.2f updates/publish over %d shields: %+v",
				row.UpdatesPerPublish, row.Shields, row)
		}
		if row.ShieldHits == 0 {
			t.Fatalf("shield tier absorbed no misses: %+v", row)
		}
	}
	// The O(clouds) → O(shields) collapse: the baseline's per-publish cost
	// grows with the cloud count; at the largest cloud count the shielded
	// fabric cuts it by far more than half, and adding clouds behind a
	// fixed shield count barely moves the origin's cost.
	if b4, b64 := cellAt(4, 0), cellAt(64, 0); b64.UpdatesPerPublish <= 2*b4.UpdatesPerPublish {
		t.Fatalf("baseline did not scale with clouds: %.2f at 4 vs %.2f at 64",
			b4.UpdatesPerPublish, b64.UpdatesPerPublish)
	}
	base, shielded := cellAt(64, 0), cellAt(64, 4)
	if shielded.UpdatesPerPublish >= base.UpdatesPerPublish/2 {
		t.Fatalf("shield tier saved too little: %.2f vs baseline %.2f updates/publish",
			shielded.UpdatesPerPublish, base.UpdatesPerPublish)
	}
	if s16, s64 := cellAt(16, 4), cellAt(64, 4); s64.UpdatesPerPublish > 1.5*s16.UpdatesPerPublish {
		t.Fatalf("shielded cost not bounded by shields: %.2f at 16 clouds vs %.2f at 64",
			s16.UpdatesPerPublish, s64.UpdatesPerPublish)
	}

	var buf bytes.Buffer
	r.Format(&buf)
	if !strings.Contains(buf.String(), "shield sweep") ||
		!strings.Contains(buf.String(), "reduction vs single tier") {
		t.Fatal("format output unexpected")
	}

	// Byte-identical at any worker count.
	for _, workers := range []int{1, 7} {
		r2, err := NewRunner(workers).ShieldSweepExperiment(testScale, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r, r2) {
			t.Fatalf("workers=%d: result differs from default run", workers)
		}
	}
}

package experiments

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"cachecloud/internal/edgenet"
	"cachecloud/internal/placement"
	"cachecloud/internal/sim"
	"cachecloud/internal/trace"
)

// WorkersEnv is the environment variable that overrides the default worker
// count for the parallel experiment engine.
const WorkersEnv = "CACHECLOUD_WORKERS"

// DefaultWorkers returns the worker count used when a Runner is built with
// workers <= 0: the CACHECLOUD_WORKERS environment variable when set to a
// positive integer, otherwise GOMAXPROCS.
func DefaultWorkers() int {
	if s := os.Getenv(WorkersEnv); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Runner executes the independent simulation runs inside an experiment
// across a pool of worker goroutines. Every run is self-contained — its own
// cloud, its own PRNG seeded from the experiment seed — and results are
// collected by task index, so a Runner's output is byte-identical no matter
// how many workers it uses. Traces shared by several grid points are
// generated once and read concurrently.
//
// A Runner is safe for concurrent use; the zero worker count means
// DefaultWorkers.
type Runner struct {
	workers int

	mu     sync.Mutex
	traces map[string]*traceEntry
}

type traceEntry struct {
	once sync.Once
	tr   *trace.Trace
}

// NewRunner builds a Runner with the given worker count (<= 0 means
// DefaultWorkers).
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	return &Runner{workers: workers, traces: make(map[string]*traceEntry)}
}

// Workers returns the pool size.
func (r *Runner) Workers() int { return r.workers }

// Map runs fn(0) … fn(n-1) on the worker pool and waits for all of them.
// Each index runs exactly once; when several fail, the error with the
// lowest index is returned — the same one a sequential loop would have
// stopped at.
func (r *Runner) Map(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := r.workers
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i >= n {
						return
					}
					errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// sharedTrace memoizes trace generation under a key so that grid points
// sharing a workload generate it once; the first caller generates, the rest
// block until it is ready. The returned trace is shared read-only across
// concurrent runs (generators intern document hashes, so no run mutates it).
func (r *Runner) sharedTrace(key string, gen func() *trace.Trace) *trace.Trace {
	r.mu.Lock()
	e, ok := r.traces[key]
	if !ok {
		e = &traceEntry{}
		r.traces[key] = e
	}
	r.mu.Unlock()
	e.once.Do(func() { e.tr = gen() })
	return e.tr
}

func (r *Runner) zipfTrace(seed int64, caches int, alpha float64, updatesPerUnit int, scale float64) *trace.Trace {
	key := fmt.Sprintf("zipf/%d/%d/%g/%d/%g", seed, caches, alpha, updatesPerUnit, scale)
	return r.sharedTrace(key, func() *trace.Trace {
		return zipfTrace(seed, caches, alpha, updatesPerUnit, scale)
	})
}

func (r *Runner) sydneyTrace(seed int64, caches, updatesPerUnit int, scale float64) *trace.Trace {
	key := fmt.Sprintf("sydney/%d/%d/%d/%g", seed, caches, updatesPerUnit, scale)
	return r.sharedTrace(key, func() *trace.Trace {
		return sydneyTrace(seed, caches, updatesPerUnit, scale)
	})
}

// loadBalance runs one static and one dynamic simulation over a trace, in
// parallel when the pool allows.
func (r *Runner) loadBalance(dataset string, tr *trace.Trace, numRings int, seed int64) (*LoadBalance, error) {
	runs := make([]*sim.Result, 2)
	err := r.Map(2, func(i int) error {
		var err error
		switch i {
		case 0:
			runs[0], err = sim.Run(loadBalanceCfg(sim.StaticHashing, 0, tr, seed), tr)
			if err != nil {
				return fmt.Errorf("experiments: static run: %w", err)
			}
		case 1:
			runs[1], err = sim.Run(loadBalanceCfg(sim.DynamicHashing, numRings, tr, seed), tr)
			if err != nil {
				return fmt.Errorf("experiments: dynamic run: %w", err)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sd, dd := runs[0].LoadPerUnit(), runs[1].LoadPerUnit()
	return &LoadBalance{
		Dataset:        dataset,
		StaticLoads:    sd.Sorted(),
		DynamicLoads:   dd.Sorted(),
		StaticCoV:      sd.CoV(),
		DynamicCoV:     dd.CoV(),
		StaticMaxMean:  sd.MaxToMean(),
		DynamicMaxMean: dd.MaxToMean(),
	}, nil
}

// Figure3 reproduces Figure 3 on this Runner's pool.
func (r *Runner) Figure3(scale float64, seed int64) (*LoadBalance, error) {
	tr := r.zipfTrace(seed, 10, 0.9, 195, scale)
	return r.loadBalance("Zipf-0.9", tr, 5, seed)
}

// Figure4 reproduces Figure 4 on this Runner's pool.
func (r *Runner) Figure4(scale float64, seed int64) (*LoadBalance, error) {
	tr := r.sydneyTrace(seed, 10, 195, scale)
	return r.loadBalance("Sydney", tr, 5, seed)
}

// Figure5 reproduces Figure 5 on this Runner's pool: 3 cloud sizes ×
// (static + 3 ring sizes) = 12 independent runs. Runs for the same cloud
// size share one generated trace.
func (r *Runner) Figure5(scale float64, seed int64) (*RingSize, error) {
	res := &RingSize{
		CloudSizes: []int{10, 20, 50},
		RingSizes:  []int{2, 5, 10},
		StaticCoV:  make(map[int]float64),
		DynamicCoV: make(map[int]map[int]float64),
	}
	type task struct {
		cs, rs int // rs == 0 means static hashing
	}
	var tasks []task
	for _, cs := range res.CloudSizes {
		tasks = append(tasks, task{cs, 0})
		for _, rs := range res.RingSizes {
			tasks = append(tasks, task{cs, rs})
		}
		res.DynamicCoV[cs] = make(map[int]float64)
	}
	covs := make([]float64, len(tasks))
	err := r.Map(len(tasks), func(i int) error {
		t := tasks[i]
		tr := r.sydneyTrace(seed, t.cs, 195, scale)
		if t.rs == 0 {
			static, err := sim.Run(loadBalanceCfg(sim.StaticHashing, 0, tr, seed), tr)
			if err != nil {
				return fmt.Errorf("experiments: fig5 static %d: %w", t.cs, err)
			}
			covs[i] = static.LoadPerUnit().CoV()
			return nil
		}
		dynamic, err := sim.Run(loadBalanceCfg(sim.DynamicHashing, t.cs/t.rs, tr, seed), tr)
		if err != nil {
			return fmt.Errorf("experiments: fig5 dynamic %d/%d: %w", t.cs, t.rs, err)
		}
		covs[i] = dynamic.LoadPerUnit().CoV()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, t := range tasks {
		if t.rs == 0 {
			res.StaticCoV[t.cs] = covs[i]
		} else {
			res.DynamicCoV[t.cs][t.rs] = covs[i]
		}
	}
	return res, nil
}

// Figure6 reproduces Figure 6 on this Runner's pool: 11 Zipf parameters ×
// 2 schemes = 22 independent runs; both schemes at one alpha share a trace.
func (r *Runner) Figure6(scale float64, seed int64) (*ZipfSweep, error) {
	alphas := []float64{0.001, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.99}
	res := &ZipfSweep{
		Alphas:     alphas,
		StaticCoV:  make([]float64, len(alphas)),
		DynamicCoV: make([]float64, len(alphas)),
	}
	err := r.Map(2*len(alphas), func(i int) error {
		ai, dyn := i/2, i%2 == 1
		a := alphas[ai]
		tr := r.zipfTrace(seed, 10, a, 195, scale)
		if dyn {
			dynamic, err := sim.Run(loadBalanceCfg(sim.DynamicHashing, 5, tr, seed), tr)
			if err != nil {
				return fmt.Errorf("experiments: fig6 dynamic %.2f: %w", a, err)
			}
			res.DynamicCoV[ai] = dynamic.LoadPerUnit().CoV()
			return nil
		}
		static, err := sim.Run(loadBalanceCfg(sim.StaticHashing, 0, tr, seed), tr)
		if err != nil {
			return fmt.Errorf("experiments: fig6 static %.2f: %w", a, err)
		}
		res.StaticCoV[ai] = static.LoadPerUnit().CoV()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// placementSweep runs the three policies across the update-rate axis:
// len(rates) × 3 independent runs; the three policies at one rate share a
// trace. The Utility policy is stateless, so one instance serves all runs.
func (r *Runner) placementSweep(scale float64, seed int64, limitedDisk bool, rates []int) (*PlacementSweep, error) {
	res := &PlacementSweep{
		LimitedDisk: limitedDisk,
		UpdateRates: rates,
		StoredPct:   make(map[string][]float64),
		NetworkMB:   make(map[string][]float64),
	}
	util, err := placement.NewUtility(placement.EqualOn(true, true, true, limitedDisk), 0.5)
	if err != nil {
		return nil, err
	}
	policies := []placement.Policy{placement.AdHoc{}, util, placement.BeaconPoint{}}
	type cell struct{ storedPct, networkMB float64 }
	cells := make([]cell, len(rates)*len(policies))
	err = r.Map(len(cells), func(i int) error {
		rate, pol := rates[i/len(policies)], policies[i%len(policies)]
		tr := r.sydneyTrace(seed, 10, rate, scale)
		cfg := sim.Config{
			Arch: sim.DynamicHashing, NumRings: 5, CycleLength: cycleFor(tr.Duration),
			Policy: pol, Seed: seed,
		}
		if limitedDisk {
			cfg.CapacityFraction = 0.30
		}
		run, err := sim.Run(cfg, tr)
		if err != nil {
			return fmt.Errorf("experiments: sweep %s rate %d: %w", pol.Name(), rate, err)
		}
		cells[i] = cell{run.StoredPctMean(), run.NetworkMBPerUnit()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		name := policies[i%len(policies)].Name()
		res.StoredPct[name] = append(res.StoredPct[name], c.storedPct)
		res.NetworkMB[name] = append(res.NetworkMB[name], c.networkMB)
	}
	return res, nil
}

// Figure7and8 reproduces Figures 7 and 8 on this Runner's pool.
func (r *Runner) Figure7and8(scale float64, seed int64) (*PlacementSweep, error) {
	return r.placementSweep(scale, seed, false, UpdateRates)
}

// Figure9 reproduces Figure 9 on this Runner's pool.
func (r *Runner) Figure9(scale float64, seed int64) (*PlacementSweep, error) {
	return r.placementSweep(scale, seed, true, UpdateRates)
}

// ScaleOutExperiment runs the scale-out sweep on this Runner's pool: one
// independent network build+run per cloud count.
func (r *Runner) ScaleOutExperiment(scale float64, seed int64) (*ScaleOut, error) {
	res := &ScaleOut{CloudCounts: []int{1, 2, 4, 8}}
	n := len(res.CloudCounts)
	res.UpdateMessages = make([]float64, n)
	res.HolderRefreshes = make([]float64, n)
	res.HitRate = make([]float64, n)
	err := r.Map(n, func(i int) error {
		clouds := res.CloudCounts[i]
		memberships := make([][]string, clouds)
		var allIDs []string
		for c := 0; c < clouds; c++ {
			for j := 0; j < 10; j++ {
				id := fmt.Sprintf("edge-%02d-%02d", c, j)
				memberships[c] = append(memberships[c], id)
				allIDs = append(allIDs, id)
			}
		}
		net, err := edgenet.Build(memberships, nil, edgenet.Config{Seed: seed})
		if err != nil {
			return fmt.Errorf("experiments: scaleout build %d: %w", clouds, err)
		}
		tr := trace.GenerateZipf(trace.ZipfConfig{
			Seed: seed, NumDocs: 20000, Alpha: 0.9, CacheIDs: allIDs,
			Duration: scaleDuration(120, scale), ReqPerCache: 20, UpdatesPerUnit: 100,
		})
		run, err := net.Run(tr)
		if err != nil {
			return fmt.Errorf("experiments: scaleout run %d: %w", clouds, err)
		}
		res.UpdateMessages[i] = float64(run.UpdateMessages) / float64(run.Updates)
		res.HolderRefreshes[i] = float64(run.HolderRefreshes) / float64(run.Updates)
		res.HitRate[i] = run.HitRate()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Formatter is the common shape of experiment results: anything Result
// returns can render itself as the figure's text tables.
type Formatter interface {
	Format(w io.Writer)
}

// Result executes an experiment by figure name ("fig3" … "fig9", plus the
// extension experiments) on this Runner's pool and returns its result.
// Figures 7 and 8 share a sweep. The concrete types behind the Formatter
// have exported fields, so results can also be JSON-marshalled.
func (r *Runner) Result(name string, scale float64, seed int64) (Formatter, error) {
	switch name {
	case "fig3":
		return r.Figure3(scale, seed)
	case "fig4":
		return r.Figure4(scale, seed)
	case "fig5":
		return r.Figure5(scale, seed)
	case "fig6":
		return r.Figure6(scale, seed)
	case "fig7", "fig8":
		return r.Figure7and8(scale, seed)
	case "fig9":
		return r.Figure9(scale, seed)
	case "scaleout":
		return r.ScaleOutExperiment(scale, seed)
	case "latency":
		return r.LatencyExperiment(scale, seed)
	case "capability":
		return r.CapabilityExperiment(scale, seed)
	case "resilience":
		return r.ResilienceExperiment(scale, seed)
	case "crashsweep":
		return r.CrashSweepExperiment(scale, seed)
	case "stormsweep":
		return r.StormSweepExperiment(scale, seed)
	case "restartsweep":
		return r.RestartSweepExperiment(scale, seed)
	case "shieldsweep":
		return r.ShieldSweepExperiment(scale, seed)
	case "tenantsweep":
		return r.TenantSweepExperiment(scale, seed)
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
}

// Run executes an experiment by name on this Runner's pool and writes its
// formatted output to w.
func (r *Runner) Run(name string, scale float64, seed int64, w io.Writer) error {
	res, err := r.Result(name, scale, seed)
	if err != nil {
		return err
	}
	res.Format(w)
	return nil
}

// The package-level experiment functions delegate to a fresh default-sized
// Runner, so existing callers transparently get the parallel engine.

// Figure3 reproduces Figure 3: load distribution for the Zipf-0.9 dataset
// on a 10-cache cloud (dynamic: 5 rings × 2 beacon points).
func Figure3(scale float64, seed int64) (*LoadBalance, error) {
	return NewRunner(0).Figure3(scale, seed)
}

// Figure4 reproduces Figure 4: load distribution for the Sydney dataset.
func Figure4(scale float64, seed int64) (*LoadBalance, error) {
	return NewRunner(0).Figure4(scale, seed)
}

// Figure5 reproduces Figure 5: clouds of 10, 20 and 50 caches; dynamic
// hashing with 2, 5 and 10 beacon points per ring versus static hashing.
func Figure5(scale float64, seed int64) (*RingSize, error) {
	return NewRunner(0).Figure5(scale, seed)
}

// Figure6 reproduces Figure 6: Zipf parameters 0.0 … 0.99 on a 10-cache
// cloud.
func Figure6(scale float64, seed int64) (*ZipfSweep, error) {
	return NewRunner(0).Figure6(scale, seed)
}

// Figure7and8 reproduces Figures 7 and 8 in one sweep: unlimited disk
// space, DsCC turned off, weights 1/3 each, threshold 0.5.
func Figure7and8(scale float64, seed int64) (*PlacementSweep, error) {
	return NewRunner(0).Figure7and8(scale, seed)
}

// Figure9 reproduces Figure 9: disk space limited to 30% of the corpus,
// LRU replacement, DsCC turned on with weights 1/4 each.
func Figure9(scale float64, seed int64) (*PlacementSweep, error) {
	return NewRunner(0).Figure9(scale, seed)
}

// ScaleOutExperiment runs the scale-out sweep.
func ScaleOutExperiment(scale float64, seed int64) (*ScaleOut, error) {
	return NewRunner(0).ScaleOutExperiment(scale, seed)
}

// LatencyExperiment measures client latency under each architecture on the
// Sydney workload.
func LatencyExperiment(scale float64, seed int64) (*Latency, error) {
	return NewRunner(0).LatencyExperiment(scale, seed)
}

// CapabilityExperiment runs the heterogeneous-capability measurement.
func CapabilityExperiment(scale float64, seed int64) (*Capability, error) {
	return NewRunner(0).CapabilityExperiment(scale, seed)
}

// ResilienceExperiment crashes three caches mid-run and compares record
// loss and hit rate with and without lazy replication.
func ResilienceExperiment(scale float64, seed int64) (*Resilience, error) {
	return NewRunner(0).ResilienceExperiment(scale, seed)
}

// CrashSweepExperiment sweeps staggered crash counts over replication
// on/off to profile degradation and recovery.
func CrashSweepExperiment(scale float64, seed int64) (*CrashSweep, error) {
	return NewRunner(0).CrashSweepExperiment(scale, seed)
}

// Run executes an experiment by figure name ("fig3" … "fig9") and writes
// its formatted output to w, using a default-sized Runner.
func Run(name string, scale float64, seed int64, w io.Writer) error {
	return NewRunner(0).Run(name, scale, seed, w)
}

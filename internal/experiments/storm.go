package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"time"

	"cachecloud/internal/admit"
)

// Storm-model constants: one cache node facing a fixed-capacity origin.
// The origin completes stormOriginRate fetches per tick in FIFO order, so
// driving more fetches in flight only lengthens their latency — exactly
// the shape the adaptive limiter exists to detect.
const (
	stormDocs       = 600 // catalog size
	stormCacheCap   = 100 // cached documents (FIFO replacement)
	stormOriginRate = 3   // origin fetch completions per tick
	stormTickMs     = 10  // one tick of modelled latency, in milliseconds
	stormGateCap    = 64  // admission gate capacity (weight units)
	stormLimitMax   = 12  // limiter ceiling on in-flight origin fetches
)

// StormSweep is the result of the overload storm sweep (robustness
// extension): a deterministic discrete-time miss-storm model driven over
// an arrival-rate × Zipf-skew grid, once with the adaptive AIMD limiter
// and once with a full-throttle fixed limiter. The model steps the real
// admission primitives — internal/admit's Gate, Limiter and the
// coalescing discipline — via their clock-free TryAcquire/Release
// surface, so every cell is reproducible at any worker count.
type StormSweep struct {
	// Ticks is the arrival phase length; each run then drains to
	// quiescence before its books are balanced.
	Ticks int
	Rows  []StormRow
}

// StormRow is one grid cell's outcome.
type StormRow struct {
	Mode    string  // limiter mode: aimd or fixed
	Rate    int     // arrivals per tick
	Alpha   float64 // Zipf skew of document popularity
	Offered int64
	Served  int64
	Shed    int64
	// Coalesced counts requests served by piggybacking on an in-flight
	// fetch for the same document rather than issuing their own.
	Coalesced     int64
	OriginFetches int64
	GoodputPct    float64
	// MeanFetchMs is the mean origin fetch latency (queueing included) —
	// the number the adaptive limiter keeps bounded.
	MeanFetchMs float64
	FinalLimit  int
	// PeakInFlight is the most fetches ever simultaneously in flight at
	// the origin; the limiter ceiling bounds it.
	PeakInFlight int
}

// Format writes the sweep table.
func (s *StormSweep) Format(w io.Writer) {
	fmt.Fprintf(w, "Overload storm sweep (extension): %d-tick miss storms on the live admission primitives\n", s.Ticks)
	fmt.Fprintf(w, "origin serves %d fetches/tick; gate capacity %d; limiter max %d; aimd (adaptive) vs fixed (full throttle)\n",
		stormOriginRate, stormGateCap, stormLimitMax)
	fmt.Fprintf(w, "%-6s %5s %6s %8s %8s %8s %8s %10s %8s %8s %6s %5s\n",
		"mode", "rate", "alpha", "offered", "served", "shed", "goodput",
		"coalesced", "fetches", "mean ms", "limit", "peak")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%-6s %5d %6.2f %8d %8d %8d %7.1f%% %10d %8d %8.1f %6d %5d\n",
			r.Mode, r.Rate, r.Alpha, r.Offered, r.Served, r.Shed, r.GoodputPct,
			r.Coalesced, r.OriginFetches, r.MeanFetchMs, r.FinalLimit, r.PeakInFlight)
	}
}

// zipfCDF precomputes the cumulative distribution of a power law with
// exponent alpha over n ranks.
func zipfCDF(n int, alpha float64) []float64 {
	cum := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -alpha)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return cum
}

// sampleZipf draws one rank from the precomputed CDF.
func sampleZipf(rng *rand.Rand, cum []float64) int {
	i := sort.SearchFloat64s(cum, rng.Float64())
	if i >= len(cum) {
		i = len(cum) - 1
	}
	return i
}

// stormCell runs one grid cell: ticks of Poisson-free fixed-rate arrivals
// against the gate/limiter/coalescing pipeline, then a drain to
// quiescence. The cell self-checks the conservation invariant (every
// offered request is served or shed, nothing lingers) before reporting.
func stormCell(seed int64, mode admit.LimitMode, rate int, alpha float64, ticks int) (StormRow, error) {
	rng := rand.New(rand.NewSource(seed))
	cum := zipfCDF(stormDocs, alpha)
	gate := admit.NewGate(admit.GateOptions{Capacity: stormGateCap})
	lopts := admit.LimiterOptions{Mode: mode, Max: stormLimitMax}
	if mode == admit.LimitFixed {
		// Full throttle: the naive policy the adaptive law must beat.
		lopts.Initial = stormLimitMax
	}
	lim := admit.NewLimiter(lopts)

	type flight struct {
		doc     int
		issued  int
		waiters int64
		release func()
	}
	var (
		pending  = make(map[int]*flight) // document -> in-flight fetch
		origin   []*flight               // FIFO queue at the origin
		cached   = make(map[int]bool)
		fifo     []int
		row      = StormRow{Mode: string(mode), Rate: rate, Alpha: alpha}
		latSumMs float64
		peak     int
	)
	insert := func(doc int) {
		if cached[doc] {
			return
		}
		cached[doc] = true
		fifo = append(fifo, doc)
		if len(fifo) > stormCacheCap {
			delete(cached, fifo[0])
			fifo = fifo[1:]
		}
	}

	for now := 0; ; now++ {
		// The origin completes up to its per-tick capacity; a completed
		// fetch serves its whole coalesced group and reports its latency
		// (queueing included) to the limiter.
		for done := 0; len(origin) > 0 && done < stormOriginRate; done++ {
			f := origin[0]
			origin = origin[1:]
			lat := time.Duration(now-f.issued+1) * stormTickMs * time.Millisecond
			latSumMs += float64(lat) / float64(time.Millisecond)
			lim.Release(lat, true)
			f.release()
			delete(pending, f.doc)
			insert(f.doc)
			row.Served += f.waiters
			row.Coalesced += f.waiters - 1
			row.OriginFetches++
		}

		if now < ticks {
			for i := 0; i < rate; i++ {
				row.Offered++
				doc := sampleZipf(rng, cum)
				if cached[doc] {
					if rel, ok := gate.TryAcquire(admit.Hit); ok {
						rel()
						row.Served++
					} else {
						row.Shed++
					}
					continue
				}
				if f, ok := pending[doc]; ok {
					f.waiters++ // coalesce onto the in-flight fetch
					continue
				}
				grel, ok := gate.TryAcquire(admit.Miss)
				if !ok {
					row.Shed++
					continue
				}
				if !lim.TryAcquire() {
					grel()
					row.Shed++
					continue
				}
				f := &flight{doc: doc, issued: now, waiters: 1, release: grel}
				pending[doc] = f
				origin = append(origin, f)
			}
		}
		if len(origin) > peak {
			peak = len(origin)
		}
		if now >= ticks && len(origin) == 0 {
			break
		}
	}

	if row.Served+row.Shed != row.Offered {
		return row, fmt.Errorf("experiments: stormsweep %s rate=%d alpha=%.2f: served %d + shed %d != offered %d",
			mode, rate, alpha, row.Served, row.Shed, row.Offered)
	}
	if gate.InFlight() != 0 || lim.InFlight() != 0 || len(pending) != 0 {
		return row, fmt.Errorf("experiments: stormsweep %s rate=%d alpha=%.2f: not quiescent (gate %d, limiter %d, pending %d)",
			mode, rate, alpha, gate.InFlight(), lim.InFlight(), len(pending))
	}
	if row.Offered > 0 {
		row.GoodputPct = 100 * float64(row.Served) / float64(row.Offered)
	}
	if row.OriginFetches > 0 {
		row.MeanFetchMs = latSumMs / float64(row.OriginFetches)
	}
	row.FinalLimit = lim.Limit()
	row.PeakInFlight = peak
	return row, nil
}

// StormSweepExperiment runs the storm grid on this Runner's pool: every
// (mode, rate, alpha) cell is an independent deterministic run collected
// by index, so the sweep is byte-identical at any worker count.
func (r *Runner) StormSweepExperiment(scale float64, seed int64) (*StormSweep, error) {
	ticks := int(scaleDuration(240, scale))
	modes := []admit.LimitMode{admit.LimitAIMD, admit.LimitFixed}
	rates := []int{4, 16, 64}
	alphas := []float64{0.5, 0.9}
	type cell struct {
		mode  admit.LimitMode
		rate  int
		alpha float64
	}
	var cells []cell
	for _, m := range modes {
		for _, rate := range rates {
			for _, a := range alphas {
				cells = append(cells, cell{m, rate, a})
			}
		}
	}
	out := &StormSweep{Ticks: ticks, Rows: make([]StormRow, len(cells))}
	err := r.Map(len(cells), func(i int) error {
		c := cells[i]
		row, err := stormCell(seed+int64(i)*7919, c.mode, c.rate, c.alpha, ticks)
		if err != nil {
			return err
		}
		out.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// StormSweepExperiment runs the overload storm sweep on a default-sized
// Runner.
func StormSweepExperiment(scale float64, seed int64) (*StormSweep, error) {
	return NewRunner(0).StormSweepExperiment(scale, seed)
}

package cache

import (
	"fmt"
	"sync"
	"testing"

	"cachecloud/internal/document"
)

// The cache must keep its byte accounting exact under concurrent access
// from many goroutines (run with -race).
func TestConcurrentCacheAccess(t *testing.T) {
	for _, kind := range []ReplacementKind{LRU, LFU, GreedyDualSize} {
		t.Run(kind.String(), func(t *testing.T) {
			c := NewWithReplacement("c", 100_000, kind)
			const workers = 8
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(worker int) {
					defer wg.Done()
					for i := 0; i < 500; i++ {
						url := fmt.Sprintf("d%d", (worker*13+i)%64)
						now := int64(i)
						switch i % 4 {
						case 0:
							_, _ = c.Get(url, now)
						case 1:
							_, _ = c.Put(document.Copy{Doc: document.Document{
								URL: url, Size: int64(500 + worker*100), Version: 1,
							}}, now)
						case 2:
							c.ApplyUpdate(document.Document{URL: url, Size: 700, Version: document.Version(i)}, now)
						case 3:
							if i%16 == 3 {
								c.Remove(url)
							} else {
								_ = c.AccessRate(url, now)
								_ = c.MeanAccessRate(now)
								_ = c.EvictionByteRate(now)
							}
						}
					}
				}(w)
			}
			wg.Wait()

			// Post-condition: accounting agrees with contents.
			var sum int64
			for _, url := range c.Documents() {
				cp, ok := c.Peek(url)
				if !ok {
					t.Fatalf("Documents lists %s but Peek misses", url)
				}
				sum += cp.Doc.Size
			}
			if sum != c.Used() {
				t.Fatalf("used %d != contents sum %d", c.Used(), sum)
			}
			if c.Used() > 100_000 {
				t.Fatalf("capacity exceeded: %d", c.Used())
			}
		})
	}
}

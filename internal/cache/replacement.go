package cache

import (
	"container/heap"
	"container/list"
	"fmt"
)

// ReplacementKind selects the document replacement policy an edge cache
// uses when its disk fills. The paper's limited-disk experiments use LRU;
// LFU and GreedyDual-Size (Cao & Irani, the paper's reference [3]) are
// provided for the replacement-policy ablation.
type ReplacementKind int

const (
	// LRU evicts the least recently used document.
	LRU ReplacementKind = iota + 1
	// LFU evicts the least frequently used document (ties broken by
	// recency).
	LFU
	// GreedyDualSize evicts the document with the lowest H value, where
	// H = L + 1/size: small cost-per-byte documents with stale credit go
	// first and the clock L inflates to the evicted H.
	GreedyDualSize
)

// String implements fmt.Stringer.
func (k ReplacementKind) String() string {
	switch k {
	case LRU:
		return "lru"
	case LFU:
		return "lfu"
	case GreedyDualSize:
		return "gds"
	default:
		return fmt.Sprintf("replacement(%d)", int(k))
	}
}

// replacementPolicy tracks stored documents and nominates eviction victims.
// Implementations are not safe for concurrent use; Cache serialises calls
// under its own lock.
type replacementPolicy interface {
	// onInsert registers a newly stored document.
	onInsert(url string, size int64)
	// onAccess records a hit on a stored document.
	onAccess(url string)
	// onRemove deregisters a document (eviction or explicit removal).
	onRemove(url string)
	// victim nominates the next document to evict, skipping exclude.
	// It returns false when no evictable document remains.
	victim(exclude string) (string, bool)
	// ordered returns the stored URLs in decreasing keep-priority
	// (the document evicted last comes first).
	ordered() []string
}

// newReplacementPolicy constructs the policy for a kind (LRU by default).
func newReplacementPolicy(kind ReplacementKind) replacementPolicy {
	switch kind {
	case LFU:
		return newLFUPolicy()
	case GreedyDualSize:
		return newGDSPolicy()
	default:
		return newLRUPolicy()
	}
}

// --- LRU ---

type lruPolicy struct {
	order *list.List // front = most recently used; values are string URLs
	elems map[string]*list.Element
}

func newLRUPolicy() *lruPolicy {
	return &lruPolicy{order: list.New(), elems: make(map[string]*list.Element)}
}

func (p *lruPolicy) onInsert(url string, _ int64) {
	if el, ok := p.elems[url]; ok {
		p.order.MoveToFront(el)
		return
	}
	p.elems[url] = p.order.PushFront(url)
}

func (p *lruPolicy) onAccess(url string) {
	if el, ok := p.elems[url]; ok {
		p.order.MoveToFront(el)
	}
}

func (p *lruPolicy) onRemove(url string) {
	if el, ok := p.elems[url]; ok {
		p.order.Remove(el)
		delete(p.elems, url)
	}
}

func (p *lruPolicy) victim(exclude string) (string, bool) {
	for el := p.order.Back(); el != nil; el = el.Prev() {
		url, ok := el.Value.(string)
		if !ok {
			continue
		}
		if url != exclude {
			return url, true
		}
	}
	return "", false
}

func (p *lruPolicy) ordered() []string {
	out := make([]string, 0, p.order.Len())
	for el := p.order.Front(); el != nil; el = el.Next() {
		if url, ok := el.Value.(string); ok {
			out = append(out, url)
		}
	}
	return out
}

// --- priority-heap base shared by LFU and GDS ---

// heapEntry is one document in a keyed min-heap: the lowest (key, seq)
// pair is the next victim; seq breaks ties by insertion/access recency
// (older first).
type heapEntry struct {
	url  string
	key  float64
	seq  uint64
	idx  int
	size int64
}

type entryHeap []*heapEntry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].seq < h[j].seq
}
func (h entryHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *entryHeap) Push(x any) {
	e, ok := x.(*heapEntry)
	if !ok {
		return
	}
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

type keyedPolicy struct {
	heap    entryHeap
	entries map[string]*heapEntry
	seq     uint64
	// rekeyInsert and rekeyAccess compute the new priority key.
	rekeyInsert func(p *keyedPolicy, e *heapEntry)
	rekeyAccess func(p *keyedPolicy, e *heapEntry)
	// onEvict lets GDS inflate its clock with the victim's key.
	onEvict func(p *keyedPolicy, e *heapEntry)
	clock   float64 // GDS L value
}

func (p *keyedPolicy) nextSeq() uint64 {
	p.seq++
	return p.seq
}

func (p *keyedPolicy) onInsert(url string, size int64) {
	if e, ok := p.entries[url]; ok {
		e.size = size
		p.rekeyAccess(p, e)
		e.seq = p.nextSeq()
		heap.Fix(&p.heap, e.idx)
		return
	}
	e := &heapEntry{url: url, size: size, seq: p.nextSeq()}
	p.rekeyInsert(p, e)
	heap.Push(&p.heap, e)
	p.entries[url] = e
}

func (p *keyedPolicy) onAccess(url string) {
	e, ok := p.entries[url]
	if !ok {
		return
	}
	p.rekeyAccess(p, e)
	e.seq = p.nextSeq()
	heap.Fix(&p.heap, e.idx)
}

func (p *keyedPolicy) onRemove(url string) {
	e, ok := p.entries[url]
	if !ok {
		return
	}
	heap.Remove(&p.heap, e.idx)
	delete(p.entries, url)
}

func (p *keyedPolicy) victim(exclude string) (string, bool) {
	if len(p.heap) == 0 {
		return "", false
	}
	top := p.heap[0]
	if top.url != exclude {
		if p.onEvict != nil {
			p.onEvict(p, top)
		}
		return top.url, true
	}
	// The excluded entry is at the top: check the better of its children.
	best := -1
	for _, c := range []int{1, 2} {
		if c < len(p.heap) && (best == -1 || p.heap.Less(c, best)) {
			best = c
		}
	}
	if best == -1 {
		return "", false
	}
	if p.onEvict != nil {
		p.onEvict(p, p.heap[best])
	}
	return p.heap[best].url, true
}

func (p *keyedPolicy) ordered() []string {
	// Decreasing keep-priority = decreasing key.
	out := make([]*heapEntry, len(p.heap))
	copy(out, p.heap)
	// Simple selection into a slice sorted by (key desc, seq desc).
	urls := make([]string, 0, len(out))
	for len(out) > 0 {
		best := 0
		for i := 1; i < len(out); i++ {
			if out[i].key > out[best].key ||
				(out[i].key == out[best].key && out[i].seq > out[best].seq) {
				best = i
			}
		}
		urls = append(urls, out[best].url)
		out = append(out[:best], out[best+1:]...)
	}
	return urls
}

func newLFUPolicy() *keyedPolicy {
	p := &keyedPolicy{entries: make(map[string]*heapEntry)}
	p.rekeyInsert = func(_ *keyedPolicy, e *heapEntry) { e.key = 1 }
	p.rekeyAccess = func(_ *keyedPolicy, e *heapEntry) { e.key++ }
	return p
}

func newGDSPolicy() *keyedPolicy {
	p := &keyedPolicy{entries: make(map[string]*heapEntry)}
	h := func(p *keyedPolicy, e *heapEntry) {
		size := e.size
		if size < 1 {
			size = 1
		}
		// Uniform miss cost of 1 per document: H = L + 1/size, so large
		// documents with no recent credit are evicted first.
		e.key = p.clock + 1/float64(size)
	}
	p.rekeyInsert = h
	p.rekeyAccess = h
	p.onEvict = func(p *keyedPolicy, e *heapEntry) {
		if e.key > p.clock {
			p.clock = e.key
		}
	}
	return p
}

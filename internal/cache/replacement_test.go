package cache

import (
	"fmt"
	"math/rand"
	"testing"

	"cachecloud/internal/document"
)

func TestReplacementKindString(t *testing.T) {
	if LRU.String() != "lru" || LFU.String() != "lfu" || GreedyDualSize.String() != "gds" {
		t.Fatal("kind names wrong")
	}
	if ReplacementKind(9).String() != "replacement(9)" {
		t.Fatal("unknown kind name wrong")
	}
}

func TestDefaultIsLRU(t *testing.T) {
	c := New("c", 10)
	if c.Replacement() != LRU {
		t.Fatalf("default replacement = %v", c.Replacement())
	}
	if NewWithReplacement("c", 10, ReplacementKind(0)).policy == nil {
		t.Fatal("unknown kind must fall back to a working policy")
	}
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	c := NewWithReplacement("c", 300, LFU)
	mustPut(t, c, doc("a", 100, 1), 0)
	mustPut(t, c, doc("b", 100, 1), 1)
	mustPut(t, c, doc("c", 100, 1), 2)
	// a: 3 hits, c: 2 hits, b: 0 hits → b is the LFU victim even though it
	// is not the least recently used.
	c.Get("a", 3)
	c.Get("a", 3)
	c.Get("a", 3)
	c.Get("c", 4)
	c.Get("c", 4)
	c.Get("b", 5) // one hit; still least frequent (freq 2 vs 3/4 after insert+hits)
	ev := mustPut(t, c, doc("d", 100, 1), 6)
	if len(ev) != 1 || ev[0].URL != "b" {
		t.Fatalf("LFU evicted %v, want [b]", ev)
	}
}

func TestLFUTieBreaksByRecency(t *testing.T) {
	c := NewWithReplacement("c", 200, LFU)
	mustPut(t, c, doc("old", 100, 1), 0)
	mustPut(t, c, doc("new", 100, 1), 1)
	// Equal frequency: the older (smaller seq) entry goes first.
	ev := mustPut(t, c, doc("x", 100, 1), 2)
	if len(ev) != 1 || ev[0].URL != "old" {
		t.Fatalf("LFU tie evicted %v, want [old]", ev)
	}
}

func TestGDSPrefersEvictingLargeDocs(t *testing.T) {
	c := NewWithReplacement("c", 11000, GreedyDualSize)
	mustPut(t, c, doc("small", 1000, 1), 0)
	mustPut(t, c, doc("big", 10000, 1), 1)
	// Neither has been re-accessed: H(small) = 1/1000 > H(big) = 1/10000,
	// so the big document is the first victim.
	ev := mustPut(t, c, doc("mid", 5000, 1), 2)
	if len(ev) != 1 || ev[0].URL != "big" {
		t.Fatalf("GDS evicted %v, want [big]", ev)
	}
}

func TestGDSClockInflation(t *testing.T) {
	c := NewWithReplacement("c", 3000, GreedyDualSize)
	mustPut(t, c, doc("a", 1000, 1), 0)
	mustPut(t, c, doc("b", 1000, 1), 1)
	mustPut(t, c, doc("c", 1000, 1), 2)
	// Evict once: the clock L rises to the victim's H, so a newly inserted
	// doc outranks untouched old ones.
	ev := mustPut(t, c, doc("d", 1000, 1), 3)
	if len(ev) != 1 {
		t.Fatalf("evicted %v", ev)
	}
	// d was inserted after the clock inflated; the next eviction must be
	// one of the older entries, never d.
	ev = mustPut(t, c, doc("e", 1000, 1), 4)
	if len(ev) != 1 || ev[0].URL == "d" || ev[0].URL == "e" {
		t.Fatalf("GDS evicted %v, want an old entry", ev)
	}
}

func TestVictimExclusionAllPolicies(t *testing.T) {
	for _, kind := range []ReplacementKind{LRU, LFU, GreedyDualSize} {
		t.Run(kind.String(), func(t *testing.T) {
			c := NewWithReplacement("c", 100, kind)
			ev := mustPut(t, c, doc("only", 100, 1), 0)
			if len(ev) != 0 || !c.Has("only") {
				t.Fatalf("sole entry evicted itself: %v", ev)
			}
		})
	}
}

func TestOrderedMatchesResidency(t *testing.T) {
	for _, kind := range []ReplacementKind{LRU, LFU, GreedyDualSize} {
		t.Run(kind.String(), func(t *testing.T) {
			c := NewWithReplacement("c", 0, kind)
			want := map[string]bool{}
			for i := 0; i < 20; i++ {
				u := fmt.Sprintf("d%d", i)
				mustPut(t, c, doc(u, 10, 1), int64(i))
				want[u] = true
			}
			got := c.Documents()
			if len(got) != len(want) {
				t.Fatalf("Documents has %d entries, want %d", len(got), len(want))
			}
			for _, u := range got {
				if !want[u] {
					t.Fatalf("unexpected %s in Documents", u)
				}
			}
		})
	}
}

// Byte accounting must stay exact under random operations for every
// replacement policy.
func TestRandomOpsInvariantsAllPolicies(t *testing.T) {
	for _, kind := range []ReplacementKind{LRU, LFU, GreedyDualSize} {
		t.Run(kind.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(kind)))
			c := NewWithReplacement("c", 5000, kind)
			live := map[string]int64{}
			for op := 0; op < 3000; op++ {
				now := int64(op)
				url := fmt.Sprintf("d%d", rng.Intn(60))
				switch rng.Intn(4) {
				case 0, 1:
					size := int64(rng.Intn(900) + 100)
					ev, err := c.Put(document.Copy{Doc: doc(url, size, 1)}, now)
					if err != nil {
						t.Fatal(err)
					}
					live[url] = size
					for _, d := range ev {
						delete(live, d.URL)
					}
				case 2:
					if c.Remove(url) {
						delete(live, url)
					}
				case 3:
					c.Get(url, now)
				}
				var sum int64
				for _, s := range live {
					sum += s
				}
				if c.Used() != sum || c.Used() > 5000 || c.Len() != len(live) {
					t.Fatalf("op %d (%v): used=%d sum=%d len=%d live=%d",
						op, kind, c.Used(), sum, c.Len(), len(live))
				}
			}
		})
	}
}

// Under a skewed stream with a working set slightly over capacity, LFU and
// GDS must retain the hot head at least as well as random chance; sanity
// check that hit rates are reasonable and policies differ.
func TestPoliciesBehaveDifferently(t *testing.T) {
	workload := func(kind ReplacementKind) int64 {
		rng := rand.New(rand.NewSource(7))
		c := NewWithReplacement("c", 50_000, kind)
		for i := 0; i < 20000; i++ {
			r := rng.Intn(100)
			r = (r * r) / 100 // skew toward low indexes
			u := fmt.Sprintf("d%d", r)
			size := int64(500 + 37*r)
			if _, ok := c.Get(u, int64(i)); !ok {
				if _, err := c.Put(document.Copy{Doc: doc(u, size, 1)}, int64(i)); err != nil {
					t.Fatal(err)
				}
			}
		}
		h, _ := c.HitsMisses()
		return h
	}
	lru, lfu, gds := workload(LRU), workload(LFU), workload(GreedyDualSize)
	for kind, hits := range map[string]int64{"lru": lru, "lfu": lfu, "gds": gds} {
		if hits < 7000 {
			t.Fatalf("%s hit count %d implausibly low", kind, hits)
		}
	}
}

package cache

import (
	"errors"
	"testing"

	"cachecloud/internal/document"
)

// quotaTable is a mutable TenantQuotas for tests (shrinking a quota is
// just a map write).
type quotaTable map[string]int64

func (q quotaTable) ByteQuota(tenant string) int64 { return q[tenant] }

func putDoc(t *testing.T, c *Cache, tenant, url string, size int64, now int64) []document.Document {
	t.Helper()
	key := document.TenantKey(tenant, url)
	ev, err := c.Put(document.Copy{Doc: document.Document{URL: key, Size: size, Version: 1}, FetchedAt: now}, now)
	if err != nil {
		t.Fatalf("put %s/%s: %v", tenant, url, err)
	}
	return ev
}

// TestTenantQuotaLaws drives the cache-side quota-law edge cases from a
// table: a zero-storage quota admits nothing, an over-quota tenant evicts
// only its own entries in replacement order, the uncapped default tenant
// rides along untouched, and exact per-tenant byte accounting holds
// through replaces and removes.
func TestTenantQuotaLaws(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"zero storage quota admits nothing", func(t *testing.T) {
			c := New("e0", 0)
			c.SetTenantQuotas(quotaTable{"boxed": 1})
			key := document.TenantKey("boxed", "http://o/a")
			_, err := c.Put(document.Copy{Doc: document.Document{URL: key, Size: 100, Version: 1}}, 0)
			if !errors.Is(err, ErrTenantQuota) {
				t.Fatalf("err = %v, want ErrTenantQuota", err)
			}
			if c.Len() != 0 || c.TenantUsed("boxed") != 0 {
				t.Fatalf("rejected put left residue: len=%d used=%d", c.Len(), c.TenantUsed("boxed"))
			}
		}},
		{"over-quota tenant evicts only itself in LRU order", func(t *testing.T) {
			c := New("e0", 0)
			c.SetTenantQuotas(quotaTable{"acme": 250})
			putDoc(t, c, "acme", "http://o/a", 100, 1)
			putDoc(t, c, "acme", "http://o/b", 100, 2)
			putDoc(t, c, "", "http://o/a", 100, 3) // default tenant, same URL
			ev := putDoc(t, c, "acme", "http://o/c", 100, 4)
			if len(ev) != 1 || ev[0].URL != document.TenantKey("acme", "http://o/a") {
				t.Fatalf("evicted %v, want acme's LRU doc a", ev)
			}
			if got := c.TenantUsed("acme"); got != 200 {
				t.Fatalf("acme resident = %d, want 200", got)
			}
			if !c.Has("http://o/a") {
				t.Fatal("default tenant's copy was evicted by acme's quota")
			}
		}},
		{"single doc at exactly quota is admitted", func(t *testing.T) {
			c := New("e0", 0)
			c.SetTenantQuotas(quotaTable{"acme": 100})
			putDoc(t, c, "acme", "http://o/a", 100, 1)
			ev := putDoc(t, c, "acme", "http://o/b", 100, 2)
			if len(ev) != 1 || ev[0].URL != document.TenantKey("acme", "http://o/a") {
				t.Fatalf("evicted %v, want exactly the prior copy", ev)
			}
		}},
		{"uncapped tenants ignore the quota table", func(t *testing.T) {
			c := New("e0", 0)
			c.SetTenantQuotas(quotaTable{"acme": 100})
			for i := 0; i < 5; i++ {
				putDoc(t, c, "", "http://o/a", 400, int64(i))
				putDoc(t, c, "globex", "http://o/b", 400, int64(i))
			}
			if c.TenantUsed("") != 400 || c.TenantUsed("globex") != 400 {
				t.Fatalf("uncapped tenants capped: %v", c.TenantUsage())
			}
		}},
		{"accounting exact through replace and remove", func(t *testing.T) {
			c := New("e0", 0)
			putDoc(t, c, "acme", "http://o/a", 100, 1)
			putDoc(t, c, "acme", "http://o/a", 250, 2) // replace in place
			putDoc(t, c, "globex", "http://o/a", 70, 3)
			if got := c.TenantUsed("acme"); got != 250 {
				t.Fatalf("acme resident = %d after replace, want 250", got)
			}
			c.Remove(document.TenantKey("acme", "http://o/a"))
			usage := c.TenantUsage()
			if _, ok := usage["acme"]; ok {
				t.Fatalf("acme still in usage after remove: %v", usage)
			}
			var sum int64
			for _, b := range usage {
				sum += b
			}
			if sum != c.Used() {
				t.Fatalf("per-tenant bytes sum %d != Used %d", sum, c.Used())
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.run)
	}
}

// TestTenantQuotaShrink shrinks a quota below the tenant's residency and
// checks the sweep evicts that tenant's documents — in LRU order, nothing
// else — and that the evicted set is reported for deregistration.
func TestTenantQuotaShrink(t *testing.T) {
	c := New("e0", 0)
	q := quotaTable{"acme": 1000}
	c.SetTenantQuotas(q)
	for i, url := range []string{"http://o/a", "http://o/b", "http://o/c"} {
		putDoc(t, c, "acme", url, 300, int64(i))
		putDoc(t, c, "globex", url, 300, int64(i))
	}
	q["acme"] = 350 // shrink below the 900B residency
	ev := c.EnforceTenantQuotas(10)
	if len(ev) != 2 {
		t.Fatalf("evicted %d docs, want 2: %v", len(ev), ev)
	}
	wantGone := []string{document.TenantKey("acme", "http://o/a"), document.TenantKey("acme", "http://o/b")}
	for i, want := range wantGone {
		if ev[i].URL != want {
			t.Fatalf("eviction %d = %q, want LRU-ordered %q", i, ev[i].URL, want)
		}
	}
	if got := c.TenantUsed("acme"); got != 300 {
		t.Fatalf("acme resident = %d after shrink, want 300", got)
	}
	if got := c.TenantUsed("globex"); got != 900 {
		t.Fatalf("globex resident = %d, want untouched 900", got)
	}
}

// TestTenantQuotaApplyUpdate covers updates interacting with quotas: a
// grown update evicts the tenant's other LRU entries, and an update grown
// past the whole quota drops the copy (reported not-held so the holder
// registration is pruned).
func TestTenantQuotaApplyUpdate(t *testing.T) {
	c := New("e0", 0)
	c.SetTenantQuotas(quotaTable{"acme": 300})
	putDoc(t, c, "acme", "http://o/a", 100, 1)
	putDoc(t, c, "acme", "http://o/b", 100, 2)
	keyA := document.TenantKey("acme", "http://o/a")
	keyB := document.TenantKey("acme", "http://o/b")

	if !c.ApplyUpdate(document.Document{URL: keyB, Size: 250, Version: 2}, 3) {
		t.Fatal("grown update within quota should be held")
	}
	if c.Has(keyA) {
		t.Fatal("grown update should have evicted the tenant's LRU entry")
	}
	if got := c.TenantUsed("acme"); got != 250 {
		t.Fatalf("acme resident = %d, want 250", got)
	}

	if c.ApplyUpdate(document.Document{URL: keyB, Size: 500, Version: 3}, 4) {
		t.Fatal("update grown past the whole quota must report not-held")
	}
	if c.Has(keyB) || c.TenantUsed("acme") != 0 {
		t.Fatalf("oversized update left residue: has=%v used=%d", c.Has(keyB), c.TenantUsed("acme"))
	}
}

// Package cache implements the edge cache: a byte-budgeted document store
// with pluggable replacement (LRU by default, as in the paper's
// limited-disk experiments; LFU and GreedyDual-Size for the replacement
// ablation) and the per-document access monitoring that feeds the
// utility-based placement scheme.
package cache

import (
	"errors"
	"fmt"
	"sync"

	"cachecloud/internal/document"
	"cachecloud/internal/loadstats"
)

// ErrTooLarge is returned when a document exceeds the cache's total
// capacity and can never be stored.
var ErrTooLarge = errors.New("cache: document larger than cache capacity")

// Durable is the disk tier the cache mirrors itself into when one is
// attached: every admission/refresh is persisted and every removal —
// including capacity evictions — is tombstoned, so a restart recovers
// exactly the set that was resident (no resurrection of evicted entries).
// Implemented by *durable.Store; kept as an interface here so the cache
// package stays free of filesystem concerns.
type Durable interface {
	Put(cp document.Copy) error
	Delete(url string) error
}

// accessHalfLife is the half-life (in time units) of the exponentially
// weighted access/eviction monitors. One hour of trace time.
const accessHalfLife = 60

// Cache is one edge cache. All methods are safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	id       string
	capacity int64 // bytes; 0 means unlimited
	used     int64
	entries  map[string]document.Copy
	policy   replacementPolicy
	kind     ReplacementKind

	// monitors tracks access rates per document URL, including documents
	// that are not currently stored — the paper's placement scheme decides
	// using patterns "collected through continued monitoring".
	monitors   map[string]*loadstats.EWRate
	totalRate  *loadstats.EWRate // all accesses at this cache
	evictBytes *loadstats.EWRate // bytes evicted per unit (disk contention)
	hits       int64
	misses     int64

	// durable mirrors mutations to the disk tier when attached; nil for
	// memory-only caches. Persistence errors are counted, never surfaced:
	// the in-memory cache keeps serving while durability degrades.
	durable     Durable
	durableErrs int64
}

// New creates an edge cache with LRU replacement. capacity is the disk
// budget in bytes; 0 means unlimited (the paper's Figures 7 and 8 setup).
func New(id string, capacity int64) *Cache {
	return NewWithReplacement(id, capacity, LRU)
}

// NewWithReplacement creates an edge cache with an explicit replacement
// policy.
func NewWithReplacement(id string, capacity int64, kind ReplacementKind) *Cache {
	return &Cache{
		id:         id,
		capacity:   capacity,
		entries:    make(map[string]document.Copy),
		policy:     newReplacementPolicy(kind),
		kind:       kind,
		monitors:   make(map[string]*loadstats.EWRate),
		totalRate:  loadstats.NewEWRate(accessHalfLife),
		evictBytes: loadstats.NewEWRate(accessHalfLife),
	}
}

// ID returns the cache identifier.
func (c *Cache) ID() string { return c.id }

// Capacity returns the byte budget (0 = unlimited).
func (c *Cache) Capacity() int64 { return c.capacity }

// Replacement returns the replacement policy kind.
func (c *Cache) Replacement() ReplacementKind { return c.kind }

// SetDurable attaches the disk tier. Attach it after any warm-boot load
// (and after compacting the log to the surviving set), so recovery itself
// is not re-appended. Pass nil to detach.
func (c *Cache) SetDurable(d Durable) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.durable = d
}

// DurableErrors returns how many disk-tier mutations failed. The cache
// keeps serving through persistence failures; this counter is the signal
// that durability has degraded.
func (c *Cache) DurableErrors() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.durableErrs
}

// persist mirrors an admission/refresh to the disk tier. Caller holds the
// lock.
func (c *Cache) persist(cp document.Copy) {
	if c.durable == nil {
		return
	}
	if err := c.durable.Put(cp); err != nil {
		c.durableErrs++
	}
}

// tombstone mirrors a removal to the disk tier. Caller holds the lock.
func (c *Cache) tombstone(url string) {
	if c.durable == nil {
		return
	}
	if err := c.durable.Delete(url); err != nil {
		c.durableErrs++
	}
}

// Used returns the bytes currently stored.
func (c *Cache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Len returns the number of stored documents.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Get looks up a document and, when present, refreshes its replacement
// priority. It always records the access in the monitoring state (hit or
// miss), so utility decisions can use the access history of documents the
// cache does not hold.
func (c *Cache) Get(url string, now int64) (document.Copy, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observeAccess(url, now)
	cp, ok := c.entries[url]
	if !ok {
		c.misses++
		return document.Copy{}, false
	}
	c.hits++
	c.policy.onAccess(url)
	return cp, true
}

// Peek returns the stored copy without touching replacement state or
// monitors.
func (c *Cache) Peek(url string) (document.Copy, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp, ok := c.entries[url]
	return cp, ok
}

// Has reports whether the document is stored.
func (c *Cache) Has(url string) bool {
	_, ok := c.Peek(url)
	return ok
}

// Put stores a copy, evicting documents chosen by the replacement policy
// as needed to fit the byte budget. It returns the evicted documents (so
// the caller can deregister them from their beacon points). Storing a
// document already present replaces it in place. Documents larger than the
// whole capacity are rejected with ErrTooLarge.
func (c *Cache) Put(cp document.Copy, now int64) ([]document.Document, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	size := cp.Doc.Size
	if c.capacity > 0 && size > c.capacity {
		return nil, fmt.Errorf("%w: %q is %dB, capacity %dB", ErrTooLarge, cp.Doc.URL, size, c.capacity)
	}
	if old, ok := c.entries[cp.Doc.URL]; ok {
		c.used += size - old.Doc.Size
	} else {
		c.used += size
	}
	c.entries[cp.Doc.URL] = cp
	c.policy.onInsert(cp.Doc.URL, size)
	c.persist(cp)
	return c.makeRoom(cp.Doc.URL, now), nil
}

// makeRoom evicts policy victims (never the protected URL) until used fits
// capacity. Caller holds the lock.
func (c *Cache) makeRoom(protect string, now int64) []document.Document {
	if c.capacity <= 0 {
		return nil
	}
	var evicted []document.Document
	for c.used > c.capacity {
		url, ok := c.policy.victim(protect)
		if !ok {
			break
		}
		victim := c.entries[url]
		c.removeLocked(url)
		c.evictBytes.Observe(now, float64(victim.Doc.Size))
		evicted = append(evicted, victim.Doc)
	}
	return evicted
}

// Remove drops a document, returning whether it was present.
func (c *Cache) Remove(url string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[url]
	if ok {
		c.removeLocked(url)
	}
	return ok
}

func (c *Cache) removeLocked(url string) {
	cp := c.entries[url]
	c.policy.onRemove(url)
	c.used -= cp.Doc.Size
	delete(c.entries, url)
	c.tombstone(url)
}

// ApplyUpdate refreshes the stored copy to the new document version if the
// cache holds the document. It reports whether the document was held. The
// updated copy keeps its replacement priority: an update is not a client
// access.
func (c *Cache) ApplyUpdate(doc document.Document, now int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp, ok := c.entries[doc.URL]
	if !ok {
		return false
	}
	if cp.Doc.Version >= doc.Version {
		return true // already fresh
	}
	c.used += doc.Size - cp.Doc.Size
	cp.Doc = doc
	cp.FetchedAt = now
	c.entries[doc.URL] = cp
	c.persist(cp)
	// A grown update can overflow the budget.
	c.makeRoom(doc.URL, now)
	return true
}

// Documents returns the URLs currently stored in decreasing keep-priority
// (most recently used first under LRU).
func (c *Cache) Documents() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.policy.ordered()
}

// observeAccess updates the monitoring state. Caller holds the lock.
func (c *Cache) observeAccess(url string, now int64) {
	m, ok := c.monitors[url]
	if !ok {
		m = loadstats.NewEWRate(accessHalfLife)
		c.monitors[url] = m
	}
	m.Observe(now, 1)
	c.totalRate.Observe(now, 1)
}

// AccessRate estimates the document's local accesses per time unit.
func (c *Cache) AccessRate(url string, now int64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.monitors[url]
	if !ok {
		return 0
	}
	return m.Rate(now)
}

// MeanAccessRate estimates the mean per-document access rate over the
// documents currently stored (total cache access rate divided by the store
// size). The utility scheme's access-frequency component compares a
// document against this baseline.
func (c *Cache) MeanAccessRate(now int64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	if n == 0 {
		n = 1
	}
	return c.totalRate.Rate(now) / float64(n)
}

// EvictionByteRate estimates bytes evicted per time unit — the cache's
// disk-space contention signal.
func (c *Cache) EvictionByteRate(now int64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictBytes.Rate(now)
}

// HitsMisses returns the cumulative local hit and miss counts.
func (c *Cache) HitsMisses() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Package cache implements the edge cache: a byte-budgeted document store
// with pluggable replacement (LRU by default, as in the paper's
// limited-disk experiments; LFU and GreedyDual-Size for the replacement
// ablation) and the per-document access monitoring that feeds the
// utility-based placement scheme.
package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"cachecloud/internal/document"
	"cachecloud/internal/loadstats"
)

// ErrTooLarge is returned when a document exceeds the cache's total
// capacity and can never be stored.
var ErrTooLarge = errors.New("cache: document larger than cache capacity")

// Durable is the disk tier the cache mirrors itself into when one is
// attached: every admission/refresh is persisted and every removal —
// including capacity evictions — is tombstoned, so a restart recovers
// exactly the set that was resident (no resurrection of evicted entries).
// Mutations are delivered in commit order by a drain loop that runs
// outside the cache lock, so a slow store operation (segment seal, log
// compaction) never stalls the serving path. Implemented by
// *durable.Store; kept as an interface here so the cache package stays
// free of filesystem concerns.
type Durable interface {
	Put(cp document.Copy) error
	Delete(url string) error
}

// accessHalfLife is the half-life (in time units) of the exponentially
// weighted access/eviction monitors. One hour of trace time.
const accessHalfLife = 60

// Cache is one edge cache. All methods are safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	id       string
	capacity int64 // bytes; 0 means unlimited
	used     int64
	entries  map[string]document.Copy
	policy   replacementPolicy
	kind     ReplacementKind

	// Multi-tenant residency: resident bytes per tenant (derived from the
	// tenant-folded keys) and the optional quota table enforced on every
	// Put/ApplyUpdate. A tenant over its cap evicts only its own entries.
	tenantUsed map[string]int64
	quotas     TenantQuotas

	// monitors tracks access rates per document URL, including documents
	// that are not currently stored — the paper's placement scheme decides
	// using patterns "collected through continued monitoring".
	monitors   map[string]*loadstats.EWRate
	totalRate  *loadstats.EWRate // all accesses at this cache
	evictBytes *loadstats.EWRate // bytes evicted per unit (disk contention)
	hits       int64
	misses     int64

	// The disk tier is mirrored through an ordered mutation queue rather
	// than called under mu: mutating methods enqueue (cheap, under mu, so
	// queue order equals commit order) and drain after releasing mu. An
	// expensive store operation — a segment seal or a full log compaction
	// triggered by one Put — therefore blocks only the goroutine draining
	// the queue, never the serving path. qmu guards the queue, the
	// flushing flag, and the durable handle; nil durable means
	// memory-only. Persistence errors are counted, never surfaced: the
	// in-memory cache keeps serving while durability degrades.
	qmu         sync.Mutex
	durable     Durable
	durQueue    []durOp
	flushing    bool
	durableErrs atomic.Int64
}

// durOp is one queued disk-tier mutation: a tombstone when del is set,
// otherwise a put/refresh of cp.
type durOp struct {
	url string
	cp  document.Copy
	del bool
}

// New creates an edge cache with LRU replacement. capacity is the disk
// budget in bytes; 0 means unlimited (the paper's Figures 7 and 8 setup).
func New(id string, capacity int64) *Cache {
	return NewWithReplacement(id, capacity, LRU)
}

// NewWithReplacement creates an edge cache with an explicit replacement
// policy.
func NewWithReplacement(id string, capacity int64, kind ReplacementKind) *Cache {
	return &Cache{
		id:         id,
		capacity:   capacity,
		entries:    make(map[string]document.Copy),
		policy:     newReplacementPolicy(kind),
		kind:       kind,
		monitors:   make(map[string]*loadstats.EWRate),
		totalRate:  loadstats.NewEWRate(accessHalfLife),
		evictBytes: loadstats.NewEWRate(accessHalfLife),
	}
}

// ID returns the cache identifier.
func (c *Cache) ID() string { return c.id }

// Capacity returns the byte budget (0 = unlimited).
func (c *Cache) Capacity() int64 { return c.capacity }

// Replacement returns the replacement policy kind.
func (c *Cache) Replacement() ReplacementKind { return c.kind }

// SetDurable attaches the disk tier. Attach it after any warm-boot load
// (and after compacting the log to the surviving set), so recovery itself
// is not re-appended. Pass nil to detach; detaching discards mutations
// queued but not yet drained.
func (c *Cache) SetDurable(d Durable) {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	c.durable = d
	if d == nil {
		c.durQueue = nil
	}
}

// DurableErrors returns how many disk-tier mutations failed. The cache
// keeps serving through persistence failures; this counter is the signal
// that durability has degraded.
func (c *Cache) DurableErrors() int64 {
	return c.durableErrs.Load()
}

// persist queues an admission/refresh for the disk tier. Caller holds mu.
func (c *Cache) persist(cp document.Copy) {
	c.enqueueDurable(durOp{url: cp.Doc.URL, cp: cp})
}

// tombstone queues a removal for the disk tier. Caller holds mu.
func (c *Cache) tombstone(url string) {
	c.enqueueDurable(durOp{url: url, del: true})
}

// enqueueDurable appends one mutation to the durable queue. Caller holds
// mu, which is what makes the queue order match the in-memory commit
// order; the mutating method drains with flushDurable after releasing mu.
func (c *Cache) enqueueDurable(o durOp) {
	c.qmu.Lock()
	if c.durable != nil {
		c.durQueue = append(c.durQueue, o)
	}
	c.qmu.Unlock()
}

// flushDurable drains queued disk-tier mutations in commit order. It runs
// without mu, so a log rotation or compaction inside the store blocks
// only this goroutine — concurrent reads and writes proceed, and their
// queued mutations are picked up by whichever drainer is active (the
// loop re-checks the queue after each batch, so nothing is stranded).
func (c *Cache) flushDurable() {
	c.qmu.Lock()
	for !c.flushing && len(c.durQueue) > 0 {
		c.flushing = true
		batch, d := c.durQueue, c.durable
		c.durQueue = nil
		c.qmu.Unlock()
		for _, o := range batch {
			var err error
			if o.del {
				err = d.Delete(o.url)
			} else {
				err = d.Put(o.cp)
			}
			if err != nil {
				c.durableErrs.Add(1)
			}
		}
		c.qmu.Lock()
		c.flushing = false
	}
	c.qmu.Unlock()
}

// Used returns the bytes currently stored.
func (c *Cache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Len returns the number of stored documents.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Get looks up a document and, when present, refreshes its replacement
// priority. It always records the access in the monitoring state (hit or
// miss), so utility decisions can use the access history of documents the
// cache does not hold.
func (c *Cache) Get(url string, now int64) (document.Copy, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observeAccess(url, now)
	cp, ok := c.entries[url]
	if !ok {
		c.misses++
		return document.Copy{}, false
	}
	c.hits++
	c.policy.onAccess(url)
	return cp, true
}

// Peek returns the stored copy without touching replacement state or
// monitors.
func (c *Cache) Peek(url string) (document.Copy, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp, ok := c.entries[url]
	return cp, ok
}

// Has reports whether the document is stored.
func (c *Cache) Has(url string) bool {
	_, ok := c.Peek(url)
	return ok
}

// Put stores a copy, evicting documents chosen by the replacement policy
// as needed to fit the byte budget. It returns the evicted documents (so
// the caller can deregister them from their beacon points). Storing a
// document already present replaces it in place. Documents larger than the
// whole capacity are rejected with ErrTooLarge.
func (c *Cache) Put(cp document.Copy, now int64) ([]document.Document, error) {
	c.mu.Lock()
	size := cp.Doc.Size
	if c.capacity > 0 && size > c.capacity {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %q is %dB, capacity %dB", ErrTooLarge, cp.Doc.URL, size, c.capacity)
	}
	tenant := tenantOf(cp.Doc.URL)
	if err := c.checkTenantFit(tenant, size); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	if old, ok := c.entries[cp.Doc.URL]; ok {
		c.used += size - old.Doc.Size
		c.noteTenantBytes(tenant, size-old.Doc.Size)
	} else {
		c.used += size
		c.noteTenantBytes(tenant, size)
	}
	c.entries[cp.Doc.URL] = cp
	c.policy.onInsert(cp.Doc.URL, size)
	c.persist(cp)
	evicted := c.makeTenantRoom(tenant, c.tenantQuotaOf(tenant), cp.Doc.URL, now)
	evicted = append(evicted, c.makeRoom(cp.Doc.URL, now)...)
	c.mu.Unlock()
	c.flushDurable()
	return evicted, nil
}

// makeRoom evicts policy victims (never the protected URL) until used fits
// capacity. Caller holds the lock.
func (c *Cache) makeRoom(protect string, now int64) []document.Document {
	if c.capacity <= 0 {
		return nil
	}
	var evicted []document.Document
	for c.used > c.capacity {
		url, ok := c.policy.victim(protect)
		if !ok {
			break
		}
		victim := c.entries[url]
		c.removeLocked(url)
		c.evictBytes.Observe(now, float64(victim.Doc.Size))
		evicted = append(evicted, victim.Doc)
	}
	return evicted
}

// Remove drops a document, returning whether it was present.
func (c *Cache) Remove(url string) bool {
	c.mu.Lock()
	_, ok := c.entries[url]
	if ok {
		c.removeLocked(url)
	}
	c.mu.Unlock()
	c.flushDurable()
	return ok
}

func (c *Cache) removeLocked(url string) {
	cp := c.entries[url]
	c.policy.onRemove(url)
	c.used -= cp.Doc.Size
	c.noteTenantBytes(tenantOf(url), -cp.Doc.Size)
	delete(c.entries, url)
	c.tombstone(url)
}

// ApplyUpdate refreshes the stored copy to the new document version if the
// cache holds the document. It reports whether the document was held. The
// updated copy keeps its replacement priority: an update is not a client
// access.
func (c *Cache) ApplyUpdate(doc document.Document, now int64) bool {
	c.mu.Lock()
	cp, ok := c.entries[doc.URL]
	if !ok || cp.Doc.Version >= doc.Version {
		c.mu.Unlock()
		return ok // absent, or already fresh
	}
	tenant := tenantOf(doc.URL)
	if c.checkTenantFit(tenant, doc.Size) != nil {
		// The update grew the document past its tenant's whole quota: the
		// copy can no longer be resident, so drop it and report not-held
		// (the core then prunes this cache from the holder list).
		c.removeLocked(doc.URL)
		c.mu.Unlock()
		c.flushDurable()
		return false
	}
	c.used += doc.Size - cp.Doc.Size
	c.noteTenantBytes(tenant, doc.Size-cp.Doc.Size)
	cp.Doc = doc
	cp.FetchedAt = now
	c.entries[doc.URL] = cp
	c.persist(cp)
	// A grown update can overflow the tenant quota or the byte budget.
	c.makeTenantRoom(tenant, c.tenantQuotaOf(tenant), doc.URL, now)
	c.makeRoom(doc.URL, now)
	c.mu.Unlock()
	c.flushDurable()
	return true
}

// Documents returns the URLs currently stored in decreasing keep-priority
// (most recently used first under LRU).
func (c *Cache) Documents() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.policy.ordered()
}

// observeAccess updates the monitoring state. Caller holds the lock.
func (c *Cache) observeAccess(url string, now int64) {
	m, ok := c.monitors[url]
	if !ok {
		m = loadstats.NewEWRate(accessHalfLife)
		c.monitors[url] = m
	}
	m.Observe(now, 1)
	c.totalRate.Observe(now, 1)
}

// AccessRate estimates the document's local accesses per time unit.
func (c *Cache) AccessRate(url string, now int64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.monitors[url]
	if !ok {
		return 0
	}
	return m.Rate(now)
}

// MeanAccessRate estimates the mean per-document access rate over the
// documents currently stored (total cache access rate divided by the store
// size). The utility scheme's access-frequency component compares a
// document against this baseline.
func (c *Cache) MeanAccessRate(now int64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	if n == 0 {
		n = 1
	}
	return c.totalRate.Rate(now) / float64(n)
}

// EvictionByteRate estimates bytes evicted per time unit — the cache's
// disk-space contention signal.
func (c *Cache) EvictionByteRate(now int64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictBytes.Rate(now)
}

// HitsMisses returns the cumulative local hit and miss counts.
func (c *Cache) HitsMisses() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

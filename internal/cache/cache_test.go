package cache

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"cachecloud/internal/document"
)

func doc(url string, size int64, v document.Version) document.Document {
	return document.Document{URL: url, Size: size, Version: v}
}

func mustPut(t *testing.T, c *Cache, d document.Document, now int64) []document.Document {
	t.Helper()
	ev, err := c.Put(document.Copy{Doc: d, FetchedAt: now}, now)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestPutGetRoundTrip(t *testing.T) {
	c := New("c1", 0)
	mustPut(t, c, doc("a", 100, 1), 0)
	got, ok := c.Get("a", 1)
	if !ok || got.Doc.URL != "a" || got.Doc.Version != 1 {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if _, ok := c.Get("missing", 1); ok {
		t.Fatal("Get returned missing document")
	}
	if c.Len() != 1 || c.Used() != 100 {
		t.Fatalf("Len=%d Used=%d", c.Len(), c.Used())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New("c1", 300)
	mustPut(t, c, doc("a", 100, 1), 0)
	mustPut(t, c, doc("b", 100, 1), 1)
	mustPut(t, c, doc("c", 100, 1), 2)
	// Touch "a" so "b" becomes LRU.
	if _, ok := c.Get("a", 3); !ok {
		t.Fatal("a missing")
	}
	ev := mustPut(t, c, doc("d", 100, 1), 4)
	if len(ev) != 1 || ev[0].URL != "b" {
		t.Fatalf("evicted %v, want [b]", ev)
	}
	if !c.Has("a") || !c.Has("c") || !c.Has("d") || c.Has("b") {
		t.Fatalf("wrong residency after eviction: %v", c.Documents())
	}
	if c.Used() != 300 {
		t.Fatalf("Used = %d, want 300", c.Used())
	}
}

func TestEvictionMayDropMultiple(t *testing.T) {
	c := New("c1", 300)
	mustPut(t, c, doc("a", 100, 1), 0)
	mustPut(t, c, doc("b", 100, 1), 1)
	mustPut(t, c, doc("c", 100, 1), 2)
	// 250B into 300B capacity with 300B resident: all three LRU entries
	// must go (after a and b, usage is still 350 > 300).
	ev := mustPut(t, c, doc("big", 250, 1), 3)
	if len(ev) != 3 {
		t.Fatalf("evicted %v, want 3 docs", ev)
	}
	if !c.Has("big") || c.Len() != 1 {
		t.Fatalf("residency: %v", c.Documents())
	}
}

func TestPutTooLarge(t *testing.T) {
	c := New("c1", 100)
	_, err := c.Put(document.Copy{Doc: doc("huge", 101, 1)}, 0)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if c.Len() != 0 {
		t.Fatal("rejected document was stored")
	}
}

func TestPutReplaceSameURL(t *testing.T) {
	c := New("c1", 0)
	mustPut(t, c, doc("a", 100, 1), 0)
	mustPut(t, c, doc("a", 150, 2), 1)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if c.Used() != 150 {
		t.Fatalf("Used = %d, want 150", c.Used())
	}
	got, _ := c.Peek("a")
	if got.Doc.Version != 2 {
		t.Fatalf("version = %d, want 2", got.Doc.Version)
	}
}

func TestPutReplaceGrowthEvicts(t *testing.T) {
	c := New("c1", 200)
	mustPut(t, c, doc("a", 100, 1), 0)
	mustPut(t, c, doc("b", 100, 1), 1)
	ev := mustPut(t, c, doc("b", 180, 2), 2)
	if len(ev) != 1 || ev[0].URL != "a" {
		t.Fatalf("evicted %v, want [a]", ev)
	}
}

func TestProtectedEntryNeverSelfEvicted(t *testing.T) {
	c := New("c1", 100)
	ev := mustPut(t, c, doc("only", 100, 1), 0)
	if len(ev) != 0 {
		t.Fatalf("evicted %v, want none", ev)
	}
	if !c.Has("only") {
		t.Fatal("entry evicted itself")
	}
}

func TestRemove(t *testing.T) {
	c := New("c1", 0)
	mustPut(t, c, doc("a", 10, 1), 0)
	if !c.Remove("a") {
		t.Fatal("Remove(a) = false")
	}
	if c.Remove("a") {
		t.Fatal("second Remove(a) = true")
	}
	if c.Used() != 0 || c.Len() != 0 {
		t.Fatal("Remove did not release space")
	}
}

func TestApplyUpdate(t *testing.T) {
	c := New("c1", 0)
	mustPut(t, c, doc("a", 100, 1), 0)
	if !c.ApplyUpdate(doc("a", 120, 2), 5) {
		t.Fatal("ApplyUpdate on held doc = false")
	}
	got, _ := c.Peek("a")
	if got.Doc.Version != 2 || got.Doc.Size != 120 || got.FetchedAt != 5 {
		t.Fatalf("after update: %+v", got)
	}
	if c.Used() != 120 {
		t.Fatalf("Used = %d, want 120", c.Used())
	}
	if c.ApplyUpdate(doc("nope", 10, 2), 5) {
		t.Fatal("ApplyUpdate on absent doc = true")
	}
}

func TestApplyUpdateIgnoresStaleVersion(t *testing.T) {
	c := New("c1", 0)
	mustPut(t, c, doc("a", 100, 5), 0)
	if !c.ApplyUpdate(doc("a", 999, 4), 1) {
		t.Fatal("ApplyUpdate should still report held")
	}
	got, _ := c.Peek("a")
	if got.Doc.Version != 5 || got.Doc.Size != 100 {
		t.Fatalf("stale update applied: %+v", got)
	}
}

func TestApplyUpdateDoesNotPromoteLRU(t *testing.T) {
	c := New("c1", 200)
	mustPut(t, c, doc("a", 100, 1), 0)
	mustPut(t, c, doc("b", 100, 1), 1)
	// Update "a" (the LRU entry); it must stay LRU.
	c.ApplyUpdate(doc("a", 100, 2), 2)
	ev := mustPut(t, c, doc("c", 100, 1), 3)
	if len(ev) != 1 || ev[0].URL != "a" {
		t.Fatalf("evicted %v, want [a] (updates must not refresh recency)", ev)
	}
}

func TestDocumentsOrder(t *testing.T) {
	c := New("c1", 0)
	mustPut(t, c, doc("a", 1, 1), 0)
	mustPut(t, c, doc("b", 1, 1), 1)
	c.Get("a", 2)
	got := c.Documents()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Documents = %v, want [a b]", got)
	}
}

func TestHitMissCounters(t *testing.T) {
	c := New("c1", 0)
	mustPut(t, c, doc("a", 1, 1), 0)
	c.Get("a", 1)
	c.Get("a", 1)
	c.Get("zz", 1)
	h, m := c.HitsMisses()
	if h != 2 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 2,1", h, m)
	}
}

func TestAccessRateMonitoring(t *testing.T) {
	c := New("c1", 0)
	// Access "hot" 10x per unit, "cold" once every 10 units — even though
	// neither is stored (misses still count as monitored accesses).
	for now := int64(0); now < 100; now++ {
		for i := 0; i < 10; i++ {
			c.Get("hot", now)
		}
		if now%10 == 0 {
			c.Get("cold", now)
		}
	}
	hot, cold := c.AccessRate("hot", 100), c.AccessRate("cold", 100)
	if hot <= cold {
		t.Fatalf("hot rate %.3f <= cold rate %.3f", hot, cold)
	}
	if c.AccessRate("never", 100) != 0 {
		t.Fatal("unseen document has non-zero rate")
	}
}

func TestMeanAccessRate(t *testing.T) {
	c := New("c1", 0)
	if got := c.MeanAccessRate(0); got != 0 {
		t.Fatalf("empty cache mean rate = %v", got)
	}
	mustPut(t, c, doc("a", 1, 1), 0)
	mustPut(t, c, doc("b", 1, 1), 0)
	// Run several half-lives (half-life is 60 units) so the EW estimator
	// converges to the true per-document rate of 1/unit.
	for now := int64(0); now < 500; now++ {
		c.Get("a", now)
		c.Get("b", now)
	}
	mean := c.MeanAccessRate(500)
	if mean < 0.7 || mean > 1.3 {
		t.Fatalf("mean rate = %.3f, want ≈1", mean)
	}
}

func TestEvictionByteRate(t *testing.T) {
	c := New("c1", 100)
	if c.EvictionByteRate(0) != 0 {
		t.Fatal("fresh cache has eviction pressure")
	}
	for i := 0; i < 50; i++ {
		mustPut(t, c, doc(fmt.Sprintf("d%d", i), 100, 1), int64(i))
	}
	if c.EvictionByteRate(50) <= 0 {
		t.Fatal("thrashing cache shows no eviction pressure")
	}
}

// Invariant check under random operations: used bytes always equals the sum
// of stored sizes and never exceeds capacity (after Put returns).
func TestRandomOpsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := New("c1", 5000)
	live := map[string]int64{}
	for op := 0; op < 5000; op++ {
		now := int64(op)
		url := fmt.Sprintf("d%d", rng.Intn(80))
		switch rng.Intn(4) {
		case 0, 1:
			size := int64(rng.Intn(900) + 100)
			ev, err := c.Put(document.Copy{Doc: doc(url, size, 1)}, now)
			if err != nil {
				t.Fatal(err)
			}
			live[url] = size
			for _, d := range ev {
				delete(live, d.URL)
			}
		case 2:
			if c.Remove(url) {
				delete(live, url)
			}
		case 3:
			c.Get(url, now)
		}
		var sum int64
		for _, s := range live {
			sum += s
		}
		if c.Used() != sum {
			t.Fatalf("op %d: Used=%d, live sum=%d", op, c.Used(), sum)
		}
		if c.Used() > 5000 {
			t.Fatalf("op %d: capacity exceeded: %d", op, c.Used())
		}
		if c.Len() != len(live) {
			t.Fatalf("op %d: Len=%d, live=%d", op, c.Len(), len(live))
		}
	}
}

func TestUnlimitedCapacityNeverEvicts(t *testing.T) {
	c := New("c1", 0)
	for i := 0; i < 1000; i++ {
		ev := mustPut(t, c, doc(fmt.Sprintf("d%d", i), 1<<20, 1), int64(i))
		if len(ev) != 0 {
			t.Fatalf("unlimited cache evicted %v", ev)
		}
	}
	if c.Len() != 1000 {
		t.Fatalf("Len = %d", c.Len())
	}
}

package cache

import (
	"fmt"
	"testing"

	"cachecloud/internal/document"
	"cachecloud/internal/durable"
)

func dcopy(url string, version uint64, size int64) document.Copy {
	return document.Copy{
		Doc:       document.Document{URL: url, Size: size, Version: document.Version(version)},
		FetchedAt: int64(version),
	}
}

func logState(t *testing.T, s *durable.Store) map[string]uint64 {
	t.Helper()
	out := make(map[string]uint64)
	for _, e := range s.Entries() {
		out[e.Doc.URL] = uint64(e.Doc.Version)
	}
	return out
}

// TestEvictionTombstonesDurable drives each replacement policy past
// capacity with the durable tier attached and asserts the log always
// mirrors residency: evicted entries are tombstoned at eviction time and
// do not resurrect when the log is reopened.
func TestEvictionTombstonesDurable(t *testing.T) {
	for _, kind := range []ReplacementKind{LRU, LFU, GreedyDualSize} {
		t.Run(kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			st, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncNever})
			if err != nil {
				t.Fatal(err)
			}
			c := NewWithReplacement("c0", 300, kind)
			c.SetDurable(st)
			var evictedEver []string
			for i := 0; i < 12; i++ {
				url := fmt.Sprintf("/doc%d", i)
				evicted, err := c.Put(dcopy(url, uint64(i+1), 100), int64(i))
				if err != nil {
					t.Fatal(err)
				}
				for _, d := range evicted {
					evictedEver = append(evictedEver, d.URL)
				}
			}
			if len(evictedEver) == 0 {
				t.Fatal("capacity 300 never evicted across 12 puts of 100B")
			}
			// The log's live index must be exactly the resident set.
			resident := make(map[string]bool)
			for _, url := range c.Documents() {
				resident[url] = true
			}
			state := logState(t, st)
			if len(state) != len(resident) {
				t.Fatalf("log holds %d entries, cache holds %d", len(state), len(resident))
			}
			for url := range state {
				if !resident[url] {
					t.Fatalf("log holds %q which the cache evicted", url)
				}
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			// Reopen: nothing evicted may resurrect.
			re, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncNever})
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = re.Close() }()
			recovered := logState(t, re)
			for _, url := range evictedEver {
				if resident[url] {
					continue // re-admitted later; residency wins
				}
				if _, back := recovered[url]; back {
					t.Fatalf("evicted %q resurrected on restart", url)
				}
			}
			for url := range recovered {
				if !resident[url] {
					t.Fatalf("recovered %q was not resident at crash", url)
				}
			}
		})
	}
}

// TestRemoveAndUpdateMirrorDurable checks the other mutation paths:
// explicit Remove tombstones, ApplyUpdate persists the refreshed version.
func TestRemoveAndUpdateMirrorDurable(t *testing.T) {
	dir := t.TempDir()
	st, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	c := New("c0", 0)
	c.SetDurable(st)
	if _, err := c.Put(dcopy("/a", 1, 10), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(dcopy("/b", 1, 10), 0); err != nil {
		t.Fatal(err)
	}
	if !c.ApplyUpdate(document.Document{URL: "/a", Size: 12, Version: 5}, 1) {
		t.Fatal("ApplyUpdate missed a held document")
	}
	if !c.Remove("/b") {
		t.Fatal("Remove missed /b")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = re.Close() }()
	got := logState(t, re)
	if len(got) != 1 || got["/a"] != 5 {
		t.Fatalf("recovered %v, want {/a: 5}", got)
	}
}

// TestDurableErrorsDegradeGracefully verifies the cache keeps serving
// when the disk tier rejects writes (closed store), only counting the
// failures.
func TestDurableErrorsDegradeGracefully(t *testing.T) {
	st, err := durable.Open(t.TempDir(), durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	c := New("c0", 0)
	c.SetDurable(st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(dcopy("/a", 1, 10), 0); err != nil {
		t.Fatalf("Put must not surface durable errors: %v", err)
	}
	if _, ok := c.Get("/a", 1); !ok {
		t.Fatal("cache lost the entry on a durable failure")
	}
	if c.DurableErrors() == 0 {
		t.Fatal("durable failure not counted")
	}
	c.SetDurable(nil)
	if _, err := c.Put(dcopy("/b", 1, 10), 0); err != nil {
		t.Fatal(err)
	}
	if c.DurableErrors() != 1 {
		t.Fatalf("DurableErrors = %d after detach, want 1", c.DurableErrors())
	}
}

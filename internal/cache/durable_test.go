package cache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cachecloud/internal/document"
	"cachecloud/internal/durable"
)

func dcopy(url string, version uint64, size int64) document.Copy {
	return document.Copy{
		Doc:       document.Document{URL: url, Size: size, Version: document.Version(version)},
		FetchedAt: int64(version),
	}
}

func logState(t *testing.T, s *durable.Store) map[string]uint64 {
	t.Helper()
	out := make(map[string]uint64)
	for _, e := range s.Entries() {
		out[e.Doc.URL] = uint64(e.Doc.Version)
	}
	return out
}

// TestEvictionTombstonesDurable drives each replacement policy past
// capacity with the durable tier attached and asserts the log always
// mirrors residency: evicted entries are tombstoned at eviction time and
// do not resurrect when the log is reopened.
func TestEvictionTombstonesDurable(t *testing.T) {
	for _, kind := range []ReplacementKind{LRU, LFU, GreedyDualSize} {
		t.Run(kind.String(), func(t *testing.T) {
			dir := t.TempDir()
			st, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncNever})
			if err != nil {
				t.Fatal(err)
			}
			c := NewWithReplacement("c0", 300, kind)
			c.SetDurable(st)
			var evictedEver []string
			for i := 0; i < 12; i++ {
				url := fmt.Sprintf("/doc%d", i)
				evicted, err := c.Put(dcopy(url, uint64(i+1), 100), int64(i))
				if err != nil {
					t.Fatal(err)
				}
				for _, d := range evicted {
					evictedEver = append(evictedEver, d.URL)
				}
			}
			if len(evictedEver) == 0 {
				t.Fatal("capacity 300 never evicted across 12 puts of 100B")
			}
			// The log's live index must be exactly the resident set.
			resident := make(map[string]bool)
			for _, url := range c.Documents() {
				resident[url] = true
			}
			state := logState(t, st)
			if len(state) != len(resident) {
				t.Fatalf("log holds %d entries, cache holds %d", len(state), len(resident))
			}
			for url := range state {
				if !resident[url] {
					t.Fatalf("log holds %q which the cache evicted", url)
				}
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			// Reopen: nothing evicted may resurrect.
			re, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncNever})
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = re.Close() }()
			recovered := logState(t, re)
			for _, url := range evictedEver {
				if resident[url] {
					continue // re-admitted later; residency wins
				}
				if _, back := recovered[url]; back {
					t.Fatalf("evicted %q resurrected on restart", url)
				}
			}
			for url := range recovered {
				if !resident[url] {
					t.Fatalf("recovered %q was not resident at crash", url)
				}
			}
		})
	}
}

// TestRemoveAndUpdateMirrorDurable checks the other mutation paths:
// explicit Remove tombstones, ApplyUpdate persists the refreshed version.
func TestRemoveAndUpdateMirrorDurable(t *testing.T) {
	dir := t.TempDir()
	st, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	c := New("c0", 0)
	c.SetDurable(st)
	if _, err := c.Put(dcopy("/a", 1, 10), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(dcopy("/b", 1, 10), 0); err != nil {
		t.Fatal(err)
	}
	if !c.ApplyUpdate(document.Document{URL: "/a", Size: 12, Version: 5}, 1) {
		t.Fatal("ApplyUpdate missed a held document")
	}
	if !c.Remove("/b") {
		t.Fatal("Remove missed /b")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := durable.Open(dir, durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = re.Close() }()
	got := logState(t, re)
	if len(got) != 1 || got["/a"] != 5 {
		t.Fatalf("recovered %v, want {/a: 5}", got)
	}
}

// blockingDurable is a Durable whose first Put parks on a channel,
// simulating a store mid-compaction, while recording every mutation it
// eventually applies.
type blockingDurable struct {
	mu      sync.Mutex
	ops     []string
	block   chan struct{}
	entered chan struct{}
	once    sync.Once
}

func (b *blockingDurable) Put(cp document.Copy) error {
	b.once.Do(func() { close(b.entered) })
	<-b.block
	b.mu.Lock()
	b.ops = append(b.ops, "put:"+cp.Doc.URL)
	b.mu.Unlock()
	return nil
}

func (b *blockingDurable) Delete(url string) error {
	b.mu.Lock()
	b.ops = append(b.ops, "del:"+url)
	b.mu.Unlock()
	return nil
}

func (b *blockingDurable) snapshot() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.ops...)
}

// TestDurableMirrorDoesNotBlockServing pins the disk tier inside a slow
// write (as a rotation-triggered log compaction would) and asserts the
// cache keeps serving: reads see the committed entry, further writers
// return immediately (their mutations queue behind the active drain), and
// once the store unblocks every mutation lands in commit order.
func TestDurableMirrorDoesNotBlockServing(t *testing.T) {
	bd := &blockingDurable{block: make(chan struct{}), entered: make(chan struct{})}
	c := New("c0", 0)
	c.SetDurable(bd)

	slowDone := make(chan struct{})
	go func() {
		_, _ = c.Put(dcopy("/slow", 1, 10), 0)
		close(slowDone)
	}()
	<-bd.entered // the drain goroutine is now parked inside the store

	// Every serving-path call below must complete while the store write is
	// still in flight; run each with a watchdog so a regression fails fast
	// instead of hanging the test binary.
	step := func(name string, fn func()) {
		t.Helper()
		done := make(chan struct{})
		go func() {
			fn()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("%s blocked behind an in-flight durable write", name)
		}
	}
	step("Get", func() {
		if _, ok := c.Get("/slow", 1); !ok {
			t.Error("committed entry invisible while its log write is in flight")
		}
	})
	step("Put", func() {
		if _, err := c.Put(dcopy("/fast", 2, 10), 1); err != nil {
			t.Errorf("concurrent Put: %v", err)
		}
	})
	step("Remove", func() {
		if !c.Remove("/fast") {
			t.Error("concurrent Remove missed /fast")
		}
	})

	close(bd.block)
	<-slowDone
	// The first Put's drain loop picks up the mutations queued while it
	// was parked, so by now all three are applied — in commit order.
	want := []string{"put:/slow", "put:/fast", "del:/fast"}
	got := bd.snapshot()
	if len(got) != len(want) {
		t.Fatalf("durable ops %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("durable ops %v, want %v (order must match commit order)", got, want)
		}
	}
	if c.DurableErrors() != 0 {
		t.Fatalf("DurableErrors = %d, want 0", c.DurableErrors())
	}
}

// TestDurableErrorsDegradeGracefully verifies the cache keeps serving
// when the disk tier rejects writes (closed store), only counting the
// failures.
func TestDurableErrorsDegradeGracefully(t *testing.T) {
	st, err := durable.Open(t.TempDir(), durable.Options{Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	c := New("c0", 0)
	c.SetDurable(st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(dcopy("/a", 1, 10), 0); err != nil {
		t.Fatalf("Put must not surface durable errors: %v", err)
	}
	if _, ok := c.Get("/a", 1); !ok {
		t.Fatal("cache lost the entry on a durable failure")
	}
	if c.DurableErrors() == 0 {
		t.Fatal("durable failure not counted")
	}
	c.SetDurable(nil)
	if _, err := c.Put(dcopy("/b", 1, 10), 0); err != nil {
		t.Fatal(err)
	}
	if c.DurableErrors() != 1 {
		t.Fatalf("DurableErrors = %d after detach, want 1", c.DurableErrors())
	}
}

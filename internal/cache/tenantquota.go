package cache

import (
	"errors"
	"fmt"
	"sort"

	"cachecloud/internal/document"
)

// ErrTenantQuota is returned when a document cannot fit inside its
// tenant's resident-byte quota (the document alone exceeds the quota, so
// no amount of same-tenant eviction can admit it).
var ErrTenantQuota = errors.New("cache: document exceeds tenant quota")

// TenantQuotas answers per-tenant resident-byte caps; implemented by
// *tenant.Registry. ByteQuota returns 0 for tenants without a cap.
// Keeping it an interface here leaves the cache package free of tenant
// policy concerns.
type TenantQuotas interface {
	ByteQuota(tenant string) int64
}

// SetTenantQuotas attaches (or, with nil, detaches) the per-tenant quota
// table. Quotas are enforced on every Put/ApplyUpdate from then on;
// entries already over a newly attached (or shrunk) quota are reclaimed
// by the next EnforceTenantQuotas sweep.
func (c *Cache) SetTenantQuotas(q TenantQuotas) {
	c.mu.Lock()
	c.quotas = q
	c.mu.Unlock()
}

// tenantOf extracts the tenant from a stored key. Caller holds mu or
// needs no lock (pure function).
func tenantOf(key string) string {
	t, _ := document.SplitTenantKey(key)
	return t
}

// noteTenantBytes adjusts the tenant's resident-byte accounting by
// delta. Caller holds mu.
func (c *Cache) noteTenantBytes(tenant string, delta int64) {
	if c.tenantUsed == nil {
		c.tenantUsed = make(map[string]int64)
	}
	next := c.tenantUsed[tenant] + delta
	if next <= 0 {
		delete(c.tenantUsed, tenant)
		return
	}
	c.tenantUsed[tenant] = next
}

// tenantQuotaOf returns the byte quota applying to the tenant (0 =
// uncapped). Caller holds mu.
func (c *Cache) tenantQuotaOf(tenant string) int64 {
	if c.quotas == nil {
		return 0
	}
	return c.quotas.ByteQuota(tenant)
}

// makeTenantRoom evicts the tenant's own entries — in replacement-policy
// order, never the protected key — until the tenant fits its quota.
// Tenant-fair eviction: one tenant going over its cap reclaims only its
// own documents; other tenants' working sets are untouched. Caller holds
// mu.
func (c *Cache) makeTenantRoom(tenant string, quota int64, protect string, now int64) []document.Document {
	if quota <= 0 {
		return nil
	}
	var evicted []document.Document
	for c.tenantUsed[tenant] > quota {
		ordered := c.policy.ordered() // decreasing keep-priority
		victim := ""
		for i := len(ordered) - 1; i >= 0; i-- {
			key := ordered[i]
			if key != protect && tenantOf(key) == tenant {
				victim = key
				break
			}
		}
		if victim == "" {
			break // only the protected entry remains for this tenant
		}
		cp := c.entries[victim]
		c.removeLocked(victim)
		c.evictBytes.Observe(now, float64(cp.Doc.Size))
		evicted = append(evicted, cp.Doc)
	}
	return evicted
}

// EnforceTenantQuotas sweeps every tenant back under its current quota —
// the reclamation pass after a quota shrinks below a tenant's residency.
// It returns the evicted documents so the caller can deregister them.
func (c *Cache) EnforceTenantQuotas(now int64) []document.Document {
	c.mu.Lock()
	tenants := make([]string, 0, len(c.tenantUsed))
	for t := range c.tenantUsed {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants) // deterministic sweep order
	var evicted []document.Document
	for _, t := range tenants {
		evicted = append(evicted, c.makeTenantRoom(t, c.tenantQuotaOf(t), "", now)...)
	}
	c.mu.Unlock()
	c.flushDurable()
	return evicted
}

// TenantUsed returns the tenant's resident bytes.
func (c *Cache) TenantUsed(tenant string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tenantUsed[tenant]
}

// TenantUsage returns a snapshot of resident bytes per tenant (only
// tenants with resident entries appear).
func (c *Cache) TenantUsage() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.tenantUsed))
	for t, b := range c.tenantUsed {
		out[t] = b
	}
	return out
}

// checkTenantFit rejects a document whose size alone exceeds its
// tenant's quota. Caller holds mu.
func (c *Cache) checkTenantFit(tenant string, size int64) error {
	if quota := c.tenantQuotaOf(tenant); quota > 0 && size > quota {
		return fmt.Errorf("%w: tenant %q document is %dB, quota %dB", ErrTenantQuota, tenant, size, quota)
	}
	return nil
}

package loadstats

import "math"

// EWRate is an exponentially weighted event-rate estimator over the
// simulator's integer time units. It is the "continued monitoring in the
// recent time duration" primitive the paper's utility-based placement
// scheme relies on: caches track per-document access rates and beacon
// points track per-document update rates with it.
//
// Observations decay with a configurable half-life; Rate converts the
// decayed mass into an events-per-unit estimate. The zero value is unusable;
// construct with NewEWRate. EWRate is not safe for concurrent use — callers
// guard it with their own locks.
type EWRate struct {
	halfLife float64
	norm     float64 // 1 - 2^(-1/halfLife), fixed per estimator
	mass     float64
	last     int64
}

// NewEWRate returns an estimator with the given half-life in time units
// (values <= 0 are clamped to 1).
func NewEWRate(halfLife float64) *EWRate {
	if halfLife <= 0 {
		halfLife = 1
	}
	return &EWRate{halfLife: halfLife, norm: 1 - math.Exp2(-1/halfLife)}
}

// Observe records weight w at time now. Time must be non-decreasing across
// calls; earlier times are treated as now == last.
func (r *EWRate) Observe(now int64, w float64) {
	r.decayTo(now)
	r.mass += w
}

// Rate estimates events (or weight) per time unit at time now. A process
// producing a steady w per unit converges to Rate ≈ w.
func (r *EWRate) Rate(now int64) float64 {
	r.decayTo(now)
	// Steady input of w per unit gives equilibrium mass w / (1 - 2^(-1/h)),
	// so dividing by that geometric sum normalises to per-unit rate. The
	// factor is fixed per estimator and precomputed by NewEWRate — Rate sits
	// on the beacon lookup hot path.
	return r.mass * r.norm
}

// Mass returns the decayed raw mass at time now.
func (r *EWRate) Mass(now int64) float64 {
	r.decayTo(now)
	return r.mass
}

func (r *EWRate) decayTo(now int64) {
	if now <= r.last {
		return
	}
	dt := float64(now - r.last)
	r.mass *= math.Exp2(-dt / r.halfLife)
	r.last = now
}

package loadstats

import (
	"math"
	"testing"
)

func TestEWRateSteadyStateConvergence(t *testing.T) {
	r := NewEWRate(10)
	// 5 events per unit for a long time should converge to rate ≈ 5.
	for now := int64(0); now < 200; now++ {
		r.Observe(now, 5)
	}
	got := r.Rate(199) // measure at the last observation instant
	if math.Abs(got-5) > 0.3 {
		t.Fatalf("steady-state rate = %.3f, want ≈5", got)
	}
}

func TestEWRateDecays(t *testing.T) {
	r := NewEWRate(10)
	r.Observe(0, 100)
	m0 := r.Mass(0)
	m10 := r.Mass(10)
	if math.Abs(m10-m0/2) > 1e-9 {
		t.Fatalf("mass after one half-life = %v, want %v", m10, m0/2)
	}
	m20 := r.Mass(20)
	if math.Abs(m20-m0/4) > 1e-9 {
		t.Fatalf("mass after two half-lives = %v, want %v", m20, m0/4)
	}
}

func TestEWRateNonDecreasingTime(t *testing.T) {
	r := NewEWRate(5)
	r.Observe(10, 1)
	r.Observe(3, 1) // earlier time: treated as now
	if got := r.Mass(10); math.Abs(got-2) > 1e-9 {
		t.Fatalf("mass = %v, want 2", got)
	}
}

func TestEWRateZeroHalfLifeClamped(t *testing.T) {
	r := NewEWRate(0)
	r.Observe(0, 4)
	if got := r.Mass(0); got != 4 {
		t.Fatalf("mass = %v, want 4", got)
	}
	// Must not panic or produce NaN.
	if v := r.Rate(5); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("rate = %v", v)
	}
}

func TestEWRateIdleGoesToZero(t *testing.T) {
	r := NewEWRate(2)
	r.Observe(0, 50)
	if got := r.Rate(100); got > 1e-6 {
		t.Fatalf("rate after long idle = %v, want ~0", got)
	}
}

func TestEWRateRelativeOrdering(t *testing.T) {
	hot := NewEWRate(10)
	cold := NewEWRate(10)
	for now := int64(0); now < 50; now++ {
		hot.Observe(now, 10)
		if now%10 == 0 {
			cold.Observe(now, 1)
		}
	}
	if hot.Rate(50) <= cold.Rate(50) {
		t.Fatal("hot document must have higher estimated rate than cold")
	}
}

package loadstats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCounterAggregates(t *testing.T) {
	c := NewCounter(10, true)
	c.Record(3, Lookup, 5)
	c.Record(3, Update, 2)
	c.Record(7, Lookup, 1)
	if got := c.Total(); got != 8 {
		t.Fatalf("Total = %d, want 8", got)
	}
	if got := c.Lookups(); got != 6 {
		t.Fatalf("Lookups = %d, want 6", got)
	}
	if got := c.Updates(); got != 2 {
		t.Fatalf("Updates = %d, want 2", got)
	}
	if got := c.IrHLoad(3); got != 7 {
		t.Fatalf("IrHLoad(3) = %d, want 7", got)
	}
	if got := c.IrHLoad(7); got != 1 {
		t.Fatalf("IrHLoad(7) = %d, want 1", got)
	}
	if got := c.IrHLoad(0); got != 0 {
		t.Fatalf("IrHLoad(0) = %d, want 0", got)
	}
}

func TestCounterCoarse(t *testing.T) {
	c := NewCounter(10, false)
	c.Record(4, Lookup, 3)
	if c.FineGrained() {
		t.Fatal("coarse counter claims fine-grained")
	}
	if got := c.IrHLoad(4); got != 0 {
		t.Fatalf("coarse counter IrHLoad = %d, want 0", got)
	}
	if got := c.Total(); got != 3 {
		t.Fatalf("Total = %d, want 3", got)
	}
}

func TestCounterOutOfRangeIrH(t *testing.T) {
	c := NewCounter(4, true)
	c.Record(-1, Lookup, 2)
	c.Record(99, Update, 2)
	if got := c.Total(); got != 4 {
		t.Fatalf("Total should still count out-of-range records, got %d", got)
	}
	for i := 0; i < 4; i++ {
		if c.IrHLoad(i) != 0 {
			t.Fatalf("IrH %d contaminated by out-of-range record", i)
		}
	}
}

func TestCounterResetAndSnapshot(t *testing.T) {
	c := NewCounter(5, true)
	c.Record(1, Lookup, 10)
	snap := c.Snapshot()
	c.Reset()
	if c.Total() != 0 || c.IrHLoad(1) != 0 {
		t.Fatal("Reset did not clear counter")
	}
	if snap.Total != 10 || snap.PerIrH[1] != 10 {
		t.Fatal("snapshot mutated by Reset")
	}
	// Snapshot must be a deep copy.
	c.Record(1, Lookup, 99)
	if snap.PerIrH[1] != 10 {
		t.Fatal("snapshot shares backing array with counter")
	}
}

func TestDistributionStats(t *testing.T) {
	d := NewDistribution([]float64{500, 300})
	if !almostEqual(d.Mean(), 400) {
		t.Fatalf("Mean = %v, want 400", d.Mean())
	}
	if !almostEqual(d.StdDev(), 100) {
		t.Fatalf("StdDev = %v, want 100", d.StdDev())
	}
	if !almostEqual(d.CoV(), 0.25) {
		t.Fatalf("CoV = %v, want 0.25", d.CoV())
	}
	if !almostEqual(d.MaxToMean(), 1.25) {
		t.Fatalf("MaxToMean = %v, want 1.25", d.MaxToMean())
	}
}

func TestDistributionEmptyAndZero(t *testing.T) {
	var d Distribution
	if d.Mean() != 0 || d.CoV() != 0 || d.MaxToMean() != 0 || d.StdDev() != 0 {
		t.Fatal("empty distribution stats must all be 0")
	}
	z := NewDistribution([]float64{0, 0, 0})
	if z.CoV() != 0 || z.MaxToMean() != 0 {
		t.Fatal("zero-mean distribution must not divide by zero")
	}
}

func TestDistributionSorted(t *testing.T) {
	d := NewDistribution([]float64{3, 9, 1, 7})
	got := d.Sorted()
	want := []float64{9, 7, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted() = %v, want %v", got, want)
		}
	}
	// Original must be untouched.
	if d.Loads[0] != 3 {
		t.Fatal("Sorted mutated the distribution")
	}
}

func TestNewDistributionCopies(t *testing.T) {
	src := []float64{1, 2}
	d := NewDistribution(src)
	src[0] = 99
	if d.Loads[0] != 1 {
		t.Fatal("NewDistribution did not copy input")
	}
}

// Property: CoV is scale-invariant, MaxToMean is scale-invariant, and a
// perfectly uniform distribution has CoV 0 and MaxToMean 1.
func TestDistributionProperties(t *testing.T) {
	scaleInvariant := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 2
		loads := make([]float64, n)
		for i := range loads {
			loads[i] = rng.Float64()*100 + 1
		}
		d1 := NewDistribution(loads)
		scaled := make([]float64, n)
		for i := range loads {
			scaled[i] = loads[i] * 7.5
		}
		d2 := NewDistribution(scaled)
		return math.Abs(d1.CoV()-d2.CoV()) < 1e-9 &&
			math.Abs(d1.MaxToMean()-d2.MaxToMean()) < 1e-9
	}
	if err := quick.Check(scaleInvariant, nil); err != nil {
		t.Error(err)
	}

	uniform := func(v float64, n uint8) bool {
		if !(v > 0) || v > 1e12 { // clamp: summing huge values overflows float64
			v = 1
		}
		loads := make([]float64, int(n%16)+1)
		for i := range loads {
			loads[i] = v
		}
		d := NewDistribution(loads)
		return almostEqual(d.CoV(), 0) && almostEqual(d.MaxToMean(), 1)
	}
	if err := quick.Check(uniform, nil); err != nil {
		t.Error(err)
	}
}

func TestDistributionStringFormat(t *testing.T) {
	d := NewDistribution([]float64{2, 2})
	if got := d.String(); got != "n=2 mean=2.0 cov=0.000 max/mean=1.00" {
		t.Fatalf("String() = %q", got)
	}
}

func TestPercentile(t *testing.T) {
	d := NewDistribution([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	cases := []struct{ p, want float64 }{
		{0, 10}, {10, 10}, {50, 50}, {90, 90}, {100, 100}, {-5, 10}, {150, 100},
	}
	for _, tc := range cases {
		if got := d.Percentile(tc.p); got != tc.want {
			t.Fatalf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	var empty Distribution
	if empty.Percentile(50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestJainFairness(t *testing.T) {
	perfect := NewDistribution([]float64{5, 5, 5, 5})
	if got := perfect.JainFairness(); almostEqual(got, 1) == false {
		t.Fatalf("perfect fairness = %v, want 1", got)
	}
	concentrated := NewDistribution([]float64{20, 0, 0, 0})
	if got := concentrated.JainFairness(); !almostEqual(got, 0.25) {
		t.Fatalf("concentrated fairness = %v, want 0.25", got)
	}
	var empty Distribution
	if empty.JainFairness() != 0 {
		t.Fatal("empty fairness should be 0")
	}
	zeros := NewDistribution([]float64{0, 0})
	if zeros.JainFairness() != 1 {
		t.Fatal("all-zero fairness should be 1")
	}
	// Fairness must rank a balanced distribution above a skewed one.
	balanced := NewDistribution([]float64{9, 10, 11})
	skewed := NewDistribution([]float64{1, 10, 19})
	if balanced.JainFairness() <= skewed.JainFairness() {
		t.Fatal("fairness ordering wrong")
	}
}

package loadstats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a fixed-boundary histogram for latency-like quantities.
// Observations are counted into buckets; percentiles are estimated by
// linear interpolation within the matched bucket. The zero value is not
// usable; construct with NewHistogram.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; implicit +Inf last bucket
	counts []int64
	total  int64
	sum    float64
	minV   float64
	maxV   float64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// A final overflow bucket (+Inf) is added automatically.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]int64, len(b)+1),
		minV:   math.Inf(1),
		maxV:   math.Inf(-1),
	}
}

// DefaultLatencyBounds covers 1ms .. 2s in roughly geometric steps.
func DefaultLatencyBounds() []float64 {
	return []float64{1, 2, 5, 10, 20, 35, 50, 75, 100, 150, 250, 400, 650, 1000, 2000}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx]++
	h.total++
	h.sum += v
	if v < h.minV {
		h.minV = v
	}
	if v > h.maxV {
		h.maxV = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total }

// Mean returns the mean of all observations (exact, not bucketed).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Quantile estimates the q-th quantile (0..1) by interpolating within the
// matched bucket. Returns 0 for an empty histogram; the overflow bucket
// reports the maximum observed value.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.total)
	var cum float64
	for i, c := range h.counts {
		next := cum + float64(c)
		if next >= target && c > 0 {
			lo := h.minV
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.maxV
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			if hi < lo {
				hi = lo
			}
			frac := 0.0
			if c > 0 {
				frac = (target - cum) / float64(c)
			}
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return h.maxV
}

// String summarises the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%.1f p95=%.1f p99=%.1f",
		h.total, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
}

// Package loadstats implements the load bookkeeping the paper's sub-range
// determination process consumes: per-IrH-value load counters (the paper's
// CIrHLd), per-beacon-point cycle aggregates (CAvgLoad), and the summary
// statistics used throughout the evaluation section — coefficient of
// variation and the heaviest-load-to-mean ratio.
package loadstats

import (
	"fmt"
	"math"
	"sort"
)

// Kind distinguishes the two load sources the paper counts identically:
// document lookups and update propagations handled by a beacon point.
type Kind int

const (
	// Lookup is a document-lookup request served by a beacon point.
	Lookup Kind = iota + 1
	// Update is an update-propagation message handled by a beacon point.
	Update
)

// Counter accumulates lookup and update load for one beacon point during one
// cycle, optionally at the granularity of individual IrH values (the paper's
// CIrHLd information). The zero value is not ready for use; construct with
// NewCounter.
type Counter struct {
	perIrH  []int64 // nil when fine-grained tracking is disabled
	total   int64
	lookups int64
	updates int64
}

// NewCounter returns a counter covering IrH values in [0, intraGen).
// When fineGrained is false the counter tracks only the aggregate, modelling
// beacon points for which maintaining CIrHLd is too costly (Section 2.3).
func NewCounter(intraGen int, fineGrained bool) *Counter {
	c := &Counter{}
	if fineGrained {
		c.perIrH = make([]int64, intraGen)
	}
	return c
}

// Record adds load units for a single operation on the given IrH value.
func (c *Counter) Record(irh int, kind Kind, units int64) {
	c.total += units
	switch kind {
	case Lookup:
		c.lookups += units
	case Update:
		c.updates += units
	}
	if c.perIrH != nil && irh >= 0 && irh < len(c.perIrH) {
		c.perIrH[irh] += units
	}
}

// Absorb folds externally accumulated cycle load into the counter. The
// sharded cloud's beacon shards count load lock-free while the cycle runs
// and drain their tallies here right before sub-range determination; the
// resulting counter state is identical to having called Record per
// operation. perIrH may be nil (or shorter than the counter's range) when
// the producer tracked only aggregates.
func (c *Counter) Absorb(lookups, updates int64, perIrH []int64) {
	c.lookups += lookups
	c.updates += updates
	c.total += lookups + updates
	if c.perIrH == nil || perIrH == nil {
		return
	}
	n := len(perIrH)
	if n > len(c.perIrH) {
		n = len(c.perIrH)
	}
	for i := 0; i < n; i++ {
		c.perIrH[i] += perIrH[i]
	}
}

// Total returns the cumulative load recorded this cycle.
func (c *Counter) Total() int64 { return c.total }

// Lookups returns the lookup share of the cycle load.
func (c *Counter) Lookups() int64 { return c.lookups }

// Updates returns the update-propagation share of the cycle load.
func (c *Counter) Updates() int64 { return c.updates }

// FineGrained reports whether per-IrH-value counts are available.
func (c *Counter) FineGrained() bool { return c.perIrH != nil }

// IrHLoad returns the load recorded for one IrH value. It returns 0 when
// fine-grained tracking is disabled or the value is out of range.
func (c *Counter) IrHLoad(irh int) int64 {
	if c.perIrH == nil || irh < 0 || irh >= len(c.perIrH) {
		return 0
	}
	return c.perIrH[irh]
}

// Reset clears all counts for the next cycle.
func (c *Counter) Reset() {
	c.total, c.lookups, c.updates = 0, 0, 0
	for i := range c.perIrH {
		c.perIrH[i] = 0
	}
}

// Snapshot captures the counter state so the rebalancer can work on a stable
// view while new load keeps arriving.
func (c *Counter) Snapshot() Snapshot {
	s := Snapshot{Total: c.total, Lookups: c.lookups, Updates: c.updates}
	if c.perIrH != nil {
		s.PerIrH = make([]int64, len(c.perIrH))
		copy(s.PerIrH, c.perIrH)
	}
	return s
}

// Snapshot is an immutable copy of a Counter taken at the end of a cycle.
type Snapshot struct {
	Total   int64
	Lookups int64
	Updates int64
	PerIrH  []int64 // nil when fine-grained tracking was disabled
}

// Distribution summarises a set of per-node loads the way the paper's
// figures do.
type Distribution struct {
	Loads []float64
}

// NewDistribution copies loads into a Distribution.
func NewDistribution(loads []float64) Distribution {
	d := Distribution{Loads: make([]float64, len(loads))}
	copy(d.Loads, loads)
	return d
}

// Mean returns the arithmetic mean load, or 0 for an empty distribution.
func (d Distribution) Mean() float64 {
	if len(d.Loads) == 0 {
		return 0
	}
	var sum float64
	for _, v := range d.Loads {
		sum += v
	}
	return sum / float64(len(d.Loads))
}

// StdDev returns the population standard deviation.
func (d Distribution) StdDev() float64 {
	n := len(d.Loads)
	if n == 0 {
		return 0
	}
	mean := d.Mean()
	var ss float64
	for _, v := range d.Loads {
		dv := v - mean
		ss += dv * dv
	}
	return math.Sqrt(ss / float64(n))
}

// CoV returns the coefficient of variation (stddev / mean), the paper's
// primary load-balancing metric (lower is better). Returns 0 when the mean
// is 0.
func (d Distribution) CoV() float64 {
	mean := d.Mean()
	if mean == 0 {
		return 0
	}
	return d.StdDev() / mean
}

// MaxToMean returns the ratio of the heaviest load to the mean load, the
// secondary metric reported for Figures 3 and 4. Returns 0 when the mean
// is 0.
func (d Distribution) MaxToMean() float64 {
	mean := d.Mean()
	if mean == 0 || len(d.Loads) == 0 {
		return 0
	}
	maxV := d.Loads[0]
	for _, v := range d.Loads[1:] {
		if v > maxV {
			maxV = v
		}
	}
	return maxV / mean
}

// Sorted returns the loads in decreasing order, matching the x-axis ordering
// of the paper's Figures 3 and 4 ("beacon points in decreasing load order").
func (d Distribution) Sorted() []float64 {
	out := make([]float64, len(d.Loads))
	copy(out, d.Loads)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// String renders a compact summary for logs and experiment output.
func (d Distribution) String() string {
	return fmt.Sprintf("n=%d mean=%.1f cov=%.3f max/mean=%.2f",
		len(d.Loads), d.Mean(), d.CoV(), d.MaxToMean())
}

// Percentile returns the p-th percentile (0..100) of the loads using
// nearest-rank on the sorted values. Returns 0 for an empty distribution.
func (d Distribution) Percentile(p float64) float64 {
	n := len(d.Loads)
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]float64, n)
	copy(sorted, d.Loads)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// JainFairness returns Jain's fairness index (Σx)² / (n·Σx²) — 1 for a
// perfectly balanced distribution, 1/n for a fully concentrated one. An
// alternative balance metric to the paper's coefficient of variation.
func (d Distribution) JainFairness() float64 {
	n := len(d.Loads)
	if n == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, v := range d.Loads {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 1 // all zero: trivially balanced
	}
	return sum * sum / (float64(n) * sumSq)
}

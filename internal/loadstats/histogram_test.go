package loadstats

import (
	"math/rand"
	"strings"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(DefaultLatencyBounds())
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
}

func TestHistogramMeanExact(t *testing.T) {
	h := NewHistogram(DefaultLatencyBounds())
	for _, v := range []float64{10, 20, 30} {
		h.Observe(v)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Mean(); got != 20 {
		t.Fatalf("mean = %v, want 20 (mean must be exact, not bucketed)", got)
	}
}

func TestHistogramQuantilesOrdered(t *testing.T) {
	h := NewHistogram(DefaultLatencyBounds())
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		// Bimodal: mostly ~10ms, a tail at ~200ms.
		v := 8 + rng.Float64()*4
		if rng.Intn(10) == 0 {
			v = 150 + rng.Float64()*100
		}
		h.Observe(v)
	}
	p50, p90, p99 := h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99)
	if !(p50 <= p90 && p90 <= p99) {
		t.Fatalf("quantiles not monotone: %v %v %v", p50, p90, p99)
	}
	if p50 < 5 || p50 > 20 {
		t.Fatalf("p50 = %v, want ≈10", p50)
	}
	if p99 < 100 {
		t.Fatalf("p99 = %v, should reach the tail mode", p99)
	}
	// Clamped inputs.
	if h.Quantile(-1) > h.Quantile(2) {
		t.Fatal("clamped quantiles out of order")
	}
}

func TestHistogramUniformQuantileAccuracy(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	p50 := h.Quantile(0.5)
	if p50 < 45 || p50 > 55 {
		t.Fatalf("p50 = %v, want ≈50", p50)
	}
	p90 := h.Quantile(0.9)
	if p90 < 85 || p90 > 95 {
		t.Fatalf("p90 = %v, want ≈90", p90)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{10})
	h.Observe(5)
	h.Observe(5000)
	if got := h.Quantile(1); got != 5000 {
		t.Fatalf("max quantile = %v, want 5000", got)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(DefaultLatencyBounds())
	h.Observe(10)
	if !strings.Contains(h.String(), "n=1") {
		t.Fatalf("String = %q", h.String())
	}
}

package hashing

import (
	"fmt"
	"testing"
)

func TestRendezvousEmpty(t *testing.T) {
	r := NewRendezvous(nil)
	if _, err := r.BeaconFor("u"); err != ErrNoNodes {
		t.Fatalf("err = %v, want ErrNoNodes", err)
	}
}

func TestRendezvousDeterministicAndOrderIndependent(t *testing.T) {
	a := NewRendezvous([]string{"x", "y", "z"})
	b := NewRendezvous([]string{"z", "x", "y"})
	for i := 0; i < 200; i++ {
		u := fmt.Sprintf("doc%d", i)
		ga, err := a.BeaconFor(u)
		if err != nil {
			t.Fatal(err)
		}
		gb, _ := b.BeaconFor(u)
		if ga != gb {
			t.Fatalf("order-dependent assignment for %s", u)
		}
	}
}

func TestRendezvousSpread(t *testing.T) {
	r := NewRendezvous(nodeNames(10))
	counts := map[string]int{}
	const docs = 50000
	for i := 0; i < docs; i++ {
		n, err := r.BeaconFor(fmt.Sprintf("d%d", i))
		if err != nil {
			t.Fatal(err)
		}
		counts[n]++
	}
	if len(counts) != 10 {
		t.Fatalf("only %d nodes used", len(counts))
	}
	for n, c := range counts {
		if c < docs/10*85/100 || c > docs/10*115/100 {
			t.Fatalf("node %s has %d docs, want ≈%d", n, c, docs/10)
		}
	}
}

// HRW's defining property: removing a node moves only that node's
// documents.
func TestRendezvousMinimalDisruption(t *testing.T) {
	r := NewRendezvous(nodeNames(8))
	before := map[string]string{}
	for i := 0; i < 5000; i++ {
		u := fmt.Sprintf("d%d", i)
		n, _ := r.BeaconFor(u)
		before[u] = n
	}
	r.Remove("cache-05")
	for u, prev := range before {
		now, err := r.BeaconFor(u)
		if err != nil {
			t.Fatal(err)
		}
		if prev != "cache-05" && now != prev {
			t.Fatalf("doc %s moved from %s to %s", u, prev, now)
		}
		if now == "cache-05" {
			t.Fatalf("doc %s still on removed node", u)
		}
	}
	// Adding it back restores the original assignment exactly.
	r.Add("cache-05")
	r.Add("cache-05") // idempotent
	for u, prev := range before {
		now, _ := r.BeaconFor(u)
		if now != prev {
			t.Fatalf("doc %s did not return to %s after re-add", u, prev)
		}
	}
}

package hashing

import (
	"crypto/md5"
	"encoding/binary"
	"sort"
)

// Rendezvous implements highest-random-weight (HRW) hashing, a third
// beacon-assignment baseline alongside static and consistent hashing: each
// document is assigned to the node with the highest hash(node, URL) score.
// Like consistent hashing it disrupts only 1/N of assignments on membership
// change, and unlike consistent hashing it needs no virtual nodes for even
// spread — but each resolution costs O(N) score evaluations, which is the
// cost profile the ablation benchmarks compare.
type Rendezvous struct {
	nodes []string
}

var _ Assigner = (*Rendezvous)(nil)

// NewRendezvous builds an HRW assigner over the node identifiers.
func NewRendezvous(nodes []string) *Rendezvous {
	r := &Rendezvous{nodes: make([]string, len(nodes))}
	copy(r.nodes, nodes)
	sort.Strings(r.nodes)
	return r
}

// BeaconFor implements Assigner.
func (r *Rendezvous) BeaconFor(url string) (string, error) {
	if len(r.nodes) == 0 {
		return "", ErrNoNodes
	}
	best, bestScore := "", uint64(0)
	for _, n := range r.nodes {
		s := hrwScore(n, url)
		if best == "" || s > bestScore || (s == bestScore && n < best) {
			best, bestScore = n, s
		}
	}
	return best, nil
}

// Nodes implements Assigner.
func (r *Rendezvous) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Add inserts a node.
func (r *Rendezvous) Add(node string) {
	for _, n := range r.nodes {
		if n == node {
			return
		}
	}
	r.nodes = append(r.nodes, node)
	sort.Strings(r.nodes)
}

// Remove deletes a node; its documents redistribute over the survivors.
func (r *Rendezvous) Remove(node string) {
	kept := r.nodes[:0]
	for _, n := range r.nodes {
		if n != node {
			kept = append(kept, n)
		}
	}
	r.nodes = kept
}

// hrwScore hashes the (node, key) pair to a 64-bit weight.
func hrwScore(node, key string) uint64 {
	h := md5.New()
	_, _ = h.Write([]byte(node))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(key))
	sum := h.Sum(nil)
	return binary.BigEndian.Uint64(sum[:8])
}

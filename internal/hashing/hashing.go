// Package hashing provides the beacon-point assignment baselines the paper
// compares against: the static random hashing scheme and Karger-style
// consistent hashing. The paper's own dynamic hashing scheme lives in
// internal/ring (intra-ring hash) and internal/core (two-step resolution);
// the baselines here share the Assigner interface so the simulator can swap
// architectures freely.
package hashing

import (
	"crypto/md5"
	"encoding/binary"
	"errors"
	"sort"
	"strconv"

	"cachecloud/internal/document"
)

// ErrNoNodes is returned when an assigner holds no nodes.
var ErrNoNodes = errors.New("hashing: no nodes registered")

// Assigner maps a document URL to the identifier of the cache acting as its
// beacon point.
type Assigner interface {
	// BeaconFor returns the node responsible for the document, or
	// ErrNoNodes when the assigner is empty.
	BeaconFor(url string) (string, error)
	// Nodes returns the registered node identifiers in a stable order.
	Nodes() []string
}

// Static implements the paper's static hashing scheme: a random hash
// function maps the document URL uniquely onto one of the nodes. It cannot
// adapt to skewed or shifting load, which is exactly the weakness the
// dynamic scheme addresses.
type Static struct {
	nodes []string // sorted for stable assignment
}

var _ Assigner = (*Static)(nil)

// NewStatic builds a static assigner over the given node identifiers.
func NewStatic(nodes []string) *Static {
	s := &Static{nodes: make([]string, len(nodes))}
	copy(s.nodes, nodes)
	sort.Strings(s.nodes)
	return s
}

// BeaconFor implements Assigner.
func (s *Static) BeaconFor(url string) (string, error) {
	if len(s.nodes) == 0 {
		return "", ErrNoNodes
	}
	h := document.HashURL(url)
	return s.nodes[int(h%document.Hash(len(s.nodes)))], nil
}

// Nodes implements Assigner.
func (s *Static) Nodes() []string {
	out := make([]string, len(s.nodes))
	copy(out, s.nodes)
	return out
}

// Consistent implements consistent hashing on a unit circle with virtual
// nodes (Karger et al., the paper's reference [5]). Documents and node
// replicas are mapped to points on the circle; a document is assigned to the
// first node clockwise from its point.
type Consistent struct {
	replicas int
	ring     []circlePoint // sorted by position
	nodes    map[string]struct{}
}

type circlePoint struct {
	pos  uint64
	node string
}

var _ Assigner = (*Consistent)(nil)

// NewConsistent builds a consistent-hash assigner with the given number of
// virtual replicas per node (>=1; values around 50-200 give good spread).
func NewConsistent(nodes []string, replicas int) *Consistent {
	if replicas < 1 {
		replicas = 1
	}
	c := &Consistent{replicas: replicas, nodes: make(map[string]struct{}, len(nodes))}
	for _, n := range nodes {
		c.add(n)
	}
	sort.Slice(c.ring, func(i, j int) bool { return c.ring[i].pos < c.ring[j].pos })
	return c
}

func (c *Consistent) add(node string) {
	if _, ok := c.nodes[node]; ok {
		return
	}
	c.nodes[node] = struct{}{}
	for r := 0; r < c.replicas; r++ {
		c.ring = append(c.ring, circlePoint{pos: circleHash(node + "#" + strconv.Itoa(r)), node: node})
	}
}

// Add inserts a node (with all its virtual replicas) into the circle.
func (c *Consistent) Add(node string) {
	if _, ok := c.nodes[node]; ok {
		return
	}
	c.add(node)
	sort.Slice(c.ring, func(i, j int) bool { return c.ring[i].pos < c.ring[j].pos })
}

// Remove deletes a node and its replicas; documents previously owned by it
// fall to their clockwise successors.
func (c *Consistent) Remove(node string) {
	if _, ok := c.nodes[node]; !ok {
		return
	}
	delete(c.nodes, node)
	kept := c.ring[:0]
	for _, p := range c.ring {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	c.ring = kept
}

// BeaconFor implements Assigner.
func (c *Consistent) BeaconFor(url string) (string, error) {
	if len(c.ring) == 0 {
		return "", ErrNoNodes
	}
	pos := circleHash(url)
	i := sort.Search(len(c.ring), func(i int) bool { return c.ring[i].pos >= pos })
	if i == len(c.ring) {
		i = 0
	}
	return c.ring[i].node, nil
}

// DiscoverySteps models the beacon-discovery cost the paper attributes to
// consistent hashing: without a complete view of the circle, locating the
// successor of a point takes up to O(log N) routing steps (binary search
// over the sorted circle). The returned count is the number of probes the
// search performs, used by the ablation benchmarks.
func (c *Consistent) DiscoverySteps(url string) int {
	if len(c.ring) == 0 {
		return 0
	}
	pos := circleHash(url)
	steps := 0
	lo, hi := 0, len(c.ring)
	for lo < hi {
		steps++
		mid := (lo + hi) / 2
		if c.ring[mid].pos >= pos {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if steps == 0 {
		steps = 1
	}
	return steps
}

// Nodes implements Assigner.
func (c *Consistent) Nodes() []string {
	out := make([]string, 0, len(c.nodes))
	for n := range c.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// circleHash maps a key onto the unit circle represented as uint64 space.
func circleHash(key string) uint64 {
	sum := md5.Sum([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

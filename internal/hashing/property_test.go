package hashing

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestPropertyAssignersAgreeOnMembership is the property sweep over every
// Assigner implementation: for random node sets and random URLs, the
// returned beacon must be a registered node, repeated calls must agree
// (determinism), and assignment must not depend on construction order.
func TestPropertyAssignersAgreeOnMembership(t *testing.T) {
	builders := map[string]func(nodes []string) Assigner{
		"static":     func(nodes []string) Assigner { return NewStatic(nodes) },
		"consistent": func(nodes []string) Assigner { return NewConsistent(nodes, 50) },
		"rendezvous": func(nodes []string) Assigner { return NewRendezvous(nodes) },
	}
	for name, build := range builders {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				rng := rand.New(rand.NewSource(int64(97*trial) + 11))
				n := 1 + rng.Intn(12)
				nodes := make([]string, n)
				for i := range nodes {
					nodes[i] = fmt.Sprintf("cache-%02d", i)
				}
				members := make(map[string]bool, n)
				for _, id := range nodes {
					members[id] = true
				}
				a := build(nodes)

				shuffled := make([]string, n)
				copy(shuffled, nodes)
				rng.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
				b := build(shuffled)

				for u := 0; u < 100; u++ {
					url := fmt.Sprintf("http://site-%d.example.com/doc/%d", rng.Intn(5), rng.Intn(10000))
					got, err := a.BeaconFor(url)
					if err != nil {
						t.Fatalf("trial %d: BeaconFor(%q): %v", trial, url, err)
					}
					if !members[got] {
						t.Fatalf("trial %d: BeaconFor(%q) = %q, not a member", trial, url, got)
					}
					again, _ := a.BeaconFor(url)
					if again != got {
						t.Fatalf("trial %d: BeaconFor(%q) unstable: %q then %q", trial, url, got, again)
					}
					fromShuffled, err := b.BeaconFor(url)
					if err != nil {
						t.Fatal(err)
					}
					if fromShuffled != got {
						t.Fatalf("trial %d: %s assignment depends on construction order: %q vs %q",
							trial, name, got, fromShuffled)
					}
				}
			}
		})
	}
}

// TestPropertyChurnStability checks the dynamic assigners' churn bound:
// removing a node only reassigns URLs that mapped to it, and adding it
// back restores the original assignment exactly.
func TestPropertyChurnStability(t *testing.T) {
	type dynamic interface {
		Assigner
		Add(node string)
		Remove(node string)
	}
	builders := map[string]func(nodes []string) dynamic{
		"consistent": func(nodes []string) dynamic { return NewConsistent(nodes, 50) },
		"rendezvous": func(nodes []string) dynamic { return NewRendezvous(nodes) },
	}
	for name, build := range builders {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 10; trial++ {
				rng := rand.New(rand.NewSource(int64(13*trial) + 5))
				n := 3 + rng.Intn(8)
				nodes := make([]string, n)
				for i := range nodes {
					nodes[i] = fmt.Sprintf("cache-%02d", i)
				}
				a := build(nodes)
				urls := make([]string, 200)
				before := make([]string, len(urls))
				for i := range urls {
					urls[i] = fmt.Sprintf("http://churn.example.com/doc/%d", rng.Intn(100000))
					owner, err := a.BeaconFor(urls[i])
					if err != nil {
						t.Fatal(err)
					}
					before[i] = owner
				}

				victim := nodes[rng.Intn(n)]
				a.Remove(victim)
				for i, url := range urls {
					owner, err := a.BeaconFor(url)
					if err != nil {
						t.Fatal(err)
					}
					if before[i] != victim && owner != before[i] {
						t.Fatalf("trial %d: removing %q moved %q from %q to %q",
							trial, victim, url, before[i], owner)
					}
					if before[i] == victim && owner == victim {
						t.Fatalf("trial %d: %q still assigned to removed node", trial, url)
					}
				}

				a.Add(victim)
				for i, url := range urls {
					owner, err := a.BeaconFor(url)
					if err != nil {
						t.Fatal(err)
					}
					if owner != before[i] {
						t.Fatalf("trial %d: re-adding %q did not restore %q: %q vs %q",
							trial, victim, url, owner, before[i])
					}
				}
			}
		})
	}
}

package hashing

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func nodeNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("cache-%02d", i)
	}
	return out
}

func TestStaticEmpty(t *testing.T) {
	s := NewStatic(nil)
	if _, err := s.BeaconFor("u"); err != ErrNoNodes {
		t.Fatalf("err = %v, want ErrNoNodes", err)
	}
}

func TestStaticDeterministicAndOrderIndependent(t *testing.T) {
	a := NewStatic([]string{"b", "a", "c"})
	b := NewStatic([]string{"c", "b", "a"})
	for i := 0; i < 100; i++ {
		url := fmt.Sprintf("http://x/%d", i)
		ga, err := a.BeaconFor(url)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := b.BeaconFor(url)
		if err != nil {
			t.Fatal(err)
		}
		if ga != gb {
			t.Fatalf("assignment depends on input order: %q vs %q", ga, gb)
		}
	}
}

func TestStaticSpread(t *testing.T) {
	s := NewStatic(nodeNames(10))
	counts := map[string]int{}
	const docs = 50000
	for i := 0; i < docs; i++ {
		n, err := s.BeaconFor(fmt.Sprintf("http://x/%d", i))
		if err != nil {
			t.Fatal(err)
		}
		counts[n]++
	}
	if len(counts) != 10 {
		t.Fatalf("only %d nodes received documents", len(counts))
	}
	for n, c := range counts {
		if math.Abs(float64(c)-docs/10) > docs/10*0.15 {
			t.Fatalf("node %s has %d docs, expected ~%d", n, c, docs/10)
		}
	}
}

func TestStaticNodesCopied(t *testing.T) {
	in := []string{"a", "b"}
	s := NewStatic(in)
	in[0] = "zz"
	got := s.Nodes()
	if got[0] != "a" {
		t.Fatal("NewStatic did not copy input slice")
	}
	got[1] = "yy"
	if s.Nodes()[1] != "b" {
		t.Fatal("Nodes() exposes internal slice")
	}
}

func TestConsistentEmpty(t *testing.T) {
	c := NewConsistent(nil, 100)
	if _, err := c.BeaconFor("u"); err != ErrNoNodes {
		t.Fatalf("err = %v, want ErrNoNodes", err)
	}
	if steps := c.DiscoverySteps("u"); steps != 0 {
		t.Fatalf("DiscoverySteps on empty ring = %d, want 0", steps)
	}
}

func TestConsistentDeterministic(t *testing.T) {
	c1 := NewConsistent(nodeNames(5), 64)
	c2 := NewConsistent(nodeNames(5), 64)
	for i := 0; i < 200; i++ {
		u := fmt.Sprintf("doc%d", i)
		a, _ := c1.BeaconFor(u)
		b, _ := c2.BeaconFor(u)
		if a != b {
			t.Fatalf("nondeterministic assignment for %s", u)
		}
	}
}

func TestConsistentSpreadWithReplicas(t *testing.T) {
	c := NewConsistent(nodeNames(10), 128)
	counts := map[string]int{}
	const docs = 50000
	for i := 0; i < docs; i++ {
		n, err := c.BeaconFor(fmt.Sprintf("doc/%d", i))
		if err != nil {
			t.Fatal(err)
		}
		counts[n]++
	}
	for n, cnt := range counts {
		if cnt < docs/10/2 || cnt > docs/10*2 {
			t.Fatalf("node %s has %d docs, too far from %d", n, cnt, docs/10)
		}
	}
}

// Removing a node must only move documents that were owned by that node —
// the minimal-disruption property consistent hashing exists for.
func TestConsistentMinimalDisruption(t *testing.T) {
	nodes := nodeNames(8)
	c := NewConsistent(nodes, 64)
	before := map[string]string{}
	for i := 0; i < 5000; i++ {
		u := fmt.Sprintf("d%d", i)
		n, _ := c.BeaconFor(u)
		before[u] = n
	}
	c.Remove("cache-03")
	for u, prev := range before {
		now, err := c.BeaconFor(u)
		if err != nil {
			t.Fatal(err)
		}
		if prev != "cache-03" && now != prev {
			t.Fatalf("doc %s moved from %s to %s though %s was not removed", u, prev, now, prev)
		}
		if now == "cache-03" {
			t.Fatalf("doc %s still assigned to removed node", u)
		}
	}
}

func TestConsistentAddIsIdempotent(t *testing.T) {
	c := NewConsistent([]string{"a"}, 16)
	c.Add("a")
	c.Add("b")
	c.Add("b")
	if got := len(c.Nodes()); got != 2 {
		t.Fatalf("Nodes() has %d entries, want 2", got)
	}
	if got := len(c.ring); got != 32 {
		t.Fatalf("ring has %d points, want 32", got)
	}
}

func TestConsistentRemoveUnknown(t *testing.T) {
	c := NewConsistent([]string{"a"}, 4)
	c.Remove("nope")
	if got, _ := c.BeaconFor("x"); got != "a" {
		t.Fatalf("BeaconFor = %q, want a", got)
	}
}

func TestConsistentReplicasFloor(t *testing.T) {
	c := NewConsistent([]string{"a", "b"}, 0)
	if len(c.ring) != 2 {
		t.Fatalf("replicas floor failed: ring has %d points", len(c.ring))
	}
}

func TestConsistentDiscoveryStepsLogarithmic(t *testing.T) {
	c := NewConsistent(nodeNames(50), 100) // 5000 circle points
	maxSteps := 0
	for i := 0; i < 1000; i++ {
		s := c.DiscoverySteps(fmt.Sprintf("d%d", i))
		if s > maxSteps {
			maxSteps = s
		}
		if s < 1 {
			t.Fatalf("DiscoverySteps = %d, want >= 1", s)
		}
	}
	// ceil(log2(5000)) = 13
	if maxSteps > 14 {
		t.Fatalf("DiscoverySteps max = %d, want <= 14", maxSteps)
	}
	if maxSteps < 10 {
		t.Fatalf("DiscoverySteps max = %d suspiciously small for 5000 points", maxSteps)
	}
}

// Property: assignment always lands on a registered node.
func TestAssignersAlwaysReturnMember(t *testing.T) {
	nodes := nodeNames(7)
	member := map[string]bool{}
	for _, n := range nodes {
		member[n] = true
	}
	s := NewStatic(nodes)
	c := NewConsistent(nodes, 32)
	f := func(url string) bool {
		a, err := s.BeaconFor(url)
		if err != nil || !member[a] {
			return false
		}
		b, err := c.BeaconFor(url)
		return err == nil && member[b]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

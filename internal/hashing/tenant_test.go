package hashing

import (
	"fmt"
	"testing"
)

// TestBeaconForTenant checks that tenant folding threads through both
// assigner baselines: the default tenant resolves identically to the
// unscoped call, and distinct tenants spread the same URL independently
// (over many URLs at least one assignment must differ — the fold really
// changes the hashed identity).
func TestBeaconForTenant(t *testing.T) {
	nodes := []string{"n0", "n1", "n2", "n3", "n4"}
	for name, a := range map[string]Assigner{
		"static":     NewStatic(nodes),
		"consistent": NewConsistent(nodes, 50),
	} {
		t.Run(name, func(t *testing.T) {
			diverged := false
			for i := 0; i < 200; i++ {
				url := fmt.Sprintf("http://cloud/doc/%03d", i)
				plain, err := a.BeaconFor(url)
				if err != nil {
					t.Fatal(err)
				}
				def, err := BeaconForTenant(a, "", url)
				if err != nil {
					t.Fatal(err)
				}
				if def != plain {
					t.Fatalf("default tenant diverged for %q: %s vs %s", url, def, plain)
				}
				scoped, err := BeaconForTenant(a, "acme", url)
				if err != nil {
					t.Fatal(err)
				}
				if scoped != plain {
					diverged = true
				}
			}
			if !diverged {
				t.Fatal("tenant fold never changed any assignment — tenant not part of the hash")
			}
		})
	}
}

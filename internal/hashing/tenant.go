package hashing

import "cachecloud/internal/document"

// BeaconForTenant resolves a tenant-scoped beacon assignment under any
// Assigner baseline: the tenant ID is folded into the key before hashing
// (document.TenantKey), so each tenant's documents spread over the nodes
// independently and no two tenants ever share a record identity. The
// default (empty) tenant resolves exactly as BeaconFor(url).
func BeaconForTenant(a Assigner, tenant, url string) (string, error) {
	return a.BeaconFor(document.TenantKey(tenant, url))
}

package trace

import (
	"math"
	"testing"

	"cachecloud/internal/document"
)

func toyTrace(urlPrefix string, dur int64) *Trace {
	t := &Trace{Duration: dur}
	for i := 0; i < 3; i++ {
		t.Docs = append(t.Docs, document.Document{URL: urlPrefix + string(rune('a'+i)), Size: 10})
	}
	for tu := int64(0); tu < dur; tu++ {
		t.Events = append(t.Events,
			Event{Time: tu, Kind: Request, Cache: "c0", URL: t.Docs[0].URL},
			Event{Time: tu, Kind: Update, URL: t.Docs[1].URL},
		)
	}
	return t
}

func TestMerge(t *testing.T) {
	a, b := toyTrace("a-", 3), toyTrace("b-", 5)
	m := Merge(a, b, nil)
	if len(m.Docs) != 6 {
		t.Fatalf("docs = %d", len(m.Docs))
	}
	if m.Duration != 5 {
		t.Fatalf("duration = %d", m.Duration)
	}
	if len(m.Events) != len(a.Events)+len(b.Events) {
		t.Fatalf("events = %d", len(m.Events))
	}
	last := int64(0)
	for _, ev := range m.Events {
		if ev.Time < last {
			t.Fatal("merged events out of order")
		}
		last = ev.Time
	}
	// Duplicate catalog entries collapse.
	m2 := Merge(a, a)
	if len(m2.Docs) != 3 {
		t.Fatalf("duplicate merge docs = %d", len(m2.Docs))
	}
}

func TestSlice(t *testing.T) {
	tr := toyTrace("s-", 10)
	s, err := tr.Slice(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if s.Duration != 3 {
		t.Fatalf("duration = %d", s.Duration)
	}
	if len(s.Events) != 6 {
		t.Fatalf("events = %d", len(s.Events))
	}
	for _, ev := range s.Events {
		if ev.Time < 0 || ev.Time >= 3 {
			t.Fatalf("event not rebased: %+v", ev)
		}
	}
	if _, err := tr.Slice(5, 5); err == nil {
		t.Fatal("empty slice accepted")
	}
	if _, err := tr.Slice(-1, 3); err == nil {
		t.Fatal("negative slice accepted")
	}
}

func TestFilterKind(t *testing.T) {
	tr := toyTrace("f-", 4)
	reqs := tr.FilterKind(Request)
	if len(reqs.Events) != 4 {
		t.Fatalf("requests = %d", len(reqs.Events))
	}
	for _, ev := range reqs.Events {
		if ev.Kind != Request {
			t.Fatal("non-request survived filter")
		}
	}
	if got := tr.FilterKind(Update).NumUpdates(); got != 4 {
		t.Fatalf("updates = %d", got)
	}
}

func TestScaleUpdates(t *testing.T) {
	tr := toyTrace("u-", 100) // 100 requests + 100 updates

	double, err := tr.ScaleUpdates(2)
	if err != nil {
		t.Fatal(err)
	}
	if double.NumUpdates() != 200 || double.NumRequests() != 100 {
		t.Fatalf("x2: %d upd / %d req", double.NumUpdates(), double.NumRequests())
	}

	half, err := tr.ScaleUpdates(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(half.NumUpdates())-50) > 2 {
		t.Fatalf("x0.5: %d updates, want ≈50", half.NumUpdates())
	}
	if half.NumRequests() != 100 {
		t.Fatal("requests must be untouched")
	}

	x15, err := tr.ScaleUpdates(1.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(x15.NumUpdates())-150) > 2 {
		t.Fatalf("x1.5: %d updates, want ≈150", x15.NumUpdates())
	}

	if _, err := tr.ScaleUpdates(0); err == nil {
		t.Fatal("zero factor accepted")
	}
}

package trace

import (
	"math"
	"math/rand"
	"testing"
)

func TestZipfSamplerRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(rng, 100, 0.9)
	if z.N() != 100 {
		t.Fatalf("N = %d, want 100", z.N())
	}
	for i := 0; i < 10000; i++ {
		s := z.Sample()
		if s < 0 || s >= 100 {
			t.Fatalf("sample %d out of range", s)
		}
	}
}

func TestZipfDegenerateParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(rng, 0, -1)
	if z.N() != 1 {
		t.Fatalf("N = %d, want 1", z.N())
	}
	if s := z.Sample(); s != 0 {
		t.Fatalf("sample = %d, want 0", s)
	}
}

// With alpha=0 the sampler must be uniform; with large alpha, rank 0 must
// dominate. Also the empirical head mass for alpha=0.9 should match the
// analytic value.
func TestZipfShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, draws = 1000, 200000

	uniform := NewZipf(rng, n, 0)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[uniform.Sample()]++
	}
	for r, c := range counts {
		if float64(c) > 3*draws/n {
			t.Fatalf("alpha=0 rank %d count %d far above uniform mean %d", r, c, draws/n)
		}
	}

	skewed := NewZipf(rng, n, 0.9)
	head := 0
	for i := 0; i < draws; i++ {
		if skewed.Sample() < 10 {
			head++
		}
	}
	// Analytic: sum_{1..10} i^-0.9 / sum_{1..1000} i^-0.9.
	num, den := 0.0, 0.0
	for i := 1; i <= n; i++ {
		v := 1 / math.Pow(float64(i), 0.9)
		den += v
		if i <= 10 {
			num += v
		}
	}
	want := num / den
	got := float64(head) / draws
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("top-10 mass = %.3f, analytic %.3f", got, want)
	}
}

func TestGenerateZipfDefaults(t *testing.T) {
	tr := GenerateZipf(ZipfConfig{Seed: 1, Duration: 5, NumDocs: 1000, Caches: 4, ReqPerCache: 10, UpdatesPerUnit: 20})
	if len(tr.Docs) != 1000 {
		t.Fatalf("docs = %d", len(tr.Docs))
	}
	if got, want := tr.NumRequests(), 5*4*10; got != want {
		t.Fatalf("requests = %d, want %d", got, want)
	}
	if got, want := tr.NumUpdates(), 5*20; got != want {
		t.Fatalf("updates = %d, want %d", got, want)
	}
	// Events must be time-ordered.
	last := int64(0)
	for _, e := range tr.Events {
		if e.Time < last {
			t.Fatal("events out of order")
		}
		last = e.Time
	}
	// Requests carry a cache, updates don't.
	for _, e := range tr.Events {
		switch e.Kind {
		case Request:
			if e.Cache == "" {
				t.Fatal("request without cache")
			}
		case Update:
			if e.Cache != "" {
				t.Fatal("update with cache")
			}
		}
	}
}

func TestGenerateZipfDeterministic(t *testing.T) {
	cfg := ZipfConfig{Seed: 42, Duration: 3, NumDocs: 100, Caches: 2, ReqPerCache: 5, UpdatesPerUnit: 5}
	a, b := GenerateZipf(cfg), GenerateZipf(cfg)
	if len(a.Events) != len(b.Events) {
		t.Fatal("different event counts for same seed")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	c := GenerateZipf(ZipfConfig{Seed: 43, Duration: 3, NumDocs: 100, Caches: 2, ReqPerCache: 5, UpdatesPerUnit: 5})
	same := true
	for i := range a.Events {
		if a.Events[i] != c.Events[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateZipfSkew(t *testing.T) {
	tr := GenerateZipf(ZipfConfig{Seed: 9, Duration: 20, NumDocs: 5000, Caches: 5, ReqPerCache: 50, UpdatesPerUnit: 50, Alpha: 0.9})
	counts := map[string]int{}
	for _, e := range tr.Events {
		if e.Kind == Request {
			counts[e.URL]++
		}
	}
	// The hottest document should receive far more than the mean.
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	mean := float64(tr.NumRequests()) / float64(len(counts))
	if float64(maxC) < 20*mean {
		t.Fatalf("trace not skewed: max=%d mean=%.1f", maxC, mean)
	}
}

func TestGenerateSydneyShape(t *testing.T) {
	tr := GenerateSydney(SydneyConfig{Seed: 3, NumDocs: 2000, Caches: 4, Duration: 240, PeakReqPerCache: 20, UpdatesPerUnit: 30, HotDriftPeriod: 60})
	if len(tr.Docs) != 2000 {
		t.Fatalf("docs = %d", len(tr.Docs))
	}
	if tr.Duration != 240 {
		t.Fatalf("duration = %d", tr.Duration)
	}
	if got, want := tr.NumUpdates(), 240*30; got != want {
		t.Fatalf("updates = %d, want %d", got, want)
	}
	// Diurnal: requests in the busiest unit should be well above the
	// quietest unit.
	perUnit := map[int64]int{}
	for _, e := range tr.Events {
		if e.Kind == Request {
			perUnit[e.Time]++
		}
	}
	minC, maxC := 1<<30, 0
	for _, c := range perUnit {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if float64(maxC) < 2*float64(minC) {
		t.Fatalf("no diurnal variation: min=%d max=%d", minC, maxC)
	}
}

func TestGenerateSydneyHotSetDrifts(t *testing.T) {
	tr := GenerateSydney(SydneyConfig{Seed: 5, NumDocs: 5000, Caches: 2, Duration: 240, PeakReqPerCache: 60, UpdatesPerUnit: 10, HotDriftPeriod: 120})
	top := func(lo, hi int64) string {
		counts := map[string]int{}
		for _, e := range tr.Events {
			if e.Kind == Request && e.Time >= lo && e.Time < hi {
				counts[e.URL]++
			}
		}
		best, bestC := "", 0
		for u, c := range counts {
			if c > bestC {
				best, bestC = u, c
			}
		}
		return best
	}
	if a, b := top(0, 120), top(120, 240); a == b {
		t.Fatalf("hot document did not drift across phases: %s", a)
	}
}

func TestCacheNames(t *testing.T) {
	got := CacheNames(12)
	if got[0] != "cache-00" || got[9] != "cache-09" || got[11] != "cache-11" {
		t.Fatalf("CacheNames = %v", got)
	}
}

func TestDiurnalBounds(t *testing.T) {
	for tu := int64(0); tu < 1440; tu += 7 {
		v := diurnal(tu, 1440)
		if v < 0.29 || v > 1.01 {
			t.Fatalf("diurnal(%d) = %f out of bounds", tu, v)
		}
	}
	if diurnal(0, 0) != 1 {
		t.Fatal("diurnal with zero duration should be 1")
	}
}

func TestEventKindString(t *testing.T) {
	if Request.String() != "request" || Update.String() != "update" {
		t.Fatal("EventKind strings wrong")
	}
	if EventKind(99).String() != "unknown(99)" {
		t.Fatal("unknown kind string wrong")
	}
}

package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Stats summarises a trace the way workload-characterisation sections of
// caching papers do: request/update volumes, skew (top-k mass and a
// fitted Zipf exponent), update concentration, working-set and size
// statistics. Produced by Analyze; printed by tracegen -stats.
type Stats struct {
	Docs     int
	Duration int64

	Requests       int64
	Updates        int64
	ReqPerUnit     float64
	UpdPerUnit     float64
	DistinctReq    int     // distinct documents requested
	DistinctUpd    int     // distinct documents updated
	Top1ReqShare   float64 // fraction of requests to the hottest document
	Top10ReqShare  float64
	Top1PctShare   float64 // fraction of requests to the hottest 1% of docs
	Top1UpdShare   float64
	FittedZipf     float64 // least-squares Zipf exponent over the head
	MeanDocBytes   float64
	MedianDocBytes int64
	MaxDocBytes    int64
	CorpusBytes    int64

	// PeakToTroughReq is the ratio of the busiest to the quietest unit's
	// request count (diurnal variation).
	PeakToTroughReq float64
}

// Analyze computes trace statistics.
func Analyze(t *Trace) Stats {
	s := Stats{Docs: len(t.Docs), Duration: t.Duration}
	reqCounts := make(map[string]int64)
	updCounts := make(map[string]int64)
	perUnit := make(map[int64]int64)
	for _, ev := range t.Events {
		switch ev.Kind {
		case Request:
			s.Requests++
			reqCounts[ev.URL]++
			perUnit[ev.Time]++
		case Update:
			s.Updates++
			updCounts[ev.URL]++
		}
	}
	s.DistinctReq = len(reqCounts)
	s.DistinctUpd = len(updCounts)
	if t.Duration > 0 {
		s.ReqPerUnit = float64(s.Requests) / float64(t.Duration)
		s.UpdPerUnit = float64(s.Updates) / float64(t.Duration)
	}

	reqSorted := sortedCounts(reqCounts)
	updSorted := sortedCounts(updCounts)
	s.Top1ReqShare = topShare(reqSorted, s.Requests, 1)
	s.Top10ReqShare = topShare(reqSorted, s.Requests, 10)
	onePct := len(reqSorted) / 100
	if onePct < 1 {
		onePct = 1
	}
	s.Top1PctShare = topShare(reqSorted, s.Requests, onePct)
	s.Top1UpdShare = topShare(updSorted, s.Updates, 1)
	s.FittedZipf = fitZipf(reqSorted)

	if len(t.Docs) > 0 {
		sizes := make([]int64, len(t.Docs))
		for i, d := range t.Docs {
			sizes[i] = d.Size
			s.CorpusBytes += d.Size
			if d.Size > s.MaxDocBytes {
				s.MaxDocBytes = d.Size
			}
		}
		s.MeanDocBytes = float64(s.CorpusBytes) / float64(len(t.Docs))
		sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
		s.MedianDocBytes = sizes[len(sizes)/2]
	}

	minU, maxU := int64(math.MaxInt64), int64(0)
	for _, c := range perUnit {
		if c < minU {
			minU = c
		}
		if c > maxU {
			maxU = c
		}
	}
	if minU > 0 && maxU > 0 && minU != math.MaxInt64 {
		s.PeakToTroughReq = float64(maxU) / float64(minU)
	}
	return s
}

func sortedCounts(m map[string]int64) []int64 {
	out := make([]int64, 0, len(m))
	for _, c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

func topShare(sorted []int64, total int64, k int) float64 {
	if total == 0 || len(sorted) == 0 {
		return 0
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	var sum int64
	for _, c := range sorted[:k] {
		sum += c
	}
	return float64(sum) / float64(total)
}

// fitZipf estimates the Zipf exponent by least squares on
// log(count) = -alpha·log(rank) + c over the head of the distribution
// (up to 1000 ranks). Returns 0 for degenerate inputs.
func fitZipf(sorted []int64) float64 {
	n := len(sorted)
	if n > 1000 {
		n = 1000
	}
	if n < 10 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	m := 0
	for i := 0; i < n; i++ {
		if sorted[i] <= 0 {
			break
		}
		x := math.Log(float64(i + 1))
		y := math.Log(float64(sorted[i]))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		m++
	}
	if m < 10 {
		return 0
	}
	fm := float64(m)
	den := fm*sxx - sx*sx
	if den == 0 {
		return 0
	}
	slope := (fm*sxy - sx*sy) / den
	return -slope
}

// Format writes the statistics as text.
func (s Stats) Format(w io.Writer) {
	fmt.Fprintf(w, "documents:       %d (%.1f MB corpus, mean %.0f B, median %d B, max %d B)\n",
		s.Docs, float64(s.CorpusBytes)/(1<<20), s.MeanDocBytes, s.MedianDocBytes, s.MaxDocBytes)
	fmt.Fprintf(w, "duration:        %d units\n", s.Duration)
	fmt.Fprintf(w, "requests:        %d (%.1f/unit, %d distinct docs)\n", s.Requests, s.ReqPerUnit, s.DistinctReq)
	fmt.Fprintf(w, "updates:         %d (%.1f/unit, %d distinct docs)\n", s.Updates, s.UpdPerUnit, s.DistinctUpd)
	fmt.Fprintf(w, "request skew:    top-1 %.2f%%, top-10 %.2f%%, top-1%% of docs %.1f%%, fitted Zipf %.2f\n",
		100*s.Top1ReqShare, 100*s.Top10ReqShare, 100*s.Top1PctShare, s.FittedZipf)
	fmt.Fprintf(w, "update skew:     top-1 %.2f%%\n", 100*s.Top1UpdShare)
	fmt.Fprintf(w, "peak/trough:     %.2f (requests per unit)\n", s.PeakToTroughReq)
}

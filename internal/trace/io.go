package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"cachecloud/internal/document"
)

// The trace file format is line-oriented text, mirroring the paper's setup
// of separate request and update trace files folded into one stream:
//
//	# comment
//	T <duration>
//	D <url> <size>          catalog entry
//	R <time> <cache> <url>  request event
//	U <time> <url>          update event
//
// Events must be non-decreasing in time; Write emits them in stream order.

// Write serialises the trace.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# cachecloud trace: %d docs, %d events\n", len(t.Docs), len(t.Events)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "T %d\n", t.Duration); err != nil {
		return err
	}
	for _, d := range t.Docs {
		if _, err := fmt.Fprintf(bw, "D %s %d\n", d.URL, d.Size); err != nil {
			return err
		}
	}
	for _, e := range t.Events {
		var err error
		switch e.Kind {
		case Request:
			_, err = fmt.Fprintf(bw, "R %d %s %s\n", e.Time, e.Cache, e.URL)
		case Update:
			_, err = fmt.Fprintf(bw, "U %d %s\n", e.Time, e.URL)
		default:
			err = fmt.Errorf("trace: unknown event kind %d", e.Kind)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseError reports a malformed trace line.
type ParseError struct {
	Line int
	Text string
	Msg  string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("trace: line %d: %s: %q", e.Line, e.Msg, e.Text)
}

// Read parses a trace previously produced by Write.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	t := &Trace{}
	lineNo := 0
	var lastTime int64
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		perr := func(msg string) error { return &ParseError{Line: lineNo, Text: line, Msg: msg} }
		switch fields[0] {
		case "T":
			if len(fields) != 2 {
				return nil, perr("T needs 1 field")
			}
			d, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, perr("bad duration")
			}
			t.Duration = d
		case "D":
			if len(fields) != 3 {
				return nil, perr("D needs 2 fields")
			}
			size, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil || size < 0 {
				return nil, perr("bad size")
			}
			t.Docs = append(t.Docs, document.Document{URL: fields[1], Size: size, Version: 1})
		case "R":
			if len(fields) != 4 {
				return nil, perr("R needs 3 fields")
			}
			tm, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, perr("bad time")
			}
			if tm < lastTime {
				return nil, perr("events out of order")
			}
			lastTime = tm
			t.Events = append(t.Events, Event{Time: tm, Kind: Request, Cache: fields[2], URL: fields[3]})
		case "U":
			if len(fields) != 3 {
				return nil, perr("U needs 2 fields")
			}
			tm, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, perr("bad time")
			}
			if tm < lastTime {
				return nil, perr("events out of order")
			}
			lastTime = tm
			t.Events = append(t.Events, Event{Time: tm, Kind: Update, URL: fields[2]})
		default:
			return nil, perr("unknown record type")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	// Intern document hashes once at load time so simulators never MD5 on
	// the per-request path.
	t.EnsureHashes()
	return t, nil
}

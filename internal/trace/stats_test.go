package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"cachecloud/internal/document"
)

func TestAnalyzeEmptyTrace(t *testing.T) {
	s := Analyze(&Trace{})
	if s.Requests != 0 || s.Updates != 0 || s.FittedZipf != 0 || s.PeakToTroughReq != 0 {
		t.Fatalf("empty-trace stats %+v", s)
	}
}

func TestAnalyzeCounts(t *testing.T) {
	tr := &Trace{
		Docs: []document.Document{
			{URL: "a", Size: 100}, {URL: "b", Size: 300}, {URL: "c", Size: 200},
		},
		Duration: 10,
		Events: []trEvent{
			{Time: 0, Kind: Request, Cache: "c0", URL: "a"},
			{Time: 0, Kind: Request, Cache: "c0", URL: "a"},
			{Time: 1, Kind: Request, Cache: "c1", URL: "b"},
			{Time: 2, Kind: Update, URL: "a"},
		},
	}
	s := Analyze(tr)
	if s.Requests != 3 || s.Updates != 1 {
		t.Fatalf("counts %+v", s)
	}
	if s.DistinctReq != 2 || s.DistinctUpd != 1 {
		t.Fatalf("distinct %+v", s)
	}
	if math.Abs(s.Top1ReqShare-2.0/3) > 1e-9 {
		t.Fatalf("top1 share = %v", s.Top1ReqShare)
	}
	if s.Top1UpdShare != 1 {
		t.Fatalf("top1 upd share = %v", s.Top1UpdShare)
	}
	if s.CorpusBytes != 600 || s.MedianDocBytes != 200 || s.MaxDocBytes != 300 {
		t.Fatalf("sizes %+v", s)
	}
	if s.ReqPerUnit != 0.3 {
		t.Fatalf("req/unit = %v", s.ReqPerUnit)
	}
}

// trEvent aliases Event for brevity in literals.
type trEvent = Event

// The fitted Zipf exponent on a generated Zipf trace should land near the
// generator's alpha.
func TestAnalyzeFittedZipf(t *testing.T) {
	tr := GenerateZipf(ZipfConfig{
		Seed: 13, NumDocs: 20000, Alpha: 0.9, Caches: 10,
		Duration: 60, ReqPerCache: 100, UpdatesPerUnit: 10,
	})
	s := Analyze(tr)
	if s.FittedZipf < 0.7 || s.FittedZipf > 1.1 {
		t.Fatalf("fitted Zipf = %.2f, want ≈0.9", s.FittedZipf)
	}
}

func TestAnalyzeDiurnalVariation(t *testing.T) {
	tr := GenerateSydney(SydneyConfig{
		Seed: 2, NumDocs: 2000, Caches: 4, Duration: 240,
		PeakReqPerCache: 30, UpdatesPerUnit: 5,
	})
	s := Analyze(tr)
	if s.PeakToTroughReq < 2 {
		t.Fatalf("peak/trough = %.2f, want diurnal variation >= 2", s.PeakToTroughReq)
	}
}

func TestStatsFormat(t *testing.T) {
	tr := GenerateZipf(ZipfConfig{Seed: 1, NumDocs: 500, Caches: 2, Duration: 20, ReqPerCache: 10, UpdatesPerUnit: 5})
	var buf bytes.Buffer
	Analyze(tr).Format(&buf)
	out := buf.String()
	for _, want := range []string{"documents:", "requests:", "updates:", "request skew:", "peak/trough:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format output missing %q:\n%s", want, out)
		}
	}
}

func TestFitZipfDegenerate(t *testing.T) {
	if got := fitZipf(nil); got != 0 {
		t.Fatalf("fitZipf(nil) = %v", got)
	}
	if got := fitZipf([]int64{5, 4, 3}); got != 0 {
		t.Fatalf("fitZipf(short) = %v", got)
	}
	// Uniform counts → exponent ≈ 0.
	uniform := make([]int64, 200)
	for i := range uniform {
		uniform[i] = 50
	}
	if got := fitZipf(uniform); math.Abs(got) > 0.01 {
		t.Fatalf("fitZipf(uniform) = %v, want ≈0", got)
	}
}

package trace

import (
	"bytes"
	"testing"
)

// FuzzTraceParse throws arbitrary bytes at the trace parser. Read must
// never panic; when it accepts an input, the parsed trace must survive a
// Write/Read round trip and re-serialize to the identical canonical
// bytes (Write∘Read is a fixed point).
func FuzzTraceParse(f *testing.F) {
	f.Add([]byte("# cachecloud trace\nT 10\nD http://a/1 100\nR 0 c0 http://a/1\nU 5 http://a/1\n"))
	f.Add([]byte("T 3\nD u 0\nR 1 cache-00 u\nR 1 cache-01 u\nU 2 u\n"))
	f.Add([]byte(""))
	f.Add([]byte("#only a comment\n\n  \n"))
	f.Add([]byte("T x\n"))
	f.Add([]byte("R 5 c u\nR 4 c u\n"))
	f.Add([]byte("D u -3\n"))
	f.Add([]byte("Z what\n"))
	f.Add([]byte("T 9999999999999999999999\n"))
	f.Add([]byte("U\nT"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input: only panics count as failures
		}
		var first bytes.Buffer
		if err := tr.Write(&first); err != nil {
			t.Fatalf("Write after successful Read: %v", err)
		}
		tr2, err := Read(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-Read of written trace: %v\ninput: %q\nwritten: %q", err, data, first.Bytes())
		}
		var second bytes.Buffer
		if err := tr2.Write(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("Write/Read round trip is not a fixed point:\nfirst:  %q\nsecond: %q", first.Bytes(), second.Bytes())
		}
		if tr2.Duration != tr.Duration || len(tr2.Docs) != len(tr.Docs) || len(tr2.Events) != len(tr.Events) {
			t.Fatalf("round trip changed shape: %d/%d/%d -> %d/%d/%d",
				tr.Duration, len(tr.Docs), len(tr.Events), tr2.Duration, len(tr2.Docs), len(tr2.Events))
		}
	})
}

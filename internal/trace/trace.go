// Package trace models the request and update streams that drive the
// evaluation. The paper uses two datasets: a synthetic Zipf-0.9 trace with
// 50,000 unique documents in which both accesses and invalidations follow a
// Zipf distribution, and a proprietary 24-hour trace from the IBM 2000
// Sydney Olympic Games web site. The real trace is not available, so this
// package provides a SydneyLike generator that reproduces its load-bearing
// characteristics (heavy skew, diurnal intensity, drifting hot set, updates
// concentrated by a steeper Zipf on the hot documents, heavy-tailed sizes);
// see DESIGN.md §2 for the substitution rationale.
package trace

import (
	"math"
	"math/rand"
	"sort"
	"strconv"

	"cachecloud/internal/document"
)

// EventKind distinguishes client requests from server-side updates.
type EventKind int

const (
	// Request is a client request arriving at a specific edge cache.
	Request EventKind = iota + 1
	// Update is a document update issued by the origin server.
	Update
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case Request:
		return "request"
	case Update:
		return "update"
	default:
		return "unknown(" + strconv.Itoa(int(k)) + ")"
	}
}

// Event is one trace record. Events are ordered by Time; ties keep
// generation order (updates before requests within a unit, mirroring the
// paper's simulator which reads the update trace continuously).
type Event struct {
	// Time is the simulation time unit (1 unit = 1 trace minute).
	Time int64
	Kind EventKind
	// Cache is the receiving edge cache for requests; empty for updates.
	Cache string
	// URL identifies the document.
	URL string
	// Hash is the document hash of URL, interned at trace-generation or
	// trace-load time so simulation hot paths never recompute MD5 per
	// request. Zero means "not computed"; consumers fall back to
	// document.HashURL (see Trace.EnsureHashes).
	Hash document.Hash
}

// Trace bundles a document catalog with a time-ordered event stream.
type Trace struct {
	// Docs is the catalog of unique documents (sizes included).
	Docs []document.Document
	// Events is the time-ordered stream of requests and updates.
	Events []Event
	// Duration is the number of time units covered.
	Duration int64
}

// NumRequests counts request events.
func (t *Trace) NumRequests() int {
	n := 0
	for _, e := range t.Events {
		if e.Kind == Request {
			n++
		}
	}
	return n
}

// NumUpdates counts update events.
func (t *Trace) NumUpdates() int { return len(t.Events) - t.NumRequests() }

// EnsureHashes fills Event.Hash for every event, hashing each distinct URL
// once. Traces produced by the generators or by Read are already hashed;
// call this after assembling a Trace by hand so simulators take the
// hash-once hot path. It mutates the trace and is NOT safe to call
// concurrently with readers of the same Trace — hash before fanning a
// shared trace out to parallel runs.
func (t *Trace) EnsureHashes() {
	var memo map[string]document.Hash
	for i := range t.Events {
		ev := &t.Events[i]
		if ev.Hash != 0 || ev.URL == "" {
			continue
		}
		if memo == nil {
			memo = make(map[string]document.Hash, len(t.Docs))
			for _, d := range t.Docs {
				memo[d.URL] = document.HashURL(d.URL)
			}
		}
		h, ok := memo[ev.URL]
		if !ok {
			h = document.HashURL(ev.URL)
			memo[ev.URL] = h
		}
		ev.Hash = h
	}
}

// Zipf is a sampler for the classical Zipf distribution
// P(rank=i) ∝ 1/i^alpha over ranks 1..n, valid for any alpha >= 0
// (math/rand's Zipf requires alpha > 1, but the paper sweeps 0..0.99).
// It precomputes the CDF and samples by binary search.
type Zipf struct {
	cdf []float64
	rng *rand.Rand
}

// NewZipf builds a sampler over n ranks with exponent alpha, drawing
// randomness from rng.
func NewZipf(rng *rand.Rand, n int, alpha float64) *Zipf {
	if n < 1 {
		n = 1
	}
	if alpha < 0 {
		alpha = 0
	}
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Sample draws a rank in [0, n) with rank 0 the most popular.
func (z *Zipf) Sample() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// docURL builds the canonical synthetic document URL for an index.
func docURL(site string, i int) string {
	return "http://" + site + "/doc/" + strconv.Itoa(i)
}

// buildCatalog creates n documents with log-normal-ish sizes (median ~8 KiB,
// heavy tail), deterministic under the seed.
func buildCatalog(rng *rand.Rand, site string, n int) []document.Document {
	docs := make([]document.Document, n)
	for i := range docs {
		// Log-normal: exp(N(9, 1.1)) bytes, clamped to [256B, 4MiB].
		size := int64(math.Exp(rng.NormFloat64()*1.1 + 9))
		if size < 256 {
			size = 256
		}
		if size > 4<<20 {
			size = 4 << 20
		}
		docs[i] = document.Document{URL: docURL(site, i), Size: size, Version: 1}
	}
	return docs
}

// catalogHashes precomputes the document hash of every catalog entry, so
// generators intern hashes into events by index instead of re-hashing URLs
// per event.
func catalogHashes(docs []document.Document) []document.Hash {
	hashes := make([]document.Hash, len(docs))
	for i, d := range docs {
		hashes[i] = document.HashURL(d.URL)
	}
	return hashes
}

// CacheNames returns the canonical cache identifiers used by generated
// traces: cache-00 .. cache-(n-1).
func CacheNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		id := strconv.Itoa(i)
		if i < 10 {
			id = "0" + id
		}
		out[i] = "cache-" + id
	}
	return out
}

// ZipfConfig parameterises the synthetic Zipf dataset (the paper's
// "Zipf-0.9 dataset" uses NumDocs=50000, Alpha=0.9, and Zipf-distributed
// invalidations).
type ZipfConfig struct {
	Seed    int64
	NumDocs int     // unique documents (paper: 50,000)
	Alpha   float64 // Zipf exponent for both accesses and updates
	Caches  int     // number of edge caches receiving requests
	// CacheIDs, when non-empty, overrides Caches with explicit cache
	// names (used to drive multi-cloud edge networks whose caches are not
	// the canonical cache-NN set).
	CacheIDs []string
	Duration int64 // time units
	// ReqPerCache is the number of requests each cache receives per unit.
	ReqPerCache int
	// UpdatesPerUnit is the number of update events per unit.
	UpdatesPerUnit int
}

// withDefaults fills zero fields with the paper's defaults.
func (c ZipfConfig) withDefaults() ZipfConfig {
	if c.NumDocs == 0 {
		c.NumDocs = 50000
	}
	if c.Alpha == 0 {
		c.Alpha = 0.9
	}
	if c.Caches == 0 {
		c.Caches = 10
	}
	if c.Duration == 0 {
		c.Duration = 240
	}
	if c.ReqPerCache == 0 {
		c.ReqPerCache = 60
	}
	if c.UpdatesPerUnit == 0 {
		c.UpdatesPerUnit = 195
	}
	return c
}

// GenerateZipf produces the synthetic Zipf dataset.
func GenerateZipf(cfg ZipfConfig) *Trace {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	docs := buildCatalog(rng, "zipf.example.org", cfg.NumDocs)
	reqZipf := NewZipf(rng, cfg.NumDocs, cfg.Alpha)
	updZipf := NewZipf(rng, cfg.NumDocs, cfg.Alpha)
	caches := cfg.CacheIDs
	if len(caches) == 0 {
		caches = CacheNames(cfg.Caches)
	}

	hashes := catalogHashes(docs)
	events := make([]Event, 0, cfg.Duration*int64(cfg.Caches*cfg.ReqPerCache+cfg.UpdatesPerUnit))
	for tu := int64(0); tu < cfg.Duration; tu++ {
		for u := 0; u < cfg.UpdatesPerUnit; u++ {
			idx := updZipf.Sample()
			events = append(events, Event{
				Time: tu, Kind: Update, URL: docs[idx].URL, Hash: hashes[idx],
			})
		}
		for _, cache := range caches {
			for r := 0; r < cfg.ReqPerCache; r++ {
				idx := reqZipf.Sample()
				events = append(events, Event{
					Time: tu, Kind: Request, Cache: cache, URL: docs[idx].URL, Hash: hashes[idx],
				})
			}
		}
	}
	return &Trace{Docs: docs, Events: events, Duration: cfg.Duration}
}

// SydneyConfig parameterises the SydneyLike generator that stands in for the
// IBM 2000 Sydney Olympics trace (24 hours, ~51k unique documents).
type SydneyConfig struct {
	Seed    int64
	NumDocs int // paper reports ~51k unique documents; default 51634
	Caches  int
	// CacheIDs, when non-empty, overrides Caches with explicit names.
	CacheIDs []string
	// Duration in time units (minutes); default 1440 (24 hours).
	Duration int64
	// PeakReqPerCache is the per-cache request rate at the diurnal peak.
	PeakReqPerCache int
	// UpdatesPerUnit is the mean update rate; default 195 (the "observed
	// update rate" marked in the paper's Figures 7-9).
	UpdatesPerUnit int
	// HotDriftPeriod is how often (in units) the hot set rotates,
	// modelling event-driven popularity shifts during the games.
	HotDriftPeriod int64
}

func (c SydneyConfig) withDefaults() SydneyConfig {
	if c.NumDocs == 0 {
		c.NumDocs = 51634
	}
	if c.Caches == 0 {
		c.Caches = 10
	}
	if c.Duration == 0 {
		c.Duration = 1440
	}
	if c.PeakReqPerCache == 0 {
		c.PeakReqPerCache = 80
	}
	if c.UpdatesPerUnit == 0 {
		c.UpdatesPerUnit = 195
	}
	if c.HotDriftPeriod == 0 {
		c.HotDriftPeriod = 120
	}
	return c
}

// GenerateSydney produces the SydneyLike dataset.
//
// Characteristics reproduced from published descriptions of the workload:
//   - request popularity ~ Zipf(0.8) with the hot set drifting every
//     HotDriftPeriod units (medal tables and live scoreboards change which
//     pages are hot as events run);
//   - diurnal intensity: sinusoidal day curve with a floor of 30% of peak;
//   - updates sampled with a steeper Zipf(1.0) over the same drifting hot
//     set — live scoreboards are both hot-read and hot-written, while the
//     long tail of pages changes rarely.
func GenerateSydney(cfg SydneyConfig) *Trace {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	docs := buildCatalog(rng, "sydney2000.example.org", cfg.NumDocs)
	reqZipf := NewZipf(rng, cfg.NumDocs, 0.8)
	updZipf := NewZipf(rng, cfg.NumDocs, 1.0)
	caches := cfg.CacheIDs
	if len(caches) == 0 {
		caches = CacheNames(cfg.Caches)
	}

	hashes := catalogHashes(docs)
	var events []Event
	for tu := int64(0); tu < cfg.Duration; tu++ {
		phase := tu / cfg.HotDriftPeriod
		drift := int(phase) * 997 // co-prime step so hot ranks rotate widely
		intensity := diurnal(tu, cfg.Duration)
		reqs := int(math.Round(float64(cfg.PeakReqPerCache) * intensity))
		if reqs < 1 {
			reqs = 1
		}
		for u := 0; u < cfg.UpdatesPerUnit; u++ {
			idx := (updZipf.Sample() + drift) % cfg.NumDocs
			events = append(events, Event{Time: tu, Kind: Update, URL: docs[idx].URL, Hash: hashes[idx]})
		}
		for _, cache := range caches {
			for r := 0; r < reqs; r++ {
				idx := (reqZipf.Sample() + drift) % cfg.NumDocs
				events = append(events, Event{Time: tu, Kind: Request, Cache: cache, URL: docs[idx].URL, Hash: hashes[idx]})
			}
		}
	}
	return &Trace{Docs: docs, Events: events, Duration: cfg.Duration}
}

// diurnal returns the request-intensity multiplier in [0.3, 1.0] for a time
// unit, one full sinusoidal day over the trace duration.
func diurnal(tu, duration int64) float64 {
	if duration <= 0 {
		return 1
	}
	frac := float64(tu) / float64(duration)
	return 0.65 + 0.35*math.Sin(2*math.Pi*frac-math.Pi/2)
}

package trace

import (
	"fmt"
	"sort"
)

// Merge combines multiple traces into one time-ordered trace. Catalogs are
// unioned by URL (first occurrence wins); events are merged by time with a
// stable order between equal timestamps. Durations take the maximum.
func Merge(traces ...*Trace) *Trace {
	out := &Trace{}
	seen := make(map[string]struct{})
	for _, t := range traces {
		if t == nil {
			continue
		}
		for _, d := range t.Docs {
			if _, dup := seen[d.URL]; dup {
				continue
			}
			seen[d.URL] = struct{}{}
			out.Docs = append(out.Docs, d)
		}
		out.Events = append(out.Events, t.Events...)
		if t.Duration > out.Duration {
			out.Duration = t.Duration
		}
	}
	sort.SliceStable(out.Events, func(i, j int) bool {
		return out.Events[i].Time < out.Events[j].Time
	})
	return out
}

// Slice returns the sub-trace covering time units [from, to), rebased so
// the first kept unit becomes time 0. The catalog is shared (not copied).
func (t *Trace) Slice(from, to int64) (*Trace, error) {
	if from < 0 || to <= from {
		return nil, fmt.Errorf("trace: invalid slice [%d,%d)", from, to)
	}
	out := &Trace{Docs: t.Docs, Duration: to - from}
	for _, ev := range t.Events {
		if ev.Time < from || ev.Time >= to {
			continue
		}
		ev.Time -= from
		out.Events = append(out.Events, ev)
	}
	return out, nil
}

// FilterKind returns a copy keeping only events of the given kind (the
// catalog is shared).
func (t *Trace) FilterKind(kind EventKind) *Trace {
	out := &Trace{Docs: t.Docs, Duration: t.Duration}
	for _, ev := range t.Events {
		if ev.Kind == kind {
			out.Events = append(out.Events, ev)
		}
	}
	return out
}

// ScaleUpdates returns a copy in which update events are thinned (factor
// < 1) or replicated (integer factor > 1) to reach approximately
// factor × the original update rate, keeping request events untouched.
// Used to re-derive the paper's update-rate sweep from a single base
// trace.
func (t *Trace) ScaleUpdates(factor float64) (*Trace, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("trace: update scale factor %v must be > 0", factor)
	}
	out := &Trace{Docs: t.Docs, Duration: t.Duration}
	whole := int(factor)
	frac := factor - float64(whole)
	acc := 0.0
	for _, ev := range t.Events {
		if ev.Kind != Update {
			out.Events = append(out.Events, ev)
			continue
		}
		for k := 0; k < whole; k++ {
			out.Events = append(out.Events, ev)
		}
		acc += frac
		if acc >= 1 {
			out.Events = append(out.Events, ev)
			acc--
		}
	}
	return out, nil
}

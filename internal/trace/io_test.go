package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	tr := GenerateZipf(ZipfConfig{Seed: 11, Duration: 4, NumDocs: 50, Caches: 3, ReqPerCache: 4, UpdatesPerUnit: 3})
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Duration != tr.Duration {
		t.Fatalf("duration %d != %d", got.Duration, tr.Duration)
	}
	if len(got.Docs) != len(tr.Docs) {
		t.Fatalf("docs %d != %d", len(got.Docs), len(tr.Docs))
	}
	for i := range tr.Docs {
		if got.Docs[i].URL != tr.Docs[i].URL || got.Docs[i].Size != tr.Docs[i].Size {
			t.Fatalf("doc %d mismatch: %v vs %v", i, got.Docs[i], tr.Docs[i])
		}
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("events %d != %d", len(got.Events), len(tr.Events))
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d mismatch: %v vs %v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestReadSkipsCommentsAndBlank(t *testing.T) {
	in := "# hello\n\nT 10\nD http://a/1 100\nR 0 cache-00 http://a/1\nU 1 http://a/1\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Duration != 10 || len(tr.Docs) != 1 || len(tr.Events) != 2 {
		t.Fatalf("parsed %+v", tr)
	}
	if tr.Events[1].Kind != Update {
		t.Fatal("second event should be update")
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"unknown record", "X 1 2\n"},
		{"bad duration", "T abc\n"},
		{"short D", "D onlyurl\n"},
		{"bad size", "D u notanint\n"},
		{"negative size", "D u -5\n"},
		{"short R", "R 0 cache\n"},
		{"bad R time", "R x cache u\n"},
		{"short U", "U 0\n"},
		{"bad U time", "U x u\n"},
		{"out of order", "R 5 c u\nU 3 u\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("Read(%q) succeeded, want error", tc.in)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %v is not a *ParseError", err)
			}
		})
	}
}

func TestParseErrorMessage(t *testing.T) {
	_, err := Read(strings.NewReader("T 1\nX bad\n"))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want ParseError, got %v", err)
	}
	if pe.Line != 2 {
		t.Fatalf("line = %d, want 2", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 2") {
		t.Fatalf("message %q lacks line number", pe.Error())
	}
}

func TestWriteRejectsUnknownKind(t *testing.T) {
	tr := &Trace{Events: []Event{{Kind: EventKind(99)}}}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err == nil {
		t.Fatal("Write accepted unknown event kind")
	}
}

package core

import (
	"sort"

	"cachecloud/internal/cache"
	"cachecloud/internal/document"
	"cachecloud/internal/obs"
	"cachecloud/internal/ring"
)

// epoch is one immutable snapshot of the cloud's topology: the membership,
// the ring layouts, and the shard for every beacon point. The read path
// (lookups, updates, holder registration, stats reads) loads the current
// epoch with a single atomic pointer read and resolves documents against it
// without taking any lock; topology changes (Rebalance, AddCache,
// RemoveCache) build a fresh epoch under Cloud.mu and publish it RCU-style.
//
// Everything reachable from an epoch is either immutable (the ring views,
// the maps and slices built at install time) or internally synchronized
// (shards, records, caches), so a reader holding a stale epoch is always
// memory-safe; see DESIGN.md for what such a reader may observe.
type epoch struct {
	// seq is the install sequence number, 1 for the epoch installed by New.
	seq int64
	// rings holds, per ring, the frozen sub-range layout and the shard at
	// each layout position, so document resolution is two array indexes and
	// one binary search — no map lookups on the hot path.
	rings []epochRing
	// caches, shards, and ringOf are the membership at install time.
	caches map[string]*cache.Cache
	shards map[string]*shard
	ringOf map[string]int
	// ids is the sorted membership, shared by every CacheIDs caller.
	ids []string
}

type epochRing struct {
	view *ring.View
	// shards is position-aligned with view: shards[i] serves view.Sub(i).
	shards []*shard
}

// resolve maps a document hash to its owning shard and IrH value within the
// epoch. It performs the paper's two-step resolution (static hash to a ring,
// intra-ring hash to a beacon point) entirely against immutable state.
func (ep *epoch) resolve(h document.Hash) (*shard, int, error) {
	er := &ep.rings[h.RingIndex(len(ep.rings))]
	irh := h.IrH(er.view.IntraGen())
	pos, err := er.view.IndexFor(irh)
	if err != nil {
		return nil, 0, err
	}
	return er.shards[pos], irh, nil
}

// beaconFor resolves the beacon point ID for a hash.
func (ep *epoch) beaconFor(h document.Hash) (string, error) {
	s, _, err := ep.resolve(h)
	if err != nil {
		return "", err
	}
	return s.id, nil
}

// installEpoch snapshots the current topology into a fresh epoch and
// publishes it. Caller holds Cloud.mu.
func (c *Cloud) installEpoch() {
	ep := &epoch{
		seq:    c.epochInstalls.Add(1),
		rings:  make([]epochRing, len(c.rings)),
		caches: make(map[string]*cache.Cache, len(c.caches)),
		shards: make(map[string]*shard, len(c.shards)),
		ringOf: make(map[string]int, len(c.ringOf)),
		ids:    make([]string, 0, len(c.caches)),
	}
	for i, rg := range c.rings {
		v := rg.View()
		er := epochRing{view: v, shards: make([]*shard, v.Len())}
		for pos := 0; pos < v.Len(); pos++ {
			er.shards[pos] = c.shards[v.ID(pos)]
		}
		ep.rings[i] = er
	}
	for id, hc := range c.caches {
		ep.caches[id] = hc
		ep.ids = append(ep.ids, id)
	}
	for id, s := range c.shards {
		ep.shards[id] = s
	}
	for id, r := range c.ringOf {
		ep.ringOf[id] = r
	}
	sort.Strings(ep.ids)
	c.ep.Store(ep)
	if t := c.tracer.Load(); t != nil {
		t.Emit(obs.Event{Time: c.lastNow.Load(), Kind: obs.EvEpochInstall, Count: ep.seq})
	}
}

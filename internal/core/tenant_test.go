package core

import (
	"fmt"
	"math/rand"
	"testing"

	"cachecloud/internal/document"
)

// TestTenantRecordDisjointness drives random tenant-scoped holder
// registrations and updates through the core and checks that lookups
// never leak across tenants: each tenant's holder lists and versions
// match an independent per-tenant model map, and the default tenant's
// view equals the unscoped API's view.
func TestTenantRecordDisjointness(t *testing.T) {
	ids := []string{"c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7", "c8", "c9"}
	c, err := New(Config{NumRings: 5, IntraGen: 1000}, ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	tenants := []string{"", "acme", "globex", "initech"}
	type model struct {
		holders map[string]map[string]bool // url → holder set
		version map[string]document.Version
	}
	models := make(map[string]*model, len(tenants))
	for _, tid := range tenants {
		models[tid] = &model{holders: map[string]map[string]bool{}, version: map[string]document.Version{}}
	}
	rng := rand.New(rand.NewSource(41))
	for step := 0; step < 4000; step++ {
		tid := tenants[rng.Intn(len(tenants))]
		url := fmt.Sprintf("http://cloud/doc/%03d", rng.Intn(60))
		m := models[tid]
		switch rng.Intn(3) {
		case 0:
			holder := ids[rng.Intn(len(ids))]
			// A registered holder must really hold the copy — the update
			// fan-out prunes holders whose caches lack it.
			key := document.TenantKey(tid, url)
			cp := document.Copy{Doc: document.Document{URL: key, Size: 100, Version: m.version[url]}, FetchedAt: int64(step)}
			if _, err := c.Cache(holder).Put(cp, int64(step)); err != nil {
				t.Fatal(err)
			}
			if err := c.RegisterHolderTenant(tid, url, holder); err != nil {
				t.Fatal(err)
			}
			if m.holders[url] == nil {
				m.holders[url] = map[string]bool{}
			}
			m.holders[url][holder] = true
		case 1:
			v := m.version[url] + 1
			res, err := c.UpdateTenant(tid, document.Document{URL: url, Size: 100, Version: v}, int64(step))
			if err != nil {
				t.Fatal(err)
			}
			for _, h := range res.Notified {
				if !m.holders[url][h] {
					t.Fatalf("tenant %q url %q: update fanned out to foreign holder %q", tid, url, h)
				}
			}
			m.version[url] = v
		case 2:
			res, err := c.LookupTenant(tid, url, int64(step))
			if err != nil {
				t.Fatal(err)
			}
			if res.Version != m.version[url] {
				t.Fatalf("tenant %q url %q: version %d, model %d", tid, url, res.Version, m.version[url])
			}
			want := m.holders[url]
			if len(res.Holders) != len(want) {
				t.Fatalf("tenant %q url %q: holders %v, model %v", tid, url, res.Holders, want)
			}
			for _, h := range res.Holders {
				if !want[h] {
					t.Fatalf("tenant %q url %q: foreign holder %q leaked in", tid, url, h)
				}
			}
		}
	}
	// Default tenant's scoped view must be the unscoped view.
	for url, want := range models[""].version {
		res, err := c.Lookup(url, 5000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Version != want {
			t.Fatalf("unscoped lookup of %q: version %d, model %d", url, res.Version, want)
		}
	}
}

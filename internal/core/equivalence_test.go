package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"cachecloud/internal/core"
	"cachecloud/internal/core/seedref"
	"cachecloud/internal/document"
)

// The model-based equivalence check: the sharded epoch-snapshot core and
// the preserved seed single-mutex implementation (internal/core/seedref)
// are driven through identical seeded operation sequences and must agree —
// bit-for-bit where floats are involved — on every observable: lookup
// results, monitored rates, holder sets, versions, beacon-load totals,
// ring assignments, and migration/loss/recovery accounting.
//
// Crash recovery sequences call ReplicateRecords exactly once, immediately
// before the single crash: the seed scans replica shards in map order and
// breaks on the first hit, which is only deterministic while each record
// has one replica clone. The sharded core scans in sorted order; the two
// agree whenever the clone set is unambiguous, which this schedule
// guarantees (and production schedules approximate, since replication runs
// right before the failure window it protects).

// equivPair drives both implementations in lockstep.
type equivPair struct {
	t    *testing.T
	new  *core.Cloud
	old  *seedref.Cloud
	urls []string
	hs   []document.Hash
	now  int64
}

func newEquivPair(t *testing.T, numCaches, numRings, numDocs int, replicate, fineGrained bool) *equivPair {
	t.Helper()
	ids := make([]string, numCaches)
	for i := range ids {
		ids[i] = fmt.Sprintf("cache-%02d", i)
	}
	nc, err := core.New(core.Config{NumRings: numRings, ReplicateRecords: replicate, FineGrained: fineGrained}, ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	oc, err := seedref.New(seedref.Config{NumRings: numRings, ReplicateRecords: replicate, FineGrained: fineGrained}, ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := &equivPair{t: t, new: nc, old: oc, now: 1}
	for i := 0; i < numDocs; i++ {
		u := fmt.Sprintf("http://origin/eq-%04d", i)
		p.urls = append(p.urls, u)
		p.hs = append(p.hs, document.HashURL(u))
	}
	return p
}

func (p *equivPair) lookup(i int) {
	// The sharded core's fused variant must agree with the seed's split
	// lookup + rates protocol, values and state trajectory both.
	nr, nerr := p.new.LookupHashWithRates(p.urls[i], p.hs[i], p.now)
	or, oerr := p.old.LookupHash(p.urls[i], p.hs[i], p.now)
	olr, our := p.old.DocumentRatesHash(p.urls[i], p.hs[i], p.now)
	if (nerr == nil) != (oerr == nil) {
		p.t.Fatalf("lookup(%s): err %v vs %v", p.urls[i], nerr, oerr)
	}
	if nerr != nil {
		return
	}
	if nr.Beacon != or.Beacon || nr.Version != or.Version {
		p.t.Fatalf("lookup(%s): beacon/version %q v%d vs %q v%d", p.urls[i], nr.Beacon, nr.Version, or.Beacon, or.Version)
	}
	if !sameStrings(nr.Holders, or.Holders) {
		p.t.Fatalf("lookup(%s): holders %v vs %v", p.urls[i], nr.Holders, or.Holders)
	}
	if nr.LookupRate != olr || nr.UpdateRate != our {
		p.t.Fatalf("lookup(%s): rates (%v,%v) vs (%v,%v)", p.urls[i], nr.LookupRate, nr.UpdateRate, olr, our)
	}
}

func (p *equivPair) update(i int, version document.Version, size int64) {
	doc := document.Document{URL: p.urls[i], Version: version, Size: size}
	nr, nerr := p.new.UpdateHash(doc, p.hs[i], p.now)
	or, oerr := p.old.UpdateHash(doc, p.hs[i], p.now)
	if (nerr == nil) != (oerr == nil) {
		p.t.Fatalf("update(%s): err %v vs %v", doc.URL, nerr, oerr)
	}
	if nr.Beacon != or.Beacon || nr.FanoutBytes != or.FanoutBytes || !sameStrings(nr.Notified, or.Notified) {
		p.t.Fatalf("update(%s): %+v vs %+v", doc.URL, nr, or)
	}
}

func (p *equivPair) register(i, cacheIdx int, ids []string) {
	id := ids[cacheIdx%len(ids)]
	nerr := p.new.RegisterHolderHash(p.urls[i], p.hs[i], id)
	oerr := p.old.RegisterHolderHash(p.urls[i], p.hs[i], id)
	if (nerr == nil) != (oerr == nil) {
		p.t.Fatalf("register(%s,%s): err %v vs %v", p.urls[i], id, nerr, oerr)
	}
}

func (p *equivPair) deregister(i, cacheIdx int, ids []string) {
	id := ids[cacheIdx%len(ids)]
	nerr := p.new.DeregisterHolderHash(p.urls[i], p.hs[i], id)
	oerr := p.old.DeregisterHolderHash(p.urls[i], p.hs[i], id)
	if (nerr == nil) != (oerr == nil) {
		p.t.Fatalf("deregister(%s,%s): err %v vs %v", p.urls[i], id, nerr, oerr)
	}
}

func (p *equivPair) rebalance() {
	if n, o := p.new.Rebalance(), p.old.Rebalance(); n != o {
		p.t.Fatalf("rebalance migrated %d vs %d", n, o)
	}
}

func (p *equivPair) remove(id string, graceful bool) {
	nerr := p.new.RemoveCache(id, graceful)
	oerr := p.old.RemoveCache(id, graceful)
	if (nerr == nil) != (oerr == nil) {
		p.t.Fatalf("remove(%s,%v): err %v vs %v", id, graceful, nerr, oerr)
	}
}

func (p *equivPair) add(id string) {
	nerr := p.new.AddCache(id, 1, 0)
	oerr := p.old.AddCache(id, 1, 0)
	if (nerr == nil) != (oerr == nil) {
		p.t.Fatalf("add(%s): err %v vs %v", id, nerr, oerr)
	}
}

// checkState compares every aggregate observable of the two clouds.
func (p *equivPair) checkState() {
	p.t.Helper()
	if !sameStrings(p.new.CacheIDs(), p.old.CacheIDs()) {
		p.t.Fatalf("members %v vs %v", p.new.CacheIDs(), p.old.CacheIDs())
	}
	nl, ol := p.new.BeaconLoads(), p.old.BeaconLoads()
	if len(nl) != len(ol) {
		p.t.Fatalf("beacon loads %v vs %v", nl, ol)
	}
	for id, v := range ol {
		if nl[id] != v {
			p.t.Fatalf("beacon load[%s] = %d vs %d", id, nl[id], v)
		}
	}
	nd, od := p.new.LoadDistribution(), p.old.LoadDistribution()
	if nd.Mean() != od.Mean() || nd.CoV() != od.CoV() || nd.MaxToMean() != od.MaxToMean() {
		p.t.Fatalf("distribution %v vs %v", nd, od)
	}
	ns, os := p.new.Stats(), p.old.Stats()
	if ns.RecordsMigrated != os.RecordsMigrated || ns.RecordsLost != os.RecordsLost || ns.RecordsRecovered != os.RecordsRecovered {
		p.t.Fatalf("stats %+v vs %+v", ns, os)
	}
	na, oa := p.new.RingAssignments(), p.old.RingAssignments()
	if len(na) != len(oa) {
		p.t.Fatalf("ring count %d vs %d", len(na), len(oa))
	}
	for r := range na {
		if len(na[r]) != len(oa[r]) {
			p.t.Fatalf("ring %d size %d vs %d", r, len(na[r]), len(oa[r]))
		}
		for j := range na[r] {
			if na[r][j] != oa[r][j] {
				p.t.Fatalf("ring %d assignment %d: %+v vs %+v", r, j, na[r][j], oa[r][j])
			}
		}
	}
	for i, u := range p.urls {
		if !sameStrings(p.new.Holders(u), p.old.Holders(u)) {
			p.t.Fatalf("holders(%s) %v vs %v", u, p.new.Holders(u), p.old.Holders(u))
		}
		nlr, nur := p.new.DocumentRatesHash(u, p.hs[i], p.now)
		olr, our := p.old.DocumentRatesHash(u, p.hs[i], p.now)
		if nlr != olr || nur != our {
			p.t.Fatalf("rates(%s) (%v,%v) vs (%v,%v)", u, nlr, nur, olr, our)
		}
	}
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEquivalenceRandomOps drives random mixed workloads — lookups,
// updates, holder churn, rebalances, graceful departures, joins — through
// both implementations and compares all observables after every topology
// change and at the end.
func TestEquivalenceRandomOps(t *testing.T) {
	for _, tc := range []struct {
		seed        int64
		fineGrained bool
	}{
		{seed: 1, fineGrained: false},
		{seed: 2, fineGrained: true},
		{seed: 3, fineGrained: true},
	} {
		tc := tc
		t.Run(fmt.Sprintf("seed=%d", tc.seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			p := newEquivPair(t, 12, 4, 150, false, tc.fineGrained)
			ids := p.new.CacheIDs()
			added, removed := 0, 0
			for step := 0; step < 4000; step++ {
				i := rng.Intn(len(p.urls))
				switch op := rng.Intn(100); {
				case op < 55:
					p.lookup(i)
				case op < 70:
					p.update(i, document.Version(step), int64(100+rng.Intn(900)))
				case op < 82:
					p.register(i, rng.Intn(len(ids)), ids)
				case op < 90:
					p.deregister(i, rng.Intn(len(ids)), ids)
				case op < 96:
					p.now++
					p.lookup(i)
				case op < 98:
					p.rebalance()
					p.checkState()
				case op < 99 && removed < 3:
					p.remove(ids[rng.Intn(len(ids))], true)
					ids = p.new.CacheIDs()
					removed++
					p.checkState()
				default:
					if added < 3 {
						added++
						p.add(fmt.Sprintf("cache-j%d", added))
						ids = p.new.CacheIDs()
						p.checkState()
					}
				}
			}
			p.rebalance()
			p.checkState()
		})
	}
}

// TestEquivalenceCrashRecovery exercises the replicated-crash path: a
// workload builds up records, replication runs once, one cache crashes,
// and both implementations must agree on the recovered state and the
// recovery/loss accounting.
func TestEquivalenceCrashRecovery(t *testing.T) {
	for _, replicate := range []bool{true, false} {
		t.Run(fmt.Sprintf("replicate=%v", replicate), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			p := newEquivPair(t, 10, 5, 120, replicate, false)
			ids := p.new.CacheIDs()
			for step := 0; step < 1500; step++ {
				i := rng.Intn(len(p.urls))
				switch op := rng.Intn(10); {
				case op < 5:
					p.lookup(i)
				case op < 7:
					p.update(i, document.Version(step), 256)
				case op < 9:
					p.register(i, rng.Intn(len(ids)), ids)
				default:
					p.now++
				}
			}
			p.new.ReplicateRecords()
			p.old.ReplicateRecords()
			p.remove(ids[3], false) // crash
			p.checkState()
			ns := p.new.Stats()
			if replicate && ns.RecordsRecovered == 0 {
				t.Fatal("crash with replication recovered nothing — vacuous test")
			}
			if !replicate && ns.RecordsLost == 0 {
				t.Fatal("crash without replication lost nothing — vacuous test")
			}
			// The cloud must keep operating identically on the merged state.
			for step := 0; step < 500; step++ {
				i := rng.Intn(len(p.urls))
				if step%3 == 0 {
					p.update(i, document.Version(2000+step), 256)
				} else {
					p.lookup(i)
				}
			}
			p.rebalance()
			p.checkState()
		})
	}
}

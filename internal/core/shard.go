package core

import (
	"sync"
	"sync/atomic"

	"cachecloud/internal/cache"
	"cachecloud/internal/document"
	"cachecloud/internal/loadstats"
)

// record is the beacon-side lookup record for one document. The document
// hash is cached here so migrations and replica management never re-hash the
// URL, and the holder list is an insertion-ordered slice: holder sets are
// small (bounded by the cloud size), membership checks are a short linear
// scan, and — unlike a map — iteration order is deterministic, which keeps
// whole simulation runs reproducible.
//
// hcaches mirrors holders position-for-position with the holders' cache
// handles, so the update fan-out pushes to every holder without a map
// lookup per holder. The invariant that every hcaches entry is a live
// member cache is maintained by RemoveCache, which scrubs departed caches
// from every record and replica before returning.
//
// Each record carries its own mutex: lookups, updates, and holder
// registration for different documents never contend.
type record struct {
	hash document.Hash

	mu         sync.Mutex
	holders    []string
	hcaches    []*cache.Cache
	version    document.Version
	lookupRate *loadstats.EWRate // cloud-wide lookups for this document
	updateRate *loadstats.EWRate // updates for this document
}

func newRecord(h document.Hash) *record {
	return &record{
		hash:       h,
		lookupRate: loadstats.NewEWRate(monitorHalfLife),
		updateRate: loadstats.NewEWRate(monitorHalfLife),
	}
}

// hasHolder reports holder membership. Caller holds rec.mu.
func (r *record) hasHolder(id string) bool {
	for _, h := range r.holders {
		if h == id {
			return true
		}
	}
	return false
}

// addHolder appends a holder and its cache handle. Caller holds rec.mu.
func (r *record) addHolder(id string, hc *cache.Cache) {
	if !r.hasHolder(id) {
		r.holders = append(r.holders, id)
		r.hcaches = append(r.hcaches, hc)
	}
}

// removeHolder drops a holder, keeping hcaches aligned. Caller holds rec.mu
// (or the record is a replica clone reachable only under Cloud.mu).
func (r *record) removeHolder(id string) {
	for i, h := range r.holders {
		if h == id {
			r.holders = append(r.holders[:i], r.holders[i+1:]...)
			r.hcaches = append(r.hcaches[:i], r.hcaches[i+1:]...)
			return
		}
	}
}

// holderList returns a defensive copy of the holder list. Caller holds rec.mu.
func (r *record) holderList() []string {
	if len(r.holders) == 0 {
		return nil
	}
	out := make([]string, len(r.holders))
	copy(out, r.holders)
	return out
}

// clone snapshots the record for replication. It locks rec.mu itself.
func (r *record) clone() *record {
	c := newRecord(r.hash)
	r.mu.Lock()
	c.holders = r.holderList()
	if len(r.hcaches) > 0 {
		c.hcaches = make([]*cache.Cache, len(r.hcaches))
		copy(c.hcaches, r.hcaches)
	}
	c.version = r.version
	r.mu.Unlock()
	return c
}

// shard is the per-beacon-point slice of the cloud's state: the beacon's
// lookup records, its lazy sibling replicas, and its load counters.
// Operations on documents owned by different beacon points touch different
// shards and never contend.
//
// Locking: records is guarded by shard.mu (readers RLock only long enough
// to fetch the *record; per-record state is then guarded by record.mu).
// replicas is written and read exclusively on the topology write path, under
// Cloud.mu. The load counters are atomics so the read path never writes a
// lock word shared across documents.
type shard struct {
	id string

	mu      sync.RWMutex
	records map[string]*record

	// replicas holds the lazy clones this beacon keeps for its ring
	// sibling(s). Guarded by Cloud.mu, not shard.mu.
	replicas map[string]*record

	// load is the lifetime lookup+update count (Figures 3-6). lookups and
	// updates accumulate the current cycle's load and are drained into the
	// owning ring's sub-range counters at Rebalance.
	load    atomic.Int64
	lookups atomic.Int64
	updates atomic.Int64
	// perIrH accumulates the cycle's per-IrH-value load (the paper's
	// CIrHLd) when fine-grained tracking is on; nil otherwise.
	perIrH []atomic.Int64
}

func newShard(id string, intraGen int, fineGrained bool) *shard {
	s := &shard{
		id:       id,
		records:  make(map[string]*record),
		replicas: make(map[string]*record),
	}
	if fineGrained {
		s.perIrH = make([]atomic.Int64, intraGen)
	}
	return s
}

// charge counts one operation of the given kind against the shard — the
// lock-free equivalent of the seed's ring.Record + beaconLoad++ pair.
func (s *shard) charge(irh int, kind loadstats.Kind) {
	s.load.Add(1)
	if kind == loadstats.Lookup {
		s.lookups.Add(1)
	} else {
		s.updates.Add(1)
	}
	if s.perIrH != nil && irh >= 0 && irh < len(s.perIrH) {
		s.perIrH[irh].Add(1)
	}
}

// get returns the record for url, or nil.
func (s *shard) get(url string) *record {
	s.mu.RLock()
	rec := s.records[url]
	s.mu.RUnlock()
	return rec
}

// getOrCreate returns the record for url, creating it on first contact so
// monitoring starts with the first lookup. The fast path is a read-locked
// map probe; creation double-checks under the write lock.
func (s *shard) getOrCreate(url string, h document.Hash) *record {
	s.mu.RLock()
	rec := s.records[url]
	s.mu.RUnlock()
	if rec != nil {
		return rec
	}
	s.mu.Lock()
	rec = s.records[url]
	if rec == nil {
		rec = newRecord(h)
		s.records[url] = rec
	}
	s.mu.Unlock()
	return rec
}

// drainCycle swaps out the cycle counters, returning the pending lookup and
// update counts plus the per-IrH tallies (nil when coarse). Called under
// Cloud.mu right before sub-range determination.
func (s *shard) drainCycle() (lookups, updates int64, perIrH []int64) {
	lookups = s.lookups.Swap(0)
	updates = s.updates.Swap(0)
	if s.perIrH != nil {
		perIrH = make([]int64, len(s.perIrH))
		for i := range s.perIrH {
			perIrH[i] = s.perIrH[i].Swap(0)
		}
	}
	return lookups, updates, perIrH
}

// pendingCycle returns the not-yet-drained cycle load, read without
// disturbing the counters (for RingAssignments' mid-cycle view).
func (s *shard) pendingCycle() int64 {
	return s.lookups.Load() + s.updates.Load()
}

// lockPair write-locks two distinct shards in ID order. Only topology
// writers (serialized by Cloud.mu) ever hold two shard locks, so the order
// is hygiene rather than a deadlock requirement.
func lockPair(a, b *shard) {
	if a.id > b.id {
		a, b = b, a
	}
	a.mu.Lock()
	if a != b {
		b.mu.Lock()
	}
}

func unlockPair(a, b *shard) {
	if a == b {
		a.mu.Unlock()
		return
	}
	a.mu.Unlock()
	b.mu.Unlock()
}

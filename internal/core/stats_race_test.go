package core_test

import (
	"fmt"
	"sync"
	"testing"

	"cachecloud/internal/core"
	"cachecloud/internal/document"
)

// TestStatsConcurrentWithMutation scrapes every lock-free stats surface —
// Stats, BeaconLoads, LoadDistribution, CacheIDs, BeaconForHash — while
// lookups, updates, holder churn, and topology changes (RemoveCache,
// AddCache, Rebalance, ReplicateRecords) run against the same cloud. Run
// under -race in CI; the assertions here are liveness and monotonicity,
// the race detector provides the memory-safety verdict.
func TestStatsConcurrentWithMutation(t *testing.T) {
	ids := make([]string, 12)
	for i := range ids {
		ids[i] = fmt.Sprintf("cache-%02d", i)
	}
	c, err := core.New(core.Config{NumRings: 4, ReplicateRecords: true, FineGrained: true}, ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	const numDocs = 400
	urls := make([]string, numDocs)
	hashes := make([]document.Hash, numDocs)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://origin/race-%04d", i)
		hashes[i] = document.HashURL(urls[i])
	}

	var wg sync.WaitGroup
	// Readers: lookups with and without rates.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				idx := (i*7 + w) % numDocs
				if i%2 == 0 {
					_, _ = c.LookupHash(urls[idx], hashes[idx], int64(i))
				} else {
					_, _ = c.LookupHashWithRates(urls[idx], hashes[idx], int64(i))
				}
			}
		}(w)
	}
	// Updates and holder churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			idx := i % numDocs
			doc := document.Document{URL: urls[idx], Version: document.Version(i), Size: 128}
			_, _ = c.UpdateHash(doc, hashes[idx], int64(i))
			_ = c.RegisterHolderHash(urls[idx], hashes[idx], ids[i%len(ids)])
			if i%5 == 0 {
				_ = c.DeregisterHolderHash(urls[idx], hashes[idx], ids[(i+1)%len(ids)])
			}
		}
	}()
	// Stats scraper: counters must never go backwards.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev core.Stats
		for i := 0; i < 4000; i++ {
			st := c.Stats()
			if st.RecordsMigrated < prev.RecordsMigrated || st.RecordsLost < prev.RecordsLost ||
				st.RecordsRecovered < prev.RecordsRecovered || st.EpochInstalls < prev.EpochInstalls {
				t.Errorf("stats went backwards: %+v after %+v", st, prev)
				return
			}
			prev = st
			_ = c.BeaconLoads()
			_ = c.LoadDistribution()
			_ = c.CacheIDs()
			_, _ = c.BeaconForHash(hashes[i%numDocs])
		}
	}()
	// Topology churn: replicate, crash, rejoin, rebalance.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			c.ReplicateRecords()
			victim := fmt.Sprintf("cache-%02d", 4+i)
			if err := c.RemoveCache(victim, i%2 == 0); err != nil {
				t.Errorf("remove %s: %v", victim, err)
				return
			}
			c.Rebalance()
			if err := c.AddCache(fmt.Sprintf("cache-r%d", i), 1, 0); err != nil {
				t.Errorf("rejoin %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()

	if st := c.Stats(); st.EpochInstalls < 19 {
		// 1 initial + 6 × (remove + rebalance + add).
		t.Fatalf("EpochInstalls = %d, want >= 19", st.EpochInstalls)
	}
}

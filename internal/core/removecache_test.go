package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"cachecloud/internal/document"
	"cachecloud/internal/ring"
)

// beaconURLs generates n URLs whose beacon point is the given cache.
func beaconURLs(t *testing.T, c *Cloud, beacon string, n int) []string {
	t.Helper()
	urls := make([]string, 0, n)
	for i := 0; len(urls) < n; i++ {
		if i > 100000 {
			t.Fatalf("could not find %d URLs owned by %s", n, beacon)
		}
		u := fmt.Sprintf("http://edge/owned-%d", i)
		if b, err := c.BeaconFor(u); err == nil && b == beacon {
			urls = append(urls, u)
		}
	}
	return urls
}

// TestRemoveCacheReplicaHolderCrashedFirst covers the double-fault the
// paper's lazy replication cannot mask: a beacon's ring sibling (the cache
// holding its record replicas) crashes first, and the beacon itself
// crashes before replication re-runs. The records are then genuinely
// unrecoverable and must be accounted as lost, while lookups for the
// affected documents still resolve (with empty holder lists) at the new
// beacon rather than erroring.
func TestRemoveCacheReplicaHolderCrashedFirst(t *testing.T) {
	c := newTestCloud(t, 6, 2, func(cfg *Config) { cfg.ReplicateRecords = true })
	victim := "cache-00"
	sib := c.rings[c.ringOf[victim]].Sibling(victim)
	if sib == "" {
		t.Fatal("victim has no ring sibling")
	}
	var holder string
	for _, id := range c.CacheIDs() {
		if id != victim && id != sib {
			holder = id
			break
		}
	}
	urls := beaconURLs(t, c, victim, 5)
	for _, u := range urls {
		if err := c.RegisterHolder(u, holder); err != nil {
			t.Fatal(err)
		}
	}
	c.ReplicateRecords()

	// The replica holder dies first, taking the victim's replicas with it.
	if err := c.RemoveCache(sib, false); err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	if err := c.RemoveCache(victim, false); err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	if got := after.RecordsRecovered - before.RecordsRecovered; got != 0 {
		t.Fatalf("recovered %d records with the replica holder dead", got)
	}
	if got := after.RecordsLost - before.RecordsLost; got != int64(len(urls)) {
		t.Fatalf("records lost = %d, want %d", got, len(urls))
	}
	// The documents are forgotten, not broken: lookups succeed at the new
	// beacon with no holders.
	for _, u := range urls {
		res, err := c.Lookup(u, 1)
		if err != nil {
			t.Fatalf("lookup %s after double fault: %v", u, err)
		}
		if res.Beacon == victim || res.Beacon == sib {
			t.Fatalf("dead cache %s still beacon for %s", res.Beacon, u)
		}
		if len(res.Holders) != 0 {
			t.Fatalf("holders for %s survived unrecoverable crash: %v", u, res.Holders)
		}
	}
}

// TestRemoveCacheLastRingMember checks that a ring refuses to lose its
// last beacon point: the removal fails cleanly and the cache remains a
// functioning member.
func TestRemoveCacheLastRingMember(t *testing.T) {
	c := newTestCloud(t, 4, 2, nil)
	members := c.rings[0].Members()
	if len(members) != 2 {
		t.Fatalf("ring 0 members = %v, want 2", members)
	}
	if err := c.RemoveCache(members[0], false); err != nil {
		t.Fatal(err)
	}
	err := c.RemoveCache(members[1], false)
	if !errors.Is(err, ring.ErrLastPoint) {
		t.Fatalf("removing last ring member: err = %v, want ErrLastPoint", err)
	}
	// The failed removal must not have half-dismantled the cache.
	found := false
	for _, id := range c.CacheIDs() {
		if id == members[1] {
			found = true
		}
	}
	if !found {
		t.Fatalf("%s dropped from membership by failed removal", members[1])
	}
	u := beaconURLs(t, c, members[1], 1)[0]
	if _, err := c.Lookup(u, 1); err != nil {
		t.Fatalf("lookup through surviving last member: %v", err)
	}
}

// TestRemoveCacheCrashDuringUpdateFanout crashes a holder cache while the
// update protocol is fanning out new document versions to holders. The
// fan-out must never push to (or report) the dead cache once it is
// removed, and holder lists must come out clean.
func TestRemoveCacheCrashDuringUpdateFanout(t *testing.T) {
	c := newTestCloud(t, 4, 2, nil)
	victim, other := "cache-03", "cache-02"

	// Documents held by both the victim and a survivor, with beacons away
	// from the victim so its beacon role does not interfere.
	var urls []string
	for i := 0; len(urls) < 12; i++ {
		u := fmt.Sprintf("http://edge/fanout-%d", i)
		if b, err := c.BeaconFor(u); err == nil && b != victim {
			urls = append(urls, u)
		}
	}
	for _, u := range urls {
		doc := document.Document{URL: u, Size: 100, Version: 1}
		for _, id := range []string{victim, other} {
			if _, err := c.Cache(id).Put(document.Copy{Doc: doc, FetchedAt: 0}, 0); err != nil {
				t.Fatal(err)
			}
			if err := c.RegisterHolder(u, id); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Drive continuous update fan-out while the victim crashes mid-stream.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := document.Version(2); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			for _, u := range urls {
				doc := document.Document{URL: u, Size: 100, Version: v}
				if _, err := c.Update(doc, int64(v)); err != nil {
					t.Errorf("update during crash: %v", err)
					return
				}
			}
		}
	}()
	if err := c.RemoveCache(victim, false); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// Post-crash fan-out: the survivor is refreshed, the dead cache is
	// neither notified nor listed as a holder.
	for _, u := range urls {
		doc := document.Document{URL: u, Size: 100, Version: 1 << 30}
		res, err := c.Update(doc, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range res.Notified {
			if n == victim {
				t.Fatalf("update for %s notified crashed cache", u)
			}
		}
		if len(res.Notified) != 1 || res.Notified[0] != other {
			t.Fatalf("notified for %s = %v, want [%s]", u, res.Notified, other)
		}
		for _, h := range c.Holders(u) {
			if h == victim {
				t.Fatalf("crashed cache still a holder of %s", u)
			}
		}
	}
}

// TestRemoveCacheAccountingGracefulVsCrash pins the exact record
// accounting of the three departure modes: a graceful departure migrates
// every record, a bare crash loses every record, and a replicated crash
// recovers every record — and in each mode the three counters sum to the
// records the departed beacon held.
func TestRemoveCacheAccountingGracefulVsCrash(t *testing.T) {
	const n = 6
	setup := func(replicate bool) (*Cloud, []string) {
		c := newTestCloud(t, 4, 2, func(cfg *Config) { cfg.ReplicateRecords = replicate })
		urls := beaconURLs(t, c, "cache-00", n)
		for _, u := range urls {
			if err := c.RegisterHolder(u, "cache-01"); err != nil {
				t.Fatal(err)
			}
		}
		return c, urls
	}
	check := func(c *Cloud, migrated, lost, recovered int64) {
		t.Helper()
		st := c.Stats()
		if st.RecordsMigrated != migrated || st.RecordsLost != lost || st.RecordsRecovered != recovered {
			t.Fatalf("stats = %+v, want migrated=%d lost=%d recovered=%d", st, migrated, lost, recovered)
		}
		if st.RecordsMigrated+st.RecordsLost+st.RecordsRecovered != n {
			t.Fatalf("counters do not sum to %d records: %+v", n, st)
		}
	}

	c, urls := setup(false)
	if err := c.RemoveCache("cache-00", true); err != nil {
		t.Fatal(err)
	}
	check(c, n, 0, 0)
	for _, u := range urls {
		if res, _ := c.Lookup(u, 1); len(res.Holders) != 1 {
			t.Fatalf("graceful departure dropped holders of %s: %v", u, res.Holders)
		}
	}

	c, urls = setup(false)
	if err := c.RemoveCache("cache-00", false); err != nil {
		t.Fatal(err)
	}
	check(c, 0, n, 0)
	for _, u := range urls {
		if res, _ := c.Lookup(u, 1); len(res.Holders) != 0 {
			t.Fatalf("bare crash preserved holders of %s: %v", u, res.Holders)
		}
	}

	c, urls = setup(true)
	c.ReplicateRecords()
	if err := c.RemoveCache("cache-00", false); err != nil {
		t.Fatal(err)
	}
	check(c, 0, 0, n)
	for _, u := range urls {
		if res, _ := c.Lookup(u, 1); len(res.Holders) != 1 {
			t.Fatalf("replicated crash dropped holders of %s: %v", u, res.Holders)
		}
	}
}

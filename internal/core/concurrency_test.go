package core

import (
	"fmt"
	"sync"
	"testing"

	"cachecloud/internal/document"
	"cachecloud/internal/trace"
)

// The cloud must stay consistent under concurrent lookups, updates,
// registrations and rebalances (run with -race).
func TestConcurrentCloudOperations(t *testing.T) {
	c := newTestCloud(t, 8, 4, nil)
	const workers = 8
	const opsPerWorker = 400

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			cacheID := fmt.Sprintf("cache-%02d", worker)
			for i := 0; i < opsPerWorker; i++ {
				url := fmt.Sprintf("http://s/%d", (worker*31+i)%200)
				switch i % 5 {
				case 0, 1:
					if _, err := c.Lookup(url, int64(i)); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if err := c.RegisterHolder(url, cacheID); err != nil {
						t.Error(err)
						return
					}
				case 3:
					doc := document.Document{URL: url, Size: 100, Version: document.Version(i)}
					if _, err := c.Update(doc, int64(i)); err != nil {
						t.Error(err)
						return
					}
				case 4:
					_ = c.Holders(url)
				}
			}
		}(w)
	}
	// A rebalancer and a replicator race with the workers.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			c.Rebalance()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			c.ReplicateRecords()
			_ = c.LoadDistribution()
			_ = c.BeaconLoads()
		}
	}()
	wg.Wait()

	// Post-condition: every URL still resolves and the directory is sane.
	for i := 0; i < 200; i++ {
		url := fmt.Sprintf("http://s/%d", i)
		if _, err := c.BeaconFor(url); err != nil {
			t.Fatalf("BeaconFor(%s) after stress: %v", url, err)
		}
	}
}

// Membership changes racing with traffic must not corrupt the cloud.
func TestConcurrentMembershipChanges(t *testing.T) {
	c := newTestCloud(t, 6, 2, nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			url := fmt.Sprintf("u%d", i%100)
			_, _ = c.Lookup(url, int64(i))
			_ = c.RegisterHolder(url, "cache-01")
			i++
		}
	}()

	for g := 0; g < 5; g++ {
		id := fmt.Sprintf("extra-%d", g)
		if err := c.AddCache(id, 1, 0); err != nil {
			t.Fatal(err)
		}
		c.Rebalance()
		if err := c.RemoveCache(id, true); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	ids := c.CacheIDs()
	if len(ids) != 6 {
		t.Fatalf("cache count after churn = %d, want 6", len(ids))
	}
	for i := 0; i < 100; i++ {
		if _, err := c.BeaconFor(fmt.Sprintf("u%d", i)); err != nil {
			t.Fatal(err)
		}
	}
}

// Guard against regressions in the strided ring layout: the distribution
// of beacon assignments over a big URL sample must cover every cache.
func TestBeaconAssignmentCoverage(t *testing.T) {
	c := newTestCloud(t, 10, 5, nil)
	counts := map[string]int{}
	for i := 0; i < 20000; i++ {
		b, err := c.BeaconFor(fmt.Sprintf("http://cover/%d", i))
		if err != nil {
			t.Fatal(err)
		}
		counts[b]++
	}
	for _, id := range trace.CacheNames(10) {
		if counts[id] == 0 {
			t.Fatalf("cache %s never assigned as beacon", id)
		}
	}
}

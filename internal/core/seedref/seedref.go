// Package seedref preserves the seed's single-mutex implementation of the
// cache cloud, verbatim except for the package name. It exists for two
// jobs, both about keeping the sharded epoch-snapshot core
// (internal/core) honest:
//
//   - the model-based equivalence property test drives seeded operation
//     sequences through both implementations and requires identical holder
//     sets, versions, beacon-load totals, and migration accounting;
//   - the contention micro-benchmarks run the same parallel lookup load
//     against both, quantifying what sharding buys over the global lock.
//
// Behavioural changes belong in internal/core; this package only changes
// when the intended semantics change, together with the equivalence test.
package seedref

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"cachecloud/internal/cache"
	"cachecloud/internal/document"
	"cachecloud/internal/loadstats"
	"cachecloud/internal/obs"
	"cachecloud/internal/ring"
)

var (
	// ErrUnknownCache is returned when an operation names a cache that is
	// not part of the cloud.
	ErrUnknownCache = errors.New("core: unknown cache")
	// ErrBadTopology is returned for invalid ring/cache configurations.
	ErrBadTopology = errors.New("core: invalid cloud topology")
)

// monitorHalfLife is the half-life (time units) for beacon-side rate
// monitors; one hour of trace time.
const monitorHalfLife = 60

// replacementOrLRU maps the zero value to LRU.
func replacementOrLRU(k cache.ReplacementKind) cache.ReplacementKind {
	if k == 0 {
		return cache.LRU
	}
	return k
}

// Config parameterises a cache cloud.
type Config struct {
	// NumRings is the number of beacon rings. The paper's default cloud of
	// 10 caches uses 5 rings of 2 beacon points.
	NumRings int
	// IntraGen is the intra-ring hash generator (1000 in the evaluation).
	IntraGen int
	// FineGrained selects per-IrH-value load tracking for rebalancing.
	FineGrained bool
	// ReplicateRecords enables lazy replication of lookup records to the
	// ring sibling, the paper's failure-resilience extension.
	ReplicateRecords bool
	// DefaultCapacity is the byte budget given to caches created by New
	// (0 = unlimited).
	DefaultCapacity int64
	// Replacement selects the caches' replacement policy (LRU when zero,
	// as in the paper's limited-disk experiments).
	Replacement cache.ReplacementKind
}

// record is the beacon-side lookup record for one document. The document
// hash is cached here so migrations and replica management never re-hash the
// URL, and the holder list is an insertion-ordered slice: holder sets are
// small (bounded by the cloud size), membership checks are a short linear
// scan, and — unlike a map — iteration order is deterministic, which keeps
// whole simulation runs reproducible.
type record struct {
	hash       document.Hash
	holders    []string
	version    document.Version
	lookupRate *loadstats.EWRate // cloud-wide lookups for this document
	updateRate *loadstats.EWRate // updates for this document
}

func newRecord(h document.Hash) *record {
	return &record{
		hash:       h,
		lookupRate: loadstats.NewEWRate(monitorHalfLife),
		updateRate: loadstats.NewEWRate(monitorHalfLife),
	}
}

func (r *record) hasHolder(id string) bool {
	for _, h := range r.holders {
		if h == id {
			return true
		}
	}
	return false
}

func (r *record) addHolder(id string) {
	if !r.hasHolder(id) {
		r.holders = append(r.holders, id)
	}
}

func (r *record) removeHolder(id string) {
	for i, h := range r.holders {
		if h == id {
			r.holders = append(r.holders[:i], r.holders[i+1:]...)
			return
		}
	}
}

// holderList returns a defensive copy of the holder list.
func (r *record) holderList() []string {
	if len(r.holders) == 0 {
		return nil
	}
	out := make([]string, len(r.holders))
	copy(out, r.holders)
	return out
}

func (r *record) clone() *record {
	c := newRecord(r.hash)
	c.holders = r.holderList()
	c.version = r.version
	return c
}

// Cloud is a cache cloud. All methods are safe for concurrent use.
type Cloud struct {
	mu  sync.Mutex
	cfg Config

	caches map[string]*cache.Cache
	rings  []*ring.Ring
	// ringOf maps a cache ID to the indexes of rings it serves in (one per
	// cloud in this implementation).
	ringOf map[string]int

	// records holds lookup records sharded by owning beacon point.
	records map[string]map[string]*record
	// replicas holds the lazy sibling replicas: replicas[siblingID][url].
	replicas map[string]map[string]*record

	// beaconLoad accumulates lookup+update operations handled per cache
	// over the cloud's lifetime — the quantity plotted in Figures 3-6.
	beaconLoad map[string]int64

	recordsMigrated int64
	recordsLost     int64
	recordsRecov    int64

	// tracer receives protocol events (nil = disabled; the hot paths
	// guard on the field so a disabled tracer costs zero allocations).
	tracer *obs.Tracer
	// lastNow is the most recent logical time seen by a lookup or
	// update — migrations at cycle boundaries are stamped with it.
	lastNow int64
}

// New builds a cloud over the given cache IDs with the given per-cache
// capabilities (nil means all capabilities are 1). Caches are assigned to
// rings in strides: ring r hosts caches r, r+NumRings, r+2·NumRings, …
// so a 10-cache cloud with 5 rings yields the paper's 5×2 layout.
func New(cfg Config, cacheIDs []string, capabilities map[string]float64) (*Cloud, error) {
	if cfg.NumRings <= 0 {
		return nil, fmt.Errorf("%w: NumRings = %d", ErrBadTopology, cfg.NumRings)
	}
	if len(cacheIDs) < cfg.NumRings {
		return nil, fmt.Errorf("%w: %d caches for %d rings", ErrBadTopology, len(cacheIDs), cfg.NumRings)
	}
	if cfg.IntraGen <= 0 {
		cfg.IntraGen = 1000
	}
	seen := make(map[string]struct{}, len(cacheIDs))
	for _, id := range cacheIDs {
		if _, dup := seen[id]; dup {
			return nil, fmt.Errorf("%w: duplicate cache %q", ErrBadTopology, id)
		}
		seen[id] = struct{}{}
	}

	c := &Cloud{
		cfg:        cfg,
		caches:     make(map[string]*cache.Cache, len(cacheIDs)),
		ringOf:     make(map[string]int, len(cacheIDs)),
		records:    make(map[string]map[string]*record),
		replicas:   make(map[string]map[string]*record),
		beaconLoad: make(map[string]int64, len(cacheIDs)),
	}
	capOf := func(id string) float64 {
		if capabilities != nil {
			if v, ok := capabilities[id]; ok {
				return v
			}
		}
		return 1
	}

	members := make([][]ring.Member, cfg.NumRings)
	for i, id := range cacheIDs {
		r := i % cfg.NumRings
		members[r] = append(members[r], ring.Member{ID: id, Capability: capOf(id)})
		c.ringOf[id] = r
		c.caches[id] = cache.NewWithReplacement(id, cfg.DefaultCapacity, replacementOrLRU(cfg.Replacement))
		c.records[id] = make(map[string]*record)
		c.beaconLoad[id] = 0
	}
	for r := 0; r < cfg.NumRings; r++ {
		rg, err := ring.New(ring.Config{IntraGen: cfg.IntraGen, FineGrained: cfg.FineGrained}, members[r])
		if err != nil {
			return nil, fmt.Errorf("core: build ring %d: %w", r, err)
		}
		c.rings = append(c.rings, rg)
	}
	return c, nil
}

// SetTracer attaches a protocol-event tracer (nil detaches). The cloud
// emits EvBeaconLookup, EvUpdateFanout, and EvRecordMigrated.
func (c *Cloud) SetTracer(t *obs.Tracer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracer = t
}

// Cache returns the cache with the given ID, or nil when absent.
func (c *Cloud) Cache(id string) *cache.Cache {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.caches[id]
}

// CacheIDs returns the IDs of all member caches in sorted order, so
// consumers that fold floating-point quantities over the membership get the
// same summation order — and therefore bit-identical results — on every run.
func (c *Cloud) CacheIDs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.caches))
	for id := range c.caches {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// NumRings returns the ring count.
func (c *Cloud) NumRings() int { return c.cfg.NumRings }

// BeaconFor resolves a document's beacon point with the two-step process:
// static hash to a ring, intra-ring hash to a beacon point.
func (c *Cloud) BeaconFor(url string) (string, error) {
	return c.BeaconForHash(document.HashURL(url))
}

// BeaconForHash is BeaconFor for a precomputed document hash.
func (c *Cloud) BeaconForHash(h document.Hash) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.beaconForHashLocked(h)
}

func (c *Cloud) beaconForHashLocked(h document.Hash) (string, error) {
	rg := c.rings[h.RingIndex(len(c.rings))]
	return rg.BeaconFor(h.IrH(rg.IntraGen()))
}

// LookupResult is the beacon point's answer to a document lookup.
type LookupResult struct {
	// Beacon is the beacon point that served the lookup.
	Beacon string
	// Holders are the caches currently holding the document.
	Holders []string
	// Version is the latest version the beacon has seen (0 if never
	// updated through the cloud).
	Version document.Version
}

// Lookup runs the document lookup protocol: it resolves the beacon point,
// records the lookup load on the owning ring (for sub-range determination)
// and on the beacon's lifetime counters (for the evaluation figures), and
// returns the current holders. The returned holder list is a copy the
// caller owns; the simulator's hot path uses LookupHash instead, which
// avoids both the re-hash and the defensive copy.
func (c *Cloud) Lookup(url string, now int64) (LookupResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, err := c.lookupHashLocked(url, document.HashURL(url), now)
	if err != nil {
		return res, err
	}
	res.Holders = append([]string(nil), res.Holders...)
	return res, nil
}

// LookupHash is Lookup for a precomputed document hash — the simulator's
// hot path. To avoid an allocation per lookup the returned Holders slice
// aliases the beacon's internal record: it is valid only until the next
// mutating call on the cloud and must not be modified. Concurrent callers
// should use Lookup, which returns a private copy.
func (c *Cloud) LookupHash(url string, h document.Hash, now int64) (LookupResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lookupHashLocked(url, h, now)
}

func (c *Cloud) lookupHashLocked(url string, h document.Hash, now int64) (LookupResult, error) {
	beacon, err := c.recordOp(h, loadstats.Lookup)
	if err != nil {
		return LookupResult{}, err
	}
	rec, ok := c.records[beacon][url]
	if !ok {
		// Create the record so monitoring starts with the first lookup.
		rec = newRecord(h)
		c.records[beacon][url] = rec
	}
	rec.lookupRate.Observe(now, 1)
	c.lastNow = now
	if c.tracer != nil {
		c.tracer.Emit(obs.Event{Time: now, Kind: obs.EvBeaconLookup, Node: beacon, URL: url})
	}
	return LookupResult{Beacon: beacon, Holders: rec.holders, Version: rec.version}, nil
}

// recordOp resolves the beacon for a document hash and charges one load
// unit of the given kind. Caller holds the lock.
func (c *Cloud) recordOp(h document.Hash, kind loadstats.Kind) (string, error) {
	rg := c.rings[h.RingIndex(len(c.rings))]
	irh := h.IrH(rg.IntraGen())
	beacon, err := rg.BeaconFor(irh)
	if err != nil {
		return "", err
	}
	if err := rg.Record(irh, kind, 1); err != nil {
		return "", err
	}
	c.beaconLoad[beacon]++
	return beacon, nil
}

// RegisterHolder adds a cache to the document's holder list at its beacon
// point. Typically called after a placement decision stores a copy.
func (c *Cloud) RegisterHolder(url, cacheID string) error {
	return c.RegisterHolderHash(url, document.HashURL(url), cacheID)
}

// RegisterHolderHash is RegisterHolder for a precomputed document hash.
func (c *Cloud) RegisterHolderHash(url string, h document.Hash, cacheID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.caches[cacheID]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownCache, cacheID)
	}
	beacon, err := c.beaconForHashLocked(h)
	if err != nil {
		return err
	}
	rec, ok := c.records[beacon][url]
	if !ok {
		rec = newRecord(h)
		c.records[beacon][url] = rec
	}
	rec.addHolder(cacheID)
	return nil
}

// DeregisterHolder removes a cache from the document's holder list (after
// an eviction).
func (c *Cloud) DeregisterHolder(url, cacheID string) error {
	return c.DeregisterHolderHash(url, document.HashURL(url), cacheID)
}

// DeregisterHolderHash is DeregisterHolder for a precomputed document hash.
func (c *Cloud) DeregisterHolderHash(url string, h document.Hash, cacheID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	beacon, err := c.beaconForHashLocked(h)
	if err != nil {
		return err
	}
	if rec, ok := c.records[beacon][url]; ok {
		rec.removeHolder(cacheID)
	}
	return nil
}

// Holders returns the current holder list without charging lookup load
// (an internal peek used by placement and tests; the protocol path is
// Lookup).
func (c *Cloud) Holders(url string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	beacon, err := c.beaconForHashLocked(document.HashURL(url))
	if err != nil {
		return nil
	}
	if rec, ok := c.records[beacon][url]; ok {
		return rec.holderList()
	}
	return nil
}

// UpdateResult summarises one run of the document update protocol.
type UpdateResult struct {
	// Beacon is the beacon point the server contacted.
	Beacon string
	// Notified are the holder caches the beacon pushed the new version to.
	Notified []string
	// FanoutBytes is the intra-cloud traffic of the push
	// (len(Notified) × size).
	FanoutBytes int64
}

// Update runs the document update protocol: the origin server has sent the
// updated document to the document's beacon point (one message per cloud);
// the beacon records the update load, refreshes its record version, and
// distributes the new version to every cache currently holding the
// document.
func (c *Cloud) Update(doc document.Document, now int64) (UpdateResult, error) {
	return c.UpdateHash(doc, document.HashURL(doc.URL), now)
}

// UpdateHash is Update for a precomputed document hash.
func (c *Cloud) UpdateHash(doc document.Document, h document.Hash, now int64) (UpdateResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	beacon, err := c.recordOp(h, loadstats.Update)
	if err != nil {
		return UpdateResult{}, err
	}
	rec, ok := c.records[beacon][doc.URL]
	if !ok {
		rec = newRecord(h)
		c.records[beacon][doc.URL] = rec
	}
	rec.updateRate.Observe(now, 1)
	if doc.Version > rec.version {
		rec.version = doc.Version
	}
	res := UpdateResult{Beacon: beacon}
	// Filter the holder list in place: holders that no longer exist or no
	// longer hold the document (stale record) drop out.
	keep := rec.holders[:0]
	for _, holder := range rec.holders {
		hc, ok := c.caches[holder]
		if !ok {
			continue
		}
		if hc.ApplyUpdate(doc, now) {
			res.Notified = append(res.Notified, holder)
			res.FanoutBytes += doc.Size
			keep = append(keep, holder)
		}
	}
	rec.holders = keep
	c.lastNow = now
	if c.tracer != nil && len(res.Notified) > 0 {
		c.tracer.Emit(obs.Event{Time: now, Kind: obs.EvUpdateFanout, Node: beacon, URL: doc.URL, Count: int64(len(res.Notified))})
	}
	return res, nil
}

// DocumentRates returns the beacon-side monitored cloud-wide lookup and
// update rates for a document — the inputs to the utility placement
// scheme's consistency-maintenance component.
func (c *Cloud) DocumentRates(url string, now int64) (lookupRate, updateRate float64) {
	return c.DocumentRatesHash(url, document.HashURL(url), now)
}

// DocumentRatesHash is DocumentRates for a precomputed document hash.
func (c *Cloud) DocumentRatesHash(url string, h document.Hash, now int64) (lookupRate, updateRate float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	beacon, err := c.beaconForHashLocked(h)
	if err != nil {
		return 0, 0
	}
	rec, ok := c.records[beacon][url]
	if !ok {
		return 0, 0
	}
	return rec.lookupRate.Rate(now), rec.updateRate.Rate(now)
}

// Rebalance runs the sub-range determination process on every beacon ring
// (end of cycle) and migrates the lookup records implied by the boundary
// moves. It returns the number of records migrated.
func (c *Cloud) Rebalance() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	migrated := 0
	for ringIdx, rg := range c.rings {
		moves := rg.Rebalance()
		for _, mv := range moves {
			n := c.migrateLocked(ringIdx, rg, mv)
			migrated += n
			if c.tracer != nil && n > 0 {
				c.tracer.Emit(obs.Event{Time: c.lastNow, Kind: obs.EvRecordMigrated, Node: mv.To, Count: int64(n)})
			}
		}
	}
	c.recordsMigrated += int64(migrated)
	return migrated
}

// migrateLocked moves the records covered by mv from mv.From to mv.To.
func (c *Cloud) migrateLocked(ringIdx int, rg *ring.Ring, mv ring.Move) int {
	src := c.records[mv.From]
	dst := c.records[mv.To]
	if src == nil || dst == nil {
		return 0
	}
	n := 0
	for url, rec := range src {
		// The record caches its document hash, so migration never re-hashes.
		if rec.hash.RingIndex(len(c.rings)) != ringIdx {
			continue
		}
		if !mv.Sub.Contains(rec.hash.IrH(rg.IntraGen())) {
			continue
		}
		dst[url] = rec
		delete(src, url)
		n++
	}
	return n
}

// ReplicateRecords copies every beacon point's lookup records to its ring
// sibling — the paper's lazy replication for failure resilience. It is a
// no-op unless the cloud was configured with ReplicateRecords.
func (c *Cloud) ReplicateRecords() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.cfg.ReplicateRecords {
		return
	}
	for beacon, recs := range c.records {
		rIdx, ok := c.ringOf[beacon]
		if !ok {
			continue
		}
		sib := c.rings[rIdx].Sibling(beacon)
		if sib == "" {
			continue
		}
		repl := c.replicas[sib]
		if repl == nil {
			repl = make(map[string]*record, len(recs))
			c.replicas[sib] = repl
		}
		for url, rec := range recs {
			repl[url] = rec.clone()
		}
	}
}

// RemoveCache handles the departure or failure of a cache: its beacon
// sub-ranges merge into a ring neighbour, its lookup records move to that
// neighbour (recovered from the sibling replica when the departure is a
// failure and replication is enabled), and it is dropped from every holder
// list. graceful indicates whether the cache's own record store is still
// readable (planned departure) or lost (crash).
func (c *Cloud) RemoveCache(id string, graceful bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.caches[id]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownCache, id)
	}
	rIdx := c.ringOf[id]
	mv, err := c.rings[rIdx].Remove(id)
	if err != nil {
		return fmt.Errorf("core: remove %q from ring %d: %w", id, rIdx, err)
	}

	switch {
	case graceful:
		moved := int64(0)
		for url, rec := range c.records[id] {
			c.records[mv.To][url] = rec
			c.recordsMigrated++
			moved++
		}
		if c.tracer != nil && moved > 0 {
			c.tracer.Emit(obs.Event{Time: c.lastNow, Kind: obs.EvRecordMigrated, Node: mv.To, Count: moved})
		}
	case c.cfg.ReplicateRecords:
		// Crash: recover records from the replicas held by the dead
		// beacon's sibling(s). Replicas were pushed to other caches, so
		// scan every replica shard for records the dead beacon owned.
		for url := range c.records[id] {
			recovered := false
			for holderID, shard := range c.replicas {
				if holderID == id {
					continue
				}
				if repl, ok := shard[url]; ok {
					c.records[mv.To][url] = repl
					c.recordsRecov++
					recovered = true
					break
				}
			}
			if !recovered {
				c.recordsLost++
			}
		}
	default:
		c.recordsLost += int64(len(c.records[id]))
	}

	delete(c.records, id)
	delete(c.replicas, id)
	delete(c.caches, id)
	delete(c.ringOf, id)
	delete(c.beaconLoad, id)

	// Drop the departed cache from every holder list — including the
	// replica snapshots, which would otherwise resurrect it as a holder
	// when a later crash promotes them.
	for _, shard := range c.records {
		for _, rec := range shard {
			rec.removeHolder(id)
		}
	}
	for _, shard := range c.replicas {
		for _, rec := range shard {
			rec.removeHolder(id)
		}
	}
	return nil
}

// AddCache joins a new cache to the cloud. It is placed in the ring with
// the fewest beacon points and receives half of the widest sub-range there;
// the records for that sub-range migrate to it.
func (c *Cloud) AddCache(id string, capability float64, capacity int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.caches[id]; dup {
		return fmt.Errorf("%w: duplicate cache %q", ErrBadTopology, id)
	}
	best, bestSize := -1, 0
	for i, rg := range c.rings {
		if s := rg.Size(); best == -1 || s < bestSize {
			best, bestSize = i, s
		}
	}
	mv, err := c.rings[best].Add(ring.Member{ID: id, Capability: capability})
	if err != nil {
		return fmt.Errorf("core: add %q to ring %d: %w", id, best, err)
	}
	c.caches[id] = cache.NewWithReplacement(id, capacity, replacementOrLRU(c.cfg.Replacement))
	c.records[id] = make(map[string]*record)
	c.ringOf[id] = best
	c.beaconLoad[id] = 0
	n := c.migrateLocked(best, c.rings[best], mv)
	c.recordsMigrated += int64(n)
	if c.tracer != nil && n > 0 {
		c.tracer.Emit(obs.Event{Time: c.lastNow, Kind: obs.EvRecordMigrated, Node: id, Count: int64(n)})
	}
	return nil
}

// BeaconLoads returns the cumulative lookup+update operations handled per
// cache since the cloud was created — the load metric of Figures 3-6.
func (c *Cloud) BeaconLoads() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.beaconLoad))
	for id, v := range c.beaconLoad {
		out[id] = v
	}
	return out
}

// LoadDistribution returns the beacon loads as a loadstats.Distribution.
// Loads are folded in sorted cache-ID order so derived statistics are
// bit-identical across runs.
func (c *Cloud) LoadDistribution() loadstats.Distribution {
	loads := c.BeaconLoads()
	ids := make([]string, 0, len(loads))
	for id := range loads {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	vals := make([]float64, 0, len(ids))
	for _, id := range ids {
		vals = append(vals, float64(loads[id]))
	}
	return loadstats.NewDistribution(vals)
}

// Stats reports lifetime record-management counters.
type Stats struct {
	RecordsMigrated  int64
	RecordsLost      int64
	RecordsRecovered int64
}

// Stats returns the lifetime record-management counters.
func (c *Cloud) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		RecordsMigrated:  c.recordsMigrated,
		RecordsLost:      c.recordsLost,
		RecordsRecovered: c.recordsRecov,
	}
}

// RingAssignments exposes each ring's current sub-range assignment for
// diagnostics and experiments.
func (c *Cloud) RingAssignments() [][]ring.Assignment {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]ring.Assignment, len(c.rings))
	for i, rg := range c.rings {
		out[i] = rg.Assignments()
	}
	return out
}

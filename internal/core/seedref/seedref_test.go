package seedref

import (
	"fmt"
	"math/rand"
	"testing"

	"cachecloud/internal/document"
	"cachecloud/internal/obs"
)

// The reference core's behavioral contract is pinned by the model-based
// equivalence test in internal/core (equivalence_test.go), which drives it
// in lockstep with the sharded implementation and requires bit-equal
// observables. The tests here are the in-package smoke pass: they replay a
// representative workload through every API path so the reference stays
// runnable (and covered) on its own.

func newTestCloud(t *testing.T, numCaches, numRings int, replicate, fineGrained bool) (*Cloud, []string) {
	t.Helper()
	ids := make([]string, numCaches)
	for i := range ids {
		ids[i] = fmt.Sprintf("cache-%02d", i)
	}
	c, err := New(Config{NumRings: numRings, ReplicateRecords: replicate, FineGrained: fineGrained}, ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c, ids
}

func TestSeedrefConfigValidation(t *testing.T) {
	if _, err := New(Config{NumRings: 2}, nil, nil); err == nil {
		t.Fatal("want error for empty membership")
	}
	if _, err := New(Config{NumRings: 0}, []string{"a", "b"}, nil); err == nil {
		t.Fatal("want error for zero rings")
	}
	if _, err := New(Config{NumRings: 3}, []string{"a", "b"}, nil); err == nil {
		t.Fatal("want error for more rings than caches")
	}
	if c, err := New(Config{NumRings: 1, IntraGen: -5}, []string{"a", "b"}, nil); err != nil || c == nil {
		t.Fatalf("non-positive IntraGen should default, got %v", err)
	}
	if _, err := New(Config{NumRings: 1}, []string{"a", "a"}, nil); err == nil {
		t.Fatal("want error for duplicate cache ID")
	}
}

func TestSeedrefLookupUpdateCycle(t *testing.T) {
	c, ids := newTestCloud(t, 10, 5, false, true)
	tracer := obs.NewTracer(256)
	c.SetTracer(tracer)
	if got := c.NumRings(); got != 5 {
		t.Fatalf("NumRings = %d", got)
	}
	if c.Cache(ids[0]) == nil || c.Cache("nope") != nil {
		t.Fatal("Cache accessor broken")
	}
	if got := c.CacheIDs(); len(got) != 10 {
		t.Fatalf("CacheIDs = %v", got)
	}

	url := "http://origin/seedref-doc"
	h := document.HashURL(url)
	if _, err := c.BeaconFor(url); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterHolder(url, ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterHolderHash(url, h, ids[2]); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterHolderHash(url, h, "ghost"); err == nil {
		t.Fatal("want ErrUnknownCache")
	}
	res, err := c.Lookup(url, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Holders) != 2 {
		t.Fatalf("holders = %v", res.Holders)
	}
	if got := c.Holders(url); len(got) != 2 {
		t.Fatalf("Holders = %v", got)
	}
	doc := document.Document{URL: url, Version: 3, Size: 256}
	if _, err := c.Update(doc, 2); err != nil {
		t.Fatal(err)
	}
	ur, err := c.UpdateHash(document.Document{URL: url, Version: 4, Size: 256}, h, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ur.Beacon == "" {
		t.Fatalf("update result %+v", ur)
	}
	if res, err = c.LookupHash(url, h, 4); err != nil || res.Version != 4 {
		t.Fatalf("post-update lookup %+v, %v", res, err)
	}
	if lr, _ := c.DocumentRates(url, 4); lr <= 0 {
		t.Fatalf("lookup rate %v", lr)
	}
	if lr, _ := c.DocumentRatesHash(url, h, 4); lr <= 0 {
		t.Fatalf("lookup rate (hash) %v", lr)
	}
	if err := c.DeregisterHolder(url, ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := c.DeregisterHolderHash(url, h, ids[2]); err != nil {
		t.Fatal(err)
	}
	if got := c.Holders(url); len(got) != 0 {
		t.Fatalf("holders after deregister = %v", got)
	}
	if loads := c.BeaconLoads(); len(loads) != 10 {
		t.Fatalf("beacon loads %v", loads)
	}
	_ = c.LoadDistribution()
	if tracer.Total() == 0 {
		t.Fatal("tracer saw no events")
	}
}

// TestSeedrefTopologyChurn replays a seeded workload through rebalances,
// replication, graceful departures, crashes, and joins, checking the
// bookkeeping invariants the equivalence test relies on.
func TestSeedrefTopologyChurn(t *testing.T) {
	for _, replicate := range []bool{true, false} {
		t.Run(fmt.Sprintf("replicate=%v", replicate), func(t *testing.T) {
			c, ids := newTestCloud(t, 12, 4, replicate, false)
			rng := rand.New(rand.NewSource(5))
			urls := make([]string, 200)
			hs := make([]document.Hash, 200)
			for i := range urls {
				urls[i] = fmt.Sprintf("http://origin/churn-%03d", i)
				hs[i] = document.HashURL(urls[i])
				if err := c.RegisterHolderHash(urls[i], hs[i], ids[i%len(ids)]); err != nil {
					t.Fatal(err)
				}
			}
			for now := int64(1); now < 400; now++ {
				i := rng.Intn(len(urls))
				if now%3 == 0 {
					if _, err := c.UpdateHash(document.Document{URL: urls[i], Version: document.Version(now), Size: 128}, hs[i], now); err != nil {
						t.Fatal(err)
					}
				} else if _, err := c.LookupHash(urls[i], hs[i], now); err != nil {
					t.Fatal(err)
				}
			}
			c.Rebalance()
			c.ReplicateRecords()
			if err := c.RemoveCache(ids[2], true); err != nil {
				t.Fatal(err)
			}
			if err := c.RemoveCache(ids[5], false); err != nil {
				t.Fatal(err)
			}
			if err := c.RemoveCache("ghost", true); err == nil {
				t.Fatal("want error removing unknown cache")
			}
			if err := c.AddCache("cache-new", 1, 0); err != nil {
				t.Fatal(err)
			}
			if err := c.AddCache(ids[0], 1, 0); err == nil {
				t.Fatal("want error re-adding member")
			}
			c.Rebalance()

			st := c.Stats()
			if replicate {
				if st.RecordsRecovered == 0 {
					t.Fatal("crash with replication recovered nothing")
				}
			} else if st.RecordsLost == 0 {
				t.Fatal("crash without replication lost nothing")
			}
			asn := c.RingAssignments()
			if len(asn) != 4 {
				t.Fatalf("ring count %d", len(asn))
			}
			members := map[string]bool{}
			for _, subs := range asn {
				for _, a := range subs {
					members[a.ID] = true
				}
			}
			if members[ids[2]] || members[ids[5]] || !members["cache-new"] {
				t.Fatalf("assignment membership wrong: %v", members)
			}
			// The surviving records must still resolve and serve.
			for i := range urls {
				if _, err := c.LookupHash(urls[i], hs[i], 500); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

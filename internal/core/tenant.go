package core

import "cachecloud/internal/document"

// Tenant-scoped entry points: each folds the tenant ID into the document
// key before hashing (document.TenantKey), so every tenant's lookup
// records live in a disjoint region of the key space — a lookup, update,
// or holder registration by one tenant can never touch another tenant's
// record, even for the same URL. The default (empty) tenant resolves to
// the unscoped key, byte-identical to the non-tenant API.

// LookupTenant is Lookup over the tenant-scoped key.
func (c *Cloud) LookupTenant(tenant, url string, now int64) (LookupResult, error) {
	key := document.TenantKey(tenant, url)
	return c.lookupHash(key, document.HashURL(key), now, false, true)
}

// RegisterHolderTenant is RegisterHolder over the tenant-scoped key.
func (c *Cloud) RegisterHolderTenant(tenant, url, cacheID string) error {
	key := document.TenantKey(tenant, url)
	return c.RegisterHolderHash(key, document.HashURL(key), cacheID)
}

// DeregisterHolderTenant is DeregisterHolder over the tenant-scoped key.
func (c *Cloud) DeregisterHolderTenant(tenant, url, cacheID string) error {
	key := document.TenantKey(tenant, url)
	return c.DeregisterHolderHash(key, document.HashURL(key), cacheID)
}

// UpdateTenant is Update over the tenant-scoped key: the document's URL
// is folded before fan-out so only the tenant's own holders see it.
func (c *Cloud) UpdateTenant(tenant string, doc document.Document, now int64) (UpdateResult, error) {
	doc.URL = document.TenantKey(tenant, doc.URL)
	return c.Update(doc, now)
}

package core

import (
	"errors"
	"fmt"
	"testing"

	"cachecloud/internal/cache"
	"cachecloud/internal/document"
	"cachecloud/internal/trace"
)

func newTestCloud(t *testing.T, caches, rings int, cfgMod func(*Config)) *Cloud {
	t.Helper()
	cfg := Config{NumRings: rings, IntraGen: 1000, FineGrained: true}
	if cfgMod != nil {
		cfgMod(&cfg)
	}
	c, err := New(cfg, trace.CacheNames(caches), nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{NumRings: 0}, []string{"a"}, nil); !errors.Is(err, ErrBadTopology) {
		t.Fatalf("err = %v, want ErrBadTopology", err)
	}
	if _, err := New(Config{NumRings: 5}, []string{"a", "b"}, nil); !errors.Is(err, ErrBadTopology) {
		t.Fatalf("err = %v, want ErrBadTopology", err)
	}
	if _, err := New(Config{NumRings: 1}, []string{"a", "a"}, nil); !errors.Is(err, ErrBadTopology) {
		t.Fatalf("err = %v, want ErrBadTopology", err)
	}
}

func TestTopologyFiveByTwo(t *testing.T) {
	c := newTestCloud(t, 10, 5, nil)
	asg := c.RingAssignments()
	if len(asg) != 5 {
		t.Fatalf("rings = %d, want 5", len(asg))
	}
	seen := map[string]bool{}
	for _, ringAsg := range asg {
		if len(ringAsg) != 2 {
			t.Fatalf("ring has %d beacon points, want 2", len(ringAsg))
		}
		for _, a := range ringAsg {
			if seen[a.ID] {
				t.Fatalf("cache %s in two rings", a.ID)
			}
			seen[a.ID] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("%d caches placed, want 10", len(seen))
	}
}

func TestBeaconForStableAndMember(t *testing.T) {
	c := newTestCloud(t, 10, 5, nil)
	member := map[string]bool{}
	for _, id := range c.CacheIDs() {
		member[id] = true
	}
	for i := 0; i < 500; i++ {
		url := fmt.Sprintf("http://s/%d", i)
		b1, err := c.BeaconFor(url)
		if err != nil {
			t.Fatal(err)
		}
		b2, _ := c.BeaconFor(url)
		if b1 != b2 {
			t.Fatalf("unstable beacon for %s", url)
		}
		if !member[b1] {
			t.Fatalf("beacon %s is not a cloud member", b1)
		}
	}
}

func TestLookupRegisterFlow(t *testing.T) {
	c := newTestCloud(t, 4, 2, nil)
	const url = "http://s/doc"

	res, err := c.Lookup(url, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Holders) != 0 {
		t.Fatalf("fresh document has holders %v", res.Holders)
	}
	want, _ := c.BeaconFor(url)
	if res.Beacon != want {
		t.Fatalf("lookup served by %s, want %s", res.Beacon, want)
	}

	if err := c.RegisterHolder(url, "cache-01"); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterHolder(url, "cache-02"); err != nil {
		t.Fatal(err)
	}
	res, _ = c.Lookup(url, 1)
	if len(res.Holders) != 2 {
		t.Fatalf("holders = %v, want 2", res.Holders)
	}

	if err := c.DeregisterHolder(url, "cache-01"); err != nil {
		t.Fatal(err)
	}
	res, _ = c.Lookup(url, 2)
	if len(res.Holders) != 1 || res.Holders[0] != "cache-02" {
		t.Fatalf("holders = %v, want [cache-02]", res.Holders)
	}
}

func TestRegisterUnknownCache(t *testing.T) {
	c := newTestCloud(t, 4, 2, nil)
	if err := c.RegisterHolder("u", "ghost"); !errors.Is(err, ErrUnknownCache) {
		t.Fatalf("err = %v, want ErrUnknownCache", err)
	}
}

func TestUpdateProtocol(t *testing.T) {
	c := newTestCloud(t, 4, 2, nil)
	doc := document.Document{URL: "http://s/d", Size: 1000, Version: 1}

	// Store the doc at two caches and register them.
	for _, id := range []string{"cache-00", "cache-03"} {
		if _, err := c.Cache(id).Put(document.Copy{Doc: doc}, 0); err != nil {
			t.Fatal(err)
		}
		if err := c.RegisterHolder(doc.URL, id); err != nil {
			t.Fatal(err)
		}
	}

	doc2 := doc
	doc2.Version = 2
	doc2.Size = 1200
	res, err := c.Update(doc2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Notified) != 2 {
		t.Fatalf("notified %v, want both holders", res.Notified)
	}
	if res.FanoutBytes != 2400 {
		t.Fatalf("fanout bytes = %d, want 2400", res.FanoutBytes)
	}
	for _, id := range []string{"cache-00", "cache-03"} {
		got, ok := c.Cache(id).Peek(doc.URL)
		if !ok || got.Doc.Version != 2 {
			t.Fatalf("cache %s not refreshed: %+v ok=%v", id, got, ok)
		}
	}
	// Lookup must now report the new version.
	lr, _ := c.Lookup(doc.URL, 2)
	if lr.Version != 2 {
		t.Fatalf("lookup version = %d, want 2", lr.Version)
	}
}

func TestUpdatePrunesStaleHolders(t *testing.T) {
	c := newTestCloud(t, 4, 2, nil)
	doc := document.Document{URL: "u", Size: 10, Version: 1}
	// Register a holder that does not actually store the doc.
	if err := c.RegisterHolder(doc.URL, "cache-00"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Update(doc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Notified) != 0 {
		t.Fatalf("notified %v, want none", res.Notified)
	}
	if h := c.Holders(doc.URL); len(h) != 0 {
		t.Fatalf("stale holder not pruned: %v", h)
	}
}

func TestBeaconLoadsAccumulate(t *testing.T) {
	c := newTestCloud(t, 4, 2, nil)
	for i := 0; i < 50; i++ {
		if _, err := c.Lookup(fmt.Sprintf("u%d", i), 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		if _, err := c.Update(document.Document{URL: fmt.Sprintf("u%d", i), Size: 1, Version: 1}, 0); err != nil {
			t.Fatal(err)
		}
	}
	var total int64
	for _, v := range c.BeaconLoads() {
		total += v
	}
	if total != 80 {
		t.Fatalf("total beacon load = %d, want 80", total)
	}
	if got := c.LoadDistribution().Mean(); got != 20 {
		t.Fatalf("mean load = %v, want 20", got)
	}
}

func TestDocumentRates(t *testing.T) {
	c := newTestCloud(t, 4, 2, nil)
	const url = "hot"
	for now := int64(0); now < 200; now++ {
		for k := 0; k < 5; k++ {
			if _, err := c.Lookup(url, now); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.Update(document.Document{URL: url, Size: 1, Version: document.Version(now + 1)}, now); err != nil {
			t.Fatal(err)
		}
	}
	lr, ur := c.DocumentRates(url, 199)
	if lr < 3 || lr > 7 {
		t.Fatalf("lookup rate = %.2f, want ≈5", lr)
	}
	if ur < 0.5 || ur > 1.5 {
		t.Fatalf("update rate = %.2f, want ≈1", ur)
	}
	if l, u := c.DocumentRates("unseen", 199); l != 0 || u != 0 {
		t.Fatalf("unseen doc rates = %v,%v", l, u)
	}
}

// Rebalancing must move lookup records with the sub-ranges: a document's
// beacon changes, but the holder list survives.
func TestRebalanceMigratesRecords(t *testing.T) {
	c := newTestCloud(t, 2, 1, nil)
	// Drive heavily skewed lookups so the boundary must move.
	urls := make([]string, 400)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://s/%d", i)
	}
	for i, u := range urls {
		if err := c.RegisterHolder(u, "cache-00"); err != nil {
			t.Fatal(err)
		}
		// Heavy load on a subset to force imbalance.
		n := 1
		if i%7 == 0 {
			n = 40
		}
		for k := 0; k < n; k++ {
			if _, err := c.Lookup(u, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	moved := c.Rebalance()
	if moved == 0 {
		t.Fatal("rebalance migrated no records despite heavy skew")
	}
	if got := c.Stats().RecordsMigrated; got != int64(moved) {
		t.Fatalf("Stats().RecordsMigrated = %d, want %d", got, moved)
	}
	// Every document must still resolve and keep its holder.
	for _, u := range urls {
		res, err := c.Lookup(u, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Holders) != 1 || res.Holders[0] != "cache-00" {
			t.Fatalf("doc %s lost its holder after migration: %v", u, res.Holders)
		}
	}
}

func TestRemoveCacheGraceful(t *testing.T) {
	c := newTestCloud(t, 4, 2, nil)
	// Find a document whose beacon is cache-00.
	var url string
	for i := 0; ; i++ {
		u := fmt.Sprintf("http://s/%d", i)
		if b, _ := c.BeaconFor(u); b == "cache-00" {
			url = u
			break
		}
	}
	if err := c.RegisterHolder(url, "cache-01"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveCache("cache-00", true); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveCache("cache-00", true); !errors.Is(err, ErrUnknownCache) {
		t.Fatalf("double remove err = %v", err)
	}
	// The record must have migrated to the new beacon with holders intact.
	res, err := c.Lookup(url, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Beacon == "cache-00" {
		t.Fatal("removed cache still beacon")
	}
	if len(res.Holders) != 1 || res.Holders[0] != "cache-01" {
		t.Fatalf("holders after graceful removal = %v", res.Holders)
	}
	if c.Stats().RecordsLost != 0 {
		t.Fatal("graceful removal lost records")
	}
}

func TestRemoveCacheCrashWithoutReplication(t *testing.T) {
	c := newTestCloud(t, 4, 2, nil)
	var url string
	for i := 0; ; i++ {
		u := fmt.Sprintf("http://s/%d", i)
		if b, _ := c.BeaconFor(u); b == "cache-00" {
			url = u
			break
		}
	}
	if err := c.RegisterHolder(url, "cache-01"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveCache("cache-00", false); err != nil {
		t.Fatal(err)
	}
	if c.Stats().RecordsLost == 0 {
		t.Fatal("crash without replication should lose records")
	}
	res, _ := c.Lookup(url, 1)
	if len(res.Holders) != 0 {
		t.Fatalf("holders survived crash without replication: %v", res.Holders)
	}
}

func TestRemoveCacheCrashWithReplication(t *testing.T) {
	c := newTestCloud(t, 4, 2, func(cfg *Config) { cfg.ReplicateRecords = true })
	var url string
	for i := 0; ; i++ {
		u := fmt.Sprintf("http://s/%d", i)
		if b, _ := c.BeaconFor(u); b == "cache-00" {
			url = u
			break
		}
	}
	if err := c.RegisterHolder(url, "cache-01"); err != nil {
		t.Fatal(err)
	}
	c.ReplicateRecords()
	if err := c.RemoveCache("cache-00", false); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.RecordsRecovered == 0 {
		t.Fatalf("no records recovered: %+v", st)
	}
	res, _ := c.Lookup(url, 1)
	if len(res.Holders) != 1 || res.Holders[0] != "cache-01" {
		t.Fatalf("holders after recovered crash = %v", res.Holders)
	}
	// The crashed cache must be removed from holder lists everywhere.
	for _, id := range c.CacheIDs() {
		if id == "cache-00" {
			t.Fatal("crashed cache still a member")
		}
	}
}

func TestReplicateRecordsDisabledNoop(t *testing.T) {
	c := newTestCloud(t, 4, 2, nil)
	if err := c.RegisterHolder("u", "cache-01"); err != nil {
		t.Fatal(err)
	}
	c.ReplicateRecords() // must be a no-op, not a panic
	for _, s := range c.shards {
		if len(s.replicas) != 0 {
			t.Fatal("replication ran while disabled")
		}
	}
}

func TestAddCache(t *testing.T) {
	c := newTestCloud(t, 4, 2, nil)
	if err := c.AddCache("cache-99", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.AddCache("cache-99", 1, 0); !errors.Is(err, ErrBadTopology) {
		t.Fatalf("duplicate add err = %v", err)
	}
	found := false
	for _, ringAsg := range c.RingAssignments() {
		for _, a := range ringAsg {
			if a.ID == "cache-99" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("new cache not in any ring")
	}
	if c.Cache("cache-99") == nil {
		t.Fatal("new cache has no store")
	}
	// Documents must resolve to it for part of the hash space eventually.
	hits := 0
	for i := 0; i < 2000; i++ {
		if b, _ := c.BeaconFor(fmt.Sprintf("u%d", i)); b == "cache-99" {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("new cache never selected as beacon")
	}
}

func TestHoldersPeekDoesNotChargeLoad(t *testing.T) {
	c := newTestCloud(t, 4, 2, nil)
	if err := c.RegisterHolder("u", "cache-00"); err != nil {
		t.Fatal(err)
	}
	before := c.LoadDistribution().Mean()
	_ = c.Holders("u")
	after := c.LoadDistribution().Mean()
	if before != after {
		t.Fatal("Holders charged beacon load")
	}
}

// End-to-end style property: a full request/update workload keeps the
// holder directory consistent with actual cache contents.
func TestDirectoryConsistencyUnderWorkload(t *testing.T) {
	c := newTestCloud(t, 6, 3, func(cfg *Config) { cfg.DefaultCapacity = 50_000 })
	tr := trace.GenerateZipf(trace.ZipfConfig{
		Seed: 8, NumDocs: 300, Caches: 6, Duration: 30, ReqPerCache: 20, UpdatesPerUnit: 10,
	})
	docs := make(map[string]document.Document, len(tr.Docs))
	for _, d := range tr.Docs {
		docs[d.URL] = d
	}
	version := map[string]document.Version{}
	for _, ev := range tr.Events {
		switch ev.Kind {
		case trace.Request:
			ch := c.Cache(ev.Cache)
			if _, hit := ch.Get(ev.URL, ev.Time); hit {
				continue
			}
			if _, err := c.Lookup(ev.URL, ev.Time); err != nil {
				t.Fatal(err)
			}
			d := docs[ev.URL]
			if v := version[ev.URL]; v > d.Version {
				d.Version = v
			}
			evicted, err := ch.Put(document.Copy{Doc: d, FetchedAt: ev.Time}, ev.Time)
			if errors.Is(err, cache.ErrTooLarge) {
				continue // oversized document: served but never stored
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := c.RegisterHolder(ev.URL, ev.Cache); err != nil {
				t.Fatal(err)
			}
			for _, dead := range evicted {
				if err := c.DeregisterHolder(dead.URL, ev.Cache); err != nil {
					t.Fatal(err)
				}
			}
		case trace.Update:
			version[ev.URL]++
			d := docs[ev.URL]
			d.Version = version[ev.URL]
			if _, err := c.Update(d, ev.Time); err != nil {
				t.Fatal(err)
			}
		}
		if ev.Time%10 == 9 {
			c.Rebalance()
		}
	}
	// Invariant: every holder recorded at a beacon actually stores the doc,
	// and every stored doc is registered.
	for _, d := range tr.Docs {
		for _, h := range c.Holders(d.URL) {
			if !c.Cache(h).Has(d.URL) {
				t.Fatalf("directory says %s holds %s but it does not", h, d.URL)
			}
		}
	}
	for _, id := range c.CacheIDs() {
		for _, url := range c.Cache(id).Documents() {
			held := false
			for _, h := range c.Holders(url) {
				if h == id {
					held = true
					break
				}
			}
			if !held {
				t.Fatalf("cache %s stores %s but directory does not know", id, url)
			}
		}
	}
}

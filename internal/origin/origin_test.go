package origin

import (
	"errors"
	"testing"

	"cachecloud/internal/core"
	"cachecloud/internal/document"
	"cachecloud/internal/trace"
)

func testDocs() []document.Document {
	return []document.Document{
		{URL: "http://s/a", Size: 1000},
		{URL: "http://s/b", Size: 2000, Version: 5},
	}
}

func TestDocumentCatalog(t *testing.T) {
	s := New(testDocs())
	a, err := s.Document("http://s/a")
	if err != nil {
		t.Fatal(err)
	}
	if a.Version != 1 {
		t.Fatalf("zero version not defaulted: %d", a.Version)
	}
	b, _ := s.Document("http://s/b")
	if b.Version != 5 {
		t.Fatalf("explicit version lost: %d", b.Version)
	}
	if _, err := s.Document("nope"); !errors.Is(err, ErrUnknownDocument) {
		t.Fatalf("err = %v, want ErrUnknownDocument", err)
	}
}

func TestFetchAccounting(t *testing.T) {
	s := New(testDocs())
	if _, err := s.Fetch("http://s/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fetch("http://s/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fetch("nope"); !errors.Is(err, ErrUnknownDocument) {
		t.Fatalf("err = %v", err)
	}
	st := s.Stats()
	if st.MissFetches != 2 || st.BytesSent != 3000 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPublishUpdateNoClouds(t *testing.T) {
	s := New(testDocs())
	out, err := s.PublishUpdate("http://s/a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Doc.Version != 2 || out.ServerBytes != 0 || out.HoldersNotified != 0 {
		t.Fatalf("outcome = %+v", out)
	}
	d, _ := s.Document("http://s/a")
	if d.Version != 2 {
		t.Fatalf("catalog version = %d, want 2", d.Version)
	}
	if _, err := s.PublishUpdate("nope", 0); !errors.Is(err, ErrUnknownDocument) {
		t.Fatalf("err = %v", err)
	}
}

func TestPublishUpdatePropagatesToClouds(t *testing.T) {
	s := New(testDocs())
	cloud, err := core.New(core.Config{NumRings: 2, IntraGen: 100}, trace.CacheNames(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	s.AttachCloud(cloud)
	if s.NumClouds() != 1 {
		t.Fatal("cloud not attached")
	}

	// cache-01 holds document a.
	d, _ := s.Document("http://s/a")
	if _, err := cloud.Cache("cache-01").Put(document.Copy{Doc: d}, 0); err != nil {
		t.Fatal(err)
	}
	if err := cloud.RegisterHolder(d.URL, "cache-01"); err != nil {
		t.Fatal(err)
	}

	out, err := s.PublishUpdate(d.URL, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.ServerBytes != 1000 {
		t.Fatalf("server bytes = %d, want 1000 (one message per cloud)", out.ServerBytes)
	}
	if out.HoldersNotified != 1 || out.FanoutBytes != 1000 {
		t.Fatalf("outcome = %+v", out)
	}
	got, ok := cloud.Cache("cache-01").Peek(d.URL)
	if !ok || got.Doc.Version != 2 {
		t.Fatalf("holder not refreshed: %+v", got)
	}
	st := s.Stats()
	if st.UpdatesSent != 1 || st.BytesSent != 1000 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPublishUpdateMultipleClouds(t *testing.T) {
	s := New(testDocs())
	for i := 0; i < 3; i++ {
		cloud, err := core.New(core.Config{NumRings: 1, IntraGen: 100}, []string{
			trace.CacheNames(6)[2*i], trace.CacheNames(6)[2*i+1],
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		s.AttachCloud(cloud)
	}
	out, err := s.PublishUpdate("http://s/b", 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.ServerBytes != 3*2000 {
		t.Fatalf("server bytes = %d, want one message per cloud", out.ServerBytes)
	}
}

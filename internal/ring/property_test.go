package ring

import (
	"fmt"
	"math/rand"
	"testing"

	"cachecloud/internal/loadstats"
)

// checkExactPartition asserts the ring's core invariant: the sub-ranges
// exactly partition [0, IntraGen) — contiguous, non-overlapping, in
// order, with every beacon point appearing exactly once — and that
// BeaconFor agrees with the assignment table on every IrH value.
func checkExactPartition(t *testing.T, r *Ring, ctx string) {
	t.Helper()
	as := r.Assignments()
	if len(as) == 0 {
		t.Fatalf("%s: no assignments", ctx)
	}
	seen := make(map[string]bool, len(as))
	next := 0
	for i, a := range as {
		if seen[a.ID] {
			t.Fatalf("%s: beacon %q assigned twice", ctx, a.ID)
		}
		seen[a.ID] = true
		if a.Sub.Lo != next {
			t.Fatalf("%s: assignment %d (%s) starts at %d, want %d", ctx, i, a.ID, a.Sub.Lo, next)
		}
		if a.Sub.Hi < a.Sub.Lo {
			t.Fatalf("%s: assignment %d (%s) is empty: %v", ctx, i, a.ID, a.Sub)
		}
		next = a.Sub.Hi + 1
	}
	if next != r.IntraGen() {
		t.Fatalf("%s: partition ends at %d, want %d", ctx, next, r.IntraGen())
	}
	for irh := 0; irh < r.IntraGen(); irh++ {
		owner, err := r.BeaconFor(irh)
		if err != nil {
			t.Fatalf("%s: BeaconFor(%d): %v", ctx, irh, err)
		}
		var want string
		for _, a := range as {
			if a.Sub.Contains(irh) {
				want = a.ID
			}
		}
		if owner != want {
			t.Fatalf("%s: BeaconFor(%d) = %q, assignment table says %q", ctx, irh, owner, want)
		}
	}
}

// TestPropertyPartitionInvariant drives rings of random size, random
// capabilities, and random skewed load through repeated record/rebalance
// cycles in both load-information modes (the paper's CIrHLd and
// CAvgLoad), checking the partition invariant after every step.
func TestPropertyPartitionInvariant(t *testing.T) {
	for _, fine := range []bool{true, false} {
		fine := fine
		t.Run(fmt.Sprintf("fineGrained=%v", fine), func(t *testing.T) {
			for trial := 0; trial < 25; trial++ {
				rng := rand.New(rand.NewSource(int64(1000*trial) + 7))
				nPoints := 2 + rng.Intn(7)
				intraGen := nPoints + rng.Intn(2000)
				members := make([]Member, nPoints)
				for i := range members {
					members[i] = Member{
						ID:         fmt.Sprintf("bp-%d", i),
						Capability: 0.25 + 4*rng.Float64(),
					}
				}
				r, err := New(Config{IntraGen: intraGen, FineGrained: fine}, members)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				ctx := fmt.Sprintf("trial %d (points=%d intraGen=%d)", trial, nPoints, intraGen)
				checkExactPartition(t, r, ctx+" initial")

				cycles := 1 + rng.Intn(5)
				for c := 0; c < cycles; c++ {
					// Skewed load: a few hot IrH values plus background noise.
					for ev := 0; ev < 200; ev++ {
						var irh int
						if rng.Intn(4) == 0 {
							irh = rng.Intn(intraGen)
						} else {
							irh = (trial*31 + c*7 + rng.Intn(1+intraGen/10)) % intraGen
						}
						if err := r.Record(irh, loadstats.Lookup, 1+int64(rng.Intn(5))); err != nil {
							t.Fatalf("%s: Record: %v", ctx, err)
						}
					}
					r.Rebalance()
					checkExactPartition(t, r, fmt.Sprintf("%s after rebalance %d", ctx, c))
				}
			}
		})
	}
}

// TestPropertyPartitionUnderChurn interleaves random membership changes
// (Add/Remove) with load and rebalances, holding the partition invariant
// throughout — the live cluster exercises exactly this sequence when
// nodes crash and rejoin.
func TestPropertyPartitionUnderChurn(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewSource(int64(31*trial) + 3))
		intraGen := 100 + rng.Intn(1500)
		r, err := New(Config{IntraGen: intraGen, FineGrained: true}, []Member{
			{ID: "bp-0", Capability: 1},
			{ID: "bp-1", Capability: 2},
			{ID: "bp-2", Capability: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		nextID := 3
		live := 3
		ctx := fmt.Sprintf("trial %d (intraGen=%d)", trial, intraGen)
		for step := 0; step < 30; step++ {
			sctx := fmt.Sprintf("%s step %d", ctx, step)
			switch op := rng.Intn(4); {
			case op == 0 && live < 8:
				id := fmt.Sprintf("bp-%d", nextID)
				nextID++
				if _, err := r.Add(Member{ID: id, Capability: 0.5 + 2*rng.Float64()}); err != nil {
					t.Fatalf("%s: Add: %v", sctx, err)
				}
				live++
			case op == 1 && live > 1:
				victims := r.Members()
				id := victims[rng.Intn(len(victims))]
				if _, err := r.Remove(id); err != nil {
					t.Fatalf("%s: Remove(%s): %v", sctx, id, err)
				}
				live--
			case op == 2:
				for ev := 0; ev < 50; ev++ {
					if err := r.Record(rng.Intn(intraGen), loadstats.Lookup, 1); err != nil {
						t.Fatalf("%s: Record: %v", sctx, err)
					}
				}
			default:
				r.Rebalance()
			}
			checkExactPartition(t, r, sctx)
		}
	}
}

// Package ring implements the paper's beacon ring — the unit of dynamic
// hashing inside a cache cloud (Sections 2.2 and 2.3).
//
// A beacon ring holds two or more beacon points. The intra-ring hash range
// [0, IntraGen) is divided into consecutive, non-overlapping sub-ranges, one
// per beacon point; a beacon point serves every document whose IrH value
// falls inside its sub-range. Periodically (in cycles) the ring re-divides
// the range so that the load each beacon point is likely to see next cycle
// is proportional to its capability. Two accuracy modes are supported:
//
//   - fine-grained: beacon points maintain per-IrH-value load counters
//     (the paper's CIrHLd information), so the boundary shift is exact;
//   - coarse: only the cycle aggregate (CAvgLoad) is kept and the per-value
//     load is approximated by the sub-range average, trading accuracy for
//     bookkeeping cost.
//
// The implementation reproduces the paper's Figure 2 worked example in both
// modes (see TestPaperFigure2).
package ring

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"cachecloud/internal/loadstats"
)

var (
	// ErrTooFewPoints is returned when a ring would have fewer than one
	// beacon point.
	ErrTooFewPoints = errors.New("ring: a beacon ring needs at least one beacon point")
	// ErrBadIntraGen is returned when IntraGen is smaller than the number
	// of beacon points.
	ErrBadIntraGen = errors.New("ring: IntraGen must be >= number of beacon points")
	// ErrBadCapability is returned for non-positive capabilities.
	ErrBadCapability = errors.New("ring: capability must be > 0")
	// ErrUnknownPoint is returned when an operation names a beacon point
	// that is not in the ring.
	ErrUnknownPoint = errors.New("ring: unknown beacon point")
	// ErrLastPoint is returned when removing the only beacon point.
	ErrLastPoint = errors.New("ring: cannot remove the last beacon point")
	// ErrDuplicatePoint is returned when adding an ID already present.
	ErrDuplicatePoint = errors.New("ring: duplicate beacon point")
)

// Member describes one beacon point joining a ring.
type Member struct {
	// ID identifies the cache hosting the beacon point.
	ID string
	// Capability is the paper's Cp value: a positive real reflecting the
	// power of the hosting machine. Fair load shares are proportional
	// to it.
	Capability float64
}

// SubRange is an inclusive IrH interval [Lo, Hi]. An empty sub-range is
// represented by Lo > Hi.
type SubRange struct {
	Lo, Hi int
}

// Contains reports whether the IrH value lies inside the sub-range.
func (s SubRange) Contains(irh int) bool { return irh >= s.Lo && irh <= s.Hi }

// Len returns the number of IrH values covered.
func (s SubRange) Len() int {
	if s.Hi < s.Lo {
		return 0
	}
	return s.Hi - s.Lo + 1
}

// String implements fmt.Stringer.
func (s SubRange) String() string { return fmt.Sprintf("(%d,%d)", s.Lo, s.Hi) }

// point is the in-ring state for one beacon point.
type point struct {
	id         string
	capability float64
	sub        SubRange
	counter    *loadstats.Counter
}

// Ring is a beacon ring. All methods are safe for concurrent use.
type Ring struct {
	mu          sync.Mutex
	intraGen    int
	fineGrained bool
	points      []*point // ordered by sub-range position
}

// Config parameterises a ring.
type Config struct {
	// IntraGen is the intra-ring hash generator: the size of the hash
	// range. The paper chooses it "relatively large compared to the number
	// of beacon points" (1000 in the evaluation).
	IntraGen int
	// FineGrained selects per-IrH-value load tracking (CIrHLd). When
	// false, rebalancing approximates using the sub-range average.
	FineGrained bool
}

// New creates a ring over the given members. The initial sub-ranges divide
// [0, IntraGen) in proportion to capabilities (equally for equal
// capabilities), matching the paper's initial equal division.
func New(cfg Config, members []Member) (*Ring, error) {
	if len(members) < 1 {
		return nil, ErrTooFewPoints
	}
	if cfg.IntraGen < len(members) {
		return nil, ErrBadIntraGen
	}
	seen := make(map[string]struct{}, len(members))
	var totalCap float64
	for _, m := range members {
		if m.Capability <= 0 {
			return nil, fmt.Errorf("%w: %q has %v", ErrBadCapability, m.ID, m.Capability)
		}
		if _, dup := seen[m.ID]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicatePoint, m.ID)
		}
		seen[m.ID] = struct{}{}
		totalCap += m.Capability
	}
	r := &Ring{intraGen: cfg.IntraGen, fineGrained: cfg.FineGrained}
	// Proportional initial split with a floor of one value per point.
	lo := 0
	var capSoFar float64
	for i, m := range members {
		capSoFar += m.Capability
		hi := int(float64(cfg.IntraGen)*capSoFar/totalCap+0.5) - 1
		if i == len(members)-1 {
			hi = cfg.IntraGen - 1
		}
		minHi := lo // at least one value
		if hi < minHi {
			hi = minHi
		}
		maxHi := cfg.IntraGen - (len(members) - i) // leave room for the rest
		if hi > maxHi {
			hi = maxHi
		}
		r.points = append(r.points, &point{
			id:         m.ID,
			capability: m.Capability,
			sub:        SubRange{Lo: lo, Hi: hi},
			counter:    loadstats.NewCounter(cfg.IntraGen, cfg.FineGrained),
		})
		lo = hi + 1
	}
	return r, nil
}

// IntraGen returns the hash-range size.
func (r *Ring) IntraGen() int {
	return r.intraGen
}

// Size returns the number of beacon points.
func (r *Ring) Size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.points)
}

// BeaconFor returns the ID of the beacon point whose sub-range contains the
// IrH value.
func (r *Ring) BeaconFor(irh int) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, err := r.pointFor(irh)
	if err != nil {
		return "", err
	}
	return p.id, nil
}

func (r *Ring) pointFor(irh int) (*point, error) {
	if irh < 0 || irh >= r.intraGen {
		return nil, fmt.Errorf("ring: IrH value %d outside [0,%d)", irh, r.intraGen)
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].sub.Hi >= irh })
	if i == len(r.points) || !r.points[i].sub.Contains(irh) {
		return nil, fmt.Errorf("ring: no beacon point covers IrH value %d", irh)
	}
	return r.points[i], nil
}

// Record adds load for an operation on the given IrH value to the owning
// beacon point's cycle counters.
func (r *Ring) Record(irh int, kind loadstats.Kind, units int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, err := r.pointFor(irh)
	if err != nil {
		return err
	}
	p.counter.Record(irh, kind, units)
	return nil
}

// Assignment is a snapshot of one beacon point's state.
type Assignment struct {
	ID         string
	Capability float64
	Sub        SubRange
	CycleLoad  int64
}

// Assignments returns the current sub-range assignment, ordered by position.
func (r *Ring) Assignments() []Assignment {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Assignment, len(r.points))
	for i, p := range r.points {
		out[i] = Assignment{ID: p.id, Capability: p.capability, Sub: p.sub, CycleLoad: p.counter.Total()}
	}
	return out
}

// Loads returns the current-cycle load of each beacon point, ordered by
// position.
func (r *Ring) Loads() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]float64, len(r.points))
	for i, p := range r.points {
		out[i] = float64(p.counter.Total())
	}
	return out
}

// Move describes a block of IrH values whose lookup records must migrate
// from one beacon point to another after rebalancing.
type Move struct {
	From, To string
	Sub      SubRange
}

// Rebalance runs the paper's sub-range determination process and starts a
// new cycle: it computes each beacon point's fair share of the ring load
// (proportional to capability), then walks the boundaries from the first
// beacon point, shifting IrH values between neighbours. A beacon point with
// a load surplus sheds values from the top of its sub-range to its successor
// while the cumulative shed load stays within the surplus; a point with a
// deficit acquires values from the start of its successor's sub-range under
// the symmetric rule. The load a shift pushes onto the successor is taken
// into account when the successor's own boundary is decided.
//
// It returns the record migrations implied by the boundary moves and resets
// the cycle counters.
func (r *Ring) Rebalance() []Move {
	r.mu.Lock()
	defer r.mu.Unlock()

	n := len(r.points)
	if n < 2 {
		for _, p := range r.points {
			p.counter.Reset()
		}
		return nil
	}

	// Per-IrH-value loads over the whole range. In fine-grained mode these
	// are the recorded CIrHLd values; in coarse mode each point's cycle
	// load is spread evenly over its sub-range (the paper's CAvgLoad
	// approximation).
	valueLoad := make([]float64, r.intraGen)
	var totalLoad, totalCap float64
	for _, p := range r.points {
		totalCap += p.capability
		totalLoad += float64(p.counter.Total())
		if r.fineGrained {
			for v := p.sub.Lo; v <= p.sub.Hi; v++ {
				valueLoad[v] = float64(p.counter.IrHLoad(v))
			}
		} else if p.sub.Len() > 0 {
			avg := float64(p.counter.Total()) / float64(p.sub.Len())
			for v := p.sub.Lo; v <= p.sub.Hi; v++ {
				valueLoad[v] = avg
			}
		}
	}

	oldSubs := make([]SubRange, n)
	effLoad := make([]float64, n)
	for i, p := range r.points {
		oldSubs[i] = p.sub
		effLoad[i] = float64(p.counter.Total())
	}

	if totalLoad > 0 {
		// Walk boundaries left to right: boundary i separates point i and
		// point i+1.
		for i := 0; i < n-1; i++ {
			p, q := r.points[i], r.points[i+1]
			fair := p.capability / totalCap * totalLoad
			if effLoad[i] > fair {
				// Shrink p: shed top values to q while cumulative shed
				// load stays within the surplus.
				surplus := effLoad[i] - fair
				var shed float64
				for p.sub.Len() > 1 {
					v := p.sub.Hi
					if shed+valueLoad[v] > surplus {
						break
					}
					shed += valueLoad[v]
					p.sub.Hi--
					q.sub.Lo--
				}
				effLoad[i] -= shed
				effLoad[i+1] += shed
			} else if effLoad[i] < fair {
				// Expand p: acquire values from the start of q's range
				// while cumulative acquired load stays within the deficit.
				deficit := fair - effLoad[i]
				var gained float64
				for q.sub.Len() > 1 {
					v := q.sub.Lo
					if gained+valueLoad[v] > deficit {
						break
					}
					gained += valueLoad[v]
					p.sub.Hi++
					q.sub.Lo++
				}
				effLoad[i] += gained
				effLoad[i+1] -= gained
			}
		}
	}

	moves := diffAssignments(r.points, oldSubs)
	for _, p := range r.points {
		p.counter.Reset()
	}
	return moves
}

// diffAssignments computes the record migrations between the old and new
// sub-range layouts. Both layouts are contiguous partitions of the same
// range, so each IrH value has exactly one old and one new owner.
func diffAssignments(points []*point, oldSubs []SubRange) []Move {
	var moves []Move
	for i, p := range points {
		// Values now owned by p that were previously owned by others.
		for j, old := range oldSubs {
			if j == i {
				continue
			}
			lo := max(p.sub.Lo, old.Lo)
			hi := min(p.sub.Hi, old.Hi)
			if lo <= hi {
				moves = append(moves, Move{From: points[j].id, To: p.id, Sub: SubRange{Lo: lo, Hi: hi}})
			}
		}
	}
	sort.Slice(moves, func(i, j int) bool { return moves[i].Sub.Lo < moves[j].Sub.Lo })
	return moves
}

// SetSubRanges installs an explicit sub-range layout, one entry per beacon
// point in position order. The layout must be a contiguous partition of
// [0, IntraGen) with no empty sub-range. Used to resume the algorithm from
// a previously distributed assignment (e.g. by the live origin node).
func (r *Ring) SetSubRanges(subs []SubRange) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(subs) != len(r.points) {
		return fmt.Errorf("ring: %d sub-ranges for %d beacon points", len(subs), len(r.points))
	}
	next := 0
	for _, s := range subs {
		if s.Lo != next || s.Len() < 1 {
			return fmt.Errorf("ring: sub-ranges are not a contiguous partition at %v", s)
		}
		next = s.Hi + 1
	}
	if next != r.intraGen {
		return fmt.Errorf("ring: sub-ranges end at %d, want %d", next, r.intraGen)
	}
	for i, p := range r.points {
		p.sub = subs[i]
	}
	return nil
}

// Add inserts a new beacon point by splitting the sub-range of the point
// that currently covers the widest span (a simple, deterministic choice that
// keeps the layout contiguous). Returns the migration needed to hand the
// upper half of the split range to the new point.
func (r *Ring) Add(m Member) (Move, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.Capability <= 0 {
		return Move{}, fmt.Errorf("%w: %q has %v", ErrBadCapability, m.ID, m.Capability)
	}
	for _, p := range r.points {
		if p.id == m.ID {
			return Move{}, fmt.Errorf("%w: %q", ErrDuplicatePoint, m.ID)
		}
	}
	if r.intraGen < len(r.points)+1 {
		return Move{}, ErrBadIntraGen
	}
	// Find the widest sub-range with at least 2 values.
	best := -1
	for i, p := range r.points {
		if p.sub.Len() >= 2 && (best == -1 || p.sub.Len() > r.points[best].sub.Len()) {
			best = i
		}
	}
	if best == -1 {
		return Move{}, errors.New("ring: no sub-range wide enough to split")
	}
	donor := r.points[best]
	mid := donor.sub.Lo + donor.sub.Len()/2
	newSub := SubRange{Lo: mid, Hi: donor.sub.Hi}
	donor.sub.Hi = mid - 1
	np := &point{
		id:         m.ID,
		capability: m.Capability,
		sub:        newSub,
		counter:    loadstats.NewCounter(r.intraGen, r.fineGrained),
	}
	r.points = append(r.points, nil)
	copy(r.points[best+2:], r.points[best+1:])
	r.points[best+1] = np
	return Move{From: donor.id, To: m.ID, Sub: newSub}, nil
}

// Remove deletes a beacon point, merging its sub-range into a neighbour
// (the predecessor when one exists, otherwise the successor). Returns the
// migration handing the departed range to the absorber. Used both for
// graceful departure and for failure handling.
func (r *Ring) Remove(id string) (Move, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := -1
	for i, p := range r.points {
		if p.id == id {
			idx = i
			break
		}
	}
	if idx == -1 {
		return Move{}, fmt.Errorf("%w: %q", ErrUnknownPoint, id)
	}
	if len(r.points) == 1 {
		return Move{}, ErrLastPoint
	}
	dead := r.points[idx]
	var absorber *point
	if idx > 0 {
		absorber = r.points[idx-1]
		absorber.sub.Hi = dead.sub.Hi
	} else {
		absorber = r.points[idx+1]
		absorber.sub.Lo = dead.sub.Lo
	}
	r.points = append(r.points[:idx], r.points[idx+1:]...)
	return Move{From: id, To: absorber.id, Sub: dead.sub}, nil
}

// Sibling returns the ID of another beacon point in the ring — the
// predecessor when one exists, otherwise the successor. The cloud uses it as
// the lazy-replication target for lookup records (failure resilience,
// Section 2.3). Returns "" for single-point rings.
func (r *Ring) Sibling(id string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, p := range r.points {
		if p.id != id {
			continue
		}
		if i > 0 {
			return r.points[i-1].id
		}
		if len(r.points) > 1 {
			return r.points[i+1].id
		}
		return ""
	}
	return ""
}

// Members returns the beacon-point IDs in position order.
func (r *Ring) Members() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.points))
	for i, p := range r.points {
		out[i] = p.id
	}
	return out
}

package ring

import (
	"errors"
	"math/rand"
	"testing"

	"cachecloud/internal/loadstats"
)

// figure2Loads are the per-IrH-value loads reconstructed from the paper's
// Figure 2 (IntraGen = 10, two equal-capability beacon points).
var figure2Loads = []int64{175, 100, 135, 30, 60, 50, 25, 75, 50, 100}

func newFigure2Ring(t *testing.T, fineGrained bool) *Ring {
	t.Helper()
	r, err := New(Config{IntraGen: 10, FineGrained: fineGrained}, []Member{
		{ID: "Pc00", Capability: 1},
		{ID: "Pc10", Capability: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func feedFigure2(t *testing.T, r *Ring) {
	t.Helper()
	for v, load := range figure2Loads {
		if err := r.Record(v, loadstats.Lookup, load); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPaperFigure2 reproduces the worked example of Section 2.3 exactly:
// initial equal split (0,4)/(5,9) carries loads 500/300; with CIrHLd
// information the boundary moves two values giving 410/390; with only
// CAvgLoad it moves one value giving 440/360.
func TestPaperFigure2(t *testing.T) {
	t.Run("cycle0", func(t *testing.T) {
		r := newFigure2Ring(t, true)
		a := r.Assignments()
		if a[0].Sub != (SubRange{0, 4}) || a[1].Sub != (SubRange{5, 9}) {
			t.Fatalf("initial sub-ranges %v %v, want (0,4) (5,9)", a[0].Sub, a[1].Sub)
		}
		feedFigure2(t, r)
		loads := r.Loads()
		if loads[0] != 500 || loads[1] != 300 {
			t.Fatalf("cycle-0 loads %v, want [500 300]", loads)
		}
	})

	t.Run("exact", func(t *testing.T) {
		r := newFigure2Ring(t, true)
		feedFigure2(t, r)
		moves := r.Rebalance()
		a := r.Assignments()
		if a[0].Sub != (SubRange{0, 2}) || a[1].Sub != (SubRange{3, 9}) {
			t.Fatalf("exact-mode sub-ranges %v %v, want (0,2) (3,9)", a[0].Sub, a[1].Sub)
		}
		if len(moves) != 1 || moves[0] != (Move{From: "Pc00", To: "Pc10", Sub: SubRange{3, 4}}) {
			t.Fatalf("moves = %+v, want one Pc00→Pc10 (3,4)", moves)
		}
		feedFigure2(t, r)
		loads := r.Loads()
		if loads[0] != 410 || loads[1] != 390 {
			t.Fatalf("cycle-1 loads %v, want [410 390]", loads)
		}
	})

	t.Run("approx", func(t *testing.T) {
		r := newFigure2Ring(t, false)
		feedFigure2(t, r)
		moves := r.Rebalance()
		a := r.Assignments()
		if a[0].Sub != (SubRange{0, 3}) || a[1].Sub != (SubRange{4, 9}) {
			t.Fatalf("approx-mode sub-ranges %v %v, want (0,3) (4,9)", a[0].Sub, a[1].Sub)
		}
		if len(moves) != 1 || moves[0] != (Move{From: "Pc00", To: "Pc10", Sub: SubRange{4, 4}}) {
			t.Fatalf("moves = %+v, want one Pc00→Pc10 (4,4)", moves)
		}
		feedFigure2(t, r)
		loads := r.Loads()
		if loads[0] != 440 || loads[1] != 360 {
			t.Fatalf("cycle-1 loads %v, want [440 360]", loads)
		}
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{IntraGen: 10}, nil); !errors.Is(err, ErrTooFewPoints) {
		t.Fatalf("err = %v, want ErrTooFewPoints", err)
	}
	if _, err := New(Config{IntraGen: 1}, []Member{{"a", 1}, {"b", 1}}); !errors.Is(err, ErrBadIntraGen) {
		t.Fatalf("err = %v, want ErrBadIntraGen", err)
	}
	if _, err := New(Config{IntraGen: 10}, []Member{{"a", 0}}); !errors.Is(err, ErrBadCapability) {
		t.Fatalf("err = %v, want ErrBadCapability", err)
	}
	if _, err := New(Config{IntraGen: 10}, []Member{{"a", 1}, {"a", 1}}); !errors.Is(err, ErrDuplicatePoint) {
		t.Fatalf("err = %v, want ErrDuplicatePoint", err)
	}
}

func TestNewProportionalSplit(t *testing.T) {
	r, err := New(Config{IntraGen: 10}, []Member{{"big", 3}, {"small", 1}})
	if err != nil {
		t.Fatal(err)
	}
	a := r.Assignments()
	if a[0].Sub != (SubRange{0, 7}) || a[1].Sub != (SubRange{8, 9}) {
		t.Fatalf("sub-ranges %v %v, want (0,7) (8,9)", a[0].Sub, a[1].Sub)
	}
}

func TestNewTightIntraGen(t *testing.T) {
	// IntraGen equal to the member count: every point gets exactly one value.
	r, err := New(Config{IntraGen: 3}, []Member{{"a", 100}, {"b", 1}, {"c", 1}})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, r)
	for _, asg := range r.Assignments() {
		if asg.Sub.Len() != 1 {
			t.Fatalf("point %s has %d values, want 1", asg.ID, asg.Sub.Len())
		}
	}
}

func TestBeaconForBounds(t *testing.T) {
	r := newFigure2Ring(t, true)
	if _, err := r.BeaconFor(-1); err == nil {
		t.Fatal("BeaconFor(-1) succeeded")
	}
	if _, err := r.BeaconFor(10); err == nil {
		t.Fatal("BeaconFor(10) succeeded")
	}
	id, err := r.BeaconFor(4)
	if err != nil || id != "Pc00" {
		t.Fatalf("BeaconFor(4) = %q, %v", id, err)
	}
	id, err = r.BeaconFor(5)
	if err != nil || id != "Pc10" {
		t.Fatalf("BeaconFor(5) = %q, %v", id, err)
	}
}

func TestRecordBounds(t *testing.T) {
	r := newFigure2Ring(t, true)
	if err := r.Record(42, loadstats.Lookup, 1); err == nil {
		t.Fatal("Record out of range succeeded")
	}
}

func TestRebalanceExpansion(t *testing.T) {
	// Load concentrated on the second point: the first must expand.
	r := newFigure2Ring(t, true)
	for v := 5; v <= 9; v++ {
		if err := r.Record(v, loadstats.Update, 100); err != nil {
			t.Fatal(err)
		}
	}
	r.Rebalance()
	a := r.Assignments()
	if a[0].Sub.Hi < 5 {
		t.Fatalf("first point did not expand: %v", a[0].Sub)
	}
	checkPartition(t, r)
}

func TestRebalanceZeroLoadNoop(t *testing.T) {
	r := newFigure2Ring(t, true)
	moves := r.Rebalance()
	if len(moves) != 0 {
		t.Fatalf("zero-load rebalance produced moves: %+v", moves)
	}
	a := r.Assignments()
	if a[0].Sub != (SubRange{0, 4}) || a[1].Sub != (SubRange{5, 9}) {
		t.Fatal("zero-load rebalance changed sub-ranges")
	}
}

func TestRebalanceSinglePoint(t *testing.T) {
	r, err := New(Config{IntraGen: 10}, []Member{{"solo", 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Record(3, loadstats.Lookup, 5); err != nil {
		t.Fatal(err)
	}
	if moves := r.Rebalance(); moves != nil {
		t.Fatalf("single-point rebalance moves = %v", moves)
	}
	if got := r.Loads()[0]; got != 0 {
		t.Fatalf("counter not reset: %v", got)
	}
}

func TestRebalanceRespectsCapability(t *testing.T) {
	r, err := New(Config{IntraGen: 100, FineGrained: true}, []Member{
		{ID: "strong", Capability: 3},
		{ID: "weak", Capability: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Uniform load: each IrH value costs 10.
	feed := func() {
		for v := 0; v < 100; v++ {
			if err := r.Record(v, loadstats.Lookup, 10); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed()
	r.Rebalance()
	feed()
	loads := r.Loads()
	ratio := loads[0] / loads[1]
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("load ratio %.2f, want ≈3 (capability-proportional)", ratio)
	}
}

// checkPartition verifies the ring invariant: sub-ranges are contiguous,
// non-overlapping, non-empty, and cover exactly [0, IntraGen).
func checkPartition(t *testing.T, r *Ring) {
	t.Helper()
	a := r.Assignments()
	next := 0
	for _, asg := range a {
		if asg.Sub.Lo != next {
			t.Fatalf("gap or overlap at %d: %+v", next, a)
		}
		if asg.Sub.Len() < 1 {
			t.Fatalf("empty sub-range for %s: %+v", asg.ID, a)
		}
		next = asg.Sub.Hi + 1
	}
	if next != r.IntraGen() {
		t.Fatalf("partition ends at %d, want %d: %+v", next, r.IntraGen(), a)
	}
}

// Property: the partition invariant holds after arbitrary load patterns and
// repeated rebalances, in both accuracy modes; and rebalancing never makes
// the imbalance worse when re-fed the same load pattern.
func TestRebalancePartitionInvariant(t *testing.T) {
	for _, fine := range []bool{true, false} {
		rng := rand.New(rand.NewSource(99))
		for trial := 0; trial < 50; trial++ {
			nPoints := rng.Intn(5) + 2
			gen := nPoints + rng.Intn(200)
			members := make([]Member, nPoints)
			for i := range members {
				members[i] = Member{
					ID:         CacheID(i),
					Capability: float64(rng.Intn(4) + 1),
				}
			}
			r, err := New(Config{IntraGen: gen, FineGrained: fine}, members)
			if err != nil {
				t.Fatal(err)
			}
			for cycle := 0; cycle < 4; cycle++ {
				for k := 0; k < 300; k++ {
					v := rng.Intn(gen)
					// Skewed: square the draw toward low values.
					v = (v * v) / gen
					if err := r.Record(v, loadstats.Lookup, int64(rng.Intn(20)+1)); err != nil {
						t.Fatal(err)
					}
				}
				r.Rebalance()
				checkPartition(t, r)
			}
		}
	}
}

// CacheID builds a test beacon-point ID.
func CacheID(i int) string { return string(rune('a'+i)) + "-point" }

func TestRebalanceImprovesBalance(t *testing.T) {
	// Deterministic skewed load; after one rebalance with exact info the
	// re-fed load must be strictly better balanced.
	r, err := New(Config{IntraGen: 50, FineGrained: true}, []Member{
		{"p0", 1}, {"p1", 1}, {"p2", 1}, {"p3", 1}, {"p4", 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	feed := func() {
		for v := 0; v < 50; v++ {
			load := int64(1)
			if v < 5 {
				load = 100
			}
			if err := r.Record(v, loadstats.Lookup, load); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed()
	before := loadstats.NewDistribution(r.Loads()).CoV()
	r.Rebalance()
	feed()
	after := loadstats.NewDistribution(r.Loads()).CoV()
	if after >= before {
		t.Fatalf("CoV did not improve: before %.3f after %.3f", before, after)
	}
}

func TestAddSplitsWidestRange(t *testing.T) {
	r := newFigure2Ring(t, true)
	mv, err := r.Add(Member{ID: "Pc20", Capability: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mv.To != "Pc20" || mv.Sub.Len() == 0 {
		t.Fatalf("bad move %+v", mv)
	}
	if r.Size() != 3 {
		t.Fatalf("size = %d, want 3", r.Size())
	}
	checkPartition(t, r)
	// The new point must be reachable via BeaconFor.
	id, err := r.BeaconFor(mv.Sub.Lo)
	if err != nil || id != "Pc20" {
		t.Fatalf("BeaconFor(%d) = %q, %v", mv.Sub.Lo, id, err)
	}
}

func TestAddValidation(t *testing.T) {
	r := newFigure2Ring(t, true)
	if _, err := r.Add(Member{ID: "Pc00", Capability: 1}); !errors.Is(err, ErrDuplicatePoint) {
		t.Fatalf("err = %v, want ErrDuplicatePoint", err)
	}
	if _, err := r.Add(Member{ID: "x", Capability: -1}); !errors.Is(err, ErrBadCapability) {
		t.Fatalf("err = %v, want ErrBadCapability", err)
	}
}

func TestRemoveMergesRange(t *testing.T) {
	r := newFigure2Ring(t, true)
	mv, err := r.Remove("Pc10")
	if err != nil {
		t.Fatal(err)
	}
	if mv.From != "Pc10" || mv.To != "Pc00" || mv.Sub != (SubRange{5, 9}) {
		t.Fatalf("move = %+v", mv)
	}
	checkPartition(t, r)
	id, err := r.BeaconFor(9)
	if err != nil || id != "Pc00" {
		t.Fatalf("BeaconFor(9) = %q, %v", id, err)
	}
}

func TestRemoveFirstPoint(t *testing.T) {
	r := newFigure2Ring(t, true)
	mv, err := r.Remove("Pc00")
	if err != nil {
		t.Fatal(err)
	}
	if mv.To != "Pc10" || mv.Sub != (SubRange{0, 4}) {
		t.Fatalf("move = %+v", mv)
	}
	checkPartition(t, r)
}

func TestRemoveValidation(t *testing.T) {
	r := newFigure2Ring(t, true)
	if _, err := r.Remove("nope"); !errors.Is(err, ErrUnknownPoint) {
		t.Fatalf("err = %v, want ErrUnknownPoint", err)
	}
	if _, err := r.Remove("Pc00"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Remove("Pc10"); !errors.Is(err, ErrLastPoint) {
		t.Fatalf("err = %v, want ErrLastPoint", err)
	}
}

func TestSibling(t *testing.T) {
	r := newFigure2Ring(t, true)
	if got := r.Sibling("Pc00"); got != "Pc10" {
		t.Fatalf("Sibling(Pc00) = %q", got)
	}
	if got := r.Sibling("Pc10"); got != "Pc00" {
		t.Fatalf("Sibling(Pc10) = %q", got)
	}
	if got := r.Sibling("nope"); got != "" {
		t.Fatalf("Sibling(nope) = %q", got)
	}
	solo, _ := New(Config{IntraGen: 4}, []Member{{"only", 1}})
	if got := solo.Sibling("only"); got != "" {
		t.Fatalf("Sibling on single-point ring = %q", got)
	}
}

func TestMembersOrder(t *testing.T) {
	r := newFigure2Ring(t, true)
	got := r.Members()
	if len(got) != 2 || got[0] != "Pc00" || got[1] != "Pc10" {
		t.Fatalf("Members = %v", got)
	}
}

func TestSubRangeHelpers(t *testing.T) {
	s := SubRange{2, 5}
	if !s.Contains(2) || !s.Contains(5) || s.Contains(1) || s.Contains(6) {
		t.Fatal("Contains wrong")
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if (SubRange{3, 2}).Len() != 0 {
		t.Fatal("inverted range should have length 0")
	}
	if s.String() != "(2,5)" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSetSubRanges(t *testing.T) {
	r := newFigure2Ring(t, true)
	if err := r.SetSubRanges([]SubRange{{0, 6}, {7, 9}}); err != nil {
		t.Fatal(err)
	}
	id, err := r.BeaconFor(6)
	if err != nil || id != "Pc00" {
		t.Fatalf("BeaconFor(6) = %q, %v", id, err)
	}
	checkPartition(t, r)

	cases := [][]SubRange{
		{{0, 4}},          // wrong count
		{{1, 4}, {5, 9}},  // gap at start
		{{0, 4}, {6, 9}},  // gap in middle
		{{0, 4}, {5, 8}},  // short
		{{0, 9}, {10, 9}}, // empty second range
		{{0, 4}, {5, 10}}, // overruns IntraGen
	}
	for _, c := range cases {
		if err := r.SetSubRanges(c); err == nil {
			t.Fatalf("SetSubRanges(%v) accepted", c)
		}
	}
}

// Property: the partition invariant holds under arbitrary interleavings of
// Add, Remove, Record and Rebalance.
func TestChurnPartitionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	r, err := New(Config{IntraGen: 200, FineGrained: true}, []Member{
		{"seed-a", 1}, {"seed-b", 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	nextID := 0
	for op := 0; op < 400; op++ {
		switch rng.Intn(10) {
		case 0, 1:
			id := "churn-" + string(rune('a'+nextID%26)) + string(rune('0'+nextID/26%10))
			nextID++
			if _, err := r.Add(Member{ID: id, Capability: float64(rng.Intn(3) + 1)}); err != nil {
				// Acceptable only when the range cannot split further.
				if r.Size() < 190 {
					t.Fatalf("op %d: add failed early: %v", op, err)
				}
			}
		case 2:
			members := r.Members()
			if len(members) > 2 {
				if _, err := r.Remove(members[rng.Intn(len(members))]); err != nil {
					t.Fatalf("op %d: remove: %v", op, err)
				}
			}
		case 3:
			r.Rebalance()
		default:
			v := rng.Intn(200)
			if err := r.Record(v, loadstats.Lookup, int64(rng.Intn(10)+1)); err != nil {
				t.Fatalf("op %d: record: %v", op, err)
			}
		}
		checkPartition(t, r)
		// Every IrH value must resolve to a member.
		for _, v := range []int{0, 99, 199} {
			if _, err := r.BeaconFor(v); err != nil {
				t.Fatalf("op %d: BeaconFor(%d): %v", op, v, err)
			}
		}
	}
}

// Concurrent ring access must be safe (run with -race).
func TestConcurrentRingAccess(t *testing.T) {
	r := newFigure2Ring(t, true)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = r.Record(i%10, loadstats.Lookup, 1)
			_, _ = r.BeaconFor(i % 10)
			_ = r.Assignments()
		}
	}()
	for i := 0; i < 50; i++ {
		r.Rebalance()
		_ = r.Loads()
		_ = r.Members()
	}
	<-done
	checkPartition(t, r)
}

package ring

import (
	"fmt"
	"sort"
)

// View is an immutable snapshot of a ring's sub-range layout, built for
// lock-free beacon resolution: the sharded cloud publishes one View per
// ring inside each epoch snapshot, and readers resolve IrH values against
// it without touching the ring's mutex. A View never changes after
// construction — layout changes (rebalance, add, remove) are made on the
// Ring and published as a fresh View in the next epoch.
type View struct {
	intraGen int
	his      []int // sub-range Hi bound per position, ascending
	ids      []string
	subs     []SubRange
}

// View captures the ring's current sub-range layout.
func (r *Ring) View() *View {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := &View{
		intraGen: r.intraGen,
		his:      make([]int, len(r.points)),
		ids:      make([]string, len(r.points)),
		subs:     make([]SubRange, len(r.points)),
	}
	for i, p := range r.points {
		v.his[i] = p.sub.Hi
		v.ids[i] = p.id
		v.subs[i] = p.sub
	}
	return v
}

// IntraGen returns the hash-range size.
func (v *View) IntraGen() int { return v.intraGen }

// Len returns the number of beacon points in the snapshot.
func (v *View) Len() int { return len(v.ids) }

// IndexFor returns the position of the beacon point whose sub-range
// contains the IrH value — the same resolution as Ring.BeaconFor, minus
// the lock.
func (v *View) IndexFor(irh int) (int, error) {
	if irh < 0 || irh >= v.intraGen {
		return 0, fmt.Errorf("ring: IrH value %d outside [0,%d)", irh, v.intraGen)
	}
	i := sort.SearchInts(v.his, irh)
	if i == len(v.his) || !v.subs[i].Contains(irh) {
		return 0, fmt.Errorf("ring: no beacon point covers IrH value %d", irh)
	}
	return i, nil
}

// ID returns the beacon-point ID at the given position.
func (v *View) ID(i int) string { return v.ids[i] }

// Sub returns the sub-range at the given position.
func (v *View) Sub(i int) SubRange { return v.subs[i] }

// BeaconFor resolves the beacon point for an IrH value.
func (v *View) BeaconFor(irh int) (string, error) {
	i, err := v.IndexFor(irh)
	if err != nil {
		return "", err
	}
	return v.ids[i], nil
}

// AbsorbLoad folds externally accumulated cycle load into the named beacon
// point's counter. The sharded cloud counts per-shard load lock-free during
// the cycle and drains it here immediately before Rebalance; the counter
// ends up exactly as if Record had been called once per operation.
func (r *Ring) AbsorbLoad(id string, lookups, updates int64, perIrH []int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range r.points {
		if p.id == id {
			p.counter.Absorb(lookups, updates, perIrH)
			return nil
		}
	}
	return fmt.Errorf("%w: %q", ErrUnknownPoint, id)
}

// Package obs is the shared observability layer: a concurrency-safe
// metrics registry (counters, gauges, fixed-bucket latency histograms
// with quantile extraction) rendering the Prometheus text exposition
// format, plus a structured protocol-event tracer (tracer.go). Both the
// simulator and the live nodes build on it; the package itself depends
// only on the standard library.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use and all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (callers must keep counters monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time value that can go up and down. The zero value
// is ready to use and all methods are safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a concurrency-safe fixed-boundary histogram for
// latency-like quantities. Construct with NewHistogram.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; implicit +Inf bucket last
	counts []int64
	total  int64
	sum    float64
	minV   float64
	maxV   float64
}

// DefaultLatencyBounds covers 0.05ms .. 2s in roughly geometric steps —
// wide enough for loopback round trips and slow origin fetches alike.
func DefaultLatencyBounds() []float64 {
	return []float64{0.05, 0.1, 0.25, 0.5, 1, 2, 5, 10, 20, 35, 50, 75, 100, 150, 250, 400, 650, 1000, 2000}
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// A final overflow bucket (+Inf) is added automatically.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]int64, len(b)+1),
		minV:   math.Inf(1),
		maxV:   math.Inf(-1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx]++
	h.total++
	h.sum += v
	if v < h.minV {
		h.minV = v
	}
	if v > h.maxV {
		h.maxV = v
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Quantile estimates the q-th quantile (0..1) from the current contents.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// HistSnapshot is a point-in-time copy of a histogram, safe to read and
// render without holding any lock.
type HistSnapshot struct {
	Bounds []float64 // ascending upper bounds (exclusive of +Inf)
	Counts []int64   // len(Bounds)+1; last is the overflow bucket
	Count  int64
	Sum    float64
	Min    float64
	Max    float64
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{
		Bounds: h.bounds, // immutable after construction
		Counts: make([]int64, len(h.counts)),
		Count:  h.total,
		Sum:    h.sum,
		Min:    h.minV,
		Max:    h.maxV,
	}
	copy(s.Counts, h.counts)
	return s
}

// Mean returns the exact mean of the observations.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within the matched bucket. Returns 0 for an empty histogram; the
// overflow bucket reports the maximum observed value.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		next := cum + float64(c)
		if next >= target && c > 0 {
			lo := s.Min
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Max
			if i < len(s.Bounds) {
				hi = s.Bounds[i]
			}
			if hi < lo {
				hi = lo
			}
			frac := (target - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return s.Max
}

// Registry is a named collection of metrics sharing a name prefix and a
// fixed label set, rendered together in the Prometheus text format.
// Get-or-create accessors make wiring cheap: the first call registers,
// later calls return the same instance. All methods are safe for
// concurrent use.
type Registry struct {
	prefix string
	labels string // pre-rendered `k="v",k2="v2"` (no braces), may be ""

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() float64
	hists    map[string]*Histogram
}

// NewRegistry creates a registry. Every rendered metric is named
// <prefix>_<name> and carries the given labels.
func NewRegistry(prefix string, labels map[string]string) *Registry {
	r := &Registry{
		prefix:   prefix,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() float64),
		hists:    make(map[string]*Histogram),
	}
	if len(labels) > 0 {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%q", k, labels[k]))
		}
		r.labels = strings.Join(parts, ",")
	}
	return r
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		r.checkFreeLocked(name, "counter")
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		r.checkFreeLocked(name, "gauge")
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback gauge: fn is invoked at render time.
// Use it for values derived from live state (store sizes, map lengths);
// fn must be safe to call from any goroutine and should take whatever
// lock the underlying state needs — the registry holds no lock while
// calling it beyond its own.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gaugeFns[name]; !ok {
		r.checkFreeLocked(name, "gaugefunc")
	}
	r.gaugeFns[name] = fn
}

// Histogram returns the histogram registered under name, creating it
// over the given bucket bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		r.checkFreeLocked(name, "histogram")
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// checkFreeLocked panics when a metric name is reused across kinds — a
// programming error that would silently shadow a series otherwise.
func (r *Registry) checkFreeLocked(name, kind string) {
	taken := false
	if kind != "counter" {
		_, ok := r.counters[name]
		taken = taken || ok
	}
	if kind != "gauge" {
		_, ok := r.gauges[name]
		taken = taken || ok
	}
	if kind != "gaugefunc" {
		_, ok := r.gaugeFns[name]
		taken = taken || ok
	}
	if kind != "histogram" {
		_, ok := r.hists[name]
		taken = taken || ok
	}
	if taken {
		panic("obs: metric name registered twice with different kinds: " + name)
	}
}

// Render produces the registry contents in the Prometheus text
// exposition format, metrics sorted by name. It snapshots each metric
// under its own lock and renders outside any shared lock, so it is safe
// to call while the metrics are being updated.
func (r *Registry) Render() string {
	type entry struct {
		name   string
		render func(b *strings.Builder, full, labels string)
	}
	r.mu.Lock()
	entries := make([]entry, 0, len(r.counters)+len(r.gauges)+len(r.gaugeFns)+len(r.hists))
	for name, c := range r.counters {
		c := c
		entries = append(entries, entry{name, func(b *strings.Builder, full, labels string) {
			fmt.Fprintf(b, "# TYPE %s counter\n", full)
			fmt.Fprintf(b, "%s%s %d\n", full, braced(labels), c.Value())
		}})
	}
	for name, g := range r.gauges {
		g := g
		entries = append(entries, entry{name, func(b *strings.Builder, full, labels string) {
			fmt.Fprintf(b, "# TYPE %s gauge\n", full)
			fmt.Fprintf(b, "%s%s %g\n", full, braced(labels), g.Value())
		}})
	}
	for name, fn := range r.gaugeFns {
		fn := fn
		entries = append(entries, entry{name, func(b *strings.Builder, full, labels string) {
			fmt.Fprintf(b, "# TYPE %s gauge\n", full)
			fmt.Fprintf(b, "%s%s %g\n", full, braced(labels), fn())
		}})
	}
	for name, h := range r.hists {
		h := h
		entries = append(entries, entry{name, func(b *strings.Builder, full, labels string) {
			renderHistogram(b, full, labels, h.Snapshot())
		}})
	}
	prefix, labels := r.prefix, r.labels
	r.mu.Unlock()

	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	var b strings.Builder
	for _, e := range entries {
		e.render(&b, prefix+"_"+e.name, labels)
	}
	return b.String()
}

// braced wraps a pre-rendered label list in braces, or returns "" for an
// empty list.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// renderHistogram writes one histogram in the Prometheus format:
// cumulative _bucket{le=...} series, then _sum and _count.
func renderHistogram(b *strings.Builder, full, labels string, s HistSnapshot) {
	fmt.Fprintf(b, "# TYPE %s histogram\n", full)
	var cum int64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", full, braced(joinLabels(labels, fmt.Sprintf("le=%q", formatBound(bound)))), cum)
	}
	cum += s.Counts[len(s.Bounds)]
	fmt.Fprintf(b, "%s_bucket%s %d\n", full, braced(joinLabels(labels, `le="+Inf"`)), cum)
	fmt.Fprintf(b, "%s_sum%s %g\n", full, braced(labels), s.Sum)
	fmt.Fprintf(b, "%s_count%s %d\n", full, braced(labels), s.Count)
}

// joinLabels appends extra to a pre-rendered label list.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// formatBound renders a bucket bound the way Prometheus expects.
func formatBound(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v), "0"), ".")
}

package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// EventKind identifies a protocol event.
type EventKind uint8

// Protocol events emitted by the core protocol, the simulator, and the
// live node layer.
const (
	EvNone           EventKind = iota
	EvLocalHit                 // request served from the edge cache it arrived at
	EvPeerHit                  // request served from a sibling holder via the beacon
	EvBeaconLookup             // beacon resolved a lookup record (miss path)
	EvUpdateFanout             // beacon pushed an update to its holders (Count = holders)
	EvFailedOver               // live node routed around a dead beacon
	EvCircuitOpen              // transport opened the circuit breaker for a peer
	EvNodeDead                 // failure detector (or simulator) declared a cache dead
	EvNodeRejoin               // a dead cache was readmitted
	EvRecordMigrated           // lookup records moved between beacons (Count = records)
	EvSimFault                 // deterministic simulator injected a fault (crash, drop window)
	EvInvariant                // deterministic simulator checked an invariant (Count = violations)
	EvShed                     // overload layer deliberately refused work (429 + Retry-After)
	EvCoalesced                // a miss joined an in-flight origin fetch instead of issuing its own
	EvEpochInstall             // sharded cloud published a topology snapshot (Count = install seq)
	EvWarmBoot                 // node recovered its cache from the durable tier (Count = entries)
	EvStoreTruncated           // durable store cut a torn/corrupt log tail (Count = bytes lost)
	EvStoreCompact             // durable store rewrote its log (Count = live entries kept)
	EvTenantShed               // weighted fair admission refused a tenant's work at its share
	numEventKinds
)

var kindNames = [numEventKinds]string{
	EvNone:           "none",
	EvLocalHit:       "local_hit",
	EvPeerHit:        "peer_hit",
	EvBeaconLookup:   "beacon_lookup",
	EvUpdateFanout:   "update_fanout",
	EvFailedOver:     "failed_over",
	EvCircuitOpen:    "circuit_open",
	EvNodeDead:       "node_dead",
	EvNodeRejoin:     "node_rejoin",
	EvRecordMigrated: "record_migrated",
	EvSimFault:       "sim_fault",
	EvInvariant:      "invariant",
	EvShed:           "shed",
	EvCoalesced:      "coalesced",
	EvEpochInstall:   "epoch_install",
	EvWarmBoot:       "warm_boot",
	EvStoreTruncated: "store_truncated",
	EvStoreCompact:   "store_compact",
	EvTenantShed:     "tenant_shed",
}

// String returns the JSONL wire name of the kind.
func (k EventKind) String() string {
	if k < numEventKinds {
		return kindNames[k]
	}
	return "unknown"
}

// EventKinds lists every real event kind (excluding EvNone), in declared
// order — handy for reconciliation loops.
func EventKinds() []EventKind {
	out := make([]EventKind, 0, numEventKinds-1)
	for k := EvLocalHit; k < numEventKinds; k++ {
		out = append(out, k)
	}
	return out
}

// Event is one protocol event. Time is logical (simulated time units or
// node-relative seconds), never wall clock, so traces are deterministic
// and reproducible under the parallel experiment runner. Cycle is the
// rebalance-cycle index the event fell into, stamped by the tracer.
type Event struct {
	Cycle  int64
	Time   int64
	Kind   EventKind
	Node   string // cache or beacon involved, "" when not applicable
	URL    string // document, "" when not applicable
	Tenant string // tenant the event is scoped to, "" for the default tenant
	Count  int64  // kind-specific magnitude (fanout size, records moved); 0 means 1
}

// Tracer collects protocol events into a fixed-size ring buffer and,
// optionally, streams them to a JSONL sink. A nil *Tracer is a valid
// no-op: every method checks the receiver, so callers hold a plain field
// and emit unconditionally. Hot paths should still guard event
// construction with Enabled() so a disabled tracer costs zero
// allocations.
//
// Ordering: events are written in emission order. All emitters run
// single-threaded within one simulation run (the PR-1 parallel runner
// parallelises across runs, each with its own tracer), so the JSONL
// stream is ordered by logical cycle and time by construction.
type Tracer struct {
	mu     sync.Mutex
	cycle  int64
	ring   []Event
	next   int
	total  int64
	counts [numEventKinds]int64
	sums   [numEventKinds]int64
	sink   *bufio.Writer
	sinkW  io.Writer
	errSnk error
	buf    []byte // reusable JSONL encoding buffer
}

// NewTracer creates a tracer keeping the last ringSize events in memory
// (minimum 1).
func NewTracer(ringSize int) *Tracer {
	if ringSize < 1 {
		ringSize = 1
	}
	return &Tracer{ring: make([]Event, 0, ringSize)}
}

// Enabled reports whether events will be recorded. It is the hot-path
// guard: `if t.Enabled() { t.Emit(...) }` constructs nothing when t is
// nil.
func (t *Tracer) Enabled() bool { return t != nil }

// SetSink streams every subsequent event to w as one JSON object per
// line. Call Flush before reading what was written.
func (t *Tracer) SetSink(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sinkW = w
	t.sink = bufio.NewWriter(w)
	t.mu.Unlock()
}

// SetCycle sets the rebalance-cycle index stamped onto subsequent
// events.
func (t *Tracer) SetCycle(c int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cycle = c
	t.mu.Unlock()
}

// Emit records one event. Safe on a nil tracer.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	ev.Cycle = t.cycle
	if ev.Kind < numEventKinds {
		t.counts[ev.Kind]++
		if ev.Count == 0 {
			t.sums[ev.Kind]++
		} else {
			t.sums[ev.Kind] += ev.Count
		}
	}
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[t.next] = ev
		t.next = (t.next + 1) % cap(t.ring)
	}
	if t.sink != nil && t.errSnk == nil {
		t.buf = appendEventJSON(t.buf[:0], ev)
		if _, err := t.sink.Write(t.buf); err != nil {
			t.errSnk = err
		}
	}
	t.mu.Unlock()
}

// Count returns how many events of kind k were emitted. Safe on a nil
// tracer (always 0).
func (t *Tracer) Count(k EventKind) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if k < numEventKinds {
		return t.counts[k]
	}
	return 0
}

// CountSum returns the sum of Event.Count over events of kind k, where
// an event with Count==0 contributes 1. Tracked by an accumulator at
// emit time, so it stays exact even after the ring buffer wraps.
func (t *Tracer) CountSum(k EventKind) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if k < numEventKinds {
		return t.sums[k]
	}
	return 0
}

// Total returns the number of events emitted since creation.
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot returns the buffered events, oldest first.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Flush drains the sink buffer and reports the first sink write error,
// if any. Safe on a nil tracer.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sink != nil {
		if err := t.sink.Flush(); err != nil && t.errSnk == nil {
			t.errSnk = err
		}
	}
	return t.errSnk
}

// appendEventJSON renders one event as a JSON object plus newline. Hand
// rolled so the per-event cost is a buffer append, not an
// encoding/json round trip.
func appendEventJSON(b []byte, ev Event) []byte {
	b = append(b, `{"cycle":`...)
	b = strconv.AppendInt(b, ev.Cycle, 10)
	b = append(b, `,"t":`...)
	b = strconv.AppendInt(b, ev.Time, 10)
	b = append(b, `,"kind":`...)
	b = strconv.AppendQuote(b, ev.Kind.String())
	if ev.Node != "" {
		b = append(b, `,"node":`...)
		b = strconv.AppendQuote(b, ev.Node)
	}
	if ev.URL != "" {
		b = append(b, `,"url":`...)
		b = strconv.AppendQuote(b, ev.URL)
	}
	if ev.Tenant != "" {
		b = append(b, `,"tenant":`...)
		b = strconv.AppendQuote(b, ev.Tenant)
	}
	if ev.Count != 0 {
		b = append(b, `,"n":`...)
		b = strconv.AppendInt(b, ev.Count, 10)
	}
	b = append(b, '}', '\n')
	return b
}

package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 50, 100})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	s := h.Snapshot()
	if got := s.Mean(); got != 50.5 {
		t.Fatalf("mean = %g, want 50.5", got)
	}
	// With uniform 1..100 the interpolated quantiles should land near
	// their exact values.
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.50, 50, 6}, {0.95, 95, 6}, {0.99, 99, 3},
	} {
		got := s.Quantile(tc.q)
		if got < tc.want-tc.tol || got > tc.want+tc.tol {
			t.Errorf("p%d = %g, want %g±%g", int(tc.q*100), got, tc.want, tc.tol)
		}
	}
	if NewHistogram(nil).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestRegistryRender(t *testing.T) {
	r := NewRegistry("cachecloud_node", map[string]string{"node": "c0"})
	r.Counter("local_hits_total").Add(7)
	r.Gauge("stored_bytes").Set(1024)
	r.GaugeFunc("ring_count", func() float64 { return 3 })
	h := r.Histogram("request_ms", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	out := r.Render()
	for _, want := range []string{
		"# TYPE cachecloud_node_local_hits_total counter",
		`cachecloud_node_local_hits_total{node="c0"} 7`,
		"# TYPE cachecloud_node_stored_bytes gauge",
		`cachecloud_node_stored_bytes{node="c0"} 1024`,
		`cachecloud_node_ring_count{node="c0"} 3`,
		"# TYPE cachecloud_node_request_ms histogram",
		`cachecloud_node_request_ms_bucket{node="c0",le="1"} 1`,
		`cachecloud_node_request_ms_bucket{node="c0",le="10"} 2`,
		`cachecloud_node_request_ms_bucket{node="c0",le="+Inf"} 3`,
		`cachecloud_node_request_ms_sum{node="c0"} 55.5`,
		`cachecloud_node_request_ms_count{node="c0"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q\n%s", want, out)
		}
	}
	// Metrics must come out sorted by name.
	iHits := strings.Index(out, "local_hits_total")
	iReq := strings.Index(out, "request_ms")
	iRing := strings.Index(out, "ring_count")
	iBytes := strings.Index(out, "stored_bytes")
	if !(iHits < iReq && iReq < iRing && iRing < iBytes) {
		t.Fatalf("metrics not sorted:\n%s", out)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry("x", nil)
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("Counter not idempotent")
	}
	if r.Histogram("h", []float64{1}) != r.Histogram("h", nil) {
		t.Fatal("Histogram not idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-kind name reuse should panic")
		}
	}()
	r.Gauge("a")
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry("x", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(float64(j))
				r.Histogram("h", []float64{1, 2}).Observe(float64(j % 3))
				_ = r.Render()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8*500 {
		t.Fatalf("counter = %d, want %d", got, 8*500)
	}
	if got := r.Histogram("h", nil).Count(); got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
}

func TestTracerNilIsSafeAndFree(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer should be disabled")
	}
	tr.Emit(Event{Kind: EvLocalHit})
	tr.SetCycle(3)
	if tr.Count(EvLocalHit) != 0 || tr.Total() != 0 || tr.Snapshot() != nil {
		t.Fatal("nil tracer should record nothing")
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.Enabled() {
			tr.Emit(Event{Kind: EvLocalHit, Node: "c0", URL: "u"})
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates %.1f per emit, want 0", allocs)
	}
}

func TestTracerRingAndCounts(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Time: int64(i), Kind: EvBeaconLookup})
	}
	tr.Emit(Event{Time: 10, Kind: EvUpdateFanout, Count: 5})
	if got := tr.Total(); got != 11 {
		t.Fatalf("total = %d", got)
	}
	if got := tr.Count(EvBeaconLookup); got != 10 {
		t.Fatalf("beacon lookups = %d", got)
	}
	if got := tr.CountSum(EvUpdateFanout); got != 5 {
		t.Fatalf("fanout sum = %d", got)
	}
	if got := tr.CountSum(EvBeaconLookup); got != 10 {
		t.Fatalf("lookup sum = %d (Count==0 counts as 1)", got)
	}
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(snap))
	}
	// Oldest-first: times 8, 9, 10(fanout) are the tail.
	if snap[len(snap)-1].Kind != EvUpdateFanout || snap[0].Time >= snap[len(snap)-1].Time {
		t.Fatalf("snapshot not oldest-first: %+v", snap)
	}
}

func TestTracerJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(8)
	tr.SetSink(&buf)
	tr.Emit(Event{Time: 1, Kind: EvLocalHit, Node: "c0", URL: "http://e/x"})
	tr.SetCycle(2)
	tr.Emit(Event{Time: 9, Kind: EvRecordMigrated, Count: 12})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0]["kind"] != "local_hit" || lines[0]["node"] != "c0" || lines[0]["url"] != "http://e/x" {
		t.Fatalf("line 0 = %v", lines[0])
	}
	if lines[1]["kind"] != "record_migrated" || lines[1]["cycle"] != float64(2) || lines[1]["n"] != float64(12) {
		t.Fatalf("line 1 = %v", lines[1])
	}
}

func TestEventKindNames(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range EventKinds() {
		name := k.String()
		if name == "" || name == "none" || name == "unknown" {
			t.Fatalf("kind %d has bad name %q", k, name)
		}
		if seen[name] {
			t.Fatalf("duplicate kind name %q", name)
		}
		seen[name] = true
	}
	if len(seen) != 18 {
		t.Fatalf("expected 18 event kinds, got %d", len(seen))
	}
}
